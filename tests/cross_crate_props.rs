//! Cross-crate property tests: invariants that only hold when the
//! capacity, performance and thermal models compose correctly.

use proptest::prelude::*;
use thermodisk::prelude::*;

fn design_strategy() -> impl Strategy<Value = DriveDesign> {
    (
        1.6f64..2.7,      // platter diameter (roadmap regime)
        1u32..5,          // platters
        10u32..60,        // zones
        10_000.0f64..60_000.0, // rpm
        2002i32..2010,    // technology year (sub-terabit)
    )
        .prop_map(|(dia, platters, zones, rpm, year)| {
            DriveDesign::builder()
                .platter_diameter(Inches::new(dia))
                .platters(platters)
                .zones(zones)
                .rpm(Rpm::new(rpm))
                .densities_of_year(year)
                .build()
                .expect("roadmap-regime parameters are valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn shuffle_preserves_request_semantics(
        seed in any::<u64>(),
        n in 100usize..600,
    ) {
        use thermodisk::sim::{AccessHistogram, ShuffleMap};
        let preset = &presets()[3]; // TPC-C
        let trace = preset.generate(n, seed).unwrap();
        let capacity = StorageSystem::new(
            preset.system_config(preset.base_rpm).unwrap()
        ).unwrap().logical_sectors();
        let histogram = AccessHistogram::from_trace(&trace, capacity, 4_096);
        let map = ShuffleMap::organ_pipe(&histogram);
        prop_assert!(map.is_permutation());
        let shuffled = map.apply(&trace);
        prop_assert_eq!(trace.len(), shuffled.len());
        for (a, b) in trace.iter().zip(&shuffled) {
            // Everything except placement is untouched.
            prop_assert_eq!(a.id, b.id);
            prop_assert_eq!(a.arrival, b.arrival);
            prop_assert_eq!(a.sectors, b.sectors);
            prop_assert_eq!(a.kind, b.kind);
            prop_assert!(b.end_lba() <= capacity);
        }
    }

    #[test]
    fn trace_formats_round_trip(seed in any::<u64>(), n in 50usize..300) {
        let preset = &presets()[2]; // Search-Engine
        let trace = preset.generate(n, seed).unwrap();

        // JSON-lines: lossless.
        let mut json = Vec::new();
        workloads::write_trace(&mut json, &trace).unwrap();
        let back = workloads::read_trace(json.as_slice()).unwrap();
        prop_assert_eq!(&trace, &back);

        // DiskSim ASCII: lossless in everything but sub-microsecond time.
        let mut ascii = Vec::new();
        workloads::write_ascii_trace(&mut ascii, &trace).unwrap();
        let back = workloads::read_ascii_trace(ascii.as_slice()).unwrap();
        prop_assert_eq!(trace.len(), back.len());
        for (a, b) in trace.iter().zip(&back) {
            prop_assert_eq!(a.lba, b.lba);
            prop_assert_eq!(a.kind, b.kind);
            prop_assert!((a.arrival.get() - b.arrival.get()).abs() < 1e-8);
        }

        // And the analyzer agrees on both encodings.
        let pa = workloads::analyze(&trace).unwrap();
        let pb = workloads::analyze(&back).unwrap();
        prop_assert_eq!(pa.requests, pb.requests);
        prop_assert!((pa.read_fraction - pb.read_fraction).abs() < 1e-12);
    }

    #[test]
    fn planner_is_deterministic_and_in_envelope(ambient in 18.0f64..28.0) {
        use thermodisk::roadmap::{plan_roadmap, RoadmapConfig};
        let cfg = RoadmapConfig::default().with_ambient(Celsius::new(ambient));
        let a = plan_roadmap(&cfg);
        let b = plan_roadmap(&cfg);
        prop_assert_eq!(&a, &b);
        for y in &a {
            prop_assert!(y.rpm.get() > 0.0);
            prop_assert!(y.capacity.gigabytes() > 0.0);
        }
        // Cooler ambients never shorten the met period.
        let base = plan_roadmap(&RoadmapConfig::default());
        let met = |p: &[thermodisk::roadmap::YearPlan]| {
            p.iter().filter(|y| y.meets_target()).count()
        };
        prop_assert!(met(&a) >= met(&base));
    }

    #[test]
    fn idr_scales_with_rpm_capacity_does_not(design in design_strategy()) {
        let geometry = design.geometry().clone();
        let faster = DriveDesign::builder()
            .platter_diameter(geometry.platter().diameter())
            .platters(geometry.platters())
            .zones(geometry.zones().zone_count())
            .rpm(design.rpm() * 1.5)
            .recording(*geometry.tech())
            .build()
            .unwrap();
        prop_assert_eq!(faster.capacity(), design.capacity());
        let ratio = faster.max_idr().get() / design.max_idr().get();
        prop_assert!((ratio - 1.5).abs() < 1e-9);
        prop_assert!(faster.worst_case_temp() > design.worst_case_temp());
    }

    #[test]
    fn max_rpm_within_envelope_is_consistent(design in design_strategy()) {
        if let Some(max) = design.max_rpm_within(THERMAL_ENVELOPE) {
            if max.get() < 400_000.0 {
                let at_limit = DriveDesign::builder()
                    .platter_diameter(design.geometry().platter().diameter())
                    .platters(design.geometry().platters())
                    .zones(design.geometry().zones().zone_count())
                    .rpm(max)
                    .recording(*design.geometry().tech())
                    .build()
                    .unwrap();
                prop_assert!(at_limit.fits_envelope(THERMAL_ENVELOPE));
                let beyond = DriveDesign::builder()
                    .platter_diameter(design.geometry().platter().diameter())
                    .platters(design.geometry().platters())
                    .zones(design.geometry().zones().zone_count())
                    .rpm(max * 1.03)
                    .recording(*design.geometry().tech())
                    .build()
                    .unwrap();
                prop_assert!(!beyond.fits_envelope(THERMAL_ENVELOPE));
            }
        }
    }

    #[test]
    fn disk_spec_round_trip_preserves_geometry(design in design_strategy()) {
        let disk = design.to_disk_spec();
        prop_assert_eq!(
            disk.geometry().total_sectors(),
            design.geometry().total_sectors()
        );
        prop_assert_eq!(disk.rpm(), design.rpm());
        // Peak transfer in the simulator equals the analytic IDR: a full
        // zone-0 track takes exactly one revolution.
        let zone0 = design.geometry().zones().outermost();
        let track_bytes = zone0.sectors_per_track().get() * 512;
        let revolution = design.rpm().rotation_period();
        let analytic = design.max_idr().bytes_per_sec();
        let implied = track_bytes as f64 / revolution.get();
        prop_assert!((analytic - implied).abs() / analytic < 1e-9);
    }

    #[test]
    fn worst_case_bounds_every_duty(design in design_strategy(), duty in 0.0f64..1.0) {
        let partial = design.steady_temps(duty).air;
        let worst = design.worst_case_temp();
        prop_assert!(partial <= worst + units::TempDelta::new(1e-9));
    }

    #[test]
    fn hotter_years_denser_not_hotter(
        dia in 1.6f64..2.7,
        platters in 1u32..4,
        rpm in 12_000.0f64..40_000.0,
    ) {
        // Recording density has no thermal effect: two designs differing
        // only in technology year share the same temperature.
        let build = |year: i32| {
            DriveDesign::builder()
                .platter_diameter(Inches::new(dia))
                .platters(platters)
                .zones(30)
                .rpm(Rpm::new(rpm))
                .densities_of_year(year)
                .build()
                .unwrap()
        };
        let early = build(2002);
        let late = build(2008);
        prop_assert!(late.capacity() > early.capacity());
        prop_assert!(
            (late.worst_case_temp() - early.worst_case_temp()).abs().get() < 1e-9
        );
    }
}
