//! Integration validation of the three models against the paper's
//! published numbers (Tables 1-2, Figure 1, §3.3).

use thermodisk::prelude::*;
use units::Seconds;

#[test]
fn table1_capacity_and_idr_within_paper_error_bands() {
    let mut worst_cap: f64 = 0.0;
    let mut worst_idr: f64 = 0.0;
    for row in &drives::TABLE1 {
        worst_cap = worst_cap.max(row.capacity_error().unwrap().abs());
        worst_idr = worst_idr.max(row.idr_error().unwrap().abs());
    }
    // Paper: "for most disks ... within 12%" (capacity) and "within 15%"
    // (IDR); a few of its own rows exceed that, as do ours.
    assert!(worst_cap < 0.30, "worst capacity error {worst_cap:.2}");
    assert!(worst_idr < 0.20, "worst IDR error {worst_idr:.2}");

    let mean_cap: f64 = drives::TABLE1
        .iter()
        .map(|r| r.capacity_error().unwrap().abs())
        .sum::<f64>()
        / drives::TABLE1.len() as f64;
    assert!(mean_cap < 0.12, "mean capacity error {mean_cap:.3}");
}

#[test]
fn cheetah_15k3_reaches_envelope_like_figure1() {
    // Figure 1: 28 C cold start -> 45.22 C steady after ~48 minutes,
    // with ~5 C gained in the first minute.
    let model = ThermalModel::new(DriveThermalSpec::cheetah_15k3());
    let op = OperatingPoint::seeking(Rpm::new(15_000.0));
    let steady = model.steady_air_temp(op);
    assert!(
        (steady.get() - 45.22).abs() < 0.5,
        "steady {steady} vs the 45.22 C envelope"
    );

    let mut sim = TransientSim::from_ambient(&model);
    sim.advance(&model, op, Seconds::new(60.0));
    let after_1min = sim.temps().air.get();
    assert!(
        (29.5..38.0).contains(&after_1min),
        "after one minute: {after_1min:.1} C (paper shows ~33)"
    );

    let minutes = sim.run_to_steady(&model, op, 0.01).to_minutes().get();
    assert!(
        (15.0..90.0).contains(&minutes),
        "time to steady: {minutes:.0} min (paper: ~48)"
    );
}

#[test]
fn envelope_plus_electronics_matches_rated_temperature() {
    // §3.3: 45.22 C + ~10 C of on-board electronics ~= the Cheetah's
    // rated 55 C maximum operating temperature.
    let model = ThermalModel::new(DriveThermalSpec::cheetah_15k3());
    let steady = model.steady_air_temp(OperatingPoint::seeking(Rpm::new(15_000.0)));
    let with_electronics = steady.get() + 10.0;
    assert!(
        (with_electronics - 55.0).abs() < 1.0,
        "with electronics: {with_electronics:.1} C vs rated 55 C"
    );
}

#[test]
fn integrated_design_agrees_with_component_models() {
    // A DriveDesign must answer exactly what the underlying crates do.
    let design = DriveDesign::builder()
        .platter_diameter(Inches::new(2.6))
        .platters(4)
        .zones(30)
        .rpm(Rpm::new(15_000.0))
        .densities(533.0, 64.0) // Cheetah 15K.3 row of Table 1
        .build()
        .unwrap();

    let record = drives::TABLE1
        .iter()
        .find(|r| r.model == "Seagate Cheetah 15K.3")
        .unwrap();
    let component_cap = record.model_capacity().unwrap();
    let component_idr = record.model_idr().unwrap();
    assert_eq!(design.capacity(), component_cap);
    assert!((design.max_idr().get() - component_idr.get()).abs() < 1e-9);
}

#[test]
fn vcm_power_correlation_hits_measured_value() {
    // The paper measured 3.9 W on the physically disassembled drive.
    let spec = DriveThermalSpec::new(Inches::new(2.6), 1);
    assert!((spec.vcm_power().get() - 3.9).abs() < 1e-9);
}

#[test]
fn viscous_dissipation_checkpoints() {
    use thermodisk::thermal::viscous_dissipation;
    // §4.1's explicitly quoted values for the 2.6" single-platter drive.
    for (rpm, watts, tol) in [
        (15_098.0, 0.91, 0.01),
        (19_972.0, 2.0, 0.05),
        (55_819.0, 35.55, 0.4),
        (143_470.0, 499.73, 5.0),
    ] {
        let p = viscous_dissipation(Inches::new(2.6), 1, Rpm::new(rpm)).get();
        assert!((p - watts).abs() < tol, "{rpm} RPM: {p:.2} W vs {watts}");
    }
}
