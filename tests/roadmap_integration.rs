//! Headline roadmap results (§4) exercised through the full stack.

use roadmap::{
    envelope_roadmap, falloff_year, form_factor_study, required_rpm_table, roadmap_for,
    RoadmapConfig,
};
use units::{Celsius, Inches};

#[test]
fn table3_matches_paper_within_two_percent_on_rpm() {
    // The paper's required-RPM column for the 2.6" drive.
    let paper_26: [(i32, f64); 11] = [
        (2002, 15_098.0),
        (2003, 16_263.0),
        (2004, 19_972.0),
        (2005, 24_534.0),
        (2006, 30_130.0),
        (2007, 37_001.0),
        (2008, 45_452.0),
        (2009, 55_819.0),
        (2010, 95_094.0),
        (2011, 116_826.0),
        (2012, 143_470.0),
    ];
    let rows = required_rpm_table(&RoadmapConfig::default());
    for (year, rpm) in paper_26 {
        let row = rows
            .iter()
            .find(|r| r.year == year && (r.diameter.get() - 2.6).abs() < 1e-9)
            .unwrap();
        let err = (row.required_rpm.get() - rpm).abs() / rpm;
        assert!(err < 0.02, "{year}: {:.0} vs paper {rpm}", row.required_rpm.get());
    }
}

#[test]
fn table3_idr_density_column_matches_paper() {
    // Spot checks including the 2010 ECC dip: IDR_density for 2.6".
    let paper: [(i32, f64); 4] = [
        (2002, 128.14),
        (2009, 365.34),
        (2010, 300.23),
        (2012, 390.03),
    ];
    let rows = required_rpm_table(&RoadmapConfig::default());
    for (year, idr_d) in paper {
        let row = rows
            .iter()
            .find(|r| r.year == year && (r.diameter.get() - 2.6).abs() < 1e-9)
            .unwrap();
        let err = (row.idr_density.get() - idr_d).abs() / idr_d;
        assert!(err < 0.02, "{year}: {:.2} vs paper {idr_d}", row.idr_density.get());
    }
}

#[test]
fn table3_temperatures_track_paper() {
    let paper: [(f64, i32, f64); 6] = [
        (2.6, 2002, 45.24),
        (2.6, 2007, 57.18),
        (2.6, 2012, 602.98),
        (2.1, 2005, 45.61),
        (1.6, 2008, 51.04),
        (1.6, 2012, 279.75),
    ];
    let rows = required_rpm_table(&RoadmapConfig::default());
    for (dia, year, temp) in paper {
        let row = rows
            .iter()
            .find(|r| r.year == year && (r.diameter.get() - dia).abs() < 1e-9)
            .unwrap();
        let rise_err =
            ((row.steady_temp.get() - 28.0) - (temp - 28.0)).abs() / (temp - 28.0);
        assert!(
            rise_err < 0.06,
            "{dia}\" {year}: {:.2} C vs paper {temp}",
            row.steady_temp.get()
        );
    }
}

#[test]
fn figure2_falloff_sequence() {
    let cfg = RoadmapConfig::default();
    let all = envelope_roadmap(&cfg);
    let falloff = |dia: f64, n: u32| {
        let pts: Vec<_> = all
            .iter()
            .filter(|p| p.platters == n && (p.diameter.get() - dia).abs() < 1e-9)
            .copied()
            .collect();
        falloff_year(&pts).expect("every configuration falls off eventually")
    };
    // Paper: 2.6" off at ~2003, 2.1" ~2004-05, 1.6" ~2006-07 (1 platter).
    assert_eq!(falloff(2.6, 1), 2003);
    assert!((2004..=2006).contains(&falloff(2.1, 1)));
    assert!((2006..=2008).contains(&falloff(1.6, 1)));
    // More platters never last longer.
    for dia in [2.6, 2.1, 1.6] {
        assert!(falloff(dia, 4) <= falloff(dia, 1));
    }
}

#[test]
fn figure2_capacity_tradeoff_at_2005() {
    // §4.1's example: in 2005 the 2.1" single-platter drive holds far
    // more than the 1.6" one (the paper quotes 61.13 vs 35.48 GB), and
    // doubling the 1.6" platters recovers the gap.
    let cfg = RoadmapConfig::default();
    let all = envelope_roadmap(&cfg);
    let cap = |dia: f64, n: u32| {
        all.iter()
            .find(|p| p.year == 2005 && p.platters == n && (p.diameter.get() - dia).abs() < 1e-9)
            .unwrap()
            .capacity
            .gigabytes()
    };
    let c21 = cap(2.1, 1);
    let c16 = cap(1.6, 1);
    let c16x2 = cap(1.6, 2);
    assert!((c21 / c16 - 61.13 / 35.48).abs() < 0.35, "ratio {:.2}", c21 / c16);
    assert!(c16x2 > c21, "two 1.6\" platters exceed one 2.1\"");
}

#[test]
fn figure3_cooling_buys_roadmap_years() {
    let cfg = RoadmapConfig::default();
    let years: Vec<i32> = [28.0, 23.0, 18.0]
        .iter()
        .map(|&amb| {
            let pts = roadmap_for(&cfg, Inches::new(1.6), 1, Celsius::new(amb));
            falloff_year(&pts).unwrap()
        })
        .collect();
    assert!(years[1] >= years[0]);
    assert!(years[2] >= years[1]);
    // Paper: one and two extra years for 5 C and 10 C.
    assert!(
        (1..=3).contains(&(years[2] - years[0])),
        "10 C bought {} years",
        years[2] - years[0]
    );
    // Even aggressive cooling cannot carry the terabit transition.
    assert!(years[2] <= 2010);
}

#[test]
fn form_factor_study_headline() {
    let study = form_factor_study(&RoadmapConfig::default());
    assert_eq!(study.small_falloff, Some(2002), "2.5\" case falls off immediately");
    assert!(study.cooling_needed >= 8.0, "needs {} C", study.cooling_needed);
    assert!(study.cooling_needed <= 25.0, "needs {} C", study.cooling_needed);
}

#[test]
fn roadmap_is_deterministic() {
    let a = envelope_roadmap(&RoadmapConfig::default());
    let b = envelope_roadmap(&RoadmapConfig::default());
    assert_eq!(a, b);
}
