//! §5 end-to-end: thermal slack, dynamic throttling and the closed-loop
//! DTM controller.

use dtm::{
    slack_roadmap, slack_table, throttling_curve, DtmController, DtmPolicy, SlackConfig,
    ThrottleExperiment, ThrottlePolicy,
};
use thermodisk::prelude::*;
use units::{Seconds, TempDelta};

#[test]
fn slack_numbers_match_section_5_2() {
    let rows = slack_table(&SlackConfig::default());
    let r26 = &rows[0];
    // Paper: 15,020 -> 26,750 RPM for the 2.6" single-platter drive.
    assert!((r26.envelope_rpm.get() - 15_020.0).abs() / 15_020.0 < 0.03);
    assert!((r26.slack_rpm.get() - 26_750.0).abs() / 26_750.0 < 0.05);
    // §5.2's quoted VCM powers.
    assert!((rows[1].vcm_power.get() - 2.28).abs() < 1e-9);
    assert!((rows[2].vcm_power.get() - 0.618).abs() < 1e-9);
}

#[test]
fn slack_roadmap_beats_envelope_roadmap_everywhere() {
    let points = slack_roadmap(&SlackConfig::default());
    assert!(!points.is_empty());
    for p in &points {
        assert!(p.slack_idr > p.envelope_idr);
    }
    // §5.2: around 5.6% better for the 2.6" drive in the later years.
    let late = points
        .iter()
        .find(|p| p.year == 2009 && (p.diameter.get() - 2.6).abs() < 1e-9)
        .unwrap();
    let gain = late.slack_idr.get() / late.envelope_idr.get() - 1.0;
    assert!(
        gain > 0.3,
        "VCM-off slack should buy a large IDR margin, got {:.1}%",
        gain * 100.0
    );
}

#[test]
fn figure7a_curve_shape() {
    let (exp, policy) = ThrottleExperiment::figure7a();
    let curve = throttling_curve(&exp, policy, &[0.5, 1.0, 2.0, 4.0, 8.0]);
    assert_eq!(curve.len(), 5);
    // Monotone decreasing.
    for w in curve.windows(2) {
        assert!(w[1].1 <= w[0].1 + 1e-9, "curve {curve:?}");
    }
    // Ratio >= 1 needs ~second-level granularity; it is lost by 4 s.
    assert!(curve[0].1 > 1.0, "0.5 s ratio {:.2}", curve[0].1);
    assert!(curve[3].1 < 1.0, "4 s ratio {:.2}", curve[3].1);
}

#[test]
fn figure7b_feasibility_boundaries() {
    let (exp, policy) = ThrottleExperiment::figure7b();
    // VCM-only cannot cool a 37,001 RPM drive (VCM-off steady 53.04 C).
    assert!(!exp.is_feasible(ThrottlePolicy::VcmOnly {
        rpm: Rpm::new(37_001.0)
    }));
    // Dropping to 22,001 RPM restores feasibility.
    assert!(exp.is_feasible(policy));
    let curve = throttling_curve(&exp, policy, &[0.5, 2.0, 8.0]);
    assert_eq!(curve.len(), 3);
    assert!(curve[0].1 > curve[2].1);
}

#[test]
fn closed_loop_throttling_respects_envelope_and_completes_work() {
    // A 24,534 RPM average-case design serving a seek-heavy stream.
    let spec = DiskSpec::era(2002, 1, Rpm::new(24_534.0));
    let system = StorageSystem::new(SystemConfig::single_disk(spec)).unwrap();
    let capacity = system.logical_sectors();
    let model = ThermalModel::new(DriveThermalSpec::new(Inches::new(2.6), 1));
    let start = model.steady_state(OperatingPoint::new(Rpm::new(24_534.0), 0.3));

    let trace: Vec<Request> = (0..3_000u64)
        .map(|i| {
            Request::new(
                i,
                Seconds::new(i as f64 / 130.0),
                0,
                i.wrapping_mul(9_999_991) % (capacity - 64),
                8,
                if i % 4 == 0 { RequestKind::Write } else { RequestKind::Read },
            )
        })
        .collect();

    let policy = DtmPolicy::Throttle {
        mechanism: ThrottlePolicy::VcmAndRpm {
            high: Rpm::new(24_534.0),
            low: Rpm::new(15_020.0),
        },
        guard: TempDelta::new(0.05),
        resume_margin: TempDelta::new(0.15),
    };
    let report = DtmController::new(system, model, policy, THERMAL_ENVELOPE)
        .with_initial_temps(start)
        .run(trace)
        .unwrap();

    assert_eq!(report.stats.count(), 3_000, "all requests complete");
    assert!(
        report.max_air.get() <= THERMAL_ENVELOPE.get() + 0.35,
        "peak {:.2} C",
        report.max_air.get()
    );
}

#[test]
fn slack_ramp_outperforms_static_envelope_design() {
    // The §5.2 promise, closed-loop: a two-speed disk that ramps into
    // the slack beats the static envelope design on response time while
    // staying inside the envelope.
    let build = || {
        let spec = DiskSpec::era(2002, 1, Rpm::new(15_020.0));
        let system = StorageSystem::new(SystemConfig::single_disk(spec)).unwrap();
        let model = ThermalModel::new(DriveThermalSpec::new(Inches::new(2.6), 1));
        (system, model)
    };
    let capacity = build().0.logical_sectors();
    let trace: Vec<Request> = (0..3_000u64)
        .map(|i| {
            Request::new(
                i,
                Seconds::new(i as f64 / 110.0),
                0,
                i.wrapping_mul(6_700_417) % (capacity - 64),
                8,
                RequestKind::Read,
            )
        })
        .collect();

    let (system, model) = build();
    let static_report = DtmController::new(system, model, DtmPolicy::None, THERMAL_ENVELOPE)
        .run(trace.clone())
        .unwrap();

    let (system, model) = build();
    let ramp_report = DtmController::new(
        system,
        model,
        DtmPolicy::SlackRamp {
            base: Rpm::new(15_020.0),
            high: Rpm::new(26_000.0),
            slack_margin: TempDelta::new(0.5),
        },
        THERMAL_ENVELOPE,
    )
    .run(trace)
    .unwrap();

    assert!(ramp_report.time_boosted.get() > 0.0);
    assert!(
        ramp_report.stats.mean() < static_report.stats.mean(),
        "boost: {:.2} ms vs static {:.2} ms",
        ramp_report.stats.mean().to_millis(),
        static_report.stats.mean().to_millis()
    );
    assert!(ramp_report.max_air.get() <= THERMAL_ENVELOPE.get() + 0.35);
}
