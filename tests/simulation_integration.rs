//! Figure 4 at reduced scale: the response-time benefit of faster
//! spindles across all five synthetic workloads, plus trace persistence.

use thermodisk::prelude::*;
use units::Rpm;

const N: usize = 6_000;
const SEED: u64 = 2026;

#[test]
fn every_workload_improves_with_rpm() {
    for preset in presets() {
        let base = preset.run(preset.base_rpm, N, SEED).unwrap();
        let plus5 = preset
            .run(preset.base_rpm + Rpm::new(5_000.0), N, SEED)
            .unwrap();
        let plus10 = preset
            .run(preset.base_rpm + Rpm::new(10_000.0), N, SEED)
            .unwrap();
        assert!(
            plus5.mean() < base.mean(),
            "{}: +5K must help ({} -> {})",
            preset.name,
            base.mean().to_millis(),
            plus5.mean().to_millis()
        );
        assert!(
            plus10.mean() < plus5.mean(),
            "{}: +10K must help further",
            preset.name
        );
        // The paper's Figure 4 band: +10K RPM buys very roughly 30-60%.
        let improvement = 1.0 - plus10.mean().get() / base.mean().get();
        assert!(
            improvement > 0.10,
            "{}: +10K only bought {:.0}%",
            preset.name,
            improvement * 100.0
        );
    }
}

#[test]
fn openmail_gains_most_oltp_least() {
    // The paper's ordering: the queue-bound OpenMail benefits the most
    // from +5K RPM (52.5%), the lightly loaded OLTP the least (20.8%).
    let gain = |preset: &WorkloadPreset| {
        let base = preset.run(preset.base_rpm, N, SEED).unwrap();
        let plus5 = preset
            .run(preset.base_rpm + Rpm::new(5_000.0), N, SEED)
            .unwrap();
        1.0 - plus5.mean().get() / base.mean().get()
    };
    let all = presets();
    let openmail_gain = gain(&all[0]);
    let oltp_gain = gain(&all[1]);
    assert!(
        openmail_gain > oltp_gain,
        "OpenMail ({openmail_gain:.2}) should outgain OLTP ({oltp_gain:.2})"
    );
}

#[test]
fn cdfs_shift_left_with_rpm() {
    // Figure 4's visual: the whole distribution moves toward small
    // response times as RPM rises.
    let preset = &presets()[2]; // Search-Engine
    let base = preset.run(preset.base_rpm, N, SEED).unwrap();
    let fast = preset
        .run(preset.base_rpm + Rpm::new(10_000.0), N, SEED)
        .unwrap();
    for (b, f) in base.cdf().iter().zip(fast.cdf().iter()) {
        assert!(
            f.1 >= b.1 - 1e-9,
            "at {} ms: {:.3} (fast) vs {:.3} (base)",
            b.0,
            f.1,
            b.1
        );
    }
}

#[test]
fn baseline_means_near_paper_values() {
    // Synthetic substitutes: the baselines should land in the same
    // regime as the published means (within a factor of ~1.6).
    for preset in presets() {
        let base = preset.run(preset.base_rpm, 20_000, SEED).unwrap();
        let ratio = base.mean().to_millis() / preset.paper_mean_response_ms;
        assert!(
            (0.5..2.0).contains(&ratio),
            "{}: {:.2} ms vs paper {:.2} ms",
            preset.name,
            base.mean().to_millis(),
            preset.paper_mean_response_ms
        );
    }
}

#[test]
fn traces_persist_and_replay_identically() {
    let preset = &presets()[3]; // TPC-C
    let trace = preset.generate(1_000, 7).unwrap();

    let mut buf = Vec::new();
    workloads::write_trace(&mut buf, &trace).unwrap();
    let restored = workloads::read_trace(buf.as_slice()).unwrap();
    assert_eq!(trace, restored);

    // Replaying the restored trace produces identical completions.
    let run = |trace: &[Request]| {
        let mut sys =
            StorageSystem::new(preset.system_config(preset.base_rpm).unwrap()).unwrap();
        for r in trace {
            sys.submit(*r).unwrap();
        }
        let mut done = sys.drain();
        done.sort_by_key(|c| c.request.id);
        done
    };
    let a = run(&trace);
    let b = run(&restored);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.request.id, y.request.id);
        assert!((x.finish.get() - y.finish.get()).abs() < 1e-12);
    }
}

#[test]
fn arm_movement_statistics_match_workload_character() {
    // OpenMail is seek-heavy, TPC-H streams: their arm-movement rates
    // must be ordered accordingly (paper: 86% for OpenMail).
    let measure = |preset: &WorkloadPreset| {
        let trace = preset.generate(4_000, 3).unwrap();
        let mut sys =
            StorageSystem::new(preset.system_config(preset.base_rpm).unwrap()).unwrap();
        for r in trace {
            sys.submit(r).unwrap();
        }
        let _ = sys.drain();
        let disks = sys.disks();
        disks.iter().map(|d| d.arm_movement_rate()).sum::<f64>() / disks.len() as f64
    };
    let all = presets();
    let openmail = measure(&all[0]);
    let tpch = measure(&all[4]);
    assert!(
        openmail > tpch,
        "OpenMail ({openmail:.2}) must out-seek TPC-H ({tpch:.2})"
    );
}
