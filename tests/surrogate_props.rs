//! Property tests for the capacity-planning surrogate against the
//! full simulator.
//!
//! The screening stage is only trustworthy if the surrogate preserves
//! the simulator's shape between grid nodes. Multilinear interpolation
//! is exactly piecewise-linear along each axis, so wherever the
//! simulated node values are monotone in arrival rate the surrogate's
//! predictions must be monotone too — for *any* pair of off-grid
//! rates, which is what the sampled-pair property below checks. The
//! simulator runs once (six sims) to fit the model; proptest then
//! hammers the fitted model with random rate pairs.
//!
//! A second property pins fit determinism: fitting the same sweep
//! twice — separately simulated — must produce byte-identical
//! serialized models, because the planner's committed artifacts are
//! diffed byte-for-byte across runs and thread counts.

use disklab::sweep::SweepSpec;
use disksurrogate::GridSurrogate;
use proptest::prelude::*;
use std::sync::OnceLock;

/// Rate-axis nodes for the property sweep; everything else is held at
/// a single node so rate is the only moving knob per DTM level.
const RATES: [f64; 3] = [150.0, 300.0, 450.0];

fn sweep() -> SweepSpec {
    SweepSpec {
        preset: "oltp".into(),
        rows: 1,
        requests: 150,
        seed: 7,
        rates: RATES.to_vec(),
        per_rack: vec![4.0],
        racks_per_row: vec![2.0],
        inlets_c: vec![28.0],
        dtm: vec![0.0, 1.0],
    }
}

/// Direction of a simulated output along the rate axis at one DTM
/// level, judged from the grid-node truth.
#[derive(Clone, Copy, PartialEq)]
enum Direction {
    NonDecreasing,
    NonIncreasing,
    /// The simulator itself is not monotone here — the property is
    /// vacuous for this output and it stays out of the check.
    Mixed,
}

fn direction(values: &[f64]) -> Direction {
    let up = values.windows(2).all(|w| w[0] <= w[1]);
    let down = values.windows(2).all(|w| w[0] >= w[1]);
    match (up, down) {
        (true, _) => Direction::NonDecreasing,
        (_, true) => Direction::NonIncreasing,
        _ => Direction::Mixed,
    }
}

/// The fitted model plus, per DTM level, each output's direction along
/// the rate axis. Simulated once; every proptest case reuses it.
struct Fitted {
    model: GridSurrogate,
    outputs: Vec<String>,
    directions: [Vec<Direction>; 2],
}

fn fitted() -> &'static Fitted {
    static FITTED: OnceLock<Fitted> = OnceLock::new();
    FITTED.get_or_init(|| {
        let spec = sweep();
        let grid = spec.grid();
        let train = spec.run(&grid, 2).expect("property sweep simulates");
        let model =
            GridSurrogate::fit(spec.axes().unwrap(), &train).expect("property sweep fits");
        let outputs: Vec<String> =
            train[0].outputs.iter().map(|(n, _)| n.clone()).collect();
        // Grid order is row-major with dtm fastest, so sample i covers
        // (rate RATES[i / 2], dtm i % 2).
        let directions = [0usize, 1].map(|dtm| {
            outputs
                .iter()
                .enumerate()
                .map(|(k, _)| {
                    let nodes: Vec<f64> = (0..RATES.len())
                        .map(|r| train[2 * r + dtm].outputs[k].1)
                        .collect();
                    direction(&nodes)
                })
                .collect()
        });
        Fitted {
            model,
            outputs,
            directions,
        }
    })
}

#[test]
fn simulator_is_monotone_in_rate_for_some_screening_output() {
    // If every output came back Mixed the pair property below would be
    // vacuously true; the sweep is sized so the load-driven outputs
    // (thermals, tail latency) move one way as rate grows.
    let fitted = fitted();
    let checked = fitted.directions[0]
        .iter()
        .chain(&fitted.directions[1])
        .filter(|d| **d != Direction::Mixed)
        .count();
    assert!(
        checked > 0,
        "no output is monotone in rate at the grid nodes; the \
         monotonicity property has nothing to check"
    );
}

/// One sampled-pair check: wherever the simulated node values are
/// monotone in arrival rate, the surrogate's off-grid predictions must
/// preserve that order. Returns the offending output on violation.
fn check_pair_preserves_order(a: f64, b: f64, dtm: usize) -> Result<(), String> {
    let fitted = fitted();
    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
    let at = |rate: f64| vec![rate, 4.0, 2.0, 28.0, dtm as f64];
    for (k, name) in fitted.outputs.iter().enumerate() {
        let dir = fitted.directions[dtm][k];
        if dir == Direction::Mixed {
            continue;
        }
        let p_lo = fitted.model.predict_one(k, &at(lo)).unwrap();
        let p_hi = fitted.model.predict_one(k, &at(hi)).unwrap();
        // Piecewise-linear interpolation through monotone nodes is
        // monotone exactly; the epsilon only absorbs float noise.
        let eps = 1e-9 * fitted.model.scale(k);
        let ordered = match dir {
            Direction::NonDecreasing => p_lo <= p_hi + eps,
            Direction::NonIncreasing => p_lo + eps >= p_hi,
            Direction::Mixed => unreachable!(),
        };
        if !ordered {
            return Err(format!(
                "{name} (dtm {dtm}): pred({lo}) = {p_lo} vs pred({hi}) = {p_hi} \
                 breaks the simulator's order"
            ));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn predictions_preserve_the_simulators_rate_monotonicity(
        a in RATES[0]..RATES[RATES.len() - 1],
        b in RATES[0]..RATES[RATES.len() - 1],
        dtm in 0usize..2,
    ) {
        prop_assert_eq!(check_pair_preserves_order(a, b, dtm), Ok(()));
    }
}

#[test]
fn fitting_the_same_sweep_twice_is_byte_identical() {
    let spec = sweep();
    let grid = spec.grid();
    // Two independent sweeps at different thread counts, two fits: the
    // serialized models must not differ in a single byte.
    let first = spec.run(&grid, 1).expect("first sweep");
    let second = spec.run(&grid, 4).expect("second sweep");
    let model1 = GridSurrogate::fit(spec.axes().unwrap(), &first).expect("first fit");
    let model2 = GridSurrogate::fit(spec.axes().unwrap(), &second).expect("second fit");
    let bytes1 = serde_json::to_string(&model1).expect("model serializes");
    let bytes2 = serde_json::to_string(&model2).expect("model serializes");
    assert_eq!(bytes1, bytes2, "same sweep, same fit, different bytes");
}
