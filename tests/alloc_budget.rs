//! The allocation budget of the steady-state hot path is zero.
//!
//! The event core keeps every per-window buffer — calendar buckets,
//! request slab, parent slab, completion batches, stats reservoir,
//! thermal scratch — alive across calls, so once the structures have
//! grown to the workload's high-water mark, serving another window
//! must not touch the heap at all. This test pins that property with a
//! counting global allocator: warm a RAID-5 storage system and a
//! thermally-coupled `WindowedDrive` past the calendar ring's wrap
//! (512 buckets x 5 ms = 2.56 s of simulated time), then assert that
//! a long run of further windows performs **zero** heap allocations.
//! A third subject pins the surrogate training sweep's per-point
//! target reduction (`disklab::sweep::reduce_targets`) to the same
//! budget once its scratch buffers are warm.
//!
//! Everything lives in one `#[test]` function: the counter is global,
//! and the test harness runs sibling tests on other threads, which
//! would otherwise charge their allocations to this budget.

use disksim::{Completion, DiskSpec, Request, RequestKind, StorageSystem, SystemConfig};
use diskthermal::{DriveThermalSpec, ThermalModel};
use dtm::{WindowSample, WindowedDrive};
use std::alloc::{GlobalAlloc, Layout, System};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use units::{Inches, Rpm, Seconds};

/// Forwards to the system allocator, counting every `alloc`/`realloc`.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Heap allocations since process start.
fn allocations() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// A steady mixed read/write stream striding the address space.
fn trace(requests: u64, rate: f64, capacity: u64) -> Vec<Request> {
    (0..requests)
        .map(|i| {
            Request::new(
                i,
                Seconds::new(i as f64 / rate),
                0,
                i.wrapping_mul(7_777_777) % (capacity - 256),
                8,
                if i % 4 == 0 {
                    RequestKind::Write
                } else {
                    RequestKind::Read
                },
            )
        })
        .collect()
}

/// Control-window width shared by both subjects (the fleet default).
const WINDOW: f64 = 0.25;
/// Warm-up windows: two minutes of simulated time. This must cover
/// more than the calendar ring's first wrap (512 buckets x 5 ms =
/// 2.56 s): per-bucket capacities and the stats reservoir grow to a
/// *distribution-dependent* high-water mark, and the Poisson tail of
/// events-per-bucket keeps nudging capacities up for many wraps
/// before every bucket has seen its worst case.
const WARM_WINDOWS: u64 = 480;
/// Windows served under the zero-allocation assertion.
const MEASURED_WINDOWS: u64 = 40;

/// Runs `count` windows of admit + advance against `sys`, starting at
/// global window index `first`. Returns the next window index.
fn run_windows(
    sys: &mut StorageSystem,
    pending: &mut VecDeque<Request>,
    out: &mut Vec<Completion>,
    first: u64,
    count: u64,
) -> u64 {
    for w in first..first + count {
        let end = Seconds::new((w + 1) as f64 * WINDOW);
        while let Some(front) = pending.front() {
            if front.arrival > end {
                break;
            }
            let r = *front;
            pending.pop_front();
            sys.submit(r).expect("trace is in range");
        }
        out.clear();
        sys.advance_to_into(end, out);
    }
    first + count
}

#[test]
fn steady_state_windows_allocate_nothing() {
    let spec = DiskSpec::era(2002, 1, Rpm::new(15_020.0));

    // --- Subject 1: RAID-5 array (parity fan-out, slab, calendar). ---
    let mut sys = StorageSystem::new(
        SystemConfig::raid5(spec.clone(), 4, 64).expect("valid raid5 config"),
    )
    .expect("valid system");
    let capacity = sys.logical_sectors();
    let total = WARM_WINDOWS + MEASURED_WINDOWS + 8;
    let rate = 50.0;
    let requests = (total as f64 * WINDOW * rate) as u64 + 64;
    let mut pending: VecDeque<Request> = trace(requests, rate, capacity).into();
    // Caller-owned scratch: generous up-front capacity, like any
    // long-lived driver would hold.
    let mut out: Vec<Completion> = Vec::with_capacity(4_096);

    let next = run_windows(&mut sys, &mut pending, &mut out, 0, WARM_WINDOWS);
    let before = allocations();
    run_windows(&mut sys, &mut pending, &mut out, next, MEASURED_WINDOWS);
    let raid_allocs = allocations() - before;
    assert_eq!(
        raid_allocs, 0,
        "RAID-5 window loop allocated {raid_allocs} times in steady state"
    );

    // --- Subject 2: WindowedDrive (storage + thermal transient). ---
    let sys = StorageSystem::new(SystemConfig::single_disk(spec)).expect("valid system");
    let capacity = sys.logical_sectors();
    let model = ThermalModel::new(DriveThermalSpec::new(Inches::new(2.6), 1));
    let mut drive = WindowedDrive::new(sys, model);
    let mut pending: VecDeque<Request> = trace(requests, rate, capacity).into();
    let mut completions: Vec<Completion> = Vec::with_capacity(4_096);
    let mut samples: Vec<WindowSample> = Vec::with_capacity(16);
    let window = Seconds::new(WINDOW);
    let windows_per_epoch = 4;

    let warm_epochs = WARM_WINDOWS / windows_per_epoch;
    for epoch in 0..warm_epochs {
        completions.clear();
        drive
            .serve_epoch(
                &mut pending,
                false,
                epoch * windows_per_epoch,
                windows_per_epoch as usize,
                window,
                &mut completions,
                &mut samples,
            )
            .expect("trace is in range");
    }
    let before = allocations();
    for epoch in warm_epochs..warm_epochs + MEASURED_WINDOWS / windows_per_epoch {
        completions.clear();
        drive
            .serve_epoch(
                &mut pending,
                false,
                epoch * windows_per_epoch,
                windows_per_epoch as usize,
                window,
                &mut completions,
                &mut samples,
            )
            .expect("trace is in range");
    }
    let dtm_allocs = allocations() - before;
    assert_eq!(
        dtm_allocs, 0,
        "WindowedDrive epoch loop allocated {dtm_allocs} times in steady state"
    );
    assert!(
        drive.in_flight() < u64::MAX,
        "keep the drive alive past the measurement"
    );

    // --- Subject 3: the capacity sweep's per-point target reduction. ---
    // The surrogate training sweep reduces every fleet report to its
    // target vector through `SweepScratch`: histogram reset + re-bucket,
    // reservoir percentile into a reused sort buffer, values into a
    // reused `Vec<f64>`. After one warm-up reduction has grown the
    // buffers and seeded the registry keys, reducing another report
    // must not touch the heap. (The fleet simulation producing the
    // report, and the one names-clone materializing a `TrainingSample`,
    // allocate by design and stay outside the measured region.)
    let spec = disklab::sweep::SweepSpec {
        preset: "oltp".into(),
        rows: 1,
        requests: 200,
        seed: 7,
        rates: vec![200.0],
        per_rack: vec![4.0],
        racks_per_row: vec![2.0],
        inlets_c: vec![28.0],
        dtm: vec![0.0],
    };
    let mut scratch = disklab::sweep::SweepScratch::new();
    let report = spec
        .simulate(&[200.0, 4.0, 2.0, 28.0, 0.0], &mut scratch)
        .expect("sweep point simulates");
    disklab::sweep::reduce_targets(&report, &mut scratch);
    let before = allocations();
    for _ in 0..64 {
        disklab::sweep::reduce_targets(&report, &mut scratch);
    }
    let sweep_allocs = allocations() - before;
    assert_eq!(
        sweep_allocs, 0,
        "sweep target reduction allocated {sweep_allocs} times in steady state"
    );
    assert!(
        scratch.values.iter().all(|v| v.is_finite()),
        "reduced targets stay finite"
    );
}
