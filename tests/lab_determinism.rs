//! Integration: the `lab` engine must be deterministic across thread
//! counts — running the full registry with one worker and with eight
//! workers has to produce byte-identical JSON payloads — and a repeat
//! run must be served entirely from the cache without changing a byte.

use disklab::{Engine, Scale};
use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

/// All `*.json` payloads in a results directory, except the manifest
/// (whose timing fields legitimately differ run to run).
fn payloads(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    for entry in fs::read_dir(dir).unwrap() {
        let path = entry.unwrap().path();
        let name = path.file_name().unwrap().to_string_lossy().to_string();
        if name.ends_with(".json") && name != "manifest.json" {
            out.insert(name, fs::read(&path).unwrap());
        }
    }
    out
}

fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("disklab-det-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

#[test]
fn thread_count_does_not_change_results() {
    let dir1 = scratch("t1");
    let dir8 = scratch("t8");

    let summary1 = Engine::at(&dir1)
        .threads(1)
        .run(disklab::registry(Scale::Quick))
        .unwrap();
    let summary8 = Engine::at(&dir8)
        .threads(8)
        .run(disklab::registry(Scale::Quick))
        .unwrap();

    assert_eq!(summary1.manifest.threads, 1);
    assert_eq!(summary8.manifest.threads, 8);

    let files1 = payloads(&dir1);
    let files8 = payloads(&dir8);
    assert_eq!(
        files1.keys().collect::<Vec<_>>(),
        files8.keys().collect::<Vec<_>>(),
        "both runs must produce the same file set"
    );
    assert!(!files1.is_empty());
    for (name, bytes) in &files1 {
        assert_eq!(bytes, &files8[name], "{name} differs between 1 and 8 threads");
    }

    // Manifests must agree on everything except timings.
    let m1 = &summary1.manifest;
    let m8 = &summary8.manifest;
    assert_eq!(m1.crate_version, m8.crate_version);
    assert_eq!(m1.experiments.len(), m8.experiments.len());
    for (a, b) in m1.experiments.iter().zip(&m8.experiments) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.cache, b.cache);
        assert_eq!(a.outputs, b.outputs);
    }

    // A repeat run over the same cache is all hits and changes nothing.
    let before = payloads(&dir8);
    let again = Engine::at(&dir8)
        .threads(8)
        .run(disklab::registry(Scale::Quick))
        .unwrap();
    assert_eq!(again.manifest.hits(), again.manifest.experiments.len());
    assert_eq!(again.manifest.misses(), 0);
    assert_eq!(before, payloads(&dir8));

    let _ = fs::remove_dir_all(&dir1);
    let _ = fs::remove_dir_all(&dir8);
}

#[test]
fn parallel_map_sweeps_match_serial_bitwise() {
    use diskthermal::{DriveThermalSpec, OperatingPoint, ThermalModel};

    // The same floating-point sweep through one worker and through many
    // must produce bitwise-identical numbers in the same order.
    let rpms: Vec<f64> = (0..64).map(|i| 10_000.0 + i as f64 * 137.0).collect();
    let air_for = |rpm: f64| {
        let model = ThermalModel::new(DriveThermalSpec::cheetah_15k3());
        model
            .steady_state(OperatingPoint::seeking(units::Rpm::new(rpm)))
            .air
            .get()
    };
    let serial = disklab::parallel_map(rpms.clone(), 1, air_for);
    let threaded = disklab::parallel_map(rpms, 8, air_for);
    let serial_bits: Vec<u64> = serial.iter().map(|x| x.to_bits()).collect();
    let threaded_bits: Vec<u64> = threaded.iter().map(|x| x.to_bits()).collect();
    assert_eq!(serial_bits, threaded_bits);

    // And the experiments whose sweeps run through `parallel_map` must
    // emit the same payloads and reports run over run.
    for name in ["figure3", "figure7"] {
        let exp = disklab::by_name(name, Scale::Full).unwrap();
        let one = exp.run().unwrap();
        let two = exp.run().unwrap();
        assert_eq!(one.text, two.text, "{name} report varies across runs");
        assert_eq!(one.json, two.json, "{name} payload varies across runs");
    }
}

#[test]
fn capacity_plan_is_byte_identical_at_any_parallelism() {
    use disklab::experiments::capacity_plan::CapacityPlan;
    use disklab::Experiment;

    // The two-stage planner sweeps, cross-validates, and verifies
    // through the work-stealing pool; its committed artifacts must not
    // depend on how many workers the pool ran.
    let mut serial = CapacityPlan::at_scale(Scale::Quick);
    serial.threads = 1;
    let mut wide = CapacityPlan::at_scale(Scale::Quick);
    wide.threads = 8;

    let one = serial.run().unwrap();
    let eight = wide.run().unwrap();
    assert_eq!(one.text, eight.text, "plan report varies with threads");
    assert_eq!(
        one.json.len(),
        eight.json.len(),
        "plan output count varies with threads"
    );
    for ((name1, payload1), (name8, payload8)) in one.json.iter().zip(&eight.json) {
        assert_eq!(name1, name8);
        let bytes1 = serde_json::to_string(payload1).unwrap();
        let bytes8 = serde_json::to_string(payload8).unwrap();
        assert_eq!(bytes1, bytes8, "{name1} differs between 1 and 8 workers");
    }
}

#[test]
fn fleet_shard_count_does_not_change_results() {
    use diskfleet::{Fleet, FleetConfig, FleetDtmPolicy, RoutingPolicy};
    use disksim::{DiskSpec, Request, RequestKind};
    use diskthermal::{DriveThermalSpec, THERMAL_ENVELOPE};
    use units::{Inches, Rpm, Seconds, TempDelta};

    // The fleet's sharded epoch loop must be byte-identical at any
    // shard count, with every coupling mechanism engaged: thermal-aware
    // routing, airflow preheat, and an actively scaling coordinator.
    let run = |threads: usize| {
        let mut config = FleetConfig::serial(
            6,
            DiskSpec::era(2002, 1, Rpm::new(15_020.0)),
            DriveThermalSpec::new(Inches::new(2.6), 1),
            8.0,
        )
        .unwrap();
        config.threads = threads;
        config.routing = RoutingPolicy::ThermalAware {
            envelope: THERMAL_ENVELOPE,
        };
        config.dtm = FleetDtmPolicy::SpeedScale {
            high: Rpm::new(15_020.0),
            low: Rpm::new(12_000.0),
            guard: TempDelta::new(0.3),
            resume_margin: TempDelta::new(0.3),
        };
        let trace: Vec<Request> = (0..900u64)
            .map(|i| {
                Request::new(
                    i,
                    Seconds::new(i as f64 / 300.0),
                    0,
                    i.wrapping_mul(7_777_777),
                    8,
                    if i % 4 == 0 { RequestKind::Write } else { RequestKind::Read },
                )
            })
            .collect();
        serde_json::to_string(&Fleet::new(config).unwrap().run(trace).unwrap()).unwrap()
    };
    let serial = run(1);
    assert_eq!(serial, run(8), "fleet results differ between 1 and 8 shards");
}

#[test]
fn fleet_hall_payload_is_byte_identical_at_any_shard_count() {
    use disklab::experiments::fleet_hall::FleetHall;
    use disklab::Experiment;

    // The hall experiment exercises the hierarchical airflow reduce and
    // the rack-aligned pass-B chunking; its payload and report must not
    // depend on how many shards the epoch loop ran on.
    let at = |threads: usize| {
        let mut exp = FleetHall::at_scale(Scale::Quick);
        exp.threads = threads;
        exp.run().unwrap()
    };
    let one = at(1);
    for threads in [3, 8] {
        let many = at(threads);
        assert_eq!(one.text, many.text, "report differs at {threads} shards");
        assert_eq!(one.json, many.json, "payload differs at {threads} shards");
    }
}

#[test]
fn scenario_rebuild_is_byte_identical_at_any_shard_count() {
    use disklab::experiments::scenario_rebuild::ScenarioRebuild;
    use disklab::Experiment;

    // The rebuild storm drives every scenario mechanism — epoch-boundary
    // failure injection, degraded reads fanning across the survivors,
    // background rebuild I/O — through the sharded epoch loop. Payload,
    // report, and the attached CSV timeseries must not depend on the
    // shard count.
    let at = |threads: usize| {
        let mut exp = ScenarioRebuild::at_scale(Scale::Quick);
        exp.threads = threads;
        exp.run().unwrap()
    };
    let one = at(1);
    for threads in [4, 8] {
        let many = at(threads);
        assert_eq!(one.text, many.text, "report differs at {threads} shards");
        assert_eq!(one.json, many.json, "payload differs at {threads} shards");
        assert_eq!(one.files, many.files, "csv differs at {threads} shards");
    }
}

#[test]
fn trace_bytes_are_identical_at_any_shard_count() {
    // The whole point of stamping events with sim time and merging
    // buffered streams in the serial phases: `lab trace fleet_routing`
    // must emit byte-identical NDJSON (and derived metrics/timeseries)
    // whether the epoch loop runs on one shard or eight.
    let dir1 = scratch("trace1");
    let dir8 = scratch("trace8");
    let one = disklab::run_trace("fleet_routing", 1, &dir1).unwrap();
    let eight = disklab::run_trace("fleet_routing", 8, &dir8).unwrap();
    assert!(one.events > 0);
    assert_eq!(one.events, eight.events);
    assert_eq!(one.files.len(), 3);
    for (a, b) in one.files.iter().zip(&eight.files) {
        assert_eq!(
            a.file_name(),
            b.file_name(),
            "trace runs must produce the same file set"
        );
        let bytes_a = fs::read(a).unwrap();
        let bytes_b = fs::read(b).unwrap();
        assert!(!bytes_a.is_empty());
        assert_eq!(
            bytes_a,
            bytes_b,
            "{} differs between 1 and 8 shards",
            a.file_name().unwrap().to_string_lossy()
        );
    }
    let _ = fs::remove_dir_all(&dir1);
    let _ = fs::remove_dir_all(&dir8);
}
