//! Disk geometry and capacity model (§3.1 of the paper).
//!
//! This crate models the *recorded* geometry of a hard disk drive:
//!
//! - [`RecordingTech`] — linear density (BPI), track density (TPI), the
//!   derived areal density and bit aspect ratio, and the ECC strength the
//!   paper ties to areal density (416 bits/sector below 1 Tb/in²,
//!   1440 bits/sector at terabit densities).
//! - [`Platter`] — a platter of a given diameter with the paper's
//!   `r_i = r_o / 2` rule and 2/3 stroke efficiency, yielding the cylinder
//!   count and per-track radii/perimeters (eq. 1).
//! - [`ZoneTable`] — Zoned Bit Recording: equal-track-count zones where
//!   every track is allocated the bit budget of the zone's innermost
//!   track, then derated by embedded-servo and ECC overheads.
//! - [`DriveGeometry`] — a whole drive (platter × count × recording),
//!   raw/ZBR/derated capacities (eq. 3) and a bijective LBA ↔ physical
//!   location mapping used by the `disksim` crate.
//!
//! # Examples
//!
//! Reproduce the zone-0 sector count that feeds the paper's IDR equation:
//!
//! ```
//! use diskgeom::{DriveGeometry, Platter, RecordingTech};
//! use units::{BitsPerInch, Inches, TracksPerInch};
//!
//! let tech = RecordingTech::new(
//!     BitsPerInch::from_kbpi(593.19), // 2002 projection
//!     TracksPerInch::from_ktpi(67.5),
//! );
//! let drive = DriveGeometry::new(Platter::new(Inches::new(2.6)), tech, 1, 50)?;
//! let zone0 = drive.zones().outermost();
//! assert!(zone0.sectors_per_track().get() > 1000);
//! # Ok::<(), diskgeom::GeometryError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod capacity;
mod drive;
mod error;
mod platter;
mod recording;
mod zones;

pub use capacity::CapacityBreakdown;
pub use drive::{DriveGeometry, Location};
pub use error::GeometryError;
pub use platter::{Platter, STROKE_EFFICIENCY};
pub use recording::{EccPolicy, RecordingTech, ECC_BITS_STANDARD, ECC_BITS_TERABIT};
pub use zones::{Zone, ZoneTable};
