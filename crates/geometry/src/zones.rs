//! Zoned Bit Recording (ZBR) zone tables.
//!
//! Tracks are grouped into `n_zones` zones of equal track count; every
//! track in a zone is allocated the bit budget of the zone's *innermost*
//! (shortest) track, trading a little capacity for simple channel
//! electronics. Each sector then pays an embedded-servo field
//! (`⌈log₂ n_cylin⌉` bits, eq. 2) and an ECC field on top of its 4096 raw
//! data bits.

use crate::{GeometryError, Platter, RecordingTech};
use serde::{Deserialize, Serialize};
use units::{Bits, Inches, SectorCount, RAW_BITS_PER_SECTOR};

/// One ZBR zone: a run of equally-provisioned tracks.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Zone {
    index: u32,
    first_cylinder: u32,
    cylinders: u32,
    min_radius: Inches,
    raw_bits_per_track: Bits,
    sectors_per_track: SectorCount,
}

impl Zone {
    /// Zone index; zone 0 is outermost.
    pub fn index(&self) -> u32 {
        self.index
    }

    /// First cylinder of this zone (cylinder 0 is outermost).
    pub fn first_cylinder(&self) -> u32 {
        self.first_cylinder
    }

    /// Number of cylinders (tracks per surface) in this zone.
    pub fn cylinders(&self) -> u32 {
        self.cylinders
    }

    /// One past the last cylinder of this zone.
    pub fn end_cylinder(&self) -> u32 {
        self.first_cylinder + self.cylinders
    }

    /// Radius of the zone's innermost track, which sets its bit budget.
    pub fn min_radius(&self) -> Inches {
        self.min_radius
    }

    /// Raw bit budget allocated to *every* track in the zone
    /// (`C_t_zmin = 2π r_zmin · BPI`).
    pub fn raw_bits_per_track(&self) -> Bits {
        self.raw_bits_per_track
    }

    /// User sectors per track after servo + ECC derating.
    pub fn sectors_per_track(&self) -> SectorCount {
        self.sectors_per_track
    }

    /// User sectors in the whole zone on one surface.
    pub fn sectors_per_surface(&self) -> SectorCount {
        self.sectors_per_track * self.cylinders as u64
    }
}

/// A complete ZBR zone table for one surface.
///
/// # Examples
///
/// ```
/// use diskgeom::{Platter, RecordingTech, ZoneTable};
/// use units::{BitsPerInch, Inches, TracksPerInch};
///
/// let tech = RecordingTech::new(
///     BitsPerInch::from_kbpi(256.0),
///     TracksPerInch::from_ktpi(13.0),
/// );
/// let table = ZoneTable::new(Platter::new(Inches::new(3.3)), tech, 30)?;
/// assert_eq!(table.zone_count(), 30);
/// // Outer zones hold more sectors per track than inner ones.
/// assert!(table.outermost().sectors_per_track() > table.innermost().sectors_per_track());
/// # Ok::<(), diskgeom::GeometryError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ZoneTable {
    zones: Vec<Zone>,
    total_cylinders: u32,
    servo_bits: u32,
    ecc_bits: u32,
}

impl ZoneTable {
    /// Builds the zone table for one recording surface.
    ///
    /// # Errors
    ///
    /// - [`GeometryError::InvalidParameter`] if the platter or densities
    ///   are non-positive, or `n_zones == 0`.
    /// - [`GeometryError::TooManyZones`] if there are fewer cylinders
    ///   than zones.
    /// - [`GeometryError::TrackTooShort`] if the innermost zone cannot
    ///   hold a single derated sector per track.
    pub fn new(
        platter: Platter,
        tech: RecordingTech,
        n_zones: u32,
    ) -> Result<Self, GeometryError> {
        if !tech.is_valid() {
            return Err(GeometryError::InvalidParameter {
                name: "recording density",
            });
        }
        if n_zones == 0 {
            return Err(GeometryError::InvalidParameter { name: "n_zones" });
        }
        let total_cylinders = platter.cylinders(tech.tpi());
        if total_cylinders < n_zones {
            return Err(GeometryError::TooManyZones {
                zones: n_zones,
                cylinders: total_cylinders,
            });
        }

        // Embedded-servo track-id field: Gray-coded cylinder number (eq. 2).
        let servo_bits = (total_cylinders as f64).log2().ceil() as u32;
        let ecc_bits = tech.ecc_bits_per_sector();
        // The ECC budget is a *fraction of the total capacity* ("about
        // 10% of the available capacity", rising to 35% at terabit
        // densities): 416 bits against a 4096-bit sector is 10.16% of
        // the raw medium, so each stored sector occupies
        // 4096 / (1 - f) bits plus its embedded servo field.
        let ecc_fraction = ecc_bits as f64 / RAW_BITS_PER_SECTOR as f64;
        let effective_sector_bits =
            RAW_BITS_PER_SECTOR as f64 / (1.0 - ecc_fraction) + servo_bits as f64;

        let tracks_per_zone = total_cylinders / n_zones;
        let mut zones = Vec::with_capacity(n_zones as usize);
        for z in 0..n_zones {
            let first_cylinder = z * tracks_per_zone;
            // The zone's bit budget comes from its innermost track.
            let innermost = first_cylinder + tracks_per_zone - 1;
            let min_radius = platter.track_radius(innermost, total_cylinders);
            let raw_bits = core::f64::consts::TAU * min_radius.get() * tech.bpi().get();
            let spt = (raw_bits / effective_sector_bits).floor() as u64;
            if spt == 0 {
                return Err(GeometryError::TrackTooShort {
                    raw_bits,
                    effective_sector_bits,
                });
            }
            zones.push(Zone {
                index: z,
                first_cylinder,
                cylinders: tracks_per_zone,
                min_radius,
                raw_bits_per_track: Bits::new(raw_bits),
                sectors_per_track: SectorCount::new(spt),
            });
        }

        Ok(Self {
            zones,
            total_cylinders,
            servo_bits,
            ecc_bits,
        })
    }

    /// All zones, outermost first.
    pub fn zones(&self) -> &[Zone] {
        &self.zones
    }

    /// Number of zones.
    pub fn zone_count(&self) -> u32 {
        self.zones.len() as u32
    }

    /// The outermost zone (zone 0), which carries the peak data rate.
    pub fn outermost(&self) -> &Zone {
        &self.zones[0]
    }

    /// The innermost zone.
    pub fn innermost(&self) -> &Zone {
        self.zones.last().expect("zone table is never empty")
    }

    /// Total cylinders on the surface (including any trailing cylinders
    /// left over from the equal-split that belong to no zone).
    pub fn total_cylinders(&self) -> u32 {
        self.total_cylinders
    }

    /// Cylinders actually covered by zones (`tracks_per_zone × n_zones`).
    pub fn used_cylinders(&self) -> u32 {
        self.zones
            .last()
            .map(Zone::end_cylinder)
            .unwrap_or_default()
    }

    /// Servo bits charged to each sector (eq. 2).
    pub fn servo_bits(&self) -> u32 {
        self.servo_bits
    }

    /// ECC bits charged to each sector.
    pub fn ecc_bits(&self) -> u32 {
        self.ecc_bits
    }

    /// Raw bits a sector occupies on the medium once servo and ECC are
    /// embedded alongside the 4096 data bits. ECC consumes a fraction
    /// `ecc_bits / 4096` of the total medium, so the stored sector is
    /// `4096 / (1 - f)` bits plus the servo field.
    pub fn effective_sector_bits(&self) -> u32 {
        let f = self.ecc_bits as f64 / RAW_BITS_PER_SECTOR as f64;
        (RAW_BITS_PER_SECTOR as f64 / (1.0 - f) + self.servo_bits as f64).round() as u32
    }

    /// Total user sectors on one surface.
    pub fn sectors_per_surface(&self) -> SectorCount {
        self.zones.iter().map(Zone::sectors_per_surface).sum()
    }

    /// The zone containing the given cylinder, or `None` for leftover
    /// cylinders beyond the zoned region.
    pub fn zone_of_cylinder(&self, cylinder: u32) -> Option<&Zone> {
        if cylinder >= self.used_cylinders() {
            return None;
        }
        let tracks_per_zone = self.zones[0].cylinders;
        self.zones.get((cylinder / tracks_per_zone) as usize)
    }

    /// Iterates over `(zone, cylinder)` pairs in outer-to-inner order.
    pub fn iter_cylinders(&self) -> impl Iterator<Item = (&Zone, u32)> + '_ {
        self.zones
            .iter()
            .flat_map(|z| (z.first_cylinder..z.end_cylinder()).map(move |c| (z, c)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use units::{BitsPerInch, TracksPerInch};

    fn atlas_10k_table() -> ZoneTable {
        let tech = RecordingTech::new(
            BitsPerInch::from_kbpi(256.0),
            TracksPerInch::from_ktpi(13.0),
        );
        ZoneTable::new(Platter::new(Inches::new(3.3)), tech, 30).unwrap()
    }

    #[test]
    fn zone_partition_is_contiguous_and_equal() {
        let t = atlas_10k_table();
        let tracks_per_zone = t.zones()[0].cylinders();
        let mut next = 0;
        for z in t.zones() {
            assert_eq!(z.first_cylinder(), next);
            assert_eq!(z.cylinders(), tracks_per_zone);
            next = z.end_cylinder();
        }
        assert_eq!(t.used_cylinders(), next);
        assert!(t.used_cylinders() <= t.total_cylinders());
        // At most one zone's worth of leftover cylinders.
        assert!(t.total_cylinders() - t.used_cylinders() < t.zone_count());
    }

    #[test]
    fn sectors_per_track_decrease_inward() {
        let t = atlas_10k_table();
        let mut prev = u64::MAX;
        for z in t.zones() {
            let spt = z.sectors_per_track().get();
            assert!(spt <= prev, "inner zones cannot hold more sectors");
            prev = spt;
        }
    }

    #[test]
    fn servo_bits_match_gray_code_width() {
        let t = atlas_10k_table();
        // 7150 cylinders -> ceil(log2) = 13 bits.
        assert_eq!(t.total_cylinders(), 7150);
        assert_eq!(t.servo_bits(), 13);
        // 4096 / (1 - 416/4096) + 13 = 4559 + 13 = 4572.
        assert_eq!(t.effective_sector_bits(), 4572);
    }

    #[test]
    fn zone0_sector_count_matches_paper_idr_model() {
        // Hand-validated against Table 1: the Atlas 10K zone-0 sector
        // count implies the paper's 46.5 MB/s model IDR at 10K RPM.
        let t = atlas_10k_table();
        let spt = t.outermost().sectors_per_track().get();
        let idr = (10_000.0 / 60.0) * (spt as f64 * 512.0 / (1u64 << 20) as f64);
        assert!(
            (idr - 46.5).abs() < 0.5,
            "zone-0 IDR {idr:.1} MB/s should match the paper's 46.5"
        );
    }

    #[test]
    fn zone_lookup_by_cylinder() {
        let t = atlas_10k_table();
        assert_eq!(t.zone_of_cylinder(0).unwrap().index(), 0);
        let last_used = t.used_cylinders() - 1;
        assert_eq!(
            t.zone_of_cylinder(last_used).unwrap().index(),
            t.zone_count() - 1
        );
        assert!(t.zone_of_cylinder(t.total_cylinders()).is_none());
    }

    #[test]
    fn iter_cylinders_covers_every_used_cylinder_once() {
        let tech = RecordingTech::new(
            BitsPerInch::from_kbpi(256.0),
            TracksPerInch::from_ktpi(1.0),
        );
        let t = ZoneTable::new(Platter::new(Inches::new(3.3)), tech, 10).unwrap();
        let cylinders: Vec<u32> = t.iter_cylinders().map(|(_, c)| c).collect();
        assert_eq!(cylinders.len() as u32, t.used_cylinders());
        for (i, c) in cylinders.iter().enumerate() {
            assert_eq!(i as u32, *c);
        }
    }

    #[test]
    fn too_many_zones_is_rejected() {
        let tech = RecordingTech::new(
            BitsPerInch::from_kbpi(256.0),
            TracksPerInch::new(100.0), // ~55 cylinders on a 3.3" platter
        );
        let err = ZoneTable::new(Platter::new(Inches::new(3.3)), tech, 1000).unwrap_err();
        assert!(matches!(err, GeometryError::TooManyZones { .. }));
    }

    #[test]
    fn absurdly_low_bpi_is_rejected() {
        let tech = RecordingTech::new(
            BitsPerInch::new(10.0), // ~80 bits on the innermost track
            TracksPerInch::from_ktpi(13.0),
        );
        let err = ZoneTable::new(Platter::new(Inches::new(3.3)), tech, 30).unwrap_err();
        assert!(matches!(err, GeometryError::TrackTooShort { .. }));
    }

    #[test]
    fn invalid_density_is_rejected() {
        let tech = RecordingTech::new(BitsPerInch::ZERO, TracksPerInch::from_ktpi(13.0));
        let err = ZoneTable::new(Platter::new(Inches::new(3.3)), tech, 30).unwrap_err();
        assert!(matches!(err, GeometryError::InvalidParameter { .. }));
    }

    #[test]
    fn zero_zones_is_rejected() {
        let tech = RecordingTech::new(
            BitsPerInch::from_kbpi(256.0),
            TracksPerInch::from_ktpi(13.0),
        );
        let err = ZoneTable::new(Platter::new(Inches::new(3.3)), tech, 0).unwrap_err();
        assert!(matches!(err, GeometryError::InvalidParameter { name: "n_zones" }));
    }

    #[test]
    fn more_zones_recover_more_capacity() {
        // Finer zoning wastes fewer bits on the min-track allocation, so
        // per-surface capacity grows (or at worst stays equal) with zones.
        let tech = RecordingTech::new(
            BitsPerInch::from_kbpi(256.0),
            TracksPerInch::from_ktpi(13.0),
        );
        let platter = Platter::new(Inches::new(3.3));
        let coarse = ZoneTable::new(platter, tech, 10).unwrap();
        let fine = ZoneTable::new(platter, tech, 30).unwrap();
        assert!(fine.sectors_per_surface() >= coarse.sectors_per_surface());
    }
}
