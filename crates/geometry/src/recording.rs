//! Recording technology: densities and error-correction overhead.

use serde::{Deserialize, Serialize};
use units::{ArealDensity, BitAspectRatio, BitsPerInch, TracksPerInch};

/// ECC overhead per sector for sub-terabit areal densities, in raw bits.
///
/// The paper cites ~10 % of capacity for current disks, modeled as a flat
/// 416 bits on a 4096-bit sector.
pub const ECC_BITS_STANDARD: u32 = 416;

/// ECC overhead per sector for terabit-class areal densities, in raw
/// bits (~35 % of capacity per Wood's feasibility study).
pub const ECC_BITS_TERABIT: u32 = 1440;

/// How the per-sector ECC budget is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum EccPolicy {
    /// The paper's model: 416 bits/sector below 1 Tb/in², 1440 at or
    /// above it (§3.1, "Capacity Adjustments due to Error-Correcting
    /// Codes").
    #[default]
    ArealDensityStep,
    /// A fixed override, for sensitivity studies of the ECC transition.
    Fixed(u32),
}

/// A recording technology point: linear and track density.
///
/// # Examples
///
/// ```
/// use diskgeom::RecordingTech;
/// use units::{BitsPerInch, TracksPerInch};
///
/// // The 1999 roadmap anchor: 270 KBPI x 20 KTPI.
/// let tech = RecordingTech::new(
///     BitsPerInch::from_kbpi(270.0),
///     TracksPerInch::from_ktpi(20.0),
/// );
/// assert!((tech.areal_density().to_gb_per_sq_in() - 5.4).abs() < 1e-9);
/// assert!((tech.bit_aspect_ratio().get() - 13.5).abs() < 1e-9);
/// assert_eq!(tech.ecc_bits_per_sector(), 416);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecordingTech {
    bpi: BitsPerInch,
    tpi: TracksPerInch,
    ecc_policy: EccPolicy,
}

impl RecordingTech {
    /// Creates a technology point with the default areal-density-stepped
    /// ECC policy.
    pub fn new(bpi: BitsPerInch, tpi: TracksPerInch) -> Self {
        Self {
            bpi,
            tpi,
            ecc_policy: EccPolicy::default(),
        }
    }

    /// Creates a technology point with an explicit ECC policy.
    pub fn with_ecc_policy(bpi: BitsPerInch, tpi: TracksPerInch, ecc_policy: EccPolicy) -> Self {
        Self {
            bpi,
            tpi,
            ecc_policy,
        }
    }

    /// Linear density along a track.
    pub fn bpi(&self) -> BitsPerInch {
        self.bpi
    }

    /// Radial track density.
    pub fn tpi(&self) -> TracksPerInch {
        self.tpi
    }

    /// The ECC policy in force.
    pub fn ecc_policy(&self) -> EccPolicy {
        self.ecc_policy
    }

    /// Areal density: `BPI × TPI`.
    pub fn areal_density(&self) -> ArealDensity {
        self.bpi * self.tpi
    }

    /// Bit aspect ratio: `BPI / TPI`.
    pub fn bit_aspect_ratio(&self) -> BitAspectRatio {
        self.bpi / self.tpi
    }

    /// ECC overhead in raw bits per sector under the active policy.
    ///
    /// # Examples
    ///
    /// ```
    /// use diskgeom::{EccPolicy, RecordingTech};
    /// use units::{BitsPerInch, TracksPerInch};
    ///
    /// let terabit = RecordingTech::new(
    ///     BitsPerInch::new(1.85e6),
    ///     TracksPerInch::from_ktpi(540.0),
    /// );
    /// assert_eq!(terabit.ecc_bits_per_sector(), 1440);
    /// ```
    pub fn ecc_bits_per_sector(&self) -> u32 {
        match self.ecc_policy {
            EccPolicy::ArealDensityStep => {
                if self.areal_density().is_terabit_class() {
                    ECC_BITS_TERABIT
                } else {
                    ECC_BITS_STANDARD
                }
            }
            EccPolicy::Fixed(bits) => bits,
        }
    }

    /// `true` when both densities are positive and finite.
    pub fn is_valid(&self) -> bool {
        self.bpi.is_finite()
            && self.tpi.is_finite()
            && self.bpi.get() > 0.0
            && self.tpi.get() > 0.0
    }
}

impl core::fmt::Display for RecordingTech {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{:.0} KBPI x {:.1} KTPI ({:.1} Gb/in^2)",
            self.bpi.to_kbpi(),
            self.tpi.to_ktpi(),
            self.areal_density().to_gb_per_sq_in()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kk(kbpi: f64, ktpi: f64) -> RecordingTech {
        RecordingTech::new(BitsPerInch::from_kbpi(kbpi), TracksPerInch::from_ktpi(ktpi))
    }

    #[test]
    fn ecc_steps_at_terabit() {
        assert_eq!(kk(570.0, 64.0).ecc_bits_per_sector(), ECC_BITS_STANDARD);
        assert_eq!(kk(1850.0, 540.0).ecc_bits_per_sector(), ECC_BITS_TERABIT);
    }

    #[test]
    fn fixed_policy_overrides_step() {
        let t = RecordingTech::with_ecc_policy(
            BitsPerInch::from_kbpi(1850.0),
            TracksPerInch::from_ktpi(540.0),
            EccPolicy::Fixed(416),
        );
        assert_eq!(t.ecc_bits_per_sector(), 416);
    }

    #[test]
    fn standard_ecc_is_ten_percent_of_sector() {
        // The paper cites ~10% ECC overhead for sub-terabit drives.
        let frac = ECC_BITS_STANDARD as f64 / 4096.0;
        assert!((frac - 0.10).abs() < 0.01);
        // ...and ~35% for terabit drives.
        let frac = ECC_BITS_TERABIT as f64 / 4096.0;
        assert!((frac - 0.35).abs() < 0.002);
    }

    #[test]
    fn bar_declines_with_technology() {
        // 2002-era disks have BAR ~6-9; the terabit point is ~3.4.
        let now = kk(570.0, 64.0).bit_aspect_ratio();
        let terabit = kk(1850.0, 540.0).bit_aspect_ratio();
        assert!(now.get() > terabit.get());
        assert!((terabit.get() - 3.4259).abs() < 1e-3);
    }

    #[test]
    fn validity_check() {
        assert!(kk(270.0, 20.0).is_valid());
        assert!(!kk(0.0, 20.0).is_valid());
        assert!(!kk(270.0, -1.0).is_valid());
    }

    #[test]
    fn display_mentions_densities() {
        let s = kk(270.0, 20.0).to_string();
        assert!(s.contains("270"));
        assert!(s.contains("20.0"));
    }
}
