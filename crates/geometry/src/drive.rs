//! Whole-drive geometry: platters × recording tech × zone table, plus a
//! bijective logical-block ↔ physical-location mapping.

use crate::{CapacityBreakdown, GeometryError, Platter, RecordingTech, ZoneTable};
use serde::{Deserialize, Serialize};
use units::{Capacity, SectorCount};

/// Physical location of a logical block: cylinder, surface and sector.
///
/// Blocks are laid out cylinder-major: all sectors of a track, then the
/// next surface of the same cylinder, then the next cylinder — matching
/// how drives minimize seeks for sequential transfers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Location {
    /// Cylinder index; 0 is outermost.
    pub cylinder: u32,
    /// Recording surface index, `0 .. 2 × platters`.
    pub surface: u32,
    /// Sector index within the track.
    pub sector: u32,
    /// ZBR zone the cylinder belongs to.
    pub zone: u32,
}

/// Complete recorded geometry of a disk drive.
///
/// # Examples
///
/// ```
/// use diskgeom::{DriveGeometry, Platter, RecordingTech};
/// use units::{BitsPerInch, Inches, TracksPerInch};
///
/// let tech = RecordingTech::new(
///     BitsPerInch::from_kbpi(256.0),
///     TracksPerInch::from_ktpi(13.0),
/// );
/// let drive = DriveGeometry::new(Platter::new(Inches::new(3.3)), tech, 6, 30)?;
/// assert_eq!(drive.surfaces(), 12);
/// let loc = drive.locate(12_345).unwrap();
/// assert_eq!(drive.lba_of(loc).unwrap(), 12_345);
/// # Ok::<(), diskgeom::GeometryError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriveGeometry {
    platter: Platter,
    tech: RecordingTech,
    platters: u32,
    zones: ZoneTable,
    /// Cumulative first-LBA of each zone (length `zone_count + 1`; the
    /// final entry is the total sector count of the drive).
    zone_lba_starts: Vec<u64>,
}

impl DriveGeometry {
    /// Builds the geometry of a drive with `platters` platters (two
    /// recording surfaces each) and `n_zones` ZBR zones per surface.
    ///
    /// # Errors
    ///
    /// Propagates [`GeometryError`] for invalid densities, zero zones or
    /// platters, or tracks too short to hold a sector.
    pub fn new(
        platter: Platter,
        tech: RecordingTech,
        platters: u32,
        n_zones: u32,
    ) -> Result<Self, GeometryError> {
        if platters == 0 {
            return Err(GeometryError::NoPlatters);
        }
        let zones = ZoneTable::new(platter, tech, n_zones)?;
        let surfaces = platters as u64 * 2;
        let mut zone_lba_starts = Vec::with_capacity(zones.zone_count() as usize + 1);
        let mut acc = 0u64;
        for z in zones.zones() {
            zone_lba_starts.push(acc);
            acc += z.sectors_per_surface().get() * surfaces;
        }
        zone_lba_starts.push(acc);
        Ok(Self {
            platter,
            tech,
            platters,
            zones,
            zone_lba_starts,
        })
    }

    /// The platter geometry.
    pub fn platter(&self) -> &Platter {
        &self.platter
    }

    /// The recording technology.
    pub fn tech(&self) -> &RecordingTech {
        &self.tech
    }

    /// Number of platters.
    pub fn platters(&self) -> u32 {
        self.platters
    }

    /// Number of recording surfaces (`2 × platters`).
    pub fn surfaces(&self) -> u32 {
        self.platters * 2
    }

    /// The per-surface ZBR zone table.
    pub fn zones(&self) -> &ZoneTable {
        &self.zones
    }

    /// Total addressable user sectors.
    pub fn total_sectors(&self) -> SectorCount {
        SectorCount::new(*self.zone_lba_starts.last().expect("non-empty"))
    }

    /// User capacity (the derated capacity of eq. 3).
    pub fn capacity(&self) -> Capacity {
        self.total_sectors().to_capacity()
    }

    /// Full raw → ZBR → derated capacity accounting.
    pub fn capacity_breakdown(&self) -> CapacityBreakdown {
        CapacityBreakdown::compute(&self.platter, &self.tech, &self.zones, self.surfaces())
    }

    /// Maps a logical block address to its physical location.
    ///
    /// Returns `None` when `lba` is beyond the end of the drive.
    pub fn locate(&self, lba: u64) -> Option<Location> {
        if lba >= self.total_sectors().get() {
            return None;
        }
        // partition_point returns the number of zone starts <= lba, so
        // the containing zone is one less.
        let zone_idx = self.zone_lba_starts.partition_point(|&s| s <= lba) - 1;
        let zone = &self.zones.zones()[zone_idx];
        let rel = lba - self.zone_lba_starts[zone_idx];
        let spt = zone.sectors_per_track().get();
        let per_cylinder = spt * self.surfaces() as u64;
        let cyl_in_zone = rel / per_cylinder;
        let rem = rel % per_cylinder;
        Some(Location {
            cylinder: zone.first_cylinder() + cyl_in_zone as u32,
            surface: (rem / spt) as u32,
            sector: (rem % spt) as u32,
            zone: zone.index(),
        })
    }

    /// Maps a physical location back to its logical block address.
    ///
    /// Returns `None` when the location lies outside the drive (bad
    /// cylinder/surface/sector, or a leftover cylinder beyond the zoned
    /// region).
    pub fn lba_of(&self, loc: Location) -> Option<u64> {
        if loc.surface >= self.surfaces() {
            return None;
        }
        let zone = self.zones.zone_of_cylinder(loc.cylinder)?;
        if zone.index() != loc.zone {
            return None;
        }
        let spt = zone.sectors_per_track().get();
        if loc.sector as u64 >= spt {
            return None;
        }
        let cyl_in_zone = (loc.cylinder - zone.first_cylinder()) as u64;
        let per_cylinder = spt * self.surfaces() as u64;
        Some(
            self.zone_lba_starts[zone.index() as usize]
                + cyl_in_zone * per_cylinder
                + loc.surface as u64 * spt
                + loc.sector as u64,
        )
    }

    /// Cylinder holding the given LBA — the quantity seek distances are
    /// measured in. `None` past the end of the drive.
    pub fn cylinder_of(&self, lba: u64) -> Option<u32> {
        self.locate(lba).map(|l| l.cylinder)
    }

    /// Half-open LBA range `[start, end)` covered by zone `zone`, or
    /// `None` for an out-of-range zone index. Lets hot paths that
    /// already hold a [`Location`] resolve nearby LBAs with one
    /// division instead of a full [`Self::locate`].
    pub fn zone_lba_range(&self, zone: u32) -> Option<(u64, u64)> {
        let i = zone as usize;
        if i + 1 >= self.zone_lba_starts.len() {
            return None;
        }
        Some((self.zone_lba_starts[i], self.zone_lba_starts[i + 1]))
    }

    /// Number of cylinders the data band spans (seek distances range over
    /// `0 .. used_cylinders`).
    pub fn used_cylinders(&self) -> u32 {
        self.zones.used_cylinders()
    }
}

impl core::fmt::Display for DriveGeometry {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{} x{} platters, {} zones, {}",
            self.platter,
            self.platters,
            self.zones.zone_count(),
            self.capacity()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use units::{BitsPerInch, Inches, TracksPerInch};

    fn small_drive() -> DriveGeometry {
        // A deliberately tiny geometry so exhaustive LBA sweeps are fast.
        let tech = RecordingTech::new(
            BitsPerInch::from_kbpi(16.0),
            TracksPerInch::new(400.0),
        );
        DriveGeometry::new(Platter::new(Inches::new(3.3)), tech, 2, 10).unwrap()
    }

    #[test]
    fn atlas_10k_drive() {
        let tech = RecordingTech::new(
            BitsPerInch::from_kbpi(256.0),
            TracksPerInch::from_ktpi(13.0),
        );
        let d = DriveGeometry::new(Platter::new(Inches::new(3.3)), tech, 6, 30).unwrap();
        assert_eq!(d.surfaces(), 12);
        let gb = d.capacity().gigabytes();
        assert!((gb - 18.0).abs() / 18.0 < 0.12, "got {gb:.2} GB");
    }

    #[test]
    fn locate_round_trips_exhaustively() {
        let d = small_drive();
        let total = d.total_sectors().get();
        assert!(total > 1000, "need a non-trivial drive, got {total}");
        for lba in 0..total {
            let loc = d.locate(lba).expect("in range");
            assert_eq!(d.lba_of(loc), Some(lba), "round trip failed at {lba}");
        }
    }

    #[test]
    fn locate_past_end_is_none() {
        let d = small_drive();
        assert!(d.locate(d.total_sectors().get()).is_none());
        assert!(d.locate(u64::MAX).is_none());
    }

    #[test]
    fn lba_of_rejects_bad_locations() {
        let d = small_drive();
        let mut loc = d.locate(0).unwrap();
        loc.surface = d.surfaces();
        assert!(d.lba_of(loc).is_none());

        let mut loc = d.locate(0).unwrap();
        loc.sector = u32::MAX;
        assert!(d.lba_of(loc).is_none());

        let mut loc = d.locate(0).unwrap();
        loc.zone = 99;
        assert!(d.lba_of(loc).is_none());
    }

    #[test]
    fn sequential_lbas_share_tracks_then_cylinders() {
        let d = small_drive();
        let a = d.locate(0).unwrap();
        let b = d.locate(1).unwrap();
        // Consecutive LBAs differ only in sector while on the same track.
        assert_eq!(a.cylinder, b.cylinder);
        assert_eq!(a.surface, b.surface);
        assert_eq!(b.sector, a.sector + 1);

        // Crossing a track boundary moves to the next surface first.
        let spt = d.zones().outermost().sectors_per_track().get();
        let c = d.locate(spt).unwrap();
        assert_eq!(c.cylinder, 0);
        assert_eq!(c.surface, 1);
        assert_eq!(c.sector, 0);
    }

    #[test]
    fn cylinders_are_nondecreasing_in_lba() {
        let d = small_drive();
        let mut prev = 0;
        let total = d.total_sectors().get();
        for lba in (0..total).step_by(97) {
            let c = d.cylinder_of(lba).unwrap();
            assert!(c >= prev);
            prev = c;
        }
    }

    #[test]
    fn zero_platters_rejected() {
        let tech = RecordingTech::new(
            BitsPerInch::from_kbpi(256.0),
            TracksPerInch::from_ktpi(13.0),
        );
        let err = DriveGeometry::new(Platter::new(Inches::new(3.3)), tech, 0, 30).unwrap_err();
        assert!(matches!(err, GeometryError::NoPlatters));
    }

    #[test]
    fn capacity_equals_breakdown_derated() {
        let d = small_drive();
        assert_eq!(d.capacity(), d.capacity_breakdown().derated_capacity());
    }
}
