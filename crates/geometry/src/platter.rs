//! Platter geometry: radii, the data band, and per-track radii (eq. 1).

use serde::{Deserialize, Serialize};
use units::{Inches, TracksPerInch};

/// Fraction of the radial band `r_o − r_i` that carries user data.
///
/// The remainder is consumed by recalibration tracks, manufacturer
/// reserved tracks, spares, the head landing zone and manufacturing
/// tolerances. The paper adopts the practitioners' value of 2/3.
pub const STROKE_EFFICIENCY: f64 = 2.0 / 3.0;

/// A single platter, identified by its media diameter.
///
/// The inner radius follows the paper's rule of thumb `r_i = r_o / 2`.
///
/// # Examples
///
/// ```
/// use diskgeom::Platter;
/// use units::{Inches, TracksPerInch};
///
/// let p = Platter::new(Inches::new(2.6));
/// assert_eq!(p.outer_radius(), Inches::new(1.3));
/// assert_eq!(p.inner_radius(), Inches::new(0.65));
/// // 2/3 * (1.3 - 0.65) * 67_500 TPI = 29_250 cylinders
/// assert_eq!(p.cylinders(TracksPerInch::from_ktpi(67.5)), 29_250);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Platter {
    diameter: Inches,
}

impl Platter {
    /// Creates a platter of the given media diameter.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the diameter is not positive and finite;
    /// use [`DriveGeometry::new`](crate::DriveGeometry::new) for a
    /// fallible construction path.
    pub fn new(diameter: Inches) -> Self {
        debug_assert!(
            diameter.is_finite() && diameter.get() > 0.0,
            "platter diameter must be positive"
        );
        Self { diameter }
    }

    /// Media diameter.
    pub fn diameter(&self) -> Inches {
        self.diameter
    }

    /// Outer recording radius, `r_o = diameter / 2`.
    pub fn outer_radius(&self) -> Inches {
        self.diameter / 2.0
    }

    /// Inner recording radius, `r_i = r_o / 2` (paper's rule of thumb).
    pub fn inner_radius(&self) -> Inches {
        self.outer_radius() / 2.0
    }

    /// Width of the full radial band, `r_o − r_i`.
    pub fn band_width(&self) -> Inches {
        self.outer_radius() - self.inner_radius()
    }

    /// Number of user-accessible cylinders at the given track density:
    /// `n_cylin = η (r_o − r_i) · TPI`, truncated to a whole track count.
    pub fn cylinders(&self, tpi: TracksPerInch) -> u32 {
        // Round to the nearest whole track: the product is analytically
        // exact for datasheet inputs (e.g. 2/3 * 0.825 * 13000 = 7150)
        // and must not lose a track to floating-point truncation.
        let n = (STROKE_EFFICIENCY * self.band_width().get() * tpi.get()).round();
        debug_assert!(n >= 0.0 && n < u32::MAX as f64, "cylinder count out of range");
        n as u32
    }

    /// Radius of track `j` of `n_cylin`, with `j = 0` the outermost track
    /// at `r_o` and `j = n_cylin − 1` the innermost at `r_i` (eq. 1).
    ///
    /// # Panics
    ///
    /// Panics if `j >= n_cylin` or `n_cylin == 0`.
    pub fn track_radius(&self, j: u32, n_cylin: u32) -> Inches {
        assert!(n_cylin > 0, "track radius of a platter with no cylinders");
        assert!(j < n_cylin, "track index {j} out of {n_cylin} cylinders");
        if n_cylin == 1 {
            return self.outer_radius();
        }
        let ro = self.outer_radius().get();
        let ri = self.inner_radius().get();
        let step = (ro - ri) / (n_cylin - 1) as f64;
        Inches::new(ri + step * (n_cylin - j - 1) as f64)
    }

    /// Perimeter of track `j` of `n_cylin`, in inches.
    pub fn track_perimeter(&self, j: u32, n_cylin: u32) -> f64 {
        core::f64::consts::TAU * self.track_radius(j, n_cylin).get()
    }

    /// Recordable annulus area between inner and outer radii, in in².
    pub fn recordable_area(&self) -> f64 {
        self.outer_radius().circle_area() - self.inner_radius().circle_area()
    }
}

impl core::fmt::Display for Platter {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:.1}\" platter", self.diameter.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn radii_follow_half_rules() {
        let p = Platter::new(Inches::new(3.3));
        assert!((p.outer_radius().get() - 1.65).abs() < 1e-12);
        assert!((p.inner_radius().get() - 0.825).abs() < 1e-12);
        assert!((p.band_width().get() - 0.825).abs() < 1e-12);
    }

    #[test]
    fn cylinder_count_matches_hand_calc() {
        // Quantum Atlas 10K: 3.3" platter, 13 KTPI -> 7150 cylinders.
        let p = Platter::new(Inches::new(3.3));
        assert_eq!(p.cylinders(TracksPerInch::from_ktpi(13.0)), 7150);
    }

    #[test]
    fn track_radius_endpoints() {
        let p = Platter::new(Inches::new(2.6));
        let n = 1000;
        assert!((p.track_radius(0, n) - p.outer_radius()).abs().get() < 1e-12);
        assert!((p.track_radius(n - 1, n) - p.inner_radius()).abs().get() < 1e-12);
    }

    #[test]
    fn track_radius_is_monotone_decreasing() {
        let p = Platter::new(Inches::new(2.6));
        let n = 500;
        let mut prev = f64::INFINITY;
        for j in 0..n {
            let r = p.track_radius(j, n).get();
            assert!(r < prev, "radius must shrink with track index");
            prev = r;
        }
    }

    #[test]
    fn perimeter_cases_from_the_paper() {
        // Case 1: j = 0 -> 2*pi*ro.  Case 2: j = n-1 -> 2*pi*ri.
        let p = Platter::new(Inches::new(2.6));
        let n = 29_250;
        assert!((p.track_perimeter(0, n) - core::f64::consts::TAU * 1.3).abs() < 1e-9);
        assert!((p.track_perimeter(n - 1, n) - core::f64::consts::TAU * 0.65).abs() < 1e-9);
    }

    #[test]
    fn single_track_platter_degenerate_case() {
        let p = Platter::new(Inches::new(1.0));
        assert_eq!(p.track_radius(0, 1), p.outer_radius());
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn track_index_out_of_range_panics() {
        let p = Platter::new(Inches::new(2.6));
        let _ = p.track_radius(10, 10);
    }

    #[test]
    fn recordable_area_is_three_quarters_of_outer_disc() {
        // With ri = ro/2, the annulus is 3/4 of the full circle.
        let p = Platter::new(Inches::new(2.6));
        let full = p.outer_radius().circle_area();
        assert!((p.recordable_area() / full - 0.75).abs() < 1e-12);
    }
}
