//! Error type for geometry construction.

/// Errors raised when constructing a drive geometry from inconsistent
/// parameters.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GeometryError {
    /// The platter diameter, BPI or TPI was zero, negative or non-finite.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
    },
    /// The requested zone count exceeds the number of cylinders, so at
    /// least one zone would hold no tracks.
    TooManyZones {
        /// Zones requested.
        zones: u32,
        /// Cylinders available.
        cylinders: u32,
    },
    /// The configuration yields tracks too short to hold even one sector
    /// after servo and ECC derating.
    TrackTooShort {
        /// Raw bits available on the offending track.
        raw_bits: f64,
        /// Effective bits needed per sector.
        effective_sector_bits: f64,
    },
    /// Zero platters requested.
    NoPlatters,
}

impl core::fmt::Display for GeometryError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::InvalidParameter { name } => {
                write!(f, "parameter `{name}` must be positive and finite")
            }
            Self::TooManyZones { zones, cylinders } => {
                write!(f, "{zones} zones requested but only {cylinders} cylinders available")
            }
            Self::TrackTooShort {
                raw_bits,
                effective_sector_bits,
            } => write!(
                f,
                "innermost track holds {raw_bits:.0} raw bits, fewer than one \
                 {effective_sector_bits:.0}-bit effective sector"
            ),
            Self::NoPlatters => write!(f, "a drive needs at least one platter"),
        }
    }
}

impl std::error::Error for GeometryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = GeometryError::TooManyZones {
            zones: 100,
            cylinders: 50,
        };
        let msg = e.to_string();
        assert!(msg.contains("100"));
        assert!(msg.contains("50"));
        assert!(!msg.chars().next().unwrap().is_uppercase());
    }

    #[test]
    fn error_trait_object_compatible() {
        fn takes_err(_e: Box<dyn std::error::Error + Send + Sync>) {}
        takes_err(Box::new(GeometryError::NoPlatters));
    }
}
