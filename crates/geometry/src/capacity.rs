//! Capacity accounting: raw (eq. `C_max`), ZBR-adjusted, and fully
//! derated (eq. 3) capacities, with the losses itemized.

use crate::{Platter, RecordingTech, ZoneTable, STROKE_EFFICIENCY};
use serde::{Deserialize, Serialize};
use units::{Bits, Capacity, SectorCount, RAW_BITS_PER_SECTOR};

/// Itemized capacity of a drive, from raw media bits down to user bytes.
///
/// # Examples
///
/// ```
/// use diskgeom::{CapacityBreakdown, Platter, RecordingTech, ZoneTable};
/// use units::{BitsPerInch, Inches, TracksPerInch};
///
/// let tech = RecordingTech::new(
///     BitsPerInch::from_kbpi(256.0),
///     TracksPerInch::from_ktpi(13.0),
/// );
/// let platter = Platter::new(Inches::new(3.3));
/// let table = ZoneTable::new(platter, tech, 30)?;
/// let cap = CapacityBreakdown::compute(&platter, &tech, &table, 12);
/// // Every derating stage can only lose capacity.
/// assert!(cap.zbr_capacity() <= cap.raw_capacity_bytes());
/// assert!(cap.derated_capacity().bytes() as f64 <= cap.zbr_capacity().bytes() as f64);
/// # Ok::<(), diskgeom::GeometryError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CapacityBreakdown {
    surfaces: u32,
    raw_bits: Bits,
    zbr_sectors: SectorCount,
    derated_sectors: SectorCount,
}

impl CapacityBreakdown {
    /// Computes the breakdown for a drive with `surfaces` recording
    /// surfaces sharing one zone table.
    pub fn compute(
        platter: &Platter,
        tech: &RecordingTech,
        table: &ZoneTable,
        surfaces: u32,
    ) -> Self {
        // C_max = eta * n_surf * pi * (ro^2 - ri^2) * BPI * TPI
        let raw_bits = STROKE_EFFICIENCY
            * surfaces as f64
            * platter.recordable_area()
            * tech.areal_density().get();

        // ZBR loss alone: every track gets its zone's min-track budget,
        // split into bare 4096-bit sectors (no servo/ECC derating yet).
        let zbr_per_surface: u64 = table
            .zones()
            .iter()
            .map(|z| z.cylinders() as u64 * z.raw_bits_per_track().whole_sectors())
            .sum();

        let derated_per_surface = table.sectors_per_surface();

        Self {
            surfaces,
            raw_bits: Bits::new(raw_bits),
            zbr_sectors: SectorCount::new(zbr_per_surface * surfaces as u64),
            derated_sectors: derated_per_surface * surfaces as u64,
        }
    }

    /// Number of recording surfaces.
    pub fn surfaces(&self) -> u32 {
        self.surfaces
    }

    /// Raw media bits, `C_max` of §3.1.
    pub fn raw_bits(&self) -> Bits {
        self.raw_bits
    }

    /// Raw capacity expressed as bytes (before any loss).
    pub fn raw_capacity_bytes(&self) -> Capacity {
        Capacity::from_bytes(self.raw_bits.to_bytes() as u64)
    }

    /// Capacity after the ZBR min-track allocation, before servo/ECC.
    pub fn zbr_capacity(&self) -> Capacity {
        self.zbr_sectors.to_capacity()
    }

    /// User sectors after all deratings (eq. 3).
    pub fn derated_sectors(&self) -> SectorCount {
        self.derated_sectors
    }

    /// User capacity after all deratings — the number a datasheet quotes.
    pub fn derated_capacity(&self) -> Capacity {
        self.derated_sectors.to_capacity()
    }

    /// Fraction of raw bits lost to the ZBR equal-allocation scheme.
    pub fn zbr_loss_fraction(&self) -> f64 {
        let zbr_bits = (self.zbr_sectors.get() * RAW_BITS_PER_SECTOR) as f64;
        1.0 - zbr_bits / self.raw_bits.get()
    }

    /// Fraction of ZBR capacity further lost to servo + ECC overheads.
    pub fn overhead_loss_fraction(&self) -> f64 {
        if self.zbr_sectors.get() == 0 {
            return 0.0;
        }
        1.0 - self.derated_sectors.get() as f64 / self.zbr_sectors.get() as f64
    }
}

impl core::fmt::Display for CapacityBreakdown {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "raw {:.2} GB -> ZBR {:.2} GB -> derated {:.2} GB",
            self.raw_capacity_bytes().gigabytes(),
            self.zbr_capacity().gigabytes(),
            self.derated_capacity().gigabytes()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use units::{BitsPerInch, Inches, TracksPerInch};

    fn breakdown(kbpi: f64, ktpi: f64, dia: f64, surfaces: u32) -> CapacityBreakdown {
        let tech = RecordingTech::new(
            BitsPerInch::from_kbpi(kbpi),
            TracksPerInch::from_ktpi(ktpi),
        );
        let platter = Platter::new(Inches::new(dia));
        let table = ZoneTable::new(platter, tech, 30).unwrap();
        CapacityBreakdown::compute(&platter, &tech, &table, surfaces)
    }

    #[test]
    fn derating_chain_is_monotone() {
        let cap = breakdown(256.0, 13.0, 3.3, 12);
        assert!(cap.zbr_capacity() <= cap.raw_capacity_bytes());
        assert!(cap.derated_capacity() <= cap.zbr_capacity());
    }

    #[test]
    fn atlas_10k_capacity_near_datasheet() {
        // Quantum Atlas 10K datasheet: 18 GB; paper's model: 17.6 GB.
        // Our formulation lands within ~12% of the datasheet, the paper's
        // own stated error bound for its model.
        let cap = breakdown(256.0, 13.0, 3.3, 12);
        let gb = cap.derated_capacity().gigabytes();
        assert!((gb - 18.0).abs() / 18.0 < 0.12, "got {gb:.1} GB");
    }

    #[test]
    fn ultrastar_36lzx_capacity_near_datasheet() {
        // IBM Ultrastar 36LZX: 36 GB datasheet, paper model 30.8 GB.
        let cap = breakdown(352.0, 20.0, 3.0, 12);
        let gb = cap.derated_capacity().gigabytes();
        assert!((gb - 33.0).abs() < 3.0, "got {gb:.1} GB");
    }

    #[test]
    fn capacity_scales_linearly_with_surfaces() {
        let one = breakdown(256.0, 13.0, 3.3, 2);
        let six = breakdown(256.0, 13.0, 3.3, 12);
        let ratio =
            six.derated_capacity().bytes() as f64 / one.derated_capacity().bytes() as f64;
        assert!((ratio - 6.0).abs() < 1e-9);
    }

    #[test]
    fn overhead_fraction_matches_ecc_plus_servo() {
        let cap = breakdown(256.0, 13.0, 3.3, 12);
        // Effective sector = 4096/(1 - 416/4096) + 13 = 4572 bits ->
        // ~10.4% overhead loss (plus per-track floor quantization).
        let expected = 1.0 - 4096.0 / 4572.0;
        assert!((cap.overhead_loss_fraction() - expected).abs() < 0.01);
    }

    #[test]
    fn zbr_loss_is_small_but_positive() {
        let cap = breakdown(256.0, 13.0, 3.3, 12);
        let loss = cap.zbr_loss_fraction();
        assert!(loss > 0.0, "ZBR always wastes something");
        assert!(loss < 0.10, "30 zones keep ZBR loss under 10%, got {loss}");
    }

    #[test]
    fn display_shows_chain() {
        let s = breakdown(256.0, 13.0, 3.3, 12).to_string();
        assert!(s.contains("raw") && s.contains("ZBR") && s.contains("derated"));
    }
}
