//! Property-based tests over the geometry and capacity model.

use diskgeom::{DriveGeometry, Platter, RecordingTech, ZoneTable};
use proptest::prelude::*;
use units::{BitsPerInch, Inches, TracksPerInch};

/// Strategy producing a plausible recording technology (1990s–2010s era).
fn tech_strategy() -> impl Strategy<Value = RecordingTech> {
    (50.0f64..2_000.0, 5.0f64..600.0).prop_map(|(kbpi, ktpi)| {
        RecordingTech::new(
            BitsPerInch::from_kbpi(kbpi),
            TracksPerInch::from_ktpi(ktpi),
        )
    })
}

/// Strategy producing a plausible platter diameter.
fn platter_strategy() -> impl Strategy<Value = Platter> {
    (1.0f64..4.0).prop_map(|d| Platter::new(Inches::new(d)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn capacity_monotone_in_bpi(
        platter in platter_strategy(),
        ktpi in 5.0f64..600.0,
        kbpi_lo in 50.0f64..1_000.0,
        bump in 1.0f64..500.0,
    ) {
        let tpi = TracksPerInch::from_ktpi(ktpi);
        let lo = RecordingTech::new(BitsPerInch::from_kbpi(kbpi_lo), tpi);
        let hi = RecordingTech::new(BitsPerInch::from_kbpi(kbpi_lo + bump), tpi);
        // Only compare within the same ECC regime: the terabit ECC step
        // deliberately makes capacity non-monotone across it.
        prop_assume!(lo.areal_density().is_terabit_class()
            == hi.areal_density().is_terabit_class());
        let d_lo = DriveGeometry::new(platter, lo, 1, 30);
        let d_hi = DriveGeometry::new(platter, hi, 1, 30);
        if let (Ok(d_lo), Ok(d_hi)) = (d_lo, d_hi) {
            prop_assert!(d_hi.capacity() >= d_lo.capacity(),
                "more BPI must not lose capacity: {} vs {}",
                d_hi.capacity(), d_lo.capacity());
        }
    }

    #[test]
    fn capacity_scales_with_platters(
        platter in platter_strategy(),
        tech in tech_strategy(),
        n in 1u32..6,
    ) {
        let one = DriveGeometry::new(platter, tech, 1, 30);
        let many = DriveGeometry::new(platter, tech, n, 30);
        if let (Ok(one), Ok(many)) = (one, many) {
            prop_assert_eq!(
                many.total_sectors().get(),
                one.total_sectors().get() * n as u64
            );
        }
    }

    #[test]
    fn derating_chain_never_gains(
        platter in platter_strategy(),
        tech in tech_strategy(),
        platters in 1u32..5,
    ) {
        if let Ok(drive) = DriveGeometry::new(platter, tech, platters, 30) {
            let b = drive.capacity_breakdown();
            prop_assert!(b.zbr_capacity() <= b.raw_capacity_bytes());
            prop_assert!(b.derated_capacity() <= b.zbr_capacity());
            prop_assert!(b.zbr_loss_fraction() >= 0.0);
            prop_assert!(b.overhead_loss_fraction() >= 0.0);
        }
    }

    #[test]
    fn lba_round_trip_samples(
        platter in platter_strategy(),
        tech in tech_strategy(),
        platters in 1u32..5,
        seed in any::<u64>(),
    ) {
        if let Ok(drive) = DriveGeometry::new(platter, tech, platters, 30) {
            let total = drive.total_sectors().get();
            prop_assume!(total > 0);
            // Sample a spread of LBAs deterministically from the seed.
            for k in 0..64u64 {
                let lba = (seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(k.wrapping_mul(0x9E3779B97F4A7C15)))
                    % total;
                let loc = drive.locate(lba).expect("lba in range");
                prop_assert_eq!(drive.lba_of(loc), Some(lba));
            }
            // Boundary LBAs.
            for lba in [0, total / 2, total - 1] {
                let loc = drive.locate(lba).expect("lba in range");
                prop_assert_eq!(drive.lba_of(loc), Some(lba));
            }
            prop_assert!(drive.locate(total).is_none());
        }
    }

    #[test]
    fn zone_table_covers_cylinders_in_order(
        platter in platter_strategy(),
        tech in tech_strategy(),
        n_zones in 1u32..60,
    ) {
        if let Ok(table) = ZoneTable::new(platter, tech, n_zones) {
            let mut next = 0;
            for z in table.zones() {
                prop_assert_eq!(z.first_cylinder(), next);
                next = z.end_cylinder();
            }
            prop_assert!(next <= table.total_cylinders());
            // Sectors per track never increase inward.
            let mut prev = u64::MAX;
            for z in table.zones() {
                prop_assert!(z.sectors_per_track().get() <= prev);
                prev = z.sectors_per_track().get();
            }
        }
    }

    #[test]
    fn outer_zone_rate_advantage(
        platter in platter_strategy(),
        tech in tech_strategy(),
    ) {
        // ZBR's reason to exist: the outermost zone should hold strictly
        // more sectors per track than the innermost for any realistic
        // geometry with enough zones.
        if let Ok(table) = ZoneTable::new(platter, tech, 30) {
            let outer = table.outermost().sectors_per_track().get();
            let inner = table.innermost().sectors_per_track().get();
            prop_assert!(outer >= inner);
            // With ri = ro/2 the outer budget is nearly 2x the inner.
            if inner > 20 {
                let ratio = outer as f64 / inner as f64;
                prop_assert!(ratio > 1.5 && ratio < 2.2, "ratio {ratio}");
            }
        }
    }
}
