//! Dynamic-throttling analysis (§5.3, Figures 6 and 7).
//!
//! A drive designed for average-case behaviour runs at an RPM whose
//! worst-case (VCM-always-on) temperature *exceeds* the envelope. When
//! the internal air nears the limit, the controller stops issuing
//! requests for `t_cool` seconds — turning the VCM off, and in the more
//! aggressive variant also dropping the spindle to a lower speed — then
//! resumes and measures how long (`t_heat`) the drive can serve requests
//! before hitting the envelope again. The figure of merit is the
//! *throttling ratio* `t_heat / t_cool`; a ratio above 1 keeps the disk
//! busy more than half the time.

use diskthermal::{
    DriveThermalSpec, OperatingPoint, ThermalModel, ThermalParams, TransientSim,
    THERMAL_ENVELOPE,
};
use serde::{Deserialize, Serialize};
use units::{Celsius, Inches, Rpm, Seconds};

/// What the drive does during the cooling interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ThrottlePolicy {
    /// Figure 6(a): stop issuing requests (VCM off); the spindle keeps
    /// running at full speed.
    VcmOnly {
        /// Operating (and only) spindle speed.
        rpm: Rpm,
    },
    /// Figure 6(b): stop issuing requests *and* drop to a lower spindle
    /// speed; service always resumes at the high speed (a two-speed
    /// disk, like the Hitachi drive the paper cites).
    VcmAndRpm {
        /// Full-service speed.
        high: Rpm,
        /// Cool-down speed.
        low: Rpm,
    },
}

impl ThrottlePolicy {
    /// The speed at which requests are served.
    pub fn service_rpm(&self) -> Rpm {
        match *self {
            Self::VcmOnly { rpm } => rpm,
            Self::VcmAndRpm { high, .. } => high,
        }
    }

    /// The operating point during the cooling interval.
    pub fn cooling_point(&self) -> OperatingPoint {
        match *self {
            Self::VcmOnly { rpm } => OperatingPoint::idle_vcm(rpm),
            Self::VcmAndRpm { low, .. } => OperatingPoint::idle_vcm(low),
        }
    }

    /// The operating point during active service (worst case: seeking
    /// continuously).
    pub fn heating_point(&self) -> OperatingPoint {
        OperatingPoint::seeking(self.service_rpm())
    }
}

/// A throttling experiment on one drive.
#[derive(Debug, Clone, PartialEq)]
pub struct ThrottleExperiment {
    /// Drive under test.
    pub spec: DriveThermalSpec,
    /// Thermal coefficients.
    pub thermal: ThermalParams,
    /// The envelope to respect.
    pub envelope: Celsius,
}

impl ThrottleExperiment {
    /// The paper's Figure 7(a) setup: a single 2.6″ platter pushed to
    /// 24,534 RPM (the 2005 requirement), VCM-only throttling.
    pub fn figure7a() -> (Self, ThrottlePolicy) {
        (
            Self {
                spec: DriveThermalSpec::new(Inches::new(2.6), 1),
                thermal: ThermalParams::default(),
                envelope: THERMAL_ENVELOPE,
            },
            ThrottlePolicy::VcmOnly {
                rpm: Rpm::new(24_534.0),
            },
        )
    }

    /// The paper's Figure 7(b) setup: the same platter pushed to
    /// 37,001 RPM (the 2007 requirement) with a 22,001 RPM low speed.
    pub fn figure7b() -> (Self, ThrottlePolicy) {
        (
            Self {
                spec: DriveThermalSpec::new(Inches::new(2.6), 1),
                thermal: ThermalParams::default(),
                envelope: THERMAL_ENVELOPE,
            },
            ThrottlePolicy::VcmAndRpm {
                high: Rpm::new(37_001.0),
                low: Rpm::new(22_001.0),
            },
        )
    }

    fn model(&self) -> ThermalModel {
        ThermalModel::with_params(self.spec, self.thermal)
    }

    /// Steady-state internal-air temperature at an arbitrary operating
    /// point of the experiment's drive (for reporting the Figure 6
    /// feasibility boundaries).
    pub fn model_steady(&self, op: OperatingPoint) -> Celsius {
        self.model().steady_air_temp(op)
    }

    /// Whether the policy can cool at all: its cooling-point steady
    /// temperature must sit below the envelope (Figure 6's feasibility
    /// condition).
    pub fn is_feasible(&self, policy: ThrottlePolicy) -> bool {
        self.model().steady_air_temp(policy.cooling_point()) < self.envelope
    }

    /// Runs one throttle cycle and returns the throttling ratio
    /// `t_heat / t_cool`, or `None` when the policy cannot cool the
    /// drive below the envelope (ratio undefined) or the service point
    /// would never re-reach the envelope (no throttling needed).
    ///
    /// The drive warms from ambient under full service until the air
    /// first touches the envelope ("we set the initial temperature to
    /// the thermal envelope"), cools for `t_cool`, then serves again
    /// until the envelope is hit.
    pub fn throttling_ratio(&self, policy: ThrottlePolicy, t_cool: Seconds) -> Option<f64> {
        if !self.is_feasible(policy) {
            return None;
        }
        let model = self.model();
        let heat_op = policy.heating_point();
        if model.steady_air_temp(heat_op) <= self.envelope {
            return None; // never reaches the envelope: no need to throttle
        }

        // Warm up from a cold start to the envelope.
        let mut sim = TransientSim::from_ambient(&model)
            .with_step(Seconds::new(0.05))
            .expect("constant step is positive");
        sim.time_to_reach(&model, heat_op, self.envelope)
            .expect("service point exceeds the envelope");

        // Cool with the policy's idle point.
        sim.advance(&model, policy.cooling_point(), t_cool);

        // If the interval was too short to pull the air below the
        // envelope at all, no service time was bought: ratio zero.
        if sim.temps().air >= self.envelope {
            return Some(0.0);
        }

        // Serve until the envelope is reached again.
        let t_heat = sim
            .time_to_reach(&model, heat_op, self.envelope)
            .expect("heating resumes past the envelope");
        Some(t_heat.get() / t_cool.get())
    }
}

/// Sweeps `t_cool` and returns `(t_cool_seconds, ratio)` pairs — the
/// Figure 7 curves. Infeasible points are skipped.
pub fn throttling_curve(
    experiment: &ThrottleExperiment,
    policy: ThrottlePolicy,
    t_cools: &[f64],
) -> Vec<(f64, f64)> {
    t_cools
        .iter()
        .filter_map(|&t| {
            experiment
                .throttling_ratio(policy, Seconds::new(t))
                .map(|r| (t, r))
        })
        .collect()
}

/// Convenience wrapper: the ratio for one `(experiment, policy, t_cool)`
/// triple.
pub fn throttling_ratio(
    experiment: &ThrottleExperiment,
    policy: ThrottlePolicy,
    t_cool: Seconds,
) -> Option<f64> {
    experiment.throttling_ratio(policy, t_cool)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure7a_setup_is_feasible() {
        let (exp, policy) = ThrottleExperiment::figure7a();
        // §5.3: at 24,534 RPM the VCM-off temperature is 44.07 C, below
        // the envelope, so VCM-only throttling works.
        assert!(exp.is_feasible(policy));
        let model = ThermalModel::with_params(exp.spec, exp.thermal);
        let cool = model.steady_air_temp(policy.cooling_point());
        assert!((cool.get() - 44.07).abs() < 0.5, "VCM-off steady {cool}");
    }

    #[test]
    fn vcm_only_infeasible_at_37k() {
        // §5.3: at 37,001 RPM even the VCM-off temperature (53.04 C) is
        // above the envelope; VCM-only throttling cannot work there.
        let (exp, _) = ThrottleExperiment::figure7b();
        let policy = ThrottlePolicy::VcmOnly {
            rpm: Rpm::new(37_001.0),
        };
        assert!(!exp.is_feasible(policy));
        assert!(exp.throttling_ratio(policy, Seconds::new(1.0)).is_none());
    }

    #[test]
    fn figure7b_rpm_drop_restores_feasibility() {
        let (exp, policy) = ThrottleExperiment::figure7b();
        assert!(exp.is_feasible(policy));
    }

    #[test]
    fn ratio_declines_with_longer_cooling() {
        // The Figure 7 shape: short throttle intervals amortize best.
        let (exp, policy) = ThrottleExperiment::figure7a();
        let curve = throttling_curve(&exp, policy, &[0.25, 0.5, 1.0, 2.0, 4.0, 8.0]);
        assert_eq!(curve.len(), 6);
        for pair in curve.windows(2) {
            assert!(
                pair[1].1 <= pair[0].1 + 1e-9,
                "ratio must not grow with t_cool: {curve:?}"
            );
        }
    }

    #[test]
    fn sub_second_granularity_keeps_utilization_half() {
        // §5.3's conclusion: ratio >= 1 needs throttling at a fine
        // (sub-second) granularity, and long cool-downs fall below 1.
        let (exp, policy) = ThrottleExperiment::figure7a();
        let fine = exp
            .throttling_ratio(policy, Seconds::new(0.2))
            .expect("feasible");
        let coarse = exp
            .throttling_ratio(policy, Seconds::new(8.0))
            .expect("feasible");
        assert!(fine > 0.8, "fine-grained ratio {fine:.2}");
        assert!(coarse < 1.0, "coarse ratio {coarse:.2}");
        assert!(fine > coarse);
    }

    #[test]
    fn no_throttling_needed_within_envelope() {
        let exp = ThrottleExperiment {
            spec: DriveThermalSpec::new(Inches::new(2.6), 1),
            thermal: ThermalParams::default(),
            envelope: THERMAL_ENVELOPE,
        };
        // 15,000 RPM never exceeds the envelope: ratio undefined.
        let policy = ThrottlePolicy::VcmOnly {
            rpm: Rpm::new(15_000.0),
        };
        assert!(exp.throttling_ratio(policy, Seconds::new(1.0)).is_none());
    }

    #[test]
    fn rpm_drop_cools_better_than_vcm_alone() {
        // At a speed where both policies are feasible, adding the RPM
        // drop buys a higher ratio for the same t_cool.
        let spec = DriveThermalSpec::new(Inches::new(2.6), 1);
        let exp = ThrottleExperiment {
            spec,
            thermal: ThermalParams::default(),
            envelope: THERMAL_ENVELOPE,
        };
        let rpm = Rpm::new(24_534.0);
        let vcm_only = ThrottlePolicy::VcmOnly { rpm };
        let with_drop = ThrottlePolicy::VcmAndRpm {
            high: rpm,
            low: Rpm::new(15_000.0),
        };
        let t = Seconds::new(2.0);
        let a = exp.throttling_ratio(vcm_only, t).unwrap();
        let b = exp.throttling_ratio(with_drop, t).unwrap();
        assert!(b > a, "RPM drop should cool harder: {a:.2} vs {b:.2}");
    }
}
