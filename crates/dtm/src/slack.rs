//! Thermal-slack analysis (§5.2, Figure 5).

use diskthermal::{
    max_rpm_within_envelope, DriveThermalSpec, EnvelopeSearch, ThermalModel, ThermalParams,
    THERMAL_ENVELOPE,
};
use roadmap::{RoadmapConfig, TechnologyTrend};
use diskgeom::{DriveGeometry, Platter};
use diskperf::idr;
use serde::{Deserialize, Serialize};
use units::{Celsius, DataRate, Inches, Power, Rpm};

/// Parameters of the slack study.
#[derive(Debug, Clone, PartialEq)]
pub struct SlackConfig {
    /// Platter sizes to analyze (the roadmap's, largest first).
    pub platter_sizes: Vec<Inches>,
    /// Platter count (the paper's Figure 5 uses one platter).
    pub platters: u32,
    /// Thermal envelope.
    pub envelope: Celsius,
    /// Thermal coefficients.
    pub thermal: ThermalParams,
    /// Roadmap configuration for the revised IDR roadmap.
    pub roadmap: RoadmapConfig,
}

impl Default for SlackConfig {
    fn default() -> Self {
        Self {
            platter_sizes: vec![Inches::new(2.6), Inches::new(2.1), Inches::new(1.6)],
            platters: 1,
            envelope: THERMAL_ENVELOPE,
            thermal: ThermalParams::default(),
            roadmap: RoadmapConfig::default(),
        }
    }
}

/// Slack available to one platter size (Figure 5a).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlackRow {
    /// Platter diameter.
    pub diameter: Inches,
    /// Envelope-design maximum RPM (VCM always on).
    pub envelope_rpm: Rpm,
    /// Maximum RPM when the VCM is off — the slack-exploiting speed a
    /// multi-speed disk could ramp to.
    pub slack_rpm: Rpm,
    /// VCM power of this platter size (the source of the slack).
    pub vcm_power: Power,
}

impl SlackRow {
    /// Extra spindle speed the slack buys.
    pub fn rpm_gain(&self) -> Rpm {
        self.slack_rpm - self.envelope_rpm
    }
}

/// Computes Figure 5(a): envelope-design vs. VCM-off maximum RPM per
/// platter size.
///
/// # Panics
///
/// Panics if a configuration is infeasible even at the search floor,
/// which cannot happen for the paper's sizes.
pub fn slack_table(cfg: &SlackConfig) -> Vec<SlackRow> {
    cfg.platter_sizes
        .iter()
        .map(|&diameter| {
            let spec = DriveThermalSpec::new(diameter, cfg.platters);
            let model = ThermalModel::with_params(spec, cfg.thermal);
            let search = EnvelopeSearch::default();
            let envelope_rpm = max_rpm_within_envelope(&model, 1.0, cfg.envelope, search)
                .expect("roadmap sizes are feasible");
            let slack_rpm = max_rpm_within_envelope(&model, 0.0, cfg.envelope, search)
                .expect("VCM-off is at least as feasible");
            SlackRow {
                diameter,
                envelope_rpm,
                slack_rpm,
                vcm_power: spec.vcm_power(),
            }
        })
        .collect()
}

/// One year of the revised IDR roadmap (Figure 5b).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlackRoadmapPoint {
    /// Roadmap year.
    pub year: i32,
    /// Platter diameter.
    pub diameter: Inches,
    /// Best IDR under the envelope design (VCM always on).
    pub envelope_idr: DataRate,
    /// Best IDR when the slack is exploited (VCM off).
    pub slack_idr: DataRate,
    /// The 40 %-CGR target.
    pub idr_target: DataRate,
}

/// Computes Figure 5(b): the envelope-design and VCM-off IDR roadmaps
/// side by side.
pub fn slack_roadmap(cfg: &SlackConfig) -> Vec<SlackRoadmapPoint> {
    let trend: &TechnologyTrend = &cfg.roadmap.trend;
    let rows = slack_table(cfg);
    let mut out = Vec::new();
    for row in &rows {
        for year in cfg.roadmap.years() {
            let geom = DriveGeometry::new(
                Platter::new(row.diameter),
                trend.tech(year),
                cfg.platters,
                cfg.roadmap.n_zones,
            )
            .expect("roadmap-era geometry is valid");
            out.push(SlackRoadmapPoint {
                year,
                diameter: row.diameter,
                envelope_idr: idr(geom.zones(), row.envelope_rpm),
                slack_idr: idr(geom.zones(), row.slack_rpm),
                idr_target: trend.idr_target(year),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slack_matches_section_5_2() {
        let rows = slack_table(&SlackConfig::default());
        let r26 = rows
            .iter()
            .find(|r| (r.diameter.get() - 2.6).abs() < 1e-9)
            .unwrap();
        // Paper: 15,020 -> 26,750 RPM for the 2.6" drive.
        assert!(
            (r26.envelope_rpm.get() - 15_020.0).abs() < 400.0,
            "envelope RPM {}",
            r26.envelope_rpm
        );
        assert!(
            (r26.slack_rpm.get() - 26_750.0).abs() / 26_750.0 < 0.05,
            "slack RPM {}",
            r26.slack_rpm
        );
    }

    #[test]
    fn slack_shrinks_with_platter_size() {
        // §5.2: smaller platters have less VCM power, hence less slack.
        let rows = slack_table(&SlackConfig::default());
        assert!(rows[0].vcm_power > rows[1].vcm_power);
        assert!(rows[1].vcm_power > rows[2].vcm_power);
        // Relative RPM gain shrinks too.
        let rel_gain = |r: &SlackRow| r.rpm_gain().get() / r.envelope_rpm.get();
        assert!(rel_gain(&rows[0]) > rel_gain(&rows[1]));
        assert!(rel_gain(&rows[1]) > rel_gain(&rows[2]));
    }

    #[test]
    fn slack_roadmap_dominates_envelope_roadmap() {
        for p in slack_roadmap(&SlackConfig::default()) {
            assert!(
                p.slack_idr > p.envelope_idr,
                "{} {}: slack must help",
                p.year,
                p.diameter
            );
        }
    }

    #[test]
    fn slack_extends_26_inch_roadmap_to_2005ish() {
        // §5.2: the 2.6" slack design exceeds the 40% CGR curve until
        // the 2005-2006 time frame.
        let points = slack_roadmap(&SlackConfig::default());
        let last_met = points
            .iter()
            .filter(|p| {
                (p.diameter.get() - 2.6).abs() < 1e-9
                    && p.slack_idr.get() >= 0.985 * p.idr_target.get()
            })
            .map(|p| p.year)
            .max()
            .expect("meets the target in early years");
        assert!(
            (2004..=2006).contains(&last_met),
            "2.6\" slack roadmap holds through {last_met}"
        );
    }

    #[test]
    fn slack_26_beats_envelope_21() {
        // §5.2: "the slack for the 2.6in drive allows it to surpass a
        // non-slack 2.1in configuration" — better speed AND capacity.
        let cfg = SlackConfig::default();
        let points = slack_roadmap(&cfg);
        for year in cfg.roadmap.years() {
            let slack26 = points
                .iter()
                .find(|p| p.year == year && (p.diameter.get() - 2.6).abs() < 1e-9)
                .unwrap()
                .slack_idr;
            let env21 = points
                .iter()
                .find(|p| p.year == year && (p.diameter.get() - 2.1).abs() < 1e-9)
                .unwrap()
                .envelope_idr;
            assert!(slack26 > env21, "{year}: {slack26} vs {env21}");
        }
    }
}
