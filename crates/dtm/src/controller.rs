//! Closed-loop DTM: thermal-aware request admission over the
//! trace-driven simulator.
//!
//! The paper evaluates its two mechanisms analytically and leaves the
//! control-policy evaluation to future work; this module provides that
//! loop. A [`DtmController`] advances the storage simulation in fixed
//! windows, measures the actuator duty the served requests actually
//! produced, feeds it to the thermal transient model, and applies a
//! [`DtmPolicy`] — gating admission (and optionally dropping the spindle
//! speed) near the envelope, or ramping a multi-speed disk up when slack
//! is available.

use crate::driver::WindowedDrive;
use crate::throttle::ThrottlePolicy;
use disksim::{Completion, EnergyMeter, EnergyModel, EnergyReport, Request, ResponseStats, SimError, StorageSystem};
use diskthermal::{NodeTemps, TempSensor, ThermalModel};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use units::{Celsius, Rpm, Seconds, TempDelta};

/// The control policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DtmPolicy {
    /// No thermal control — the baseline that may violate the envelope.
    None,
    /// Stop admitting requests when the air temperature crosses
    /// `envelope - guard`; resume once it falls `resume_margin` below
    /// that trip point. With [`ThrottlePolicy::VcmAndRpm`] the spindle
    /// also drops while throttled.
    Throttle {
        /// The throttle mechanism (VCM-only or VCM + RPM drop).
        mechanism: ThrottlePolicy,
        /// Safety margin below the envelope at which to trip.
        guard: TempDelta,
        /// Hysteresis below the trip point before resuming.
        resume_margin: TempDelta,
    },
    /// Exploit thermal slack on a two-speed disk: run at `high` RPM
    /// while the air stays `slack_margin` below the envelope, fall back
    /// to `base` RPM otherwise. Service continues in both modes.
    SlackRamp {
        /// Baseline (envelope-design) speed.
        base: Rpm,
        /// Boosted speed while slack lasts.
        high: Rpm,
        /// Required margin below the envelope to stay boosted.
        slack_margin: TempDelta,
    },
    /// DRPM-style speed scaling on a full multi-speed disk (the paper
    /// cites its own DRPM work as the enabling mechanism): near the
    /// envelope the spindle drops to `low` but *keeps serving requests*
    /// — no admission gating at all — and returns to `high` once the
    /// temperature recedes.
    SpeedScale {
        /// Full-performance speed (may exceed the worst-case envelope).
        high: Rpm,
        /// Reduced speed near the envelope.
        low: Rpm,
        /// Safety margin below the envelope at which to downshift.
        guard: TempDelta,
        /// Hysteresis below the trip point before upshifting.
        resume_margin: TempDelta,
    },
}

/// Outcome of a closed-loop run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DtmReport {
    /// Response-time statistics of all completed requests.
    pub stats: ResponseStats,
    /// Hottest internal-air temperature observed.
    pub max_air: Celsius,
    /// Total simulated time.
    pub total_time: Seconds,
    /// Time spent with admission gated (throttle policies).
    pub time_throttled: Seconds,
    /// Time spent boosted above the base speed (slack policy).
    pub time_boosted: Seconds,
    /// Time the air spent above the envelope.
    pub time_over_envelope: Seconds,
    /// Mean actuator duty measured over the run.
    pub mean_vcm_duty: f64,
    /// Time-weighted mean internal-air temperature.
    pub mean_air: Celsius,
    /// Failure-rate acceleration at the mean temperature relative to
    /// ambient (the paper's 2×-per-15 °C law) — the §6 reliability
    /// argument for DTM in one number.
    pub failure_acceleration: f64,
    /// Energy consumed over the run (all member disks).
    pub energy: EnergyReport,
}

/// The closed-loop controller.
pub struct DtmController {
    drive: WindowedDrive,
    policy: DtmPolicy,
    envelope: Celsius,
    window: Seconds,
    service_rpm: Rpm,
    sensor: TempSensor,
}

impl DtmController {
    /// Builds a controller around an assembled storage system and
    /// thermal model. The thermal transient starts at ambient; use
    /// [`Self::with_initial_temps`] to start hot (e.g. at the envelope).
    pub fn new(
        system: StorageSystem,
        model: ThermalModel,
        policy: DtmPolicy,
        envelope: Celsius,
    ) -> Self {
        let service_rpm = system.disks()[0].spec().rpm();
        Self {
            drive: WindowedDrive::new(system, model),
            policy,
            envelope,
            window: Seconds::from_millis(250.0),
            service_rpm,
            sensor: TempSensor::ideal(),
        }
    }

    /// Observes temperature through a realistic sensor instead of the
    /// model's continuous state (e.g. [`TempSensor::smart_style`] for a
    /// SMART-like whole-degree, once-a-second reading). Policy trip
    /// points then need margins covering the sensor's under-reporting.
    pub fn with_sensor(mut self, sensor: TempSensor) -> Self {
        self.sensor = sensor;
        self
    }

    /// Starts the thermal state from explicit node temperatures.
    pub fn with_initial_temps(mut self, temps: NodeTemps) -> Self {
        self.drive.set_initial_temps(temps);
        self
    }

    /// Overrides the control window (default 250 ms).
    ///
    /// # Panics
    ///
    /// Panics if the window is not positive.
    pub fn with_window(mut self, window: Seconds) -> Self {
        assert!(window.get() > 0.0, "control window must be positive");
        self.window = window;
        self
    }

    /// Runs the whole trace under the policy.
    ///
    /// # Errors
    ///
    /// Propagates submission errors (bad devices or ranges in the
    /// trace).
    pub fn run(self, trace: Vec<Request>) -> Result<DtmReport, SimError> {
        let mut sink = diskobs::Sink::null();
        self.run_with_sink(trace, &mut sink)
    }

    /// Runs the whole trace, streaming trace events into `sink`: the
    /// storage system's request events, one `SensorReading` and one
    /// `Snapshot` per control window, and a transition event for every
    /// policy actuation. All timestamps are sim time, so equal runs
    /// produce byte-identical traces. With a disabled (null) sink this
    /// is exactly [`Self::run`] — emission sites cost one branch.
    ///
    /// # Errors
    ///
    /// Propagates submission errors (bad devices or ranges in the
    /// trace).
    pub fn run_with_sink(
        mut self,
        trace: Vec<Request>,
        sink: &mut diskobs::Sink,
    ) -> Result<DtmReport, SimError> {
        let scope = sink.scope();
        if sink.is_enabled() {
            // Buffer the system's own emissions (request issue/complete,
            // RPM transitions) and fold them into `sink` window by
            // window, keeping one time-ordered stream.
            self.drive.set_sink(diskobs::Sink::buffer().with_scope(scope));
        }
        let mut pending: VecDeque<Request> = trace.into();
        let mut completions: Vec<Completion> = Vec::new();
        let disks = self.drive.system().disks().len() as f64;

        let mut throttled = false;
        let mut boosted = false;
        let mut scaled_down = false;
        let mut time_throttled = Seconds::ZERO;
        let mut time_boosted = Seconds::ZERO;
        let mut time_over = Seconds::ZERO;
        let mut max_air = self.drive.air();
        let mut air_integral = 0.0;
        let mut duty_acc = 0.0;
        let mut windows = 0u64;
        let mut now = Seconds::ZERO;
        let mut meter = EnergyMeter::new(EnergyModel {
            vcm_watts: self.drive.model().spec().vcm_power().get(),
            ..EnergyModel::default()
        });

        // Apply the starting speed of speed-modulating policies.
        match self.policy {
            DtmPolicy::SlackRamp { high, .. } => {
                // Start boosted: the drive is presumed cold.
                self.drive.set_all_rpm(high);
                boosted = true;
            }
            DtmPolicy::SpeedScale { high, .. } => self.drive.set_all_rpm(high),
            _ => {}
        }

        loop {
            let window_end = now + self.window;

            // 1. Admission: release pending arrivals up to the window
            //    end unless gated. Original arrival timestamps are
            //    preserved, so time spent waiting at the admission gate
            //    is part of the response time the policy costs.
            if !throttled {
                self.drive.admit_until(&mut pending, window_end)?;
            }

            // 2-4. Serve the window, measure actuator duty, and step
            // the thermal transient at the measured operating point
            // (the shared driver loop body).
            let sample = self
                .drive
                .serve_window(window_end, self.window, &mut completions);
            duty_acc += sample.duty;
            windows += 1;
            meter.accumulate(
                sample.rpm,
                self.window * (sample.duty * disks),
                self.window * disks,
            );
            let true_air = sample.air();
            max_air = max_air.max(true_air);
            air_integral += true_air.get() * self.window.get();
            if true_air > self.envelope {
                time_over += self.window;
            }
            // Policies act on the *sensed* temperature.
            let air = self.sensor.read(window_end, true_air);
            if sink.is_enabled() {
                sink.extend(self.drive.drain_events());
                sink.emit(window_end, || diskobs::Event::SensorReading {
                    drive: scope,
                    sensed_c: air.get(),
                    actual_c: true_air.get(),
                });
                let queue = pending.len() as u64 + self.drive.in_flight();
                sink.emit(window_end, || diskobs::Event::Snapshot {
                    drive: scope,
                    air_c: true_air.get(),
                    ambient_c: self.drive.model().spec().ambient().get(),
                    queue,
                    util: sample.util,
                    duty: sample.duty,
                    rpm: sample.rpm.get(),
                    gated: throttled,
                });
            }
            if throttled {
                time_throttled += self.window;
            }
            if boosted {
                time_boosted += self.window;
            }

            // 5. Policy.
            let was_throttled = throttled;
            let was_boosted = boosted;
            let was_scaled = scaled_down;
            match self.policy {
                DtmPolicy::None => {}
                DtmPolicy::Throttle {
                    mechanism,
                    guard,
                    resume_margin,
                } => {
                    let trip = self.envelope - guard;
                    if !throttled && air >= trip {
                        throttled = true;
                        if let ThrottlePolicy::VcmAndRpm { low, .. } = mechanism {
                            self.drive.set_all_rpm(low);
                        }
                    } else if throttled && air <= trip - resume_margin {
                        throttled = false;
                        self.drive.set_all_rpm(self.service_rpm);
                    }
                }
                DtmPolicy::SlackRamp {
                    base,
                    high,
                    slack_margin,
                } => {
                    let boost_ok = air <= self.envelope - slack_margin;
                    if boosted && !boost_ok {
                        self.drive.set_all_rpm(base);
                        boosted = false;
                    } else if !boosted && air <= self.envelope - slack_margin * 1.5 {
                        self.drive.set_all_rpm(high);
                        boosted = true;
                    }
                    let _ = boost_ok;
                }
                DtmPolicy::SpeedScale {
                    high,
                    low,
                    guard,
                    resume_margin,
                } => {
                    let trip = self.envelope - guard;
                    if !scaled_down && air >= trip {
                        self.drive.set_all_rpm(low);
                        scaled_down = true;
                    } else if scaled_down && air <= trip - resume_margin {
                        self.drive.set_all_rpm(high);
                        scaled_down = false;
                    }
                }
            }
            if throttled != was_throttled {
                sink.emit(window_end, || {
                    if throttled {
                        diskobs::Event::ThrottleEngage { drive: scope, sensed_c: air.get() }
                    } else {
                        diskobs::Event::ThrottleDisengage { drive: scope, sensed_c: air.get() }
                    }
                });
            }
            if scaled_down != was_scaled {
                sink.emit(window_end, || diskobs::Event::CoordinatorAction {
                    drive: scope,
                    action: if scaled_down { "downshift" } else { "upshift" },
                });
            }
            if boosted != was_boosted {
                sink.emit(window_end, || diskobs::Event::CoordinatorAction {
                    drive: scope,
                    action: if boosted { "boost" } else { "unboost" },
                });
            }
            if scaled_down {
                time_throttled += self.window;
            }

            now = window_end;

            // Exit once the trace is fully served and the queues drained.
            if pending.is_empty() && self.drive.in_flight() == 0 {
                break;
            }
            // Safety cap: a trace gated forever (policy too strict)
            // still terminates.
            if now.get() > 24.0 * 3600.0 {
                break;
            }
        }

        if sink.is_enabled() {
            // A final-window actuation lands in the drive buffer after
            // the last in-loop drain; fold it in before reporting.
            sink.extend(self.drive.drain_events());
        }

        let mean_air = if now.get() > 0.0 {
            Celsius::new(air_integral / now.get())
        } else {
            self.drive.air()
        };
        Ok(DtmReport {
            stats: ResponseStats::from_completions(&completions),
            max_air,
            total_time: now,
            time_throttled,
            time_boosted,
            time_over_envelope: time_over,
            mean_vcm_duty: if windows == 0 { 0.0 } else { duty_acc / windows as f64 },
            mean_air,
            failure_acceleration: diskthermal::reliability::failure_acceleration(
                mean_air,
                self.drive.model().spec().ambient(),
            ),
            energy: meter.report(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diskthermal::{DriveThermalSpec, OperatingPoint, ThermalParams, THERMAL_ENVELOPE};
    use disksim::{DiskSpec, RequestKind, SystemConfig};
    use units::Inches;

    /// A hot drive: 24,534 RPM 2.6" single platter (2005's requirement),
    /// worst-case steady state 48.26 C > envelope.
    fn hot_setup(rpm: f64) -> (StorageSystem, ThermalModel) {
        let spec = DiskSpec::era(2002, 1, Rpm::new(rpm));
        let system = StorageSystem::new(SystemConfig::single_disk(spec)).unwrap();
        let model = ThermalModel::with_params(
            DriveThermalSpec::new(Inches::new(2.6), 1),
            ThermalParams::default(),
        );
        (system, model)
    }

    /// A seek-heavy trace that keeps the actuator busy.
    fn heavy_trace(n: usize, rate_per_sec: f64, capacity: u64) -> Vec<Request> {
        (0..n)
            .map(|i| {
                Request::new(
                    i as u64,
                    Seconds::new(i as f64 / rate_per_sec),
                    0,
                    (i as u64).wrapping_mul(7_777_777) % (capacity - 64),
                    8,
                    if i % 3 == 0 { RequestKind::Write } else { RequestKind::Read },
                )
            })
            .collect()
    }

    #[test]
    fn baseline_overheats_hot_drive() {
        let (system, model) = hot_setup(24_534.0);
        let cap = system.logical_sectors();
        let hot_start = model.steady_state(OperatingPoint::seeking(Rpm::new(24_534.0)));
        let report = DtmController::new(system, model, DtmPolicy::None, THERMAL_ENVELOPE)
            .with_initial_temps(hot_start)
            .run(heavy_trace(2_000, 120.0, cap))
            .unwrap();
        assert!(
            report.max_air > THERMAL_ENVELOPE,
            "uncontrolled hot drive must exceed the envelope, got {}",
            report.max_air
        );
        assert_eq!(report.stats.count(), 2_000);
    }

    #[test]
    fn throttling_caps_temperature() {
        let (system, model) = hot_setup(24_534.0);
        let cap = system.logical_sectors();
        // Start just below the envelope.
        let start = NodeTemps::uniform(Celsius::new(44.5));
        let policy = DtmPolicy::Throttle {
            mechanism: ThrottlePolicy::VcmOnly {
                rpm: Rpm::new(24_534.0),
            },
            guard: TempDelta::new(0.1),
            resume_margin: TempDelta::new(0.2),
        };
        let report = DtmController::new(system, model, policy, THERMAL_ENVELOPE)
            .with_initial_temps(start)
            .run(heavy_trace(2_000, 120.0, cap))
            .unwrap();
        assert!(
            report.max_air <= THERMAL_ENVELOPE + TempDelta::new(0.3),
            "throttled run peaked at {}",
            report.max_air
        );
        assert_eq!(report.stats.count(), 2_000, "all requests still complete");
    }

    #[test]
    fn throttling_trades_latency_for_temperature() {
        let trace_len = 1_500;
        let run = |policy: DtmPolicy| {
            let (system, model) = hot_setup(24_534.0);
            let cap = system.logical_sectors();
            let start = NodeTemps::uniform(Celsius::new(44.8));
            DtmController::new(system, model, policy, THERMAL_ENVELOPE)
                .with_initial_temps(start)
                .run(heavy_trace(trace_len, 150.0, cap))
                .unwrap()
        };
        let baseline = run(DtmPolicy::None);
        let throttled = run(DtmPolicy::Throttle {
            mechanism: ThrottlePolicy::VcmOnly {
                rpm: Rpm::new(24_534.0),
            },
            guard: TempDelta::new(0.1),
            resume_margin: TempDelta::new(0.2),
        });
        assert!(throttled.max_air < baseline.max_air);
        assert!(
            throttled.stats.mean() >= baseline.stats.mean(),
            "gating cannot make requests faster"
        );
        assert!(throttled.time_throttled.get() > 0.0);
    }

    #[test]
    fn slack_ramp_boosts_while_cool_and_respects_envelope() {
        let (system, model) = hot_setup(15_020.0);
        let cap = system.logical_sectors();
        let policy = DtmPolicy::SlackRamp {
            base: Rpm::new(15_020.0),
            high: Rpm::new(24_000.0),
            slack_margin: TempDelta::new(0.5),
        };
        let report = DtmController::new(system, model, policy, THERMAL_ENVELOPE)
            .run(heavy_trace(2_000, 100.0, cap))
            .unwrap();
        assert!(report.time_boosted.get() > 0.0, "cold drive should boost");
        assert!(
            report.max_air <= THERMAL_ENVELOPE + TempDelta::new(0.3),
            "slack ramp peaked at {}",
            report.max_air
        );
    }

    #[test]
    fn slack_ramp_improves_response_over_base() {
        let trace = |cap: u64| heavy_trace(2_500, 140.0, cap);
        let (system, model) = hot_setup(15_020.0);
        let cap = system.logical_sectors();
        let base_report = DtmController::new(system, model, DtmPolicy::None, THERMAL_ENVELOPE)
            .run(trace(cap))
            .unwrap();

        let (system, model) = hot_setup(15_020.0);
        let boost_report = DtmController::new(
            system,
            model,
            DtmPolicy::SlackRamp {
                base: Rpm::new(15_020.0),
                high: Rpm::new(26_000.0),
                slack_margin: TempDelta::new(0.5),
            },
            THERMAL_ENVELOPE,
        )
        .run(trace(cap))
        .unwrap();

        assert!(
            boost_report.stats.mean() < base_report.stats.mean(),
            "slack boost should cut mean response: {} vs {}",
            boost_report.stats.mean().to_millis(),
            base_report.stats.mean().to_millis()
        );
    }

    #[test]
    fn speed_scale_never_gates_and_trims_heat() {
        let trace_len = 2_000;
        let run = |policy: DtmPolicy| {
            let (system, model) = hot_setup(24_534.0);
            let cap = system.logical_sectors();
            DtmController::new(system, model, policy, THERMAL_ENVELOPE)
                .with_initial_temps(NodeTemps::uniform(Celsius::new(44.9)))
                .run(heavy_trace(trace_len, 140.0, cap))
                .unwrap()
        };
        let baseline = run(DtmPolicy::None);
        let scaled = run(DtmPolicy::SpeedScale {
            high: Rpm::new(24_534.0),
            low: Rpm::new(15_020.0),
            guard: TempDelta::new(0.1),
            resume_margin: TempDelta::new(0.2),
        });
        assert_eq!(scaled.stats.count(), trace_len as u64);
        assert!(scaled.max_air <= baseline.max_air);
        assert!(scaled.time_throttled.get() > 0.0, "the downshift must engage");
        // Unlike gating, service continues: the run finishes in
        // comparable wall-clock time.
        assert!(scaled.total_time.get() < baseline.total_time.get() * 2.0);
    }

    #[test]
    fn report_carries_reliability_summary() {
        let (system, model) = hot_setup(15_020.0);
        let cap = system.logical_sectors();
        let report = DtmController::new(system, model, DtmPolicy::None, THERMAL_ENVELOPE)
            .run(heavy_trace(500, 100.0, cap))
            .unwrap();
        assert!(report.mean_air.get() >= 28.0);
        assert!(report.failure_acceleration >= 1.0);
        // The doubling law ties the two fields together.
        let expected = 2f64.powf((report.mean_air.get() - 28.0) / 15.0);
        assert!((report.failure_acceleration - expected).abs() < 1e-9);
    }

    #[test]
    fn speed_scaling_saves_energy() {
        // The DRPM heritage: serving at a reduced speed near the
        // envelope burns less spindle energy than running flat out.
        let run = |policy: DtmPolicy| {
            let (system, model) = hot_setup(24_534.0);
            let cap = system.logical_sectors();
            DtmController::new(system, model, policy, THERMAL_ENVELOPE)
                .with_initial_temps(NodeTemps::uniform(Celsius::new(44.9)))
                .run(heavy_trace(1_500, 120.0, cap))
                .unwrap()
        };
        let flat = run(DtmPolicy::None);
        let scaled = run(DtmPolicy::SpeedScale {
            high: Rpm::new(24_534.0),
            low: Rpm::new(15_020.0),
            guard: TempDelta::new(0.1),
            resume_margin: TempDelta::new(0.2),
        });
        let flat_w = flat.energy.total_j() / flat.energy.elapsed.get();
        let scaled_w = scaled.energy.total_j() / scaled.energy.elapsed.get();
        assert!(
            scaled_w < flat_w,
            "speed scaling should cut mean power: {scaled_w:.1} vs {flat_w:.1} W"
        );
        assert!(flat.energy.total_j() > 0.0);
    }

    #[test]
    fn smart_sensor_needs_a_guard_matching_its_resolution() {
        use diskthermal::TempSensor;
        let trace_len = 2_000;
        let run = |sensor: TempSensor, guard: f64| {
            let (system, model) = hot_setup(24_534.0);
            let cap = system.logical_sectors();
            DtmController::new(
                system,
                model,
                DtmPolicy::Throttle {
                    mechanism: ThrottlePolicy::VcmOnly {
                        rpm: Rpm::new(24_534.0),
                    },
                    guard: TempDelta::new(guard),
                    resume_margin: TempDelta::new(0.2),
                },
                THERMAL_ENVELOPE,
            )
            .with_sensor(sensor)
            .with_initial_temps(NodeTemps::uniform(Celsius::new(43.5)))
            .run(heavy_trace(trace_len, 120.0, cap))
            .unwrap()
        };
        // With a guard covering the sensor's worst-case under-reporting
        // (1 C quantization) plus drift headroom, the envelope holds.
        let sensed = run(TempSensor::smart_style(), 1.3);
        assert_eq!(sensed.stats.count(), trace_len as u64);
        assert!(
            sensed.max_air <= THERMAL_ENVELOPE + TempDelta::new(0.35),
            "sensed control peaked at {}",
            sensed.max_air
        );
        // A guard thinner than the quantization lets the true
        // temperature slip past the sensed trip point.
        let thin = run(TempSensor::smart_style(), 0.05);
        assert!(thin.max_air >= sensed.max_air);
    }

    #[test]
    fn hysteresis_absorbs_smart_sensor_quantization_without_flapping() {
        use diskthermal::TempSensor;
        // Run the throttle policy through the SMART-style sensor (1 C
        // quantization, 1 s polling) and pull the engage/disengage
        // events from the trace sink.
        let run = |resume_margin: f64| {
            let (system, model) = hot_setup(24_534.0);
            let cap = system.logical_sectors();
            let mut sink = diskobs::Sink::buffer();
            let report = DtmController::new(
                system,
                model,
                DtmPolicy::Throttle {
                    // RPM drops while gated, so the drive genuinely
                    // cools, disengages, and reheats — the oscillation
                    // a thin margin turns into flapping.
                    mechanism: ThrottlePolicy::VcmAndRpm {
                        high: Rpm::new(24_534.0),
                        low: Rpm::new(15_020.0),
                    },
                    guard: TempDelta::new(1.3),
                    resume_margin: TempDelta::new(resume_margin),
                },
                THERMAL_ENVELOPE,
            )
            .with_sensor(TempSensor::smart_style())
            .with_initial_temps(NodeTemps::uniform(Celsius::new(44.0)))
            .run_with_sink(heavy_trace(3_000, 120.0, cap), &mut sink)
            .unwrap();
            let transitions: Vec<(f64, bool)> = sink
                .drain()
                .into_iter()
                .filter_map(|e| match e.event {
                    diskobs::Event::ThrottleEngage { .. } => Some((e.t, true)),
                    diskobs::Event::ThrottleDisengage { .. } => Some((e.t, false)),
                    _ => None,
                })
                .collect();
            (report, transitions)
        };

        // With the resume margin wider than the sensor's 1 C
        // quantization, a re-engage needs a genuine >1 C reheat after
        // each disengage — thermal inertia cannot produce that within
        // the 1 s polling interval, so the throttle cannot flap.
        let (report, steady) = run(1.2);
        assert!(report.time_throttled.get() > 0.0, "throttle must engage");
        let mut prev_disengage: Option<f64> = None;
        for &(t, engaged) in &steady {
            if engaged {
                if let Some(d) = prev_disengage {
                    assert!(
                        t - d > 1.0,
                        "re-engaged {:.2}s after a disengage: sensor noise is flapping the throttle",
                        t - d
                    );
                }
            } else {
                prev_disengage = Some(t);
            }
        }

        // A zero resume margin puts trip and resume on the same sensed
        // degree, so quantization chatters the throttle — the wide
        // margin must strictly cut the transition count.
        let (_, chatter) = run(0.0);
        assert!(
            steady.len() < chatter.len(),
            "margin 1.2 C made {} transitions vs {} at zero margin",
            steady.len(),
            chatter.len()
        );
    }

    #[test]
    fn duty_measurement_is_sane() {
        let (system, model) = hot_setup(15_020.0);
        let cap = system.logical_sectors();
        let report = DtmController::new(system, model, DtmPolicy::None, THERMAL_ENVELOPE)
            .run(heavy_trace(1_000, 100.0, cap))
            .unwrap();
        assert!(report.mean_vcm_duty > 0.0, "seeky trace has actuator activity");
        assert!(report.mean_vcm_duty <= 1.0);
    }
}
