//! Dynamic Thermal Management (§5).
//!
//! Two families of mechanisms for buying back the IDR the thermal
//! envelope takes away:
//!
//! - **Thermal slack** ([`slack_table`] / [`slack_roadmap`]): the
//!   envelope assumes the actuator never rests; when the VCM is off
//!   (idle or sequential periods) the drive runs cooler, and a
//!   multi-speed disk can spend the difference on extra RPM (Figure 5).
//! - **Dynamic throttling** ([`ThrottleExperiment`]): design the drive
//!   *past* the worst-case envelope and pause request service
//!   (optionally also dropping to a lower spindle speed) whenever the
//!   temperature nears the limit — Figures 6 and 7's throttling-ratio
//!   analysis.
//! - A **closed-loop controller** ([`DtmController`]) that couples the
//!   trace-driven simulator with the thermal transient model and
//!   enforces the envelope on-line — the control-policy evaluation the
//!   paper leaves as future work — plus the mirrored-read steering of
//!   §5.4 ([`MirroredPair`]).
//!
//! # Examples
//!
//! ```
//! use dtm::{slack_table, SlackConfig};
//!
//! let rows = slack_table(&SlackConfig::default());
//! // §5.2: the 2.6" drive can ramp from ~15,020 to ~26,750 RPM when
//! // the VCM is off.
//! let r26 = &rows[0];
//! assert!(r26.slack_rpm.get() > r26.envelope_rpm.get() + 8_000.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod controller;
mod driver;
mod mirror;
mod slack;
mod throttle;

pub use controller::{DtmController, DtmPolicy, DtmReport};
pub use driver::{DriveState, WindowSample, WindowedDrive};
pub use mirror::{MirrorReport, MirroredPair};
pub use slack::{slack_roadmap, slack_table, SlackConfig, SlackRoadmapPoint, SlackRow};
pub use throttle::{throttling_curve, throttling_ratio, ThrottleExperiment, ThrottlePolicy};
