//! The shared submit/advance/measure loop under every closed-loop DTM
//! consumer.
//!
//! [`DtmController`](crate::DtmController), [`MirroredPair`](crate::MirroredPair)
//! and the fleet coordinator in `diskfleet` all advance a storage
//! simulation in fixed control windows, measure the actuator duty the
//! served requests actually produced, and feed it to the thermal
//! transient at the drive's current spindle speed. [`WindowedDrive`]
//! owns that loop body once: one storage system (a single disk or a
//! whole array) coupled to one thermal transient, advanced a window at
//! a time.

use disksim::{Completion, Request, SimError, StorageSystem, SystemState};
use diskthermal::{
    DriveThermalSpec, NodeTemps, OperatingPoint, ThermalModel, ThermalParams, TransientSim,
};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use units::{Celsius, Rpm, Seconds};

/// Integration step shared by every windowed thermal transient.
const THERMAL_STEP: Seconds = Seconds::new(0.05);

/// What one control window measured.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowSample {
    /// Spindle speed the window was served at.
    pub rpm: Rpm,
    /// Actuator duty measured over the window, clamped to `[0, 1]`.
    pub duty: f64,
    /// Fraction of the window the member disks spent busy, clamped to
    /// `[0, 1]`.
    pub util: f64,
    /// Node temperatures after the thermal step.
    pub temps: NodeTemps,
}

impl WindowSample {
    /// Internal-air temperature after the thermal step.
    pub fn air(&self) -> Celsius {
        self.temps.air
    }
}

/// A storage system coupled to its thermal transient, advanced in fixed
/// control windows.
pub struct WindowedDrive {
    system: StorageSystem,
    model: ThermalModel,
    sim: TransientSim,
    prev_seek: f64,
    prev_busy: f64,
}

impl WindowedDrive {
    /// Couples an assembled storage system to a thermal model. The
    /// transient starts at the model's ambient; use
    /// [`Self::with_initial_temps`] to start hot.
    pub fn new(system: StorageSystem, model: ThermalModel) -> Self {
        let sim = TransientSim::from_ambient(&model)
            .with_step(THERMAL_STEP)
            .expect("constant step is positive");
        Self {
            system,
            model,
            sim,
            prev_seek: 0.0,
            prev_busy: 0.0,
        }
    }

    /// Restarts the thermal state from explicit node temperatures.
    pub fn with_initial_temps(mut self, temps: NodeTemps) -> Self {
        self.set_initial_temps(temps);
        self
    }

    /// Restarts the thermal state from explicit node temperatures.
    pub fn set_initial_temps(&mut self, temps: NodeTemps) {
        self.sim = TransientSim::with_initial(temps)
            .with_step(THERMAL_STEP)
            .expect("constant step is positive");
    }

    /// Replaces the local ambient (inlet) temperature, rebuilding the
    /// thermal model around it — how the fleet's airflow coupling
    /// injects upstream exhaust preheat between sync epochs. Node
    /// temperatures are untouched; only the boundary condition moves.
    pub fn set_ambient(&mut self, ambient: Celsius) {
        let spec = self.model.spec().with_ambient(ambient);
        self.model = ThermalModel::with_params(spec, *self.model.params());
    }

    /// Submits one request to the underlying system.
    ///
    /// # Errors
    ///
    /// Propagates submission errors (bad device or range).
    pub fn submit(&mut self, request: Request) -> Result<(), SimError> {
        self.system.submit(request)
    }

    /// Releases every pending arrival up to `window_end` into the
    /// system, preserving original arrival timestamps (time spent at the
    /// admission gate is part of the measured response time).
    ///
    /// # Errors
    ///
    /// Propagates submission errors.
    pub fn admit_until(
        &mut self,
        pending: &mut VecDeque<Request>,
        window_end: Seconds,
    ) -> Result<(), SimError> {
        while let Some(front) = pending.front() {
            if front.arrival > window_end {
                break;
            }
            let r = *front;
            pending.pop_front();
            self.system.submit(r)?;
        }
        Ok(())
    }

    /// Serves one control window ending at `window_end`: advances the
    /// event simulation (appending completions to `out`), measures the
    /// actuator duty the window actually produced across all member
    /// disks, steps the thermal transient at that operating point, and
    /// returns the sample.
    pub fn serve_window(
        &mut self,
        window_end: Seconds,
        window: Seconds,
        out: &mut Vec<Completion>,
    ) -> WindowSample {
        self.system.advance_to_into(window_end, out);

        let disks = self.system.disks().len() as f64;
        let seek_now: f64 = self
            .system
            .disks()
            .iter()
            .map(|d| d.seek_time().get())
            .sum();
        let duty = ((seek_now - self.prev_seek) / (window.get() * disks)).clamp(0.0, 1.0);
        self.prev_seek = seek_now;

        let busy_now: f64 = self
            .system
            .disks()
            .iter()
            .map(|d| d.busy_time().get())
            .sum();
        let util = ((busy_now - self.prev_busy) / (window.get() * disks)).clamp(0.0, 1.0);
        self.prev_busy = busy_now;

        let rpm = self.system.disks()[0].spec().rpm();
        self.sim
            .advance(&self.model, OperatingPoint::new(rpm, duty), window);
        WindowSample {
            rpm,
            duty,
            util,
            temps: self.sim.temps(),
        }
    }

    /// Serves a whole sync epoch: `windows` control windows, each
    /// admitting from `pending` (unless `gated`), serving, and
    /// thermally stepping the drive. Window ends come from the *global*
    /// window index `first_window` so every drive computes bit-identical
    /// timestamps regardless of how a fleet shards them. Completions
    /// append to `completions`; one [`WindowSample`] per window replaces
    /// the contents of `samples` — both are caller scratch, so a whole
    /// epoch reuses one buffer set.
    ///
    /// # Errors
    ///
    /// Propagates admission errors (bad device or range).
    #[allow(clippy::too_many_arguments)]
    pub fn serve_epoch(
        &mut self,
        pending: &mut VecDeque<Request>,
        gated: bool,
        first_window: u64,
        windows: usize,
        window: Seconds,
        completions: &mut Vec<Completion>,
        samples: &mut Vec<WindowSample>,
    ) -> Result<(), SimError> {
        samples.clear();
        for w in 0..windows {
            let window_end = Seconds::new((first_window + w as u64 + 1) as f64 * window.get());
            if !gated {
                self.admit_until(pending, window_end)?;
            }
            samples.push(self.serve_window(window_end, window, completions));
        }
        Ok(())
    }

    /// Sets every member disk's spindle speed, emitting one
    /// `RpmTransition` per actual change into the system's trace sink.
    pub fn set_all_rpm(&mut self, rpm: Rpm) {
        let from = self.system.disks()[0].spec().rpm();
        for d in self.system.disks_mut() {
            d.set_rpm(rpm);
        }
        if from != rpm {
            let now = self.system.clock();
            let sink = self.system.sink_mut();
            let drive = sink.scope();
            sink.emit(now, || diskobs::Event::RpmTransition {
                drive,
                from: from.get(),
                to: rpm.get(),
            });
        }
    }

    /// Installs a trace sink on the underlying storage system.
    pub fn set_sink(&mut self, sink: diskobs::Sink) {
        self.system.set_sink(sink);
    }

    /// Drains buffered trace events from the underlying system's sink.
    pub fn drain_events(&mut self) -> Vec<diskobs::TimedEvent> {
        self.system.drain_events()
    }

    /// Like [`Self::drain_events`], but appends into `out`, reusing the
    /// caller's batch buffer.
    pub fn drain_events_into(&mut self, out: &mut Vec<diskobs::TimedEvent>) {
        self.system.drain_events_into(out);
    }

    /// Current spindle speed (all members run in lockstep).
    pub fn rpm(&self) -> Rpm {
        self.system.disks()[0].spec().rpm()
    }

    /// Current node temperatures.
    pub fn temps(&self) -> NodeTemps {
        self.sim.temps()
    }

    /// Current internal-air temperature.
    pub fn air(&self) -> Celsius {
        self.sim.temps().air
    }

    /// Requests in flight inside the storage system.
    pub fn in_flight(&self) -> u64 {
        self.system.in_flight()
    }

    /// The underlying storage system.
    pub fn system(&self) -> &StorageSystem {
        &self.system
    }

    /// Mutable access to the underlying storage system (failure
    /// injection and repair; speed control goes through the DTM APIs).
    pub fn system_mut(&mut self) -> &mut StorageSystem {
        &mut self.system
    }

    /// The thermal model currently coupled to the transient.
    pub fn model(&self) -> &ThermalModel {
        &self.model
    }

    /// Captures the complete dynamic state for checkpointing: the
    /// storage system, the thermal boundary conditions (spec + fitted
    /// parameters, from which the model rebuilds exactly), the
    /// transient's node temperatures and clock, and the duty-measurement
    /// baselines.
    pub fn capture_state(&self) -> DriveState {
        DriveState {
            system: self.system.capture_state(),
            spec: *self.model.spec(),
            params: *self.model.params(),
            temps: self.sim.temps(),
            sim_time: self.sim.time(),
            prev_seek: self.prev_seek,
            prev_busy: self.prev_busy,
        }
    }

    /// Rebuilds a drive from a captured state. The trace sink starts
    /// null, as after [`WindowedDrive::new`].
    ///
    /// # Errors
    ///
    /// Propagates [`SimError::BadConfig`] for an internally inconsistent
    /// storage-system state.
    pub fn restore_state(state: DriveState) -> Result<Self, SimError> {
        let system = StorageSystem::restore_state(state.system)?;
        let model = ThermalModel::with_params(state.spec, state.params);
        let sim = TransientSim::with_initial(state.temps)
            .with_step(THERMAL_STEP)
            .expect("constant step is positive")
            .with_time(state.sim_time);
        Ok(Self {
            system,
            model,
            sim,
            prev_seek: state.prev_seek,
            prev_busy: state.prev_busy,
        })
    }
}

/// Complete dynamic state of a [`WindowedDrive`], captured for
/// checkpointing (see [`WindowedDrive::capture_state`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriveState {
    system: SystemState,
    spec: DriveThermalSpec,
    params: ThermalParams,
    temps: NodeTemps,
    sim_time: Seconds,
    prev_seek: f64,
    prev_busy: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use disksim::{DiskSpec, RequestKind, SystemConfig};
    use units::Inches;

    fn drive(rpm: f64) -> WindowedDrive {
        let spec = DiskSpec::era(2002, 1, Rpm::new(rpm));
        let system = StorageSystem::new(SystemConfig::single_disk(spec)).unwrap();
        let model =
            ThermalModel::new(diskthermal::DriveThermalSpec::new(Inches::new(2.6), 1));
        WindowedDrive::new(system, model)
    }

    #[test]
    fn serve_window_measures_duty_and_steps_thermal() {
        let mut d = drive(15_020.0);
        let cap = d.system().logical_sectors();
        let mut pending: VecDeque<Request> = (0..200u64)
            .map(|i| {
                Request::new(
                    i,
                    Seconds::new(i as f64 / 400.0),
                    0,
                    i.wrapping_mul(7_777_777) % (cap - 64),
                    8,
                    RequestKind::Read,
                )
            })
            .collect();
        let window = Seconds::from_millis(250.0);
        let mut out = Vec::new();
        let mut max_duty: f64 = 0.0;
        for w in 1..=8u32 {
            let end = Seconds::new(w as f64 * window.get());
            d.admit_until(&mut pending, end).unwrap();
            let sample = d.serve_window(end, window, &mut out);
            assert!((0.0..=1.0).contains(&sample.duty));
            max_duty = max_duty.max(sample.duty);
        }
        assert!(max_duty > 0.0, "a seeky trace must move the actuator");
        assert!(d.air().get() > 28.0, "served windows must heat the air");
    }

    #[test]
    fn set_ambient_shifts_the_boundary_not_the_state() {
        let mut d = drive(15_020.0);
        let before = d.temps();
        d.set_ambient(Celsius::new(35.0));
        assert_eq!(d.temps(), before, "node state must survive re-ambienting");
        assert_eq!(d.model().spec().ambient(), Celsius::new(35.0));
        // The hotter inlet pulls the steady state up, so an idle window
        // now drifts the air upward.
        let mut out = Vec::new();
        let window = Seconds::from_millis(250.0);
        let sample = d.serve_window(window, window, &mut out);
        assert!(sample.air() > before.air);
    }

    #[test]
    fn admit_until_respects_arrival_order_and_window_edge() {
        let mut d = drive(15_020.0);
        let cap = d.system().logical_sectors();
        let mut pending: VecDeque<Request> = (0..10u64)
            .map(|i| {
                Request::new(i, Seconds::new(i as f64), 0, i % (cap - 64), 8, RequestKind::Read)
            })
            .collect();
        d.admit_until(&mut pending, Seconds::new(4.0)).unwrap();
        assert_eq!(pending.len(), 5, "arrivals after the window stay pending");
        assert_eq!(pending.front().unwrap().id, 5);
    }
}
