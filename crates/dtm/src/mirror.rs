//! Mirrored-pair DTM (§5.4): "it is also possible to use mirrored disks
//! (i.e. writes propagate to both) while reads are directed to one for a
//! while, and then sent to another during the cool down period."
//!
//! Two identical drives hold the same data. Writes go to both; reads go
//! to the *active* member only, so the standby member's actuator idles
//! and its temperature falls. When the active member nears the envelope
//! and the standby has cooled, the read stream switches sides — the
//! throttling idea of §5.3 without ever gating reads.

use crate::driver::WindowedDrive;
use disksim::{Request, RequestKind, SimError, StorageSystem, SystemConfig};
use disksim::{DiskSpec, ResponseStats};
use diskthermal::ThermalModel;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::collections::VecDeque;
use units::{Celsius, Seconds, TempDelta};

/// Outcome of a mirrored-pair run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MirrorReport {
    /// Response-time statistics over all logical requests.
    pub stats: ResponseStats,
    /// Hottest internal-air temperature either member reached.
    pub max_air: Celsius,
    /// Time either member spent above the envelope.
    pub time_over_envelope: Seconds,
    /// Number of read-target switches performed.
    pub switches: u32,
    /// Total simulated time.
    pub total_time: Seconds,
}

/// A mirrored pair of identical drives under thermal read steering.
pub struct MirroredPair {
    members: [WindowedDrive; 2],
    envelope: Celsius,
    /// Trip margin below the envelope for switching away.
    guard: TempDelta,
    /// The standby must be at least this much cooler to take over.
    min_gap: TempDelta,
    window: Seconds,
    active: usize,
}

impl MirroredPair {
    /// Builds a pair of single-disk members from one spec, sharing one
    /// thermal model (the members are physically identical).
    ///
    /// # Errors
    ///
    /// Propagates simulator configuration errors.
    pub fn new(
        spec: DiskSpec,
        model: ThermalModel,
        envelope: Celsius,
    ) -> Result<Self, SimError> {
        let a = StorageSystem::new(SystemConfig::single_disk(spec.clone()))?;
        let b = StorageSystem::new(SystemConfig::single_disk(spec))?;
        Ok(Self {
            members: [
                WindowedDrive::new(a, model.clone()),
                WindowedDrive::new(b, model),
            ],
            envelope,
            guard: TempDelta::new(0.1),
            min_gap: TempDelta::new(0.3),
            window: Seconds::from_millis(250.0),
            active: 0,
        })
    }

    /// Overrides the switch thresholds.
    pub fn with_thresholds(mut self, guard: TempDelta, min_gap: TempDelta) -> Self {
        self.guard = guard;
        self.min_gap = min_gap;
        self
    }

    /// Starts both members' thermal state at the given temperature.
    pub fn with_initial_air(mut self, temp: Celsius) -> Self {
        let temps = diskthermal::NodeTemps::uniform(temp);
        for member in &mut self.members {
            member.set_initial_temps(temps);
        }
        self
    }

    /// Runs a logical trace through the pair.
    ///
    /// Reads complete when the active member finishes them; writes
    /// complete when *both* members have them on the medium.
    ///
    /// # Errors
    ///
    /// Propagates submission errors.
    pub fn run(mut self, trace: Vec<Request>) -> Result<MirrorReport, SimError> {
        let mut pending: VecDeque<Request> = trace.into();
        // Logical completion tracking for mirrored writes.
        let mut outstanding: HashMap<u64, (Request, u32, Seconds)> = HashMap::new();
        let mut stats = ResponseStats::new();
        let mut completed = 0u64;
        let mut max_air = self.members[0].air();
        let mut time_over = Seconds::ZERO;
        let mut switches = 0u32;
        let mut now = Seconds::ZERO;
        let mut window_completions = Vec::new();

        loop {
            let window_end = now + self.window;

            // Admit logical arrivals.
            while let Some(front) = pending.front() {
                if front.arrival > window_end {
                    break;
                }
                let r = *front;
                pending.pop_front();
                match r.kind {
                    RequestKind::Read => {
                        outstanding.insert(r.id, (r, 1, Seconds::ZERO));
                        self.members[self.active].submit(r)?;
                    }
                    RequestKind::Write => {
                        outstanding.insert(r.id, (r, 2, Seconds::ZERO));
                        self.members[0].submit(r)?;
                        self.members[1].submit(r)?;
                    }
                }
            }

            // Serve the window on both members through the shared
            // driver (event advance + duty measurement + thermal step
            // in one call) and fold completions into logical requests.
            let mut airs = [Celsius::new(0.0); 2];
            for (m, air) in airs.iter_mut().enumerate() {
                window_completions.clear();
                let sample =
                    self.members[m].serve_window(window_end, self.window, &mut window_completions);
                *air = sample.air();
                max_air = max_air.max(*air);
                if *air > self.envelope {
                    time_over += self.window;
                }
                for c in &window_completions {
                    let done = {
                        let entry = outstanding
                            .get_mut(&c.request.id)
                            .expect("completion matches an outstanding request");
                        entry.1 -= 1;
                        entry.2 = entry.2.max(c.finish);
                        entry.1 == 0
                    };
                    if done {
                        let (req, _, finish) = outstanding
                            .remove(&c.request.id)
                            .expect("entry present");
                        stats.record(finish - req.arrival);
                        completed += 1;
                    }
                }
            }

            // Steering: switch reads to the cooler member when the
            // active one nears the envelope.
            let standby = 1 - self.active;
            if airs[self.active] >= self.envelope - self.guard
                && airs[standby] + self.min_gap <= airs[self.active]
            {
                self.active = standby;
                switches += 1;
            }

            now = window_end;
            if pending.is_empty() && outstanding.is_empty() {
                break;
            }
            if now.get() > 24.0 * 3600.0 {
                break;
            }
        }

        debug_assert_eq!(outstanding.len(), 0);
        let _ = completed;
        Ok(MirrorReport {
            stats,
            max_air,
            time_over_envelope: time_over,
            switches,
            total_time: now,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diskthermal::{DriveThermalSpec, THERMAL_ENVELOPE};
    use units::{Inches, Rpm};

    fn read_heavy_trace(capacity: u64, n: u64, rate: f64) -> Vec<Request> {
        (0..n)
            .map(|i| {
                Request::new(
                    i,
                    Seconds::new(i as f64 / rate),
                    0,
                    i.wrapping_mul(7_777_777) % (capacity - 64),
                    8,
                    if i % 10 == 0 { RequestKind::Write } else { RequestKind::Read },
                )
            })
            .collect()
    }

    fn pair(rpm: f64) -> MirroredPair {
        let spec = DiskSpec::era(2002, 1, Rpm::new(rpm));
        let model = ThermalModel::new(DriveThermalSpec::new(Inches::new(2.6), 1));
        MirroredPair::new(spec, model, THERMAL_ENVELOPE).unwrap()
    }

    #[test]
    fn all_requests_complete_and_writes_hit_both() {
        let p = pair(15_020.0);
        let capacity = p.members[0].system().logical_sectors();
        let report = p.run(read_heavy_trace(capacity, 2_000, 150.0)).unwrap();
        assert_eq!(report.stats.count(), 2_000);
        assert!(report.total_time.get() > 0.0);
    }

    #[test]
    fn steering_switches_under_thermal_pressure() {
        // Run hot: start both members just below the envelope at an
        // average-case (over-envelope) design speed.
        let p = pair(24_534.0)
            .with_initial_air(THERMAL_ENVELOPE - TempDelta::new(0.3))
            .with_thresholds(TempDelta::new(0.1), TempDelta::new(0.05));
        let capacity = p.members[0].system().logical_sectors();
        let report = p.run(read_heavy_trace(capacity, 8_000, 140.0)).unwrap();
        assert!(report.switches > 0, "thermal pressure should steer reads");
        assert_eq!(report.stats.count(), 8_000);
    }

    #[test]
    fn mirror_runs_cooler_than_single_disk_under_same_reads() {
        // The §5.4 claim: spreading the seek heat over two spindles
        // halves each actuator's duty, so the pair peaks cooler than one
        // drive absorbing the whole stream.
        let single = {
            let spec = DiskSpec::era(2002, 1, Rpm::new(24_534.0));
            let model = ThermalModel::new(DriveThermalSpec::new(Inches::new(2.6), 1));
            let system = StorageSystem::new(SystemConfig::single_disk(spec)).unwrap();
            let capacity = system.logical_sectors();
            let trace = read_heavy_trace(capacity, 6_000, 140.0);
            crate::DtmController::new(system, model, crate::DtmPolicy::None, THERMAL_ENVELOPE)
                .with_initial_temps(diskthermal::NodeTemps::uniform(
                    THERMAL_ENVELOPE - TempDelta::new(0.5),
                ))
                .run(trace)
                .unwrap()
        };

        let p = pair(24_534.0).with_initial_air(THERMAL_ENVELOPE - TempDelta::new(0.5));
        let capacity = p.members[0].system().logical_sectors();
        let report = p.run(read_heavy_trace(capacity, 6_000, 140.0)).unwrap();

        assert!(
            report.max_air <= single.max_air,
            "pair peaked at {} vs single {}",
            report.max_air,
            single.max_air
        );
    }

    #[test]
    fn write_completion_waits_for_both_members() {
        let p = pair(15_020.0);
        let capacity = p.members[0].system().logical_sectors();
        // A pure-write trace: every completion is mirrored.
        let trace: Vec<Request> = (0..200u64)
            .map(|i| {
                Request::new(
                    i,
                    Seconds::new(i as f64 / 100.0),
                    0,
                    i.wrapping_mul(5_000_011) % (capacity - 8),
                    8,
                    RequestKind::Write,
                )
            })
            .collect();
        let report = p.run(trace).unwrap();
        assert_eq!(report.stats.count(), 200);
        // Mirrored writes cannot beat the slower member's service time.
        assert!(report.stats.mean().to_millis() > 1.0);
    }
}
