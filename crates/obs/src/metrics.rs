//! The metrics registry: counters, gauges, log-bucketed histograms, and
//! snapshot timeseries.
//!
//! `disksim::ResponseStats` carries the paper's nine fixed CDF edges;
//! [`LogHistogram`] generalizes that to geometric bucket edges so one
//! shape covers response times, queue depths, and temperatures alike.
//! Everything here exports to JSON (through the registry's `Serialize`)
//! or CSV ([`Timeseries::to_csv`]) under `results/`.

use serde::Serialize;
use std::collections::BTreeMap;

/// A histogram over geometrically-spaced buckets.
///
/// Bucket `i` covers `(edge(i-1), edge(i)]` with
/// `edge(i) = first_edge * growth^i`; one overflow bucket closes the
/// range, mirroring `ResponseStats`' "200+" tail.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct LogHistogram {
    /// Upper edge of the first bucket.
    first_edge: f64,
    /// Geometric ratio between consecutive edges.
    growth: f64,
    /// Per-bucket counts; the final slot is the overflow bucket.
    counts: Vec<u64>,
    /// Total samples recorded.
    count: u64,
    /// Sum of recorded values.
    sum: f64,
    /// Smallest recorded value.
    min: f64,
    /// Largest recorded value.
    max: f64,
}

impl LogHistogram {
    /// A histogram of `buckets` geometric buckets plus overflow.
    ///
    /// # Panics
    ///
    /// Panics unless `first_edge > 0`, `growth > 1`, and `buckets > 0`.
    pub fn new(first_edge: f64, growth: f64, buckets: usize) -> Self {
        assert!(first_edge > 0.0, "first edge must be positive");
        assert!(growth > 1.0, "growth must exceed 1");
        assert!(buckets > 0, "need at least one bucket");
        Self {
            first_edge,
            growth,
            counts: vec![0; buckets + 1],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// The response-time default: edges from 5 ms growing 1.6× for 12
    /// buckets (5 ms … ~1.4 s), a geometric generalization of the
    /// paper's 5–200 ms CDF edges.
    pub fn response_ms() -> Self {
        Self::new(5.0, 1.6, 12)
    }

    /// Empties the histogram in place, keeping its bucket layout (and
    /// allocation) — sweep loops re-bucket one distribution per
    /// configuration into the same histogram.
    pub fn reset(&mut self) {
        self.counts.fill(0);
        self.count = 0;
        self.sum = 0.0;
        self.min = f64::INFINITY;
        self.max = f64::NEG_INFINITY;
    }

    /// Records one value. Non-finite values land in the overflow bucket.
    pub fn record(&mut self, value: f64) {
        self.count += 1;
        if value.is_finite() {
            self.sum += value;
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        let buckets = self.counts.len() - 1;
        let idx = if !value.is_finite() {
            buckets
        } else if value <= self.first_edge {
            0
        } else {
            // Smallest i with first_edge * growth^i >= value.
            let i = ((value / self.first_edge).ln() / self.growth.ln()).ceil() as usize;
            i.min(buckets)
        };
        self.counts[idx] += 1;
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// The bucket edges, overflow excluded.
    pub fn edges(&self) -> Vec<f64> {
        (0..self.counts.len() - 1)
            .map(|i| self.first_edge * self.growth.powi(i as i32))
            .collect()
    }

    /// `(edge, cumulative_fraction)` pairs, closed by
    /// `(f64::INFINITY, 1.0)` — the same shape `ResponseStats::cdf`
    /// returns.
    pub fn cdf(&self) -> Vec<(f64, f64)> {
        let total = self.count.max(1) as f64;
        let mut acc = 0u64;
        let mut out = Vec::with_capacity(self.counts.len());
        for (i, edge) in self.edges().into_iter().enumerate() {
            acc += self.counts[i];
            out.push((edge, acc as f64 / total));
        }
        out.push((f64::INFINITY, 1.0));
        out
    }

    /// Upper-edge estimate of quantile `q` in `[0, 1]`: the first edge
    /// whose cumulative fraction reaches `q` (conservative, like reading
    /// a CDF plot).
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
        if self.count == 0 {
            return 0.0;
        }
        // Walk the counts directly rather than materializing `cdf()`:
        // quantile queries sit on the sweep loop's allocation-free path.
        let total = self.count as f64;
        let mut acc = 0u64;
        for (i, &n) in self.counts[..self.counts.len() - 1].iter().enumerate() {
            acc += n;
            if acc as f64 / total >= q {
                let edge = self.first_edge * self.growth.powi(i as i32);
                return edge.min(self.max.max(self.min));
            }
        }
        self.max
    }

    /// [`Self::quantile`] at each of `qs`, in order.
    ///
    /// # Panics
    ///
    /// Panics if any entry of `qs` is outside `[0, 1]`.
    pub fn quantiles(&self, qs: &[f64]) -> Vec<f64> {
        qs.iter().map(|&q| self.quantile(q)).collect()
    }
}

/// Counters, gauges, and histograms under one namespace, exportable as
/// JSON (insertion-independent: maps are ordered by key).
#[derive(Debug, Default, Serialize)]
pub struct Registry {
    /// Monotonic event counts.
    counters: BTreeMap<String, u64>,
    /// Last-write-wins instantaneous values.
    gauges: BTreeMap<String, f64>,
    /// Distributions.
    histograms: BTreeMap<String, LogHistogram>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds to a counter, creating it at zero.
    pub fn count(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Reads a counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets a gauge. Re-setting an existing gauge does not allocate.
    pub fn gauge_set(&mut self, name: &str, value: f64) {
        if let Some(slot) = self.gauges.get_mut(name) {
            *slot = value;
        } else {
            self.gauges.insert(name.to_string(), value);
        }
    }

    /// Reads a gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Records into a histogram, creating it with `make` on first use.
    /// Recording into an existing histogram does not allocate.
    pub fn observe(&mut self, name: &str, value: f64, make: impl FnOnce() -> LogHistogram) {
        if let Some(h) = self.histograms.get_mut(name) {
            h.record(value);
        } else {
            let mut h = make();
            h.record(value);
            self.histograms.insert(name.to_string(), h);
        }
    }

    /// Resets every histogram in place (layouts kept); counters and
    /// gauges are left to be overwritten by their next writes. The
    /// registry-reuse half of the sweep loop's zero-allocation path.
    pub fn reset_histograms(&mut self) {
        for h in self.histograms.values_mut() {
            h.reset();
        }
    }

    /// Reads a histogram.
    pub fn histogram(&self, name: &str) -> Option<&LogHistogram> {
        self.histograms.get(name)
    }

    /// Pretty JSON for `results/` export.
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_default()
    }

    /// Flattens the registry into a deterministic `(name, value)`
    /// target vector — the shape a surrogate fit consumes. Counters and
    /// gauges export under their own names; each histogram contributes
    /// its mean (`<name>_mean`) and the requested quantiles
    /// (`<name>_p<q*100>`). Names come out in `BTreeMap` order, so equal
    /// registries flatten to equal vectors regardless of insertion
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if any entry of `quantiles` is outside `[0, 1]`.
    pub fn flatten(&self, quantiles: &[f64]) -> Vec<(String, f64)> {
        let mut out = Vec::with_capacity(
            self.counters.len() + self.gauges.len() + self.histograms.len() * (1 + quantiles.len()),
        );
        for (name, &v) in &self.counters {
            out.push((name.clone(), v as f64));
        }
        for (name, &v) in &self.gauges {
            out.push((name.clone(), v));
        }
        for (name, h) in &self.histograms {
            out.push((format!("{name}_mean"), h.mean()));
            for &q in quantiles {
                out.push((format!("{name}_p{}", q * 100.0), h.quantile(q)));
            }
        }
        out
    }

    /// The values of [`Self::flatten`] without the names, appended to a
    /// caller-owned buffer. The names are a function of the registry's
    /// key set alone, so a sweep fetches them once via `flatten` and
    /// then extracts every point's target vector allocation-free.
    pub fn flatten_values_into(&self, quantiles: &[f64], out: &mut Vec<f64>) {
        out.clear();
        for &v in self.counters.values() {
            out.push(v as f64);
        }
        for &v in self.gauges.values() {
            out.push(v);
        }
        for h in self.histograms.values() {
            out.push(h.mean());
            for &q in quantiles {
                out.push(h.quantile(q));
            }
        }
    }
}

/// A fixed-schema table of snapshot rows for CSV export — the
/// per-drive/per-bay probe timeline `lab trace` writes alongside the
/// event stream.
#[derive(Debug, Clone)]
pub struct Timeseries {
    columns: Vec<String>,
    rows: Vec<Vec<f64>>,
}

impl Timeseries {
    /// A table with the given column names.
    ///
    /// # Panics
    ///
    /// Panics if no columns are given.
    pub fn new(columns: &[&str]) -> Self {
        assert!(!columns.is_empty(), "a timeseries needs columns");
        Self {
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the row width disagrees with the header.
    pub fn push(&mut self, row: Vec<f64>) {
        assert_eq!(row.len(), self.columns.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Rows recorded.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether no rows were recorded.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as CSV (header + rows). Values print through
    /// Rust's shortest-roundtrip float formatting, so equal runs render
    /// equal bytes.
    pub fn to_csv(&self) -> String {
        let mut out = self.columns.join(",");
        out.push('\n');
        for row in &self.rows {
            let mut first = true;
            for v in row {
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str(&format!("{v}"));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_geometric_and_cdf_closes_at_one() {
        let mut h = LogHistogram::new(1.0, 2.0, 4);
        assert_eq!(h.edges(), vec![1.0, 2.0, 4.0, 8.0]);
        for v in [0.5, 1.5, 3.0, 6.0, 100.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        let cdf = h.cdf();
        assert_eq!(cdf.last().unwrap().1, 1.0);
        // 1/5 <= 1, 2/5 <= 2, 3/5 <= 4, 4/5 <= 8, overflow catches 100.
        assert!((cdf[0].1 - 0.2).abs() < 1e-12);
        assert!((cdf[3].1 - 0.8).abs() < 1e-12);
        let mut prev = 0.0;
        for &(_, f) in &cdf {
            assert!(f >= prev);
            prev = f;
        }
    }

    #[test]
    fn histogram_quantile_brackets_the_data() {
        let mut h = LogHistogram::response_ms();
        for i in 1..=1000 {
            h.record(i as f64 / 5.0); // 0.2 .. 200 ms
        }
        let p50 = h.quantile(0.5);
        assert!((5.0..=200.0).contains(&p50), "p50 was {p50}");
        assert!(h.quantile(1.0) >= p50);
        assert!((h.mean() - 100.1).abs() < 0.2);
    }

    #[test]
    fn histogram_handles_non_finite_values() {
        let mut h = LogHistogram::new(1.0, 2.0, 2);
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        assert_eq!(h.count(), 2);
        assert_eq!(h.cdf().last().unwrap().1, 1.0);
    }

    #[test]
    fn registry_counts_gauges_and_observes() {
        let mut r = Registry::new();
        r.count("requests", 2);
        r.count("requests", 1);
        r.gauge_set("max_air_c", 44.5);
        r.observe("response_ms", 12.0, LogHistogram::response_ms);
        r.observe("response_ms", 80.0, LogHistogram::response_ms);
        assert_eq!(r.counter("requests"), 3);
        assert_eq!(r.counter("absent"), 0);
        assert_eq!(r.gauge("max_air_c"), Some(44.5));
        assert_eq!(r.histogram("response_ms").unwrap().count(), 2);
        let json = r.to_json_pretty();
        assert!(json.contains("\"counters\""));
        assert!(json.contains("\"response_ms\""));
    }

    #[test]
    fn flatten_exports_a_deterministic_target_vector() {
        let mut r = Registry::new();
        r.observe("response_ms", 12.0, LogHistogram::response_ms);
        r.observe("response_ms", 80.0, LogHistogram::response_ms);
        r.gauge_set("peak_air_c", 44.5);
        r.count("engaged", 3);
        let flat = r.flatten(&[0.5, 0.95]);
        let names: Vec<&str> = flat.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            names,
            ["engaged", "peak_air_c", "response_ms_mean", "response_ms_p50", "response_ms_p95"]
        );
        assert_eq!(flat[0].1, 3.0);
        assert_eq!(flat[1].1, 44.5);
        // Rebuilding the same registry in a different insertion order
        // flattens identically.
        let mut again = Registry::new();
        again.count("engaged", 3);
        again.gauge_set("peak_air_c", 44.5);
        again.observe("response_ms", 12.0, LogHistogram::response_ms);
        again.observe("response_ms", 80.0, LogHistogram::response_ms);
        assert_eq!(again.flatten(&[0.5, 0.95]), flat);
    }

    #[test]
    fn flatten_values_into_matches_flatten_and_reuses_the_buffer() {
        let mut r = Registry::new();
        r.observe("response_ms", 12.0, LogHistogram::response_ms);
        r.gauge_set("peak_air_c", 44.5);
        r.count("engaged", 3);
        let flat = r.flatten(&[0.5, 0.95]);
        let mut values = Vec::new();
        r.flatten_values_into(&[0.5, 0.95], &mut values);
        assert_eq!(values, flat.iter().map(|(_, v)| *v).collect::<Vec<_>>());
        // A second extraction reuses (and first clears) the buffer.
        r.gauge_set("peak_air_c", 40.0);
        r.flatten_values_into(&[0.5, 0.95], &mut values);
        assert_eq!(values.len(), flat.len());
        assert_eq!(values[1], 40.0);
    }

    #[test]
    fn reset_keeps_layout_and_empties_counts() {
        let mut h = LogHistogram::response_ms();
        h.record(12.0);
        h.record(300.0);
        let fresh = LogHistogram::response_ms();
        h.reset();
        assert_eq!(h, fresh);
        h.record(12.0);
        assert_eq!(h.count(), 1);

        let mut r = Registry::new();
        r.observe("response_ms", 50.0, LogHistogram::response_ms);
        r.reset_histograms();
        assert_eq!(r.histogram("response_ms").unwrap().count(), 0);
    }

    #[test]
    fn timeseries_renders_stable_csv() {
        let mut ts = Timeseries::new(&["t", "drive", "air_c"]);
        ts.push(vec![0.25, 0.0, 40.5]);
        ts.push(vec![0.5, 1.0, 41.0]);
        assert_eq!(ts.len(), 2);
        let csv = ts.to_csv();
        assert_eq!(csv, "t,drive,air_c\n0.25,0,40.5\n0.5,1,41\n");
        assert_eq!(csv, ts.to_csv());
    }
}
