//! Wall-clock span timing for the experiment engine.
//!
//! Spans measure *host* time, so they never enter a trace (traces carry
//! sim time only); they land in `results/manifest.json` as per-stage
//! wall times and in the `lab profile` report.

use serde::{Deserialize, Serialize};
use std::time::Instant;

/// One named span's measured wall time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Span {
    /// Stage name (e.g. `"compute"`, `"write_outputs"`).
    pub name: String,
    /// Measured wall time, milliseconds.
    pub wall_ms: f64,
}

/// An ordered collection of timed spans for one unit of work.
#[derive(Debug, Default, Clone)]
pub struct SpanSet {
    spans: Vec<Span>,
}

impl SpanSet {
    /// An empty span set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs `work`, recording its wall time under `name`. Repeated
    /// names accumulate as separate spans in execution order.
    pub fn time<R>(&mut self, name: &str, work: impl FnOnce() -> R) -> R {
        let started = Instant::now();
        let result = work();
        self.spans.push(Span {
            name: name.to_string(),
            wall_ms: started.elapsed().as_secs_f64() * 1e3,
        });
        result
    }

    /// The recorded spans in execution order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Consumes the set into its spans.
    pub fn into_spans(self) -> Vec<Span> {
        self.spans
    }

    /// Sum of all span times, milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.spans.iter().map(|s| s.wall_ms).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_in_order_and_sum() {
        let mut set = SpanSet::new();
        let a = set.time("first", || 2 + 2);
        assert_eq!(a, 4);
        set.time("second", || std::thread::sleep(std::time::Duration::from_millis(2)));
        let names: Vec<&str> = set.spans().iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["first", "second"]);
        assert!(set.spans()[1].wall_ms >= 1.0);
        assert!(set.total_ms() >= set.spans()[1].wall_ms);
    }

    #[test]
    fn spans_round_trip_through_serde() {
        let span = Span {
            name: "compute".into(),
            wall_ms: 12.5,
        };
        let json = serde_json::to_string(&span).unwrap();
        let back: Span = serde_json::from_str(&json).unwrap();
        assert_eq!(span, back);
    }
}
