//! Recorders and the [`Sink`] every instrumented component owns.
//!
//! The hot-path contract: an emission site calls
//! [`Sink::emit`] with a closure that *builds* the event. A null sink
//! returns after one discriminant branch without running the closure,
//! so disabled instrumentation costs neither allocation nor field
//! marshalling — `BENCH_obs.json` pins the resulting overhead under 2%.
//!
//! Components that run inside the fleet's parallel phase use
//! [`Sink::buffer`]: events accumulate locally (tagged with the
//! component's [`Sink::scope`] drive index) and the fleet drains them in
//! enclosure order at the serial epoch boundary, which is what keeps a
//! trace byte-identical at any shard count.

use crate::event::{Event, TimedEvent};
use std::collections::VecDeque;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use units::Seconds;

/// A crash-safe file writer: bytes land in a `.tmp` sibling, and
/// [`AtomicFile::commit`] fsyncs them and renames the file into place.
/// A reader therefore sees either the previous complete file or the new
/// complete file, never a torn write — the contract checkpoint and
/// trace artifacts need. Dropping without committing discards the
/// temporary.
pub struct AtomicFile {
    out: Option<BufWriter<File>>,
    tmp: PathBuf,
    path: PathBuf,
}

impl AtomicFile {
    /// Starts writing `path` through its `.tmp` sibling (truncating any
    /// stale temporary from a previous crash).
    ///
    /// # Errors
    ///
    /// Propagates file-creation failures.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let mut tmp = path.clone().into_os_string();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        let out = BufWriter::new(File::create(&tmp)?);
        Ok(Self {
            out: Some(out),
            tmp,
            path,
        })
    }

    /// The final path the file will land at.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Flushes, fsyncs, and renames the temporary into place. Also
    /// best-effort fsyncs the parent directory so the rename itself is
    /// durable.
    ///
    /// # Errors
    ///
    /// Propagates flush, sync, and rename failures; on error the
    /// temporary is removed and the destination is untouched.
    pub fn commit(mut self) -> io::Result<()> {
        let out = self.out.take().expect("commit consumes the writer");
        let result = (|| {
            let file = out.into_inner().map_err(|e| e.into_error())?;
            file.sync_all()?;
            drop(file);
            std::fs::rename(&self.tmp, &self.path)
        })();
        match result {
            Ok(()) => {
                if let Some(dir) = self.path.parent() {
                    if let Ok(d) = File::open(dir) {
                        // Directory fsync is not supported everywhere;
                        // the rename is already atomic without it.
                        let _ = d.sync_all();
                    }
                }
                Ok(())
            }
            Err(e) => {
                let _ = std::fs::remove_file(&self.tmp);
                Err(e)
            }
        }
    }
}

impl Write for AtomicFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.out.as_mut().expect("writer present until commit").write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.out.as_mut().expect("writer present until commit").flush()
    }
}

impl Drop for AtomicFile {
    fn drop(&mut self) {
        if self.out.take().is_some() {
            let _ = std::fs::remove_file(&self.tmp);
        }
    }
}

/// Consumes a stream of timed events at the collection boundary.
pub trait Recorder {
    /// Accepts one event.
    fn record(&mut self, event: &TimedEvent);

    /// Flushes any buffered output (no-op by default).
    fn flush(&mut self) {}
}

/// The do-nothing recorder: the default everywhere instrumentation is
/// threaded but nobody asked for a trace.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn record(&mut self, _event: &TimedEvent) {}
}

/// Keeps the most recent `capacity` events — the flight-recorder shape
/// for always-on tracing with bounded memory.
#[derive(Debug)]
pub struct RingRecorder {
    capacity: usize,
    events: VecDeque<TimedEvent>,
}

impl RingRecorder {
    /// A ring holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring recorder needs room for at least one event");
        Self {
            capacity,
            events: VecDeque::with_capacity(capacity),
        }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TimedEvent> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

impl Recorder for RingRecorder {
    fn record(&mut self, event: &TimedEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
        }
        self.events.push_back(event.clone());
    }
}

/// Streams events as newline-delimited JSON, one compact object per
/// line — the `lab trace` file format.
pub struct NdjsonRecorder<W: Write> {
    out: W,
    lines: u64,
    error: Option<io::Error>,
}

impl NdjsonRecorder<BufWriter<File>> {
    /// Creates (truncating) an NDJSON trace file.
    ///
    /// # Errors
    ///
    /// Propagates file-creation failures.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(Self::new(BufWriter::new(File::create(path)?)))
    }
}

impl NdjsonRecorder<AtomicFile> {
    /// Creates an NDJSON trace file written crash-safely: lines land in
    /// a `.tmp` sibling and [`NdjsonRecorder::commit`] fsyncs and
    /// renames the finished trace into place.
    ///
    /// # Errors
    ///
    /// Propagates file-creation failures.
    pub fn create_atomic(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(Self::new(AtomicFile::create(path)?))
    }

    /// Finishes the trace: surfaces any recording error, then fsyncs
    /// and atomically renames the file into place. Returns the number
    /// of lines written.
    ///
    /// # Errors
    ///
    /// Propagates the first recording error or the commit failure.
    pub fn commit(self) -> io::Result<u64> {
        if let Some(e) = self.error {
            return Err(e);
        }
        let lines = self.lines;
        self.out.commit()?;
        Ok(lines)
    }
}

impl<W: Write> NdjsonRecorder<W> {
    /// Wraps any writer.
    pub fn new(out: W) -> Self {
        Self {
            out,
            lines: 0,
            error: None,
        }
    }

    /// Lines written so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// The first I/O error encountered, if any (recording itself is
    /// infallible; the error surfaces here and at `flush`).
    pub fn error(&self) -> Option<&io::Error> {
        self.error.as_ref()
    }

    /// Unwraps the inner writer (flushing is the caller's business).
    pub fn into_inner(self) -> W {
        self.out
    }
}

impl<W: Write> Recorder for NdjsonRecorder<W> {
    fn record(&mut self, event: &TimedEvent) {
        if self.error.is_some() {
            return;
        }
        let line = event.to_ndjson_line();
        if let Err(e) = self.out.write_all(line.as_bytes()).and_then(|()| self.out.write_all(b"\n"))
        {
            self.error = Some(e);
            return;
        }
        self.lines += 1;
    }

    fn flush(&mut self) {
        if let Err(e) = self.out.flush() {
            self.error.get_or_insert(e);
        }
    }
}

/// What a [`Sink`] does with emitted events.
enum SinkKind {
    /// Drop everything; the closure is never run.
    Null,
    /// Accumulate locally for a deterministic drain (fleet shards).
    Buffer(Vec<TimedEvent>),
    /// Stream into a recorder.
    Recorder(Box<dyn Recorder + Send>),
}

/// The per-component emission point instrumented code owns.
///
/// `scope` identifies the drive within a multi-drive trace: the fleet
/// gives each enclosure's sink its bay index, and emission sites use
/// [`Sink::scope`] wherever an event carries a `drive` field.
pub struct Sink {
    scope: usize,
    kind: SinkKind,
}

impl std::fmt::Debug for Sink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match &self.kind {
            SinkKind::Null => "null".to_string(),
            SinkKind::Buffer(events) => format!("buffer[{}]", events.len()),
            SinkKind::Recorder(_) => "recorder".to_string(),
        };
        write!(f, "Sink({kind}, scope {})", self.scope)
    }
}

impl Default for Sink {
    fn default() -> Self {
        Sink::null()
    }
}

impl Sink {
    /// The no-op sink: one branch per emission site, nothing built.
    pub fn null() -> Self {
        Sink {
            scope: 0,
            kind: SinkKind::Null,
        }
    }

    /// A sink that accumulates events for a later ordered drain.
    pub fn buffer() -> Self {
        Sink {
            scope: 0,
            kind: SinkKind::Buffer(Vec::new()),
        }
    }

    /// A sink streaming into a recorder.
    pub fn recorder(recorder: impl Recorder + Send + 'static) -> Self {
        Sink {
            scope: 0,
            kind: SinkKind::Recorder(Box::new(recorder)),
        }
    }

    /// Tags the sink with a drive index for multi-drive traces.
    pub fn with_scope(mut self, scope: usize) -> Self {
        self.scope = scope;
        self
    }

    /// The drive index events from this sink should carry.
    pub fn scope(&self) -> usize {
        self.scope
    }

    /// Whether emissions go anywhere. Callers with pre-emission work of
    /// their own (snapshot assembly, buffer drains) gate on this.
    pub fn is_enabled(&self) -> bool {
        !matches!(self.kind, SinkKind::Null)
    }

    /// Emits one event at simulated time `t`. The closure runs only
    /// when the sink is enabled, so a null sink never pays for event
    /// construction.
    #[inline]
    pub fn emit(&mut self, t: Seconds, build: impl FnOnce() -> Event) {
        match &mut self.kind {
            SinkKind::Null => {}
            SinkKind::Buffer(events) => events.push(TimedEvent {
                t: t.get(),
                event: build(),
            }),
            SinkKind::Recorder(r) => r.record(&TimedEvent {
                t: t.get(),
                event: build(),
            }),
        }
    }

    /// Emits a progress line: printed through the global [`crate::logger`]
    /// *and* captured in the trace as an [`Event::Log`], so a trace
    /// records the narration the user saw.
    pub fn log(&mut self, t: Seconds, level: crate::logger::Level, message: &str) {
        crate::logger::line(level, message);
        let level = match level {
            crate::logger::Level::Verbose => "verbose",
            _ => "info",
        };
        self.emit(t, || Event::Log {
            level,
            message: message.to_string(),
        });
    }

    /// Takes the buffered events (buffer sinks; empty otherwise).
    pub fn drain(&mut self) -> Vec<TimedEvent> {
        match &mut self.kind {
            SinkKind::Buffer(events) => std::mem::take(events),
            _ => Vec::new(),
        }
    }

    /// Like [`Sink::drain`], but appends into `out`, keeping this
    /// sink's buffer capacity — merge loops that drain many sinks per
    /// epoch reuse one batch buffer and allocate nothing in steady
    /// state.
    pub fn drain_into(&mut self, out: &mut Vec<TimedEvent>) {
        if let SinkKind::Buffer(events) = &mut self.kind {
            out.append(events);
        }
    }

    /// Feeds already-timed events through (used when merging per-shard
    /// buffers into one stream).
    pub fn extend(&mut self, events: impl IntoIterator<Item = TimedEvent>) {
        match &mut self.kind {
            SinkKind::Null => {}
            SinkKind::Buffer(buffer) => buffer.extend(events),
            SinkKind::Recorder(r) => {
                for e in events {
                    r.record(&e);
                }
            }
        }
    }

    /// Flushes an underlying recorder, if any.
    pub fn flush(&mut self) {
        if let SinkKind::Recorder(r) = &mut self.kind {
            r.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn issue(id: u64) -> Event {
        Event::RequestIssue {
            id,
            device: 0,
            lba: 0,
            sectors: 8,
            kind: "read",
        }
    }

    #[test]
    fn null_sink_never_builds_the_event() {
        let mut sink = Sink::null();
        assert!(!sink.is_enabled());
        sink.emit(Seconds::new(1.0), || panic!("null sink ran the builder"));
        assert!(sink.drain().is_empty());
    }

    #[test]
    fn buffer_sink_accumulates_and_drains_in_order() {
        let mut sink = Sink::buffer().with_scope(3);
        assert!(sink.is_enabled());
        assert_eq!(sink.scope(), 3);
        for i in 0..4 {
            sink.emit(Seconds::new(i as f64), || issue(i));
        }
        let events = sink.drain();
        assert_eq!(events.len(), 4);
        assert!(events.windows(2).all(|w| w[0].t <= w[1].t));
        assert!(sink.drain().is_empty(), "drain must take the buffer");
    }

    #[test]
    fn ring_recorder_keeps_only_the_tail() {
        let mut ring = RingRecorder::new(3);
        let mut sink = Sink::buffer();
        for i in 0..10 {
            sink.emit(Seconds::new(i as f64), || issue(i));
        }
        for e in sink.drain() {
            ring.record(&e);
        }
        assert_eq!(ring.len(), 3);
        let ts: Vec<f64> = ring.events().map(|e| e.t).collect();
        assert_eq!(ts, [7.0, 8.0, 9.0]);
    }

    #[test]
    fn ndjson_recorder_writes_one_line_per_event() {
        let mut rec = NdjsonRecorder::new(Vec::new());
        for i in 0..3 {
            rec.record(&TimedEvent {
                t: i as f64,
                event: issue(i),
            });
        }
        rec.flush();
        assert_eq!(rec.lines(), 3);
        assert!(rec.error().is_none());
        let text = String::from_utf8(rec.into_inner()).unwrap();
        assert_eq!(text.lines().count(), 3);
        assert!(text.ends_with('\n'));
    }

    #[test]
    fn recorder_sink_streams() {
        let mut sink = Sink::recorder(RingRecorder::new(8));
        sink.emit(Seconds::new(0.5), || issue(1));
        assert!(sink.is_enabled());
        // Streamed events are not drainable — they belong to the recorder.
        assert!(sink.drain().is_empty());
    }
}
