//! `diskobs` — deterministic event tracing, metrics, and profiling for
//! the thermodisk stack.
//!
//! The paper's DTM argument is about *decisions over time* — when the
//! controller detects thermal slack, when throttling engages, how
//! temperature and queue depth co-evolve — yet aggregate reports flatten
//! that timeline away. This crate is the observability layer the rest of
//! the workspace threads through its hot paths:
//!
//! - [`Event`] / [`TimedEvent`]: a typed event vocabulary (request
//!   issue/complete, RPM transitions, throttle engage/disengage,
//!   coordinator actions, routing decisions, sensor readings, periodic
//!   snapshots) stamped with **simulated time**, never wall time, so a
//!   trace is byte-identical at any thread or shard count.
//! - [`Sink`]: the per-component emission point. The default
//!   [`Sink::null`] costs one discriminant branch per event site and
//!   never constructs the event (construction is deferred behind a
//!   closure), so instrumented hot paths stay within noise of
//!   uninstrumented ones — `BENCH_obs.json` pins that claim.
//! - [`Recorder`] implementations for real use: [`NullRecorder`],
//!   a bounded [`RingRecorder`], and a streaming [`NdjsonRecorder`].
//! - [`metrics`]: a registry of counters, gauges, and log-bucketed
//!   histograms (generalizing `ResponseStats`' fixed CDF buckets), plus
//!   a [`metrics::Timeseries`] for periodic snapshot probes, exportable
//!   to CSV/JSON.
//! - [`profile`]: wall-clock span timing for the experiment engine, so
//!   `results/manifest.json` can record per-stage times.
//! - [`logger`]: the leveled (quiet/normal/verbose) progress logger the
//!   `lab` CLI routes its former bare `eprintln!` output through;
//!   [`Sink::log`] mirrors a line into the trace as an [`Event::Log`].

pub mod event;
pub mod logger;
pub mod metrics;
pub mod profile;
pub mod record;

pub use event::{is_time_sorted, Event, TimedEvent};
pub use logger::Level;
pub use metrics::{LogHistogram, Registry, Timeseries};
pub use profile::{Span, SpanSet};
pub use record::{AtomicFile, NdjsonRecorder, NullRecorder, Recorder, RingRecorder, Sink};
