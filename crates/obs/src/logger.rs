//! The leveled progress logger behind the `lab` CLI's `-q`/`--verbose`
//! flags.
//!
//! Progress narration ("wrote results/…", per-experiment summaries) used
//! to be bare `eprintln!` calls scattered through `disklab`; it now
//! funnels through [`info`]/[`verbose`] so one flag silences or expands
//! all of it, and [`crate::Sink::log`] can mirror a line into a trace.
//!
//! The level is process-global (one atomic) because it is CLI state, not
//! simulation state: it never influences simulated results, only what
//! lands on stderr.

use std::sync::atomic::{AtomicU8, Ordering};

/// How chatty progress output is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Errors only (`-q`).
    Quiet = 0,
    /// The default: one-line progress summaries.
    Normal = 1,
    /// Everything (`--verbose`).
    Verbose = 2,
}

static LEVEL: AtomicU8 = AtomicU8::new(Level::Normal as u8);

/// Sets the process-global progress level.
pub fn set_level(level: Level) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// The current progress level.
pub fn level() -> Level {
    match LEVEL.load(Ordering::Relaxed) {
        0 => Level::Quiet,
        1 => Level::Normal,
        _ => Level::Verbose,
    }
}

/// Whether a line at `at` would print under the current level.
pub fn enabled(at: Level) -> bool {
    at != Level::Quiet && at <= level()
}

/// Prints `message` to stderr if `at` passes the current level.
pub fn line(at: Level, message: &str) {
    if enabled(at) {
        eprintln!("{message}");
    }
}

/// A normal-level progress line.
pub fn info(message: &str) {
    line(Level::Normal, message);
}

/// A verbose-level progress line.
pub fn verbose(message: &str) {
    line(Level::Verbose, message);
}

#[cfg(test)]
mod tests {
    use super::*;

    // The global level is process state; this single test exercises all
    // transitions so parallel test threads never fight over it.
    #[test]
    fn level_gates_enabled_lines() {
        let restore = level();

        set_level(Level::Quiet);
        assert!(!enabled(Level::Normal));
        assert!(!enabled(Level::Verbose));
        assert!(!enabled(Level::Quiet), "quiet lines never print");

        set_level(Level::Normal);
        assert!(enabled(Level::Normal));
        assert!(!enabled(Level::Verbose));

        set_level(Level::Verbose);
        assert!(enabled(Level::Normal));
        assert!(enabled(Level::Verbose));

        set_level(restore);
    }
}
