//! The typed event vocabulary and its sim-time stamp.
//!
//! Every field is a plain scalar so the crate sits below `disksim` in
//! the dependency graph; producers translate their domain types at the
//! emission site. Timestamps are **simulated seconds** — wall time never
//! enters a trace, which is what keeps traces byte-identical at any
//! thread or shard count.

use serde::Serialize;

/// One thing that happened inside a simulated run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum Event {
    /// A logical request entered service consideration at a drive.
    RequestIssue {
        /// Request id (trace-global).
        id: u64,
        /// Target device within the storage system.
        device: u32,
        /// Starting logical block address.
        lba: u64,
        /// Transfer length in sectors.
        sectors: u32,
        /// `"read"` or `"write"`.
        kind: &'static str,
    },
    /// A logical request completed.
    RequestComplete {
        /// Request id (trace-global).
        id: u64,
        /// Sim time service started, seconds.
        start: f64,
        /// Arrival-to-finish response time, milliseconds.
        response_ms: f64,
    },
    /// A drive's spindle speed changed (DTM actuation).
    RpmTransition {
        /// Drive index within the traced scope (0 for a single drive).
        drive: usize,
        /// Speed before the transition, RPM.
        from: f64,
        /// Speed after the transition, RPM.
        to: f64,
    },
    /// Admission gating engaged (throttle policies).
    ThrottleEngage {
        /// Drive index within the traced scope.
        drive: usize,
        /// Sensed air temperature that tripped the gate, Celsius.
        sensed_c: f64,
    },
    /// Admission gating released.
    ThrottleDisengage {
        /// Drive index within the traced scope.
        drive: usize,
        /// Sensed air temperature at release, Celsius.
        sensed_c: f64,
    },
    /// A control-loop actor (controller or fleet coordinator) acted on
    /// a drive.
    CoordinatorAction {
        /// Drive index within the traced scope.
        drive: usize,
        /// What it did: `"downshift"`, `"upshift"`, `"boost"`,
        /// `"unboost"`, `"gate"`, or `"ungate"`.
        action: &'static str,
    },
    /// The fleet router placed a request on a drive.
    RoutingDecision {
        /// Request id (trace-global).
        request: u64,
        /// Chosen drive index.
        drive: usize,
    },
    /// A temperature sensor was polled.
    SensorReading {
        /// Drive index within the traced scope.
        drive: usize,
        /// What the sensor reported, Celsius.
        sensed_c: f64,
        /// The model's continuous air temperature, Celsius.
        actual_c: f64,
    },
    /// A periodic per-drive state probe.
    Snapshot {
        /// Drive index within the traced scope.
        drive: usize,
        /// Internal-air temperature, Celsius.
        air_c: f64,
        /// Local ambient (inlet) temperature, Celsius.
        ambient_c: f64,
        /// Requests queued or in flight at the drive.
        queue: u64,
        /// Disk busy fraction over the probe interval.
        util: f64,
        /// Actuator duty over the probe interval.
        duty: f64,
        /// Spindle speed, RPM.
        rpm: f64,
        /// Whether admission is currently gated.
        gated: bool,
    },
    /// A drive in a RAID-5 enclosure failed (scenario injection).
    DriveFailed {
        /// Enclosure index within the fleet.
        enclosure: usize,
        /// Failed member disk within the array.
        disk: u32,
    },
    /// Rebuild progress over a degraded array, sampled once per epoch.
    RebuildProgress {
        /// Enclosure index within the fleet.
        enclosure: usize,
        /// Sectors rebuilt so far.
        done: u64,
        /// Total sectors to rebuild.
        total: u64,
    },
    /// An inlet-temperature excursion started or ended over a range of
    /// enclosures (cooling failure or recovery).
    CoolingExcursion {
        /// First affected enclosure index (inclusive).
        lo: usize,
        /// Last affected enclosure index (exclusive).
        hi: usize,
        /// Inlet bias now in force, Celsius (0.0 on recovery).
        delta_c: f64,
    },
    /// The scenario traffic multiplier changed (diurnal phase or flash
    /// crowd boundary).
    TrafficPhase {
        /// Multiplier now applied over the workload's base rate.
        factor: f64,
    },
    /// A progress line from the leveled logger, captured in the trace.
    Log {
        /// `"info"` or `"verbose"`.
        level: &'static str,
        /// The message as printed.
        message: String,
    },
}

/// An [`Event`] stamped with simulated time.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TimedEvent {
    /// Simulated time of the event, seconds.
    pub t: f64,
    /// What happened.
    pub event: Event,
}

impl TimedEvent {
    /// Renders the event as one compact NDJSON line (no trailing
    /// newline). Rendering goes through the same serializer everywhere,
    /// so identical event streams produce identical bytes.
    pub fn to_ndjson_line(&self) -> String {
        serde_json::to_string(self).unwrap_or_default()
    }
}

/// Whether `events` is nondecreasing in `t` under `f64::total_cmp`.
///
/// The k-way merge at the fleet's epoch boundary assumes every
/// per-enclosure event run is already time-sorted (each enclosure emits
/// events as its own clock advances); this is the debug-assert guard
/// for that contract. Returns `true` for empty and single-event runs.
pub fn is_time_sorted(events: &[TimedEvent]) -> bool {
    events
        .windows(2)
        .all(|w| w[0].t.total_cmp(&w[1].t) != std::cmp::Ordering::Greater)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_time_sorted_accepts_ties_and_rejects_regressions() {
        let at = |t: f64| TimedEvent {
            t,
            event: Event::RoutingDecision { request: 0, drive: 0 },
        };
        assert!(is_time_sorted(&[]));
        assert!(is_time_sorted(&[at(1.0)]));
        assert!(is_time_sorted(&[at(1.0), at(1.0), at(2.0)]));
        assert!(!is_time_sorted(&[at(2.0), at(1.0)]));
    }

    #[test]
    fn events_render_stable_ndjson() {
        let e = TimedEvent {
            t: 1.25,
            event: Event::RequestIssue {
                id: 7,
                device: 0,
                lba: 1024,
                sectors: 8,
                kind: "read",
            },
        };
        let line = e.to_ndjson_line();
        assert!(line.starts_with("{\"t\":1.25,"), "line was {line}");
        assert!(line.contains("\"RequestIssue\""));
        assert!(!line.contains('\n'));
        // Rendering is a pure function of the event.
        assert_eq!(line, e.to_ndjson_line());
    }

    #[test]
    fn every_variant_serializes() {
        let variants = vec![
            Event::RequestComplete { id: 1, start: 0.5, response_ms: 12.0 },
            Event::RpmTransition { drive: 2, from: 15_020.0, to: 12_000.0 },
            Event::ThrottleEngage { drive: 0, sensed_c: 44.0 },
            Event::ThrottleDisengage { drive: 0, sensed_c: 43.0 },
            Event::CoordinatorAction { drive: 1, action: "downshift" },
            Event::RoutingDecision { request: 9, drive: 3 },
            Event::SensorReading { drive: 0, sensed_c: 44.0, actual_c: 44.7 },
            Event::Snapshot {
                drive: 0,
                air_c: 40.0,
                ambient_c: 28.0,
                queue: 3,
                util: 0.5,
                duty: 0.2,
                rpm: 15_020.0,
                gated: false,
            },
            Event::DriveFailed { enclosure: 2, disk: 1 },
            Event::RebuildProgress { enclosure: 2, done: 512, total: 4096 },
            Event::CoolingExcursion { lo: 0, hi: 8, delta_c: 6.0 },
            Event::TrafficPhase { factor: 1.75 },
            Event::Log { level: "info", message: "hello".into() },
        ];
        for event in variants {
            let line = TimedEvent { t: 0.0, event }.to_ndjson_line();
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
    }
}
