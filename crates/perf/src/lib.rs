//! Disk performance model (§3.2 of the paper): seek time and internal
//! data rate.
//!
//! Two facets, deliberately small because the paper reuses prior art:
//!
//! - [`SeekProfile`] — the three-parameter seek-time model of
//!   Worthington et al.: track-to-track, average and full-stroke times
//!   with linear interpolation between them, plus an interpolation table
//!   over platter sizes built from real devices of the era.
//! - [`idr`] and friends — the internal data rate of eq. 4, computed from
//!   the outermost-zone sector count, and its inverse (the RPM required
//!   to reach a target IDR), which drives the roadmap of §4.
//!
//! # Examples
//!
//! ```
//! use diskgeom::{DriveGeometry, Platter, RecordingTech};
//! use diskperf::{idr, required_rpm};
//! use units::{BitsPerInch, DataRate, Inches, Rpm, TracksPerInch};
//!
//! let tech = RecordingTech::new(
//!     BitsPerInch::from_kbpi(256.0),
//!     TracksPerInch::from_ktpi(13.0),
//! );
//! let drive = DriveGeometry::new(Platter::new(Inches::new(3.3)), tech, 6, 30)?;
//! let rate = idr(drive.zones(), Rpm::new(10_000.0));
//! assert!((rate.get() - 46.5).abs() < 1.0); // Quantum Atlas 10K, Table 1
//!
//! // Inverse: what RPM reaches 60 MB/s on this geometry?
//! let rpm = required_rpm(drive.zones(), DataRate::new(60.0));
//! assert!((idr(drive.zones(), rpm).get() - 60.0).abs() < 1e-9);
//! # Ok::<(), diskgeom::GeometryError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod idr;
mod seek;

pub use idr::{idr, idr_at_zone, required_rpm, sustained_idr};
pub use seek::{SeekProfile, SEEK_REFERENCE_DEVICES};
