//! Internal data rate (eq. 4) and its inverse.

use diskgeom::{Zone, ZoneTable};
use units::{DataRate, Rpm};

/// Bytes per sector over one binary megabyte — the constant factor of
/// eq. 4: `IDR = (rpm / 60) · (n_tz0 · 512 / 2^20)`.
const SECTOR_MB: f64 = 512.0 / (1u64 << 20) as f64;

/// Maximum internal data rate of the drive (eq. 4): the rate at which
/// bits stream under the head on the *outermost* zone.
///
/// # Examples
///
/// ```
/// use diskgeom::{Platter, RecordingTech, ZoneTable};
/// use diskperf::idr;
/// use units::{BitsPerInch, Inches, Rpm, TracksPerInch};
///
/// let tech = RecordingTech::new(
///     BitsPerInch::from_kbpi(533.0), // Cheetah 15K.3, Table 1
///     TracksPerInch::from_ktpi(64.0),
/// );
/// let zones = ZoneTable::new(Platter::new(Inches::new(2.6)), tech, 30)?;
/// let rate = idr(&zones, Rpm::new(15_000.0));
/// assert!((rate.get() - 114.4).abs() < 3.0); // paper's model: 114.4 MB/s
/// # Ok::<(), diskgeom::GeometryError>(())
/// ```
pub fn idr(zones: &ZoneTable, rpm: Rpm) -> DataRate {
    idr_at_zone(zones.outermost(), rpm)
}

/// Data rate while reading a specific zone at the given spindle speed.
pub fn idr_at_zone(zone: &Zone, rpm: Rpm) -> DataRate {
    DataRate::new(rpm.rev_per_sec() * zone.sectors_per_track().get() as f64 * SECTOR_MB)
}

/// Capacity-weighted mean data rate across all zones — the sustained
/// rate of a whole-drive scan, useful as a secondary metric alongside
/// the peak IDR the paper reports.
pub fn sustained_idr(zones: &ZoneTable, rpm: Rpm) -> DataRate {
    let mut sectors = 0u64;
    let mut weighted = 0.0;
    for z in zones.zones() {
        let s = z.sectors_per_surface().get();
        sectors += s;
        weighted += idr_at_zone(z, rpm).get() * s as f64;
    }
    if sectors == 0 {
        DataRate::ZERO
    } else {
        DataRate::new(weighted / sectors as f64)
    }
}

/// Inverse of eq. 4: the spindle speed required for this geometry to
/// deliver `target` at the outermost zone.
///
/// This is step 2 of the roadmap methodology (§4): when density growth
/// alone cannot reach the year's IDR target, solve for the RPM that can.
///
/// # Examples
///
/// ```
/// use diskgeom::{Platter, RecordingTech, ZoneTable};
/// use diskperf::{idr, required_rpm};
/// use units::{BitsPerInch, DataRate, Inches, Rpm, TracksPerInch};
///
/// let tech = RecordingTech::new(
///     BitsPerInch::from_kbpi(593.19),
///     TracksPerInch::from_ktpi(67.5),
/// );
/// let zones = ZoneTable::new(Platter::new(Inches::new(2.6)), tech, 50)?;
/// let rpm = required_rpm(&zones, DataRate::new(128.97)); // 2002 target
/// assert!((idr(&zones, rpm).get() - 128.97).abs() < 1e-9);
/// assert!((rpm.get() - 15_098.0).abs() < 300.0); // Table 3: 15,098 RPM
/// # Ok::<(), diskgeom::GeometryError>(())
/// ```
pub fn required_rpm(zones: &ZoneTable, target: DataRate) -> Rpm {
    let spt = zones.outermost().sectors_per_track().get() as f64;
    debug_assert!(spt > 0.0, "zone table guarantees at least one sector/track");
    Rpm::new(target.get() * 60.0 / (spt * SECTOR_MB))
}

#[cfg(test)]
mod tests {
    use super::*;
    use diskgeom::{Platter, RecordingTech};
    use units::{BitsPerInch, Inches, TracksPerInch};

    fn zones(kbpi: f64, ktpi: f64, dia: f64, n_zones: u32) -> ZoneTable {
        let tech = RecordingTech::new(
            BitsPerInch::from_kbpi(kbpi),
            TracksPerInch::from_ktpi(ktpi),
        );
        ZoneTable::new(Platter::new(Inches::new(dia)), tech, n_zones).unwrap()
    }

    /// Table 1 rows: (KBPI, KTPI, diameter, RPM, paper-model IDR MB/s).
    const TABLE1: [(f64, f64, f64, f64, f64); 8] = [
        (256.0, 13.0, 3.3, 10_000.0, 46.5),  // Quantum Atlas 10K
        (352.0, 20.0, 3.0, 10_000.0, 58.1),  // IBM Ultrastar 36LZX
        (343.0, 21.4, 2.6, 15_000.0, 73.6),  // Seagate Cheetah X15
        (341.0, 14.2, 3.3, 10_000.0, 61.9),  // Quantum Atlas 10K II
        (480.0, 27.3, 3.3, 10_000.0, 85.2),  // IBM Ultrastar 73LZX
        (490.0, 31.2, 3.7, 7_200.0, 71.8),   // Seagate Barracuda 180
        (570.0, 64.0, 3.3, 10_000.0, 103.5), // Seagate Cheetah 10K.6
        (533.0, 64.0, 2.6, 15_000.0, 114.4), // Seagate Cheetah 15K.3
    ];

    #[test]
    fn reproduces_table1_model_idr() {
        for &(kbpi, ktpi, dia, rpm, expected) in &TABLE1 {
            let z = zones(kbpi, ktpi, dia, 30);
            let got = idr(&z, Rpm::new(rpm)).get();
            let err = (got - expected).abs() / expected;
            // The paper quotes its own model within 15% of datasheets;
            // our formulation reproduces the paper's *model* numbers to
            // within 5% (most rows land under 2%).
            assert!(
                err < 0.05,
                "{kbpi} KBPI {dia}\" disk: model {got:.1} vs paper {expected:.1} ({:.1}%)",
                err * 100.0
            );
        }
    }

    #[test]
    fn idr_is_linear_in_rpm() {
        let z = zones(256.0, 13.0, 3.3, 30);
        let a = idr(&z, Rpm::new(10_000.0));
        let b = idr(&z, Rpm::new(20_000.0));
        assert!((b.get() / a.get() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn required_rpm_inverts_idr() {
        let z = zones(480.0, 27.3, 3.3, 30);
        for target in [40.0, 85.2, 250.0, 1_000.0] {
            let rpm = required_rpm(&z, DataRate::new(target));
            assert!((idr(&z, rpm).get() - target).abs() < 1e-9);
        }
    }

    #[test]
    fn sustained_is_below_peak() {
        let z = zones(256.0, 13.0, 3.3, 30);
        let rpm = Rpm::new(10_000.0);
        let peak = idr(&z, rpm);
        let sustained = sustained_idr(&z, rpm);
        assert!(sustained < peak);
        // With ri = ro/2 the mean zone rate is ~3/4 of the peak.
        let ratio = sustained.get() / peak.get();
        assert!(ratio > 0.6 && ratio < 0.9, "ratio {ratio}");
    }

    #[test]
    fn inner_zone_is_slowest() {
        let z = zones(256.0, 13.0, 3.3, 30);
        let rpm = Rpm::new(10_000.0);
        let outer = idr_at_zone(z.outermost(), rpm);
        let inner = idr_at_zone(z.innermost(), rpm);
        assert!(inner < outer);
    }

    #[test]
    fn table3_anchor_2002() {
        // §4: a 2.6" single-platter drive with the 2002 densities and 50
        // zones needs ~15,098 RPM for the 128.97 MB/s target.
        let z = zones(593.19, 67.5, 2.6, 50);
        let rpm = required_rpm(&z, DataRate::new(128.97));
        let err = (rpm.get() - 15_098.0).abs() / 15_098.0;
        assert!(err < 0.02, "required RPM {:.0} vs paper 15,098", rpm.get());
    }
}
