//! Three-parameter seek-time model.
//!
//! Worthington, Ganger, Patt and Wilkes showed that, except for very
//! short seeks, disk seek time is captured well by linear interpolation
//! over three datasheet numbers: the track-to-track time, the average
//! seek time (reached at roughly one third of the full stroke — the mean
//! distance between two uniformly random cylinders) and the full-stroke
//! time. The paper adopts that model and derives parameters for future
//! platter sizes by interpolating over real devices.

use serde::{Deserialize, Serialize};
use units::{Inches, Seconds};

/// Fraction of the full stroke at which the *average* seek time occurs.
///
/// For two independent uniform positions on a line the expected distance
/// is 1/3 of the line, so datasheet "average seek" corresponds to a seek
/// of one third of the data band.
const AVERAGE_SEEK_FRACTION: f64 = 1.0 / 3.0;

/// Reference devices used to interpolate seek parameters over platter
/// size: `(diameter_in, track_to_track_ms, average_ms, full_stroke_ms)`.
///
/// Values are representative of the 1999–2002 server drives in Table 1
/// (Cheetah X15 family at 2.6″, Cheetah 73LP class at 3.3″, Barracuda 180
/// at 3.7″), with the sub-2.6″ points extrapolated the way the paper
/// extrapolates from actual devices of different platter sizes.
pub const SEEK_REFERENCE_DEVICES: [(f64, f64, f64, f64); 5] = [
    (1.6, 0.30, 2.4, 4.6),
    (2.1, 0.35, 3.0, 5.8),
    (2.6, 0.40, 3.6, 7.0),
    (3.3, 0.60, 4.9, 10.5),
    (3.7, 0.80, 7.4, 16.0),
];

/// Seek-time profile of a drive.
///
/// # Examples
///
/// ```
/// use diskperf::SeekProfile;
/// use units::{Inches, Seconds};
///
/// let seek = SeekProfile::for_platter(Inches::new(2.6), 18_000);
/// // Track-to-track seeks are fast...
/// assert!(seek.seek_time(1).to_millis() < 1.0);
/// // ...full-stroke seeks hit the datasheet number...
/// assert!((seek.seek_time(17_999).to_millis() - 7.0).abs() < 1e-9);
/// // ...and no seek at all costs nothing.
/// assert_eq!(seek.seek_time(0), Seconds::ZERO);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SeekProfile {
    track_to_track: Seconds,
    average: Seconds,
    full_stroke: Seconds,
    max_distance: u32,
    /// Below this distance the arm never reaches cruise velocity and
    /// seek time follows `a + b·√d` (Worthington et al. observe the
    /// linear interpolation holds "except for very short seeks", which
    /// they bound at about ten cylinders). Zero disables the refinement.
    short_seek_cutoff: u32,
}

impl SeekProfile {
    /// Builds a profile from the three datasheet times and the number of
    /// cylinders in the data band (`max_distance = cylinders − 1` is the
    /// longest possible seek).
    ///
    /// # Panics
    ///
    /// Panics if the times are not ordered
    /// `0 < track_to_track <= average <= full_stroke` or if
    /// `cylinders == 0`.
    pub fn new(
        track_to_track: Seconds,
        average: Seconds,
        full_stroke: Seconds,
        cylinders: u32,
    ) -> Self {
        assert!(
            track_to_track.get() > 0.0
                && track_to_track <= average
                && average <= full_stroke,
            "seek times must satisfy 0 < t2t <= avg <= full"
        );
        assert!(cylinders > 0, "a drive has at least one cylinder");
        Self {
            track_to_track,
            average,
            full_stroke,
            max_distance: cylinders.saturating_sub(1).max(1),
            short_seek_cutoff: 0,
        }
    }

    /// Enables the short-seek refinement: below `cutoff` cylinders the
    /// arm is still accelerating and seek time follows `a + b·√d`, fit
    /// so it matches the track-to-track time at distance 1 and joins the
    /// linear profile continuously at the cutoff.
    ///
    /// # Panics
    ///
    /// Panics if `cutoff` is 0 or 1 (there is nothing to refine).
    pub fn with_short_seek_model(mut self, cutoff: u32) -> Self {
        assert!(cutoff > 1, "short-seek cutoff must cover at least 2 cylinders");
        self.short_seek_cutoff = cutoff;
        self
    }

    /// Builds a profile for a platter diameter by interpolating the
    /// [`SEEK_REFERENCE_DEVICES`] table (clamping beyond its ends), for a
    /// drive whose data band spans `cylinders` cylinders.
    pub fn for_platter(diameter: Inches, cylinders: u32) -> Self {
        let d = diameter.get();
        let table = &SEEK_REFERENCE_DEVICES;
        let (t2t, avg, full) = if d <= table[0].0 {
            (table[0].1, table[0].2, table[0].3)
        } else if d >= table[table.len() - 1].0 {
            let last = table[table.len() - 1];
            (last.1, last.2, last.3)
        } else {
            // Find the bracketing pair and interpolate linearly.
            let mut result = (table[0].1, table[0].2, table[0].3);
            for pair in table.windows(2) {
                let (lo, hi) = (pair[0], pair[1]);
                if d >= lo.0 && d <= hi.0 {
                    let t = (d - lo.0) / (hi.0 - lo.0);
                    result = (
                        lo.1 + t * (hi.1 - lo.1),
                        lo.2 + t * (hi.2 - lo.2),
                        lo.3 + t * (hi.3 - lo.3),
                    );
                    break;
                }
            }
            result
        };
        Self::new(
            Seconds::from_millis(t2t),
            Seconds::from_millis(avg),
            Seconds::from_millis(full),
            cylinders,
        )
    }

    /// Track-to-track (single-cylinder) seek time.
    pub fn track_to_track(&self) -> Seconds {
        self.track_to_track
    }

    /// Datasheet average seek time.
    pub fn average(&self) -> Seconds {
        self.average
    }

    /// Full-stroke seek time.
    pub fn full_stroke(&self) -> Seconds {
        self.full_stroke
    }

    /// Longest possible seek distance in cylinders.
    pub fn max_distance(&self) -> u32 {
        self.max_distance
    }

    /// Seek time for a move of `distance` cylinders.
    ///
    /// Zero distance costs nothing; one cylinder costs the track-to-track
    /// time; beyond that the time interpolates linearly up to the average
    /// at one third of the stroke and on to the full-stroke time.
    /// Distances past the physical maximum are clamped to it.
    pub fn seek_time(&self, distance: u32) -> Seconds {
        if distance == 0 {
            return Seconds::ZERO;
        }
        let clamped = distance.min(self.max_distance);
        // Short-seek refinement: a + b*sqrt(d), anchored at the
        // track-to-track time for d = 1 and joining the linear profile
        // continuously at the cutoff.
        if self.short_seek_cutoff > 1 && clamped < self.short_seek_cutoff {
            let cutoff = self.short_seek_cutoff.min(self.max_distance);
            let at_cutoff = self.linear_seek(cutoff as f64);
            let b = (at_cutoff - self.track_to_track).get()
                / ((cutoff as f64).sqrt() - 1.0);
            let t = self.track_to_track.get() + b * ((clamped as f64).sqrt() - 1.0);
            return Seconds::new(t);
        }
        self.linear_seek(clamped as f64)
    }

    /// The three-point linear interpolation itself.
    fn linear_seek(&self, distance: f64) -> Seconds {
        let knee = (self.max_distance as f64 * AVERAGE_SEEK_FRACTION).max(2.0);
        if distance <= 1.0 {
            self.track_to_track
        } else if distance <= knee {
            let t = (distance - 1.0) / (knee - 1.0);
            self.track_to_track + (self.average - self.track_to_track) * t
        } else {
            let t = (distance - knee) / (self.max_distance as f64 - knee);
            self.average + (self.full_stroke - self.average) * t
        }
    }

    /// Mean seek time under a uniformly random cylinder workload,
    /// estimated by integrating the profile over the triangular seek
    /// distance distribution.
    pub fn expected_random_seek(&self) -> Seconds {
        // Distance between two uniform points has density
        // f(d) = 2 (1 - d/D) / D; integrate numerically over 1024 steps.
        let d_max = self.max_distance as f64;
        let steps = 1024;
        let mut acc = 0.0;
        for i in 0..steps {
            let d = (i as f64 + 0.5) / steps as f64 * d_max;
            let density = 2.0 * (1.0 - d / d_max) / d_max;
            acc += self.seek_time(d as u32).get() * density * (d_max / steps as f64);
        }
        Seconds::new(acc)
    }
}

impl core::fmt::Display for SeekProfile {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "seek t2t {:.2} ms / avg {:.2} ms / full {:.2} ms over {} cyl",
            self.track_to_track.to_millis(),
            self.average.to_millis(),
            self.full_stroke.to_millis(),
            self.max_distance
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cheetah_like() -> SeekProfile {
        SeekProfile::new(
            Seconds::from_millis(0.4),
            Seconds::from_millis(3.6),
            Seconds::from_millis(7.0),
            18_000,
        )
    }

    #[test]
    fn endpoints_hit_datasheet_numbers() {
        let s = cheetah_like();
        assert_eq!(s.seek_time(0), Seconds::ZERO);
        assert_eq!(s.seek_time(1), Seconds::from_millis(0.4));
        assert!((s.seek_time(17_999).to_millis() - 7.0).abs() < 1e-9);
    }

    #[test]
    fn average_occurs_at_one_third_stroke() {
        let s = cheetah_like();
        let third = 17_999 / 3;
        assert!((s.seek_time(third).to_millis() - 3.6).abs() < 0.01);
    }

    #[test]
    fn seek_time_is_monotone_in_distance() {
        let s = cheetah_like();
        let mut prev = Seconds::ZERO;
        for d in 0..18_000 {
            let t = s.seek_time(d);
            assert!(t >= prev, "seek time dipped at distance {d}");
            prev = t;
        }
    }

    #[test]
    fn distances_past_max_are_clamped() {
        let s = cheetah_like();
        assert_eq!(s.seek_time(u32::MAX), s.seek_time(17_999));
    }

    #[test]
    fn platter_interpolation_brackets() {
        let small = SeekProfile::for_platter(Inches::new(1.6), 10_000);
        let mid = SeekProfile::for_platter(Inches::new(2.35), 10_000);
        let big = SeekProfile::for_platter(Inches::new(3.7), 10_000);
        assert!(small.average() < mid.average());
        assert!(mid.average() < big.average());
        // 2.35" lies midway between the 2.1 and 2.6 anchors.
        assert!((mid.average().to_millis() - 3.3).abs() < 1e-9);
    }

    #[test]
    fn platter_interpolation_clamps_outside_table() {
        let tiny = SeekProfile::for_platter(Inches::new(1.0), 10_000);
        let anchor = SeekProfile::for_platter(Inches::new(1.6), 10_000);
        assert_eq!(tiny.average(), anchor.average());
        let huge = SeekProfile::for_platter(Inches::new(5.0), 10_000);
        let top = SeekProfile::for_platter(Inches::new(3.7), 10_000);
        assert_eq!(huge.full_stroke(), top.full_stroke());
    }

    #[test]
    fn smaller_platters_seek_faster() {
        // The roadmap's step 3 relies on this: shrinking the platter
        // shortens seeks (and cuts VCM power).
        let d26 = SeekProfile::for_platter(Inches::new(2.6), 29_250);
        let d16 = SeekProfile::for_platter(Inches::new(1.6), 18_000);
        assert!(d16.expected_random_seek() < d26.expected_random_seek());
    }

    #[test]
    fn expected_random_seek_is_near_datasheet_average() {
        let s = cheetah_like();
        let e = s.expected_random_seek().to_millis();
        // The triangular-weighted mean of the piecewise-linear profile
        // lands close to (slightly below) the datasheet average.
        assert!((e - 3.6).abs() < 0.8, "expected ~3.6 ms, got {e:.2}");
    }

    #[test]
    #[should_panic(expected = "seek times")]
    fn unordered_times_rejected() {
        let _ = SeekProfile::new(
            Seconds::from_millis(5.0),
            Seconds::from_millis(3.0),
            Seconds::from_millis(7.0),
            1000,
        );
    }

    #[test]
    fn short_seek_model_is_continuous_and_concave() {
        let linear = cheetah_like();
        let refined = cheetah_like().with_short_seek_model(10);
        // Distance 1 still hits the track-to-track time.
        assert_eq!(refined.seek_time(1), linear.seek_time(1));
        // The curve joins the linear profile at the cutoff.
        let a = refined.seek_time(10);
        let b = linear.seek_time(10);
        assert!((a - b).abs().get() < 1e-12);
        // Beyond the cutoff they are identical.
        assert_eq!(refined.seek_time(500), linear.seek_time(500));
        // Within, sqrt growth sits above the chord (concave): the
        // 4-cylinder seek is more than 4/10 of the way to the cutoff
        // time.
        let frac = (refined.seek_time(4) - refined.seek_time(1)).get()
            / (refined.seek_time(10) - refined.seek_time(1)).get();
        assert!(frac > 0.4, "sqrt profile should be concave, got {frac:.2}");
        // And still monotone.
        let mut prev = Seconds::ZERO;
        for d in 0..20 {
            let t = refined.seek_time(d);
            assert!(t >= prev);
            prev = t;
        }
    }

    #[test]
    #[should_panic(expected = "cutoff")]
    fn degenerate_cutoff_rejected() {
        let _ = cheetah_like().with_short_seek_model(1);
    }

    #[test]
    fn display_mentions_all_three_times() {
        let s = cheetah_like().to_string();
        assert!(s.contains("0.40") && s.contains("3.60") && s.contains("7.00"));
    }
}
