//! Calibratable coefficients of the thermal network.

use serde::{Deserialize, Serialize};

/// Free coefficients of the four-node thermal network.
///
/// The *structure* of the model (which nodes couple to which, and the
/// exponents the literature fixes — `rpm^2.8`, `d^4.8` for viscous
/// dissipation, `Re^0.8` for rotating-disk convection) is hard-coded;
/// these are the scale factors a physical teardown would measure. The
/// defaults are the output of the Nelder–Mead calibration in
/// [`crate::calibrate`] against the paper's published temperatures.
///
/// Conductances are in W/K at the reference point (2.6″ platter,
/// 15,098 RPM, 3.5″ enclosure); powers in W.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalParams {
    /// Spindle/platter-stack ↔ air convective conductance at the
    /// reference point, per platter.
    pub g_spindle_air: f64,
    /// Air ↔ base/cover convective conductance at the reference point.
    pub g_air_base: f64,
    /// RPM exponent of the air ↔ base conductance (air circulation is
    /// driven by platter tip speed).
    pub p_air_base_rpm: f64,
    /// Diameter exponent of the air ↔ base conductance (a larger platter
    /// stirs a larger fraction of the case volume).
    pub p_air_base_dia: f64,
    /// VCM ↔ air convective conductance (constant; the actuator's wetted
    /// area is small and barely moves relative to the air).
    pub g_vcm_air: f64,
    /// VCM ↔ base conductive conductance (the actuator is bolted to the
    /// baseplate).
    pub g_vcm_base: f64,
    /// Spindle ↔ base conductive conductance (through the spindle
    /// bearing cartridge).
    pub g_spindle_base: f64,
    /// Base ↔ external-air conductance (case conduction in series with
    /// fan-driven external convection; constant because the cooling
    /// system holds the external flow).
    pub g_base_ambient: f64,
    /// Spindle-motor loss fraction: the motor dissipates
    /// `beta × P_viscous` of electrical loss in the spindle assembly
    /// while working against air drag.
    pub beta_spm_loss: f64,
    /// Bearing-drag power at the reference RPM, in W (scales linearly
    /// with RPM).
    pub p_bearing_ref: f64,
    /// Multiplier on all node heat capacities; calibrated against the
    /// Figure 1 transient time constant.
    pub capacity_scale: f64,
    /// VCM power split (positive): a fraction
    /// `vcm_air_split / (1 + vcm_air_split)` of the seek power is
    /// dissipated by the moving coil and arms straight into the
    /// airstream, the rest heats the actuator casting. The direct share
    /// is what makes throttling respond within seconds (Figure 7); the
    /// casting share carries the slow thermal mass.
    pub vcm_air_split: f64,
    /// Windage split (positive): a fraction
    /// `visc_air_split / (1 + visc_air_split)` of the viscous
    /// dissipation heats the recirculating air core; the remainder is
    /// shed in the boundary layer on the stationary base/cover walls and
    /// heats the casting directly.
    pub visc_air_split: f64,
    /// Scale of the operating-point-dependent part of the external
    /// conductance: `G_ext = g_base_ambient * area * (1 + c_ext_rpm *
    /// rel_rpm^p_ext_rpm)`. This absorbs the temperature-dependent
    /// natural-convection and radiation enhancement at the extreme
    /// design points (the paper's 2010-2012 temperatures reach hundreds
    /// of degrees where a constant conductance cannot reproduce the
    /// published curve) while keeping the network linear in temperature
    /// at any fixed operating point.
    pub c_ext_rpm: f64,
    /// Exponent of the external-conductance enhancement.
    pub p_ext_rpm: f64,
}

impl ThermalParams {
    /// Reference RPM for the conductance correlations (the 2002 roadmap
    /// point of the 2.6″ drive).
    pub const REF_RPM: f64 = 15_098.0;

    /// Reference platter diameter in inches.
    pub const REF_DIAMETER: f64 = 2.6;

    /// Uncalibrated, physically-plausible starting values for the
    /// calibration search.
    pub fn initial_guess() -> Self {
        Self {
            g_spindle_air: 0.05,
            g_air_base: 0.2,
            p_air_base_rpm: 0.8,
            p_air_base_dia: 2.0,
            g_vcm_air: 0.01,
            g_vcm_base: 0.7,
            g_spindle_base: 0.15,
            g_base_ambient: 0.4,
            beta_spm_loss: 0.08,
            p_bearing_ref: 0.8,
            capacity_scale: 1.0,
            vcm_air_split: 0.05,
            visc_air_split: 0.3,
            c_ext_rpm: 0.25,
            p_ext_rpm: 1.0,
        }
    }

    /// `true` when every coefficient is positive and finite (the
    /// calibration search space).
    pub fn is_physical(&self) -> bool {
        let vals = [
            self.g_spindle_air,
            self.g_air_base,
            self.p_air_base_rpm,
            self.p_air_base_dia,
            self.g_vcm_air,
            self.g_vcm_base,
            self.g_spindle_base,
            self.g_base_ambient,
            self.beta_spm_loss,
            self.p_bearing_ref,
            self.capacity_scale,
            self.vcm_air_split,
            self.visc_air_split,
            self.c_ext_rpm,
            self.p_ext_rpm,
        ];
        vals.iter().all(|v| v.is_finite() && *v > 0.0)
    }

    /// Flattens to the calibration vector (natural-log space, so the
    /// optimizer can roam freely while every parameter stays positive).
    pub(crate) fn to_log_vector(self) -> Vec<f64> {
        vec![
            self.g_spindle_air.ln(),
            self.g_air_base.ln(),
            self.p_air_base_rpm.ln(),
            self.p_air_base_dia.ln(),
            self.g_vcm_air.ln(),
            self.g_vcm_base.ln(),
            self.g_spindle_base.ln(),
            self.g_base_ambient.ln(),
            self.beta_spm_loss.ln(),
            self.p_bearing_ref.ln(),
            self.capacity_scale.ln(),
            self.vcm_air_split.ln(),
            self.visc_air_split.ln(),
            self.c_ext_rpm.ln(),
            self.p_ext_rpm.ln(),
        ]
    }

    /// Inverse of [`Self::to_log_vector`].
    ///
    /// # Panics
    ///
    /// Panics if the vector does not have exactly 15 entries.
    pub(crate) fn from_log_vector(v: &[f64]) -> Self {
        assert_eq!(v.len(), 15, "thermal parameter vector has 15 entries");
        Self {
            g_spindle_air: v[0].exp(),
            g_air_base: v[1].exp(),
            p_air_base_rpm: v[2].exp(),
            p_air_base_dia: v[3].exp(),
            g_vcm_air: v[4].exp(),
            g_vcm_base: v[5].exp(),
            g_spindle_base: v[6].exp(),
            g_base_ambient: v[7].exp(),
            beta_spm_loss: v[8].exp(),
            p_bearing_ref: v[9].exp(),
            capacity_scale: v[10].exp(),
            vcm_air_split: v[11].exp(),
            visc_air_split: v[12].exp(),
            c_ext_rpm: v[13].exp(),
            p_ext_rpm: v[14].exp(),
        }
    }
}

impl Default for ThermalParams {
    /// The calibrated coefficients (see `crates/thermal/examples/
    /// calibrate.rs`; anchors and objective in [`crate::calibrate`]).
    fn default() -> Self {
        // CALIBRATED-DEFAULTS: regenerate with
        //   cargo run -p diskthermal --example calibrate --release
        //
        // These are *effective* surrogate coefficients fitted to the
        // paper's published outputs, not component measurements: the
        // optimizer balances an rpm-linear drive-level loss term against
        // the rpm-linear external enhancement, so the individual
        // magnitudes (e.g. the bearing term) should not be read as
        // physical wattages. Parameters the fit parks at a boundary are
        // floored at tiny positive values to stay in the physical
        // domain.
        Self {
            g_spindle_air: 1.265515905902929,
            g_air_base: 0.011229498856444,
            p_air_base_rpm: 1e-9,
            p_air_base_dia: 4.135884892835555,
            g_vcm_air: 1e-9,
            g_vcm_base: 8.317914938447542,
            g_spindle_base: 0.141337164476689,
            g_base_ambient: 9.102835125320183,
            beta_spm_loss: 1e-9,
            p_bearing_ref: 1_335.128_383_513_544,
            capacity_scale: 1.804_332_207_361_72,
            vcm_air_split: 0.180000000000000,
            visc_air_split: 0.203284905857684,
            c_ext_rpm: 11.460835197065249,
            p_ext_rpm: 1.038415648758936,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_physical() {
        assert!(ThermalParams::default().is_physical());
        assert!(ThermalParams::initial_guess().is_physical());
    }

    #[test]
    fn log_vector_round_trip() {
        let p = ThermalParams::default();
        let back = ThermalParams::from_log_vector(&p.to_log_vector());
        assert!((p.g_spindle_air - back.g_spindle_air).abs() < 1e-12);
        assert!((p.beta_spm_loss - back.beta_spm_loss).abs() < 1e-12);
        assert!((p.capacity_scale - back.capacity_scale).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "15 entries")]
    fn wrong_vector_length_panics() {
        let _ = ThermalParams::from_log_vector(&[0.0; 3]);
    }

    #[test]
    fn vcm_direct_fraction_is_a_fraction() {
        let p = ThermalParams::default();
        let f = p.vcm_air_split / (1.0 + p.vcm_air_split);
        assert!(f > 0.0 && f < 1.0);
    }
}
