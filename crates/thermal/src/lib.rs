//! Lumped finite-difference thermal model of a disk drive (§3.3).
//!
//! Following Clauss and Eibeck, the drive is divided into four thermal
//! nodes — the internal air, the spindle-motor assembly (hub + platters),
//! the base-and-cover casting, and the voice-coil motor with the disk
//! arms. Heat flows between nodes by convection and conduction under
//! Newton's law of cooling, and out of the drive through the enclosure to
//! external air held at constant temperature by the cooling system.
//!
//! Heat enters the system three ways:
//!
//! - **viscous dissipation** in the internal air, growing linearly with
//!   platter count, with the 2.8th power of RPM and the 4.8th power of
//!   platter diameter (§3.3, citing Schirle & Lieu);
//! - **spindle-motor losses** (the motor works against that same air
//!   drag, plus bearing friction), deposited in the spindle assembly;
//! - **voice-coil motor power** while seeking, deposited in the actuator.
//!
//! The free coefficients of the convection correlations were calibrated
//! by Nelder–Mead descent against the paper's published anchors — the
//! Figure 1 transient (28 → 45.22 °C), all 33 steady-state temperatures
//! of Table 3, and the VCM-off temperatures of §5.2–5.3 — and the fitted
//! values are baked into [`ThermalParams::default`]. The calibration
//! harness itself ships in [`calibrate`] and can be re-run with
//! `cargo run -p diskthermal --example calibrate --release`.
//!
//! # Examples
//!
//! Steady state of the modeled Cheetah 15K.3 (Figure 1's end point):
//!
//! ```
//! use diskthermal::{DriveThermalSpec, OperatingPoint, ThermalModel};
//! use units::{Celsius, Inches, Rpm};
//!
//! let spec = DriveThermalSpec::cheetah_15k3();
//! let model = ThermalModel::new(spec);
//! let op = OperatingPoint::seeking(Rpm::new(15_000.0));
//! let steady = model.steady_state(op);
//! assert!((steady.air.get() - 45.22).abs() < 0.6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[doc(hidden)]
pub mod bench_support;

pub mod array;
pub mod calibrate;
pub mod reliability;
mod cache;
mod envelope;
mod error;
mod linalg;
mod model;
mod params;
mod sensor;
mod sources;
mod spec;
mod transient;

pub use array::{drive_heat_estimate, AirflowPath, BayState};
pub use envelope::{ambient_for_envelope, max_rpm_within_envelope, EnvelopeSearch, THERMAL_ENVELOPE};
pub use error::ThermalError;
pub use model::{Conductances, NodeTemps, PowerBreakdown, ThermalModel};
pub use params::ThermalParams;
pub use sensor::TempSensor;
pub use sources::{vcm_power_for_platter, viscous_dissipation, VCM_POWER_ANCHORS};
pub use spec::{DriveThermalSpec, FormFactor, OperatingPoint};
pub use transient::{Integrator, TransientSim};
