//! Calibration of the thermal coefficients against the paper's published
//! temperatures.
//!
//! The paper validated its model against a physical Seagate Cheetah
//! 15K.3 teardown; we cannot measure a drive, so we treat the paper's
//! *published model outputs* as ground truth and fit our network's free
//! coefficients to them:
//!
//! - all 33 steady-state temperatures of Table 3 (three platter sizes ×
//!   eleven roadmap years, VCM on),
//! - the VCM-off temperatures of §5.3 (44.07 °C at 24,534 RPM and
//!   53.04 °C at 37,001 RPM for the 2.6″ drive),
//! - the envelope crossings of §5.2–5.3 (15,020 RPM VCM-on and
//!   26,750 RPM VCM-off both land exactly on 45.22 °C),
//! - the Figure 1 transient (28 → ~33 °C in the first minute, steady
//!   45.22 °C after ~48 minutes) for the heat-capacity scale.
//!
//! Run `cargo run -p diskthermal --example calibrate --release` to
//! regenerate the constants baked into
//! [`ThermalParams::default`](crate::ThermalParams::default).

use crate::model::ThermalModel;
use crate::params::ThermalParams;
use crate::spec::{DriveThermalSpec, OperatingPoint};
use crate::transient::TransientSim;
use units::{Celsius, Inches, Rpm, Seconds};

/// One steady-state calibration anchor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SteadyAnchor {
    /// Platter diameter in inches.
    pub diameter: f64,
    /// Platter count.
    pub platters: u32,
    /// VCM duty (1.0 = always seeking, the envelope assumption).
    pub vcm_duty: f64,
    /// Spindle speed.
    pub rpm: f64,
    /// The paper's published steady internal-air temperature, °C.
    pub temp: f64,
    /// Least-squares weight.
    pub weight: f64,
}

/// Table 3 temperatures: `(rpm, temp)` per platter size, single platter,
/// 28 °C ambient, VCM always on.
const TABLE3_26: [(f64, f64); 11] = [
    (15_098.0, 45.24),
    (16_263.0, 45.47),
    (19_972.0, 46.46),
    (24_534.0, 48.26),
    (30_130.0, 51.48),
    (37_001.0, 57.18),
    (45_452.0, 67.27),
    (55_819.0, 85.04),
    (95_094.0, 223.01),
    (116_826.0, 360.40),
    (143_470.0, 602.98),
];

const TABLE3_21: [(f64, f64); 11] = [
    (18_692.0, 43.56),
    (20_135.0, 43.69),
    (24_728.0, 44.37),
    (30_367.0, 45.61),
    (37_303.0, 47.85),
    (45_811.0, 51.81),
    (56_259.0, 58.81),
    (69_109.0, 71.17),
    (117_735.0, 167.01),
    (144_586.0, 262.19),
    (177_629.0, 430.93),
];

const TABLE3_16: [(f64, f64); 11] = [
    (24_533.0, 41.64),
    (26_420.0, 41.74),
    (32_455.0, 42.15),
    (39_857.0, 42.93),
    (48_947.0, 44.29),
    (60_127.0, 46.73),
    (73_840.0, 51.04),
    (90_680.0, 58.63),
    (154_527.0, 117.61),
    (189_769.0, 176.20),
    (233_050.0, 279.75),
];

/// Ambient temperature common to all anchors.
const AMBIENT: f64 = 28.0;

/// The full steady-state anchor set.
pub fn steady_anchors() -> Vec<SteadyAnchor> {
    let mut anchors = Vec::new();
    let mut push_table = |dia: f64, table: &[(f64, f64)]| {
        for &(rpm, temp) in table {
            // Near-envelope points steer the roadmap; far extrapolations
            // (hundreds of degrees) only need to hold in shape.
            let weight = if temp < 90.0 { 1.0 } else { 0.25 };
            anchors.push(SteadyAnchor {
                diameter: dia,
                platters: 1,
                vcm_duty: 1.0,
                rpm,
                temp,
                weight,
            });
        }
    };
    push_table(2.6, &TABLE3_26);
    push_table(2.1, &TABLE3_21);
    push_table(1.6, &TABLE3_16);

    // §5.3: VCM-off temperatures of the 2.6" drive.
    anchors.push(SteadyAnchor {
        diameter: 2.6,
        platters: 1,
        vcm_duty: 0.0,
        rpm: 24_534.0,
        temp: 44.07,
        weight: 2.0,
    });
    anchors.push(SteadyAnchor {
        diameter: 2.6,
        platters: 1,
        vcm_duty: 0.0,
        rpm: 37_001.0,
        temp: 53.04,
        weight: 2.0,
    });

    // §5.2/§5.3 envelope crossings: 15,020 RPM (VCM on) and 26,750 RPM
    // (VCM off) both sit exactly at 45.22 °C. Weight these heavily —
    // they anchor the whole roadmap and the DTM slack analysis.
    anchors.push(SteadyAnchor {
        diameter: 2.6,
        platters: 1,
        vcm_duty: 1.0,
        rpm: 15_020.0,
        temp: 45.22,
        weight: 4.0,
    });
    anchors.push(SteadyAnchor {
        diameter: 2.6,
        platters: 1,
        vcm_duty: 0.0,
        rpm: 26_750.0,
        temp: 45.22,
        weight: 4.0,
    });

    anchors
}

/// Builds the thermal model for an anchor under trial parameters.
fn model_for(anchor: &SteadyAnchor, params: ThermalParams) -> ThermalModel {
    let spec = DriveThermalSpec::new(Inches::new(anchor.diameter), anchor.platters);
    // The 2.6" anchors correspond to the physically measured 3.9 W VCM,
    // which the correlation reproduces exactly, so no override is needed.
    ThermalModel::with_params(spec, params)
}

/// Model temperature at one anchor's operating point.
pub fn model_temp(anchor: &SteadyAnchor, params: ThermalParams) -> Celsius {
    model_for(anchor, params)
        .steady_air_temp(OperatingPoint::new(Rpm::new(anchor.rpm), anchor.vcm_duty))
}

/// Weighted sum of squared *relative* errors on the temperature rise
/// above ambient, over all steady anchors, plus physicality penalties
/// that keep the internal node temperatures sane (without them the
/// optimizer can park the VCM conductances at zero — the steady air
/// temperature only sees their ratio — leaving the actuator node at
/// absurd temperatures and wrecking the transient response).
pub fn steady_objective(params: ThermalParams) -> f64 {
    if !params.is_physical() {
        return f64::INFINITY;
    }
    // Reject the optimizer's wilder excursions before they overflow the
    // power-law correlations (rel_rpm ~ 10 raised to a huge exponent).
    if [params.p_air_base_rpm, params.p_air_base_dia, params.p_ext_rpm]
        .iter()
        .any(|p| *p > 8.0)
    {
        return f64::INFINITY;
    }
    if [
        params.g_spindle_air,
        params.g_air_base,
        params.g_vcm_air,
        params.g_vcm_base,
        params.g_spindle_base,
        params.g_base_ambient,
        params.beta_spm_loss,
        params.p_bearing_ref,
        params.c_ext_rpm,
    ]
    .iter()
    .any(|g| *g > 1e4)
    {
        return f64::INFINITY;
    }
    let fit: f64 = steady_anchors()
        .iter()
        .map(|a| {
            let want = a.temp - AMBIENT;
            let got = model_temp(a, params).get() - AMBIENT;
            let rel = (got - want) / want;
            a.weight * rel * rel
        })
        .sum();

    // Node-sanity penalty at the validated Cheetah operating point: the
    // actuator and spindle assemblies of a real drive run within a few
    // tens of degrees of the internal air, not hundreds.
    let cheetah = ThermalModel::with_params(DriveThermalSpec::cheetah_15k3(), params);
    let t = cheetah.steady_state(OperatingPoint::seeking(Rpm::new(15_020.0)));
    let mut penalty = 0.0;
    for node in [t.vcm, t.spindle] {
        let excess = (node - t.air).get();
        if excess > 30.0 {
            let e = (excess - 30.0) / 30.0;
            penalty += e * e;
        }
        if excess < -5.0 {
            // Source nodes below the air they heat would be unphysical.
            let e = (excess + 5.0) / 5.0;
            penalty += e * e;
        }
    }

    // Throttle-direction penalty: dropping from the Figure 7(b) service
    // speed to its low speed (VCM off) must *cool* the air immediately.
    // The air node's quasi-steady offset above the base is
    // P_air / G_air_base; if the offset at the cooled point exceeds the
    // offset at the hot point, the drive would transiently heat up when
    // throttled, which contradicts the mechanism outright.
    let offset_above_base = |rpm: f64, duty: f64| -> f64 {
        let op = OperatingPoint::new(Rpm::new(rpm), duty);
        let g = cheetah.conductances(op);
        let pw = cheetah.power_breakdown(op);
        let visc_air = params.visc_air_split / (1.0 + params.visc_air_split);
        let vcm_air = params.vcm_air_split / (1.0 + params.vcm_air_split);
        (pw.viscous.get() * visc_air + pw.vcm.get() * vcm_air) / g.air_base().get()
    };
    for (high, low) in [(37_001.0, 22_001.0), (24_534.0, 15_020.0)] {
        let gap = offset_above_base(low, 0.0) - offset_above_base(high, 1.0);
        if gap > 0.0 {
            penalty += 10.0 * gap * gap;
        }
    }

    // Keep the internal convection correlation near its physical Re^0.8
    // scaling; the high-RPM curvature of Table 3 belongs to the external
    // enhancement term, not to the air-to-case coupling (an inflated
    // exponent there wrecks the transient response to RPM drops).
    if params.p_air_base_rpm > 1.1 {
        let e = params.p_air_base_rpm - 1.1;
        penalty += 5.0 * e * e;
    }

    // Keep every conductance in a physically meaningful band; the
    // steady surface is invariant to some runaway directions (a huge
    // spindle-air coupling merely slaves the sourceless spindle node to
    // the air) that would still distort transients.
    for g in [
        params.g_spindle_air,
        params.g_air_base,
        params.g_vcm_air,
        params.g_vcm_base,
        params.g_spindle_base,
        params.g_base_ambient,
    ] {
        if g > 20.0 {
            let e = (g - 20.0) / 20.0;
            penalty += e * e;
        }
    }

    fit + penalty
}

/// Per-anchor comparison row for reporting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnchorReport {
    /// The anchor evaluated.
    pub anchor: SteadyAnchor,
    /// Model temperature, °C.
    pub model: f64,
    /// Relative error on the rise above ambient.
    pub rel_error: f64,
}

/// Evaluates every anchor under `params`.
pub fn report(params: ThermalParams) -> Vec<AnchorReport> {
    steady_anchors()
        .iter()
        .map(|a| {
            let model = model_temp(a, params).get();
            let rel_error = (model - a.temp) / (a.temp - AMBIENT);
            AnchorReport {
                anchor: *a,
                model,
                rel_error,
            }
        })
        .collect()
}

/// Generic Nelder–Mead simplex minimizer.
///
/// Standard coefficients (reflection 1, expansion 2, contraction 0.5,
/// shrink 0.5); the initial simplex perturbs each coordinate of `x0` by
/// `spread`. Returns the best vertex and its value.
pub fn nelder_mead(
    f: &dyn Fn(&[f64]) -> f64,
    x0: &[f64],
    spread: f64,
    max_iter: usize,
) -> (Vec<f64>, f64) {
    let n = x0.len();
    let mut simplex: Vec<Vec<f64>> = Vec::with_capacity(n + 1);
    simplex.push(x0.to_vec());
    for i in 0..n {
        let mut v = x0.to_vec();
        v[i] += spread;
        simplex.push(v);
    }
    let mut values: Vec<f64> = simplex.iter().map(|v| f(v)).collect();

    for _ in 0..max_iter {
        // Order vertices by value.
        let mut idx: Vec<usize> = (0..=n).collect();
        idx.sort_by(|&a, &b| values[a].partial_cmp(&values[b]).expect("finite objective"));
        let best = idx[0];
        let worst = idx[n];
        let second_worst = idx[n - 1];

        if (values[worst] - values[best]).abs() < 1e-14 {
            break;
        }

        // Centroid of all but the worst vertex.
        let mut centroid = vec![0.0; n];
        for (k, v) in simplex.iter().enumerate() {
            if k == worst {
                continue;
            }
            for i in 0..n {
                centroid[i] += v[i] / n as f64;
            }
        }

        let lerp = |a: &[f64], b: &[f64], t: f64| -> Vec<f64> {
            a.iter().zip(b).map(|(x, y)| x + t * (y - x)).collect()
        };

        // Reflection.
        let reflected = lerp(&centroid, &simplex[worst], -1.0);
        let f_r = f(&reflected);
        if f_r < values[best] {
            // Expansion.
            let expanded = lerp(&centroid, &simplex[worst], -2.0);
            let f_e = f(&expanded);
            if f_e < f_r {
                simplex[worst] = expanded;
                values[worst] = f_e;
            } else {
                simplex[worst] = reflected;
                values[worst] = f_r;
            }
        } else if f_r < values[second_worst] {
            simplex[worst] = reflected;
            values[worst] = f_r;
        } else {
            // Contraction.
            let contracted = lerp(&centroid, &simplex[worst], 0.5);
            let f_c = f(&contracted);
            if f_c < values[worst] {
                simplex[worst] = contracted;
                values[worst] = f_c;
            } else {
                // Shrink toward the best vertex.
                let best_v = simplex[best].clone();
                for (k, v) in simplex.iter_mut().enumerate() {
                    if k == best {
                        continue;
                    }
                    *v = lerp(&best_v, v, 0.5);
                    values[k] = f(v);
                }
            }
        }
    }

    let (argmin, _) = values
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite objective"))
        .expect("non-empty simplex");
    (simplex[argmin].clone(), values[argmin])
}

/// Fits the conductance/source coefficients to the steady anchors,
/// restarting Nelder–Mead `restarts` times from the incumbent with a
/// shrinking simplex spread.
pub fn calibrate_steady(start: ThermalParams, restarts: usize) -> (ThermalParams, f64) {
    let objective =
        |v: &[f64]| -> f64 { steady_objective(ThermalParams::from_log_vector(v)) };
    let mut x = start.to_log_vector();
    let mut best = f64::INFINITY;
    for round in 0..restarts {
        let spread = 0.5 / (1.0 + round as f64 * 0.7);
        let (xn, fx) = nelder_mead(&objective, &x, spread, 4_000);
        if fx < best {
            best = fx;
            x = xn;
        }
    }
    (ThermalParams::from_log_vector(&x), best)
}

/// Like [`calibrate_steady`], but with the VCM direct-to-air split held
/// fixed. The steady anchors alone cannot identify that split (only the
/// *total* VCM influence on the air is observable at steady state), so
/// the throttling-transient stage of the calibration pins it by scanning
/// candidates and scoring each against the Figure 7 targets.
pub fn calibrate_steady_frozen_split(
    start: ThermalParams,
    restarts: usize,
    vcm_air_split: f64,
) -> (ThermalParams, f64) {
    // Optimize the other 14 coordinates; index 11 stays frozen.
    let freeze = vcm_air_split.ln();
    let expand = |v14: &[f64]| -> Vec<f64> {
        let mut full = Vec::with_capacity(15);
        full.extend_from_slice(&v14[..11]);
        full.push(freeze);
        full.extend_from_slice(&v14[11..]);
        full
    };
    let objective = |v14: &[f64]| -> f64 {
        steady_objective(ThermalParams::from_log_vector(&expand(v14)))
    };
    let full0 = start.to_log_vector();
    let mut x: Vec<f64> = full0[..11]
        .iter()
        .copied()
        .chain(full0[12..].iter().copied())
        .collect();
    let mut best = f64::INFINITY;
    for round in 0..restarts {
        let spread = 0.6 / (1.0 + round as f64 * 0.5);
        let (xn, fx) = nelder_mead(&objective, &x, spread, 6_000);
        if fx < best {
            best = fx;
            x = xn;
        }
    }
    (ThermalParams::from_log_vector(&expand(&x)), best)
}

/// Throttling-ratio targets read off Figure 7(a): `(t_cool_seconds,
/// ratio)` for the 2.6″ drive at 24,534 RPM with VCM-only throttling.
pub const FIGURE7A_TARGETS: [(f64, f64); 2] = [(1.0, 1.4), (8.0, 0.45)];

/// Measures the Figure 7(a) throttling ratios under trial parameters:
/// warm the drive from ambient to the envelope at 24,534 RPM (VCM on),
/// cool with the VCM off for `t_cool`, then measure the time to re-reach
/// the envelope. Returns one ratio per requested `t_cool` (0.0 when the
/// cooling bought no headroom, `None` when the warm-up never reaches the
/// envelope at all).
pub fn figure7a_ratios(params: ThermalParams, t_cools: &[f64]) -> Option<Vec<f64>> {
    let model = ThermalModel::with_params(
        DriveThermalSpec::new(Inches::new(2.6), 1),
        params,
    );
    let heat = OperatingPoint::seeking(Rpm::new(24_534.0));
    let cool = OperatingPoint::idle_vcm(Rpm::new(24_534.0));
    let envelope = Celsius::new(45.22);
    let mut warm = TransientSim::from_ambient(&model)
        .with_step(Seconds::new(0.1))
        .expect("constant step is positive");
    warm.time_to_reach(&model, heat, envelope)?;
    let mut out = Vec::with_capacity(t_cools.len());
    for &t_cool in t_cools {
        let mut sim = warm.clone();
        sim.advance(&model, cool, Seconds::new(t_cool));
        if sim.temps().air >= envelope {
            out.push(0.0);
            continue;
        }
        match sim.time_to_reach(&model, heat, envelope) {
            Some(t_heat) => out.push(t_heat.get() / t_cool),
            None => out.push(f64::INFINITY),
        }
    }
    Some(out)
}

/// Score of a parameter set against the Figure 7(a) targets (sum of
/// squared ratio errors; infinite when the experiment is degenerate).
pub fn figure7a_score(params: ThermalParams) -> f64 {
    let t_cools: Vec<f64> = FIGURE7A_TARGETS.iter().map(|(t, _)| *t).collect();
    match figure7a_ratios(params, &t_cools) {
        Some(ratios) => ratios
            .iter()
            .zip(FIGURE7A_TARGETS.iter())
            .map(|(r, (_, want))| {
                if r.is_finite() {
                    (r - want) * (r - want)
                } else {
                    1e6
                }
            })
            .sum(),
        None => f64::INFINITY,
    }
}

/// Figure 1 transient targets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransientTargets {
    /// Air temperature one minute after a cold start, °C (Figure 1
    /// shows 28 → 33 within the first minute).
    pub temp_at_1min: f64,
    /// Minutes to reach steady state (Figure 1: ~48 minutes).
    pub minutes_to_steady: f64,
}

impl Default for TransientTargets {
    fn default() -> Self {
        Self {
            temp_at_1min: 33.0,
            minutes_to_steady: 48.0,
        }
    }
}

/// Evaluates the Figure 1 transient under trial parameters, returning
/// `(temp_at_1min, minutes_to_steady)`.
pub fn transient_metrics(params: ThermalParams) -> (f64, f64) {
    let model = ThermalModel::with_params(DriveThermalSpec::cheetah_15k3(), params);
    let op = OperatingPoint::seeking(Rpm::new(15_000.0));
    let steady = model.steady_air_temp(op);
    let mut sim = TransientSim::from_ambient(&model);
    sim.advance(&model, op, Seconds::new(60.0));
    let at_1min = sim.temps().air.get();
    // "Reaches steady state" read off a plot: within 0.1 C.
    let mut minutes = 1.0;
    while (steady - sim.temps().air).get() > 0.1 && minutes < 600.0 {
        sim.advance(&model, op, Seconds::new(60.0));
        minutes += 1.0;
    }
    (at_1min, minutes)
}

/// Golden-section fit of `capacity_scale` to the Figure 1 transient.
pub fn calibrate_capacity_scale(mut params: ThermalParams, targets: TransientTargets) -> f64 {
    let objective = |scale: f64, params: &mut ThermalParams| -> f64 {
        params.capacity_scale = scale;
        let (t1, minutes) = transient_metrics(*params);
        let e1 = (t1 - targets.temp_at_1min) / 5.0;
        let e2 = (minutes - targets.minutes_to_steady) / targets.minutes_to_steady;
        e1 * e1 + e2 * e2
    };
    let (mut lo, mut hi) = (0.2f64, 5.0f64);
    let phi = 0.5 * (5f64.sqrt() - 1.0);
    let mut x1 = hi - phi * (hi - lo);
    let mut x2 = lo + phi * (hi - lo);
    let mut f1 = objective(x1, &mut params);
    let mut f2 = objective(x2, &mut params);
    for _ in 0..60 {
        if f1 < f2 {
            hi = x2;
            x2 = x1;
            f2 = f1;
            x1 = hi - phi * (hi - lo);
            f1 = objective(x1, &mut params);
        } else {
            lo = x1;
            x1 = x2;
            f1 = f2;
            x2 = lo + phi * (hi - lo);
            f2 = objective(x2, &mut params);
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchor_set_is_complete() {
        let anchors = steady_anchors();
        // 33 Table-3 points + 2 VCM-off points + 2 envelope crossings.
        assert_eq!(anchors.len(), 37);
        assert!(anchors.iter().all(|a| a.temp > AMBIENT));
        assert!(anchors.iter().all(|a| a.weight > 0.0));
    }

    #[test]
    fn nelder_mead_minimizes_quadratic() {
        let f = |v: &[f64]| (v[0] - 3.0).powi(2) + (v[1] + 1.0).powi(2) + 2.0;
        let (x, fx) = nelder_mead(&f, &[0.0, 0.0], 0.5, 500);
        assert!((x[0] - 3.0).abs() < 1e-5, "x0 = {}", x[0]);
        assert!((x[1] + 1.0).abs() < 1e-5, "x1 = {}", x[1]);
        assert!((fx - 2.0).abs() < 1e-9);
    }

    #[test]
    fn nelder_mead_handles_rosenbrock() {
        let f = |v: &[f64]| {
            (1.0 - v[0]).powi(2) + 100.0 * (v[1] - v[0] * v[0]).powi(2)
        };
        let (x, fx) = nelder_mead(&f, &[-1.2, 1.0], 0.5, 5_000);
        assert!(fx < 1e-6, "fx = {fx}, x = {x:?}");
    }

    #[test]
    fn objective_rejects_unphysical_parameters() {
        let p = ThermalParams {
            g_air_base: -1.0,
            ..ThermalParams::default()
        };
        assert_eq!(steady_objective(p), f64::INFINITY);
    }

    #[test]
    fn calibrated_defaults_fit_anchors() {
        // The shipped defaults should reproduce the paper's temperature
        // rises within 15% RMS (most anchors land much closer).
        let reports = report(ThermalParams::default());
        let rms = (reports.iter().map(|r| r.rel_error * r.rel_error).sum::<f64>()
            / reports.len() as f64)
            .sqrt();
        assert!(rms < 0.15, "RMS relative error {rms:.3}");
    }

    #[test]
    fn calibrated_defaults_hit_envelope_crossings() {
        // The two heavily weighted anchors: 15,020 RPM VCM-on and
        // 26,750 RPM VCM-off sit on the 45.22 C envelope.
        let p = ThermalParams::default();
        for a in steady_anchors().iter().filter(|a| a.weight > 3.0) {
            let t = model_temp(a, p).get();
            assert!(
                (t - 45.22).abs() < 0.8,
                "envelope anchor at {} RPM (duty {}): {t:.2} C",
                a.rpm,
                a.vcm_duty
            );
        }
    }
}
