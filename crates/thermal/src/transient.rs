//! Transient (time-domain) integration of the thermal network.
//!
//! The paper integrates the finite-difference equations at 600 steps per
//! minute (0.1 s). We offer the same explicit scheme plus an
//! unconditionally stable backward-Euler scheme (the default): the
//! internal air node has a tiny heat capacity, so explicit integration is
//! only conditionally stable at small steps.
//!
//! The implicit step matrix `(C/dt + A)` depends only on the model, the
//! step size, and the operating point — none of which change inside an
//! `advance()` over a constant operating point, and all of which cycle
//! through a handful of values in the DTM controller's window loop. The
//! simulation therefore keeps a small keyed cache of LU factorizations
//! ([`StepCache`]): steady operation factors once and back-substitutes
//! per step instead of re-assembling and re-eliminating the 4×4 system
//! 600 times a simulated minute.

use crate::error::ThermalError;
use crate::linalg::{lu_factor, LuFactors};
use crate::model::{NodeTemps, ThermalModel, NODES};
use crate::spec::OperatingPoint;
use serde::{Deserialize, Serialize};
use units::{Celsius, Seconds};

/// Time-integration scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Integrator {
    /// Backward (implicit) Euler: unconditionally stable, solves a 4×4
    /// system per step.
    #[default]
    BackwardEuler,
    /// Forward (explicit) Euler: the paper's scheme; stable only when
    /// the step is below each node's thermal time constant.
    ForwardEuler,
}

/// The paper's step size: 600 steps per minute.
pub(crate) const PAPER_STEP: Seconds = Seconds::new(0.1);

/// One factored backward-Euler step system, tagged with the inputs it
/// was built from.
#[derive(Debug, Clone)]
struct StepFactors {
    model: ThermalModel,
    op: OperatingPoint,
    dt: f64,
    lu: LuFactors<NODES>,
    source: [f64; NODES],
    c_over_dt: [f64; NODES],
}

impl StepFactors {
    /// Assembles and factors `(C/dt + A)` for one (model, op, dt) triple.
    fn build(model: &ThermalModel, op: OperatingPoint, dt: f64) -> Self {
        let (a, b) = model.assemble(op);
        let caps = model.capacities();
        let mut lhs = a;
        let mut c_over_dt = [0.0; NODES];
        for i in 0..NODES {
            let c_dt = caps[i].get() / dt;
            lhs[i][i] += c_dt;
            c_over_dt[i] = c_dt;
        }
        let lu = lu_factor(lhs).expect("implicit step matrix is SPD");
        Self {
            model: model.clone(),
            op,
            dt,
            lu,
            source: b,
            c_over_dt,
        }
    }

    /// Whether this factorization is valid for the given inputs.
    fn matches(&self, model: &ThermalModel, op: OperatingPoint, dt: f64) -> bool {
        self.dt == dt && self.op == op && self.model == *model
    }

    /// One implicit step from temperatures `t`:
    /// `(C/dt + A) T_new = C/dt T_old + b`.
    fn step(&self, t: [f64; NODES]) -> [f64; NODES] {
        let mut rhs = self.source;
        for i in 0..NODES {
            rhs[i] += self.c_over_dt[i] * t[i];
        }
        self.lu.solve(rhs)
    }
}

/// Most-recently-used cache of step factorizations. Eight entries cover
/// the worst realistic churn — the DTM throttle loop alternates two
/// operating points, the mirror policy four — while keeping the miss
/// scan trivial.
const STEP_CACHE_CAP: usize = 8;

#[derive(Debug, Clone, Default)]
struct StepCache {
    /// Most recently used at the back.
    entries: Vec<StepFactors>,
    disabled: bool,
}

impl StepCache {
    /// Returns a factorization for the inputs, reusing a cached one when
    /// the key matches.
    fn get(&mut self, model: &ThermalModel, op: OperatingPoint, dt: f64) -> &StepFactors {
        match self.entries.iter().rposition(|e| e.matches(model, op, dt)) {
            Some(pos) => {
                if pos + 1 != self.entries.len() {
                    let hit = self.entries.remove(pos);
                    self.entries.push(hit);
                }
            }
            None => {
                if self.entries.len() >= STEP_CACHE_CAP {
                    self.entries.remove(0);
                }
                self.entries.push(StepFactors::build(model, op, dt));
            }
        }
        self.entries.last().expect("entry just ensured")
    }
}

/// A transient simulation of one drive's temperatures.
///
/// # Examples
///
/// Reproduce the Figure 1 warm-up from ambient:
///
/// ```
/// use diskthermal::{DriveThermalSpec, OperatingPoint, ThermalModel, TransientSim};
/// use units::{Rpm, Seconds};
///
/// let model = ThermalModel::new(DriveThermalSpec::cheetah_15k3());
/// let mut sim = TransientSim::from_ambient(&model);
/// let op = OperatingPoint::seeking(Rpm::new(15_000.0));
/// sim.advance(&model, op, Seconds::new(60.0)); // one minute in
/// assert!(sim.temps().air.get() > 30.0); // already several degrees up
/// ```
#[derive(Debug, Clone)]
pub struct TransientSim {
    temps: NodeTemps,
    time: Seconds,
    step: Seconds,
    integrator: Integrator,
    cache: StepCache,
}

impl TransientSim {
    /// Starts a simulation with every node at the drive's ambient
    /// temperature (the cold-start condition of Figure 1).
    pub fn from_ambient(model: &ThermalModel) -> Self {
        Self::with_initial(NodeTemps::uniform(model.spec().ambient()))
    }

    /// Starts from explicit initial node temperatures.
    pub fn with_initial(temps: NodeTemps) -> Self {
        Self {
            temps,
            time: Seconds::ZERO,
            step: PAPER_STEP,
            integrator: Integrator::default(),
            cache: StepCache::default(),
        }
    }

    /// Overrides the integration step (default 0.1 s, the paper's
    /// 600 steps/minute).
    ///
    /// # Errors
    ///
    /// [`ThermalError::NonPositiveStep`] when the step is not a
    /// positive, finite number of seconds.
    pub fn with_step(mut self, step: Seconds) -> Result<Self, ThermalError> {
        if !(step.get().is_finite() && step.get() > 0.0) {
            return Err(ThermalError::NonPositiveStep(step.get()));
        }
        self.step = step;
        Ok(self)
    }

    /// Sets the simulated clock (checkpoint restore). Time is pure
    /// bookkeeping — the dynamics depend only on temperatures — so
    /// restoring it alongside [`Self::with_initial`] reproduces a
    /// captured simulation exactly.
    pub fn with_time(mut self, time: Seconds) -> Self {
        self.time = time;
        self
    }

    /// Overrides the integration scheme.
    pub fn with_integrator(mut self, integrator: Integrator) -> Self {
        self.integrator = integrator;
        self
    }

    /// Enables or disables the cached backward-Euler factorization
    /// (enabled by default). With the cache off, every implicit step
    /// assembles and factors the 4×4 system from scratch — the pre-cache
    /// behavior, kept for benchmarking and differential tests; the math
    /// is identical either way.
    pub fn with_step_cache(mut self, enabled: bool) -> Self {
        self.cache.disabled = !enabled;
        self.cache.entries.clear();
        self
    }

    /// Current node temperatures.
    pub fn temps(&self) -> NodeTemps {
        self.temps
    }

    /// Current simulated time.
    pub fn time(&self) -> Seconds {
        self.time
    }

    /// Advances exactly one integration step at the given operating
    /// point.
    pub fn step(&mut self, model: &ThermalModel, op: OperatingPoint) {
        let dt = self.step.get();
        let t = self.temps.to_array();

        let next = match self.integrator {
            Integrator::ForwardEuler => {
                let (a, b) = model.assemble(op);
                let caps = model.capacities();
                let mut out = [0.0; NODES];
                for i in 0..NODES {
                    // C_i dT/dt = b_i - sum_j A_ij T_j
                    let flux: f64 = (0..NODES).map(|j| a[i][j] * t[j]).sum();
                    out[i] = t[i] + dt * (b[i] - flux) / caps[i].get();
                }
                out
            }
            Integrator::BackwardEuler if self.cache.disabled => {
                StepFactors::build(model, op, dt).step(t)
            }
            Integrator::BackwardEuler => self.cache.get(model, op, dt).step(t),
        };

        self.temps = NodeTemps::from_array(next);
        self.time += self.step;
    }

    /// Advances by (at least) `duration`, in whole steps.
    pub fn advance(&mut self, model: &ThermalModel, op: OperatingPoint, duration: Seconds) {
        let steps = (duration.get() / self.step.get()).ceil() as u64;
        for _ in 0..steps {
            self.step(model, op);
        }
    }

    /// Runs until the air temperature changes by less than `tol` per
    /// minute of simulated time, returning the time taken to converge.
    ///
    /// A hard cap of 24 simulated hours guards against non-convergence.
    pub fn run_to_steady(
        &mut self,
        model: &ThermalModel,
        op: OperatingPoint,
        tol: f64,
    ) -> Seconds {
        let start = self.time;
        let cap = Seconds::new(24.0 * 3600.0);
        loop {
            let before = self.temps.air;
            self.advance(model, op, Seconds::new(60.0));
            let drift = (self.temps.air - before).abs().get();
            if drift < tol || self.time - start > cap {
                return self.time - start;
            }
        }
    }

    /// Advances until the air temperature reaches `target` (useful for
    /// the throttling experiments of §5.3), returning the elapsed time,
    /// or `None` if the operating point can never reach it (checked
    /// against the steady state) or 24 h elapse first.
    pub fn time_to_reach(
        &mut self,
        model: &ThermalModel,
        op: OperatingPoint,
        target: Celsius,
    ) -> Option<Seconds> {
        if self.temps.air == target {
            return Some(Seconds::ZERO);
        }
        let rising = self.temps.air < target;
        let steady = model.steady_air_temp(op);
        if rising && steady < target {
            return None;
        }
        if !rising && steady > target {
            return None;
        }
        let start = self.time;
        let cap = Seconds::new(24.0 * 3600.0);
        loop {
            self.step(model, op);
            let reached = if rising {
                self.temps.air >= target
            } else {
                self.temps.air <= target
            };
            if reached {
                return Some(self.time - start);
            }
            if self.time - start > cap {
                return None;
            }
        }
    }
}

// The factorization cache is derived state: two simulations are the same
// simulation whether or not one has warmed its cache, and the cache must
// not leak into the serialized form (which predates it).
impl PartialEq for TransientSim {
    fn eq(&self, other: &Self) -> bool {
        self.temps == other.temps
            && self.time == other.time
            && self.step == other.step
            && self.integrator == other.integrator
    }
}

impl Serialize for TransientSim {
    fn to_value(&self) -> serde::Value {
        let mut doc = serde::Map::new();
        doc.insert("temps", self.temps.to_value());
        doc.insert("time", self.time.to_value());
        doc.insert("step", self.step.to_value());
        doc.insert("integrator", self.integrator.to_value());
        serde::Value::Object(doc)
    }
}

impl Deserialize for TransientSim {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let field = |name: &str| {
            v.get(name).ok_or_else(|| {
                serde::Error::custom(format!("missing field `{name}` in TransientSim"))
            })
        };
        Ok(Self {
            temps: Deserialize::from_value(field("temps")?)?,
            time: Deserialize::from_value(field("time")?)?,
            step: Deserialize::from_value(field("step")?)?,
            integrator: Deserialize::from_value(field("integrator")?)?,
            cache: StepCache::default(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DriveThermalSpec;
    use units::Rpm;

    fn model() -> ThermalModel {
        ThermalModel::new(DriveThermalSpec::cheetah_15k3())
    }

    fn op() -> OperatingPoint {
        OperatingPoint::seeking(Rpm::new(15_000.0))
    }

    #[test]
    fn transient_converges_to_steady_state() {
        let m = model();
        let steady = m.steady_air_temp(op());
        let mut sim = TransientSim::from_ambient(&m);
        sim.run_to_steady(&m, op(), 0.001);
        assert!(
            (sim.temps().air - steady).abs().get() < 0.05,
            "transient {} vs steady {}",
            sim.temps().air,
            steady
        );
    }

    #[test]
    fn temperature_rises_monotonically_from_cold() {
        let m = model();
        let mut sim = TransientSim::from_ambient(&m);
        let mut prev = sim.temps().air;
        for _ in 0..100 {
            sim.advance(&m, op(), Seconds::new(30.0));
            let now = sim.temps().air;
            assert!(now >= prev, "cold-start warm-up must be monotone");
            prev = now;
        }
    }

    #[test]
    fn explicit_and_implicit_agree_at_small_steps() {
        let m = model();
        let mut implicit = TransientSim::from_ambient(&m)
            .with_step(Seconds::new(0.05))
            .expect("positive step");
        let mut explicit = TransientSim::from_ambient(&m)
            .with_step(Seconds::new(0.05))
            .expect("positive step")
            .with_integrator(Integrator::ForwardEuler);
        implicit.advance(&m, op(), Seconds::new(600.0));
        explicit.advance(&m, op(), Seconds::new(600.0));
        let diff = (implicit.temps().air - explicit.temps().air).abs().get();
        assert!(diff < 0.1, "schemes diverged by {diff} C");
    }

    #[test]
    fn cooling_transient_descends_to_new_steady() {
        let m = model();
        // Start hot (steady at high RPM), then drop the RPM.
        let hot = m.steady_state(OperatingPoint::seeking(Rpm::new(25_000.0)));
        let cool_op = OperatingPoint::idle_vcm(Rpm::new(10_000.0));
        let mut sim = TransientSim::with_initial(hot);
        sim.run_to_steady(&m, cool_op, 0.001);
        let target = m.steady_air_temp(cool_op);
        assert!((sim.temps().air - target).abs().get() < 0.05);
    }

    #[test]
    fn time_to_reach_is_consistent_with_advance() {
        let m = model();
        let target = Celsius::new(40.0);
        let mut sim = TransientSim::from_ambient(&m);
        let t = sim
            .time_to_reach(&m, op(), target)
            .expect("steady state exceeds 40 C");
        assert!(t.get() > 0.0);
        assert!(sim.temps().air >= target);
    }

    #[test]
    fn time_to_reach_unreachable_returns_none() {
        let m = model();
        let mut sim = TransientSim::from_ambient(&m);
        // A slow, idle spindle can never hit 100 C.
        let cold_op = OperatingPoint::idle_vcm(Rpm::new(5_000.0));
        assert!(sim.time_to_reach(&m, cold_op, Celsius::new(100.0)).is_none());
    }

    #[test]
    fn air_heats_quickly_then_crawls() {
        // The Figure 1 signature: several degrees in the first minute,
        // then a ~45-minute crawl to steady state.
        let m = model();
        let steady = m.steady_air_temp(op());
        let mut sim = TransientSim::from_ambient(&m);
        sim.advance(&m, op(), Seconds::new(60.0));
        let after_minute = sim.temps().air;
        assert!(after_minute.get() > 30.0, "air {after_minute}");
        assert!(
            after_minute < steady - units::TempDelta::new(2.0),
            "most of the rise is still ahead after one minute"
        );
        // Ten minutes in, the air is still crawling upward.
        sim.advance(&m, op(), Seconds::new(540.0));
        let after_ten = sim.temps().air;
        assert!(after_ten > after_minute);
        assert!(after_ten < steady);
    }

    #[test]
    fn with_step_rejects_non_positive_and_non_finite_steps() {
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let err = TransientSim::with_initial(NodeTemps::uniform(Celsius::new(28.0)))
                .with_step(Seconds::new(bad));
            assert!(matches!(err, Err(ThermalError::NonPositiveStep(_))), "{bad}");
        }
    }

    #[test]
    fn cached_factorization_is_bitwise_identical_to_fresh_solves() {
        let m = model();
        // Alternate operating points the way the DTM throttle loop does,
        // so the cache cycles between entries.
        let ops = [
            OperatingPoint::seeking(Rpm::new(24_534.0)),
            OperatingPoint::idle_vcm(Rpm::new(24_534.0)),
            OperatingPoint::new(Rpm::new(22_001.0), 0.4),
        ];
        let mut cached = TransientSim::from_ambient(&m);
        let mut naive = TransientSim::from_ambient(&m).with_step_cache(false);
        for i in 0..3_000 {
            let op = ops[i % ops.len()];
            cached.step(&m, op);
            naive.step(&m, op);
            let a = cached.temps().to_array();
            let b = naive.temps().to_array();
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.to_bits(), y.to_bits(), "step {i}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn step_cache_eviction_keeps_answers_exact() {
        let m = model();
        // More distinct operating points than cache slots.
        let ops: Vec<OperatingPoint> = (0..STEP_CACHE_CAP + 3)
            .map(|i| OperatingPoint::new(Rpm::new(12_000.0 + 1_000.0 * i as f64), 0.25))
            .collect();
        let mut cached = TransientSim::from_ambient(&m);
        let mut naive = TransientSim::from_ambient(&m).with_step_cache(false);
        for round in 0..4 {
            for op in &ops {
                cached.step(&m, *op);
                naive.step(&m, *op);
            }
            assert_eq!(cached.temps(), naive.temps(), "round {round}");
        }
    }

    #[test]
    fn serialization_shape_omits_the_cache() {
        let m = model();
        let mut sim = TransientSim::from_ambient(&m);
        sim.advance(&m, op(), Seconds::new(10.0));
        let value = sim.to_value();
        let obj = value.as_object().expect("object");
        let keys: Vec<&String> = obj.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, ["temps", "time", "step", "integrator"]);
        let back = TransientSim::from_value(&value).expect("round trip");
        assert_eq!(back, sim);
    }
}
