//! Transient (time-domain) integration of the thermal network.
//!
//! The paper integrates the finite-difference equations at 600 steps per
//! minute (0.1 s). We offer the same explicit scheme plus an
//! unconditionally stable backward-Euler scheme (the default): the
//! internal air node has a tiny heat capacity, so explicit integration is
//! only conditionally stable at small steps.

use crate::linalg::solve;
use crate::model::{NodeTemps, ThermalModel, NODES};
use crate::spec::OperatingPoint;
use serde::{Deserialize, Serialize};
use units::{Celsius, Seconds};

/// Time-integration scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Integrator {
    /// Backward (implicit) Euler: unconditionally stable, solves a 4×4
    /// system per step.
    #[default]
    BackwardEuler,
    /// Forward (explicit) Euler: the paper's scheme; stable only when
    /// the step is below each node's thermal time constant.
    ForwardEuler,
}

/// The paper's step size: 600 steps per minute.
pub(crate) const PAPER_STEP: Seconds = Seconds::new(0.1);

/// A transient simulation of one drive's temperatures.
///
/// # Examples
///
/// Reproduce the Figure 1 warm-up from ambient:
///
/// ```
/// use diskthermal::{DriveThermalSpec, OperatingPoint, ThermalModel, TransientSim};
/// use units::{Rpm, Seconds};
///
/// let model = ThermalModel::new(DriveThermalSpec::cheetah_15k3());
/// let mut sim = TransientSim::from_ambient(&model);
/// let op = OperatingPoint::seeking(Rpm::new(15_000.0));
/// sim.advance(&model, op, Seconds::new(60.0)); // one minute in
/// assert!(sim.temps().air.get() > 30.0); // already several degrees up
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransientSim {
    temps: NodeTemps,
    time: Seconds,
    step: Seconds,
    integrator: Integrator,
}

impl TransientSim {
    /// Starts a simulation with every node at the drive's ambient
    /// temperature (the cold-start condition of Figure 1).
    pub fn from_ambient(model: &ThermalModel) -> Self {
        Self::with_initial(NodeTemps::uniform(model.spec().ambient()))
    }

    /// Starts from explicit initial node temperatures.
    pub fn with_initial(temps: NodeTemps) -> Self {
        Self {
            temps,
            time: Seconds::ZERO,
            step: PAPER_STEP,
            integrator: Integrator::default(),
        }
    }

    /// Overrides the integration step (default 0.1 s, the paper's
    /// 600 steps/minute).
    ///
    /// # Panics
    ///
    /// Panics if the step is not positive.
    pub fn with_step(mut self, step: Seconds) -> Self {
        assert!(step.get() > 0.0, "integration step must be positive");
        self.step = step;
        self
    }

    /// Overrides the integration scheme.
    pub fn with_integrator(mut self, integrator: Integrator) -> Self {
        self.integrator = integrator;
        self
    }

    /// Current node temperatures.
    pub fn temps(&self) -> NodeTemps {
        self.temps
    }

    /// Current simulated time.
    pub fn time(&self) -> Seconds {
        self.time
    }

    /// Advances exactly one integration step at the given operating
    /// point.
    pub fn step(&mut self, model: &ThermalModel, op: OperatingPoint) {
        let dt = self.step.get();
        let (a, b) = model.assemble(op);
        let caps = model.capacities();
        let t = self.temps.to_array();

        let next = match self.integrator {
            Integrator::ForwardEuler => {
                let mut out = [0.0; NODES];
                for i in 0..NODES {
                    // C_i dT/dt = b_i - sum_j A_ij T_j
                    let flux: f64 = (0..NODES).map(|j| a[i][j] * t[j]).sum();
                    out[i] = t[i] + dt * (b[i] - flux) / caps[i].get();
                }
                out
            }
            Integrator::BackwardEuler => {
                // (C/dt + A) T_new = C/dt T_old + b
                let mut lhs = a;
                let mut rhs = b;
                for i in 0..NODES {
                    let c_dt = caps[i].get() / dt;
                    lhs[i][i] += c_dt;
                    rhs[i] += c_dt * t[i];
                }
                let x = solve(lhs, rhs).expect("implicit step matrix is SPD");
                [x[0], x[1], x[2], x[3]]
            }
        };

        self.temps = NodeTemps::from_array(next);
        self.time += self.step;
    }

    /// Advances by (at least) `duration`, in whole steps.
    pub fn advance(&mut self, model: &ThermalModel, op: OperatingPoint, duration: Seconds) {
        let steps = (duration.get() / self.step.get()).ceil() as u64;
        for _ in 0..steps {
            self.step(model, op);
        }
    }

    /// Runs until the air temperature changes by less than `tol` per
    /// minute of simulated time, returning the time taken to converge.
    ///
    /// A hard cap of 24 simulated hours guards against non-convergence.
    pub fn run_to_steady(
        &mut self,
        model: &ThermalModel,
        op: OperatingPoint,
        tol: f64,
    ) -> Seconds {
        let start = self.time;
        let cap = Seconds::new(24.0 * 3600.0);
        loop {
            let before = self.temps.air;
            self.advance(model, op, Seconds::new(60.0));
            let drift = (self.temps.air - before).abs().get();
            if drift < tol || self.time - start > cap {
                return self.time - start;
            }
        }
    }

    /// Advances until the air temperature reaches `target` (useful for
    /// the throttling experiments of §5.3), returning the elapsed time,
    /// or `None` if the operating point can never reach it (checked
    /// against the steady state) or 24 h elapse first.
    pub fn time_to_reach(
        &mut self,
        model: &ThermalModel,
        op: OperatingPoint,
        target: Celsius,
    ) -> Option<Seconds> {
        if self.temps.air == target {
            return Some(Seconds::ZERO);
        }
        let rising = self.temps.air < target;
        let steady = model.steady_air_temp(op);
        if rising && steady < target {
            return None;
        }
        if !rising && steady > target {
            return None;
        }
        let start = self.time;
        let cap = Seconds::new(24.0 * 3600.0);
        loop {
            self.step(model, op);
            let reached = if rising {
                self.temps.air >= target
            } else {
                self.temps.air <= target
            };
            if reached {
                return Some(self.time - start);
            }
            if self.time - start > cap {
                return None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DriveThermalSpec;
    use units::Rpm;

    fn model() -> ThermalModel {
        ThermalModel::new(DriveThermalSpec::cheetah_15k3())
    }

    fn op() -> OperatingPoint {
        OperatingPoint::seeking(Rpm::new(15_000.0))
    }

    #[test]
    fn transient_converges_to_steady_state() {
        let m = model();
        let steady = m.steady_air_temp(op());
        let mut sim = TransientSim::from_ambient(&m);
        sim.run_to_steady(&m, op(), 0.001);
        assert!(
            (sim.temps().air - steady).abs().get() < 0.05,
            "transient {} vs steady {}",
            sim.temps().air,
            steady
        );
    }

    #[test]
    fn temperature_rises_monotonically_from_cold() {
        let m = model();
        let mut sim = TransientSim::from_ambient(&m);
        let mut prev = sim.temps().air;
        for _ in 0..100 {
            sim.advance(&m, op(), Seconds::new(30.0));
            let now = sim.temps().air;
            assert!(now >= prev, "cold-start warm-up must be monotone");
            prev = now;
        }
    }

    #[test]
    fn explicit_and_implicit_agree_at_small_steps() {
        let m = model();
        let mut implicit = TransientSim::from_ambient(&m).with_step(Seconds::new(0.05));
        let mut explicit = TransientSim::from_ambient(&m)
            .with_step(Seconds::new(0.05))
            .with_integrator(Integrator::ForwardEuler);
        implicit.advance(&m, op(), Seconds::new(600.0));
        explicit.advance(&m, op(), Seconds::new(600.0));
        let diff = (implicit.temps().air - explicit.temps().air).abs().get();
        assert!(diff < 0.1, "schemes diverged by {diff} C");
    }

    #[test]
    fn cooling_transient_descends_to_new_steady() {
        let m = model();
        // Start hot (steady at high RPM), then drop the RPM.
        let hot = m.steady_state(OperatingPoint::seeking(Rpm::new(25_000.0)));
        let cool_op = OperatingPoint::idle_vcm(Rpm::new(10_000.0));
        let mut sim = TransientSim::with_initial(hot);
        sim.run_to_steady(&m, cool_op, 0.001);
        let target = m.steady_air_temp(cool_op);
        assert!((sim.temps().air - target).abs().get() < 0.05);
    }

    #[test]
    fn time_to_reach_is_consistent_with_advance() {
        let m = model();
        let target = Celsius::new(40.0);
        let mut sim = TransientSim::from_ambient(&m);
        let t = sim
            .time_to_reach(&m, op(), target)
            .expect("steady state exceeds 40 C");
        assert!(t.get() > 0.0);
        assert!(sim.temps().air >= target);
    }

    #[test]
    fn time_to_reach_unreachable_returns_none() {
        let m = model();
        let mut sim = TransientSim::from_ambient(&m);
        // A slow, idle spindle can never hit 100 C.
        let cold_op = OperatingPoint::idle_vcm(Rpm::new(5_000.0));
        assert!(sim.time_to_reach(&m, cold_op, Celsius::new(100.0)).is_none());
    }

    #[test]
    fn air_heats_quickly_then_crawls() {
        // The Figure 1 signature: several degrees in the first minute,
        // then a ~45-minute crawl to steady state.
        let m = model();
        let steady = m.steady_air_temp(op());
        let mut sim = TransientSim::from_ambient(&m);
        sim.advance(&m, op(), Seconds::new(60.0));
        let after_minute = sim.temps().air;
        assert!(after_minute.get() > 30.0, "air {after_minute}");
        assert!(
            after_minute < steady - units::TempDelta::new(2.0),
            "most of the rise is still ahead after one minute"
        );
        // Ten minutes in, the air is still crawling upward.
        sim.advance(&m, op(), Seconds::new(540.0));
        let after_ten = sim.temps().air;
        assert!(after_ten > after_minute);
        assert!(after_ten < steady);
    }
}
