//! The thermal envelope and searches against it.

use crate::model::ThermalModel;
use crate::spec::OperatingPoint;
use units::{Celsius, Rpm};

/// The thermal envelope used throughout the paper's roadmap: the
/// steady-state internal-air temperature of the validated Cheetah 15K.3
/// model with SPM and VCM always on, electronics excluded — 45.22 °C.
///
/// (Adding the ~10 °C that on-board electronics contribute recovers the
/// drive's rated 55 °C maximum operating temperature.)
pub const THERMAL_ENVELOPE: Celsius = Celsius::new(45.22);

/// Search controls for the envelope inversions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnvelopeSearch {
    /// Lower RPM bracket.
    pub min_rpm: Rpm,
    /// Upper RPM bracket.
    pub max_rpm: Rpm,
    /// Temperature tolerance of the bisection, in K.
    pub tolerance: f64,
}

impl Default for EnvelopeSearch {
    fn default() -> Self {
        Self {
            min_rpm: Rpm::new(1_000.0),
            max_rpm: Rpm::new(500_000.0),
            tolerance: 1e-3,
        }
    }
}

/// The highest spindle speed at which the drive's steady-state air
/// temperature stays at or below `envelope`, holding the operating
/// point's seek duty fixed.
///
/// Returns `None` when even the minimum speed exceeds the envelope (the
/// configuration is thermally infeasible). If the envelope is not
/// reached even at the maximum bracket, the maximum is returned.
///
/// # Examples
///
/// ```
/// use diskthermal::{
///     max_rpm_within_envelope, DriveThermalSpec, EnvelopeSearch, OperatingPoint,
///     ThermalModel, THERMAL_ENVELOPE,
/// };
/// use units::Rpm;
///
/// let model = ThermalModel::new(DriveThermalSpec::cheetah_15k3());
/// let max = max_rpm_within_envelope(&model, 1.0, THERMAL_ENVELOPE, EnvelopeSearch::default())
///     .expect("a 2.6\" single-platter drive is feasible");
/// // §5.3: the envelope admits ~15,020 RPM with the VCM always on.
/// assert!((max.get() - 15_020.0).abs() < 400.0);
/// ```
pub fn max_rpm_within_envelope(
    model: &ThermalModel,
    vcm_duty: f64,
    envelope: Celsius,
    search: EnvelopeSearch,
) -> Option<Rpm> {
    let temp_at = |rpm: Rpm| model.steady_air_temp(OperatingPoint::new(rpm, vcm_duty));

    if temp_at(search.min_rpm) > envelope {
        return None;
    }
    if temp_at(search.max_rpm) <= envelope {
        return Some(search.max_rpm);
    }

    let (mut lo, mut hi) = (search.min_rpm.get(), search.max_rpm.get());
    // Steady air temperature is strictly monotone in RPM, so bisection
    // converges to the unique crossing.
    while hi - lo > 0.5 {
        let mid = 0.5 * (lo + hi);
        let t = temp_at(Rpm::new(mid));
        if t > envelope {
            hi = mid;
        } else {
            lo = mid;
            if (envelope - t).get() < search.tolerance {
                break;
            }
        }
    }
    Some(Rpm::new(lo))
}

/// The external ambient temperature at which the drive reaches exactly
/// `envelope` at the given operating point — the "cooling budget" the
/// paper grants multi-platter configurations so all platter counts start
/// the roadmap at the same envelope (§4).
///
/// The network is linear in temperature, so the answer is exact:
/// lowering ambient by ΔT lowers every node by ΔT.
pub fn ambient_for_envelope(
    model: &ThermalModel,
    op: OperatingPoint,
    envelope: Celsius,
) -> Celsius {
    let at_current = model.steady_air_temp(op);
    let excess = at_current - envelope;
    model.spec().ambient() - excess
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DriveThermalSpec;
    use units::Inches;

    #[test]
    fn envelope_value_matches_paper() {
        assert!((THERMAL_ENVELOPE.get() - 45.22).abs() < 1e-12);
    }

    #[test]
    fn max_rpm_is_tight_against_envelope() {
        let m = ThermalModel::new(DriveThermalSpec::cheetah_15k3());
        let max = max_rpm_within_envelope(&m, 1.0, THERMAL_ENVELOPE, EnvelopeSearch::default())
            .unwrap();
        let at_max = m.steady_air_temp(OperatingPoint::seeking(max));
        assert!(at_max <= THERMAL_ENVELOPE);
        // One percent faster breaks the envelope.
        let above = m.steady_air_temp(OperatingPoint::seeking(max * 1.01));
        assert!(above > THERMAL_ENVELOPE);
    }

    #[test]
    fn vcm_off_admits_higher_rpm() {
        let m = ThermalModel::new(DriveThermalSpec::cheetah_15k3());
        let with_vcm =
            max_rpm_within_envelope(&m, 1.0, THERMAL_ENVELOPE, EnvelopeSearch::default())
                .unwrap();
        let without =
            max_rpm_within_envelope(&m, 0.0, THERMAL_ENVELOPE, EnvelopeSearch::default())
                .unwrap();
        assert!(
            without.get() > with_vcm.get() + 3_000.0,
            "thermal slack should be worth thousands of RPM: {with_vcm} vs {without}"
        );
    }

    #[test]
    fn smaller_platter_admits_higher_rpm() {
        let big = ThermalModel::new(DriveThermalSpec::new(Inches::new(2.6), 1));
        let small = ThermalModel::new(DriveThermalSpec::new(Inches::new(1.6), 1));
        let s = EnvelopeSearch::default();
        let rpm_big = max_rpm_within_envelope(&big, 1.0, THERMAL_ENVELOPE, s).unwrap();
        let rpm_small = max_rpm_within_envelope(&small, 1.0, THERMAL_ENVELOPE, s).unwrap();
        assert!(rpm_small > rpm_big);
    }

    #[test]
    fn infeasible_when_floor_already_violates() {
        let m = ThermalModel::new(DriveThermalSpec::new(Inches::new(2.6), 4));
        // A 4-platter stack at some absurdly low envelope.
        let result = max_rpm_within_envelope(
            &m,
            1.0,
            Celsius::new(28.1),
            EnvelopeSearch::default(),
        );
        assert!(result.is_none());
    }

    #[test]
    fn ambient_credit_is_exact_by_linearity() {
        let m = ThermalModel::new(DriveThermalSpec::new(Inches::new(2.6), 4));
        let op = OperatingPoint::seeking(Rpm::new(15_020.0));
        let amb = ambient_for_envelope(&m, op, THERMAL_ENVELOPE);
        let cooled = ThermalModel::new(
            DriveThermalSpec::new(Inches::new(2.6), 4).with_ambient(amb),
        );
        let t = cooled.steady_air_temp(op);
        assert!((t - THERMAL_ENVELOPE).abs().get() < 1e-9);
    }
}
