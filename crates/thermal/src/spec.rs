//! Drive description and operating point for the thermal model.

use crate::error::ThermalError;
use crate::sources::vcm_power_for_platter;
use serde::{Deserialize, Serialize};
use units::{Celsius, Inches, Power, Rpm};

/// Enclosure form factor, which sets the case surface area available for
/// heat rejection and the internal air volume.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum FormFactor {
    /// Standard 3.5″ enclosure (5.75″ × 4.0″ × 1.0″), the baseline of the
    /// paper's roadmap.
    #[default]
    Standard35,
    /// 2.5″ enclosure (3.96″ × 2.75″ × 0.75″, per the StorageReview
    /// reference guide cited in §4.2.2) — still large enough to house a
    /// 2.6″ platter.
    Small25,
}

impl FormFactor {
    /// Exterior dimensions `(length, width, height)` in inches.
    pub fn dimensions(self) -> (Inches, Inches, Inches) {
        match self {
            Self::Standard35 => (Inches::new(5.75), Inches::new(4.0), Inches::new(1.0)),
            Self::Small25 => (Inches::new(3.96), Inches::new(2.75), Inches::new(0.75)),
        }
    }

    /// Total case surface area in square inches (all six faces).
    pub fn case_area(self) -> f64 {
        let (l, w, h) = self.dimensions();
        let (l, w, h) = (l.get(), w.get(), h.get());
        2.0 * (l * w + l * h + w * h)
    }

    /// Interior air volume in cubic meters (the enclosure shell is thin;
    /// platters and mechanics displace roughly half the box).
    pub fn air_volume_m3(self) -> f64 {
        let (l, w, h) = self.dimensions();
        let m3 = l.to_meters() * w.to_meters() * h.to_meters();
        0.5 * m3
    }

    /// Case area relative to the 3.5″ baseline; scales every
    /// enclosure-coupled conductance in the model.
    pub fn area_ratio(self) -> f64 {
        self.case_area() / Self::Standard35.case_area()
    }

    /// Largest platter the enclosure can physically house.
    pub fn max_platter(self) -> Inches {
        match self {
            Self::Standard35 => Inches::new(3.7),
            Self::Small25 => Inches::new(2.6),
        }
    }
}

impl core::fmt::Display for FormFactor {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Standard35 => write!(f, "3.5\" form factor"),
            Self::Small25 => write!(f, "2.5\" form factor"),
        }
    }
}

/// Physical description of a drive for thermal purposes.
///
/// # Examples
///
/// ```
/// use diskthermal::DriveThermalSpec;
/// use units::{Celsius, Inches};
///
/// let spec = DriveThermalSpec::new(Inches::new(2.1), 2)
///     .with_ambient(Celsius::new(23.0)); // 5 C cooler machine room
/// assert_eq!(spec.platters(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriveThermalSpec {
    platter_diameter: Inches,
    platters: u32,
    form_factor: FormFactor,
    vcm_power: Power,
    ambient: Celsius,
}

impl DriveThermalSpec {
    /// Maximum operating wet-bulb external temperature assumed throughout
    /// the paper: 28 °C.
    pub const DEFAULT_AMBIENT: Celsius = Celsius::new(28.0);

    /// Creates a spec with the default 3.5″ enclosure, the VCM power
    /// implied by the platter-size correlation, and 28 °C ambient.
    ///
    /// # Panics
    ///
    /// Panics if `platters == 0` or the diameter is not positive, or if
    /// the platter does not fit the default enclosure; use
    /// [`Self::try_new`] to handle those as errors.
    pub fn new(platter_diameter: Inches, platters: u32) -> Self {
        Self::try_new(platter_diameter, platters).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`Self::new`].
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::BadSpec`] when `platters == 0`, the
    /// diameter is not positive and finite, or the platter does not fit
    /// the default 3.5″ enclosure.
    pub fn try_new(platter_diameter: Inches, platters: u32) -> Result<Self, ThermalError> {
        if platters == 0 {
            return Err(ThermalError::BadSpec("a drive needs at least one platter"));
        }
        if platter_diameter.get() <= 0.0 || !platter_diameter.is_finite() {
            return Err(ThermalError::BadSpec("platter diameter must be positive"));
        }
        let ff = FormFactor::Standard35;
        if platter_diameter > ff.max_platter() {
            return Err(ThermalError::BadSpec(
                "platter does not fit a 3.5\" enclosure",
            ));
        }
        Ok(Self {
            platter_diameter,
            platters,
            form_factor: ff,
            vcm_power: vcm_power_for_platter(platter_diameter),
            ambient: Self::DEFAULT_AMBIENT,
        })
    }

    /// The Seagate Cheetah 15K.3 configuration the paper disassembled and
    /// validated against: one 2.6″ platter in a 3.5″ enclosure, VCM power
    /// measured at 3.9 W, 28 °C ambient.
    pub fn cheetah_15k3() -> Self {
        Self::new(Inches::new(2.6), 1).with_vcm_power(Power::new(3.9))
    }

    /// Replaces the enclosure form factor.
    ///
    /// # Panics
    ///
    /// Panics if the platter no longer fits.
    pub fn with_form_factor(mut self, form_factor: FormFactor) -> Self {
        assert!(
            self.platter_diameter <= form_factor.max_platter(),
            "platter does not fit the requested enclosure"
        );
        self.form_factor = form_factor;
        self
    }

    /// Overrides the VCM power (e.g. a measured value).
    pub fn with_vcm_power(mut self, vcm_power: Power) -> Self {
        self.vcm_power = vcm_power;
        self
    }

    /// Sets the external ambient temperature the cooling system holds.
    pub fn with_ambient(mut self, ambient: Celsius) -> Self {
        self.ambient = ambient;
        self
    }

    /// Platter media diameter.
    pub fn platter_diameter(&self) -> Inches {
        self.platter_diameter
    }

    /// Number of platters in the stack.
    pub fn platters(&self) -> u32 {
        self.platters
    }

    /// Enclosure form factor.
    pub fn form_factor(&self) -> FormFactor {
        self.form_factor
    }

    /// Voice-coil motor power while seeking.
    pub fn vcm_power(&self) -> Power {
        self.vcm_power
    }

    /// External ambient (wet-bulb) temperature.
    pub fn ambient(&self) -> Celsius {
        self.ambient
    }
}

impl core::fmt::Display for DriveThermalSpec {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{:.1}\" x{} in {}, VCM {:.2}, ambient {:.1}",
            self.platter_diameter.get(),
            self.platters,
            self.form_factor,
            self.vcm_power,
            self.ambient
        )
    }
}

/// An operating point: spindle speed and seek activity.
///
/// # Examples
///
/// ```
/// use diskthermal::OperatingPoint;
/// use units::Rpm;
///
/// // Worst case: the actuator never rests (the envelope-setting case).
/// let busy = OperatingPoint::seeking(Rpm::new(15_000.0));
/// assert_eq!(busy.vcm_duty(), 1.0);
///
/// // Sequential streaming or idling: VCM off.
/// let calm = OperatingPoint::idle_vcm(Rpm::new(15_000.0));
/// assert_eq!(calm.vcm_duty(), 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperatingPoint {
    rpm: Rpm,
    vcm_duty: f64,
}

impl OperatingPoint {
    /// Spinning at `rpm` with the VCM continuously active (the
    /// worst-case assumption that defines the thermal envelope).
    pub fn seeking(rpm: Rpm) -> Self {
        Self::new(rpm, 1.0)
    }

    /// Spinning at `rpm` with the VCM off (no seeks).
    pub fn idle_vcm(rpm: Rpm) -> Self {
        Self::new(rpm, 0.0)
    }

    /// Spinning at `rpm` with the VCM active a fraction `vcm_duty` of
    /// the time.
    ///
    /// # Panics
    ///
    /// Panics if `vcm_duty` is outside `[0, 1]` or `rpm` is negative;
    /// use [`Self::try_new`] to handle those as errors.
    pub fn new(rpm: Rpm, vcm_duty: f64) -> Self {
        Self::try_new(rpm, vcm_duty).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`Self::new`].
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::BadSpec`] when `vcm_duty` falls outside
    /// `[0, 1]` or `rpm` is negative or non-finite.
    pub fn try_new(rpm: Rpm, vcm_duty: f64) -> Result<Self, ThermalError> {
        if !(0.0..=1.0).contains(&vcm_duty) {
            return Err(ThermalError::BadSpec("vcm duty outside [0, 1]"));
        }
        if rpm.get() < 0.0 || !rpm.is_finite() {
            return Err(ThermalError::BadSpec(
                "spindle speed must be non-negative and finite",
            ));
        }
        Ok(Self { rpm, vcm_duty })
    }

    /// Spindle speed.
    pub fn rpm(&self) -> Rpm {
        self.rpm
    }

    /// Fraction of time the VCM is drawing power.
    pub fn vcm_duty(&self) -> f64 {
        self.vcm_duty
    }

    /// Returns the same point at a different spindle speed.
    pub fn at_rpm(&self, rpm: Rpm) -> Self {
        Self::new(rpm, self.vcm_duty)
    }
}

impl core::fmt::Display for OperatingPoint {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{:.0} RPM, VCM {:.0}%",
            self.rpm.get(),
            self.vcm_duty * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn form_factor_areas() {
        // 3.5" FF: 2*(5.75*4 + 5.75*1 + 4*1) = 2*32.75 = 65.5 in^2.
        assert!((FormFactor::Standard35.case_area() - 65.5).abs() < 1e-9);
        // The 2.5" enclosure rejects less heat.
        assert!(FormFactor::Small25.area_ratio() < 0.6);
        assert!((FormFactor::Standard35.area_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn small_enclosure_still_houses_26_platter() {
        // §4.2.2's whole point: a 2.6" platter in a 2.5" case.
        let spec = DriveThermalSpec::new(Inches::new(2.6), 1)
            .with_form_factor(FormFactor::Small25);
        assert_eq!(spec.form_factor(), FormFactor::Small25);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_platter_rejected() {
        let _ = DriveThermalSpec::new(Inches::new(3.3), 1)
            .with_form_factor(FormFactor::Small25);
    }

    #[test]
    fn cheetah_spec_matches_paper() {
        let spec = DriveThermalSpec::cheetah_15k3();
        assert_eq!(spec.platter_diameter(), Inches::new(2.6));
        assert_eq!(spec.platters(), 1);
        assert_eq!(spec.vcm_power(), Power::new(3.9));
        assert_eq!(spec.ambient(), Celsius::new(28.0));
    }

    #[test]
    fn vcm_power_defaults_from_correlation() {
        let spec = DriveThermalSpec::new(Inches::new(2.1), 1);
        assert!((spec.vcm_power().get() - 2.28).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn bad_duty_rejected() {
        let _ = OperatingPoint::new(Rpm::new(10_000.0), 1.5);
    }

    #[test]
    fn operating_point_helpers() {
        let op = OperatingPoint::seeking(Rpm::new(20_000.0));
        let slower = op.at_rpm(Rpm::new(15_000.0));
        assert_eq!(slower.vcm_duty(), 1.0);
        assert_eq!(slower.rpm(), Rpm::new(15_000.0));
    }
}
