//! Thermal sensor emulation.
//!
//! The paper notes that "there are disks in the market today that are
//! equipped with temperature sensors" (the IBM Drive-TIP lineage) — but
//! a real DTM controller does not see the model's continuous state: it
//! sees a SMART-style reading, quantized to whole degrees and refreshed
//! at a polling interval. This module wraps the model temperature in
//! that observation channel so control policies can be evaluated
//! against realistic sensing.

use serde::{Deserialize, Serialize};
use units::{Celsius, Seconds, TempDelta};

/// A quantized, periodically-sampled temperature sensor.
///
/// # Examples
///
/// ```
/// use diskthermal::TempSensor;
/// use units::{Celsius, Seconds};
///
/// let mut sensor = TempSensor::smart_style();
/// let r = sensor.read(Seconds::ZERO, Celsius::new(45.87));
/// assert_eq!(r.get(), 45.0); // whole-degree quantization
///
/// // Within the polling interval the reading is held.
/// let r = sensor.read(Seconds::new(0.4), Celsius::new(46.9));
/// assert_eq!(r.get(), 45.0);
///
/// // After the interval it refreshes.
/// let r = sensor.read(Seconds::new(1.2), Celsius::new(46.9));
/// assert_eq!(r.get(), 46.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TempSensor {
    /// Reading granularity (SMART reports whole degrees).
    quantization: f64,
    /// Minimum time between refreshes.
    sample_interval: Seconds,
    /// Fixed calibration bias added to every reading.
    bias: TempDelta,
    last_sample: Option<(Seconds, Celsius)>,
}

impl TempSensor {
    /// A SMART-style sensor: 1 °C quantization, 1 s polling, no bias.
    pub fn smart_style() -> Self {
        Self::new(1.0, Seconds::new(1.0), TempDelta::ZERO)
    }

    /// An ideal sensor: continuous, instantaneous, unbiased (useful as
    /// the control experiment).
    pub fn ideal() -> Self {
        Self::new(0.0, Seconds::ZERO, TempDelta::ZERO)
    }

    /// Builds a sensor with explicit characteristics.
    ///
    /// # Panics
    ///
    /// Panics if `quantization` is negative or the interval is negative.
    pub fn new(quantization: f64, sample_interval: Seconds, bias: TempDelta) -> Self {
        assert!(quantization >= 0.0, "negative quantization");
        assert!(sample_interval.get() >= 0.0, "negative sample interval");
        Self {
            quantization,
            sample_interval,
            bias,
            last_sample: None,
        }
    }

    /// Observes the true temperature at time `now`, returning what the
    /// controller would see: the previous reading until the polling
    /// interval elapses, then the biased, quantized current value.
    pub fn read(&mut self, now: Seconds, actual: Celsius) -> Celsius {
        if let Some((at, held)) = self.last_sample {
            if (now - at).get() < self.sample_interval.get() {
                return held;
            }
        }
        let biased = actual + self.bias;
        let reading = if self.quantization > 0.0 {
            Celsius::new((biased.get() / self.quantization).floor() * self.quantization)
        } else {
            biased
        };
        self.last_sample = Some((now, reading));
        reading
    }

    /// Worst-case under-reporting of this sensor: quantization floor
    /// plus any negative bias. A controller must trip at least this far
    /// below the envelope to guarantee the true temperature respects it
    /// (staleness adds rate × interval on top).
    pub fn max_under_report(&self) -> TempDelta {
        TempDelta::new(self.quantization + (-self.bias.get()).max(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_sensor_is_transparent() {
        let mut s = TempSensor::ideal();
        for (t, v) in [(0.0, 45.217), (0.1, 46.9), (0.2, 44.0)] {
            let r = s.read(Seconds::new(t), Celsius::new(v));
            assert_eq!(r.get(), v);
        }
    }

    #[test]
    fn quantization_floors() {
        let mut s = TempSensor::new(1.0, Seconds::ZERO, TempDelta::ZERO);
        assert_eq!(s.read(Seconds::ZERO, Celsius::new(45.99)).get(), 45.0);
        assert_eq!(s.read(Seconds::new(1.0), Celsius::new(46.0)).get(), 46.0);
    }

    #[test]
    fn readings_are_held_between_polls() {
        let mut s = TempSensor::smart_style();
        let first = s.read(Seconds::ZERO, Celsius::new(40.0));
        // The temperature spikes but the sensor has not refreshed.
        let held = s.read(Seconds::new(0.9), Celsius::new(50.0));
        assert_eq!(first, held);
        let fresh = s.read(Seconds::new(1.0), Celsius::new(50.0));
        assert_eq!(fresh.get(), 50.0);
    }

    #[test]
    fn bias_shifts_readings() {
        let mut cold = TempSensor::new(0.0, Seconds::ZERO, TempDelta::new(-2.0));
        assert_eq!(cold.read(Seconds::ZERO, Celsius::new(45.0)).get(), 43.0);
        assert!((cold.max_under_report().get() - 2.0).abs() < 1e-12);

        let s = TempSensor::smart_style();
        assert!((s.max_under_report().get() - 1.0).abs() < 1e-12);
    }
}
