//! Benchmark-only reproduction of the pre-factorization solver path.
//!
//! `lab bench` uses this as its "before" baseline: the backward-Euler
//! step the way the kernel used to take it — heap-allocated matrices
//! rebuilt, and eliminated from scratch, on every integration step.
//! Hidden from the public API; nothing outside the benchmarks should
//! ever call it.

use crate::model::{ThermalModel, NODES};
use crate::spec::OperatingPoint;

/// One backward-Euler step over heap vectors with one-shot Gaussian
/// elimination — the original kernel, kept verbatim for comparison.
pub fn heap_backward_euler_step(
    model: &ThermalModel,
    op: OperatingPoint,
    dt: f64,
    temps: [f64; NODES],
) -> [f64; NODES] {
    let (a4, b4) = model.assemble(op);
    let caps = model.capacities();
    let mut a: Vec<Vec<f64>> = a4.iter().map(|row| row.to_vec()).collect();
    let mut b: Vec<f64> = b4.to_vec();
    for i in 0..NODES {
        let c_dt = caps[i].get() / dt;
        a[i][i] += c_dt;
        b[i] += c_dt * temps[i];
    }
    let x = heap_solve(a, b).expect("implicit step matrix is SPD");
    [x[0], x[1], x[2], x[3]]
}

/// The heap-based one-shot solver this crate used before the
/// stack-array [`crate::linalg`] rewrite, byte for byte.
fn heap_solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        let pivot_row = (col..n)
            .max_by(|&i, &j| {
                a[i][col]
                    .abs()
                    .partial_cmp(&a[j][col].abs())
                    .expect("matrix entries are finite")
            })
            .expect("non-empty column");
        if a[pivot_row][col].abs() < 1e-300 {
            return None;
        }
        a.swap(col, pivot_row);
        b.swap(col, pivot_row);

        let pivot = a[col][col];
        for row in col + 1..n {
            let factor = a[row][col] / pivot;
            if factor == 0.0 {
                continue;
            }
            let (head, tail) = a.split_at_mut(row);
            let (pivot_row_data, target_row) = (&head[col], &mut tail[0]);
            for (t, p) in target_row[col..n].iter_mut().zip(&pivot_row_data[col..n]) {
                *t -= factor * p;
            }
            b[row] -= factor * b[col];
        }
    }

    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in row + 1..n {
            acc -= a[row][k] * x[k];
        }
        x[row] = acc / a[row][row];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DriveThermalSpec;
    use crate::transient::TransientSim;
    use units::{Rpm, Seconds};

    /// The baseline must agree bitwise with the production kernel —
    /// otherwise the benchmark compares different computations.
    #[test]
    fn heap_baseline_matches_production_kernel_bitwise() {
        let model = ThermalModel::new(DriveThermalSpec::cheetah_15k3());
        let op = OperatingPoint::seeking(Rpm::new(15_000.0));
        let dt = 0.1;
        let mut sim = TransientSim::from_ambient(&model)
            .with_step(Seconds::new(dt))
            .expect("constant step is positive");
        let mut heap_temps = sim.temps().to_array();
        for _ in 0..200 {
            sim.step(&model, op);
            heap_temps = heap_backward_euler_step(&model, op, dt, heap_temps);
            let fast = sim.temps().to_array();
            for (h, f) in heap_temps.iter().zip(&fast) {
                assert_eq!(h.to_bits(), f.to_bits(), "{h} vs {f}");
            }
        }
    }
}
