//! The four-node thermal network: assembly and steady-state solution.

use crate::cache::{steady_or_insert, SteadyKey};
use crate::linalg::solve;
use crate::params::ThermalParams;
use crate::sources::viscous_dissipation;
use crate::spec::{DriveThermalSpec, FormFactor, OperatingPoint};
use serde::{Deserialize, Serialize};
use units::{Celsius, HeatCapacity, Power, ThermalConductance};

/// Number of thermal nodes.
pub(crate) const NODES: usize = 4;

/// Node indices.
pub(crate) const AIR: usize = 0;
pub(crate) const SPINDLE: usize = 1;
pub(crate) const BASE: usize = 2;
pub(crate) const VCM: usize = 3;

/// Specific heat of aluminium, J/(kg·K) — platters, hub, arms and case
/// castings are all modeled as aluminium (§3.3).
const C_ALUMINIUM: f64 = 896.0;

/// Density of aluminium, kg/m³.
const RHO_ALUMINIUM: f64 = 2700.0;

/// Density and specific heat of air at ~40 °C.
const RHO_AIR: f64 = 1.127;
const C_AIR: f64 = 1007.0;

/// Platter substrate thickness in meters (~0.05″, measured by the paper
/// with vernier calipers on the Cheetah 15K.3).
const PLATTER_THICKNESS_M: f64 = 0.05 * 0.0254;

/// Spindle hub mass in kg.
const HUB_MASS_KG: f64 = 0.030;

/// Base + cover casting mass for the 3.5″ enclosure, kg.
const CASE_MASS_KG: f64 = 0.25;

/// Actuator (VCM magnets + coil + arms) mass, kg.
const VCM_MASS_KG: f64 = 0.05;

/// Temperatures of the four nodes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeTemps {
    /// Internal drive air — the temperature the envelope constrains.
    pub air: Celsius,
    /// Spindle-motor assembly: hub and platter stack.
    pub spindle: Celsius,
    /// Base and cover casting.
    pub base: Celsius,
    /// Voice-coil motor and disk arms.
    pub vcm: Celsius,
}

impl NodeTemps {
    /// All four nodes at the same temperature (the transient initial
    /// condition: everything starts at ambient).
    pub fn uniform(t: Celsius) -> Self {
        Self {
            air: t,
            spindle: t,
            base: t,
            vcm: t,
        }
    }

    pub(crate) fn to_array(self) -> [f64; NODES] {
        [
            self.air.get(),
            self.spindle.get(),
            self.base.get(),
            self.vcm.get(),
        ]
    }

    pub(crate) fn from_array(a: [f64; NODES]) -> Self {
        Self {
            air: Celsius::new(a[AIR]),
            spindle: Celsius::new(a[SPINDLE]),
            base: Celsius::new(a[BASE]),
            vcm: Celsius::new(a[VCM]),
        }
    }

    /// The hottest node.
    pub fn hottest(&self) -> Celsius {
        self.air.max(self.spindle).max(self.base).max(self.vcm)
    }
}

impl core::fmt::Display for NodeTemps {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "air {:.2}, spindle {:.2}, base {:.2}, vcm {:.2}",
            self.air, self.spindle, self.base, self.vcm
        )
    }
}

/// Heat generated at an operating point, by source.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerBreakdown {
    /// Air shear on the platter stack, deposited in the internal air.
    pub viscous: Power,
    /// Spindle-motor electrical loss working against that drag.
    pub spm_loss: Power,
    /// Bearing friction, deposited in the spindle assembly.
    pub bearing: Power,
    /// Voice-coil power (scaled by seek duty), deposited in the actuator.
    pub vcm: Power,
}

impl PowerBreakdown {
    /// Total heat entering the drive.
    pub fn total(&self) -> Power {
        self.viscous + self.spm_loss + self.bearing + self.vcm
    }
}

/// Pairwise conductances of the network at an operating point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Conductances {
    pub(crate) spindle_air: ThermalConductance,
    pub(crate) air_base: ThermalConductance,
    pub(crate) vcm_air: ThermalConductance,
    pub(crate) vcm_base: ThermalConductance,
    pub(crate) spindle_base: ThermalConductance,
    pub(crate) base_ambient: ThermalConductance,
}

impl Conductances {
    /// Spindle/platter stack ↔ internal air convection.
    pub fn spindle_air(&self) -> ThermalConductance {
        self.spindle_air
    }

    /// Internal air ↔ base/cover convection.
    pub fn air_base(&self) -> ThermalConductance {
        self.air_base
    }

    /// Actuator ↔ internal air convection.
    pub fn vcm_air(&self) -> ThermalConductance {
        self.vcm_air
    }

    /// Actuator ↔ base conduction (mounting).
    pub fn vcm_base(&self) -> ThermalConductance {
        self.vcm_base
    }

    /// Spindle ↔ base conduction (bearing cartridge).
    pub fn spindle_base(&self) -> ThermalConductance {
        self.spindle_base
    }

    /// Base ↔ external ambient (case conduction + fan-driven external
    /// convection).
    pub fn base_ambient(&self) -> ThermalConductance {
        self.base_ambient
    }
}

/// The assembled thermal model of one drive.
///
/// # Examples
///
/// ```
/// use diskthermal::{DriveThermalSpec, OperatingPoint, ThermalModel};
/// use units::Rpm;
///
/// let model = ThermalModel::new(DriveThermalSpec::cheetah_15k3());
/// let op = OperatingPoint::seeking(Rpm::new(15_000.0));
/// // Energy balance: at steady state, the heat crossing the enclosure
/// // equals the heat generated inside.
/// let t = model.steady_state(op);
/// assert!(t.air > model.spec().ambient());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThermalModel {
    spec: DriveThermalSpec,
    params: ThermalParams,
}

impl ThermalModel {
    /// Builds a model with the calibrated default parameters.
    pub fn new(spec: DriveThermalSpec) -> Self {
        Self::with_params(spec, ThermalParams::default())
    }

    /// Builds a model with explicit parameters (used by the calibration
    /// harness and sensitivity studies).
    ///
    /// # Panics
    ///
    /// Panics if the parameters are not physical (non-positive or
    /// non-finite coefficients).
    pub fn with_params(spec: DriveThermalSpec, params: ThermalParams) -> Self {
        assert!(params.is_physical(), "thermal parameters must be positive");
        Self { spec, params }
    }

    /// The drive description.
    pub fn spec(&self) -> &DriveThermalSpec {
        &self.spec
    }

    /// The coefficient set in use.
    pub fn params(&self) -> &ThermalParams {
        &self.params
    }

    /// Heat sources at an operating point.
    pub fn power_breakdown(&self, op: OperatingPoint) -> PowerBreakdown {
        let viscous = viscous_dissipation(
            self.spec.platter_diameter(),
            self.spec.platters(),
            op.rpm(),
        );
        let rel_rpm = op.rpm().get() / ThermalParams::REF_RPM;
        PowerBreakdown {
            viscous,
            spm_loss: viscous * self.params.beta_spm_loss,
            bearing: Power::new(self.params.p_bearing_ref * rel_rpm),
            vcm: self.spec.vcm_power() * op.vcm_duty(),
        }
    }

    /// Pairwise conductances at an operating point.
    pub fn conductances(&self, op: OperatingPoint) -> Conductances {
        let p = &self.params;
        let rel_rpm = op.rpm().get() / ThermalParams::REF_RPM;
        let rel_d = self.spec.platter_diameter().get() / ThermalParams::REF_DIAMETER;
        let area = self.spec.form_factor().area_ratio();

        // Rotating-disk convection: h ~ Re^0.8, Re = omega r^2 / nu, and
        // wetted area ~ n d^2.
        let spindle_air = p.g_spindle_air
            * self.spec.platters() as f64
            * rel_d.powi(2)
            * (rel_rpm * rel_d.powi(2)).powf(0.8);

        // Case-interior convection driven by the air circulation the
        // platters entrain; calibrated power laws in RPM and diameter,
        // floored at 5% of the reference value so a slow spindle still
        // sees the natural-convection path (the correlation is
        // calibrated for the roadmap regime, rpm >= ~10k and d <= 2.6").
        let air_base = p.g_air_base
            * area
            * (rel_rpm.powf(p.p_air_base_rpm) * rel_d.powf(p.p_air_base_dia)).max(0.05);

        // External rejection: the fan-driven baseline plus the
        // enhancement that tracks the operating point (surrogate for
        // natural-convection/radiation growth at the hot extremes).
        let base_ambient =
            p.g_base_ambient * area * (1.0 + p.c_ext_rpm * rel_rpm.powf(p.p_ext_rpm));

        Conductances {
            spindle_air: ThermalConductance::new(spindle_air),
            air_base: ThermalConductance::new(air_base),
            vcm_air: ThermalConductance::new(p.g_vcm_air),
            vcm_base: ThermalConductance::new(p.g_vcm_base),
            spindle_base: ThermalConductance::new(p.g_spindle_base),
            base_ambient: ThermalConductance::new(base_ambient),
        }
    }

    /// Lumped heat capacities of the four nodes, J/K.
    pub(crate) fn capacities(&self) -> [HeatCapacity; NODES] {
        let scale = self.params.capacity_scale;
        let ff = self.spec.form_factor();
        let r = self.spec.platter_diameter().to_meters() / 2.0;
        let platter_mass =
            core::f64::consts::PI * r * r * PLATTER_THICKNESS_M * RHO_ALUMINIUM;
        let spindle =
            (self.spec.platters() as f64 * platter_mass + HUB_MASS_KG) * C_ALUMINIUM;
        let base = CASE_MASS_KG * ff.area_ratio() * C_ALUMINIUM;
        let vcm = VCM_MASS_KG * C_ALUMINIUM;
        let air = ff.air_volume_m3() * RHO_AIR * C_AIR;
        [
            HeatCapacity::new(air * scale),
            HeatCapacity::new(spindle * scale),
            HeatCapacity::new(base * scale),
            HeatCapacity::new(vcm * scale),
        ]
    }

    /// Assembles the conductance matrix `A` and source vector `b` such
    /// that the steady state satisfies `A T = b`, on the stack.
    pub(crate) fn assemble(&self, op: OperatingPoint) -> ([[f64; NODES]; NODES], [f64; NODES]) {
        let g = self.conductances(op);
        let p = self.power_breakdown(op);
        let mut a = [[0.0; NODES]; NODES];
        let mut b = [0.0; NODES];

        let mut couple = |i: usize, j: usize, g: ThermalConductance| {
            let g = g.get();
            a[i][i] += g;
            a[j][j] += g;
            a[i][j] -= g;
            a[j][i] -= g;
        };
        couple(SPINDLE, AIR, g.spindle_air);
        couple(AIR, BASE, g.air_base);
        couple(VCM, AIR, g.vcm_air);
        couple(VCM, BASE, g.vcm_base);
        couple(SPINDLE, BASE, g.spindle_base);

        // Base couples to the fixed ambient: appears on the diagonal and
        // as a source term.
        a[BASE][BASE] += g.base_ambient.get();
        b[BASE] += g.base_ambient.get() * self.spec.ambient().get();

        // Windage dissipates partly in the recirculating air core and
        // partly in the boundary layer on the stationary case walls.
        let visc_air = self.params.visc_air_split / (1.0 + self.params.visc_air_split);
        b[AIR] += p.viscous.get() * visc_air;
        b[BASE] += p.viscous.get() * (1.0 - visc_air);
        // Motor electrical loss and bearing drag dissipate in the stator
        // windings and bearing cartridge, both pressed into the base
        // casting; the spindle node itself carries no source — it is the
        // platter stack's thermal inertia.
        b[BASE] += p.spm_loss.get() + p.bearing.get();
        // The moving coil and arms shed part of the seek power straight
        // into the airstream; the remainder heats the actuator casting
        // (whose thermal mass sets the slow half of the DTM response).
        let direct = self.params.vcm_air_split / (1.0 + self.params.vcm_air_split);
        b[AIR] += p.vcm.get() * direct;
        b[VCM] += p.vcm.get() * (1.0 - direct);

        (a, b)
    }

    /// The full bit pattern of every scalar that feeds the assembly at
    /// `op` — the exact (collision-free) memoization key for the
    /// steady-state solve.
    fn steady_key(&self, op: OperatingPoint) -> SteadyKey {
        let s = &self.spec;
        let p = &self.params;
        [
            s.platter_diameter().get().to_bits(),
            u64::from(s.platters()),
            match s.form_factor() {
                FormFactor::Standard35 => 0,
                FormFactor::Small25 => 1,
            },
            s.vcm_power().get().to_bits(),
            s.ambient().get().to_bits(),
            p.g_spindle_air.to_bits(),
            p.g_air_base.to_bits(),
            p.p_air_base_rpm.to_bits(),
            p.p_air_base_dia.to_bits(),
            p.g_vcm_air.to_bits(),
            p.g_vcm_base.to_bits(),
            p.g_spindle_base.to_bits(),
            p.g_base_ambient.to_bits(),
            p.beta_spm_loss.to_bits(),
            p.p_bearing_ref.to_bits(),
            p.capacity_scale.to_bits(),
            p.vcm_air_split.to_bits(),
            p.visc_air_split.to_bits(),
            p.c_ext_rpm.to_bits(),
            p.p_ext_rpm.to_bits(),
            op.rpm().get().to_bits(),
            op.vcm_duty().to_bits(),
        ]
    }

    /// Steady-state node temperatures at an operating point.
    ///
    /// Solves are memoized per thread on the full bit pattern of the
    /// inputs: the envelope bisection and the roadmap planner re-query
    /// identical `(model, op)` pairs heavily, and the solve is a pure
    /// function of them.
    ///
    /// # Panics
    ///
    /// Panics if the network is singular, which cannot happen for
    /// physical (positive) parameters since every node has a path to
    /// ambient.
    pub fn steady_state(&self, op: OperatingPoint) -> NodeTemps {
        let x = steady_or_insert(self.steady_key(op), || {
            let (a, b) = self.assemble(op);
            solve(a, b).expect("thermal network is connected to ambient")
        });
        NodeTemps::from_array(x)
    }

    /// Steady-state internal air temperature — the quantity the thermal
    /// envelope constrains.
    pub fn steady_air_temp(&self, op: OperatingPoint) -> Celsius {
        self.steady_state(op).air
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use units::{Inches, Rpm};

    fn cheetah() -> ThermalModel {
        ThermalModel::new(DriveThermalSpec::cheetah_15k3())
    }

    #[test]
    fn stopped_cold_drive_sits_at_ambient() {
        let m = cheetah();
        let op = OperatingPoint::idle_vcm(Rpm::new(0.0));
        let t = m.steady_state(op);
        let amb = m.spec().ambient();
        for temp in [t.air, t.spindle, t.base, t.vcm] {
            assert!((temp - amb).abs().get() < 1e-9, "{t}");
        }
    }

    #[test]
    fn every_node_is_at_or_above_ambient() {
        let m = cheetah();
        let t = m.steady_state(OperatingPoint::seeking(Rpm::new(15_000.0)));
        let amb = m.spec().ambient();
        assert!(t.air > amb);
        assert!(t.spindle > amb);
        assert!(t.base > amb);
        assert!(t.vcm > amb);
    }

    #[test]
    fn steady_air_temp_is_monotone_in_rpm() {
        let m = cheetah();
        let mut prev = Celsius::new(0.0);
        for rpm in [5_000.0, 10_000.0, 15_000.0, 25_000.0, 40_000.0, 80_000.0] {
            let t = m.steady_air_temp(OperatingPoint::seeking(Rpm::new(rpm)));
            assert!(t > prev, "air temp dipped at {rpm} RPM");
            prev = t;
        }
    }

    #[test]
    fn vcm_off_runs_cooler() {
        let m = cheetah();
        let on = m.steady_air_temp(OperatingPoint::seeking(Rpm::new(15_000.0)));
        let off = m.steady_air_temp(OperatingPoint::idle_vcm(Rpm::new(15_000.0)));
        assert!(off < on, "turning off the VCM must cool the drive");
    }

    #[test]
    fn more_platters_run_hotter() {
        let op = OperatingPoint::seeking(Rpm::new(15_000.0));
        let one = ThermalModel::new(DriveThermalSpec::new(Inches::new(2.6), 1));
        let four = ThermalModel::new(DriveThermalSpec::new(Inches::new(2.6), 4));
        assert!(four.steady_air_temp(op) > one.steady_air_temp(op));
    }

    #[test]
    fn smaller_platters_run_cooler_at_same_rpm() {
        let op = OperatingPoint::seeking(Rpm::new(24_533.0));
        let d26 = ThermalModel::new(DriveThermalSpec::new(Inches::new(2.6), 1));
        let d16 = ThermalModel::new(DriveThermalSpec::new(Inches::new(1.6), 1));
        assert!(d16.steady_air_temp(op) < d26.steady_air_temp(op));
    }

    #[test]
    fn small_enclosure_runs_hotter() {
        use crate::spec::FormFactor;
        let op = OperatingPoint::seeking(Rpm::new(15_000.0));
        let big = ThermalModel::new(DriveThermalSpec::cheetah_15k3());
        let small = ThermalModel::new(
            DriveThermalSpec::cheetah_15k3().with_form_factor(FormFactor::Small25),
        );
        assert!(small.steady_air_temp(op) > big.steady_air_temp(op));
    }

    #[test]
    fn cooler_ambient_shifts_temperatures_down() {
        let op = OperatingPoint::seeking(Rpm::new(15_000.0));
        let base = ThermalModel::new(DriveThermalSpec::cheetah_15k3());
        let cooled = ThermalModel::new(
            DriveThermalSpec::cheetah_15k3().with_ambient(Celsius::new(23.0)),
        );
        let dt = base.steady_air_temp(op) - cooled.steady_air_temp(op);
        // A 5 C ambient drop shifts the whole linear network down 5 C.
        assert!((dt.get() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn energy_balance_at_steady_state() {
        let m = cheetah();
        let op = OperatingPoint::seeking(Rpm::new(15_000.0));
        let t = m.steady_state(op);
        let g = m.conductances(op);
        let p = m.power_breakdown(op);
        // Heat leaving through the enclosure equals heat generated.
        let out = g.base_ambient * (t.base - m.spec().ambient());
        assert!(
            (out.get() - p.total().get()).abs() < 1e-9,
            "out {out} vs in {}",
            p.total()
        );
    }

    #[test]
    fn power_breakdown_totals() {
        let m = cheetah();
        let p = m.power_breakdown(OperatingPoint::seeking(Rpm::new(15_098.0)));
        assert!((p.viscous.get() - 0.91).abs() < 0.01);
        assert!((p.vcm.get() - 3.9).abs() < 1e-12);
        assert!(p.total().get() > p.viscous.get() + p.vcm.get());
    }

    #[test]
    fn capacities_scale_with_platters() {
        let one = ThermalModel::new(DriveThermalSpec::new(Inches::new(2.6), 1));
        let four = ThermalModel::new(DriveThermalSpec::new(Inches::new(2.6), 4));
        let c1 = one.capacities();
        let c4 = four.capacities();
        assert!(c4[SPINDLE] > c1[SPINDLE]);
        assert_eq!(c4[BASE], c1[BASE]);
        assert_eq!(c4[VCM], c1[VCM]);
    }

    #[test]
    fn hottest_node_is_a_source_node() {
        let m = cheetah();
        let t = m.steady_state(OperatingPoint::seeking(Rpm::new(15_000.0)));
        // The base only sinks heat, so it can never be the hottest node.
        assert!(t.hottest() > t.base);
    }
}
