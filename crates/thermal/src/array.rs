//! Disk-array thermal coupling.
//!
//! §2 points at temperature-aware disk-array design (Huang and Chung):
//! drives in an array do not each see pristine ambient air — the cooling
//! stream preheats as it passes over upstream bays, so downstream drives
//! run hotter, and the array's admissible spindle speed is set by its
//! *hottest* bay. This module chains single-drive thermal models along a
//! serial airflow path to capture that gradient.

use crate::envelope::EnvelopeSearch;
use crate::model::{NodeTemps, ThermalModel};
use crate::params::ThermalParams;
use crate::sources::{vcm_power_for_platter, viscous_dissipation};
use crate::spec::{DriveThermalSpec, OperatingPoint};
use serde::{Deserialize, Serialize};
use units::{Celsius, Power, Rpm, TempDelta};

/// Physical heat a drive rejects into the cooling stream, in watts.
///
/// The calibrated network's internal source terms are *effective*
/// coefficients (see `ThermalParams`), so the preheat computation uses a
/// physical estimate instead: windage (the anchored §3.3 power law),
/// ~25 % motor loss on top of it, the measured VCM power scaled by seek
/// duty, a ~0.5 W bearing floor and ~4 W of electronics.
pub fn drive_heat_estimate(spec: &DriveThermalSpec, op: OperatingPoint) -> Power {
    let visc = viscous_dissipation(spec.platter_diameter(), spec.platters(), op.rpm());
    let vcm = vcm_power_for_platter(spec.platter_diameter()) * op.vcm_duty();
    let bearing = 0.5 * (op.rpm().get() / 10_000.0);
    let electronics = 4.0;
    Power::new(visc.get() * 1.25 + vcm.get() + bearing + electronics)
}

/// A row of identical drives cooled by one serial airflow.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AirflowPath {
    drive: DriveThermalSpec,
    params: ThermalParams,
    bays: u32,
    /// Thermal capacity rate of the cooling stream, `ṁ·c_p` in W/K: the
    /// stream heats by `1/stream_w_per_k` kelvin for every watt the
    /// upstream bays reject into it.
    stream_w_per_k: f64,
}

/// Steady-state view of one bay.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BayState {
    /// Bay index along the airflow (0 = first to receive cool air).
    pub bay: u32,
    /// The preheated ambient this bay's drive actually sees.
    pub local_ambient: Celsius,
    /// The drive's steady node temperatures under that ambient.
    pub temps: NodeTemps,
}

impl AirflowPath {
    /// Builds a path of `bays` identical drives.
    ///
    /// # Panics
    ///
    /// Panics if `bays == 0` or the stream capacity rate is not
    /// positive.
    pub fn new(drive: DriveThermalSpec, bays: u32, stream_w_per_k: f64) -> Self {
        assert!(bays > 0, "an array has at least one bay");
        assert!(
            stream_w_per_k > 0.0 && stream_w_per_k.is_finite(),
            "stream capacity rate must be positive"
        );
        Self {
            drive,
            params: ThermalParams::default(),
            bays,
            stream_w_per_k,
        }
    }

    /// Overrides the thermal coefficients.
    pub fn with_params(mut self, params: ThermalParams) -> Self {
        self.params = params;
        self
    }

    /// Number of bays.
    pub fn bays(&self) -> u32 {
        self.bays
    }

    /// Steady state of every bay when all drives run at the same
    /// operating point. The stream preheats by `ΣP_upstream / (ṁ·c_p)`
    /// before reaching each bay; drive heat output is independent of
    /// temperature (the network is linear), so a single pass suffices.
    pub fn bay_states(&self, op: OperatingPoint) -> Vec<BayState> {
        let per_drive_power = drive_heat_estimate(&self.drive, op);
        let inlet = self.drive.ambient();
        (0..self.bays)
            .map(|bay| {
                let preheat =
                    TempDelta::new(per_drive_power.get() * bay as f64 / self.stream_w_per_k);
                let local_ambient = inlet + preheat;
                let model = ThermalModel::with_params(
                    self.drive.with_ambient(local_ambient),
                    self.params,
                );
                BayState {
                    bay,
                    local_ambient,
                    temps: model.steady_state(op),
                }
            })
            .collect()
    }

    /// The hottest bay's internal-air temperature (always the last bay
    /// on a serial path).
    pub fn hottest_air(&self, op: OperatingPoint) -> Celsius {
        self.bay_states(op)
            .last()
            .expect("at least one bay")
            .temps
            .air
    }

    /// Highest spindle speed at which *every* bay respects `envelope`
    /// with the actuators continuously busy, or `None` when even the
    /// search floor violates it.
    pub fn max_rpm_within_envelope(&self, envelope: Celsius) -> Option<Rpm> {
        let search = EnvelopeSearch::default();
        let too_hot = |rpm: Rpm| self.hottest_air(OperatingPoint::seeking(rpm)) > envelope;
        if too_hot(search.min_rpm) {
            return None;
        }
        if !too_hot(search.max_rpm) {
            return Some(search.max_rpm);
        }
        let (mut lo, mut hi) = (search.min_rpm.get(), search.max_rpm.get());
        while hi - lo > 0.5 {
            let mid = 0.5 * (lo + hi);
            if too_hot(Rpm::new(mid)) {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        Some(Rpm::new(lo))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::THERMAL_ENVELOPE;
    use units::Inches;

    fn path(bays: u32, stream: f64) -> AirflowPath {
        AirflowPath::new(DriveThermalSpec::new(Inches::new(2.6), 1), bays, stream)
    }

    #[test]
    fn downstream_bays_run_hotter() {
        let p = path(8, 10.0);
        let states = p.bay_states(OperatingPoint::seeking(Rpm::new(15_000.0)));
        assert_eq!(states.len(), 8);
        for w in states.windows(2) {
            assert!(w[1].local_ambient > w[0].local_ambient);
            assert!(w[1].temps.air > w[0].temps.air);
        }
        // Bay 0 sees pristine ambient: identical to a lone drive.
        let lone = ThermalModel::new(DriveThermalSpec::new(Inches::new(2.6), 1))
            .steady_state(OperatingPoint::seeking(Rpm::new(15_000.0)));
        assert!((states[0].temps.air - lone.air).abs().get() < 1e-9);
    }

    #[test]
    fn preheat_is_linear_in_upstream_power() {
        let p = path(4, 20.0);
        let op = OperatingPoint::seeking(Rpm::new(15_000.0));
        let per_drive =
            drive_heat_estimate(&DriveThermalSpec::new(Inches::new(2.6), 1), op).get();
        let states = p.bay_states(op);
        let step = (states[1].local_ambient - states[0].local_ambient).get();
        assert!((step - per_drive / 20.0).abs() < 1e-9);
        let total = (states[3].local_ambient - states[0].local_ambient).get();
        assert!((total - 3.0 * step).abs() < 1e-9);
    }

    #[test]
    fn array_envelope_rpm_below_single_drive() {
        let single = crate::envelope::max_rpm_within_envelope(
            &ThermalModel::new(DriveThermalSpec::new(Inches::new(2.6), 1)),
            1.0,
            THERMAL_ENVELOPE,
            EnvelopeSearch::default(),
        )
        .unwrap();
        let array = path(8, 20.0)
            .max_rpm_within_envelope(THERMAL_ENVELOPE)
            .unwrap();
        assert!(
            array.get() < single.get(),
            "preheated bays must cap the array: {array} vs {single}"
        );
        // A torrent of cooling air recovers (almost) the single-drive
        // speed.
        let flooded = path(8, 10_000.0)
            .max_rpm_within_envelope(THERMAL_ENVELOPE)
            .unwrap();
        assert!((flooded.get() - single.get()).abs() < 150.0);
    }

    #[test]
    fn single_bay_degenerates_to_lone_drive() {
        let p = path(1, 5.0);
        let op = OperatingPoint::seeking(Rpm::new(20_000.0));
        let lone = ThermalModel::new(DriveThermalSpec::new(Inches::new(2.6), 1))
            .steady_air_temp(op);
        assert!((p.hottest_air(op) - lone).abs().get() < 1e-9);
    }

    #[test]
    fn starved_airflow_is_infeasible() {
        // With almost no airflow the eighth bay bakes at any speed.
        let p = path(8, 0.05);
        assert!(p.max_rpm_within_envelope(THERMAL_ENVELOPE).is_none());
    }

    #[test]
    #[should_panic(expected = "at least one bay")]
    fn zero_bays_rejected() {
        let _ = path(0, 10.0);
    }
}
