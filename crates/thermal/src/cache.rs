//! Thread-local memoization of steady-state solves.
//!
//! The envelope bisection and the roadmap planner's per-year candidate
//! search query `ThermalModel::steady_state` with long runs of repeated
//! `(model, operating point)` pairs — every bisection probe is solved
//! again by the next experiment that walks the same roadmap. The solves
//! are pure functions of the inputs, so they memoize transparently.
//!
//! The cache key is the full bit pattern of every scalar that feeds the
//! assembly (spec, parameters, and operating point) — no hashing of
//! floats into lossy buckets, no collisions — and the map is
//! thread-local, so the lab engine's worker threads never contend and
//! results stay deterministic regardless of scheduling.

use crate::model::NODES;
use std::cell::RefCell;
use std::collections::HashMap;

/// Everything that determines a steady-state solution, as raw bits:
/// 5 spec scalars, 15 calibration parameters, and the operating point.
pub(crate) type SteadyKey = [u64; 22];

/// Bounded size: past this the map is cleared rather than evicted —
/// the workloads here either fit comfortably (bisections over a handful
/// of models) or churn keys with no reuse (calibration), and a clear
/// keeps the no-reuse case from holding memory.
const CAPACITY: usize = 8192;

thread_local! {
    static STEADY: RefCell<HashMap<SteadyKey, [f64; NODES]>> =
        RefCell::new(HashMap::new());
}

/// Returns the cached solution for `key`, computing and inserting it on
/// a miss.
pub(crate) fn steady_or_insert<F>(key: SteadyKey, compute: F) -> [f64; NODES]
where
    F: FnOnce() -> [f64; NODES],
{
    if let Some(hit) = STEADY.with(|cache| cache.borrow().get(&key).copied()) {
        return hit;
    }
    let value = compute();
    STEADY.with(|cache| {
        let mut map = cache.borrow_mut();
        if map.len() >= CAPACITY {
            map.clear();
        }
        map.insert(key, value);
    });
    value
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_lookup_skips_compute() {
        let key = [u64::MAX; 22];
        let mut calls = 0;
        let first = steady_or_insert(key, || {
            calls += 1;
            [1.0, 2.0, 3.0, 4.0]
        });
        let second = steady_or_insert(key, || {
            calls += 1;
            [9.0; NODES]
        });
        assert_eq!(first, second);
        assert_eq!(calls, 1, "hit must not recompute");
    }

    #[test]
    fn distinct_keys_do_not_alias() {
        let mut a = [u64::MAX; 22];
        a[0] = 17;
        let mut b = a;
        b[21] = 18;
        let va = steady_or_insert(a, || [1.0; NODES]);
        let vb = steady_or_insert(b, || [2.0; NODES]);
        assert_ne!(va, vb);
    }
}
