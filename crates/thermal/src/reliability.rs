//! Temperature-driven reliability: the paper's motivating failure model.
//!
//! §1 (citing Anderson, Dykes and Riedel): "Even a fifteen degree
//! Celsius rise from the ambient temperature can double the failure rate
//! of a disk drive." §6 closes by noting DTM is worthwhile *purely* to
//! lower operating temperature for long-term reliability. This module
//! turns that exponential rule into a small quantitative surface:
//! relative failure-rate acceleration, relative MTTF, and the
//! reliability value of a temperature reduction.

use crate::model::ThermalModel;
use crate::spec::OperatingPoint;
use units::{Celsius, TempDelta};

/// Temperature rise that doubles the failure rate (°C), per the
/// SCSI-vs-ATA reliability study the paper cites.
pub const DOUBLING_RISE: TempDelta = TempDelta::new(15.0);

/// Failure-rate acceleration of running at `temp` relative to running
/// at `reference`: `2^((temp − reference) / 15 °C)`.
///
/// Values above 1 mean faster wear-out; below 1, slower.
///
/// # Examples
///
/// ```
/// use diskthermal::reliability::failure_acceleration;
/// use units::Celsius;
///
/// // The paper's headline: +15 C doubles the failure rate.
/// let x = failure_acceleration(Celsius::new(43.0), Celsius::new(28.0));
/// assert!((x - 2.0).abs() < 1e-12);
/// ```
pub fn failure_acceleration(temp: Celsius, reference: Celsius) -> f64 {
    2f64.powf((temp - reference).get() / DOUBLING_RISE.get())
}

/// Relative mean-time-to-failure of `temp` versus `reference` (the
/// reciprocal of the failure-rate acceleration).
///
/// # Examples
///
/// ```
/// use diskthermal::reliability::relative_mttf;
/// use units::Celsius;
///
/// // Running 5 C cooler stretches life by ~26%.
/// let m = relative_mttf(Celsius::new(40.0), Celsius::new(45.0));
/// assert!((m - 2f64.powf(5.0 / 15.0)).abs() < 1e-12);
/// ```
pub fn relative_mttf(temp: Celsius, reference: Celsius) -> f64 {
    1.0 / failure_acceleration(temp, reference)
}

/// Reliability summary of a drive at an operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReliabilityReport {
    /// Steady internal-air temperature at the operating point.
    pub temperature: Celsius,
    /// Failure-rate acceleration relative to sitting at ambient.
    pub acceleration_vs_ambient: f64,
    /// MTTF multiplier gained per 1 °C of cooling at this temperature
    /// (constant for the exponential law: `2^(1/15)` ≈ 1.047).
    pub mttf_gain_per_degree: f64,
}

/// Evaluates the reliability impact of running `model` at `op`.
pub fn assess(model: &ThermalModel, op: OperatingPoint) -> ReliabilityReport {
    let temperature = model.steady_air_temp(op);
    ReliabilityReport {
        temperature,
        acceleration_vs_ambient: failure_acceleration(temperature, model.spec().ambient()),
        mttf_gain_per_degree: 2f64.powf(1.0 / DOUBLING_RISE.get()),
    }
}

/// The reliability argument for DTM (§6): the MTTF multiplier obtained
/// by operating at `managed` instead of `unmanaged` temperature.
///
/// # Examples
///
/// ```
/// use diskthermal::reliability::dtm_reliability_gain;
/// use units::Celsius;
///
/// // Throttling a 48.3 C average-case design down to the 45.2 C
/// // envelope buys ~15% more life.
/// let gain = dtm_reliability_gain(Celsius::new(45.22), Celsius::new(48.26));
/// assert!(gain > 1.1 && gain < 1.2);
/// ```
pub fn dtm_reliability_gain(managed: Celsius, unmanaged: Celsius) -> f64 {
    failure_acceleration(unmanaged, managed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DriveThermalSpec;
    use units::{Inches, Rpm};

    #[test]
    fn doubling_law_checkpoints() {
        let amb = Celsius::new(28.0);
        assert!((failure_acceleration(amb, amb) - 1.0).abs() < 1e-12);
        assert!((failure_acceleration(Celsius::new(58.0), amb) - 4.0).abs() < 1e-12);
        // Below reference: rate halves.
        assert!((failure_acceleration(Celsius::new(13.0), amb) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mttf_is_reciprocal() {
        let a = Celsius::new(50.0);
        let b = Celsius::new(40.0);
        let product = failure_acceleration(a, b) * relative_mttf(a, b);
        assert!((product - 1.0).abs() < 1e-12);
    }

    #[test]
    fn faster_spindles_wear_faster() {
        let model = ThermalModel::new(DriveThermalSpec::new(Inches::new(2.6), 1));
        let slow = assess(&model, OperatingPoint::seeking(Rpm::new(15_020.0)));
        let fast = assess(&model, OperatingPoint::seeking(Rpm::new(24_534.0)));
        assert!(fast.acceleration_vs_ambient > slow.acceleration_vs_ambient);
        // At the envelope (~17 C above ambient) the acceleration is
        // a bit over 2x — exactly the paper's motivating number.
        assert!(
            (slow.acceleration_vs_ambient - 2.2).abs() < 0.3,
            "envelope acceleration {:.2}",
            slow.acceleration_vs_ambient
        );
    }

    #[test]
    fn dtm_gain_matches_direct_computation() {
        let gain = dtm_reliability_gain(Celsius::new(45.22), Celsius::new(48.26));
        let direct = 2f64.powf((48.26 - 45.22) / 15.0);
        assert!((gain - direct).abs() < 1e-12);
    }

    #[test]
    fn per_degree_gain_is_constant() {
        let model = ThermalModel::new(DriveThermalSpec::new(Inches::new(2.6), 1));
        let r = assess(&model, OperatingPoint::seeking(Rpm::new(20_000.0)));
        assert!((r.mttf_gain_per_degree - 2f64.powf(1.0 / 15.0)).abs() < 1e-12);
    }
}
