//! Minimal dense linear algebra for the small thermal networks
//! (4×4 for the steady-state and backward-Euler solves).
//!
//! Everything here works on fixed-size stack arrays: the hot integration
//! loop must not heap-allocate. Factoring and solving are split —
//! [`lu_factor`] does the O(n³) elimination once and [`LuFactors::solve`]
//! replays it against any right-hand side in O(n²) — so a backward-Euler
//! step matrix can be factored once per operating point and reused for
//! thousands of steps.
//!
//! The arithmetic (pivot selection, elimination order, the zero-factor
//! skip) reproduces plain Gaussian elimination with partial pivoting
//! operation for operation, so a factor-then-solve yields bitwise the
//! same answer as a one-shot elimination over the same system.

/// A PA = LU factorization of an `N × N` matrix with partial pivoting.
///
/// `lu` packs both triangles: the strict lower triangle holds the
/// elimination multipliers (the unit diagonal of `L` is implicit) and
/// the upper triangle, diagonal included, holds `U`. `perm[i]` is the
/// original row index that ended up in position `i`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct LuFactors<const N: usize> {
    lu: [[f64; N]; N],
    perm: [usize; N],
}

/// Factors `a` by Gaussian elimination with partial pivoting.
///
/// Returns `None` when the matrix is numerically singular.
pub(crate) fn lu_factor<const N: usize>(mut a: [[f64; N]; N]) -> Option<LuFactors<N>> {
    let mut perm = [0usize; N];
    for (i, p) in perm.iter_mut().enumerate() {
        *p = i;
    }

    for col in 0..N {
        // Partial pivot: bring the largest remaining entry to the diagonal.
        let pivot_row = (col..N)
            .max_by(|&i, &j| {
                a[i][col]
                    .abs()
                    .partial_cmp(&a[j][col].abs())
                    .expect("matrix entries are finite")
            })
            .expect("non-empty column");
        if a[pivot_row][col].abs() < 1e-300 {
            return None;
        }
        a.swap(col, pivot_row);
        perm.swap(col, pivot_row);

        let pivot = a[col][col];
        for row in col + 1..N {
            let factor = a[row][col] / pivot;
            // The sub-diagonal slot is dead as far as U is concerned;
            // store the multiplier there for the forward substitution.
            a[row][col] = factor;
            if factor == 0.0 {
                continue;
            }
            // Split the borrow: the pivot row is disjoint from `row`.
            let (head, tail) = a.split_at_mut(row);
            let pivot_row_data = &head[col];
            let target_row = &mut tail[0];
            for (t, p) in target_row[col + 1..N]
                .iter_mut()
                .zip(&pivot_row_data[col + 1..N])
            {
                *t -= factor * p;
            }
        }
    }

    Some(LuFactors { lu: a, perm })
}

impl<const N: usize> LuFactors<N> {
    /// Solves `A x = b` against the stored factorization.
    pub(crate) fn solve(&self, b: [f64; N]) -> [f64; N] {
        // Permute the right-hand side the way the pivoting permuted the
        // rows, then replay the eliminations column by column — the same
        // order interleaved Gaussian elimination applies them (and with
        // the same zero-factor skips, so even signed zeros agree).
        let mut y = [0.0; N];
        for (slot, &from) in y.iter_mut().zip(&self.perm) {
            *slot = b[from];
        }
        for col in 0..N {
            let y_col = y[col];
            for (row, y_row) in y.iter_mut().enumerate().skip(col + 1) {
                let factor = self.lu[row][col];
                if factor == 0.0 {
                    continue;
                }
                *y_row -= factor * y_col;
            }
        }

        // Back substitution against U.
        let mut x = [0.0; N];
        for row in (0..N).rev() {
            let mut acc = y[row];
            for (l, xv) in self.lu[row][row + 1..].iter().zip(&x[row + 1..]) {
                acc -= l * xv;
            }
            x[row] = acc / self.lu[row][row];
        }
        x
    }
}

/// Solves `A x = b` in one shot.
///
/// Returns `None` when the matrix is numerically singular.
pub(crate) fn solve<const N: usize>(a: [[f64; N]; N], b: [f64; N]) -> Option<[f64; N]> {
    Some(lu_factor(a)?.solve(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// The pre-factorization solver this module replaced, kept verbatim
    /// as the bitwise reference: one-shot Gaussian elimination with
    /// partial pivoting over heap vectors.
    fn reference_solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
        let n = b.len();
        for col in 0..n {
            let pivot_row = (col..n)
                .max_by(|&i, &j| {
                    a[i][col]
                        .abs()
                        .partial_cmp(&a[j][col].abs())
                        .expect("matrix entries are finite")
                })
                .expect("non-empty column");
            if a[pivot_row][col].abs() < 1e-300 {
                return None;
            }
            a.swap(col, pivot_row);
            b.swap(col, pivot_row);

            let pivot = a[col][col];
            for row in col + 1..n {
                let factor = a[row][col] / pivot;
                if factor == 0.0 {
                    continue;
                }
                let (head, tail) = a.split_at_mut(row);
                let (pivot_row_data, target_row) = (&head[col], &mut tail[0]);
                for (t, p) in target_row[col..n].iter_mut().zip(&pivot_row_data[col..n]) {
                    *t -= factor * p;
                }
                b[row] -= factor * b[col];
            }
        }

        let mut x = vec![0.0; n];
        for row in (0..n).rev() {
            let mut acc = b[row];
            for k in row + 1..n {
                acc -= a[row][k] * x[k];
            }
            x[row] = acc / a[row][row];
        }
        Some(x)
    }

    #[test]
    fn solves_identity() {
        let a = [[1.0, 0.0], [0.0, 1.0]];
        let x = solve(a, [3.0, -4.0]).unwrap();
        assert_eq!(x, [3.0, -4.0]);
    }

    #[test]
    fn solves_known_system() {
        // 2x + y = 5; x + 3y = 10  ->  x = 1, y = 3.
        let a = [[2.0, 1.0], [1.0, 3.0]];
        let x = solve(a, [5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn pivots_on_zero_diagonal() {
        // Leading zero forces a row swap.
        let a = [[0.0, 1.0], [1.0, 0.0]];
        let x = solve(a, [2.0, 7.0]).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_returns_none() {
        let a = [[1.0, 2.0], [2.0, 4.0]];
        assert!(solve(a, [1.0, 2.0]).is_none());
        assert!(lu_factor(a).is_none());
    }

    #[test]
    fn solves_4x4_thermal_like_system() {
        // A diagonally-dominant symmetric system like the thermal ones.
        let a = [
            [3.0, -1.0, -1.0, -0.5],
            [-1.0, 2.5, -0.5, 0.0],
            [-1.0, -0.5, 4.0, -1.0],
            [-0.5, 0.0, -1.0, 2.0],
        ];
        let b = [1.0, 2.0, 0.5, 1.5];
        let x = solve(a, b).unwrap();
        // Verify A x = b.
        for i in 0..4 {
            let got: f64 = (0..4).map(|j| a[i][j] * x[j]).sum();
            assert!((got - b[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn factorization_is_reusable_across_right_hand_sides() {
        let a = [
            [4.0, -1.0, 0.0, -0.3],
            [-1.0, 5.0, -2.0, 0.0],
            [0.0, -2.0, 6.0, -1.0],
            [-0.3, 0.0, -1.0, 3.0],
        ];
        let lu = lu_factor(a).unwrap();
        for b in [[1.0, 0.0, 0.0, 0.0], [0.2, -3.0, 7.5, 0.4], [9.0; 4]] {
            assert_eq!(Some(lu.solve(b)), solve(a, b));
        }
    }

    /// Matrix entries with a healthy dose of exact zeros, to exercise
    /// the pivot swaps and the zero-factor skips.
    fn entry() -> impl Strategy<Value = f64> {
        prop_oneof![-100.0f64..100.0, -1.0e6f64..1.0e6, Just(0.0)]
    }

    // The factor/solve split must be *bitwise* indistinguishable from
    // the one-shot elimination it replaced: every result file in
    // `results/` depends on it.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn matches_reference_elimination_bitwise(
            flat in collection::vec(entry(), 16..17),
            b_vec in collection::vec(entry(), 4..5),
        ) {
            let mut a = [[0.0; 4]; 4];
            for (i, row) in a.iter_mut().enumerate() {
                row.copy_from_slice(&flat[i * 4..(i + 1) * 4]);
            }
            let mut b = [0.0; 4];
            b.copy_from_slice(&b_vec);
            let a_vec: Vec<Vec<f64>> = a.iter().map(|r| r.to_vec()).collect();
            let reference = reference_solve(a_vec, b.to_vec());
            let fast = solve(a, b);
            match (reference, fast) {
                (None, None) => {}
                (Some(want), Some(got)) => {
                    for (w, g) in want.iter().zip(&got) {
                        prop_assert_eq!(w.to_bits(), g.to_bits(),
                            "bitwise mismatch: {} vs {}", w, g);
                    }
                }
                (want, got) => prop_assert!(false, "singularity disagreement: {want:?} vs {got:?}"),
            }
        }
    }
}
