//! Minimal dense linear-system solver for the small thermal networks
//! (4×4 for the steady-state and backward-Euler solves).

/// Solves `A x = b` in place by Gaussian elimination with partial
/// pivoting. `a` is row-major `n × n`.
///
/// Returns `None` when the matrix is numerically singular.
pub(crate) fn solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    debug_assert!(a.len() == n && a.iter().all(|row| row.len() == n));

    for col in 0..n {
        // Partial pivot: bring the largest remaining entry to the diagonal.
        let pivot_row = (col..n)
            .max_by(|&i, &j| {
                a[i][col]
                    .abs()
                    .partial_cmp(&a[j][col].abs())
                    .expect("matrix entries are finite")
            })
            .expect("non-empty column");
        if a[pivot_row][col].abs() < 1e-300 {
            return None;
        }
        a.swap(col, pivot_row);
        b.swap(col, pivot_row);

        let pivot = a[col][col];
        for row in col + 1..n {
            let factor = a[row][col] / pivot;
            if factor == 0.0 {
                continue;
            }
            // Split the borrow: the pivot row is disjoint from `row`.
            let (pivot_row_data, target_row) = if col < row {
                let (head, tail) = a.split_at_mut(row);
                (&head[col], &mut tail[0])
            } else {
                unreachable!("elimination only touches rows below the pivot")
            };
            for (t, p) in target_row[col..n].iter_mut().zip(&pivot_row_data[col..n]) {
                *t -= factor * p;
            }
            b[row] -= factor * b[col];
        }
    }

    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in row + 1..n {
            acc -= a[row][k] * x[k];
        }
        x[row] = acc / a[row][row];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_identity() {
        let a = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let x = solve(a, vec![3.0, -4.0]).unwrap();
        assert_eq!(x, vec![3.0, -4.0]);
    }

    #[test]
    fn solves_known_system() {
        // 2x + y = 5; x + 3y = 10  ->  x = 1, y = 3.
        let a = vec![vec![2.0, 1.0], vec![1.0, 3.0]];
        let x = solve(a, vec![5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn pivots_on_zero_diagonal() {
        // Leading zero forces a row swap.
        let a = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let x = solve(a, vec![2.0, 7.0]).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_returns_none() {
        let a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        assert!(solve(a, vec![1.0, 2.0]).is_none());
    }

    #[test]
    fn solves_4x4_thermal_like_system() {
        // A diagonally-dominant symmetric system like the thermal ones.
        let a = vec![
            vec![3.0, -1.0, -1.0, -0.5],
            vec![-1.0, 2.5, -0.5, 0.0],
            vec![-1.0, -0.5, 4.0, -1.0],
            vec![-0.5, 0.0, -1.0, 2.0],
        ];
        let b = vec![1.0, 2.0, 0.5, 1.5];
        let x = solve(a.clone(), b.clone()).unwrap();
        // Verify A x = b.
        for i in 0..4 {
            let got: f64 = (0..4).map(|j| a[i][j] * x[j]).sum();
            assert!((got - b[i]).abs() < 1e-10);
        }
    }
}
