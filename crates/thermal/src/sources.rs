//! Heat sources: viscous dissipation and VCM power correlations.

use units::{Inches, Power, Rpm};

/// Reference operating point anchoring the viscous-dissipation power
/// law: a single 2.6″ platter at 15,098 RPM dissipates 0.91 W (§4.1).
///
/// The paper's own scaling checks confirm the anchor: 2 W at 19,972 RPM,
/// 35.55 W at 55,819 RPM and 499.73 W at 143,470 RPM all follow from
/// `0.91 · (rpm/15098)^2.8`.
const VISCOUS_REF: (f64, f64, f64) = (0.91, 15_098.0, 2.6);

/// RPM exponent of viscous dissipation ("cubic — 2.8th power to be
/// precise", §3.3).
pub(crate) const RPM_EXPONENT: f64 = 2.8;

/// Platter-diameter exponent of viscous dissipation ("fifth — 4.8th
/// power to be precise", §3.3).
pub(crate) const DIAMETER_EXPONENT: f64 = 4.8;

/// Viscous dissipation (air shear) of a spinning platter stack, deposited
/// in the internal drive air.
///
/// Linear in platter count, `rpm^2.8`, `diameter^4.8`.
///
/// # Examples
///
/// ```
/// use diskthermal::viscous_dissipation;
/// use units::{Inches, Rpm};
///
/// // The paper's §4.1 checkpoints for the 2.6" single-platter drive:
/// let p = viscous_dissipation(Inches::new(2.6), 1, Rpm::new(15_098.0));
/// assert!((p.get() - 0.91).abs() < 0.01);
/// let p = viscous_dissipation(Inches::new(2.6), 1, Rpm::new(55_819.0));
/// assert!((p.get() - 35.55).abs() < 0.3);
/// let p = viscous_dissipation(Inches::new(2.6), 1, Rpm::new(143_470.0));
/// assert!((p.get() - 499.73).abs() < 3.0);
/// ```
pub fn viscous_dissipation(diameter: Inches, platters: u32, rpm: Rpm) -> Power {
    let (p0, rpm0, d0) = VISCOUS_REF;
    let w = p0
        * platters as f64
        * (rpm.get() / rpm0).powf(RPM_EXPONENT)
        * (diameter.get() / d0).powf(DIAMETER_EXPONENT);
    Power::new(w)
}

/// VCM power anchors `(diameter_in, watts)`.
///
/// The 2.6″ value is the paper's teardown measurement of the Cheetah
/// 15K.3; 2.1″ and 1.6″ are quoted in §5.2; the 3.7″ point extends the
/// Sri-Jayantha correlation the paper cites (a 95 mm platter needs about
/// twice the VCM power of a 65 mm one).
pub const VCM_POWER_ANCHORS: [(f64, f64); 4] = [
    (1.6, 0.618),
    (2.1, 2.28),
    (2.6, 3.9),
    (3.7, 7.1),
];

/// VCM power for a platter size, log-log interpolated between the
/// published anchors and clamped at the table ends.
///
/// # Examples
///
/// ```
/// use diskthermal::vcm_power_for_platter;
/// use units::Inches;
///
/// assert!((vcm_power_for_platter(Inches::new(2.6)).get() - 3.9).abs() < 1e-12);
/// assert!((vcm_power_for_platter(Inches::new(1.6)).get() - 0.618).abs() < 1e-12);
/// // Interpolated sizes fall between their anchors.
/// let p = vcm_power_for_platter(Inches::new(2.3)).get();
/// assert!(p > 2.28 && p < 3.9);
/// ```
pub fn vcm_power_for_platter(diameter: Inches) -> Power {
    let d = diameter.get();
    let table = &VCM_POWER_ANCHORS;
    if d <= table[0].0 {
        return Power::new(table[0].1);
    }
    if d >= table[table.len() - 1].0 {
        return Power::new(table[table.len() - 1].1);
    }
    for pair in table.windows(2) {
        let (lo, hi) = (pair[0], pair[1]);
        if d >= lo.0 && d <= hi.0 {
            // Log-log interpolation: power-law segments between anchors.
            let t = (d.ln() - lo.0.ln()) / (hi.0.ln() - lo.0.ln());
            let w = (lo.1.ln() + t * (hi.1.ln() - lo.1.ln())).exp();
            return Power::new(w);
        }
    }
    unreachable!("anchors cover the clamped range")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn viscous_scaling_exponents() {
        let base = viscous_dissipation(Inches::new(2.6), 1, Rpm::new(15_098.0));
        // Doubling RPM multiplies power by 2^2.8.
        let fast = viscous_dissipation(Inches::new(2.6), 1, Rpm::new(30_196.0));
        assert!((fast.get() / base.get() - 2f64.powf(2.8)).abs() < 1e-9);
        // Doubling diameter multiplies power by 2^4.8.
        // (Hypothetical 5.2" platter, only for checking the exponent.)
        let wide = viscous_dissipation(Inches::new(5.2), 1, Rpm::new(15_098.0));
        assert!((wide.get() / base.get() - 2f64.powf(4.8)).abs() < 1e-9);
        // Linear in platters.
        let stack = viscous_dissipation(Inches::new(2.6), 4, Rpm::new(15_098.0));
        assert!((stack.get() / base.get() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn paper_checkpoint_2004() {
        // §4.1: "grows from 2 W in 2004" (19,972 RPM).
        let p = viscous_dissipation(Inches::new(2.6), 1, Rpm::new(19_972.0));
        assert!((p.get() - 2.0).abs() < 0.05, "got {}", p);
    }

    #[test]
    fn vcm_anchors_hit_exactly() {
        for &(d, w) in &VCM_POWER_ANCHORS {
            let got = vcm_power_for_platter(Inches::new(d)).get();
            assert!((got - w).abs() < 1e-12, "anchor {d}\": {got} vs {w}");
        }
    }

    #[test]
    fn vcm_power_monotone_in_diameter() {
        let mut prev = 0.0;
        for i in 0..40 {
            let d = 1.4 + i as f64 * 0.07;
            let w = vcm_power_for_platter(Inches::new(d)).get();
            assert!(w >= prev, "VCM power dipped at {d}\"");
            prev = w;
        }
    }

    #[test]
    fn vcm_power_clamps_outside_anchors() {
        assert_eq!(
            vcm_power_for_platter(Inches::new(1.0)).get(),
            VCM_POWER_ANCHORS[0].1
        );
        assert_eq!(
            vcm_power_for_platter(Inches::new(5.0)).get(),
            VCM_POWER_ANCHORS[3].1
        );
    }

    #[test]
    fn sri_jayantha_ratio_roughly_holds() {
        // 95 mm (3.7") vs 65 mm (2.56") should be about 2:1.
        let big = vcm_power_for_platter(Inches::from_millimeters(95.0)).get();
        let small = vcm_power_for_platter(Inches::from_millimeters(65.0)).get();
        let ratio = big / small;
        assert!(ratio > 1.6 && ratio < 2.4, "ratio {ratio}");
    }
}
