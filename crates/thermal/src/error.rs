//! Error types for thermal-simulation construction.

/// An error from configuring a thermal simulation.
///
/// Mirrors the shape of `LabError` in the lab crate: a small enum with a
/// human-readable `Display` so callers can `?` it into their own error
/// types or surface it directly.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum ThermalError {
    /// The transient integration step must be a positive, finite number
    /// of seconds; carries the offending value.
    NonPositiveStep(f64),
    /// A drive spec or operating point was physically inconsistent;
    /// carries the constraint that failed.
    BadSpec(&'static str),
}

impl core::fmt::Display for ThermalError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ThermalError::NonPositiveStep(step) => write!(
                f,
                "integration step must be positive and finite, got {step} s"
            ),
            ThermalError::BadSpec(constraint) => {
                write!(f, "inconsistent thermal spec: {constraint}")
            }
        }
    }
}

impl std::error::Error for ThermalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_offending_step() {
        let msg = ThermalError::NonPositiveStep(-0.5).to_string();
        assert!(msg.contains("-0.5"), "{msg}");
    }
}
