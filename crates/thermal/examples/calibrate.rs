//! Regenerates the calibrated thermal coefficients baked into
//! `ThermalParams::default()`.
//!
//! Run with: `cargo run -p diskthermal --example calibrate --release`

use diskthermal::calibrate::{
    calibrate_capacity_scale, calibrate_steady_frozen_split, figure7a_score, report,
    steady_objective, transient_metrics, TransientTargets,
};
use diskthermal::ThermalParams;

fn main() {
    let start = ThermalParams::default();
    let incumbent = steady_objective(start);
    println!("incumbent objective: {incumbent:.6}");

    // Two-stage fit. The steady anchors cannot identify how much of the
    // VCM's power reaches the air *directly* (only the total influence
    // is observable at steady state), but that split sets the
    // throttling time scale of Figure 7. Scan candidate splits, fit the
    // remaining coefficients to the steady anchors for each, and keep
    // the candidate whose Figure 7(a) ratios land closest to the paper.
    let mut best = start;
    let mut f_best = f64::INFINITY;
    let mut best_combo = f64::INFINITY;
    // Warm-start each split candidate from the previous one's fit (the
    // steady surface varies smoothly with the frozen split).
    let mut chain = start;
    for split in [0.01, 0.02, 0.035, 0.06, 0.1, 0.18] {
        let mut seed_a = chain;
        seed_a.vcm_air_split = split;
        let mut seed_b = ThermalParams::initial_guess();
        seed_b.vcm_air_split = split;
        let (pa, fa) = calibrate_steady_frozen_split(seed_a, 10, split);
        let (pb, fb) = calibrate_steady_frozen_split(seed_b, 10, split);
        let (p, f) = if fa <= fb { (pa, fa) } else { (pb, fb) };
        chain = p;
        let shape = figure7a_score(p);
        let combo = f * 50.0 + shape;
        println!(
            "split {split:.3}: steady {f:.5}, fig7a score {shape:.3}, combo {combo:.3}"
        );
        if combo < best_combo {
            best_combo = combo;
            best = p;
            f_best = f;
        }
    }
    println!("calibrated objective: {f_best:.6}");

    best.capacity_scale = calibrate_capacity_scale(best, TransientTargets::default());
    let (t1, minutes) = transient_metrics(best);
    println!(
        "transient: {t1:.2} C after 1 min (target 33), steady after {minutes:.0} min (target ~48)"
    );

    println!("\nPer-anchor fit:");
    println!(
        "{:>5} {:>9} {:>5} {:>9} {:>9} {:>8}",
        "dia", "rpm", "vcm", "paper C", "model C", "err %"
    );
    for r in report(best) {
        println!(
            "{:>5.1} {:>9.0} {:>5.1} {:>9.2} {:>9.2} {:>8.2}",
            r.anchor.diameter,
            r.anchor.rpm,
            r.anchor.vcm_duty,
            r.anchor.temp,
            r.model,
            r.rel_error * 100.0
        );
    }

    println!("\nPaste into ThermalParams::default():");
    println!("        Self {{");
    println!("            g_spindle_air: {:.15},", best.g_spindle_air);
    println!("            g_air_base: {:.15},", best.g_air_base);
    println!("            p_air_base_rpm: {:.15},", best.p_air_base_rpm);
    println!("            p_air_base_dia: {:.15},", best.p_air_base_dia);
    println!("            g_vcm_air: {:.15},", best.g_vcm_air);
    println!("            g_vcm_base: {:.15},", best.g_vcm_base);
    println!("            g_spindle_base: {:.15},", best.g_spindle_base);
    println!("            g_base_ambient: {:.15},", best.g_base_ambient);
    println!("            beta_spm_loss: {:.15},", best.beta_spm_loss);
    println!("            p_bearing_ref: {:.15},", best.p_bearing_ref);
    println!("            capacity_scale: {:.15},", best.capacity_scale);
    println!("            vcm_air_split: {:.15},", best.vcm_air_split);
    println!("            visc_air_split: {:.15},", best.visc_air_split);
    println!("            c_ext_rpm: {:.15},", best.c_ext_rpm);
    println!("            p_ext_rpm: {:.15},", best.p_ext_rpm);
    println!("        }}");

    // Figure 7(a) shape preview: throttling ratio vs t_cool for the
    // 24,534 RPM VCM-only experiment (paper: ~1.7 at small t_cool,
    // falling below 1 past ~1 s).
    use diskthermal::{DriveThermalSpec, OperatingPoint, ThermalModel, TransientSim};
    use units::{Celsius, Inches, Rpm, Seconds};
    let model = ThermalModel::with_params(
        DriveThermalSpec::new(Inches::new(2.6), 1),
        best,
    );
    let heat = OperatingPoint::seeking(Rpm::new(24_534.0));
    let cool = OperatingPoint::idle_vcm(Rpm::new(24_534.0));
    let envelope = Celsius::new(45.22);
    println!("\nFigure 7(a) preview (t_cool -> ratio):");
    for t_cool in [0.25, 0.5, 1.0, 2.0, 4.0, 8.0] {
        let mut sim = TransientSim::from_ambient(&model)
            .with_step(Seconds::new(0.05))
            .expect("constant step is positive");
        if sim.time_to_reach(&model, heat, envelope).is_none() {
            println!("  (never reaches envelope)");
            break;
        }
        sim.advance(&model, cool, Seconds::new(t_cool));
        if sim.temps().air >= envelope {
            println!("  {t_cool:>5.2} s -> 0.00 (no headroom bought)");
            continue;
        }
        match sim.time_to_reach(&model, heat, envelope) {
            Some(t_heat) => {
                println!("  {t_cool:>5.2} s -> {:.2}", t_heat.get() / t_cool)
            }
            None => println!("  {t_cool:>5.2} s -> (heating never returns)"),
        }
    }
}
