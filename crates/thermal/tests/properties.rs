//! Property-based tests for the thermal model's physical invariants.

use diskthermal::{
    max_rpm_within_envelope, DriveThermalSpec, EnvelopeSearch, OperatingPoint, ThermalModel,
    TransientSim, THERMAL_ENVELOPE,
};
use proptest::prelude::*;
use units::{Celsius, Inches, Rpm, Seconds};

/// Roadmap-regime drive specs (the model's calibrated validity domain).
fn spec_strategy() -> impl Strategy<Value = DriveThermalSpec> {
    (1.6f64..2.7, 1u32..5).prop_map(|(d, n)| DriveThermalSpec::new(Inches::new(d), n))
}

fn rpm_strategy() -> impl Strategy<Value = Rpm> {
    (10_000.0f64..200_000.0).prop_map(Rpm::new)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn steady_temps_at_or_above_ambient(spec in spec_strategy(), rpm in rpm_strategy()) {
        let m = ThermalModel::new(spec);
        let t = m.steady_state(OperatingPoint::seeking(rpm));
        let amb = spec.ambient();
        prop_assert!(t.air >= amb);
        prop_assert!(t.spindle >= amb);
        prop_assert!(t.base >= amb);
        prop_assert!(t.vcm >= amb);
    }

    #[test]
    fn air_temp_monotone_in_rpm(spec in spec_strategy(), rpm in 10_000.0f64..150_000.0) {
        let m = ThermalModel::new(spec);
        let lo = m.steady_air_temp(OperatingPoint::seeking(Rpm::new(rpm)));
        let hi = m.steady_air_temp(OperatingPoint::seeking(Rpm::new(rpm * 1.1)));
        prop_assert!(hi > lo, "spinning faster must run hotter");
    }

    #[test]
    fn vcm_duty_monotone(spec in spec_strategy(), rpm in rpm_strategy(), duty in 0.0f64..1.0) {
        let m = ThermalModel::new(spec);
        let some = m.steady_air_temp(OperatingPoint::new(rpm, duty));
        let full = m.steady_air_temp(OperatingPoint::seeking(rpm));
        let none = m.steady_air_temp(OperatingPoint::idle_vcm(rpm));
        prop_assert!(none <= some);
        prop_assert!(some <= full);
    }

    #[test]
    fn energy_balance_holds(spec in spec_strategy(), rpm in rpm_strategy(), duty in 0.0f64..1.0) {
        let m = ThermalModel::new(spec);
        let op = OperatingPoint::new(rpm, duty);
        let t = m.steady_state(op);
        let p = m.power_breakdown(op);
        // At steady state, heat out through the base equals heat in.
        let g = m.conductances(op);
        let out = (g.base_ambient() * (t.base - spec.ambient())).get();
        prop_assert!((out - p.total().get()).abs() < 1e-6,
            "out {out} W vs generated {} W", p.total());
    }

    #[test]
    fn ambient_shift_is_exact(spec in spec_strategy(), rpm in rpm_strategy(), drop in 1.0f64..15.0) {
        let m = ThermalModel::new(spec);
        let cooled_spec = spec.with_ambient(Celsius::new(spec.ambient().get() - drop));
        let mc = ThermalModel::new(cooled_spec);
        let op = OperatingPoint::seeking(rpm);
        let dt = (m.steady_air_temp(op) - mc.steady_air_temp(op)).get();
        prop_assert!((dt - drop).abs() < 1e-6, "linear network shifts exactly");
    }

    #[test]
    fn envelope_rpm_is_exactly_at_boundary(spec in spec_strategy()) {
        let m = ThermalModel::new(spec);
        if let Some(rpm) =
            max_rpm_within_envelope(&m, 1.0, THERMAL_ENVELOPE, EnvelopeSearch::default())
        {
            let t = m.steady_air_temp(OperatingPoint::seeking(rpm));
            prop_assert!(t <= THERMAL_ENVELOPE);
            let t_above = m.steady_air_temp(OperatingPoint::seeking(rpm * 1.02));
            prop_assert!(t_above > THERMAL_ENVELOPE || rpm.get() >= 499_000.0);
        }
    }

    #[test]
    fn transient_approaches_steady_from_both_sides(
        spec in spec_strategy(),
        rpm in 10_000.0f64..60_000.0,
    ) {
        let m = ThermalModel::new(spec);
        let op = OperatingPoint::seeking(Rpm::new(rpm));
        let steady = m.steady_air_temp(op);

        // From cold.
        let mut sim = TransientSim::from_ambient(&m);
        sim.advance(&m, op, Seconds::new(7_200.0));
        prop_assert!((sim.temps().air - steady).abs().get() < 0.6,
            "cold start: {} vs steady {}", sim.temps().air, steady);
        prop_assert!(sim.temps().air <= steady + units::TempDelta::new(1e-6),
            "no overshoot from below");
    }
}
