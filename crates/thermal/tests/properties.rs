//! Property-based tests for the thermal model's physical invariants.

use diskthermal::{
    max_rpm_within_envelope, DriveThermalSpec, EnvelopeSearch, Integrator, OperatingPoint,
    ThermalModel, TransientSim, THERMAL_ENVELOPE,
};
use proptest::prelude::*;
use units::{Celsius, Inches, Rpm, Seconds};

/// Roadmap-regime drive specs (the model's calibrated validity domain).
fn spec_strategy() -> impl Strategy<Value = DriveThermalSpec> {
    (1.6f64..2.7, 1u32..5).prop_map(|(d, n)| DriveThermalSpec::new(Inches::new(d), n))
}

fn rpm_strategy() -> impl Strategy<Value = Rpm> {
    (10_000.0f64..200_000.0).prop_map(Rpm::new)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn steady_temps_at_or_above_ambient(spec in spec_strategy(), rpm in rpm_strategy()) {
        let m = ThermalModel::new(spec);
        let t = m.steady_state(OperatingPoint::seeking(rpm));
        let amb = spec.ambient();
        prop_assert!(t.air >= amb);
        prop_assert!(t.spindle >= amb);
        prop_assert!(t.base >= amb);
        prop_assert!(t.vcm >= amb);
    }

    #[test]
    fn air_temp_monotone_in_rpm(spec in spec_strategy(), rpm in 10_000.0f64..150_000.0) {
        let m = ThermalModel::new(spec);
        let lo = m.steady_air_temp(OperatingPoint::seeking(Rpm::new(rpm)));
        let hi = m.steady_air_temp(OperatingPoint::seeking(Rpm::new(rpm * 1.1)));
        prop_assert!(hi > lo, "spinning faster must run hotter");
    }

    #[test]
    fn vcm_duty_monotone(spec in spec_strategy(), rpm in rpm_strategy(), duty in 0.0f64..1.0) {
        let m = ThermalModel::new(spec);
        let some = m.steady_air_temp(OperatingPoint::new(rpm, duty));
        let full = m.steady_air_temp(OperatingPoint::seeking(rpm));
        let none = m.steady_air_temp(OperatingPoint::idle_vcm(rpm));
        prop_assert!(none <= some);
        prop_assert!(some <= full);
    }

    #[test]
    fn energy_balance_holds(spec in spec_strategy(), rpm in rpm_strategy(), duty in 0.0f64..1.0) {
        let m = ThermalModel::new(spec);
        let op = OperatingPoint::new(rpm, duty);
        let t = m.steady_state(op);
        let p = m.power_breakdown(op);
        // At steady state, heat out through the base equals heat in.
        let g = m.conductances(op);
        let out = (g.base_ambient() * (t.base - spec.ambient())).get();
        prop_assert!((out - p.total().get()).abs() < 1e-6,
            "out {out} W vs generated {} W", p.total());
    }

    #[test]
    fn ambient_shift_is_exact(spec in spec_strategy(), rpm in rpm_strategy(), drop in 1.0f64..15.0) {
        let m = ThermalModel::new(spec);
        let cooled_spec = spec.with_ambient(Celsius::new(spec.ambient().get() - drop));
        let mc = ThermalModel::new(cooled_spec);
        let op = OperatingPoint::seeking(rpm);
        let dt = (m.steady_air_temp(op) - mc.steady_air_temp(op)).get();
        prop_assert!((dt - drop).abs() < 1e-6, "linear network shifts exactly");
    }

    #[test]
    fn envelope_rpm_is_exactly_at_boundary(spec in spec_strategy()) {
        let m = ThermalModel::new(spec);
        if let Some(rpm) =
            max_rpm_within_envelope(&m, 1.0, THERMAL_ENVELOPE, EnvelopeSearch::default())
        {
            let t = m.steady_air_temp(OperatingPoint::seeking(rpm));
            prop_assert!(t <= THERMAL_ENVELOPE);
            let t_above = m.steady_air_temp(OperatingPoint::seeking(rpm * 1.02));
            prop_assert!(t_above > THERMAL_ENVELOPE || rpm.get() >= 499_000.0);
        }
    }

    #[test]
    fn transient_approaches_steady_from_both_sides(
        spec in spec_strategy(),
        rpm in 10_000.0f64..60_000.0,
    ) {
        let m = ThermalModel::new(spec);
        let op = OperatingPoint::seeking(Rpm::new(rpm));
        let steady = m.steady_air_temp(op);

        // From cold.
        let mut sim = TransientSim::from_ambient(&m);
        sim.advance(&m, op, Seconds::new(7_200.0));
        prop_assert!((sim.temps().air - steady).abs().get() < 0.6,
            "cold start: {} vs steady {}", sim.temps().air, steady);
        prop_assert!(sim.temps().air <= steady + units::TempDelta::new(1e-6),
            "no overshoot from below");
    }
}

// Long integrations make these cases expensive; a handful suffices
// because every case already sweeps thousands of steps.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn cached_factorization_matches_naive_stepping(
        spec in spec_strategy(),
        rpm_a in 10_000.0f64..60_000.0,
        rpm_b in 10_000.0f64..60_000.0,
    ) {
        // The cached step factorization must be numerically
        // indistinguishable from factoring afresh on every step, even
        // while the operating point keeps flipping under it.
        let m = ThermalModel::new(spec);
        let ops = [
            OperatingPoint::seeking(Rpm::new(rpm_a)),
            OperatingPoint::idle_vcm(Rpm::new(rpm_b)),
        ];
        let mut cached = TransientSim::from_ambient(&m)
            .with_step(Seconds::new(0.1))
            .expect("positive step");
        let mut naive = cached.clone().with_step_cache(false);
        for step in 0..10_000usize {
            let op = ops[(step / 100) % 2];
            cached.step(&m, op);
            naive.step(&m, op);
            let (c, n) = (cached.temps(), naive.temps());
            prop_assert!((c.air - n.air).abs().get() <= 1e-12, "air drifted at step {step}");
            prop_assert!((c.spindle - n.spindle).abs().get() <= 1e-12, "spindle drifted at step {step}");
            prop_assert!((c.base - n.base).abs().get() <= 1e-12, "base drifted at step {step}");
            prop_assert!((c.vcm - n.vcm).abs().get() <= 1e-12, "vcm drifted at step {step}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn integrators_converge_to_the_same_steady_state(
        spec in spec_strategy(),
        rpm in 10_000.0f64..60_000.0,
    ) {
        let m = ThermalModel::new(spec);
        let op = OperatingPoint::seeking(Rpm::new(rpm));
        let air_at = |integrator, dt: f64, horizon: f64| {
            let mut sim = TransientSim::from_ambient(&m)
                .with_step(Seconds::new(dt))
                .expect("positive step")
                .with_integrator(integrator);
            sim.advance(&m, op, Seconds::new(horizon));
            sim.temps().air.get()
        };

        // Mid-transient, the schemes' truncation errors are O(dt), so
        // their disagreement must shrink as the step is refined...
        let mut diffs = Vec::new();
        for dt in [0.1, 0.05, 0.025] {
            diffs.push((air_at(Integrator::ForwardEuler, dt, 60.0)
                - air_at(Integrator::BackwardEuler, dt, 60.0)).abs());
        }
        prop_assert!(diffs[2] <= diffs[0] + 1e-9,
            "refining the step widened the scheme gap: {:?}", diffs);
        prop_assert!(diffs[2] < 0.5, "schemes disagree mid-transient: {:?}", diffs);

        // ...and at the horizon both settle onto the same steady state.
        let fe = air_at(Integrator::ForwardEuler, 0.1, 7_200.0);
        let be = air_at(Integrator::BackwardEuler, 0.1, 7_200.0);
        prop_assert!((fe - be).abs() < 0.1, "steady states diverge: {fe} vs {be}");
    }
}
