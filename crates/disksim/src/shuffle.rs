//! Disk shuffling: popularity-based block placement.
//!
//! §5.4 points at Ruemmler and Wilkes' *disk shuffling* as a DTM
//! enhancer: "techniques for co-locating data items to reduce seek
//! overheads can reduce VCM power, and further enhance the potential of
//! throttling." This module implements the classical organ-pipe
//! arrangement — hottest extents in the middle of the address space,
//! alternating outward by falling popularity — as an LBA remapping layer
//! a trace can be passed through before simulation.

use crate::request::Request;
use serde::{Deserialize, Serialize};

/// Access counts over fixed-size extents of the logical address space.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccessHistogram {
    extent_sectors: u64,
    total_sectors: u64,
    counts: Vec<u64>,
}

impl AccessHistogram {
    /// Creates an empty histogram over `total_sectors`, bucketed into
    /// `extent_sectors`-sized extents.
    ///
    /// # Panics
    ///
    /// Panics if either argument is zero or the device has fewer sectors
    /// than one extent.
    pub fn new(total_sectors: u64, extent_sectors: u64) -> Self {
        assert!(extent_sectors > 0, "zero extent size");
        assert!(
            total_sectors >= extent_sectors,
            "device smaller than one extent"
        );
        let extents = total_sectors.div_ceil(extent_sectors) as usize;
        Self {
            extent_sectors,
            total_sectors,
            counts: vec![0; extents],
        }
    }

    /// Extent size in sectors.
    pub fn extent_sectors(&self) -> u64 {
        self.extent_sectors
    }

    /// Number of extents.
    pub fn extents(&self) -> usize {
        self.counts.len()
    }

    /// Records one request (every extent it touches counts once).
    pub fn record(&mut self, request: &Request) {
        let first = request.lba / self.extent_sectors;
        let last = (request.end_lba().saturating_sub(1)) / self.extent_sectors;
        for e in first..=last.min(self.counts.len() as u64 - 1) {
            self.counts[e as usize] += 1;
        }
    }

    /// Builds a histogram from a whole trace.
    pub fn from_trace(trace: &[Request], total_sectors: u64, extent_sectors: u64) -> Self {
        let mut h = Self::new(total_sectors, extent_sectors);
        for r in trace {
            h.record(r);
        }
        h
    }

    /// Fraction of accesses landing in the hottest `k` extents.
    pub fn concentration(&self, k: usize) -> f64 {
        let total: u64 = self.counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let mut sorted = self.counts.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let hot: u64 = sorted.iter().take(k).sum();
        hot as f64 / total as f64
    }
}

/// An extent-granular LBA permutation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShuffleMap {
    extent_sectors: u64,
    total_sectors: u64,
    /// `forward[old_extent] = new_extent`.
    forward: Vec<u32>,
}

impl ShuffleMap {
    /// Builds the organ-pipe arrangement from an access histogram: the
    /// most popular extent moves to the middle of the address space and
    /// successively less popular extents alternate left and right of it,
    /// which minimizes the expected arm travel for independent accesses.
    pub fn organ_pipe(histogram: &AccessHistogram) -> Self {
        let n = histogram.extents();
        // Rank extents by popularity (stable: ties keep address order).
        let mut by_popularity: Vec<usize> = (0..n).collect();
        by_popularity.sort_by_key(|&e| std::cmp::Reverse(histogram.counts[e]));

        // Organ-pipe slot order: middle, middle+1, middle-1, ...
        let mut slots = Vec::with_capacity(n);
        let middle = n / 2;
        slots.push(middle);
        for offset in 1..=n {
            if slots.len() == n {
                break;
            }
            if middle + offset < n {
                slots.push(middle + offset);
            }
            if slots.len() == n {
                break;
            }
            if offset <= middle {
                slots.push(middle - offset);
            }
        }
        debug_assert_eq!(slots.len(), n);

        let mut forward = vec![0u32; n];
        for (rank, &old_extent) in by_popularity.iter().enumerate() {
            forward[old_extent] = slots[rank] as u32;
        }
        Self {
            extent_sectors: histogram.extent_sectors,
            total_sectors: histogram.total_sectors,
            forward,
        }
    }

    /// The identity placement (for control experiments).
    pub fn identity(total_sectors: u64, extent_sectors: u64) -> Self {
        let h = AccessHistogram::new(total_sectors, extent_sectors);
        let n = h.extents();
        Self {
            extent_sectors,
            total_sectors,
            forward: (0..n as u32).collect(),
        }
    }

    /// Remaps one LBA. Requests are assumed not to straddle extents
    /// (the remapped offset stays within the extent); LBAs past the end
    /// of the mapped space pass through unchanged.
    pub fn remap(&self, lba: u64) -> u64 {
        let extent = lba / self.extent_sectors;
        if extent as usize >= self.forward.len() {
            return lba;
        }
        let offset = lba % self.extent_sectors;
        self.forward[extent as usize] as u64 * self.extent_sectors + offset
    }

    /// Remaps a whole trace, clamping any request whose remapped extent
    /// sits at the end of the device so it stays in range.
    pub fn apply(&self, trace: &[Request]) -> Vec<Request> {
        trace
            .iter()
            .map(|r| {
                let mut out = *r;
                out.lba = self
                    .remap(r.lba)
                    .min(self.total_sectors.saturating_sub(r.sectors as u64));
                out
            })
            .collect()
    }

    /// `true` when the extent mapping is a bijection.
    pub fn is_permutation(&self) -> bool {
        let mut seen = vec![false; self.forward.len()];
        for &t in &self.forward {
            let t = t as usize;
            if t >= seen.len() || seen[t] {
                return false;
            }
            seen[t] = true;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::RequestKind;
    use units::Seconds;

    fn skewed_trace(total: u64, n: u64) -> Vec<Request> {
        // 80% of accesses hit two extents at opposite ends of the disk;
        // the rest scatter.
        (0..n)
            .map(|i| {
                let lba = match i % 10 {
                    0..=3 => 100,                         // hot head
                    4..=7 => total - 5_000,               // hot tail
                    _ => (i.wrapping_mul(48_271) * 4_096) % (total - 64),
                };
                Request::new(i, Seconds::new(i as f64 / 100.0), 0, lba, 8, RequestKind::Read)
            })
            .collect()
    }

    #[test]
    fn histogram_counts_and_concentration() {
        let total = 1_000_000;
        let trace = skewed_trace(total, 1_000);
        let h = AccessHistogram::from_trace(&trace, total, 4_096);
        assert!(h.concentration(2) >= 0.8, "two extents carry 80%");
        assert!(h.concentration(h.extents()) > 0.999);
    }

    #[test]
    fn organ_pipe_is_a_permutation_centering_hot_data() {
        let total = 1_000_000;
        let trace = skewed_trace(total, 2_000);
        let h = AccessHistogram::from_trace(&trace, total, 4_096);
        let map = ShuffleMap::organ_pipe(&h);
        assert!(map.is_permutation());
        // The two hot extents land adjacent to the middle of the space.
        let middle_extent = (h.extents() / 2) as u64 * 4_096;
        let hot_head = map.remap(100);
        let hot_tail = map.remap(total - 5_000);
        for hot in [hot_head, hot_tail] {
            let distance = hot.abs_diff(middle_extent);
            assert!(
                distance <= 2 * 4_096,
                "hot extent should sit by the middle: {distance} sectors away"
            );
        }
    }

    #[test]
    fn shuffling_reduces_arm_travel() {
        use crate::{DiskSpec, StorageSystem, SystemConfig};
        use units::Rpm;

        let spec = DiskSpec::era(2001, 2, Rpm::new(10_000.0));
        let total = StorageSystem::new(SystemConfig::single_disk(spec.clone()))
            .unwrap()
            .logical_sectors();
        let trace = skewed_trace(total, 3_000);

        let run = |trace: &[Request]| {
            let mut sys =
                StorageSystem::new(SystemConfig::single_disk(spec.clone())).unwrap();
            for r in trace {
                sys.submit(*r).unwrap();
            }
            let _ = sys.drain();
            (
                sys.disks()[0].mean_seek_distance(),
                sys.disks()[0].seek_time().get(),
            )
        };

        let (base_dist, base_seek) = run(&trace);
        let h = AccessHistogram::from_trace(&trace, total, 4_096);
        let shuffled = ShuffleMap::organ_pipe(&h).apply(&trace);
        let (new_dist, new_seek) = run(&shuffled);

        assert!(
            new_dist < base_dist * 0.5,
            "organ-pipe should at least halve arm travel: {base_dist:.0} -> {new_dist:.0} cylinders"
        );
        assert!(new_seek < base_seek, "less travel, less actuator time");
    }

    #[test]
    fn identity_map_changes_nothing() {
        let total = 1_000_000;
        let trace = skewed_trace(total, 200);
        let id = ShuffleMap::identity(total, 4_096);
        assert!(id.is_permutation());
        assert_eq!(id.apply(&trace), trace);
    }

    #[test]
    fn remap_preserves_intra_extent_offsets() {
        let total = 1_000_000;
        let trace = skewed_trace(total, 500);
        let h = AccessHistogram::from_trace(&trace, total, 4_096);
        let map = ShuffleMap::organ_pipe(&h);
        for lba in [0u64, 1, 4_095, 4_096, 123_456] {
            assert_eq!(map.remap(lba) % 4_096, lba % 4_096);
        }
    }
}
