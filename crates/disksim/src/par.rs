//! Deterministic work-stealing parallelism shared by the lab engine and
//! the fleet's sharded event loop.
//!
//! The scheduler is free to interleave work any way it likes, but
//! [`parallel_map`] always returns its outputs in item order, so callers
//! that keep `f` pure get byte-identical results at any thread count —
//! the property the experiment cache and the fleet determinism tests
//! lean on. `disklab::engine` re-exports these functions; they live here
//! so `diskfleet` can advance enclosure shards through the same
//! discipline without a dependency cycle through the lab crate.

use std::collections::VecDeque;
use std::sync::Mutex;
use std::thread;

/// The worker count [`parallel_map`] uses by default: the machine's
/// parallelism, capped so a sweep nested inside an engine worker does
/// not fan out absurdly wide.
pub fn default_parallelism() -> usize {
    thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(8)
}

/// Maps `f` over `items` across up to `threads` workers, using the same
/// work-stealing discipline as the experiment scheduler, and returns
/// the outputs in item order.
///
/// The scheduling is free to interleave any way it likes, but the
/// result is exactly what the serial `items.into_iter().map(f)` would
/// produce — experiments lean on that to keep their artifacts
/// byte-identical across thread counts. `f` must therefore be pure with
/// respect to ordering: each call sees only its own item.
///
/// # Panics
///
/// Propagates a panic from any invocation of `f`.
pub fn parallel_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let workers = threads.clamp(1, items.len().max(1));
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }

    let items: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let slots: Vec<Mutex<Option<R>>> = (0..items.len()).map(|_| Mutex::new(None)).collect();
    let queues: Vec<Mutex<VecDeque<usize>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for i in 0..items.len() {
        queues[i % workers].lock().expect("queue lock").push_back(i);
    }

    thread::scope(|scope| {
        let (items, slots, queues, f) = (&items, &slots, &queues, &f);
        for worker in 0..workers {
            scope.spawn(move || {
                while let Some(i) = next_job(queues, worker) {
                    let item = items[i]
                        .lock()
                        .expect("item lock")
                        .take()
                        .expect("each job is dispatched exactly once");
                    let out = f(item);
                    *slots[i].lock().expect("slot lock") = Some(out);
                }
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot lock")
                .expect("every dispatched job stores its result")
        })
        .collect()
}

/// Runs `f` on every item of `items` in place across up to `threads`
/// workers, splitting the slice into contiguous chunks.
///
/// The in-place form of [`parallel_map`] for callers that mutate
/// long-lived state (the fleet advances its enclosures through each
/// epoch this way): no per-call `Vec` of items is built and no results
/// are collected, so a steady-state epoch loop allocates nothing here.
/// Items never move, and `f` sees only its own item, so the outcome is
/// exactly what the serial `items.iter_mut().for_each(f)` would
/// produce at any thread count.
///
/// # Panics
///
/// Propagates a panic from any invocation of `f`.
pub fn parallel_for_each<T, F>(items: &mut [T], threads: usize, f: F)
where
    T: Send,
    F: Fn(&mut T) + Sync,
{
    let workers = threads.clamp(1, items.len().max(1));
    if workers <= 1 {
        for item in items {
            f(item);
        }
        return;
    }
    let chunk = items.len().div_ceil(workers);
    thread::scope(|scope| {
        let f = &f;
        for slice in items.chunks_mut(chunk) {
            scope.spawn(move || {
                for item in slice {
                    f(item);
                }
            });
        }
    });
}

/// Merges pre-sorted runs into one sorted vector, equal to the *stable*
/// sort of their concatenation: on ties (`cmp` returns `Equal`) the
/// element from the earlier run wins, and within a run original order is
/// kept. Runs merge pairwise-adjacent in `ceil(log2(k))` rounds, each
/// round fanned out through [`parallel_map`], so the result is
/// byte-identical at any thread count while the heavy merging
/// parallelizes. Empty runs are fine; each run must already be sorted
/// under `cmp` (ascending).
///
/// This is the fleet's epoch-boundary event merge: every enclosure
/// emits a time-sorted event run per epoch and the global trace is the
/// stable merge of those runs — exactly what the old global
/// `sort_by(total_cmp)` over the concatenation produced, without the
/// serial O(n log n) sort.
pub fn parallel_merge_by<T, F>(runs: Vec<Vec<T>>, threads: usize, cmp: F) -> Vec<T>
where
    T: Send,
    F: Fn(&T, &T) -> std::cmp::Ordering + Sync,
{
    let mut runs = runs;
    while runs.len() > 1 {
        let mut pairs = Vec::with_capacity(runs.len().div_ceil(2));
        let mut it = runs.into_iter();
        while let Some(left) = it.next() {
            pairs.push((left, it.next()));
        }
        runs = parallel_map(pairs, threads, |(left, right)| match right {
            Some(right) => merge_two(left, right, &cmp),
            None => left,
        });
    }
    runs.pop().unwrap_or_default()
}

/// Stable two-way merge: ties and within-run order favour `left`.
fn merge_two<T, F>(left: Vec<T>, right: Vec<T>, cmp: &F) -> Vec<T>
where
    F: Fn(&T, &T) -> std::cmp::Ordering,
{
    let mut out = Vec::with_capacity(left.len() + right.len());
    let mut left = left.into_iter().peekable();
    let mut right = right.into_iter().peekable();
    while let (Some(l), Some(r)) = (left.peek(), right.peek()) {
        if cmp(l, r) != std::cmp::Ordering::Greater {
            out.extend(left.next());
        } else {
            out.extend(right.next());
        }
    }
    out.extend(left);
    out.extend(right);
    out
}

/// Pops from the worker's own deque, stealing from peers when empty.
/// Exposed so the engine's experiment scheduler can share the exact
/// stealing order.
pub fn next_job(queues: &[Mutex<VecDeque<usize>>], worker: usize) -> Option<usize> {
    if let Some(job) = queues[worker].lock().expect("queue lock").pop_front() {
        return Some(job);
    }
    for offset in 1..queues.len() {
        let victim = (worker + offset) % queues.len();
        if let Some(job) = queues[victim].lock().expect("queue lock").pop_back() {
            return Some(job);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_item_order() {
        let squares = |threads| parallel_map((0..100).collect::<Vec<i64>>(), threads, |x| x * x);
        let serial = squares(1);
        assert_eq!(serial, (0..100).map(|x| x * x).collect::<Vec<i64>>());
        for threads in [2, 3, 8, 64] {
            assert_eq!(squares(threads), serial, "threads = {threads}");
        }
    }

    #[test]
    fn parallel_map_handles_empty_and_tiny_inputs() {
        assert_eq!(parallel_map(Vec::<u8>::new(), 8, |x| x), Vec::<u8>::new());
        assert_eq!(parallel_map(vec![7], 8, |x| x + 1), vec![8]);
    }

    #[test]
    fn merge_matches_stable_sort_with_ties_and_empty_runs() {
        // Keys repeat across runs; payloads record (run, slot) so the
        // stable tie order (earlier run first, then within-run order) is
        // observable.
        let runs: Vec<Vec<(u32, usize, usize)>> = vec![
            vec![(1, 0, 0), (3, 0, 1), (3, 0, 2), (9, 0, 3)],
            vec![],
            vec![(0, 2, 0), (3, 2, 1), (9, 2, 2)],
            vec![(3, 3, 0)],
            vec![],
        ];
        let mut expected: Vec<(u32, usize, usize)> = runs.concat();
        expected.sort_by_key(|e| e.0); // sort_by_key is stable
        for threads in [1, 2, 8] {
            let got = parallel_merge_by(runs.clone(), threads, |a, b| a.0.cmp(&b.0));
            assert_eq!(got, expected, "threads = {threads}");
        }
        assert_eq!(
            parallel_merge_by(Vec::<Vec<u8>>::new(), 4, |a, b| a.cmp(b)),
            Vec::<u8>::new()
        );
    }

    #[test]
    fn stealing_drains_all_queues() {
        let queues: Vec<Mutex<VecDeque<usize>>> =
            (0..3).map(|_| Mutex::new(VecDeque::new())).collect();
        for i in 0..7 {
            queues[i % 3].lock().unwrap().push_back(i);
        }
        let mut seen = Vec::new();
        // Worker 2 alone must still drain everything via stealing.
        while let Some(job) = next_job(&queues, 2) {
            seen.push(job);
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..7).collect::<Vec<_>>());
    }
}
