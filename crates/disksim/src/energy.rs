//! Drive energy accounting.
//!
//! The paper grew out of the authors' DRPM work on disk *power*
//! management, and §5's throttling mechanisms modulate exactly the two
//! dominant consumers: the spindle (windage + motor loss, scaling with
//! the same ~2.8th power of RPM as the heat it becomes) and the actuator
//! (drawn only while seeking). This module meters those components so
//! DTM policies can report the energy side of their decisions.

use serde::{Deserialize, Serialize};
use units::{Power, Rpm, Seconds};

/// Power coefficients of one drive.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Spindle power at [`Self::ref_rpm`], watts (windage + motor +
    /// bearing, era server drive ≈ 8 W at 10 kRPM).
    pub spindle_ref_watts: f64,
    /// Reference speed for the spindle coefficient.
    pub ref_rpm: Rpm,
    /// RPM exponent of spindle power (the paper's 2.8).
    pub rpm_exponent: f64,
    /// Actuator power while seeking, watts.
    pub vcm_watts: f64,
    /// Controller/electronics floor, watts (always on).
    pub electronics_watts: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self {
            spindle_ref_watts: 8.0,
            ref_rpm: Rpm::new(10_000.0),
            rpm_exponent: 2.8,
            vcm_watts: 3.9,
            electronics_watts: 4.0,
        }
    }
}

impl EnergyModel {
    /// Instantaneous spindle power at a speed.
    ///
    /// # Examples
    ///
    /// ```
    /// use disksim::EnergyModel;
    /// use units::Rpm;
    ///
    /// let m = EnergyModel::default();
    /// let p = m.spindle_power(Rpm::new(20_000.0));
    /// // Doubling RPM costs 2^2.8 ~ 7x the spindle power.
    /// assert!((p.get() / 8.0 - 2f64.powf(2.8)).abs() < 1e-9);
    /// ```
    pub fn spindle_power(&self, rpm: Rpm) -> Power {
        Power::new(
            self.spindle_ref_watts * (rpm.get() / self.ref_rpm.get()).powf(self.rpm_exponent),
        )
    }
}

/// Accumulated energy, by component, in joules.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyReport {
    /// Spindle energy.
    pub spindle_j: f64,
    /// Actuator energy.
    pub vcm_j: f64,
    /// Electronics energy.
    pub electronics_j: f64,
    /// Wall-clock time metered.
    pub elapsed: Seconds,
}

impl EnergyReport {
    /// Total energy in joules.
    pub fn total_j(&self) -> f64 {
        self.spindle_j + self.vcm_j + self.electronics_j
    }

    /// Mean power over the metered interval.
    pub fn mean_power(&self) -> Power {
        if self.elapsed.get() <= 0.0 {
            Power::ZERO
        } else {
            Power::new(self.total_j() / self.elapsed.get())
        }
    }
}

/// Integrates drive energy over windows of operation.
///
/// The meter is sampling-based so it stays correct when a DTM policy
/// changes the spindle speed mid-run: the caller reports each window's
/// speed and the seek time that actually occurred in it.
///
/// # Examples
///
/// ```
/// use disksim::{EnergyMeter, EnergyModel};
/// use units::{Rpm, Seconds};
///
/// let mut meter = EnergyMeter::new(EnergyModel::default());
/// // One second at 10 kRPM with the actuator busy half the time:
/// meter.accumulate(Rpm::new(10_000.0), Seconds::new(0.5), Seconds::new(1.0));
/// let report = meter.report();
/// assert!((report.spindle_j - 8.0).abs() < 1e-9);
/// assert!((report.vcm_j - 3.9 * 0.5).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyMeter {
    model: EnergyModel,
    report: EnergyReport,
}

impl EnergyMeter {
    /// Creates a meter with the given coefficients.
    pub fn new(model: EnergyModel) -> Self {
        Self {
            model,
            report: EnergyReport::default(),
        }
    }

    /// The coefficients in use.
    pub fn model(&self) -> &EnergyModel {
        &self.model
    }

    /// Adds one window: the spindle ran at `rpm` for `elapsed`, of which
    /// the actuator was seeking for `seek_time`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `seek_time > elapsed` or either is
    /// negative.
    pub fn accumulate(&mut self, rpm: Rpm, seek_time: Seconds, elapsed: Seconds) {
        debug_assert!(elapsed.get() >= 0.0 && seek_time.get() >= 0.0);
        debug_assert!(
            seek_time.get() <= elapsed.get() + 1e-9,
            "actuator cannot seek longer than the window"
        );
        let dt = elapsed.get();
        self.report.spindle_j += self.model.spindle_power(rpm).get() * dt;
        self.report.vcm_j += self.model.vcm_watts * seek_time.get();
        self.report.electronics_j += self.model.electronics_watts * dt;
        self.report.elapsed += elapsed;
    }

    /// The accumulated energy so far.
    pub fn report(&self) -> EnergyReport {
        self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spindle_power_scaling() {
        let m = EnergyModel::default();
        let base = m.spindle_power(Rpm::new(10_000.0)).get();
        assert!((base - 8.0).abs() < 1e-12);
        let half = m.spindle_power(Rpm::new(5_000.0)).get();
        assert!((half - 8.0 / 2f64.powf(2.8)).abs() < 1e-9);
    }

    #[test]
    fn meter_integrates_components() {
        let mut meter = EnergyMeter::new(EnergyModel::default());
        for _ in 0..10 {
            meter.accumulate(
                Rpm::new(10_000.0),
                Seconds::from_millis(100.0),
                Seconds::new(1.0),
            );
        }
        let r = meter.report();
        assert!((r.elapsed.get() - 10.0).abs() < 1e-12);
        assert!((r.spindle_j - 80.0).abs() < 1e-9);
        assert!((r.vcm_j - 3.9).abs() < 1e-9);
        assert!((r.electronics_j - 40.0).abs() < 1e-9);
        assert!((r.total_j() - (80.0 + 3.9 + 40.0)).abs() < 1e-9);
        assert!((r.mean_power().get() - r.total_j() / 10.0).abs() < 1e-12);
    }

    #[test]
    fn speed_drop_saves_energy() {
        // The DRPM premise: a window at 12 kRPM costs far less spindle
        // energy than one at 20 kRPM.
        let m = EnergyModel::default();
        let mut fast = EnergyMeter::new(m);
        let mut slow = EnergyMeter::new(m);
        fast.accumulate(Rpm::new(20_000.0), Seconds::ZERO, Seconds::new(1.0));
        slow.accumulate(Rpm::new(12_000.0), Seconds::ZERO, Seconds::new(1.0));
        assert!(slow.report().spindle_j < fast.report().spindle_j * 0.3);
    }

    #[test]
    fn empty_meter_reports_zero() {
        let meter = EnergyMeter::new(EnergyModel::default());
        assert_eq!(meter.report().total_j(), 0.0);
        assert_eq!(meter.report().mean_power(), Power::ZERO);
    }
}
