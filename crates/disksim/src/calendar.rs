//! A bucketed calendar queue for arrival events.
//!
//! [`StorageSystem`](crate::StorageSystem) used to order pending
//! arrivals in a `BinaryHeap<Reverse<Arrival>>`: O(log n) per push/pop
//! and a fresh sift through the heap array for every event. Arrival
//! streams are almost sorted already (admission loops release requests
//! a control window at a time), which is the textbook case for a
//! calendar queue [Brown 1988]: a ring of fixed-width time buckets plus
//! a sorted *front* bucket, giving O(1) amortized push and pop.
//!
//! The queue pops in **exactly** the order the heap did — ascending
//! [`TimeKey`] under `f64::total_cmp`, submission sequence breaking
//! ties — which is what keeps every simulation artifact byte-identical
//! after the swap (see the equivalence property test in
//! `tests/properties.rs`). Three structural invariants carry the
//! argument:
//!
//! 1. every key in `front` precedes `base` in the total order, and
//!    `front` is kept sorted (descending, so `pop` is `Vec::pop`);
//! 2. ring bucket `i` holds exactly the keys in
//!    `[base + iw, base + (i+1)w)`, so draining buckets in ring order
//!    and sorting each drained bucket visits keys in global order;
//! 3. nothing in `overflow` precedes `base + w`: pushes land there only
//!    when beyond the ring horizon, and the refill loop merges the
//!    overflow back *before* advancing `base` past its minimum.
//!
//! Non-finite times ride along: keys on the negative side of the total
//! order (`-inf`, negative NaN) go straight to `front`, keys on the
//! positive side (`+inf`, positive NaN) to `overflow`, and `-0.0` is
//! canonicalized to `0.0` for bucket *placement* only so that keys the
//! total order distinguishes but arithmetic does not can never straddle
//! a bucket boundary.

/// Orders event times totally. Compares the time via `f64::total_cmp`
/// (total even for NaN), then the submission sequence — so two events
/// at the same instant pop in submission order.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TimeKey(f64, u64);

impl TimeKey {
    /// A key for an event at `time` with submission sequence `seq`.
    pub fn new(time: f64, seq: u64) -> Self {
        Self(time, seq)
    }

    /// The event time.
    pub fn time(&self) -> f64 {
        self.0
    }

    /// The submission sequence number (the tie-breaker).
    pub fn seq(&self) -> u64 {
        self.1
    }
}

impl Eq for TimeKey {}

impl Ord for TimeKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .total_cmp(&other.0)
            .then_with(|| self.1.cmp(&other.1))
    }
}

impl PartialOrd for TimeKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Ring size. Large enough that a control-window admission pattern
/// (everything within a second or two of the clock) never overflows.
const BUCKETS: usize = 512;

/// Default bucket width in seconds: 5 ms puts a 250 ms control window
/// across 50 buckets and gives the ring a 2.56 s horizon.
const DEFAULT_WIDTH: f64 = 0.005;

/// Floor for the adaptive width so a degenerate spread (all ties)
/// cannot collapse the ring into zero-width buckets.
const MIN_WIDTH: f64 = 1e-9;

/// Maps `-0.0` to `0.0` for bucket placement. `TimeKey`'s total order
/// distinguishes the two zeros but bucket arithmetic does not; placing
/// both in the same bucket lets the within-bucket sort order them.
fn canon(t: f64) -> f64 {
    if t == 0.0 {
        0.0
    } else {
        t
    }
}

/// A min-ordered event queue over [`TimeKey`] with O(1) amortized
/// push/pop for near-sorted streams.
///
/// # Examples
///
/// ```
/// use disksim::calendar::{CalendarQueue, TimeKey};
///
/// let mut q = CalendarQueue::new();
/// q.push(TimeKey::new(2.0, 1), "late");
/// q.push(TimeKey::new(1.0, 2), "early");
/// assert_eq!(q.pop(), Some((TimeKey::new(1.0, 2), "early")));
/// assert_eq!(q.pop(), Some((TimeKey::new(2.0, 1), "late")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct CalendarQueue<T> {
    /// Keys preceding `base`, sorted descending so `pop` is `Vec::pop`.
    front: Vec<(TimeKey, T)>,
    /// `ring[(cursor + i) % BUCKETS]` holds `[base + iw, base + (i+1)w)`.
    ring: Vec<Vec<(TimeKey, T)>>,
    cursor: usize,
    base: f64,
    width: f64,
    ring_len: usize,
    /// Events beyond the ring horizon (and `+inf` / positive-NaN keys).
    overflow: Vec<(TimeKey, T)>,
    overflow_min: Option<TimeKey>,
    len: usize,
    /// Reused by overflow merges so redistribution allocates nothing.
    scratch: Vec<(TimeKey, T)>,
}

impl<T> Default for CalendarQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> CalendarQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        Self {
            front: Vec::new(),
            ring: (0..BUCKETS).map(|_| Vec::new()).collect(),
            cursor: 0,
            base: 0.0,
            width: DEFAULT_WIDTH,
            ring_len: 0,
            overflow: Vec::new(),
            overflow_min: None,
            len: 0,
            scratch: Vec::new(),
        }
    }

    /// Events queued.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Queues an event.
    pub fn push(&mut self, key: TimeKey, item: T) {
        if self.len == 0 {
            // Rebase an empty queue around the new event, so a long idle
            // gap never forces events through the sorted front.
            let t = canon(key.0);
            if t.is_finite() {
                self.base = t;
            }
        }
        self.len += 1;
        let t = canon(key.0);
        if !t.is_finite() {
            if t.is_sign_negative() {
                // -inf / negative NaN precede every finite key.
                self.push_front(key, item);
            } else {
                self.push_overflow(key, item);
            }
            return;
        }
        if t < self.base {
            self.push_front(key, item);
            return;
        }
        // Saturating cast: a huge quotient (or one past the horizon)
        // lands in overflow.
        let idx = ((t - self.base) / self.width) as usize;
        if idx >= BUCKETS {
            self.push_overflow(key, item);
        } else {
            self.ring[(self.cursor + idx) % BUCKETS].push((key, item));
            self.ring_len += 1;
        }
    }

    /// Removes and returns the minimum event.
    pub fn pop(&mut self) -> Option<(TimeKey, T)> {
        if self.front.is_empty() && !self.refill_front() {
            return None;
        }
        let kv = self.front.pop()?;
        self.len -= 1;
        Some(kv)
    }

    /// The minimum key, staging the next events into the sorted front
    /// (amortized O(1), like [`Self::pop`]).
    pub fn peek(&mut self) -> Option<&TimeKey> {
        if self.front.is_empty() && !self.refill_front() {
            return None;
        }
        self.front.last().map(|(k, _)| k)
    }

    /// The time of the minimum event, via the [`Self::peek`] fast path.
    ///
    /// The k-way merge at the fleet's epoch boundary asks every shard
    /// for its next event time before deciding which shard advances;
    /// this answers without popping, so no pop/re-push churn at epoch
    /// boundaries and no ring scan (amortized O(1)).
    pub fn peek_time(&mut self) -> Option<f64> {
        self.peek().map(TimeKey::time)
    }

    /// The minimum key without staging (for `&self` callers). Scans the
    /// ring for its first occupied bucket, so prefer [`Self::peek`] in
    /// hot loops.
    pub fn min_key(&self) -> Option<TimeKey> {
        if self.len == 0 {
            return None;
        }
        let mut best: Option<TimeKey> = self.front.last().map(|(k, _)| *k);
        if best.is_none() && self.ring_len > 0 {
            let mut c = self.cursor;
            loop {
                if let Some(m) = self.ring[c].iter().map(|(k, _)| *k).min() {
                    best = Some(m);
                    break;
                }
                c = (c + 1) % BUCKETS;
            }
        }
        match (best, self.overflow_min) {
            (Some(b), Some(o)) => Some(b.min(o)),
            (b, o) => b.or(o),
        }
    }

    /// Every queued event in pop order (ascending key), for
    /// checkpointing. Pop order is a pure function of the queued key
    /// set (the heap-equivalence property above), so rebuilding a queue
    /// from this list via [`Self::from_sorted_entries`] reproduces the
    /// original's pop sequence exactly, whatever internal bucket layout
    /// either queue happens to have.
    pub fn sorted_entries(&self) -> Vec<(TimeKey, T)>
    where
        T: Clone,
    {
        let mut out: Vec<(TimeKey, T)> = Vec::with_capacity(self.len);
        out.extend(self.front.iter().cloned());
        for bucket in &self.ring {
            out.extend(bucket.iter().cloned());
        }
        out.extend(self.overflow.iter().cloned());
        out.sort_unstable_by_key(|entry| entry.0);
        out
    }

    /// Rebuilds a queue holding exactly `entries` (ascending key
    /// order). The inverse of [`Self::sorted_entries`].
    ///
    /// Bucket sizes are counted up front and reserved in one pass, so a
    /// checkpoint restore fills each bucket at its final capacity
    /// instead of growing every bucket incrementally.
    pub fn from_sorted_entries(entries: Vec<(TimeKey, T)>) -> Self {
        let mut q = Self::new();
        if let Some(&(first, _)) = entries.first() {
            // Mirror `push`'s placement rules against the base the first
            // entry will establish, counting how many land in each slot.
            let base = canon(first.0);
            let base = if base.is_finite() { base } else { q.base };
            let mut front = 0usize;
            let mut overflow = 0usize;
            let mut ring_counts = vec![0u32; BUCKETS];
            for (key, _) in &entries {
                let t = canon(key.0);
                if !t.is_finite() {
                    if t.is_sign_negative() {
                        front += 1;
                    } else {
                        overflow += 1;
                    }
                    continue;
                }
                if t < base {
                    front += 1;
                    continue;
                }
                let idx = ((t - base) / q.width) as usize;
                if idx >= BUCKETS {
                    overflow += 1;
                } else {
                    ring_counts[idx] += 1;
                }
            }
            q.front.reserve(front);
            q.overflow.reserve(overflow);
            for (bucket, &count) in q.ring.iter_mut().zip(&ring_counts) {
                bucket.reserve(count as usize);
            }
        }
        for (key, item) in entries {
            q.push(key, item);
        }
        q
    }

    /// Sorted insert into the descending front.
    fn push_front(&mut self, key: TimeKey, item: T) {
        let pos = self.front.partition_point(|(k, _)| *k > key);
        self.front.insert(pos, (key, item));
    }

    fn push_overflow(&mut self, key: TimeKey, item: T) {
        self.overflow.push((key, item));
        self.overflow_min = Some(match self.overflow_min {
            Some(m) => m.min(key),
            None => key,
        });
    }

    /// Stages the next bucket's events into the sorted front. Returns
    /// whether the front holds anything afterwards.
    fn refill_front(&mut self) -> bool {
        debug_assert!(self.front.is_empty());
        loop {
            if self.ring_len == 0 {
                if self.overflow.is_empty() {
                    return false;
                }
                self.rebase_from_overflow();
                if !self.front.is_empty() {
                    self.front.sort_unstable_by_key(|e| std::cmp::Reverse(e.0));
                    return true;
                }
                continue;
            }
            // Walk to the next occupied bucket — but never advance
            // `base` past the overflow minimum (invariant 3): merge the
            // overflow back into the ring first.
            loop {
                if self
                    .overflow_min
                    .is_some_and(|om| om.0 < self.base + self.width)
                {
                    self.merge_overflow();
                    break;
                }
                if !self.ring[self.cursor].is_empty() {
                    // Drain the bucket into the front wholesale; the
                    // swap recycles both buffers' capacity.
                    std::mem::swap(&mut self.front, &mut self.ring[self.cursor]);
                    self.ring_len -= self.front.len();
                    self.cursor = (self.cursor + 1) % BUCKETS;
                    self.base += self.width;
                    self.front.sort_unstable_by_key(|e| std::cmp::Reverse(e.0));
                    return true;
                }
                self.cursor = (self.cursor + 1) % BUCKETS;
                self.base += self.width;
            }
            if !self.front.is_empty() {
                self.front.sort_unstable_by_key(|e| std::cmp::Reverse(e.0));
                return true;
            }
        }
    }

    /// Re-aims the (empty) ring at the overflow: `base` moves to the
    /// overflow minimum and the width adapts so the spread fits the
    /// ring, then the overflow redistributes.
    fn rebase_from_overflow(&mut self) {
        debug_assert!(self.ring_len == 0 && self.front.is_empty());
        let om = self.overflow_min.expect("overflow is non-empty");
        if !canon(om.0).is_finite() {
            // Only +inf / positive-NaN keys remain: the queue degrades
            // to the sorted front, which orders them by `total_cmp`.
            std::mem::swap(&mut self.front, &mut self.overflow);
            self.overflow_min = None;
            return;
        }
        self.base = canon(om.0);
        let mut max_t = self.base;
        for (k, _) in &self.overflow {
            let t = canon(k.0);
            if t.is_finite() && t > max_t {
                max_t = t;
            }
        }
        let span = max_t - self.base;
        if span > 0.0 && span.is_finite() {
            // Aim the whole spread at 3/4 of the ring so everything
            // lands in one pass with headroom for new pushes.
            self.width = (span / (BUCKETS as f64 * 0.75)).max(MIN_WIDTH);
        }
        self.merge_overflow();
    }

    /// Reclassifies every overflow event against the current `base` /
    /// `width`: into the front (before `base`), the ring (within the
    /// horizon), or back into the overflow. The front is left unsorted;
    /// callers sort it once afterwards.
    fn merge_overflow(&mut self) {
        std::mem::swap(&mut self.overflow, &mut self.scratch);
        for (key, item) in self.scratch.drain(..) {
            let t = canon(key.0);
            if !t.is_finite() {
                self.overflow.push((key, item));
                continue;
            }
            if t < self.base {
                self.front.push((key, item));
                continue;
            }
            let idx = ((t - self.base) / self.width) as usize;
            if idx >= BUCKETS {
                self.overflow.push((key, item));
            } else {
                self.ring[(self.cursor + idx) % BUCKETS].push((key, item));
                self.ring_len += 1;
            }
        }
        self.overflow_min = self.overflow.iter().map(|(k, _)| *k).min();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(q: &mut CalendarQueue<u64>) -> Vec<(f64, u64)> {
        let mut out = Vec::new();
        while let Some((k, v)) = q.pop() {
            assert_eq!(k.seq(), v);
            out.push((k.time(), v));
        }
        out
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut q = CalendarQueue::new();
        for (i, t) in [3.0, 1.0, 2.0, 1.0, 0.5].into_iter().enumerate() {
            q.push(TimeKey::new(t, i as u64), i as u64);
        }
        let order: Vec<u64> = drain(&mut q).into_iter().map(|(_, v)| v).collect();
        assert_eq!(order, vec![4, 1, 3, 2, 0], "ties pop in submission order");
    }

    #[test]
    fn matches_a_binary_heap_on_a_bursty_stream() {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut q = CalendarQueue::new();
        let mut h = BinaryHeap::new();
        let mut x = 0x243F_6A88_85A3_08D3u64;
        for seq in 0..5_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            // Bursts near the clock plus occasional far-future jumps.
            let t = (seq as f64) * 0.002 + (x % 1000) as f64 * 1e-4
                + if x.is_multiple_of(97) { 50.0 } else { 0.0 };
            q.push(TimeKey::new(t, seq), seq);
            h.push(Reverse(TimeKey::new(t, seq)));
            if seq % 3 == 0 {
                assert_eq!(q.pop().map(|(k, _)| k), h.pop().map(|Reverse(k)| k));
            }
        }
        while let Some(Reverse(k)) = h.pop() {
            assert_eq!(q.pop().map(|(k, _)| k), Some(k));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn late_pushes_pop_first() {
        let mut q = CalendarQueue::new();
        for seq in 0..100u64 {
            q.push(TimeKey::new(seq as f64, seq), seq);
        }
        // Drain past t=10, then push an event in the past.
        for _ in 0..12 {
            q.pop();
        }
        q.push(TimeKey::new(0.25, 1_000), 1_000);
        assert_eq!(q.pop().map(|(_, v)| v), Some(1_000));
    }

    #[test]
    fn non_finite_times_sort_by_total_cmp() {
        let mut q = CalendarQueue::new();
        let neg_nan = -f64::NAN;
        let keys = [f64::NAN, f64::NEG_INFINITY, 1.0, f64::INFINITY, neg_nan, -0.0, 0.0];
        for (i, t) in keys.into_iter().enumerate() {
            q.push(TimeKey::new(t, i as u64), i as u64);
        }
        let mut expected: Vec<TimeKey> = keys
            .into_iter()
            .enumerate()
            .map(|(i, t)| TimeKey::new(t, i as u64))
            .collect();
        expected.sort();
        let got: Vec<TimeKey> = std::iter::from_fn(|| q.pop().map(|(k, _)| k)).collect();
        // Compare bit patterns: NaN != NaN under `PartialEq`.
        let bits = |ks: &[TimeKey]| -> Vec<(u64, u64)> {
            ks.iter().map(|k| (k.time().to_bits(), k.seq())).collect()
        };
        assert_eq!(bits(&got), bits(&expected));
    }

    #[test]
    fn min_key_agrees_with_peek_without_staging() {
        let mut q = CalendarQueue::new();
        for seq in 0..200u64 {
            q.push(TimeKey::new((seq as f64 * 7.7) % 13.0 + 3.0, seq), seq);
        }
        while !q.is_empty() {
            let scanned = q.min_key();
            assert_eq!(q.peek().copied(), scanned);
            q.pop();
        }
        assert_eq!(q.min_key(), None);
    }

    #[test]
    fn peek_time_reports_without_popping() {
        let mut q = CalendarQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(TimeKey::new(4.5, 0), 0);
        q.push(TimeKey::new(1.25, 1), 1);
        assert_eq!(q.peek_time(), Some(1.25));
        assert_eq!(q.len(), 2, "peek_time must not pop");
        assert_eq!(q.pop().map(|(_, v)| v), Some(1));
        assert_eq!(q.peek_time(), Some(4.5));
    }

    #[test]
    fn far_future_spread_rebases_adaptively() {
        let mut q = CalendarQueue::new();
        // Spread far beyond the default 2.56 s horizon.
        for seq in 0..1_000u64 {
            q.push(TimeKey::new((seq % 500) as f64 * 60.0, seq), seq);
        }
        let order = drain(&mut q);
        let mut sorted = order.clone();
        sorted.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        assert_eq!(order, sorted);
    }
}
