//! Simulator error type.

/// Errors raised when assembling or driving a storage system.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// The underlying drive geometry was invalid.
    Geometry(diskgeom::GeometryError),
    /// A request addressed a device index the system does not have.
    NoSuchDevice {
        /// Device index requested.
        device: u32,
        /// Devices available.
        available: u32,
    },
    /// A request ran past the end of the addressed device.
    OutOfRange {
        /// First LBA of the request.
        lba: u64,
        /// Sectors requested.
        sectors: u32,
        /// Total sectors on the device.
        capacity: u64,
    },
    /// The system configuration was inconsistent (e.g. RAID-5 with fewer
    /// than three disks).
    BadConfig(String),
    /// A disk failure was injected into an array that is already running
    /// degraded (RAID-5 survives exactly one member loss).
    AlreadyDegraded {
        /// The member that is already marked failed.
        device: u32,
    },
}

impl core::fmt::Display for SimError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Geometry(e) => write!(f, "geometry error: {e}"),
            Self::NoSuchDevice { device, available } => {
                write!(f, "device {device} requested but only {available} configured")
            }
            Self::OutOfRange {
                lba,
                sectors,
                capacity,
            } => write!(
                f,
                "request [{lba}, {}) exceeds device capacity {capacity}",
                lba + *sectors as u64
            ),
            Self::BadConfig(msg) => write!(f, "bad system configuration: {msg}"),
            Self::AlreadyDegraded { device } => {
                write!(f, "array already degraded: member {device} is failed")
            }
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Geometry(e) => Some(e),
            _ => None,
        }
    }
}

impl From<diskgeom::GeometryError> for SimError {
    fn from(e: diskgeom::GeometryError) -> Self {
        Self::Geometry(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = SimError::OutOfRange {
            lba: 100,
            sectors: 8,
            capacity: 50,
        };
        let s = e.to_string();
        assert!(s.contains("100") && s.contains("108") && s.contains("50"));
    }

    #[test]
    fn geometry_error_chains_as_source() {
        use std::error::Error;
        let e = SimError::from(diskgeom::GeometryError::NoPlatters);
        assert!(e.source().is_some());
    }
}
