//! Response-time statistics with the paper's CDF buckets.

use crate::request::Completion;
use serde::{Deserialize, Serialize};
use units::Seconds;

/// The bucket edges (in milliseconds) of the Figure 4 CDF plots:
/// 5, 10, 20, 40, 60, 90, 120, 150, 200, and "200+".
pub const CDF_BUCKETS_MS: [f64; 9] = [5.0, 10.0, 20.0, 40.0, 60.0, 90.0, 120.0, 150.0, 200.0];

/// Aggregated response-time statistics.
///
/// # Examples
///
/// ```
/// use disksim::ResponseStats;
/// use units::Seconds;
///
/// let mut stats = ResponseStats::new();
/// for ms in [2.0, 8.0, 15.0, 300.0] {
///     stats.record(Seconds::from_millis(ms));
/// }
/// assert_eq!(stats.count(), 4);
/// assert!((stats.mean().to_millis() - 81.25).abs() < 1e-9);
/// // 3 of 4 requests finished within 20 ms.
/// let cdf = stats.cdf();
/// assert!((cdf[2].1 - 0.75).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ResponseStats {
    count: u64,
    sum: f64,
    sum_sq: f64,
    max: f64,
    /// Count of samples ≤ each bucket edge, plus a final overflow count.
    bucket_counts: [u64; CDF_BUCKETS_MS.len() + 1],
    /// Reservoir of samples for percentile estimation.
    samples: Vec<f64>,
}

/// Reservoir size for percentile estimation.
const RESERVOIR: usize = 65_536;

/// The splitmix64 mixer: a full-period bijection on `u64` used as the
/// reservoir's deterministic random source.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl ResponseStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one response time.
    pub fn record(&mut self, response: Seconds) {
        let ms = response.to_millis();
        self.count += 1;
        self.sum += ms;
        self.sum_sq += ms * ms;
        self.max = self.max.max(ms);
        let idx = CDF_BUCKETS_MS
            .iter()
            .position(|&edge| ms <= edge)
            .unwrap_or(CDF_BUCKETS_MS.len());
        self.bucket_counts[idx] += 1;
        if self.samples.len() < RESERVOIR {
            self.samples.push(ms);
        } else {
            // Vitter's Algorithm R: sample number `count` replaces a
            // uniformly-drawn slot in 0..count, surviving only when the
            // slot lands inside the reservoir — so every sample ends up
            // retained with equal probability RESERVOIR/count. The
            // "random" draw is splitmix64 keyed on the running count,
            // keeping equal runs bit-identical regardless of threading.
            let j = (splitmix64(self.count) % self.count) as usize;
            if j < RESERVOIR {
                self.samples[j] = ms;
            }
        }
    }

    /// Folds a batch of completions in.
    pub fn record_all<'a>(&mut self, completions: impl IntoIterator<Item = &'a Completion>) {
        for c in completions {
            self.record(c.response_time());
        }
    }

    /// Builds statistics from a completion slice.
    pub fn from_completions(completions: &[Completion]) -> Self {
        let mut s = Self::new();
        s.record_all(completions);
        s
    }

    /// Folds another statistics object into this one, deterministically.
    ///
    /// Counts, moments, the max, and the CDF buckets merge exactly.
    /// While the combined reservoirs fit under the cap they hold every
    /// sample either side saw, so appending keeps percentiles *exact*
    /// (the sorted multiset equals the global stream's). Past the cap,
    /// each side keeps a share of the reservoir proportional to the
    /// population it represents, chosen by a partial Fisher–Yates
    /// shuffle keyed on splitmix64 over the two counts — a pure
    /// function of the inputs, so folding per-enclosure statistics in
    /// enclosure order gives bit-identical results at any shard count.
    pub fn merge(&mut self, other: &ResponseStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let (n_self, n_other) = (self.count, other.count);
        let mut state = splitmix64(n_self.rotate_left(32) ^ n_other);
        self.count += n_other;
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
        self.max = self.max.max(other.max);
        for (mine, theirs) in self.bucket_counts.iter_mut().zip(&other.bucket_counts) {
            *mine += theirs;
        }
        if self.samples.len() + other.samples.len() <= RESERVOIR {
            self.samples.extend_from_slice(&other.samples);
            return;
        }
        // Proportional allocation, with either side's unused slack
        // granted to the other so the reservoir stays as full as it can.
        let total = (n_self + n_other) as f64;
        let keep_self = ((RESERVOIR as f64 * n_self as f64 / total).round() as usize)
            .min(self.samples.len());
        let keep_other = (RESERVOIR - keep_self).min(other.samples.len());
        let keep_self = (RESERVOIR - keep_other).min(self.samples.len());
        let mut draw = |bound: usize| {
            state = splitmix64(state);
            (state % bound as u64) as usize
        };
        for i in 0..keep_self {
            let j = i + draw(self.samples.len() - i);
            self.samples.swap(i, j);
        }
        self.samples.truncate(keep_self);
        let mut theirs = other.samples.clone();
        for i in 0..keep_other {
            let j = i + draw(theirs.len() - i);
            theirs.swap(i, j);
        }
        theirs.truncate(keep_other);
        self.samples.extend_from_slice(&theirs);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean response time.
    pub fn mean(&self) -> Seconds {
        if self.count == 0 {
            Seconds::ZERO
        } else {
            Seconds::from_millis(self.sum / self.count as f64)
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> Seconds {
        if self.count < 2 {
            return Seconds::ZERO;
        }
        let n = self.count as f64;
        let var = (self.sum_sq - self.sum * self.sum / n) / (n - 1.0);
        Seconds::from_millis(var.max(0.0).sqrt())
    }

    /// Largest observed response time.
    pub fn max(&self) -> Seconds {
        Seconds::from_millis(self.max)
    }

    /// Cumulative distribution at the Figure 4 bucket edges: pairs of
    /// `(edge_ms, fraction_at_or_below)`. A final `(f64::INFINITY, 1.0)`
    /// entry closes the distribution ("200+").
    pub fn cdf(&self) -> Vec<(f64, f64)> {
        let mut out = Vec::with_capacity(CDF_BUCKETS_MS.len() + 1);
        let total = self.count.max(1) as f64;
        let mut acc = 0u64;
        for (i, &edge) in CDF_BUCKETS_MS.iter().enumerate() {
            acc += self.bucket_counts[i];
            out.push((edge, acc as f64 / total));
        }
        out.push((f64::INFINITY, 1.0));
        out
    }

    /// Approximate percentile (0–100) from the sample reservoir.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> Seconds {
        let mut scratch = Vec::new();
        self.percentile_with(&mut scratch, p)
    }

    /// Like [`ResponseStats::percentile`], but sorts the reservoir into
    /// a caller-provided scratch buffer — repeated percentile queries
    /// (per-epoch fleet tail-latency tracking) reuse one sort buffer
    /// instead of cloning up to 64 K samples per call.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile_with(&self, scratch: &mut Vec<f64>, p: f64) -> Seconds {
        assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
        if self.samples.is_empty() {
            return Seconds::ZERO;
        }
        scratch.clear();
        scratch.extend_from_slice(&self.samples);
        scratch.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        let idx = ((p / 100.0) * (scratch.len() - 1) as f64).round() as usize;
        Seconds::from_millis(scratch[idx])
    }

    /// The retained reservoir samples, in milliseconds. A uniform
    /// subsample of the full response stream (exact below the reservoir
    /// cap), suitable for re-bucketing into coarser structures such as
    /// `diskobs::LogHistogram` without another pass over completions.
    pub fn samples_ms(&self) -> &[f64] {
        &self.samples
    }
}

impl core::fmt::Display for ResponseStats {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{} requests, mean {:.2} ms, p95 {:.2} ms, max {:.2} ms",
            self.count,
            self.mean().to_millis(),
            self.percentile(95.0).to_millis(),
            self.max().to_millis()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats_of(values_ms: &[f64]) -> ResponseStats {
        let mut s = ResponseStats::new();
        for &v in values_ms {
            s.record(Seconds::from_millis(v));
        }
        s
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = ResponseStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), Seconds::ZERO);
        assert_eq!(s.percentile(50.0), Seconds::ZERO);
    }

    #[test]
    fn mean_and_std() {
        let s = stats_of(&[10.0, 20.0, 30.0]);
        assert!((s.mean().to_millis() - 20.0).abs() < 1e-12);
        assert!((s.std_dev().to_millis() - 10.0).abs() < 1e-9);
        assert!((s.max().to_millis() - 30.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let s = stats_of(&[1.0, 7.0, 15.0, 55.0, 500.0]);
        let cdf = s.cdf();
        let mut prev = 0.0;
        for &(_, frac) in &cdf {
            assert!(frac >= prev);
            prev = frac;
        }
        assert_eq!(cdf.last().unwrap().1, 1.0);
        // 1/5 <= 5ms, 2/5 <= 10ms, 3/5 <= 20ms.
        assert!((cdf[0].1 - 0.2).abs() < 1e-12);
        assert!((cdf[1].1 - 0.4).abs() < 1e-12);
        assert!((cdf[2].1 - 0.6).abs() < 1e-12);
    }

    #[test]
    fn bucket_edges_match_figure4() {
        assert_eq!(
            CDF_BUCKETS_MS,
            [5.0, 10.0, 20.0, 40.0, 60.0, 90.0, 120.0, 150.0, 200.0]
        );
    }

    #[test]
    fn percentiles_bracket_the_data() {
        let values: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = stats_of(&values);
        assert!((s.percentile(50.0).to_millis() - 50.0).abs() <= 1.0);
        assert!((s.percentile(95.0).to_millis() - 95.0).abs() <= 1.0);
        assert!((s.percentile(0.0).to_millis() - 1.0).abs() < 1e-9);
        assert!((s.percentile(100.0).to_millis() - 100.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_percentile_panics() {
        let _ = stats_of(&[1.0]).percentile(150.0);
    }

    #[test]
    fn percentiles_stay_unbiased_past_the_reservoir_cap() {
        // Three times the reservoir size, fed as an increasing ramp: the
        // worst case for the old scheme, which stopped admitting late
        // (large) samples and so dragged every percentile low. Algorithm R
        // keeps each sample with equal probability, so the reservoir
        // percentiles must track the true ramp percentiles within a few
        // percent even well past the cap.
        let n = 3 * RESERVOIR as u64;
        let mut s = ResponseStats::new();
        for i in 1..=n {
            s.record(Seconds::from_millis(i as f64));
        }
        for p in [25.0, 50.0, 75.0, 90.0, 99.0] {
            let truth = p / 100.0 * n as f64;
            let got = s.percentile(p).to_millis();
            let err = (got - truth).abs() / n as f64;
            assert!(
                err < 0.02,
                "p{p}: reservoir said {got}, truth {truth} ({:.1}% off)",
                err * 100.0
            );
        }
        // And the draw sequence is a pure function of the count, so a
        // second identical run reproduces the reservoir exactly.
        let mut again = ResponseStats::new();
        for i in 1..=n {
            again.record(Seconds::from_millis(i as f64));
        }
        assert_eq!(s, again);
    }

    #[test]
    fn merge_below_the_cap_is_exact() {
        let values: Vec<f64> = (1..=1000).map(|i| (i as f64 * 7.3) % 211.0 + 0.5).collect();
        let global = stats_of(&values);
        let mut merged = ResponseStats::new();
        for chunk in values.chunks(137) {
            merged.merge(&stats_of(chunk));
        }
        assert_eq!(merged.count(), global.count());
        assert_eq!(merged.bucket_counts, global.bucket_counts);
        assert_eq!(merged.max(), global.max());
        // Below the cap the merged reservoir is the whole stream, so
        // every percentile is exactly the global stream's.
        for p in [0.0, 25.0, 50.0, 95.0, 99.0, 100.0] {
            assert_eq!(merged.percentile(p), global.percentile(p), "p{p}");
        }
        assert!((merged.mean().to_millis() - global.mean().to_millis()).abs() < 1e-9);
    }

    #[test]
    fn merge_past_the_cap_is_deterministic_and_proportional() {
        let ramp = |n: u64, scale: f64| {
            let mut s = ResponseStats::new();
            for i in 1..=n {
                s.record(Seconds::from_millis(i as f64 * scale));
            }
            s
        };
        let big = ramp(2 * RESERVOIR as u64, 1.0);
        let small = ramp(RESERVOIR as u64 / 2, 1.0);
        let mut once = big.clone();
        once.merge(&small);
        let mut again = big.clone();
        again.merge(&small);
        assert_eq!(once, again, "merge must be a pure function of its inputs");
        assert_eq!(once.samples.len(), RESERVOIR);
        assert_eq!(once.count(), big.count() + small.count());
        // The combined multiset holds 2.5R values; its median m solves
        // m + R/2 = 1.25R, i.e. m = 0.75R. The subsampled reservoir
        // should land within a few percent.
        let truth = 0.75 * RESERVOIR as f64;
        let got = once.percentile(50.0).to_millis();
        assert!(
            (got - truth).abs() / truth < 0.05,
            "median {got} vs truth {truth}"
        );
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let s = stats_of(&[3.0, 9.0, 27.0]);
        let mut left = s.clone();
        left.merge(&ResponseStats::new());
        assert_eq!(left, s);
        let mut right = ResponseStats::new();
        right.merge(&s);
        assert_eq!(right, s);
    }

    #[test]
    fn display_is_informative() {
        let s = stats_of(&[5.0, 10.0]);
        let text = s.to_string();
        assert!(text.contains("2 requests"));
        assert!(text.contains("mean 7.50 ms"));
    }
}
