//! I/O requests and completions.

use serde::{Deserialize, Serialize};
use units::Seconds;

/// Read or write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RequestKind {
    /// Data flows from the medium to the host.
    Read,
    /// Data flows from the host to the medium.
    Write,
}

impl RequestKind {
    /// `true` for reads.
    pub fn is_read(self) -> bool {
        matches!(self, Self::Read)
    }
}

/// One I/O request as it appears in a trace.
///
/// # Examples
///
/// ```
/// use disksim::{Request, RequestKind};
/// use units::Seconds;
///
/// let r = Request::new(7, Seconds::from_millis(12.5), 0, 4_096, 16, RequestKind::Read);
/// assert_eq!(r.end_lba(), 4_112);
/// assert_eq!(r.bytes(), 16 * 512);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Trace-unique identifier.
    pub id: u64,
    /// Arrival (issue) time.
    pub arrival: Seconds,
    /// Target device index (logical volume index when RAID is layered on
    /// top).
    pub device: u32,
    /// First logical block.
    pub lba: u64,
    /// Length in 512-byte sectors.
    pub sectors: u32,
    /// Read or write.
    pub kind: RequestKind,
}

impl Request {
    /// Creates a request.
    ///
    /// # Panics
    ///
    /// Panics if `sectors == 0`: zero-length I/O is a trace bug.
    pub fn new(
        id: u64,
        arrival: Seconds,
        device: u32,
        lba: u64,
        sectors: u32,
        kind: RequestKind,
    ) -> Self {
        assert!(sectors > 0, "zero-length request {id}");
        Self {
            id,
            arrival,
            device,
            lba,
            sectors,
            kind,
        }
    }

    /// One past the last LBA touched.
    pub fn end_lba(&self) -> u64 {
        self.lba + self.sectors as u64
    }

    /// Payload size in bytes.
    pub fn bytes(&self) -> u64 {
        self.sectors as u64 * 512
    }
}

/// A finished request with its timing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Completion {
    /// The originating request.
    pub request: Request,
    /// When the device began serving it.
    pub start: Seconds,
    /// When the last byte was transferred.
    pub finish: Seconds,
}

impl Completion {
    /// End-to-end response time (queueing + service).
    pub fn response_time(&self) -> Seconds {
        self.finish - self.request.arrival
    }

    /// Pure service time (excludes queueing).
    pub fn service_time(&self) -> Seconds {
        self.finish - self.start
    }

    /// Time spent waiting in the queue.
    pub fn queue_time(&self) -> Seconds {
        self.start - self.request.arrival
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_decomposition() {
        let r = Request::new(1, Seconds::from_millis(10.0), 0, 0, 8, RequestKind::Write);
        let c = Completion {
            request: r,
            start: Seconds::from_millis(14.0),
            finish: Seconds::from_millis(20.0),
        };
        assert!((c.response_time().to_millis() - 10.0).abs() < 1e-12);
        assert!((c.queue_time().to_millis() - 4.0).abs() < 1e-12);
        assert!((c.service_time().to_millis() - 6.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "zero-length")]
    fn zero_length_rejected() {
        let _ = Request::new(1, Seconds::ZERO, 0, 0, 0, RequestKind::Read);
    }

    #[test]
    fn round_trips_through_serde() {
        let r = Request::new(3, Seconds::new(1.5), 2, 99, 4, RequestKind::Read);
        let json = serde_json::to_string(&r).unwrap();
        let back: Request = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }
}
