//! The event-driven storage-system engine.

use crate::calendar::{CalendarQueue, TimeKey};
use crate::disk::{Disk, DiskSpec};
use crate::error::SimError;
use crate::raid::{PhysOp, RaidConfig};
use crate::request::{Completion, Request, RequestKind};
use serde::{Deserialize, Serialize};
use units::Seconds;

/// Queue-dispatch policy at each disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Scheduler {
    /// First-come-first-served.
    Fcfs,
    /// Shortest-seek-time-first (era SCSI firmware default; ours too).
    #[default]
    Sstf,
    /// Circular elevator (C-LOOK): sweep outward, wrap to the lowest
    /// pending cylinder.
    Elevator,
}

/// Configuration of a whole storage system.
///
/// # Examples
///
/// ```
/// use disksim::{DiskSpec, RaidConfig, RaidLevel, SystemConfig};
/// use units::Rpm;
///
/// // The paper's RAID-5 systems: stripe of 16 512-byte blocks.
/// let cfg = SystemConfig::raid5(DiskSpec::era_2001(Rpm::new(10_000.0)), 8, 16)?;
/// assert_eq!(cfg.disks.len(), 8);
/// # Ok::<(), disksim::SimError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Member disk specifications.
    pub disks: Vec<DiskSpec>,
    /// Optional striping layer over the members.
    pub raid: Option<RaidConfig>,
    /// Dispatch policy.
    pub scheduler: Scheduler,
}

impl SystemConfig {
    /// One stand-alone disk.
    pub fn single_disk(spec: DiskSpec) -> Self {
        Self {
            disks: vec![spec],
            raid: None,
            scheduler: Scheduler::default(),
        }
    }

    /// `n` independent disks (no striping): requests address each disk
    /// by its device index.
    pub fn jbod(spec: DiskSpec, n: u32) -> Self {
        Self {
            disks: vec![spec; n as usize],
            raid: None,
            scheduler: Scheduler::default(),
        }
    }

    /// `n` identical disks striped as RAID-5.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError::BadConfig`] for fewer than three disks or
    /// a zero stripe.
    pub fn raid5(spec: DiskSpec, n: u32, stripe_sectors: u32) -> Result<Self, SimError> {
        Ok(Self {
            disks: vec![spec; n as usize],
            raid: Some(RaidConfig::new(crate::raid::RaidLevel::Raid5, n, stripe_sectors)?),
            scheduler: Scheduler::default(),
        })
    }

    /// `n` identical disks striped as RAID-0.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError::BadConfig`] for fewer than two disks or a
    /// zero stripe.
    pub fn raid0(spec: DiskSpec, n: u32, stripe_sectors: u32) -> Result<Self, SimError> {
        Ok(Self {
            disks: vec![spec; n as usize],
            raid: Some(RaidConfig::new(crate::raid::RaidLevel::Raid0, n, stripe_sectors)?),
            scheduler: Scheduler::default(),
        })
    }

    /// Replaces the scheduler.
    pub fn with_scheduler(mut self, scheduler: Scheduler) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Enables controller write-back caching on the RAID layer (no-op
    /// for JBOD systems).
    pub fn with_write_back(mut self, write_back: bool) -> Self {
        if let Some(raid) = self.raid.take() {
            self.raid = Some(raid.with_write_back(write_back));
        }
        self
    }
}

/// The null slab index.
const NIL: u32 = u32::MAX;

/// A physical sub-request in flight. `parent_slot` indexes the parent
/// slab; it is `NIL` when no gating parent exists (write-back
/// acknowledgements) and is only dereferenced by gating operations,
/// whose parent cannot be freed before they complete.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct PhysRequest {
    parent_slot: u32,
    lba: u64,
    sectors: u32,
    kind: RequestKind,
    gates_completion: bool,
}

/// Book-keeping for a logical request split across members, held in a
/// free-listed slab (`StorageSystem::parents`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct Parent {
    request: Request,
    remaining: u32,
    first_start: Option<Seconds>,
}

/// One queued physical request in the shared slot slab, linked into its
/// disk's intrusive queue. The physical location is resolved once at
/// enqueue (geometry is fixed after construction), so scheduler scans
/// never re-derive the cylinder and dispatch skips the zone-table
/// lookup entirely.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct QueueSlot {
    phys: PhysRequest,
    loc: diskgeom::Location,
    prev: u32,
    next: u32,
}

/// Head/tail of one disk's queue in the slot slab. Links run in arrival
/// order, which FCFS (and tie-breaking in the other policies) depends on.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct DiskQueue {
    head: u32,
    tail: u32,
    len: u32,
}

impl DiskQueue {
    const EMPTY: Self = Self {
        head: NIL,
        tail: NIL,
        len: 0,
    };
}

/// The simulated storage system.
///
/// Drive it either in one shot ([`StorageSystem::drain`]) or
/// incrementally ([`StorageSystem::advance_to`]) — the incremental form
/// is what the DTM policies use to interleave thermal decisions with I/O.
#[derive(Debug)]
pub struct StorageSystem {
    disks: Vec<Disk>,
    scheduler: Scheduler,
    raid: Option<RaidConfig>,
    logical_sectors: u64,
    /// Pending arrivals, ordered by (arrival time, submission sequence)
    /// — the same total order the old `BinaryHeap<Reverse<Arrival>>`
    /// used, but O(1) amortized for the near-sorted streams workloads
    /// produce.
    arrivals: CalendarQueue<Request>,
    /// All queued physical requests, one slab shared by every disk;
    /// `disk_queues` threads per-disk lists through it and `slot_free`
    /// recycles indices, so steady-state queueing allocates nothing.
    slots: Vec<QueueSlot>,
    slot_free: Vec<u32>,
    disk_queues: Vec<DiskQueue>,
    in_service: Vec<Option<(Seconds, PhysRequest)>>,
    parents: Vec<Parent>,
    parent_free: Vec<u32>,
    clock: Seconds,
    completions: Vec<Completion>,
    seq: u64,
    submitted: u64,
    finished: u64,
    failed_disk: Option<u32>,
    /// Trace emission point. Defaults to the null sink: request
    /// issue/complete events then cost one branch and are never built.
    sink: diskobs::Sink,
    /// RAID fan-out scratch, reused across arrivals.
    op_scratch: Vec<PhysOp>,
    /// Disks touched by the current arrival, reused across arrivals.
    touched_scratch: Vec<u32>,
}

impl StorageSystem {
    /// Assembles a system.
    ///
    /// # Errors
    ///
    /// [`SimError::BadConfig`] when the RAID layout disagrees with the
    /// member count or the members differ in capacity.
    pub fn new(config: SystemConfig) -> Result<Self, SimError> {
        if config.disks.is_empty() {
            return Err(SimError::BadConfig("no disks".into()));
        }
        let per_disk = config.disks[0].geometry().total_sectors().get();
        if let Some(raid) = &config.raid {
            if raid.disks() as usize != config.disks.len() {
                return Err(SimError::BadConfig(format!(
                    "raid expects {} disks, {} configured",
                    raid.disks(),
                    config.disks.len()
                )));
            }
            for d in &config.disks {
                if d.geometry().total_sectors().get() != per_disk {
                    return Err(SimError::BadConfig(
                        "raid members must have equal capacity".into(),
                    ));
                }
            }
        }
        let logical_sectors = match &config.raid {
            Some(raid) => raid.logical_sectors(per_disk),
            None => per_disk,
        };
        let n = config.disks.len();
        Ok(Self {
            disks: config.disks.into_iter().map(Disk::new).collect(),
            scheduler: config.scheduler,
            raid: config.raid,
            logical_sectors,
            arrivals: CalendarQueue::new(),
            slots: Vec::new(),
            slot_free: Vec::new(),
            disk_queues: vec![DiskQueue::EMPTY; n],
            in_service: vec![None; n],
            parents: Vec::new(),
            parent_free: Vec::new(),
            clock: Seconds::ZERO,
            completions: Vec::new(),
            seq: 0,
            submitted: 0,
            finished: 0,
            failed_disk: None,
            sink: diskobs::Sink::null(),
            op_scratch: Vec::new(),
            touched_scratch: Vec::new(),
        })
    }

    /// Marks a RAID-5 member as failed: subsequent requests map through
    /// degraded-mode reconstruction. Requests already queued or in
    /// service on the member complete normally (the failure takes effect
    /// at the mapping layer).
    ///
    /// # Errors
    ///
    /// [`SimError::BadConfig`] when the system is not RAID-5,
    /// [`SimError::NoSuchDevice`] when the index is out of range, and
    /// [`SimError::AlreadyDegraded`] when a member is already failed
    /// (RAID-5 survives exactly one loss).
    pub fn fail_disk(&mut self, disk: u32) -> Result<(), SimError> {
        match &self.raid {
            Some(raid) if matches!(raid.level(), crate::raid::RaidLevel::Raid5) => {
                if disk >= raid.disks() {
                    return Err(SimError::NoSuchDevice {
                        device: disk,
                        available: raid.disks(),
                    });
                }
                if let Some(device) = self.failed_disk {
                    return Err(SimError::AlreadyDegraded { device });
                }
                self.failed_disk = Some(disk);
                Ok(())
            }
            _ => Err(SimError::BadConfig(
                "degraded mode requires a RAID-5 system".into(),
            )),
        }
    }

    /// Clears the failed-member mark after a completed rebuild: the
    /// array maps requests normally again. A no-op on a healthy system.
    pub fn repair_disk(&mut self) {
        self.failed_disk = None;
    }

    /// The failed member, if any.
    pub fn failed_disk(&self) -> Option<u32> {
        self.failed_disk
    }

    /// Addressable sectors of the logical volume (or of each member for
    /// a JBOD system).
    pub fn logical_sectors(&self) -> u64 {
        self.logical_sectors
    }

    /// The member disks (for inspecting activity counters).
    pub fn disks(&self) -> &[Disk] {
        &self.disks
    }

    /// Mutable access to the member disks (multi-speed DTM control).
    pub fn disks_mut(&mut self) -> &mut [Disk] {
        &mut self.disks
    }

    /// Current simulated time.
    pub fn clock(&self) -> Seconds {
        self.clock
    }

    /// Replaces the trace sink (null by default). Drivers that shard
    /// systems across threads install a buffer sink per system and
    /// drain the buffers in a deterministic serial order.
    pub fn set_sink(&mut self, sink: diskobs::Sink) {
        self.sink = sink;
    }

    /// The trace sink, for emitting events that need the system's
    /// sim clock (e.g. RPM transitions applied by a DTM actuator).
    pub fn sink_mut(&mut self) -> &mut diskobs::Sink {
        &mut self.sink
    }

    /// Takes this system's buffered trace events (empty unless a buffer
    /// sink is installed).
    pub fn drain_events(&mut self) -> Vec<diskobs::TimedEvent> {
        self.sink.drain()
    }

    /// Like [`Self::drain_events`], but appends into `out` — epoch
    /// merge loops reuse one batch buffer instead of allocating a
    /// fresh `Vec` per drive per epoch.
    pub fn drain_events_into(&mut self, out: &mut Vec<diskobs::TimedEvent>) {
        self.sink.drain_into(out);
    }

    /// Requests submitted and finished so far.
    pub fn in_flight(&self) -> u64 {
        self.submitted - self.finished
    }

    /// Queues a request for arrival. Arrivals earlier than the current
    /// clock are treated as arriving now.
    ///
    /// # Errors
    ///
    /// [`SimError::NoSuchDevice`] / [`SimError::OutOfRange`] when the
    /// request does not fit the system.
    pub fn submit(&mut self, request: Request) -> Result<(), SimError> {
        if self.raid.is_some() {
            if request.device != 0 {
                return Err(SimError::NoSuchDevice {
                    device: request.device,
                    available: 1,
                });
            }
        } else if request.device as usize >= self.disks.len() {
            return Err(SimError::NoSuchDevice {
                device: request.device,
                available: self.disks.len() as u32,
            });
        }
        if request.end_lba() > self.logical_sectors {
            return Err(SimError::OutOfRange {
                lba: request.lba,
                sectors: request.sectors,
                capacity: self.logical_sectors,
            });
        }
        self.seq += 1;
        self.submitted += 1;
        self.arrivals
            .push(TimeKey::new(request.arrival.get(), self.seq), request);
        Ok(())
    }

    /// Advances the simulation until every queued event at or before
    /// `target` has been processed, returning the completions produced.
    pub fn advance_to(&mut self, target: Seconds) -> Vec<Completion> {
        let mut out = Vec::new();
        self.advance_to_into(target, &mut out);
        out
    }

    /// Like [`Self::advance_to`], but appends the completions to `out` —
    /// callers that advance in a tight window loop (the DTM controller
    /// steps every 250 ms) reuse one buffer instead of allocating a
    /// fresh `Vec` per window.
    pub fn advance_to_into(&mut self, target: Seconds, out: &mut Vec<Completion>) {
        loop {
            let next_completion = self
                .in_service
                .iter()
                .enumerate()
                .filter_map(|(d, s)| s.map(|(finish, _)| (finish, d)))
                .min_by(|a, b| a.0.get().total_cmp(&b.0.get()));
            let next_arrival = self.arrivals.peek().map(|k| k.time());

            // Completions win ties so the disk frees up before the
            // simultaneous arrival is routed.
            let take_completion = match (next_completion, next_arrival) {
                (Some((f, _)), Some(a)) => f.get() <= a,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };

            if take_completion {
                let (finish, d) = next_completion.expect("checked above");
                if finish > target {
                    break;
                }
                self.clock = self.clock.max(finish);
                self.on_completion(d);
            } else {
                let arrival = next_arrival.expect("checked above");
                if arrival > target.get() {
                    break;
                }
                let (_, request) = self.arrivals.pop().expect("peeked");
                self.clock = self.clock.max(Seconds::new(arrival));
                self.on_arrival(request);
            }
        }
        // Advance the clock to the target, but never to the infinite
        // horizon drain() uses — the clock must remain a meaningful
        // denominator for utilization after a full drain.
        if target.get().is_finite() {
            self.clock = self.clock.max(target);
        }
        out.append(&mut self.completions);
    }

    /// Runs until every submitted request has completed.
    pub fn drain(&mut self) -> Vec<Completion> {
        let mut out = Vec::new();
        self.drain_into(&mut out);
        out
    }

    /// Like [`Self::drain`], but appends the completions to `out` so
    /// repeated drains reuse one buffer.
    pub fn drain_into(&mut self, out: &mut Vec<Completion>) {
        loop {
            self.advance_to_into(Seconds::new(f64::INFINITY), out);
            if self.arrivals.is_empty() && self.in_service.iter().all(Option::is_none) {
                break;
            }
        }
    }

    /// Earliest pending event time, if any. Uses the calendar queue's
    /// [`CalendarQueue::peek_time`](crate::calendar::CalendarQueue::peek_time)
    /// fast path (hence `&mut self`): shards polled at every epoch
    /// boundary answer in amortized O(1) instead of scanning the ring.
    pub fn next_event_time(&mut self) -> Option<Seconds> {
        let completion = self
            .in_service
            .iter()
            .filter_map(|s| s.map(|(f, _)| f.get()))
            .fold(f64::INFINITY, f64::min);
        let arrival = self.arrivals.peek_time().unwrap_or(f64::INFINITY);
        let t = completion.min(arrival);
        t.is_finite().then(|| Seconds::new(t))
    }

    fn on_arrival(&mut self, request: Request) {
        self.sink.emit(self.clock, || diskobs::Event::RequestIssue {
            id: request.id,
            device: request.device,
            lba: request.lba,
            sectors: request.sectors,
            kind: if request.kind.is_read() { "read" } else { "write" },
        });
        // Take-then-reassign keeps the scratch buffers' capacity while
        // freeing `self` for the enqueue/dispatch calls below.
        let mut ops = std::mem::take(&mut self.op_scratch);
        ops.clear();
        match &self.raid {
            Some(raid) => raid.map_degraded_into(
                request.lba,
                request.sectors,
                request.kind,
                self.failed_disk,
                &mut ops,
            ),
            None => ops.push(PhysOp {
                disk: request.device,
                lba: request.lba,
                sectors: request.sectors,
                kind: request.kind,
                gates_completion: true,
            }),
        }
        let gating = ops.iter().filter(|p| p.gates_completion).count() as u32;
        let parent_slot = if gating == 0 {
            // Write-back caching: the controller acknowledges the host
            // immediately; the physical work proceeds in the background.
            self.finished += 1;
            let done = Completion {
                request,
                start: self.clock,
                finish: self.clock,
            };
            self.sink.emit(self.clock, || diskobs::Event::RequestComplete {
                id: done.request.id,
                start: done.start.get(),
                response_ms: done.response_time().to_millis(),
            });
            self.completions.push(done);
            NIL
        } else {
            self.alloc_parent(Parent {
                request,
                remaining: gating,
                first_start: None,
            })
        };
        let mut touched = std::mem::take(&mut self.touched_scratch);
        touched.clear();
        for op in &ops {
            // Consecutive dedup, matching the order the fan-out lists
            // disks in.
            if touched.last() != Some(&op.disk) {
                touched.push(op.disk);
            }
        }
        for op in &ops {
            self.enqueue(
                op.disk as usize,
                PhysRequest {
                    parent_slot,
                    lba: op.lba,
                    sectors: op.sectors,
                    kind: op.kind,
                    gates_completion: op.gates_completion,
                },
            );
        }
        self.op_scratch = ops;
        for &d in &touched {
            self.try_dispatch(d as usize);
        }
        self.touched_scratch = touched;
    }

    fn on_completion(&mut self, d: usize) {
        let (finish, phys) = self.in_service[d].take().expect("disk was busy");
        self.clock = self.clock.max(finish);
        if phys.gates_completion {
            let slot = phys.parent_slot as usize;
            self.parents[slot].remaining -= 1;
            if self.parents[slot].remaining == 0 {
                let parent = self.parents[slot];
                self.parent_free.push(phys.parent_slot);
                self.finished += 1;
                let done = Completion {
                    request: parent.request,
                    start: parent.first_start.unwrap_or(finish),
                    finish,
                };
                self.sink.emit(finish, || diskobs::Event::RequestComplete {
                    id: done.request.id,
                    start: done.start.get(),
                    response_ms: done.response_time().to_millis(),
                });
                self.completions.push(done);
            }
        }
        self.try_dispatch(d);
    }

    /// Stores `parent` in the slab, recycling a freed slot when one
    /// exists.
    fn alloc_parent(&mut self, parent: Parent) -> u32 {
        match self.parent_free.pop() {
            Some(i) => {
                self.parents[i as usize] = parent;
                i
            }
            None => {
                self.parents.push(parent);
                (self.parents.len() - 1) as u32
            }
        }
    }

    /// Appends `phys` to disk `d`'s queue (slab slot linked at the
    /// tail, so list order is arrival order).
    fn enqueue(&mut self, d: usize, phys: PhysRequest) {
        let loc = self.disks[d]
            .spec()
            .geometry()
            .locate(phys.lba)
            .expect("physical requests are range-checked at submit");
        let tail = self.disk_queues[d].tail;
        let slot = QueueSlot {
            phys,
            loc,
            prev: tail,
            next: NIL,
        };
        let idx = match self.slot_free.pop() {
            Some(i) => {
                self.slots[i as usize] = slot;
                i
            }
            None => {
                self.slots.push(slot);
                (self.slots.len() - 1) as u32
            }
        };
        if tail == NIL {
            self.disk_queues[d].head = idx;
        } else {
            self.slots[tail as usize].next = idx;
        }
        self.disk_queues[d].tail = idx;
        self.disk_queues[d].len += 1;
    }

    /// Unlinks `slot` from disk `d`'s queue and recycles it. O(1),
    /// replacing the old order-preserving `Vec::remove` memmove.
    fn unlink(&mut self, d: usize, slot: u32) {
        let QueueSlot { prev, next, .. } = self.slots[slot as usize];
        if prev == NIL {
            self.disk_queues[d].head = next;
        } else {
            self.slots[prev as usize].next = next;
        }
        if next == NIL {
            self.disk_queues[d].tail = prev;
        } else {
            self.slots[next as usize].prev = prev;
        }
        self.disk_queues[d].len -= 1;
        self.slot_free.push(slot);
    }

    fn try_dispatch(&mut self, d: usize) {
        if self.in_service[d].is_some() || self.disk_queues[d].len == 0 {
            return;
        }
        let slot = self.pick(d);
        let QueueSlot { phys, loc, .. } = self.slots[slot as usize];
        self.unlink(d, slot);
        let start = self.clock;
        let (finish, _breakdown) =
            self.disks[d].service_located(loc, phys.lba, phys.sectors, phys.kind, start);
        if phys.gates_completion {
            // Deferred parity work can outlive its parent; only gating
            // operations contribute to the parent's service window.
            let parent = &mut self.parents[phys.parent_slot as usize];
            parent.first_start = Some(parent.first_start.unwrap_or(start).min(start));
        }
        self.in_service[d] = Some((finish, phys));
    }

    /// Chooses which queued request the disk serves next, returning its
    /// slot. Walks the disk's list in arrival order with strict-`<`
    /// comparisons, so ties resolve to the earliest arrival — exactly
    /// the first-minimum semantics of the old `Vec` + `min_by_key` scan.
    fn pick(&self, d: usize) -> u32 {
        let queue = self.disk_queues[d];
        if queue.len == 1 {
            return queue.head;
        }
        match self.scheduler {
            Scheduler::Fcfs => queue.head,
            Scheduler::Sstf => {
                let head = self.disks[d].head_cylinder();
                let mut best = queue.head;
                let mut best_dist = self.slots[best as usize].loc.cylinder.abs_diff(head);
                let mut cur = self.slots[best as usize].next;
                while cur != NIL {
                    let s = &self.slots[cur as usize];
                    let dist = s.loc.cylinder.abs_diff(head);
                    if dist < best_dist {
                        best = cur;
                        best_dist = dist;
                    }
                    cur = s.next;
                }
                best
            }
            Scheduler::Elevator => {
                let head = self.disks[d].head_cylinder();
                // C-LOOK: nearest cylinder at or past the head, else wrap
                // to the lowest pending cylinder.
                let first_cyl = self.slots[queue.head as usize].loc.cylinder;
                let mut lowest = queue.head;
                let mut lowest_cyl = first_cyl;
                let (mut ahead, mut ahead_cyl) = if first_cyl >= head {
                    (queue.head, first_cyl)
                } else {
                    (NIL, u32::MAX)
                };
                let mut cur = self.slots[queue.head as usize].next;
                while cur != NIL {
                    let s = &self.slots[cur as usize];
                    if s.loc.cylinder >= head && (ahead == NIL || s.loc.cylinder < ahead_cyl) {
                        ahead = cur;
                        ahead_cyl = s.loc.cylinder;
                    }
                    if s.loc.cylinder < lowest_cyl {
                        lowest = cur;
                        lowest_cyl = s.loc.cylinder;
                    }
                    cur = s.next;
                }
                if ahead != NIL {
                    ahead
                } else {
                    lowest
                }
            }
        }
    }
}

/// Complete dynamic state of a [`StorageSystem`], captured for
/// checkpointing. Covers every field the event loop reads — disks
/// (mechanical position, cache, activity counters), the arrival
/// calendar (as its sorted entry list, including each entry's
/// submission-sequence tie-breaker), the queued-request slab with its
/// free list, per-disk intrusive queues, in-service operations, the
/// parent slab and free list, and the scalar counters. The trace sink
/// and the two scratch buffers are excluded: the sink is an
/// observation channel re-attached by the owner, and the scratches are
/// empty between events.
///
/// Restoring this state and advancing produces byte-identical output
/// to advancing the original system: slabs and free lists are copied
/// structurally, so even allocation patterns match.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemState {
    disks: Vec<Disk>,
    scheduler: Scheduler,
    raid: Option<RaidConfig>,
    logical_sectors: u64,
    arrivals: Vec<(TimeKey, Request)>,
    slots: Vec<QueueSlot>,
    slot_free: Vec<u32>,
    disk_queues: Vec<DiskQueue>,
    in_service: Vec<Option<(Seconds, PhysRequest)>>,
    parents: Vec<Parent>,
    parent_free: Vec<u32>,
    clock: Seconds,
    completions: Vec<Completion>,
    seq: u64,
    submitted: u64,
    finished: u64,
    failed_disk: Option<u32>,
}

impl StorageSystem {
    /// Captures the complete dynamic state for checkpointing.
    pub fn capture_state(&self) -> SystemState {
        SystemState {
            disks: self.disks.clone(),
            scheduler: self.scheduler,
            raid: self.raid,
            logical_sectors: self.logical_sectors,
            arrivals: self.arrivals.sorted_entries(),
            slots: self.slots.clone(),
            slot_free: self.slot_free.clone(),
            disk_queues: self.disk_queues.clone(),
            in_service: self.in_service.clone(),
            parents: self.parents.clone(),
            parent_free: self.parent_free.clone(),
            clock: self.clock,
            completions: self.completions.clone(),
            seq: self.seq,
            submitted: self.submitted,
            finished: self.finished,
            failed_disk: self.failed_disk,
        }
    }

    /// Rebuilds a system from a captured state. The trace sink starts
    /// as the null sink; callers that traced the original re-install
    /// their sink afterwards.
    ///
    /// # Errors
    ///
    /// [`SimError::BadConfig`] when the state's internal references are
    /// inconsistent (index out of range, broken queue links, mismatched
    /// per-disk vector lengths) — the shapes a corrupted checkpoint
    /// body produces.
    pub fn restore_state(state: SystemState) -> Result<Self, SimError> {
        let n = state.disks.len();
        if n == 0 {
            return Err(SimError::BadConfig("state has no disks".into()));
        }
        if state.disk_queues.len() != n || state.in_service.len() != n {
            return Err(SimError::BadConfig(format!(
                "state shape mismatch: {} disks, {} queues, {} service slots",
                n,
                state.disk_queues.len(),
                state.in_service.len()
            )));
        }
        let slots = state.slots.len() as u32;
        if state.slot_free.iter().any(|&i| i >= slots) {
            return Err(SimError::BadConfig("slot free list out of range".into()));
        }
        let parents = state.parents.len() as u32;
        if state.parent_free.iter().any(|&i| i >= parents) {
            return Err(SimError::BadConfig("parent free list out of range".into()));
        }
        // Walk every disk queue: each link must stay in the slab and
        // the walk must visit exactly `len` slots.
        for q in &state.disk_queues {
            let mut cur = q.head;
            let mut seen = 0u32;
            while cur != NIL {
                if cur >= slots || seen >= q.len {
                    return Err(SimError::BadConfig("broken disk queue links".into()));
                }
                seen += 1;
                cur = state.slots[cur as usize].next;
            }
            if seen != q.len {
                return Err(SimError::BadConfig("disk queue length mismatch".into()));
            }
        }
        Ok(Self {
            disks: state.disks,
            scheduler: state.scheduler,
            raid: state.raid,
            logical_sectors: state.logical_sectors,
            arrivals: CalendarQueue::from_sorted_entries(state.arrivals),
            slots: state.slots,
            slot_free: state.slot_free,
            disk_queues: state.disk_queues,
            in_service: state.in_service,
            parents: state.parents,
            parent_free: state.parent_free,
            clock: state.clock,
            completions: state.completions,
            seq: state.seq,
            submitted: state.submitted,
            finished: state.finished,
            failed_disk: state.failed_disk,
            sink: diskobs::Sink::null(),
            op_scratch: Vec::new(),
            touched_scratch: Vec::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use units::Rpm;

    fn spec() -> DiskSpec {
        DiskSpec::era_2001(Rpm::new(10_000.0))
    }

    fn read(id: u64, at_ms: f64, lba: u64) -> Request {
        Request::new(id, Seconds::from_millis(at_ms), 0, lba, 8, RequestKind::Read)
    }

    #[test]
    fn single_request_completes() {
        let mut sys = StorageSystem::new(SystemConfig::single_disk(spec())).unwrap();
        sys.submit(read(1, 0.0, 1_000)).unwrap();
        let done = sys.drain();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].request.id, 1);
        assert!(done[0].finish > done[0].start);
    }

    #[test]
    fn no_request_lost_or_duplicated() {
        let mut sys = StorageSystem::new(SystemConfig::single_disk(spec())).unwrap();
        let n = 500;
        for i in 0..n {
            sys.submit(read(i, i as f64 * 0.5, (i * 997_123) % 10_000_000))
                .unwrap();
        }
        let done = sys.drain();
        assert_eq!(done.len(), n as usize);
        let mut ids: Vec<u64> = done.iter().map(|c| c.request.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n as usize, "every id exactly once");
    }

    #[test]
    fn response_times_are_positive_and_causal() {
        let mut sys = StorageSystem::new(SystemConfig::single_disk(spec())).unwrap();
        for i in 0..100 {
            sys.submit(read(i, i as f64, (i * 5_000_321) % 20_000_000))
                .unwrap();
        }
        for c in sys.drain() {
            assert!(c.start >= c.request.arrival, "service precedes arrival");
            assert!(c.finish > c.start);
            assert!(c.response_time().get() > 0.0);
        }
    }

    #[test]
    fn queueing_shows_under_load() {
        // Saturate a single disk: response times must exceed pure
        // service times for later requests.
        let mut sys = StorageSystem::new(SystemConfig::single_disk(spec())).unwrap();
        for i in 0..50 {
            // All arrive at t=0; they must queue.
            sys.submit(read(i, 0.0, (i * 3_333_337) % 20_000_000)).unwrap();
        }
        let done = sys.drain();
        let max_response = done
            .iter()
            .map(|c| c.response_time().to_millis())
            .fold(0.0, f64::max);
        assert!(
            max_response > 50.0,
            "50 queued random requests should take >50 ms, got {max_response:.1}"
        );
    }

    #[test]
    fn jbod_devices_are_independent() {
        let mut sys = StorageSystem::new(SystemConfig::jbod(spec(), 4)).unwrap();
        for d in 0..4u32 {
            sys.submit(Request::new(
                d as u64,
                Seconds::ZERO,
                d,
                9_999_999,
                8,
                RequestKind::Read,
            ))
            .unwrap();
        }
        let done = sys.drain();
        assert_eq!(done.len(), 4);
        // All four served in parallel: finish times are equal (same
        // geometry, same LBA, same start).
        let finishes: Vec<f64> = done.iter().map(|c| c.finish.get()).collect();
        for f in &finishes {
            assert!((f - finishes[0]).abs() < 1e-12);
        }
    }

    #[test]
    fn bad_device_and_range_rejected() {
        let mut sys = StorageSystem::new(SystemConfig::single_disk(spec())).unwrap();
        let err = sys
            .submit(Request::new(1, Seconds::ZERO, 7, 0, 8, RequestKind::Read))
            .unwrap_err();
        assert!(matches!(err, SimError::NoSuchDevice { .. }));

        let total = sys.logical_sectors();
        let err = sys
            .submit(Request::new(2, Seconds::ZERO, 0, total, 8, RequestKind::Read))
            .unwrap_err();
        assert!(matches!(err, SimError::OutOfRange { .. }));
    }

    #[test]
    fn raid5_write_touches_two_disks() {
        let mut sys =
            StorageSystem::new(SystemConfig::raid5(spec(), 4, 16).unwrap()).unwrap();
        sys.submit(Request::new(1, Seconds::ZERO, 0, 0, 8, RequestKind::Write))
            .unwrap();
        let done = sys.drain();
        assert_eq!(done.len(), 1);
        let busy: Vec<bool> = sys
            .disks()
            .iter()
            .map(|d| d.busy_time().get() > 0.0)
            .collect();
        assert_eq!(busy.iter().filter(|b| **b).count(), 2, "data + parity disks");
    }

    #[test]
    fn raid0_spreads_load() {
        let mut sys =
            StorageSystem::new(SystemConfig::raid0(spec(), 4, 16).unwrap()).unwrap();
        // 64 requests covering consecutive stripe units.
        for i in 0..64u64 {
            sys.submit(Request::new(i, Seconds::ZERO, 0, i * 16, 16, RequestKind::Read))
                .unwrap();
        }
        let done = sys.drain();
        assert_eq!(done.len(), 64);
        for d in sys.disks() {
            assert!(d.served() >= 8, "striping should hit every member");
        }
    }

    #[test]
    fn sstf_beats_fcfs_on_random_load() {
        let run = |sched: Scheduler| -> f64 {
            let cfg = SystemConfig::single_disk(spec()).with_scheduler(sched);
            let mut sys = StorageSystem::new(cfg).unwrap();
            for i in 0..200u64 {
                sys.submit(read(i, 0.0, (i * 7_777_783) % 20_000_000)).unwrap();
            }
            let done = sys.drain();
            done.iter().map(|c| c.response_time().get()).sum::<f64>() / done.len() as f64
        };
        let fcfs = run(Scheduler::Fcfs);
        let sstf = run(Scheduler::Sstf);
        assert!(
            sstf < fcfs,
            "SSTF should cut mean response under backlog: {sstf:.4} vs {fcfs:.4}"
        );
    }

    #[test]
    fn elevator_also_beats_fcfs() {
        let run = |sched: Scheduler| -> f64 {
            let cfg = SystemConfig::single_disk(spec()).with_scheduler(sched);
            let mut sys = StorageSystem::new(cfg).unwrap();
            for i in 0..200u64 {
                sys.submit(read(i, 0.0, (i * 9_999_991) % 20_000_000)).unwrap();
            }
            let done = sys.drain();
            done.iter().map(|c| c.response_time().get()).sum::<f64>() / done.len() as f64
        };
        assert!(run(Scheduler::Elevator) < run(Scheduler::Fcfs));
    }

    #[test]
    fn advance_to_is_incremental() {
        let mut sys = StorageSystem::new(SystemConfig::single_disk(spec())).unwrap();
        for i in 0..10 {
            sys.submit(read(i, i as f64 * 100.0, (i * 3_000_000) % 20_000_000))
                .unwrap();
        }
        // Advance half-way: only the early requests are done.
        let first = sys.advance_to(Seconds::from_millis(450.0));
        assert!(!first.is_empty() && first.len() < 10);
        let rest = sys.drain();
        assert_eq!(first.len() + rest.len(), 10);
        assert_eq!(sys.in_flight(), 0);
    }

    #[test]
    fn mismatched_raid_member_count_rejected() {
        let cfg = SystemConfig {
            disks: vec![spec(); 3],
            raid: Some(
                RaidConfig::new(crate::raid::RaidLevel::Raid5, 4, 16).unwrap(),
            ),
            scheduler: Scheduler::default(),
        };
        assert!(StorageSystem::new(cfg).is_err());
    }

    #[test]
    fn degraded_array_still_serves_everything_but_slower() {
        let run = |fail: bool| {
            let mut sys =
                StorageSystem::new(SystemConfig::raid5(spec(), 4, 16).unwrap()).unwrap();
            if fail {
                sys.fail_disk(1).unwrap();
            }
            for i in 0..400u64 {
                sys.submit(Request::new(
                    i,
                    Seconds::from_millis(i as f64 * 4.0),
                    0,
                    (i * 1_234_577) % (sys.logical_sectors() - 64),
                    16,
                    if i % 3 == 0 { RequestKind::Write } else { RequestKind::Read },
                ))
                .unwrap();
            }
            let done = sys.drain();
            assert_eq!(done.len(), 400);
            done.iter().map(|c| c.response_time().get()).sum::<f64>() / done.len() as f64
        };
        let healthy = run(false);
        let degraded = run(true);
        assert!(
            degraded > healthy,
            "reconstruction work must slow the array: {healthy:.5} vs {degraded:.5}"
        );
    }

    #[test]
    fn fail_disk_guards() {
        let mut jbod = StorageSystem::new(SystemConfig::jbod(spec(), 4)).unwrap();
        assert!(jbod.fail_disk(0).is_err(), "JBOD has no redundancy");
        let mut raid = StorageSystem::new(SystemConfig::raid5(spec(), 4, 16).unwrap()).unwrap();
        assert!(raid.fail_disk(7).is_err());
        assert!(raid.fail_disk(3).is_ok());
        assert_eq!(raid.failed_disk(), Some(3));
        assert_eq!(
            raid.fail_disk(1),
            Err(SimError::AlreadyDegraded { device: 3 }),
            "a second failure on a degraded RAID-5 must be a typed error"
        );
        raid.repair_disk();
        assert_eq!(raid.failed_disk(), None);
        assert!(raid.fail_disk(1).is_ok(), "a repaired array can fail again");
    }

    #[test]
    fn higher_rpm_improves_mean_response() {
        // The Figure 4 effect in miniature.
        let run = |rpm: f64| -> f64 {
            let mut sys = StorageSystem::new(SystemConfig::single_disk(
                DiskSpec::era_2001(Rpm::new(rpm)),
            ))
            .unwrap();
            for i in 0..300u64 {
                sys.submit(Request::new(
                    i,
                    Seconds::from_millis(i as f64 * 2.0),
                    0,
                    (i * 6_151_111) % 20_000_000,
                    32,
                    if i % 3 == 0 { RequestKind::Write } else { RequestKind::Read },
                ))
                .unwrap();
            }
            let done = sys.drain();
            done.iter().map(|c| c.response_time().to_millis()).sum::<f64>()
                / done.len() as f64
        };
        let slow = run(10_000.0);
        let fast = run(20_000.0);
        assert!(
            fast < slow,
            "20K RPM should beat 10K RPM: {fast:.2} vs {slow:.2} ms"
        );
    }
}
