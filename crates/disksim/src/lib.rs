//! Trace-driven, event-driven disk and RAID simulator.
//!
//! A substitute for the DiskSim environment the paper drives its §5.1
//! experiments with. The simulator models the mechanical service
//! components that determine how response times react to spindle speed:
//!
//! - **Seeks** through the three-parameter profile of [`diskperf`],
//!   over the cylinder distances implied by the drive's real geometry;
//! - **rotational latency** with the head's angular position tracked in
//!   absolute time, so consecutive sequential requests catch the platter
//!   where the last transfer left it;
//! - **zoned transfer rates** — a sector on an outer track streams
//!   faster than one on an inner track;
//! - a segmented **disk cache** with read-ahead (the paper gives every
//!   simulated disk a 4 MB cache);
//! - **RAID-0/RAID-5** striping with read-modify-write parity updates;
//! - per-request **response-time statistics** with the same CDF buckets
//!   Figure 4 plots.
//!
//! # Examples
//!
//! ```
//! use disksim::{DiskSpec, Request, RequestKind, StorageSystem, SystemConfig};
//! use units::{Rpm, Seconds};
//!
//! let spec = DiskSpec::era_2001(Rpm::new(10_000.0));
//! let mut system = StorageSystem::new(SystemConfig::single_disk(spec))?;
//! system.submit(Request::new(0, Seconds::ZERO, 0, 1_024, 16, RequestKind::Read));
//! let done = system.drain();
//! assert_eq!(done.len(), 1);
//! assert!(done[0].response_time().to_millis() < 50.0);
//! # Ok::<(), disksim::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
pub mod calendar;
mod disk;
mod energy;
mod error;
pub mod par;
pub mod queueing;
mod raid;
mod request;
mod shuffle;
mod stats;
mod system;

pub use cache::{CacheConfig, CacheOutcome, DiskCache};
pub use calendar::{CalendarQueue, TimeKey};
pub use disk::{Disk, DiskSpec, ServiceBreakdown};
pub use energy::{EnergyMeter, EnergyModel, EnergyReport};
pub use error::SimError;
pub use raid::{RaidConfig, RaidLevel};
pub use request::{Completion, Request, RequestKind};
pub use shuffle::{AccessHistogram, ShuffleMap};
pub use stats::{ResponseStats, CDF_BUCKETS_MS};
pub use system::{Scheduler, StorageSystem, SystemConfig, SystemState};
