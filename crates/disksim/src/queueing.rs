//! Analytic queueing cross-checks.
//!
//! A discrete-event simulator earns trust by agreeing with queueing
//! theory where theory applies. For Poisson arrivals into a single
//! FCFS server, the Pollaczek–Khinchine formula gives the exact mean
//! response time from the service-time distribution's first two
//! moments; this module provides those predictions so tests (and users)
//! can hold the engine against them.

use crate::request::Completion;
use serde::{Deserialize, Serialize};
use units::Seconds;

/// First two moments of a service-time distribution, in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ServiceMoments {
    /// Mean service time `E[S]`.
    pub mean: f64,
    /// Second moment `E[S²]`.
    pub second_moment: f64,
    /// Samples folded in.
    pub count: u64,
}

impl ServiceMoments {
    /// Measures the moments from completions' pure service times.
    pub fn from_completions(completions: &[Completion]) -> Self {
        let mut m = Self::default();
        for c in completions {
            let s = c.service_time().get();
            m.mean += s;
            m.second_moment += s * s;
            m.count += 1;
        }
        if m.count > 0 {
            m.mean /= m.count as f64;
            m.second_moment /= m.count as f64;
        }
        m
    }

    /// Squared coefficient of variation `Var[S] / E[S]²` (1 for an
    /// exponential service, 0 for deterministic).
    pub fn scv(&self) -> f64 {
        if self.mean <= 0.0 {
            return 0.0;
        }
        (self.second_moment - self.mean * self.mean) / (self.mean * self.mean)
    }
}

/// Server utilization `ρ = λ·E[S]`.
///
/// # Examples
///
/// ```
/// use disksim::queueing::utilization;
/// assert!((utilization(50.0, 0.010) - 0.5).abs() < 1e-12);
/// ```
pub fn utilization(arrival_rate: f64, mean_service: f64) -> f64 {
    arrival_rate * mean_service
}

/// M/M/1 mean response time `E[T] = E[S] / (1 − ρ)`.
///
/// Returns `None` when the queue is unstable (`ρ ≥ 1`).
///
/// # Examples
///
/// ```
/// use disksim::queueing::mm1_response;
/// // A 10 ms server at 50% load answers in 20 ms on average.
/// let t = mm1_response(50.0, 0.010).unwrap();
/// assert!((t.to_millis() - 20.0).abs() < 1e-9);
/// ```
pub fn mm1_response(arrival_rate: f64, mean_service: f64) -> Option<Seconds> {
    let rho = utilization(arrival_rate, mean_service);
    (rho < 1.0).then(|| Seconds::new(mean_service / (1.0 - rho)))
}

/// M/G/1 mean response time by Pollaczek–Khinchine:
/// `E[T] = E[S] + λ·E[S²] / (2(1 − ρ))`.
///
/// Returns `None` when the queue is unstable.
pub fn mg1_response(arrival_rate: f64, moments: ServiceMoments) -> Option<Seconds> {
    let rho = utilization(arrival_rate, moments.mean);
    if rho >= 1.0 {
        return None;
    }
    let wait = arrival_rate * moments.second_moment / (2.0 * (1.0 - rho));
    Some(Seconds::new(moments.mean + wait))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DiskSpec, Request, RequestKind, Scheduler, StorageSystem, SystemConfig};
    use units::Rpm;

    #[test]
    fn mm1_special_cases() {
        // Exponential service with E[S^2] = 2 E[S]^2 collapses M/G/1 to
        // M/M/1.
        let mean = 0.008;
        let m = ServiceMoments {
            mean,
            second_moment: 2.0 * mean * mean,
            count: 1,
        };
        let a = mm1_response(60.0, mean).unwrap();
        let b = mg1_response(60.0, m).unwrap();
        assert!((a.get() - b.get()).abs() < 1e-12);
        assert!((m.scv() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unstable_queue_returns_none() {
        assert!(mm1_response(200.0, 0.010).is_none());
        let m = ServiceMoments {
            mean: 0.010,
            second_moment: 1e-4,
            count: 1,
        };
        assert!(mg1_response(100.0, m).is_none());
    }

    #[test]
    fn deterministic_service_halves_the_wait() {
        // P-K: the queueing delay of M/D/1 is half that of M/M/1.
        let mean = 0.01;
        let exp = ServiceMoments {
            mean,
            second_moment: 2.0 * mean * mean,
            count: 1,
        };
        let det = ServiceMoments {
            mean,
            second_moment: mean * mean,
            count: 1,
        };
        let lambda = 50.0;
        let wait = |m: ServiceMoments| mg1_response(lambda, m).unwrap().get() - mean;
        assert!((wait(det) / wait(exp) - 0.5).abs() < 1e-9);
    }

    /// The headline validation: the event engine under Poisson arrivals
    /// and FCFS matches Pollaczek–Khinchine using its *own measured*
    /// service moments.
    #[test]
    fn simulator_matches_pollaczek_khinchine() {
        let spec = DiskSpec::era_2001(Rpm::new(10_000.0));
        let mut sys = StorageSystem::new(
            SystemConfig::single_disk(spec).with_scheduler(Scheduler::Fcfs),
        )
        .unwrap();
        let capacity = sys.logical_sectors();

        // Deterministic "Poisson": exponential gaps from a fixed-seed
        // multiplicative generator (no rand dependency in this crate).
        let lambda = 55.0;
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut t = 0.0;
        let n = 20_000u64;
        for i in 0..n {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u = ((state >> 11) as f64) / ((1u64 << 53) as f64);
            t += -(1.0 - u).max(1e-12).ln() / lambda;
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let lba = state % (capacity - 8);
            sys.submit(Request::new(i, Seconds::new(t), 0, lba, 8, RequestKind::Read))
                .unwrap();
        }
        let done = sys.drain();
        assert_eq!(done.len() as u64, n);

        let measured_mean =
            done.iter().map(|c| c.response_time().get()).sum::<f64>() / n as f64;
        let moments = ServiceMoments::from_completions(&done);
        let rho = utilization(lambda, moments.mean);
        assert!(rho < 0.9, "keep the validation in the stable regime: rho={rho:.2}");
        let predicted = mg1_response(lambda, moments).unwrap().get();

        let rel = (measured_mean - predicted).abs() / predicted;
        // P-K assumes service times independent of queue state; SSTF-free
        // FCFS service on a disk violates that mildly (consecutive
        // requests share arm position), so allow a modest band.
        assert!(
            rel < 0.15,
            "simulated {:.2} ms vs P-K {:.2} ms ({:.0}% off, rho {:.2})",
            measured_mean * 1e3,
            predicted * 1e3,
            rel * 100.0,
            rho
        );
    }
}
