//! Segmented disk cache with read-ahead.
//!
//! Era-accurate drive caches were a handful of segments, each holding a
//! contiguous run of blocks; a read that lands entirely inside a cached
//! run is served from RAM, and every medium read prefetches ahead to the
//! end of its track. Writes are modeled write-through (server-class
//! drives of the period shipped with write caching disabled for
//! integrity) but still populate a segment, so a read after a write
//! hits.

use serde::{Deserialize, Serialize};

/// Cache geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total cache size in bytes (the paper's systems use 4 MB).
    pub bytes: u64,
    /// Number of segments the cache is divided into.
    pub segments: u32,
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self {
            bytes: 4 << 20,
            segments: 16,
        }
    }
}

impl CacheConfig {
    /// Sectors each segment can hold.
    pub fn segment_sectors(&self) -> u64 {
        (self.bytes / self.segments as u64) / 512
    }
}

/// Result of offering a request to the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CacheOutcome {
    /// Every requested sector was cached; no medium access needed.
    Hit,
    /// The medium must be accessed.
    Miss,
}

/// One cached run of sectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct Segment {
    start: u64,
    end: u64,
    /// LRU stamp: higher = more recently used.
    stamp: u64,
}

/// A segmented LRU cache over LBA runs.
///
/// # Examples
///
/// ```
/// use disksim::{CacheConfig, CacheOutcome, DiskCache};
///
/// let mut cache = DiskCache::new(CacheConfig::default());
/// assert_eq!(cache.lookup(100, 8), CacheOutcome::Miss);
/// cache.fill(100, 64); // medium read + read-ahead
/// assert_eq!(cache.lookup(120, 8), CacheOutcome::Hit);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiskCache {
    config: CacheConfig,
    segments: Vec<Segment>,
    clock: u64,
    hits: u64,
    misses: u64,
    /// `config.segment_sectors().max(1)`, resolved once — `fill` runs on
    /// every medium access and the quotient never changes. Skipped in
    /// serialization; a deserialized cache re-derives it lazily.
    #[serde(skip)]
    segment_clip: u64,
}

impl DiskCache {
    /// Creates an empty cache.
    pub fn new(config: CacheConfig) -> Self {
        Self {
            config,
            segments: Vec::with_capacity(config.segments as usize),
            clock: 0,
            hits: 0,
            misses: 0,
            segment_clip: config.segment_sectors().max(1),
        }
    }

    /// The per-segment sector clip, tolerating a deserialized (zeroed)
    /// field.
    #[inline]
    fn clip(&self) -> u64 {
        if self.segment_clip != 0 {
            self.segment_clip
        } else {
            self.config.segment_sectors().max(1)
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Checks whether `[lba, lba + sectors)` is entirely cached, and
    /// refreshes the containing segment's recency on a hit.
    pub fn lookup(&mut self, lba: u64, sectors: u32) -> CacheOutcome {
        let end = lba + sectors as u64;
        self.clock += 1;
        for seg in &mut self.segments {
            if lba >= seg.start && end <= seg.end {
                seg.stamp = self.clock;
                self.hits += 1;
                return CacheOutcome::Hit;
            }
        }
        self.misses += 1;
        CacheOutcome::Miss
    }

    /// Installs a run starting at `lba` after a medium access (the run
    /// includes any read-ahead the disk performed). The run is clipped
    /// to one segment's capacity; the least recently used segment is
    /// evicted when the cache is full.
    pub fn fill(&mut self, lba: u64, sectors: u64) {
        if sectors == 0 {
            return;
        }
        self.clock += 1;
        let cap = self.clip();
        let len = sectors.min(cap);
        let new = Segment {
            start: lba,
            end: lba + len,
            stamp: self.clock,
        };
        // Merge with an overlapping or adjacent segment if it extends it.
        for seg in &mut self.segments {
            if new.start <= seg.end && seg.start <= new.end {
                seg.start = seg.start.min(new.start);
                seg.end = seg.end.max(new.end);
                // Clip a merged over-long run to segment capacity,
                // keeping the most recent (tail) end.
                if seg.end - seg.start > cap {
                    seg.start = seg.end - cap;
                }
                seg.stamp = self.clock;
                return;
            }
        }
        if (self.segments.len() as u32) < self.config.segments {
            self.segments.push(new);
        } else {
            let victim = self
                .segments
                .iter_mut()
                .min_by_key(|s| s.stamp)
                .expect("cache has segments");
            *victim = new;
        }
    }

    /// Fraction of lookups served from cache so far.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Lookups served from cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that went to the medium.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Drops all cached data (but keeps hit/miss counters).
    pub fn invalidate(&mut self) {
        self.segments.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache() -> DiskCache {
        DiskCache::new(CacheConfig::default())
    }

    #[test]
    fn empty_cache_misses() {
        let mut c = cache();
        assert_eq!(c.lookup(0, 1), CacheOutcome::Miss);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn fill_then_hit_whole_and_partial() {
        let mut c = cache();
        c.fill(1000, 100);
        assert_eq!(c.lookup(1000, 100), CacheOutcome::Hit);
        assert_eq!(c.lookup(1050, 10), CacheOutcome::Hit);
        // Straddling the end of the run is a miss.
        assert_eq!(c.lookup(1090, 20), CacheOutcome::Miss);
    }

    #[test]
    fn lru_eviction_prefers_stale_segments() {
        let mut c = DiskCache::new(CacheConfig {
            bytes: 4 * 512 * 4,
            segments: 4,
        });
        for i in 0..4u64 {
            c.fill(i * 1_000, 4);
        }
        // Touch segments 1-3 so segment 0 is the LRU victim.
        for i in 1..4u64 {
            assert_eq!(c.lookup(i * 1_000, 4), CacheOutcome::Hit);
        }
        c.fill(50_000, 4);
        assert_eq!(c.lookup(0, 4), CacheOutcome::Miss, "victim was evicted");
        assert_eq!(c.lookup(50_000, 4), CacheOutcome::Hit);
        assert_eq!(c.lookup(1_000, 4), CacheOutcome::Hit, "survivor intact");
    }

    #[test]
    fn adjacent_fills_merge() {
        let mut c = cache();
        c.fill(100, 50);
        c.fill(150, 50);
        assert_eq!(c.lookup(100, 100), CacheOutcome::Hit);
    }

    #[test]
    fn merged_run_clips_to_segment_capacity_keeping_tail() {
        let cap = CacheConfig::default().segment_sectors();
        let mut c = cache();
        c.fill(0, cap);
        c.fill(cap, cap); // merge would be 2x capacity
        assert_eq!(c.lookup(cap, cap as u32), CacheOutcome::Hit);
        assert_eq!(c.lookup(0, 8), CacheOutcome::Miss, "head was clipped");
    }

    #[test]
    fn hit_rate_tracks_history() {
        let mut c = cache();
        c.fill(0, 100);
        let _ = c.lookup(0, 10); // hit
        let _ = c.lookup(500, 10); // miss
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn invalidate_clears_data_not_stats() {
        let mut c = cache();
        c.fill(0, 100);
        let _ = c.lookup(0, 10);
        c.invalidate();
        assert_eq!(c.lookup(0, 10), CacheOutcome::Miss);
        assert_eq!(c.hits(), 1);
    }

    #[test]
    fn zero_length_fill_is_noop() {
        let mut c = cache();
        c.fill(10, 0);
        assert_eq!(c.lookup(10, 1), CacheOutcome::Miss);
    }
}
