//! RAID-0/RAID-5 striping and request mapping.

use crate::error::SimError;
use crate::request::RequestKind;
use serde::{Deserialize, Serialize};

/// RAID organization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RaidLevel {
    /// Striping without redundancy.
    Raid0,
    /// Rotating-parity striping (left-asymmetric layout). Small writes
    /// pay the read-modify-write penalty: read old data + old parity,
    /// write new data + new parity.
    Raid5,
}

/// A striped array layout.
///
/// # Examples
///
/// ```
/// use disksim::{RaidConfig, RaidLevel};
///
/// // The paper's RAID-5 systems use a 16-sector (8 KB) stripe unit.
/// let raid = RaidConfig::new(RaidLevel::Raid5, 8, 16)?;
/// assert_eq!(raid.data_disks(), 7);
/// # Ok::<(), disksim::SimError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RaidConfig {
    level: RaidLevel,
    disks: u32,
    stripe_sectors: u32,
    write_back: bool,
}

/// One physical operation the array issues to a member disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhysOp {
    /// Member disk index.
    pub disk: u32,
    /// Physical LBA on that disk.
    pub lba: u64,
    /// Sectors.
    pub sectors: u32,
    /// Read or write at the physical level.
    pub kind: RequestKind,
    /// Whether the logical request's completion waits for this
    /// operation. Parity maintenance (the old-parity read and the new-
    /// parity write) is deferred work the controller performs after
    /// acknowledging the host — standard for battery-backed array
    /// controllers of the era — so those operations occupy the disks
    /// but do not gate the response time.
    pub gates_completion: bool,
}

impl RaidConfig {
    /// Creates a layout.
    ///
    /// # Errors
    ///
    /// [`SimError::BadConfig`] when there are too few disks for the
    /// level (2 for RAID-0, 3 for RAID-5) or the stripe unit is zero.
    pub fn new(level: RaidLevel, disks: u32, stripe_sectors: u32) -> Result<Self, SimError> {
        let min = match level {
            RaidLevel::Raid0 => 2,
            RaidLevel::Raid5 => 3,
        };
        if disks < min {
            return Err(SimError::BadConfig(format!(
                "{level:?} needs at least {min} disks, got {disks}"
            )));
        }
        if stripe_sectors == 0 {
            return Err(SimError::BadConfig("stripe unit must be positive".into()));
        }
        Ok(Self {
            level,
            disks,
            stripe_sectors,
            write_back: false,
        })
    }

    /// Enables write-back caching: the controller acknowledges writes
    /// from battery-backed NVRAM immediately and destages the data and
    /// parity in the background. Writes then have near-zero response
    /// time while their physical work still occupies the member disks.
    pub fn with_write_back(mut self, write_back: bool) -> Self {
        self.write_back = write_back;
        self
    }

    /// Whether write-back caching is enabled.
    pub fn write_back(&self) -> bool {
        self.write_back
    }

    /// The RAID level.
    pub fn level(&self) -> RaidLevel {
        self.level
    }

    /// Member disk count.
    pub fn disks(&self) -> u32 {
        self.disks
    }

    /// Stripe unit in sectors.
    pub fn stripe_sectors(&self) -> u32 {
        self.stripe_sectors
    }

    /// Disks carrying data in each stripe row.
    pub fn data_disks(&self) -> u32 {
        match self.level {
            RaidLevel::Raid0 => self.disks,
            RaidLevel::Raid5 => self.disks - 1,
        }
    }

    /// Logical capacity in sectors given each member's physical capacity.
    pub fn logical_sectors(&self, per_disk: u64) -> u64 {
        let rows = per_disk / self.stripe_sectors as u64;
        rows * self.stripe_sectors as u64 * self.data_disks() as u64
    }

    /// Locates a logical stripe unit: returns `(row, data_index)`.
    fn unit_of(&self, logical_lba: u64) -> (u64, u32, u32) {
        let unit = logical_lba / self.stripe_sectors as u64;
        let offset = (logical_lba % self.stripe_sectors as u64) as u32;
        let row = unit / self.data_disks() as u64;
        let data_index = (unit % self.data_disks() as u64) as u32;
        (row, data_index, offset)
    }

    /// Parity disk of a stripe row (RAID-5 left-asymmetric rotation).
    pub fn parity_disk(&self, row: u64) -> u32 {
        debug_assert!(matches!(self.level, RaidLevel::Raid5));
        (self.disks - 1) - (row % self.disks as u64) as u32
    }

    /// Physical member disk holding data index `d` of a row.
    fn data_disk(&self, row: u64, data_index: u32) -> u32 {
        match self.level {
            RaidLevel::Raid0 => data_index,
            RaidLevel::Raid5 => {
                let parity = self.parity_disk(row);
                if data_index < parity {
                    data_index
                } else {
                    data_index + 1
                }
            }
        }
    }

    /// Maps a logical request to the physical operations it induces.
    ///
    /// Reads touch only the data units. RAID-5 writes perform
    /// read-modify-write per stripe unit: read old data, read old
    /// parity, write new data, write new parity.
    pub fn map(&self, logical_lba: u64, sectors: u32, kind: RequestKind) -> Vec<PhysOp> {
        self.map_degraded(logical_lba, sectors, kind, None)
    }

    /// Like [`RaidConfig::map`], but with an optional failed member.
    ///
    /// In degraded mode (RAID-5 only):
    /// - a read whose data unit lives on the dead disk is reconstructed
    ///   by reading the same stripe offset from *every* surviving member
    ///   and XOR-ing — one medium read per survivor;
    /// - a write whose data unit lives on the dead disk updates parity
    ///   only (reconstruct-write: read the surviving data units, write
    ///   the new parity);
    /// - a write whose *parity* lives on the dead disk degenerates to a
    ///   bare data write (the redundancy is simply lost);
    /// - operations that do not touch the dead disk map as usual.
    ///
    /// # Panics
    ///
    /// Panics if `failed` names a member outside the array or if
    /// degraded mapping is requested for RAID-0 (which has no
    /// redundancy to reconstruct from).
    pub fn map_degraded(
        &self,
        logical_lba: u64,
        sectors: u32,
        kind: RequestKind,
        failed: Option<u32>,
    ) -> Vec<PhysOp> {
        let mut ops = Vec::new();
        self.map_degraded_into(logical_lba, sectors, kind, failed, &mut ops);
        ops
    }

    /// Like [`RaidConfig::map_degraded`], but appends the operations to
    /// `ops` — the storage system maps every arrival through one
    /// persistent scratch buffer instead of allocating per request.
    ///
    /// # Panics
    ///
    /// As [`RaidConfig::map_degraded`].
    pub fn map_degraded_into(
        &self,
        logical_lba: u64,
        sectors: u32,
        kind: RequestKind,
        failed: Option<u32>,
        ops: &mut Vec<PhysOp>,
    ) {
        if let Some(f) = failed {
            assert!(f < self.disks, "failed disk {f} outside the array");
            assert!(
                matches!(self.level, RaidLevel::Raid5),
                "only RAID-5 supports degraded operation"
            );
        }
        let mut lba = logical_lba;
        let mut remaining = sectors;
        while remaining > 0 {
            let (row, data_index, offset) = self.unit_of(lba);
            let in_unit = (self.stripe_sectors - offset).min(remaining);
            let disk = self.data_disk(row, data_index);
            let plba = row * self.stripe_sectors as u64 + offset as u64;

            if let Some(dead) = failed {
                let parity = self.parity_disk(row);
                let advance = in_unit;
                match kind {
                    RequestKind::Read if disk == dead => {
                        // Reconstruct from every surviving member.
                        for survivor in 0..self.disks {
                            if survivor == dead {
                                continue;
                            }
                            ops.push(PhysOp {
                                disk: survivor,
                                lba: plba,
                                sectors: in_unit,
                                kind: RequestKind::Read,
                                gates_completion: true,
                            });
                        }
                        lba += advance as u64;
                        remaining -= advance;
                        continue;
                    }
                    RequestKind::Write if disk == dead => {
                        // Reconstruct-write: read surviving data units,
                        // write the new parity.
                        let data_gates = !self.write_back;
                        for survivor in 0..self.disks {
                            if survivor == dead || survivor == parity {
                                continue;
                            }
                            ops.push(PhysOp {
                                disk: survivor,
                                lba: plba,
                                sectors: in_unit,
                                kind: RequestKind::Read,
                                gates_completion: data_gates,
                            });
                        }
                        ops.push(PhysOp {
                            disk: parity,
                            lba: plba,
                            sectors: in_unit,
                            kind: RequestKind::Write,
                            gates_completion: data_gates,
                        });
                        lba += advance as u64;
                        remaining -= advance;
                        continue;
                    }
                    RequestKind::Write if parity == dead => {
                        // Parity lost: a bare data write.
                        ops.push(PhysOp {
                            disk,
                            lba: plba,
                            sectors: in_unit,
                            kind: RequestKind::Write,
                            gates_completion: !self.write_back,
                        });
                        lba += advance as u64;
                        remaining -= advance;
                        continue;
                    }
                    _ => {}
                }
            }

            match (self.level, kind) {
                (_, RequestKind::Read) | (RaidLevel::Raid0, RequestKind::Write) => {
                    ops.push(PhysOp {
                        disk,
                        lba: plba,
                        sectors: in_unit,
                        kind,
                        gates_completion: true,
                    });
                }
                (RaidLevel::Raid5, RequestKind::Write) => {
                    let parity = self.parity_disk(row);
                    // Read-modify-write: old data, old parity, new data,
                    // new parity. The parity pair is deferred controller
                    // work and does not gate the host response; under
                    // write-back caching nothing does.
                    let data_gates = !self.write_back;
                    ops.push(PhysOp {
                        disk,
                        lba: plba,
                        sectors: in_unit,
                        kind: RequestKind::Read,
                        gates_completion: data_gates,
                    });
                    ops.push(PhysOp {
                        disk: parity,
                        lba: plba,
                        sectors: in_unit,
                        kind: RequestKind::Read,
                        gates_completion: false,
                    });
                    ops.push(PhysOp {
                        disk,
                        lba: plba,
                        sectors: in_unit,
                        kind: RequestKind::Write,
                        gates_completion: data_gates,
                    });
                    ops.push(PhysOp {
                        disk: parity,
                        lba: plba,
                        sectors: in_unit,
                        kind: RequestKind::Write,
                        gates_completion: false,
                    });
                }
            }
            lba += in_unit as u64;
            remaining -= in_unit;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raid5() -> RaidConfig {
        RaidConfig::new(RaidLevel::Raid5, 4, 16).unwrap()
    }

    fn raid0() -> RaidConfig {
        RaidConfig::new(RaidLevel::Raid0, 4, 16).unwrap()
    }

    #[test]
    fn config_validation() {
        assert!(RaidConfig::new(RaidLevel::Raid0, 1, 16).is_err());
        assert!(RaidConfig::new(RaidLevel::Raid5, 2, 16).is_err());
        assert!(RaidConfig::new(RaidLevel::Raid5, 3, 0).is_err());
        assert!(RaidConfig::new(RaidLevel::Raid5, 3, 16).is_ok());
    }

    #[test]
    fn raid0_round_robin() {
        let r = raid0();
        // Units 0,1,2,3 land on disks 0,1,2,3; unit 4 wraps to disk 0.
        for unit in 0..8u64 {
            let ops = r.map(unit * 16, 16, RequestKind::Read);
            assert_eq!(ops.len(), 1);
            assert_eq!(ops[0].disk, (unit % 4) as u32);
            assert_eq!(ops[0].lba, (unit / 4) * 16);
        }
    }

    #[test]
    fn raid5_parity_rotates() {
        let r = raid5();
        let seen: std::collections::HashSet<u32> =
            (0..4u64).map(|row| r.parity_disk(row)).collect();
        assert_eq!(seen.len(), 4, "parity must visit every disk");
    }

    #[test]
    fn raid5_read_is_single_op() {
        let r = raid5();
        let ops = r.map(0, 16, RequestKind::Read);
        assert_eq!(ops.len(), 1);
        assert_eq!(ops[0].kind, RequestKind::Read);
    }

    #[test]
    fn raid5_small_write_is_rmw() {
        let r = raid5();
        let ops = r.map(0, 8, RequestKind::Write);
        assert_eq!(ops.len(), 4, "read-modify-write touches 4 ops");
        let reads = ops.iter().filter(|o| o.kind == RequestKind::Read).count();
        let writes = ops.iter().filter(|o| o.kind == RequestKind::Write).count();
        assert_eq!((reads, writes), (2, 2));
        // Data and parity live on different disks.
        let disks: std::collections::HashSet<u32> = ops.iter().map(|o| o.disk).collect();
        assert_eq!(disks.len(), 2);
    }

    #[test]
    fn data_never_lands_on_parity_disk() {
        let r = raid5();
        for unit in 0..64u64 {
            let ops = r.map(unit * 16, 16, RequestKind::Read);
            let row = unit / 3; // 3 data disks per row
            assert_ne!(
                ops[0].disk,
                r.parity_disk(row),
                "unit {unit} mapped onto its parity disk"
            );
        }
    }

    #[test]
    fn multi_unit_request_splits() {
        let r = raid0();
        // 40 sectors from LBA 8: units 0 (8 left), 1 (16), 2 (16).
        let ops = r.map(8, 40, RequestKind::Read);
        assert_eq!(ops.len(), 3);
        assert_eq!(ops[0].sectors, 8);
        assert_eq!(ops[1].sectors, 16);
        assert_eq!(ops[2].sectors, 16);
        let total: u32 = ops.iter().map(|o| o.sectors).sum();
        assert_eq!(total, 40);
    }

    #[test]
    fn mapping_conserves_sectors_raid5_write() {
        let r = raid5();
        let ops = r.map(100, 60, RequestKind::Write);
        let written: u32 = ops
            .iter()
            .filter(|o| o.kind == RequestKind::Write && o.disk != 99)
            .map(|o| o.sectors)
            .sum();
        // Data writes + parity writes = 2x the logical sectors.
        assert_eq!(written, 120);
    }

    #[test]
    fn degraded_read_fans_out_to_survivors() {
        let r = raid5(); // 4 disks
        // Find a unit living on disk 0 and fail disk 0.
        let mut lba = 0;
        loop {
            let ops = r.map(lba, 16, RequestKind::Read);
            if ops[0].disk == 0 {
                break;
            }
            lba += 16;
        }
        let ops = r.map_degraded(lba, 16, RequestKind::Read, Some(0));
        assert_eq!(ops.len(), 3, "read every survivor");
        assert!(ops.iter().all(|o| o.disk != 0));
        assert!(ops.iter().all(|o| o.kind == RequestKind::Read));
        assert!(ops.iter().all(|o| o.gates_completion));
    }

    #[test]
    fn degraded_read_elsewhere_is_unchanged() {
        let r = raid5();
        let mut lba = 0;
        loop {
            let ops = r.map(lba, 16, RequestKind::Read);
            if ops[0].disk != 0 {
                break;
            }
            lba += 16;
        }
        let healthy = r.map(lba, 16, RequestKind::Read);
        let degraded = r.map_degraded(lba, 16, RequestKind::Read, Some(0));
        assert_eq!(healthy, degraded);
    }

    #[test]
    fn degraded_write_to_dead_data_updates_parity_only() {
        let r = raid5();
        let mut lba = 0;
        loop {
            let ops = r.map(lba, 16, RequestKind::Read);
            if ops[0].disk == 2 {
                break;
            }
            lba += 16;
        }
        let ops = r.map_degraded(lba, 16, RequestKind::Write, Some(2));
        // 2 surviving data reads + 1 parity write on a 4-disk array.
        assert_eq!(ops.len(), 3);
        let writes: Vec<&PhysOp> =
            ops.iter().filter(|o| o.kind == RequestKind::Write).collect();
        assert_eq!(writes.len(), 1);
        assert!(ops.iter().all(|o| o.disk != 2));
    }

    #[test]
    fn degraded_write_with_dead_parity_is_bare() {
        let r = raid5();
        // Unit whose parity disk is 1.
        let mut lba = 0;
        loop {
            let (unit, _, _) = (lba / 16, 0, 0);
            let row = unit / 3;
            if r.parity_disk(row) == 1 {
                // ensure the data itself is not on disk 1
                let ops = r.map(lba, 16, RequestKind::Read);
                if ops[0].disk != 1 {
                    break;
                }
            }
            lba += 16;
        }
        let ops = r.map_degraded(lba, 16, RequestKind::Write, Some(1));
        assert_eq!(ops.len(), 1);
        assert_eq!(ops[0].kind, RequestKind::Write);
        assert_ne!(ops[0].disk, 1);
    }

    #[test]
    #[should_panic(expected = "outside the array")]
    fn degraded_bad_member_panics() {
        let _ = raid5().map_degraded(0, 8, RequestKind::Read, Some(9));
    }

    #[test]
    #[should_panic(expected = "RAID-5")]
    fn degraded_raid0_panics() {
        let _ = raid0().map_degraded(0, 8, RequestKind::Read, Some(0));
    }

    #[test]
    fn logical_capacity_excludes_parity() {
        let r5 = raid5();
        let r0 = raid0();
        let per_disk = 1_000_000;
        assert!(r5.logical_sectors(per_disk) < r0.logical_sectors(per_disk));
        let ratio = r5.logical_sectors(per_disk) as f64 / r0.logical_sectors(per_disk) as f64;
        assert!((ratio - 0.75).abs() < 1e-9, "3 of 4 disks carry data");
    }
}
