//! The mechanical disk service model.

use crate::cache::{CacheConfig, CacheOutcome, DiskCache};
use crate::error::SimError;
use crate::request::RequestKind;
use diskgeom::{DriveGeometry, Platter, RecordingTech};
use diskperf::SeekProfile;
use serde::{Deserialize, Serialize};
use units::{BitsPerInch, Inches, Rpm, Seconds, TracksPerInch};

/// Full description of one simulated disk.
///
/// # Examples
///
/// ```
/// use disksim::DiskSpec;
/// use units::Rpm;
///
/// let spec = DiskSpec::era_2001(Rpm::new(10_000.0));
/// assert!(spec.geometry().capacity().gigabytes() > 10.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiskSpec {
    geometry: DriveGeometry,
    rpm: Rpm,
    seek: SeekProfile,
    cache: CacheConfig,
    /// Fixed controller/firmware overhead charged to every request.
    controller_overhead: Seconds,
    /// Interface transfer rate for cache hits, bytes per second.
    bus_bytes_per_sec: f64,
}

impl DiskSpec {
    /// Builds a spec from explicit geometry and spindle speed; seek times
    /// come from the platter-size interpolation, the cache defaults to
    /// 4 MB / 16 segments and the controller overhead to 0.3 ms over a
    /// 160 MB/s bus (Ultra160 SCSI, the era's interface).
    pub fn new(geometry: DriveGeometry, rpm: Rpm) -> Self {
        let seek =
            SeekProfile::for_platter(geometry.platter().diameter(), geometry.used_cylinders());
        Self {
            geometry,
            rpm,
            seek,
            cache: CacheConfig::default(),
            controller_overhead: Seconds::from_millis(0.3),
            bus_bytes_per_sec: 160e6,
        }
    }

    /// A representative 2001 server disk: 3.3″ platters at
    /// 480 KBPI × 27.3 KTPI with 30 zones (the Ultrastar 73LZX / Cheetah
    /// 73LP class of Table 1), two platters ≈ 23 GB.
    ///
    /// # Panics
    ///
    /// Never panics: the era parameters are statically valid.
    pub fn era_2001(rpm: Rpm) -> Self {
        Self::era(2001, 2, rpm)
    }

    /// A disk of roughly year-`year` technology with the given platter
    /// count, 3.3″ media, 30 zones.
    ///
    /// # Panics
    ///
    /// Panics if `year` is before 1995 or the configuration is
    /// geometrically invalid (it is valid for all supported years).
    pub fn era(year: i32, platters: u32, rpm: Rpm) -> Self {
        assert!(year >= 1995, "era constructor supports 1995 onward");
        // Densities follow the 30%/50% CGRs anchored at 1999.
        let dy = year - 1999;
        let bpi = 270e3 * 1.3f64.powi(dy);
        let tpi = 20e3 * 1.5f64.powi(dy);
        let tech = RecordingTech::new(BitsPerInch::new(bpi), TracksPerInch::new(tpi));
        let geometry = DriveGeometry::new(Platter::new(Inches::new(3.3)), tech, platters, 30)
            .expect("era parameters are valid");
        Self::new(geometry, rpm)
    }

    /// Replaces the spindle speed (the Figure 4 sweep variable).
    pub fn with_rpm(mut self, rpm: Rpm) -> Self {
        self.rpm = rpm;
        self
    }

    /// Replaces the cache configuration.
    pub fn with_cache(mut self, cache: CacheConfig) -> Self {
        self.cache = cache;
        self
    }

    /// Replaces the seek profile.
    pub fn with_seek(mut self, seek: SeekProfile) -> Self {
        self.seek = seek;
        self
    }

    /// The drive geometry.
    pub fn geometry(&self) -> &DriveGeometry {
        &self.geometry
    }

    /// The spindle speed.
    pub fn rpm(&self) -> Rpm {
        self.rpm
    }

    /// The seek profile.
    pub fn seek(&self) -> &SeekProfile {
        &self.seek
    }
}

/// Where a request's service time went.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ServiceBreakdown {
    /// Controller/firmware overhead.
    pub overhead: Seconds,
    /// Arm movement.
    pub seek: Seconds,
    /// Rotational wait for the first sector.
    pub rotation: Seconds,
    /// Media/bus transfer.
    pub transfer: Seconds,
    /// `true` when served from the cache without touching the medium.
    pub cache_hit: bool,
    /// Cylinders the arm moved.
    pub seek_distance: u32,
}

impl ServiceBreakdown {
    /// Total service time.
    pub fn total(&self) -> Seconds {
        self.overhead + self.seek + self.rotation + self.transfer
    }
}

/// Mechanical state of one disk during simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Disk {
    spec: DiskSpec,
    cache: DiskCache,
    head_cylinder: u32,
    /// Accumulated busy time (for utilization and DTM duty estimation).
    busy_time: Seconds,
    /// Accumulated time the actuator spent seeking.
    seek_time: Seconds,
    /// Requests served.
    served: u64,
    /// Requests that required arm movement.
    moved_arm: u64,
    /// Total cylinders traveled.
    total_seek_distance: u64,
}

impl Disk {
    /// Creates a disk with the head parked at cylinder 0.
    pub fn new(spec: DiskSpec) -> Self {
        let cache = DiskCache::new(spec.cache);
        Self {
            spec,
            cache,
            head_cylinder: 0,
            busy_time: Seconds::ZERO,
            seek_time: Seconds::ZERO,
            served: 0,
            moved_arm: 0,
            total_seek_distance: 0,
        }
    }

    /// The disk's specification.
    pub fn spec(&self) -> &DiskSpec {
        &self.spec
    }

    /// Changes the spindle speed in place (multi-speed disks; used by
    /// the DTM throttling policies). The cache survives, the mechanical
    /// position is kept.
    pub fn set_rpm(&mut self, rpm: Rpm) {
        self.spec.rpm = rpm;
    }

    /// Current cylinder under the heads.
    pub fn head_cylinder(&self) -> u32 {
        self.head_cylinder
    }

    /// Total time this disk spent serving requests.
    pub fn busy_time(&self) -> Seconds {
        self.busy_time
    }

    /// Total time the actuator spent seeking — the paper's VCM-duty
    /// signal for DTM.
    pub fn seek_time(&self) -> Seconds {
        self.seek_time
    }

    /// Requests served.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Fraction of served requests that moved the arm (the paper quotes
    /// 86 % for OpenMail).
    pub fn arm_movement_rate(&self) -> f64 {
        if self.served == 0 {
            0.0
        } else {
            self.moved_arm as f64 / self.served as f64
        }
    }

    /// Mean seek distance in cylinders over served requests.
    pub fn mean_seek_distance(&self) -> f64 {
        if self.served == 0 {
            0.0
        } else {
            self.total_seek_distance as f64 / self.served as f64
        }
    }

    /// Cache hit statistics.
    pub fn cache(&self) -> &DiskCache {
        &self.cache
    }

    /// Serves a request beginning at `start`, returning when it finishes
    /// and where the time went.
    ///
    /// # Errors
    ///
    /// [`SimError::OutOfRange`] when the request runs past the end of
    /// the medium.
    pub fn service(
        &mut self,
        lba: u64,
        sectors: u32,
        kind: RequestKind,
        start: Seconds,
    ) -> Result<(Seconds, ServiceBreakdown), SimError> {
        let total = self.spec.geometry.total_sectors().get();
        if lba + sectors as u64 > total {
            return Err(SimError::OutOfRange {
                lba,
                sectors,
                capacity: total,
            });
        }
        let loc = self
            .spec
            .geometry
            .locate(lba)
            .expect("range checked above");
        Ok(self.service_located(loc, lba, sectors, kind, start))
    }

    /// Serves a request whose start [`Location`] is already resolved and
    /// whose range is already checked — the queueing layer resolves every
    /// physical request once at enqueue (it needs the cylinder for
    /// scheduling anyway), so the hot path never re-runs the zone-table
    /// lookup. Identical results to [`Self::service`].
    pub fn service_located(
        &mut self,
        loc: diskgeom::Location,
        lba: u64,
        sectors: u32,
        kind: RequestKind,
        start: Seconds,
    ) -> (Seconds, ServiceBreakdown) {
        let overhead = self.spec.controller_overhead;
        self.served += 1;

        // Cache: reads served from a segment never touch the medium.
        if kind.is_read() && self.cache.lookup(lba, sectors) == CacheOutcome::Hit {
            let bus = Seconds::new(sectors as f64 * 512.0 / self.spec.bus_bytes_per_sec);
            let breakdown = ServiceBreakdown {
                overhead,
                transfer: bus,
                cache_hit: true,
                ..ServiceBreakdown::default()
            };
            let finish = start + breakdown.total();
            self.busy_time += breakdown.total();
            return (finish, breakdown);
        }
        if !kind.is_read() {
            // Writes always pay the medium (write-through) but leave the
            // data cached for subsequent reads.
            let _ = self.cache.lookup(lba, sectors);
        }

        let zone = &self.spec.geometry.zones().zones()[loc.zone as usize];
        let spt = zone.sectors_per_track().get();
        let period = self.spec.rpm.rotation_period();

        // Seek.
        let distance = self.head_cylinder.abs_diff(loc.cylinder);
        let seek = self.spec.seek.seek_time(distance);
        if distance > 0 {
            self.moved_arm += 1;
            self.total_seek_distance += distance as u64;
        }

        // Rotational wait: the platter's angle advances in real time.
        let ready = start + overhead + seek;
        let target_angle = loc.sector as f64 / spt as f64;
        let turns = ready.get() / period.get();
        // `turns.fract()` by integer cast: exact for finite values below
        // 2^53 (every reachable schedule) and avoids the libm `trunc`
        // call that dominates this expression on generic x86-64.
        let current_angle = if (0.0..9.007199254740992e15).contains(&turns) {
            turns - (turns as u64 as f64)
        } else {
            turns.fract()
        };
        // Both angles lie in [0, 1), so `rem_euclid(1.0)` — an exact
        // libm fmod no-op for |x| < 1 — reduces to one sign branch.
        let diff = target_angle - current_angle;
        let wait_frac = if diff < 0.0 { diff + 1.0 } else { diff };
        let rotation = period * wait_frac;

        // Transfer: stream `sectors`, paying a head/track switch each
        // time the run crosses a track boundary.
        let track_crossings = (loc.sector as u64 + sectors as u64 - 1) / spt;
        let transfer = period * (sectors as f64 / spt as f64)
            + self.spec.seek.track_to_track() * track_crossings as f64;

        // Read-ahead: the drive keeps reading to the end of the track
        // after a medium read; the tail lands in the cache for free.
        let readahead = if kind.is_read() {
            let end_sector = (loc.sector as u64 + sectors as u64) % spt;
            if end_sector == 0 {
                0
            } else {
                spt - end_sector
            }
        } else {
            0
        };
        self.cache.fill(lba, sectors as u64 + readahead);

        // The head ends at the last sector's cylinder. When the run stays
        // inside the start zone (almost always), that cylinder follows
        // from `loc` with one division; only zone-crossing runs re-run
        // the full lookup. Same value either way.
        let last_lba = lba + sectors as u64 - 1;
        let (zone_start, zone_end) = self
            .spec
            .geometry
            .zone_lba_range(loc.zone)
            .expect("located zone exists");
        self.head_cylinder = if last_lba < zone_end {
            let per_cylinder = spt * self.spec.geometry.surfaces() as u64;
            zone.first_cylinder() + ((last_lba - zone_start) / per_cylinder) as u32
        } else {
            self.spec
                .geometry
                .locate(last_lba)
                .expect("range checked above")
                .cylinder
        };
        let breakdown = ServiceBreakdown {
            overhead,
            seek,
            rotation,
            transfer,
            cache_hit: false,
            seek_distance: distance,
        };
        self.busy_time += breakdown.total();
        self.seek_time += seek;
        (start + breakdown.total(), breakdown)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk(rpm: f64) -> Disk {
        Disk::new(DiskSpec::era_2001(Rpm::new(rpm)))
    }

    #[test]
    fn era_2001_capacity_is_plausible() {
        let d = disk(10_000.0);
        let gb = d.spec().geometry().capacity().gigabytes();
        assert!(gb > 15.0 && gb < 60.0, "got {gb:.1} GB");
    }

    #[test]
    fn first_request_pays_rotation_but_no_seek() {
        let mut d = disk(10_000.0);
        let (_, b) = d.service(0, 8, RequestKind::Read, Seconds::ZERO).unwrap();
        assert_eq!(b.seek, Seconds::ZERO, "head starts at cylinder 0");
        assert!(b.rotation.get() >= 0.0);
        assert!(b.transfer.get() > 0.0);
        assert!(!b.cache_hit);
    }

    #[test]
    fn sequential_read_hits_readahead_cache() {
        let mut d = disk(10_000.0);
        let (t1, b1) = d.service(0, 8, RequestKind::Read, Seconds::ZERO).unwrap();
        let (_, b2) = d.service(8, 8, RequestKind::Read, t1).unwrap();
        assert!(!b1.cache_hit);
        assert!(b2.cache_hit, "read-ahead should catch the next sectors");
        assert!(b2.total() < b1.total() / 5.0);
    }

    #[test]
    fn far_seek_costs_more_than_near_seek() {
        let total = disk(10_000.0).spec().geometry().total_sectors().get();
        let mut d = disk(10_000.0);
        let (_, near) = d.service(0, 8, RequestKind::Read, Seconds::ZERO).unwrap();
        let (_, far) = d
            .service(total - 16, 8, RequestKind::Read, Seconds::new(1.0))
            .unwrap();
        assert!(far.seek > near.seek);
        assert!(far.seek_distance > 10_000);
    }

    #[test]
    fn faster_spindle_cuts_rotation_and_transfer() {
        // Compare expected rotational latency + transfer across RPMs.
        let mut slow = disk(10_000.0);
        let mut fast = disk(20_000.0);
        let (_, b_slow) = slow.service(0, 64, RequestKind::Read, Seconds::ZERO).unwrap();
        let (_, b_fast) = fast.service(0, 64, RequestKind::Read, Seconds::ZERO).unwrap();
        assert!(
            b_fast.transfer.get() < b_slow.transfer.get() * 0.6,
            "transfer should halve: {} vs {}",
            b_fast.transfer.to_millis(),
            b_slow.transfer.to_millis()
        );
    }

    #[test]
    fn writes_pay_medium_but_populate_cache() {
        let mut d = disk(10_000.0);
        let (t1, w) = d.service(100, 8, RequestKind::Write, Seconds::ZERO).unwrap();
        assert!(!w.cache_hit, "write-through pays the medium");
        let (_, r) = d.service(100, 8, RequestKind::Read, t1).unwrap();
        assert!(r.cache_hit, "read-after-write hits");
    }

    #[test]
    fn out_of_range_is_an_error() {
        let mut d = disk(10_000.0);
        let total = d.spec().geometry().total_sectors().get();
        let err = d
            .service(total - 4, 8, RequestKind::Read, Seconds::ZERO)
            .unwrap_err();
        assert!(matches!(err, SimError::OutOfRange { .. }));
    }

    #[test]
    fn activity_counters_accumulate() {
        let mut d = disk(10_000.0);
        let mut t = Seconds::ZERO;
        for i in 0..10u64 {
            let (f, _) = d
                .service(i * 1_000_000 % 20_000_000, 8, RequestKind::Read, t)
                .unwrap();
            t = f;
        }
        assert_eq!(d.served(), 10);
        assert!(d.busy_time().get() > 0.0);
        assert!(d.seek_time().get() > 0.0);
        assert!(d.arm_movement_rate() > 0.5);
        assert!(d.mean_seek_distance() > 0.0);
    }

    #[test]
    fn rpm_change_preserves_state() {
        let mut d = disk(10_000.0);
        let (t1, _) = d.service(5_000_000, 8, RequestKind::Read, Seconds::ZERO).unwrap();
        let cyl = d.head_cylinder();
        d.set_rpm(Rpm::new(20_000.0));
        assert_eq!(d.head_cylinder(), cyl);
        let (_, b) = d.service(5_000_100, 8, RequestKind::Read, t1).unwrap();
        // Still near the same cylinder: tiny seek.
        assert!(b.seek_distance < 10, "distance {}", b.seek_distance);
    }

    #[test]
    fn rotational_wait_is_bounded_by_one_revolution() {
        let mut d = disk(10_000.0);
        let period = Rpm::new(10_000.0).rotation_period();
        for i in 0..50u64 {
            let (_, b) = d
                .service((i * 777_777) % 10_000_000, 4, RequestKind::Read, Seconds::new(i as f64))
                .unwrap();
            if !b.cache_hit {
                assert!(b.rotation <= period, "wait {} > period", b.rotation.to_millis());
            }
        }
    }
}
