//! Property-based tests for the storage-system engine.

use disksim::{
    CalendarQueue, DiskSpec, Request, RequestKind, Scheduler, StorageSystem, SystemConfig,
    TimeKey,
};
use proptest::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use units::{Rpm, Seconds};

/// A random but valid request stream against a known capacity.
fn request_stream(
    capacity: u64,
    max_len: usize,
) -> impl Strategy<Value = Vec<(f64, u64, u16, bool)>> {
    prop::collection::vec(
        (
            0.0f64..10_000.0,          // arrival ms
            0u64..capacity - 256,      // lba
            1u16..128,                 // sectors
            any::<bool>(),             // read?
        ),
        1..max_len,
    )
}

fn build_requests(raw: &[(f64, u64, u16, bool)]) -> Vec<Request> {
    raw.iter()
        .enumerate()
        .map(|(i, &(ms, lba, sectors, read))| {
            Request::new(
                i as u64,
                Seconds::from_millis(ms),
                0,
                lba,
                sectors as u32,
                if read { RequestKind::Read } else { RequestKind::Write },
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn conservation_no_loss_no_duplication(
        raw in request_stream(10_000_000, 120),
        scheduler in prop_oneof![
            Just(Scheduler::Fcfs),
            Just(Scheduler::Sstf),
            Just(Scheduler::Elevator)
        ],
    ) {
        let cfg = SystemConfig::single_disk(DiskSpec::era_2001(Rpm::new(10_000.0)))
            .with_scheduler(scheduler);
        let mut sys = StorageSystem::new(cfg).unwrap();
        let reqs = build_requests(&raw);
        for r in &reqs {
            sys.submit(*r).unwrap();
        }
        let done = sys.drain();
        prop_assert_eq!(done.len(), reqs.len());
        let mut ids: Vec<u64> = done.iter().map(|c| c.request.id).collect();
        ids.sort_unstable();
        for (i, id) in ids.iter().enumerate() {
            prop_assert_eq!(i as u64, *id);
        }
    }

    #[test]
    fn causality_and_positivity(raw in request_stream(10_000_000, 80)) {
        let mut sys = StorageSystem::new(SystemConfig::single_disk(
            DiskSpec::era_2001(Rpm::new(15_000.0)),
        ))
        .unwrap();
        for r in build_requests(&raw) {
            sys.submit(r).unwrap();
        }
        for c in sys.drain() {
            prop_assert!(c.start >= c.request.arrival);
            prop_assert!(c.finish > c.start);
        }
    }

    #[test]
    fn raid5_conserves_requests(raw in request_stream(20_000_000, 60)) {
        let cfg = SystemConfig::raid5(DiskSpec::era_2001(Rpm::new(10_000.0)), 5, 16).unwrap();
        let mut sys = StorageSystem::new(cfg).unwrap();
        let reqs = build_requests(&raw);
        for r in &reqs {
            sys.submit(*r).unwrap();
        }
        let done = sys.drain();
        prop_assert_eq!(done.len(), reqs.len());
        prop_assert_eq!(sys.in_flight(), 0);
    }

    #[test]
    fn incremental_advance_equals_drain(raw in request_stream(10_000_000, 60)) {
        let make = || {
            let mut sys = StorageSystem::new(SystemConfig::single_disk(
                DiskSpec::era_2001(Rpm::new(10_000.0)),
            ))
            .unwrap();
            for r in build_requests(&raw) {
                sys.submit(r).unwrap();
            }
            sys
        };

        let mut oneshot = make();
        let mut all = oneshot.drain();

        let mut stepped = make();
        let mut collected = Vec::new();
        let mut t = 0.0;
        while stepped.next_event_time().is_some() {
            t += 500.0; // 0.5 s slabs
            collected.extend(stepped.advance_to(Seconds::from_millis(t)));
            if t > 1e7 {
                break;
            }
        }
        collected.extend(stepped.drain());

        let key = |c: &disksim::Completion| (c.request.id, c.finish.get().to_bits());
        all.sort_by_key(key);
        collected.sort_by_key(key);
        prop_assert_eq!(all.len(), collected.len());
        for (a, b) in all.iter().zip(&collected) {
            prop_assert_eq!(a.request.id, b.request.id);
            prop_assert!((a.finish.get() - b.finish.get()).abs() < 1e-9);
        }
    }

    #[test]
    fn utilization_never_exceeds_elapsed_time(raw in request_stream(10_000_000, 80)) {
        let mut sys = StorageSystem::new(SystemConfig::single_disk(
            DiskSpec::era_2001(Rpm::new(10_000.0)),
        ))
        .unwrap();
        for r in build_requests(&raw) {
            sys.submit(r).unwrap();
        }
        let _ = sys.drain();
        let clock = sys.clock().get();
        for d in sys.disks() {
            prop_assert!(d.busy_time().get() <= clock + 1e-9);
            prop_assert!(d.seek_time() <= d.busy_time());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // The calendar queue is a drop-in replacement for the
    // `BinaryHeap<Reverse<_>>` it displaced: for any interleaving of
    // pushes and pops — including exact ties, bucket-boundary
    // multiples, far-future overflow keys, negative times, both zeros,
    // and the non-finite values `f64::total_cmp` must order — both
    // structures pop the identical sequence of keys and payloads.
    // Bit-level comparison, because a derived `PartialEq` would call
    // NaN unequal to itself.
    #[test]
    fn calendar_queue_pops_match_binary_heap(
        ops in prop::collection::vec((0u8..4, event_time()), 1..300),
    ) {
        let mut cal: CalendarQueue<u32> = CalendarQueue::new();
        let mut heap: BinaryHeap<Reverse<(TimeKey, u32)>> = BinaryHeap::new();
        let mut seq = 0u64;
        for &(op, t) in &ops {
            if op == 0 {
                let a = cal.pop();
                let b = heap.pop().map(|Reverse(x)| x);
                match (a, b) {
                    (None, None) => {}
                    (Some((ka, va)), Some((kb, vb))) => {
                        prop_assert_eq!(ka.time().to_bits(), kb.time().to_bits());
                        prop_assert_eq!(ka.seq(), kb.seq());
                        prop_assert_eq!(va, vb);
                    }
                    (a, b) => prop_assert!(false, "emptiness diverged: {a:?} vs {b:?}"),
                }
            } else {
                let key = TimeKey::new(t, seq);
                cal.push(key, seq as u32);
                heap.push(Reverse((key, seq as u32)));
                seq += 1;
            }
            prop_assert_eq!(cal.len(), heap.len());
        }
        while let Some((ka, va)) = cal.pop() {
            let Reverse((kb, vb)) = heap.pop().expect("lengths agreed");
            prop_assert_eq!(ka.time().to_bits(), kb.time().to_bits());
            prop_assert_eq!(ka.seq(), kb.seq());
            prop_assert_eq!(va, vb);
        }
        prop_assert!(heap.pop().is_none());
    }

    // The fleet's epoch boundary replaces one global stable time-sort
    // with a k-way merge of pre-sorted per-enclosure runs. The two must
    // agree byte-for-byte at any thread count — including exact ties
    // (same `t` in different runs must keep earlier-run-first order)
    // and empty runs.
    #[test]
    fn kway_merge_equals_global_stable_sort(
        raw in prop::collection::vec(prop::collection::vec(0u8..6, 0..40), 0..9),
        threads in 1usize..9,
    ) {
        // Times on a coarse grid so exact cross-run ties are common;
        // payloads record (run, slot) to make tie order observable.
        let runs: Vec<Vec<(f64, usize, usize)>> = raw
            .iter()
            .enumerate()
            .map(|(run, times)| {
                let mut ts = times.clone();
                ts.sort_unstable();
                ts.iter()
                    .enumerate()
                    .map(|(slot, &t)| (f64::from(t) * 0.125, run, slot))
                    .collect()
            })
            .collect();
        let mut expected: Vec<(f64, usize, usize)> = runs.concat();
        expected.sort_by(|a, b| a.0.total_cmp(&b.0)); // the old global stable sort
        let got = disksim::par::parallel_merge_by(runs, threads, |a, b| a.0.total_cmp(&b.0));
        prop_assert_eq!(got, expected);
    }

    // Events with byte-identical times leave the queue in submission
    // (sequence) order — the determinism guarantee the simulator's
    // tie-breaking rests on — whatever the time value, NaN included.
    #[test]
    fn exact_ties_pop_in_submission_order(t in event_time(), n in 1u64..64) {
        let mut cal = CalendarQueue::new();
        for i in 0..n {
            cal.push(TimeKey::new(t, i), i);
        }
        for i in 0..n {
            let (key, val) = cal.pop().expect("queue holds n events");
            prop_assert_eq!(key.time().to_bits(), t.to_bits());
            prop_assert_eq!(key.seq(), i);
            prop_assert_eq!(val, i);
        }
        prop_assert!(cal.pop().is_none());
    }
}

/// Times that stress the calendar: dense near-term arrivals, exact
/// bucket-boundary multiples (tie candidates), negatives, far-future
/// overflow keys, and the special values whose ordering only
/// `total_cmp` defines.
fn event_time() -> impl Strategy<Value = f64> {
    prop_oneof![
        0.0f64..30.0,
        0.0f64..30.0,
        (0u32..64).prop_map(|i| f64::from(i) * 0.005),
        -10.0f64..0.0,
        1.0e3f64..1.0e9,
        prop_oneof![
            Just(0.0),
            Just(-0.0),
            Just(f64::NAN),
            Just(f64::INFINITY),
            Just(f64::NEG_INFINITY),
            Just(f64::MAX),
            Just(-1.0e300),
        ],
    ]
}
