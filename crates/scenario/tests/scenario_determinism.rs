//! Cross-shard determinism and end-to-end behavior of the scenario
//! engine: a perturbed run (failure + cooling + traffic) must be
//! byte-identical at any shard count, and the perturbations must
//! actually move the physics.

use diskfleet::{EnclosureArray, Fleet, FleetConfig, RebuildSpec};
use diskscenario::{
    run_scenario, ArrivalSource, CoolingScope, EpochSample, Injection, Scenario, ScenarioEngine,
};
use disksim::DiskSpec;
use diskthermal::DriveThermalSpec;
use units::{Inches, Rpm};
use workloads::{AccessProfile, ArrivalModel, SizeModel, TraceGenerator};

const ENCLOSURES: usize = 8;
const EPOCHS: u64 = 16;

fn fleet(threads: usize) -> Fleet {
    let mut config = FleetConfig::serial(
        ENCLOSURES,
        DiskSpec::era(2002, 1, Rpm::new(15_020.0)),
        DriveThermalSpec::new(Inches::new(2.6), 1),
        12.0,
    )
    .unwrap();
    config.array = Some(EnclosureArray {
        disks: 3,
        stripe_sectors: 65_536,
    });
    config.threads = threads;
    Fleet::new(config).unwrap()
}

fn source() -> ArrivalSource {
    let profile = AccessProfile {
        read_fraction: 0.7,
        sequential_fraction: 0.2,
        size: SizeModel::Fixed(16),
        hot_regions: 64,
        zipf_theta: 0.9,
    };
    let gen = TraceGenerator::new(profile, ArrivalModel::Poisson { rate: 400.0 }, 1, 1 << 22)
        .unwrap();
    ArrivalSource::Synthetic(gen.stream(97))
}

fn storm_scenario() -> Scenario {
    Scenario::new()
        .with(Injection::DriveFailure {
            at_epoch: 3,
            enclosure: 2,
            disk: 1,
            rebuild: RebuildSpec {
                rate_sectors_per_sec: 500_000.0,
                chunk_sectors: 4_096,
            },
        })
        .with(Injection::CoolingEvent {
            at_epoch: 5,
            duration_epochs: 6,
            ramp_epochs: 2,
            delta_c: 6.0,
            scope: CoolingScope::Enclosures { lo: 4, hi: 8 },
        })
        .with(Injection::TrafficShape {
            diurnal_period_epochs: 8,
            diurnal_amplitude: 0.4,
            flash_at_epoch: Some(10),
            flash_epochs: 3,
            flash_factor: 2.5,
        })
}

fn run_at(threads: usize) -> (Vec<EpochSample>, String, String) {
    let mut fleet = fleet(threads);
    let mut src = source();
    let mut engine = ScenarioEngine::new(storm_scenario());
    let mut sink = diskobs::Sink::buffer();
    let mut samples = Vec::new();
    run_scenario(&mut fleet, &mut src, &mut engine, EPOCHS, &mut sink, &mut samples).unwrap();
    let ndjson: String = sink
        .drain()
        .iter()
        .map(|e| e.to_ndjson_line() + "\n")
        .collect();
    let report = serde_json::to_string(&fleet.report()).unwrap();
    (samples, ndjson, report)
}

#[test]
fn perturbed_run_is_byte_identical_at_any_shard_count() {
    let (s1, n1, r1) = run_at(1);
    for threads in [3, 8] {
        let (s, n, r) = run_at(threads);
        assert_eq!(s1, s, "samples diverge at {threads} shards");
        assert_eq!(n1, n, "event stream diverges at {threads} shards");
        assert_eq!(r1, r, "report diverges at {threads} shards");
    }
}

#[test]
fn injections_actually_perturb_the_run() {
    let (samples, ndjson, _) = run_at(4);

    // The rebuild storm starts at epoch 3 and makes progress.
    assert_eq!(samples[2].rebuild_total, 0);
    assert!(samples[3].rebuild_total > 0);
    assert!(
        samples[EPOCHS as usize - 1].rebuild_done > samples[3].rebuild_done,
        "rebuild advances epoch over epoch"
    );

    // The cooling excursion heats the scoped bays and then recovers:
    // peak local ambient during the hold exceeds both before and after.
    let before = samples[4].peak_ambient_c;
    let during = samples[7].peak_ambient_c;
    let after = samples[EPOCHS as usize - 1].peak_ambient_c;
    assert!(during > before + 4.0, "excursion heats the row ({before} -> {during})");
    assert!(during > after, "bias clears after the excursion ({during} -> {after})");

    // Traffic shaping moved the factor off 1 and through the flash.
    assert!((samples[0].traffic_factor - 1.0).abs() < 1e-12);
    assert!(samples[11].traffic_factor > 2.0, "flash crowd in force");

    // The boundary events landed in the stream.
    for needle in [
        "\"DriveFailed\"",
        "\"RebuildProgress\"",
        "\"CoolingExcursion\"",
        "\"TrafficPhase\"",
    ] {
        assert!(ndjson.contains(needle), "missing {needle} in event stream");
    }
}

#[test]
fn failure_injections_surface_fleet_errors() {
    let mut fleet = fleet(1);
    let mut src = source();
    let scenario = Scenario::new().with(Injection::DriveFailure {
        at_epoch: 0,
        enclosure: 99,
        disk: 0,
        rebuild: RebuildSpec::default(),
    });
    let mut engine = ScenarioEngine::new(scenario);
    let mut samples = Vec::new();
    let err = run_scenario(
        &mut fleet,
        &mut src,
        &mut engine,
        2,
        &mut diskobs::Sink::null(),
        &mut samples,
    )
    .unwrap_err();
    assert!(err.to_string().contains("enclosure 99"));
}
