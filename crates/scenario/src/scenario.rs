//! Typed injection schedules and the engine that applies them.
//!
//! Every injection is keyed to a **sync-epoch number**, not a wall
//! time, and the engine runs in the serial stretch before an epoch's
//! parallel phases. Cross-enclosure mutation therefore happens only
//! where the fleet already serializes (routing commit, airflow
//! reduce), which is what keeps perturbed runs byte-identical at any
//! shard count.

use crate::source::ArrivalSource;
use diskfleet::{Fleet, FleetError, RebuildSpec};
use diskobs::Event;
use serde::{Deserialize, Serialize};

/// Which bays a cooling excursion touches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CoolingScope {
    /// Every enclosure in the fleet (a room-level CRAC event).
    All,
    /// A contiguous enclosure range `lo..hi` (`hi` exclusive) — one
    /// rack or one row in the hall layouts, where enclosure indices
    /// are row-major.
    Enclosures {
        /// First affected enclosure.
        lo: usize,
        /// One past the last affected enclosure.
        hi: usize,
    },
}

impl CoolingScope {
    fn bounds(self, fleet_len: usize) -> (usize, usize) {
        match self {
            Self::All => (0, fleet_len),
            Self::Enclosures { lo, hi } => (lo.min(fleet_len), hi.min(fleet_len)),
        }
    }
}

/// One scheduled perturbation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Injection {
    /// Fail one RAID-5 member at an epoch boundary and start the
    /// rebuild storm (sequential reconstruct reads over the degraded
    /// volume at the spec's rate). Fires exactly once.
    DriveFailure {
        /// Epoch boundary at which the disk dies.
        at_epoch: u64,
        /// Enclosure holding the failed disk.
        enclosure: usize,
        /// Member index inside the enclosure's array.
        disk: u32,
        /// Rebuild-rate knobs (`rate_sectors_per_sec <= 0` disables
        /// rebuild and leaves the array degraded).
        rebuild: RebuildSpec,
    },
    /// An inlet-temperature excursion: the affected bays see their
    /// ambient biased by up to `delta_c`, ramped linearly over
    /// `ramp_epochs` (0 = step), held until `at_epoch +
    /// duration_epochs`, then removed. `duration_epochs == 0` never
    /// recovers.
    CoolingEvent {
        /// Epoch boundary at which the excursion starts.
        at_epoch: u64,
        /// Excursion length in epochs (0 = permanent).
        duration_epochs: u64,
        /// Epochs over which the bias ramps to full strength.
        ramp_epochs: u64,
        /// Peak inlet-temperature bias in Celsius (may be negative:
        /// overcooling).
        delta_c: f64,
        /// Which bays are affected.
        scope: CoolingScope,
    },
    /// Multiplicative traffic shaping layered over whatever the
    /// arrival source produces: a diurnal sinusoid plus an optional
    /// flash crowd. Several `TrafficShape` injections compose by
    /// multiplying their factors.
    TrafficShape {
        /// Diurnal period in epochs (0 disables the sinusoid).
        diurnal_period_epochs: u64,
        /// Diurnal swing: the factor oscillates in `1 ± amplitude`.
        diurnal_amplitude: f64,
        /// Epoch at which a flash crowd begins (`None` = no flash).
        flash_at_epoch: Option<u64>,
        /// Flash-crowd length in epochs.
        flash_epochs: u64,
        /// Rate multiplier while the flash crowd is on.
        flash_factor: f64,
    },
}

impl Injection {
    /// The cooling bias this injection contributes at `epoch`
    /// (0 for non-cooling injections and outside the excursion).
    fn cooling_delta_at(&self, epoch: u64) -> f64 {
        let Self::CoolingEvent {
            at_epoch,
            duration_epochs,
            ramp_epochs,
            delta_c,
            ..
        } = *self
        else {
            return 0.0;
        };
        if epoch < at_epoch {
            return 0.0;
        }
        let t = epoch - at_epoch;
        if duration_epochs > 0 && t >= duration_epochs {
            return 0.0;
        }
        if ramp_epochs > 0 && t < ramp_epochs {
            delta_c * (t + 1) as f64 / ramp_epochs as f64
        } else {
            delta_c
        }
    }

    /// The traffic factor this injection contributes at `epoch`
    /// (1 for non-traffic injections).
    fn traffic_factor_at(&self, epoch: u64) -> f64 {
        let Self::TrafficShape {
            diurnal_period_epochs,
            diurnal_amplitude,
            flash_at_epoch,
            flash_epochs,
            flash_factor,
        } = *self
        else {
            return 1.0;
        };
        let mut f = 1.0;
        if diurnal_period_epochs > 0 && diurnal_amplitude != 0.0 {
            let phase =
                2.0 * std::f64::consts::PI * (epoch % diurnal_period_epochs) as f64
                    / diurnal_period_epochs as f64;
            f *= 1.0 + diurnal_amplitude * phase.sin();
        }
        if let Some(at) = flash_at_epoch {
            if epoch >= at && epoch < at + flash_epochs {
                f *= flash_factor;
            }
        }
        f
    }
}

/// An ordered schedule of injections. Plain data: build it, hand it to
/// a [`ScenarioEngine`], serialize it into experiment configs.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Scenario {
    /// The schedule. Order only matters for same-epoch drive failures
    /// (applied in schedule order).
    pub injections: Vec<Injection>,
}

impl Scenario {
    /// An empty schedule (runs are unperturbed).
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an injection, builder style.
    #[must_use]
    pub fn with(mut self, injection: Injection) -> Self {
        self.injections.push(injection);
        self
    }
}

/// Applies a [`Scenario`] to a running fleet, one epoch boundary at a
/// time. The engine is deterministic — cooling bias and traffic factor
/// are pure functions of the epoch number, and one-shot failures carry
/// fired flags — and its entire dynamic state serializes, so a twin
/// checkpoint taken mid-scenario restores with the pending schedule
/// intact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioEngine {
    scenario: Scenario,
    /// One flag per injection; only `DriveFailure` entries use theirs.
    fired: Vec<bool>,
    /// The traffic multiplier currently applied to the source.
    traffic_factor: f64,
    /// Whether a bias vector is currently installed on the fleet.
    cooling_active: bool,
}

impl ScenarioEngine {
    /// Wraps a schedule in a fresh engine (nothing fired yet).
    pub fn new(scenario: Scenario) -> Self {
        let fired = vec![false; scenario.injections.len()];
        Self {
            scenario,
            fired,
            traffic_factor: 1.0,
            cooling_active: false,
        }
    }

    /// The schedule this engine is applying.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// Appends one more injection to a (possibly mid-flight) schedule,
    /// preserving the fired flags of everything already scheduled.
    pub fn push(&mut self, injection: Injection) {
        self.scenario.injections.push(injection);
        self.fired.push(false);
    }

    /// The traffic multiplier currently in force.
    pub fn traffic_factor(&self) -> f64 {
        self.traffic_factor
    }

    /// Applies everything due at the fleet's **next** epoch (i.e. call
    /// immediately before each `step_epoch`). Emits `DriveFailed`,
    /// `CoolingExcursion`, and `TrafficPhase` boundary events through
    /// the fleet's sink.
    ///
    /// # Errors
    ///
    /// Propagates [`FleetError`] from a failure injection naming a
    /// nonexistent enclosure/disk or double-failing an array.
    pub fn apply_epoch(
        &mut self,
        fleet: &mut Fleet,
        source: &mut ArrivalSource,
    ) -> Result<(), FleetError> {
        let epoch = fleet.epochs();

        // One-shot drive failures, in schedule order.
        for (k, inj) in self.scenario.injections.iter().enumerate() {
            let Injection::DriveFailure {
                at_epoch,
                enclosure,
                disk,
                rebuild,
            } = *inj
            else {
                continue;
            };
            if self.fired[k] || epoch < at_epoch {
                continue;
            }
            self.fired[k] = true;
            fleet.fail_drive(enclosure, disk, rebuild)?;
        }

        // Cooling bias: a pure function of the epoch number, summed
        // over overlapping excursions. Transition events fire on the
        // first and one-past-last epochs only.
        let has_cooling = self
            .scenario
            .injections
            .iter()
            .any(|i| matches!(i, Injection::CoolingEvent { .. }));
        if has_cooling {
            let n = fleet.len();
            let mut bias = vec![0.0; n];
            let mut any = false;
            for inj in &self.scenario.injections {
                let Injection::CoolingEvent {
                    at_epoch,
                    duration_epochs,
                    delta_c,
                    scope,
                    ..
                } = *inj
                else {
                    continue;
                };
                let (lo, hi) = scope.bounds(n);
                let d = inj.cooling_delta_at(epoch);
                if d != 0.0 {
                    any = true;
                    for b in &mut bias[lo..hi] {
                        *b += d;
                    }
                }
                if epoch == at_epoch {
                    fleet.push_boundary_event(Event::CoolingExcursion {
                        lo,
                        hi,
                        delta_c,
                    });
                }
                if duration_epochs > 0 && epoch == at_epoch + duration_epochs {
                    fleet.push_boundary_event(Event::CoolingExcursion {
                        lo,
                        hi,
                        delta_c: 0.0,
                    });
                }
            }
            if any {
                fleet.set_ambient_bias(&bias)?;
                self.cooling_active = true;
            } else if self.cooling_active {
                fleet.set_ambient_bias(&[])?;
                self.cooling_active = false;
            }
        }

        // Traffic shaping: product over all shapes, applied as the
        // ratio against what is already in force.
        let factor: f64 = self
            .scenario
            .injections
            .iter()
            .map(|i| i.traffic_factor_at(epoch))
            .product();
        if factor != self.traffic_factor {
            source.scale_traffic(factor / self.traffic_factor);
            self.traffic_factor = factor;
            fleet.push_boundary_event(Event::TrafficPhase { factor });
        }

        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cooling_delta_ramps_holds_and_recovers() {
        let inj = Injection::CoolingEvent {
            at_epoch: 10,
            duration_epochs: 8,
            ramp_epochs: 4,
            delta_c: 8.0,
            scope: CoolingScope::All,
        };
        assert_eq!(inj.cooling_delta_at(9), 0.0);
        assert_eq!(inj.cooling_delta_at(10), 2.0);
        assert_eq!(inj.cooling_delta_at(13), 8.0);
        assert_eq!(inj.cooling_delta_at(17), 8.0);
        assert_eq!(inj.cooling_delta_at(18), 0.0);
    }

    #[test]
    fn step_excursions_skip_the_ramp_and_permanent_ones_never_recover() {
        let inj = Injection::CoolingEvent {
            at_epoch: 5,
            duration_epochs: 0,
            ramp_epochs: 0,
            delta_c: -3.0,
            scope: CoolingScope::Enclosures { lo: 2, hi: 6 },
        };
        assert_eq!(inj.cooling_delta_at(5), -3.0);
        assert_eq!(inj.cooling_delta_at(1_000_000), -3.0);
    }

    #[test]
    fn traffic_factor_composes_diurnal_and_flash() {
        let inj = Injection::TrafficShape {
            diurnal_period_epochs: 24,
            diurnal_amplitude: 0.5,
            flash_at_epoch: Some(6),
            flash_epochs: 2,
            flash_factor: 3.0,
        };
        assert_eq!(inj.traffic_factor_at(0), 1.0);
        // Epoch 6 is the diurnal peak (sin = 1) and inside the flash.
        assert!((inj.traffic_factor_at(6) - 4.5).abs() < 1e-12);
        assert!((inj.traffic_factor_at(8) - (1.0 + 0.5 * (2.0 * std::f64::consts::PI * 8.0 / 24.0).sin())).abs() < 1e-12);
    }

    #[test]
    fn engine_state_round_trips_through_serde() {
        let scenario = Scenario::new()
            .with(Injection::DriveFailure {
                at_epoch: 3,
                enclosure: 1,
                disk: 0,
                rebuild: RebuildSpec::default(),
            })
            .with(Injection::TrafficShape {
                diurnal_period_epochs: 12,
                diurnal_amplitude: 0.3,
                flash_at_epoch: None,
                flash_epochs: 0,
                flash_factor: 1.0,
            });
        let engine = ScenarioEngine::new(scenario);
        let json = serde_json::to_string(&engine).unwrap();
        let back: ScenarioEngine = serde_json::from_str(&json).unwrap();
        assert_eq!(engine, back);
    }
}
