//! Epoch-stepping scenario driver: the loop the lab experiments (and
//! the parity tests) share — apply the schedule, draw arrivals up to
//! the boundary, step the fleet, sample.

use crate::scenario::ScenarioEngine;
use crate::source::ArrivalSource;
use diskfleet::{Fleet, FleetError, FleetPhaseProfile};
use disksim::Request;

/// One per-epoch observation row, shaped for the experiments' CSVs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochSample {
    /// Sync epochs completed after this step.
    pub epoch: u64,
    /// Simulated time after this step, seconds.
    pub time_s: f64,
    /// Hottest internal air across the fleet, °C.
    pub peak_air_c: f64,
    /// Hottest preheated local ambient across the fleet, °C.
    pub peak_ambient_c: f64,
    /// Drives currently under DTM control action.
    pub engaged: usize,
    /// Cumulative foreground completions (rebuild I/O excluded).
    pub completed: u64,
    /// Rebuild sectors reconstructed so far, summed over active
    /// rebuilds (sticks at the final total once a rebuild finishes).
    pub rebuild_done: u64,
    /// Total sectors the active rebuilds must reconstruct.
    pub rebuild_total: u64,
    /// Traffic multiplier in force during this epoch.
    pub traffic_factor: f64,
}

impl EpochSample {
    /// Header matching [`Self::to_csv_row`].
    pub fn csv_header() -> &'static str {
        "epoch,time_s,peak_air_c,peak_ambient_c,engaged,completed,rebuild_done,rebuild_total,traffic_factor"
    }

    /// One CSV row with fixed-precision floats (deterministic bytes).
    pub fn to_csv_row(&self) -> String {
        format!(
            "{},{:.3},{:.4},{:.4},{},{},{},{},{:.6}",
            self.epoch,
            self.time_s,
            self.peak_air_c,
            self.peak_ambient_c,
            self.engaged,
            self.completed,
            self.rebuild_done,
            self.rebuild_total,
            self.traffic_factor,
        )
    }
}

/// Runs `epochs` sync epochs of `fleet` under `engine`'s schedule, fed
/// by `source`, pushing one [`EpochSample`] per epoch. The arrival draw
/// matches the twin's epoch loop exactly (draw until the first arrival
/// past the boundary, hold it as lookahead), so a fleet and a twin
/// driven from identical sources produce identical event streams.
///
/// # Errors
///
/// Propagates injection failures ([`FleetError`]) from the schedule.
pub fn run_scenario(
    fleet: &mut Fleet,
    source: &mut ArrivalSource,
    engine: &mut ScenarioEngine,
    epochs: u64,
    sink: &mut diskobs::Sink,
    samples: &mut Vec<EpochSample>,
) -> Result<FleetPhaseProfile, FleetError> {
    let mut profile = FleetPhaseProfile::default();
    if sink.is_enabled() {
        fleet.enable_drive_sinks();
    }
    let mut lookahead: Option<Request> = None;
    let mut last_total = 0;
    for _ in 0..epochs {
        engine.apply_epoch(fleet, source)?;
        let epoch_end = fleet.now() + fleet.epoch_len();
        loop {
            let r = match lookahead.take() {
                Some(r) => r,
                None => source.next_request(),
            };
            if r.arrival > epoch_end {
                lookahead = Some(r);
                break;
            }
            fleet.offer(std::iter::once(r));
        }
        fleet.step_epoch(sink, &mut profile);
        let (mut done, mut total) = (0, 0);
        for rb in fleet.rebuilds() {
            done += rb.done();
            total += rb.total();
        }
        // A finished rebuild leaves the list; keep reporting its final
        // figures so the CSV doesn't snap back to zero mid-plot.
        if total == 0 && last_total > 0 {
            done = last_total;
            total = last_total;
        }
        last_total = total;
        samples.push(EpochSample {
            epoch: fleet.epochs(),
            time_s: fleet.now().get(),
            peak_air_c: fleet.peak_air().get(),
            peak_ambient_c: fleet.peak_local_ambient().get(),
            engaged: fleet.engaged_count(),
            completed: fleet.stats().count(),
            rebuild_done: done,
            rebuild_total: total,
            traffic_factor: engine.traffic_factor(),
        });
    }
    Ok(profile)
}
