//! Arrival sources: one interface over synthetic generator streams and
//! recorded-trace replay, so the fleet and the twin consume real traces
//! exactly as they consume synthetic ones.

use disksim::Request;
use serde::{Deserialize, Serialize};
use units::Seconds;
use workloads::{TraceStream, TraceStreamState};

/// An endless replay of a recorded trace (MSR-Cambridge, DiskSim ASCII,
/// or JSON lines — anything `workloads::read_trace` produces).
///
/// The trace is sorted on construction (arrival, then id — the same
/// order `Fleet::run` imposes) and replays lap after lap: when the
/// recording runs out, it starts over with arrivals shifted by one
/// recording period and ids shifted by one recording length, so the
/// stream never ends and never repeats an id. [`Self::scale_traffic`]
/// compresses future inter-arrival gaps without ever moving time
/// backwards, matching the synthetic stream's rate-scaling semantics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplaySource {
    trace: Vec<Request>,
    cursor: usize,
    lap: u64,
    /// One lap's arrival span, seconds (last arrival plus one mean gap).
    period: f64,
    /// Cumulative rate multiplier applied to future gaps.
    rate: f64,
    /// Raw (recorded) arrival at the last rate change.
    anchor_raw: f64,
    /// Emitted arrival at the last rate change.
    anchor_out: f64,
}

impl ReplaySource {
    /// Wraps a recorded trace for replay.
    ///
    /// # Errors
    ///
    /// Rejects an empty trace — there is no period to loop over.
    pub fn new(mut trace: Vec<Request>) -> Result<Self, String> {
        if trace.is_empty() {
            return Err("cannot replay an empty trace".into());
        }
        trace.sort_by(|a, b| {
            a.arrival
                .get()
                .partial_cmp(&b.arrival.get())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.id.cmp(&b.id))
        });
        let last = trace.last().expect("non-empty").arrival.get();
        let mean_gap = (last / trace.len() as f64).max(1e-6);
        Ok(Self {
            trace,
            cursor: 0,
            lap: 0,
            period: last + mean_gap,
            rate: 1.0,
            anchor_raw: 0.0,
            anchor_out: 0.0,
        })
    }

    /// Requests in one recorded lap.
    pub fn len(&self) -> usize {
        self.trace.len()
    }

    /// Never true: construction rejects empty traces.
    pub fn is_empty(&self) -> bool {
        self.trace.is_empty()
    }

    /// One lap's arrival span in seconds.
    pub fn period(&self) -> Seconds {
        Seconds::new(self.period)
    }

    fn next_request(&mut self) -> Request {
        let r = self.trace[self.cursor];
        let raw = r.arrival.get() + self.lap as f64 * self.period;
        let out = self.anchor_out + (raw - self.anchor_raw) / self.rate;
        let id = r.id + self.lap * self.trace.len() as u64;
        self.cursor += 1;
        if self.cursor == self.trace.len() {
            self.cursor = 0;
            self.lap += 1;
        }
        Request::new(id, Seconds::new(out), r.device, r.lba, r.sectors, r.kind)
    }

    fn scale_traffic(&mut self, factor: f64) {
        assert!(
            factor.is_finite() && factor > 0.0,
            "traffic scale factor must be positive and finite, got {factor}"
        );
        // Re-anchor at the current stream position so only future gaps
        // compress; emitted time never regresses.
        let raw_here = if self.cursor == 0 && self.lap == 0 {
            0.0
        } else if self.cursor == 0 {
            self.trace[self.trace.len() - 1].arrival.get() + (self.lap - 1) as f64 * self.period
        } else {
            self.trace[self.cursor - 1].arrival.get() + self.lap as f64 * self.period
        };
        self.anchor_out += (raw_here - self.anchor_raw) / self.rate;
        self.anchor_raw = raw_here;
        self.rate *= factor;
    }
}

/// Where a fleet's (or twin's) arrivals come from: a seeded synthetic
/// generator stream or the replay of a recorded trace. Both are
/// endless, deterministic, rate-scalable, and checkpointable, so every
/// consumer treats them identically.
#[derive(Debug, Clone)]
pub enum ArrivalSource {
    /// A `workloads` generator stream.
    Synthetic(TraceStream),
    /// Recorded-trace replay.
    Replay(ReplaySource),
}

/// Complete dynamic state of an [`ArrivalSource`], captured for
/// checkpointing. Replay states carry the recording itself, so a
/// checkpoint restores without access to the original trace file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ArrivalSourceState {
    /// State of a synthetic generator stream.
    Synthetic(TraceStreamState),
    /// State of a trace replay.
    Replay(ReplaySource),
}

impl ArrivalSource {
    /// Opens a replay source over a recorded trace.
    ///
    /// # Errors
    ///
    /// Rejects an empty trace.
    pub fn replay(trace: Vec<Request>) -> Result<Self, String> {
        Ok(Self::Replay(ReplaySource::new(trace)?))
    }

    /// Draws the next request. Arrivals are nondecreasing.
    pub fn next_request(&mut self) -> Request {
        match self {
            Self::Synthetic(s) => s.next_request(),
            Self::Replay(r) => r.next_request(),
        }
    }

    /// Rescales the long-run arrival rate by `factor`, keeping the
    /// clock (and burst phase, for synthetic streams).
    ///
    /// # Panics
    ///
    /// Panics unless `factor` is positive and finite.
    pub fn scale_traffic(&mut self, factor: f64) {
        match self {
            Self::Synthetic(s) => s.scale_traffic(factor),
            Self::Replay(r) => r.scale_traffic(factor),
        }
    }

    /// Captures the complete source state for checkpointing.
    pub fn capture_state(&self) -> ArrivalSourceState {
        match self {
            Self::Synthetic(s) => ArrivalSourceState::Synthetic(s.capture_state()),
            Self::Replay(r) => ArrivalSourceState::Replay(r.clone()),
        }
    }

    /// Rebuilds a source mid-flight from a captured state.
    ///
    /// # Errors
    ///
    /// Returns a validation message for degenerate states (a corrupted
    /// checkpoint body).
    pub fn restore_state(state: ArrivalSourceState) -> Result<Self, String> {
        Ok(match state {
            ArrivalSourceState::Synthetic(s) => Self::Synthetic(TraceStream::restore_state(s)?),
            ArrivalSourceState::Replay(r) => {
                if r.trace.is_empty() {
                    return Err("cannot replay an empty trace".into());
                }
                if r.cursor >= r.trace.len() {
                    return Err("replay cursor out of range".into());
                }
                if !(r.rate.is_finite() && r.rate > 0.0) {
                    return Err("replay rate must be positive and finite".into());
                }
                Self::Replay(r)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disksim::RequestKind;

    fn record(n: u64) -> Vec<Request> {
        (0..n)
            .map(|i| {
                Request::new(
                    i,
                    Seconds::new(i as f64 * 0.01),
                    0,
                    i * 64,
                    8,
                    if i % 3 == 0 { RequestKind::Write } else { RequestKind::Read },
                )
            })
            .collect()
    }

    #[test]
    fn replay_wraps_with_shifted_arrivals_and_fresh_ids() {
        let mut src = ArrivalSource::replay(record(5)).unwrap();
        let first_lap: Vec<Request> = (0..5).map(|_| src.next_request()).collect();
        let second_lap: Vec<Request> = (0..5).map(|_| src.next_request()).collect();
        for (a, b) in first_lap.iter().zip(&second_lap) {
            assert!(b.arrival > a.arrival, "wrapped arrivals keep increasing");
            assert_eq!(b.id, a.id + 5, "ids never repeat");
            assert_eq!((b.lba, b.sectors, b.kind), (a.lba, a.sectors, a.kind));
        }
    }

    #[test]
    fn scale_traffic_compresses_future_gaps_only() {
        let mut src = ArrivalSource::replay(record(10)).unwrap();
        let a = src.next_request();
        let b = src.next_request();
        src.scale_traffic(2.0);
        let c = src.next_request();
        let d = src.next_request();
        assert!((b.arrival.get() - a.arrival.get() - 0.01).abs() < 1e-12);
        assert!(c.arrival >= b.arrival, "time never regresses");
        assert!(
            (d.arrival.get() - c.arrival.get() - 0.005).abs() < 1e-12,
            "gaps halve at 2x rate"
        );
    }

    #[test]
    fn state_round_trip_resumes_identically() {
        let mut src = ArrivalSource::replay(record(7)).unwrap();
        for _ in 0..10 {
            src.next_request();
        }
        src.scale_traffic(1.5);
        let state = src.capture_state();
        let json = serde_json::to_string(&state).unwrap();
        let back: ArrivalSourceState = serde_json::from_str(&json).unwrap();
        let mut restored = ArrivalSource::restore_state(back).unwrap();
        for _ in 0..20 {
            assert_eq!(src.next_request(), restored.next_request());
        }
    }

    #[test]
    fn empty_traces_are_rejected() {
        assert!(ArrivalSource::replay(Vec::new()).is_err());
    }
}
