//! Deterministic fault-injection and operational-scenario engine
//! (`diskscenario`).
//!
//! The paper evaluates DTM against steady workloads; the events that
//! actually stress a thermal envelope are operational: a RAID-5 member
//! dies and the rebuild storm saturates its neighbours, a CRAC unit
//! trips and one rack's inlet climbs eight degrees, a flash crowd lands
//! on top of the diurnal peak. This crate schedules those perturbations
//! against a running [`diskfleet::Fleet`] (or a `disktwin` twin) at
//! exact simulated times:
//!
//! - [`Scenario`] / [`Injection`] — a typed, serializable schedule of
//!   drive failures (with rebuild-rate knobs), cooling excursions
//!   (step or ramped, per rack/row scope), and multiplicative traffic
//!   shaping (diurnal sinusoid + flash crowds);
//! - [`ScenarioEngine`] — applies the schedule at **epoch boundaries**,
//!   in the fleet's serial stretch, so perturbed runs stay
//!   byte-identical at any shard count; its whole dynamic state
//!   serializes for twin checkpoints;
//! - [`ArrivalSource`] — one interface over synthetic generator
//!   streams and recorded-trace replay ([`ReplaySource`], fed by the
//!   MSR-Cambridge / DiskSim-ASCII / JSON readers in `workloads`), so
//!   the fleet and the twin consume real traces identically;
//! - [`run_scenario`] — the shared epoch-stepping loop producing
//!   per-epoch [`EpochSample`] rows for the lab experiments.
//!
//! # Examples
//!
//! ```
//! use diskfleet::{EnclosureArray, Fleet, FleetConfig, RebuildSpec};
//! use diskscenario::{ArrivalSource, Injection, Scenario, ScenarioEngine, run_scenario};
//! use disksim::DiskSpec;
//! use diskthermal::DriveThermalSpec;
//! use units::{Inches, Rpm};
//! use workloads::{AccessProfile, ArrivalModel, SizeModel, TraceGenerator};
//!
//! let mut config = FleetConfig::serial(
//!     4,
//!     DiskSpec::era(2002, 1, Rpm::new(15_020.0)),
//!     DriveThermalSpec::new(Inches::new(2.6), 1),
//!     12.0,
//! )?;
//! config.array = Some(EnclosureArray { disks: 4, stripe_sectors: 65_536 });
//! let mut fleet = Fleet::new(config)?;
//!
//! let profile = AccessProfile {
//!     read_fraction: 0.7,
//!     sequential_fraction: 0.2,
//!     size: SizeModel::Fixed(16),
//!     hot_regions: 64,
//!     zipf_theta: 0.9,
//! };
//! let gen = TraceGenerator::new(profile, ArrivalModel::Poisson { rate: 200.0 }, 1, 1 << 20)
//!     .map_err(diskfleet::FleetError::Config)?;
//! let mut source = ArrivalSource::Synthetic(gen.stream(7));
//!
//! let scenario = Scenario::new().with(Injection::DriveFailure {
//!     at_epoch: 2,
//!     enclosure: 1,
//!     disk: 0,
//!     rebuild: RebuildSpec::default(),
//! });
//! let mut engine = ScenarioEngine::new(scenario);
//! let mut samples = Vec::new();
//! run_scenario(&mut fleet, &mut source, &mut engine, 4, &mut diskobs::Sink::null(), &mut samples)?;
//! assert_eq!(samples.len(), 4);
//! assert!(samples[3].rebuild_total > 0, "the storm is under way");
//! # Ok::<(), diskfleet::FleetError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod driver;
mod scenario;
mod source;

pub use driver::{run_scenario, EpochSample};
pub use scenario::{CoolingScope, Injection, Scenario, ScenarioEngine};
pub use source::{ArrivalSource, ArrivalSourceState, ReplaySource};
