//! The fleet-level DTM coordinator.
//!
//! `dtm::DtmController` runs one drive's policy in the same loop that
//! serves its requests; at rack scale the decisions move to a
//! coordinator that observes every enclosure at sync-epoch boundaries
//! and applies per-drive actuations — the §5.2 speed ramp (run a
//! multi-speed disk fast while slack lasts, drop it near the envelope)
//! or the §5.3 admission throttle — under one shared envelope.
//!
//! The coordinator never touches the enclosures directly: it announces
//! spindle-speed changes through a caller-supplied actuator closure and
//! publishes gating through [`Coordinator::gated`], so the fleet decides
//! where drives live in memory (important for the sharded event loop).

use serde::{Deserialize, Serialize};
use units::{Celsius, Rpm, TempDelta};

/// The per-drive actuation the coordinator applies fleet-wide.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FleetDtmPolicy {
    /// No control: the baseline that may violate the envelope.
    None,
    /// DRPM-style speed scaling (§5.2): each drive runs at `high` until
    /// its air crosses `envelope − guard`, then serves on at `low` until
    /// it cools `resume_margin` below the trip point.
    SpeedScale {
        /// Full-performance speed.
        high: Rpm,
        /// Reduced speed near the envelope.
        low: Rpm,
        /// Safety margin below the envelope at which to downshift.
        guard: TempDelta,
        /// Hysteresis below the trip point before upshifting.
        resume_margin: TempDelta,
    },
    /// Admission gating (§5.3): a drive crossing `envelope − guard`
    /// stops admitting new requests (in-flight work completes) until it
    /// cools `resume_margin` below the trip point. The router steers
    /// around gated drives.
    Throttle {
        /// Safety margin below the envelope at which to gate.
        guard: TempDelta,
        /// Hysteresis below the trip point before reopening.
        resume_margin: TempDelta,
    },
}

/// Per-drive control state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
struct DriveCtl {
    scaled_down: bool,
    gated: bool,
}

/// Complete dynamic state of a [`Coordinator`], captured for
/// checkpointing. Hysteresis position (which drives are currently
/// tripped) is part of the state: restoring without it would let a
/// gated drive resume admission one epoch early.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoordinatorState {
    policy: FleetDtmPolicy,
    envelope: Celsius,
    states: Vec<DriveCtl>,
}

impl CoordinatorState {
    /// Number of drives this state covers (a restore sanity check).
    pub fn drives(&self) -> usize {
        self.states.len()
    }
}

/// Applies a [`FleetDtmPolicy`] to every enclosure at epoch boundaries.
#[derive(Debug, Clone)]
pub struct Coordinator {
    policy: FleetDtmPolicy,
    envelope: Celsius,
    states: Vec<DriveCtl>,
}

impl Coordinator {
    /// A coordinator for `drives` enclosures under one envelope.
    pub fn new(policy: FleetDtmPolicy, envelope: Celsius, drives: usize) -> Self {
        Self {
            policy,
            envelope,
            states: vec![DriveCtl::default(); drives],
        }
    }

    /// Whether drive `i` currently has admission gated.
    pub fn gated(&self, i: usize) -> bool {
        self.states[i].gated
    }

    /// Whether drive `i` is currently running at the reduced speed.
    pub fn scaled_down(&self, i: usize) -> bool {
        self.states[i].scaled_down
    }

    /// Number of drives currently under control action (gated or
    /// scaled down).
    pub fn engaged(&self) -> usize {
        self.states.iter().filter(|s| s.gated || s.scaled_down).count()
    }

    /// The policy this coordinator applies.
    pub fn policy(&self) -> FleetDtmPolicy {
        self.policy
    }

    /// The shared thermal envelope the policy defends.
    pub fn envelope(&self) -> Celsius {
        self.envelope
    }

    /// Captures the coordinator's full control state for checkpointing.
    pub fn capture_state(&self) -> CoordinatorState {
        CoordinatorState {
            policy: self.policy,
            envelope: self.envelope,
            states: self.states.clone(),
        }
    }

    /// Rebuilds a coordinator mid-flight from a captured state.
    pub fn restore_state(state: CoordinatorState) -> Self {
        Self {
            policy: state.policy,
            envelope: state.envelope,
            states: state.states,
        }
    }

    /// Extends the coordinator with `extra` fresh drives (a what-if
    /// fork adding enclosures). New drives start untripped and, under a
    /// speed-scaling policy, are primed at the high speed through the
    /// actuator — exactly as [`Self::prime`] would at startup.
    pub fn grow(&mut self, extra: usize, mut set_rpm: impl FnMut(usize, Rpm)) {
        let first = self.states.len();
        self.states.resize(first + extra, DriveCtl::default());
        if let FleetDtmPolicy::SpeedScale { high, .. } = self.policy {
            for i in first..self.states.len() {
                set_rpm(i, high);
            }
        }
    }

    /// Announces the starting speed of speed-modulating policies
    /// through the actuator.
    pub fn prime(&self, mut set_rpm: impl FnMut(usize, Rpm)) {
        if let FleetDtmPolicy::SpeedScale { high, .. } = self.policy {
            for i in 0..self.states.len() {
                set_rpm(i, high);
            }
        }
    }

    /// One control pass over the fleet: compares each drive's sensed
    /// air temperature against the shared envelope and applies the
    /// per-drive actuation with hysteresis. Speed changes go through
    /// `set_rpm`; gating is published via [`Self::gated`].
    ///
    /// Implemented as [`Self::propose`] + [`Self::commit_one`] per
    /// drive, so this serial pass and the fleet's parallel two-phase
    /// epoch boundary can never disagree.
    ///
    /// # Panics
    ///
    /// Panics if `airs` does not carry one reading per drive.
    pub fn apply(&mut self, airs: &[Celsius], mut set_rpm: impl FnMut(usize, Rpm)) {
        assert_eq!(airs.len(), self.states.len(), "one reading per drive");
        for (i, &air) in airs.iter().enumerate() {
            let proposal = self.propose(i, air);
            if let Some(rpm) = proposal.rpm {
                set_rpm(i, rpm);
            }
            self.commit_one(i, proposal);
        }
    }

    /// Phase 1 of the two-phase epoch commit: drive `i`'s control
    /// transition against its *epoch-start* hysteresis state, without
    /// applying it. Each drive's decision reads only its own state and
    /// air reading, so shards propose every drive in parallel; nothing
    /// changes under them because commits happen strictly afterwards.
    pub(crate) fn propose(&self, i: usize, air: Celsius) -> CtlProposal {
        let state = self.states[i];
        let mut next = state;
        let (mut action, mut rpm) = (None, None);
        match self.policy {
            FleetDtmPolicy::None => {}
            FleetDtmPolicy::SpeedScale {
                high,
                low,
                guard,
                resume_margin,
            } => {
                let trip = self.envelope - guard;
                if !state.scaled_down && air >= trip {
                    next.scaled_down = true;
                    action = Some("downshift");
                    rpm = Some(low);
                } else if state.scaled_down && air <= trip - resume_margin {
                    next.scaled_down = false;
                    action = Some("upshift");
                    rpm = Some(high);
                }
            }
            FleetDtmPolicy::Throttle {
                guard,
                resume_margin,
            } => {
                let trip = self.envelope - guard;
                if !state.gated && air >= trip {
                    next.gated = true;
                    action = Some("gate");
                } else if state.gated && air <= trip - resume_margin {
                    next.gated = false;
                    action = Some("ungate");
                }
            }
        }
        CtlProposal { next, action, rpm }
    }

    /// Phase 2: installs drive `i`'s proposed hysteresis state. The
    /// fleet calls this in enclosure order — a cheap deterministic
    /// reduce over what the shards proposed.
    pub(crate) fn commit_one(&mut self, i: usize, proposal: CtlProposal) {
        self.states[i] = proposal.next;
    }

    /// Phase 2 over the whole fleet: installs one proposal per drive in
    /// enclosure order.
    ///
    /// # Panics
    ///
    /// Panics if `proposals` does not carry one entry per drive.
    pub(crate) fn commit_all(&mut self, proposals: &[CtlProposal]) {
        assert_eq!(proposals.len(), self.states.len(), "one proposal per drive");
        for (i, &p) in proposals.iter().enumerate() {
            self.commit_one(i, p);
        }
    }
}

/// A proposed per-drive control transition: the next hysteresis state,
/// the trace label when a transition fires (`"gate"`, `"ungate"`,
/// `"downshift"`, `"upshift"`), and the speed to actuate for
/// speed-scaling transitions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct CtlProposal {
    next: DriveCtl,
    /// Trace label, `None` when the drive holds steady.
    pub action: Option<&'static str>,
    /// Spindle speed to actuate, `None` unless a speed transition fired.
    pub rpm: Option<Rpm>,
}

impl CtlProposal {
    /// A hold-steady proposal for an untripped drive; the fleet's
    /// proposal scratch is initialized with these before every slot is
    /// overwritten by the parallel propose pass.
    pub(crate) fn noop() -> Self {
        Self {
            next: DriveCtl::default(),
            action: None,
            rpm: None,
        }
    }

    /// Whether the proposed state has admission gated.
    pub(crate) fn gates(&self) -> bool {
        self.next.gated
    }

    /// Whether the proposed state runs at the reduced speed.
    pub(crate) fn scales(&self) -> bool {
        self.next.scaled_down
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speed_scale_downshifts_only_the_hot_drive_and_recovers() {
        let mut rpms = vec![Rpm::new(0.0); 3];
        let mut c = Coordinator::new(
            FleetDtmPolicy::SpeedScale {
                high: Rpm::new(20_000.0),
                low: Rpm::new(12_000.0),
                guard: TempDelta::new(0.5),
                resume_margin: TempDelta::new(0.5),
            },
            Celsius::new(45.0),
            3,
        );
        c.prime(|i, rpm| rpms[i] = rpm);
        assert_eq!(rpms, vec![Rpm::new(20_000.0); 3]);

        let hot = [Celsius::new(40.0), Celsius::new(44.8), Celsius::new(40.0)];
        c.apply(&hot, |i, rpm| rpms[i] = rpm);
        assert_eq!(rpms[0], Rpm::new(20_000.0));
        assert_eq!(rpms[1], Rpm::new(12_000.0));
        assert!(c.scaled_down(1) && c.engaged() == 1);

        // Hysteresis: just below the trip point is not enough to resume.
        let warm = [Celsius::new(40.0), Celsius::new(44.2), Celsius::new(40.0)];
        c.apply(&warm, |i, rpm| rpms[i] = rpm);
        assert_eq!(rpms[1], Rpm::new(12_000.0));

        let cool = [Celsius::new(40.0), Celsius::new(43.5), Celsius::new(40.0)];
        c.apply(&cool, |i, rpm| rpms[i] = rpm);
        assert_eq!(rpms[1], Rpm::new(20_000.0));
        assert_eq!(c.engaged(), 0);
    }

    #[test]
    fn throttle_gates_and_reopens_with_hysteresis() {
        let mut c = Coordinator::new(
            FleetDtmPolicy::Throttle {
                guard: TempDelta::new(0.2),
                resume_margin: TempDelta::new(0.3),
            },
            Celsius::new(45.0),
            2,
        );
        let no_rpm = |_: usize, _: Rpm| panic!("throttling never touches the spindle");
        c.apply(&[Celsius::new(44.9), Celsius::new(40.0)], no_rpm);
        assert!(c.gated(0) && !c.gated(1));
        c.apply(&[Celsius::new(44.6), Celsius::new(40.0)], no_rpm);
        assert!(c.gated(0), "inside the hysteresis band the gate holds");
        c.apply(&[Celsius::new(44.4), Celsius::new(40.0)], no_rpm);
        assert!(!c.gated(0));
    }

    #[test]
    fn none_policy_never_engages() {
        let mut c = Coordinator::new(FleetDtmPolicy::None, Celsius::new(45.0), 2);
        let no_rpm = |_: usize, _: Rpm| panic!("no-control never actuates");
        c.prime(no_rpm);
        c.apply(&[Celsius::new(60.0), Celsius::new(60.0)], no_rpm);
        assert_eq!(c.engaged(), 0);
    }
}
