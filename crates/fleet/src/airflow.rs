//! The rack-scale airflow graph.
//!
//! §4.2.2 models a drive's internal-air temperature against the ambient
//! at its *inlet*; `diskthermal::array` chains that model along one
//! serial airflow to show downstream bays running hotter. This module
//! generalizes the chain to a directed acyclic coupling graph: each
//! drive's local ambient is the rack inlet plus a weighted sum of
//! upstream drives' exhaust heat, `T_i = T_inlet + Σ_j k_ij · P_j`, with
//! `k_ij` in kelvin per watt. The network stays linear — drive heat
//! output does not depend on temperature — so one pass per sync epoch
//! suffices, exactly like [`diskthermal::AirflowPath::bay_states`]'s
//! single-pass argument.

use crate::error::FleetError;
use serde::{Deserialize, Serialize};
use units::{Celsius, TempDelta};

/// A directed acyclic thermal-coupling graph over the fleet's drives.
///
/// `upstream[i]` lists `(source, kelvin_per_watt)` couplings; drive `i`'s
/// local ambient is the rack inlet preheated by every listed source's
/// heat. Sources must have a smaller index than the drive they preheat
/// (air flows forward through the rack), which keeps the graph acyclic
/// by construction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AirflowGraph {
    inlet: Celsius,
    upstream: Vec<Vec<(usize, f64)>>,
}

impl AirflowGraph {
    /// Builds a graph from explicit couplings.
    ///
    /// # Errors
    ///
    /// Rejects an empty graph, couplings that point at out-of-range or
    /// non-upstream (index ≥ self) sources, and non-finite or negative
    /// coefficients.
    pub fn new(inlet: Celsius, upstream: Vec<Vec<(usize, f64)>>) -> Result<Self, FleetError> {
        if upstream.is_empty() {
            return Err(FleetError::Config("airflow graph has no drives".into()));
        }
        for (i, sources) in upstream.iter().enumerate() {
            for &(j, k) in sources {
                if j >= i {
                    return Err(FleetError::Config(format!(
                        "drive {i} coupled to non-upstream source {j}; \
                         air flows forward, sources must precede sinks"
                    )));
                }
                if !k.is_finite() || k < 0.0 {
                    return Err(FleetError::Config(format!(
                        "drive {i} has a bad coupling coefficient {k} K/W from source {j}"
                    )));
                }
            }
        }
        Ok(Self { inlet, upstream })
    }

    /// One serial airflow path: every drive is preheated by *all* drives
    /// before it, each contributing `1 / stream_w_per_k` kelvin per watt
    /// — the rack-scale version of [`diskthermal::AirflowPath`].
    ///
    /// # Errors
    ///
    /// Rejects `drives == 0` and a non-positive stream capacity rate.
    pub fn serial(drives: usize, inlet: Celsius, stream_w_per_k: f64) -> Result<Self, FleetError> {
        if stream_w_per_k <= 0.0 || !stream_w_per_k.is_finite() {
            return Err(FleetError::Config(format!(
                "stream capacity rate must be positive and finite, got {stream_w_per_k}"
            )));
        }
        let k = 1.0 / stream_w_per_k;
        let upstream = (0..drives).map(|i| (0..i).map(|j| (j, k)).collect()).collect();
        Self::new(inlet, upstream)
    }

    /// Independent serial columns of `per_column` drives each: drive `i`
    /// is preheated only by the drives above it in its own column. The
    /// last partial column just ends early.
    ///
    /// # Errors
    ///
    /// Rejects `drives == 0`, `per_column == 0`, and a non-positive
    /// stream capacity rate.
    pub fn columns(
        drives: usize,
        per_column: usize,
        inlet: Celsius,
        stream_w_per_k: f64,
    ) -> Result<Self, FleetError> {
        if per_column == 0 {
            return Err(FleetError::Config("columns need at least one drive each".into()));
        }
        if stream_w_per_k <= 0.0 || !stream_w_per_k.is_finite() {
            return Err(FleetError::Config(format!(
                "stream capacity rate must be positive and finite, got {stream_w_per_k}"
            )));
        }
        let k = 1.0 / stream_w_per_k;
        let upstream = (0..drives)
            .map(|i| {
                let column_start = i - i % per_column;
                (column_start..i).map(|j| (j, k)).collect()
            })
            .collect();
        Self::new(inlet, upstream)
    }

    /// Number of drives in the graph.
    pub fn len(&self) -> usize {
        self.upstream.len()
    }

    /// Moves the rack inlet temperature (the "what if the CRAC setpoint
    /// rose 5 °C?" perturbation). The coupling topology is untouched.
    pub fn set_inlet(&mut self, inlet: Celsius) {
        self.inlet = inlet;
    }

    /// Whether the graph is empty (never true for a validated graph).
    pub fn is_empty(&self) -> bool {
        self.upstream.is_empty()
    }

    /// The rack inlet temperature.
    pub fn inlet(&self) -> Celsius {
        self.inlet
    }

    /// Local ambient each drive sees when the fleet rejects `heats_w`
    /// watts per drive: inlet plus the weighted upstream preheat.
    ///
    /// # Panics
    ///
    /// Panics if `heats_w.len()` does not match the graph.
    pub fn local_ambients(&self, heats_w: &[f64]) -> Vec<Celsius> {
        assert_eq!(heats_w.len(), self.len(), "one heat term per drive");
        self.upstream
            .iter()
            .map(|sources| {
                let preheat: f64 = sources.iter().map(|&(j, k)| heats_w[j] * k).sum();
                self.inlet + TempDelta::new(preheat)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_graph_matches_the_single_path_preheat_formula() {
        let g = AirflowGraph::serial(4, Celsius::new(28.0), 20.0).unwrap();
        let ambients = g.local_ambients(&[10.0, 10.0, 10.0, 10.0]);
        // Bay i preheated by i upstream drives at 10 W each over 20 W/K.
        for (i, a) in ambients.iter().enumerate() {
            let expect = 28.0 + 10.0 * i as f64 / 20.0;
            assert!((a.get() - expect).abs() < 1e-12, "bay {i}: {a} vs {expect}");
        }
    }

    #[test]
    fn columns_isolate_their_preheat() {
        let g = AirflowGraph::columns(4, 2, Celsius::new(25.0), 10.0).unwrap();
        let ambients = g.local_ambients(&[8.0, 8.0, 8.0, 8.0]);
        // Column heads (0 and 2) see pristine inlet air.
        assert_eq!(ambients[0], Celsius::new(25.0));
        assert_eq!(ambients[2], Celsius::new(25.0));
        assert!(ambients[1] > ambients[0]);
        assert_eq!(ambients[1], ambients[3]);
    }

    #[test]
    fn downstream_sources_are_rejected() {
        let e = AirflowGraph::new(Celsius::new(28.0), vec![vec![(1, 0.1)], vec![]]);
        assert!(matches!(e, Err(FleetError::Config(_))));
        let e = AirflowGraph::new(Celsius::new(28.0), vec![vec![], vec![(1, 0.1)]]);
        assert!(matches!(e, Err(FleetError::Config(_))), "self-coupling is a cycle");
    }

    #[test]
    fn bad_coefficients_and_empty_graphs_are_rejected() {
        assert!(AirflowGraph::new(Celsius::new(28.0), vec![]).is_err());
        assert!(AirflowGraph::new(Celsius::new(28.0), vec![vec![], vec![(0, -0.1)]]).is_err());
        assert!(
            AirflowGraph::new(Celsius::new(28.0), vec![vec![], vec![(0, f64::NAN)]]).is_err()
        );
        assert!(AirflowGraph::serial(3, Celsius::new(28.0), 0.0).is_err());
    }

    #[test]
    fn heat_redistribution_leaves_downstream_preheat_unchanged() {
        // Moving load between upstream drives cannot change the total
        // preheat a serial path's last bay sees — the physical argument
        // for why thermal-aware routing helps the hottest drive.
        let g = AirflowGraph::serial(4, Celsius::new(28.0), 12.0).unwrap();
        let balanced = g.local_ambients(&[8.0, 8.0, 8.0, 20.0]);
        let skewed = g.local_ambients(&[14.0, 4.0, 6.0, 20.0]);
        assert!((balanced[3].get() - skewed[3].get()).abs() < 1e-12);
    }
}
