//! The rack-scale airflow graph.
//!
//! §4.2.2 models a drive's internal-air temperature against the ambient
//! at its *inlet*; `diskthermal::array` chains that model along one
//! serial airflow to show downstream bays running hotter. This module
//! generalizes the chain to a directed acyclic coupling graph: each
//! drive's local ambient is the rack inlet plus a weighted sum of
//! upstream drives' exhaust heat, `T_i = T_inlet + Σ_j k_ij · P_j`, with
//! `k_ij` in kelvin per watt. The network stays linear — drive heat
//! output does not depend on temperature — so one pass per sync epoch
//! suffices, exactly like [`diskthermal::AirflowPath::bay_states`]'s
//! single-pass argument.
//!
//! Two topologies share that contract. [`AirflowGraph::new`] (and the
//! `serial` / `columns` shorthands) store the coupling lists
//! explicitly — fine at rack scale, O(n²) memory and time for dense
//! graphs. [`AirflowGraph::hall`] instead stores a three-level
//! **rack → row → hall hierarchy**: drives within a rack couple at
//! `k_drive` K/W in bay order, whole racks couple to later racks in
//! their row at `k_rack` against the *rack total* heat, and whole rows
//! couple to later rows at `k_row` against the row total. The implied
//! dense matrix is never materialized; prefix sums over per-rack
//! aggregates evaluate the same linear form in O(n), and the per-rack
//! folds are independent, so the fleet parallelizes them while only the
//! small per-level aggregates couple serially.

use crate::error::FleetError;
use serde::{Deserialize, Serialize};
use units::{Celsius, TempDelta};

/// The per-level shape and coupling coefficients of a
/// [`AirflowGraph::hall`] hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub(crate) struct HallShape {
    /// Drives per rack (the last rack may be partial).
    pub per_rack: usize,
    /// Racks per row (the last row may be partial).
    pub racks_per_row: usize,
    /// K/W from each upstream drive in the same rack.
    pub k_drive: f64,
    /// K/W from each upstream rack's total heat, within the row.
    pub k_rack: f64,
    /// K/W from each upstream row's total heat.
    pub k_row: f64,
}

/// How the coupling matrix is represented.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Topology {
    /// Explicit per-drive `(source, kelvin_per_watt)` lists.
    Flat(Vec<Vec<(usize, f64)>>),
    /// The rack → row → hall hierarchy; the matrix is implied.
    Hierarchy { drives: usize, shape: HallShape },
}

/// A directed acyclic thermal-coupling graph over the fleet's drives.
///
/// In the flat form, `upstream[i]` lists `(source, kelvin_per_watt)`
/// couplings; drive `i`'s local ambient is the rack inlet preheated by
/// every listed source's heat. Sources must have a smaller index than
/// the drive they preheat (air flows forward through the rack), which
/// keeps the graph acyclic by construction. The hierarchical form
/// ([`AirflowGraph::hall`]) keeps the same forward-only discipline
/// level by level: bay order within a rack, rack order within a row,
/// row order within the hall.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AirflowGraph {
    inlet: Celsius,
    topology: Topology,
}

impl AirflowGraph {
    /// Builds a graph from explicit couplings.
    ///
    /// # Errors
    ///
    /// Rejects an empty graph, couplings that point at out-of-range or
    /// non-upstream (index ≥ self) sources, and non-finite or negative
    /// coefficients.
    pub fn new(inlet: Celsius, upstream: Vec<Vec<(usize, f64)>>) -> Result<Self, FleetError> {
        if upstream.is_empty() {
            return Err(FleetError::Config("airflow graph has no drives".into()));
        }
        for (i, sources) in upstream.iter().enumerate() {
            for &(j, k) in sources {
                if j >= i {
                    return Err(FleetError::Config(format!(
                        "drive {i} coupled to non-upstream source {j}; \
                         air flows forward, sources must precede sinks"
                    )));
                }
                if !k.is_finite() || k < 0.0 {
                    return Err(FleetError::Config(format!(
                        "drive {i} has a bad coupling coefficient {k} K/W from source {j}"
                    )));
                }
            }
        }
        Ok(Self {
            inlet,
            topology: Topology::Flat(upstream),
        })
    }

    /// A rack → row → hall hierarchy: racks of `per_rack` drives stand
    /// in rows of `racks_per_row` racks. A drive is preheated at
    /// `k_drive` K/W by each drive above it in its own rack, at
    /// `k_rack` K/W by each earlier rack's *total* heat within its row,
    /// and at `k_row` K/W by each earlier row's total heat. The last
    /// rack and row may be partial.
    ///
    /// # Errors
    ///
    /// Rejects `drives == 0`, zero `per_rack` / `racks_per_row`, and
    /// non-finite or negative coefficients.
    pub fn hall(
        drives: usize,
        per_rack: usize,
        racks_per_row: usize,
        inlet: Celsius,
        k_drive: f64,
        k_rack: f64,
        k_row: f64,
    ) -> Result<Self, FleetError> {
        if drives == 0 {
            return Err(FleetError::Config("airflow graph has no drives".into()));
        }
        if per_rack == 0 || racks_per_row == 0 {
            return Err(FleetError::Config(
                "hall racks and rows need at least one member each".into(),
            ));
        }
        for (name, k) in [("k_drive", k_drive), ("k_rack", k_rack), ("k_row", k_row)] {
            if !k.is_finite() || k < 0.0 {
                return Err(FleetError::Config(format!(
                    "hall coupling {name} must be finite and non-negative, got {k}"
                )));
            }
        }
        Ok(Self {
            inlet,
            topology: Topology::Hierarchy {
                drives,
                shape: HallShape {
                    per_rack,
                    racks_per_row,
                    k_drive,
                    k_rack,
                    k_row,
                },
            },
        })
    }

    /// One serial airflow path: every drive is preheated by *all* drives
    /// before it, each contributing `1 / stream_w_per_k` kelvin per watt
    /// — the rack-scale version of [`diskthermal::AirflowPath`].
    ///
    /// # Errors
    ///
    /// Rejects `drives == 0` and a non-positive stream capacity rate.
    pub fn serial(drives: usize, inlet: Celsius, stream_w_per_k: f64) -> Result<Self, FleetError> {
        if stream_w_per_k <= 0.0 || !stream_w_per_k.is_finite() {
            return Err(FleetError::Config(format!(
                "stream capacity rate must be positive and finite, got {stream_w_per_k}"
            )));
        }
        let k = 1.0 / stream_w_per_k;
        let upstream = (0..drives).map(|i| (0..i).map(|j| (j, k)).collect()).collect();
        Self::new(inlet, upstream)
    }

    /// Independent serial columns of `per_column` drives each: drive `i`
    /// is preheated only by the drives above it in its own column. The
    /// last partial column just ends early.
    ///
    /// # Errors
    ///
    /// Rejects `drives == 0`, `per_column == 0`, and a non-positive
    /// stream capacity rate.
    pub fn columns(
        drives: usize,
        per_column: usize,
        inlet: Celsius,
        stream_w_per_k: f64,
    ) -> Result<Self, FleetError> {
        if per_column == 0 {
            return Err(FleetError::Config("columns need at least one drive each".into()));
        }
        if stream_w_per_k <= 0.0 || !stream_w_per_k.is_finite() {
            return Err(FleetError::Config(format!(
                "stream capacity rate must be positive and finite, got {stream_w_per_k}"
            )));
        }
        let k = 1.0 / stream_w_per_k;
        let upstream = (0..drives)
            .map(|i| {
                let column_start = i - i % per_column;
                (column_start..i).map(|j| (j, k)).collect()
            })
            .collect();
        Self::new(inlet, upstream)
    }

    /// Number of drives in the graph.
    pub fn len(&self) -> usize {
        match &self.topology {
            Topology::Flat(upstream) => upstream.len(),
            Topology::Hierarchy { drives, .. } => *drives,
        }
    }

    /// Moves the rack inlet temperature (the "what if the CRAC setpoint
    /// rose 5 °C?" perturbation). The coupling topology is untouched.
    pub fn set_inlet(&mut self, inlet: Celsius) {
        self.inlet = inlet;
    }

    /// Whether the graph is empty (never true for a validated graph).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The rack inlet temperature.
    pub fn inlet(&self) -> Celsius {
        self.inlet
    }

    /// Local ambient each drive sees when the fleet rejects `heats_w`
    /// watts per drive: inlet plus the weighted upstream preheat.
    ///
    /// The hierarchical form evaluates in O(n) via the same per-rack
    /// prefix-sum helpers the fleet's split-phase epoch boundary uses,
    /// so both paths produce bit-identical temperatures.
    ///
    /// # Panics
    ///
    /// Panics if `heats_w.len()` does not match the graph.
    pub fn local_ambients(&self, heats_w: &[f64]) -> Vec<Celsius> {
        assert_eq!(heats_w.len(), self.len(), "one heat term per drive");
        match &self.topology {
            Topology::Flat(upstream) => upstream
                .iter()
                .map(|sources| {
                    let preheat: f64 = sources.iter().map(|&(j, k)| heats_w[j] * k).sum();
                    self.inlet + TempDelta::new(preheat)
                })
                .collect(),
            Topology::Hierarchy { shape, .. } => {
                let bases = self.rack_preheats(shape, &rack_heats(shape, heats_w));
                let mut out = Vec::with_capacity(heats_w.len());
                for (rack, chunk) in heats_w.chunks(shape.per_rack).enumerate() {
                    rack_ambients_into(self.inlet, bases[rack], shape.k_drive, chunk, &mut out);
                }
                out
            }
        }
    }

    /// The hierarchy's shape, if this graph is hierarchical. The fleet
    /// uses this to split ambient evaluation into a parallel per-rack
    /// pass plus a tiny serial per-level reduce.
    pub(crate) fn hall_shape(&self) -> Option<HallShape> {
        match &self.topology {
            Topology::Flat(_) => None,
            Topology::Hierarchy { shape, .. } => Some(*shape),
        }
    }

    /// Per-rack preheat above the inlet (kelvin) from the *other*
    /// levels: earlier rows at `k_row`, earlier racks in the same row
    /// at `k_rack`. Intra-rack preheat is the caller's per-rack fold.
    /// O(racks), serial — this is the only cross-rack coupling step.
    pub(crate) fn rack_preheats(&self, shape: &HallShape, rack_heats: &[f64]) -> Vec<f64> {
        let mut out = Vec::with_capacity(rack_heats.len());
        let mut row_prefix = 0.0;
        for row_racks in rack_heats.chunks(shape.racks_per_row) {
            let mut rack_prefix = 0.0;
            for &heat in row_racks {
                out.push(shape.k_row * row_prefix + shape.k_rack * rack_prefix);
                rack_prefix += heat;
            }
            row_prefix += rack_prefix;
        }
        out
    }
}

/// Total heat per rack, folded in bay order (the last rack may be
/// short). Independent across racks, so the fleet folds them in
/// parallel.
pub(crate) fn rack_heats(shape: &HallShape, heats_w: &[f64]) -> Vec<f64> {
    heats_w
        .chunks(shape.per_rack)
        .map(|rack| rack.iter().sum())
        .collect()
}

/// Appends one rack's drive ambients: `base_preheat` kelvin above the
/// inlet from the rack/row levels, plus `k_drive` per upstream drive in
/// this rack, folded in bay order. Pure in its inputs, so racks
/// evaluate independently (and in parallel) without changing a bit.
pub(crate) fn rack_ambients_into(
    inlet: Celsius,
    base_preheat: f64,
    k_drive: f64,
    rack_heats_w: &[f64],
    out: &mut Vec<Celsius>,
) {
    let mut prefix = 0.0;
    for &heat in rack_heats_w {
        out.push(inlet + TempDelta::new(base_preheat + k_drive * prefix));
        prefix += heat;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_graph_matches_the_single_path_preheat_formula() {
        let g = AirflowGraph::serial(4, Celsius::new(28.0), 20.0).unwrap();
        let ambients = g.local_ambients(&[10.0, 10.0, 10.0, 10.0]);
        // Bay i preheated by i upstream drives at 10 W each over 20 W/K.
        for (i, a) in ambients.iter().enumerate() {
            let expect = 28.0 + 10.0 * i as f64 / 20.0;
            assert!((a.get() - expect).abs() < 1e-12, "bay {i}: {a} vs {expect}");
        }
    }

    #[test]
    fn columns_isolate_their_preheat() {
        let g = AirflowGraph::columns(4, 2, Celsius::new(25.0), 10.0).unwrap();
        let ambients = g.local_ambients(&[8.0, 8.0, 8.0, 8.0]);
        // Column heads (0 and 2) see pristine inlet air.
        assert_eq!(ambients[0], Celsius::new(25.0));
        assert_eq!(ambients[2], Celsius::new(25.0));
        assert!(ambients[1] > ambients[0]);
        assert_eq!(ambients[1], ambients[3]);
    }

    #[test]
    fn downstream_sources_are_rejected() {
        let e = AirflowGraph::new(Celsius::new(28.0), vec![vec![(1, 0.1)], vec![]]);
        assert!(matches!(e, Err(FleetError::Config(_))));
        let e = AirflowGraph::new(Celsius::new(28.0), vec![vec![], vec![(1, 0.1)]]);
        assert!(matches!(e, Err(FleetError::Config(_))), "self-coupling is a cycle");
    }

    #[test]
    fn bad_coefficients_and_empty_graphs_are_rejected() {
        assert!(AirflowGraph::new(Celsius::new(28.0), vec![]).is_err());
        assert!(AirflowGraph::new(Celsius::new(28.0), vec![vec![], vec![(0, -0.1)]]).is_err());
        assert!(
            AirflowGraph::new(Celsius::new(28.0), vec![vec![], vec![(0, f64::NAN)]]).is_err()
        );
        assert!(AirflowGraph::serial(3, Celsius::new(28.0), 0.0).is_err());
    }

    #[test]
    fn hall_matches_the_equivalent_flat_graph() {
        // 2 rows of 3 racks of 2 drives. Build the dense matrix the
        // hierarchy implies and check both forms agree bit-for-bit
        // (modulo summation order, hence the 1e-9 tolerance).
        let (per_rack, racks_per_row) = (2usize, 3usize);
        let (kd, kr, kw) = (0.05, 0.02, 0.01);
        let drives = 12;
        let hall = AirflowGraph::hall(
            drives,
            per_rack,
            racks_per_row,
            Celsius::new(28.0),
            kd,
            kr,
            kw,
        )
        .unwrap();
        let upstream: Vec<Vec<(usize, f64)>> = (0..drives)
            .map(|i| {
                let (rack_i, row_i) = (i / per_rack, i / per_rack / racks_per_row);
                (0..i)
                    .map(|j| {
                        let (rack_j, row_j) = (j / per_rack, j / per_rack / racks_per_row);
                        if rack_j == rack_i {
                            (j, kd)
                        } else if row_j == row_i {
                            (j, kr)
                        } else {
                            (j, kw)
                        }
                    })
                    .collect()
            })
            .collect();
        let flat = AirflowGraph::new(Celsius::new(28.0), upstream).unwrap();
        let heats: Vec<f64> = (0..drives).map(|i| 6.0 + i as f64 * 0.5).collect();
        for (i, (h, f)) in hall
            .local_ambients(&heats)
            .iter()
            .zip(flat.local_ambients(&heats))
            .enumerate()
        {
            assert!((h.get() - f.get()).abs() < 1e-9, "drive {i}: {h} vs {f}");
        }
    }

    #[test]
    fn hall_levels_preheat_in_order() {
        // 2 racks per row, 2 drives per rack, 8 drives = 2 rows.
        let g = AirflowGraph::hall(8, 2, 2, Celsius::new(25.0), 0.1, 0.05, 0.01).unwrap();
        let a = g.local_ambients(&[10.0; 8]);
        assert_eq!(a[0], Celsius::new(25.0), "first drive sees pristine inlet");
        // Second drive in rack 0: intra-rack preheat only.
        assert!((a[1].get() - 26.0).abs() < 1e-12);
        // First drive of rack 1 (same row): rack-level preheat of 20 W.
        assert!((a[2].get() - 26.0).abs() < 1e-12);
        // First drive of row 1: row-level preheat of 40 W at 0.01.
        assert!((a[4].get() - 25.4).abs() < 1e-12);
        // Partial tail rack is fine.
        let partial = AirflowGraph::hall(7, 2, 2, Celsius::new(25.0), 0.1, 0.05, 0.01).unwrap();
        assert_eq!(partial.len(), 7);
        assert_eq!(partial.local_ambients(&[10.0; 7]).len(), 7);
    }

    #[test]
    fn hall_rejects_bad_shapes() {
        let inlet = Celsius::new(25.0);
        assert!(AirflowGraph::hall(0, 2, 2, inlet, 0.1, 0.1, 0.1).is_err());
        assert!(AirflowGraph::hall(8, 0, 2, inlet, 0.1, 0.1, 0.1).is_err());
        assert!(AirflowGraph::hall(8, 2, 0, inlet, 0.1, 0.1, 0.1).is_err());
        assert!(AirflowGraph::hall(8, 2, 2, inlet, -0.1, 0.1, 0.1).is_err());
        assert!(AirflowGraph::hall(8, 2, 2, inlet, 0.1, f64::NAN, 0.1).is_err());
    }

    #[test]
    fn heat_redistribution_leaves_downstream_preheat_unchanged() {
        // Moving load between upstream drives cannot change the total
        // preheat a serial path's last bay sees — the physical argument
        // for why thermal-aware routing helps the hottest drive.
        let g = AirflowGraph::serial(4, Celsius::new(28.0), 12.0).unwrap();
        let balanced = g.local_ambients(&[8.0, 8.0, 8.0, 20.0]);
        let skewed = g.local_ambients(&[14.0, 4.0, 6.0, 20.0]);
        assert!((balanced[3].get() - skewed[3].get()).abs() < 1e-12);
    }
}
