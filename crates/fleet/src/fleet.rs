//! The fleet itself: N enclosures, an airflow graph, a router, and a
//! coordinator, advanced by a sharded deterministic event loop.
//!
//! Each enclosure wraps one [`dtm::WindowedDrive`] (a `StorageSystem`
//! coupled to a `TransientSim`). Between *sync epochs* the enclosures
//! are fully independent, so the loop advances them in parallel through
//! `disksim::par::parallel_map` (the same primitive `disklab::engine`
//! re-exports for its experiment scheduler). At every epoch boundary the
//! fleet synchronizes serially: it routes the epoch's arrivals, folds
//! completions in enclosure order, converts each drive's measured duty
//! into rejected heat, pushes the airflow graph's preheated ambients
//! back into the thermal models, and lets the coordinator act. Every
//! cross-enclosure interaction happens in that serial phase from
//! epoch-start snapshots, which is why the run is byte-identical at any
//! shard count.

use crate::airflow::AirflowGraph;
use crate::coordinator::{Coordinator, CoordinatorState, FleetDtmPolicy};
use crate::error::FleetError;
use crate::routing::{DriveSnapshot, Router, RoutingPolicy};
use disksim::par::parallel_for_each;
use disksim::{Completion, DiskSpec, Request, ResponseStats, StorageSystem, SystemConfig};
use dtm::{DriveState, WindowSample, WindowedDrive};
use diskthermal::{
    drive_heat_estimate, DriveThermalSpec, OperatingPoint, ThermalModel, ThermalParams,
    THERMAL_ENVELOPE,
};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use units::{Celsius, Rpm, Seconds};

/// How a fleet is assembled.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Per-enclosure disk specification (every enclosure is one drive).
    pub spec: DiskSpec,
    /// Per-drive thermal geometry; its ambient is the rack inlet before
    /// preheat.
    pub thermal: DriveThermalSpec,
    /// The rack-scale thermal coupling; its length is the fleet size.
    pub airflow: AirflowGraph,
    /// Request-placement policy.
    pub routing: RoutingPolicy,
    /// Fleet-level DTM actuation.
    pub dtm: FleetDtmPolicy,
    /// The shared thermal envelope.
    pub envelope: Celsius,
    /// Control-window length (default 250 ms, matching
    /// `dtm::DtmController`).
    pub window: Seconds,
    /// Control windows between thermal-coupling sync epochs (default 4,
    /// i.e. 1 s epochs).
    pub windows_per_epoch: usize,
    /// Shards for the parallel event loop. Results are byte-identical
    /// at any value; this only trades wall-clock time.
    pub threads: usize,
}

impl FleetConfig {
    /// A serial-airflow fleet of `enclosures` drives with the defaults
    /// the experiments use: round-robin routing, no DTM, the paper's
    /// envelope, 250 ms windows, 1 s epochs, single-shard.
    ///
    /// # Errors
    ///
    /// Rejects `enclosures == 0` or a non-positive stream capacity rate
    /// (via [`AirflowGraph::serial`]).
    pub fn serial(
        enclosures: usize,
        spec: DiskSpec,
        thermal: DriveThermalSpec,
        stream_w_per_k: f64,
    ) -> Result<Self, FleetError> {
        let airflow = AirflowGraph::serial(enclosures, thermal.ambient(), stream_w_per_k)?;
        Ok(Self {
            spec,
            thermal,
            airflow,
            routing: RoutingPolicy::RoundRobin,
            dtm: FleetDtmPolicy::None,
            envelope: THERMAL_ENVELOPE,
            window: Seconds::from_millis(250.0),
            windows_per_epoch: 4,
            threads: 1,
        })
    }
}

/// One drive bay: the windowed drive plus its admission queue,
/// accumulated statistics, and the epoch scratch its shard reuses.
struct Enclosure {
    drive: WindowedDrive,
    pending: VecDeque<Request>,
    capacity: u64,
    routed: u64,
    completed: u64,
    max_air: Celsius,
    max_local_ambient: Celsius,
    air_integral: f64,
    duty_sum: f64,
    windows: u64,
    time_over: Seconds,
    time_gated: Seconds,
    time_scaled: Seconds,
    /// Whether the coordinator gates this bay for the current epoch
    /// (written serially at the epoch boundary, read by the shard).
    epoch_gated: bool,
    /// This epoch's completions; cleared and refilled each epoch so the
    /// shard never allocates in steady state.
    completions: Vec<Completion>,
    /// Per-window sample scratch, reused across epochs.
    samples: Vec<WindowSample>,
    /// Mean actuator duty / utilization over the last epoch.
    epoch_duty: f64,
    epoch_util: f64,
}

/// Complete dynamic state of one [`Enclosure`], captured for
/// checkpointing. Epoch scratch (`epoch_gated`, `completions`,
/// `samples`) is rebuilt empty on restore: every field of it is
/// overwritten before its next read, so the scratch never carries
/// state across an epoch boundary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct EnclosureState {
    drive: DriveState,
    pending: Vec<Request>,
    capacity: u64,
    routed: u64,
    completed: u64,
    max_air: Celsius,
    max_local_ambient: Celsius,
    air_integral: f64,
    duty_sum: f64,
    windows: u64,
    time_over: Seconds,
    time_gated: Seconds,
    time_scaled: Seconds,
    epoch_duty: f64,
    epoch_util: f64,
}

impl Enclosure {
    /// A freshly assembled bay with zeroed statistics.
    fn fresh(drive: WindowedDrive, capacity: u64, ambient: Celsius) -> Self {
        Self {
            max_air: drive.air(),
            drive,
            pending: VecDeque::new(),
            capacity,
            routed: 0,
            completed: 0,
            max_local_ambient: ambient,
            air_integral: 0.0,
            duty_sum: 0.0,
            windows: 0,
            time_over: Seconds::ZERO,
            time_gated: Seconds::ZERO,
            time_scaled: Seconds::ZERO,
            epoch_gated: false,
            completions: Vec::new(),
            samples: Vec::new(),
            epoch_duty: 0.0,
            epoch_util: 0.0,
        }
    }

    /// Captures the bay's complete dynamic state.
    fn capture_state(&self) -> EnclosureState {
        EnclosureState {
            drive: self.drive.capture_state(),
            pending: self.pending.iter().copied().collect(),
            capacity: self.capacity,
            routed: self.routed,
            completed: self.completed,
            max_air: self.max_air,
            max_local_ambient: self.max_local_ambient,
            air_integral: self.air_integral,
            duty_sum: self.duty_sum,
            windows: self.windows,
            time_over: self.time_over,
            time_gated: self.time_gated,
            time_scaled: self.time_scaled,
            epoch_duty: self.epoch_duty,
            epoch_util: self.epoch_util,
        }
    }

    /// Rebuilds a bay mid-flight from a captured state.
    fn restore_state(state: EnclosureState) -> Result<Self, FleetError> {
        Ok(Self {
            drive: WindowedDrive::restore_state(state.drive)?,
            pending: state.pending.into(),
            capacity: state.capacity,
            routed: state.routed,
            completed: state.completed,
            max_air: state.max_air,
            max_local_ambient: state.max_local_ambient,
            air_integral: state.air_integral,
            duty_sum: state.duty_sum,
            windows: state.windows,
            time_over: state.time_over,
            time_gated: state.time_gated,
            time_scaled: state.time_scaled,
            epoch_gated: false,
            completions: Vec::new(),
            samples: Vec::new(),
            epoch_duty: state.epoch_duty,
            epoch_util: state.epoch_util,
        })
    }

    /// Advances one sync epoch through
    /// [`WindowedDrive::serve_epoch`], folding the window samples into
    /// the bay's accumulated statistics. Everything lands in the bay's
    /// own scratch (`completions`, `samples`, `epoch_duty`,
    /// `epoch_util`), so the parallel phase allocates nothing and
    /// returns nothing.
    fn advance_epoch(
        &mut self,
        first_window: u64,
        windows: usize,
        window: Seconds,
        envelope: Celsius,
    ) {
        self.completions.clear();
        let mut samples = std::mem::take(&mut self.samples);
        self.drive
            .serve_epoch(
                &mut self.pending,
                self.epoch_gated,
                first_window,
                windows,
                window,
                &mut self.completions,
                &mut samples,
            )
            .expect("routed requests are remapped into the drive's range");
        let mut duty_sum = 0.0;
        let mut util_sum = 0.0;
        for sample in &samples {
            duty_sum += sample.duty;
            util_sum += sample.util;
            self.duty_sum += sample.duty;
            self.windows += 1;
            let air = sample.air();
            self.max_air = self.max_air.max(air);
            self.air_integral += air.get() * window.get();
            if air > envelope {
                self.time_over += window;
            }
        }
        self.samples = samples;
        self.epoch_duty = duty_sum / windows as f64;
        self.epoch_util = util_sum / windows as f64;
    }
}

/// Per-enclosure slice of a [`FleetReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnclosureReport {
    /// Requests the router placed on this drive.
    pub routed: u64,
    /// Requests this drive completed.
    pub completed: u64,
    /// Hottest internal-air temperature reached.
    pub max_air: Celsius,
    /// Hottest preheated inlet this bay saw.
    pub max_local_ambient: Celsius,
    /// Time-weighted mean internal-air temperature.
    pub mean_air: Celsius,
    /// Mean actuator duty over the run.
    pub mean_duty: f64,
    /// Spindle speed at the end of the run.
    pub final_rpm: Rpm,
    /// Time this drive spent above the envelope.
    pub time_over_envelope: Seconds,
    /// Time admission was gated by the coordinator.
    pub time_gated: Seconds,
    /// Time spent downshifted by the coordinator.
    pub time_scaled: Seconds,
}

/// Outcome of a fleet run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetReport {
    /// Fleet size.
    pub enclosures: usize,
    /// Response-time statistics over every completed request, folded in
    /// enclosure order at each epoch boundary (deterministic).
    pub stats: ResponseStats,
    /// Hottest internal-air temperature any drive reached.
    pub max_air: Celsius,
    /// Hottest preheated inlet any bay saw.
    pub peak_local_ambient: Celsius,
    /// Mean over drives of each drive's time-weighted mean air.
    pub mean_air: Celsius,
    /// Total simulated time.
    pub total_time: Seconds,
    /// Sum over drives of time spent above the envelope.
    pub time_over_envelope: Seconds,
    /// Sync epochs executed.
    pub epochs: u64,
    /// Per-enclosure detail, in airflow order.
    pub per_enclosure: Vec<EnclosureReport>,
}

/// Wall-clock spent in each phase of a fleet run: the parallel
/// per-enclosure window sweeps versus the serial epoch-boundary work
/// (routing, completion folding, airflow coupling, coordination). The
/// serial fraction bounds shard speedup by Amdahl's law, which is why
/// `BENCH_fleet.json` reports it alongside the shard numbers.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FleetPhaseProfile {
    /// Total wall-clock in the parallel window sweeps, milliseconds.
    pub parallel_ms: f64,
    /// Total wall-clock in the serial epoch-boundary phases,
    /// milliseconds.
    pub serial_ms: f64,
    /// Sync epochs executed.
    pub epochs: u64,
}

impl FleetPhaseProfile {
    /// Fraction of the run's wall-clock spent in the serial phases.
    pub fn serial_fraction(&self) -> f64 {
        let total = self.parallel_ms + self.serial_ms;
        if total > 0.0 {
            self.serial_ms / total
        } else {
            0.0
        }
    }
}

/// A thermally-coupled fleet of enclosures.
///
/// [`Fleet::run`] drives a whole trace to completion; the stepwise API
/// ([`Fleet::offer`] / [`Fleet::step_epoch`] / [`Fleet::is_drained`] /
/// [`Fleet::report`]) exposes the same loop one sync epoch at a time so
/// a caller — the digital-twin server — can keep a fleet warm
/// indefinitely, feed it arrivals incrementally, and checkpoint it
/// between epochs with [`Fleet::capture_state`].
pub struct Fleet {
    enclosures: Vec<Enclosure>,
    router: Router,
    coordinator: Coordinator,
    airflow: AirflowGraph,
    envelope: Celsius,
    window: Seconds,
    windows_per_epoch: usize,
    threads: usize,
    /// Requests accepted but not yet routed, in arrival order.
    incoming: VecDeque<Request>,
    /// Response-time statistics folded at every epoch boundary.
    stats: ResponseStats,
    epochs: u64,
    now: Seconds,
    /// Whether the coordinator has announced its starting speeds.
    primed: bool,
    // Per-epoch scratch, reused across the whole run so the epoch loop
    // allocates nothing in steady state.
    batch: Vec<diskobs::TimedEvent>,
    snaps: Vec<DriveSnapshot>,
    heats: Vec<f64>,
    airs: Vec<Celsius>,
}

/// Complete dynamic state of a [`Fleet`], captured between sync epochs
/// for checkpointing. Restoring and advancing is byte-identical to
/// never having checkpointed: every mid-epoch scratch buffer is
/// rebuilt empty because it is overwritten before its next read, and
/// everything that survives an epoch boundary — drive state, queues,
/// hysteresis trips, the router cursor, accumulated statistics — is
/// captured exactly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetState {
    enclosures: Vec<EnclosureState>,
    routing: RoutingPolicy,
    router_cursor: usize,
    coordinator: CoordinatorState,
    airflow: AirflowGraph,
    envelope: Celsius,
    window: Seconds,
    windows_per_epoch: usize,
    threads: usize,
    incoming: Vec<Request>,
    stats: ResponseStats,
    epochs: u64,
    now: Seconds,
    primed: bool,
}

impl FleetState {
    /// The sync epoch this state was captured at.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// Simulated time at capture.
    pub fn now(&self) -> Seconds {
        self.now
    }

    /// Number of enclosures the state carries.
    pub fn enclosures(&self) -> usize {
        self.enclosures.len()
    }
}

impl Fleet {
    /// Assembles the fleet: one single-disk `StorageSystem` per airflow
    /// node, each thermally hot-started at its *preheated* idle steady
    /// state (the rack has been idling, not sitting in pristine inlet
    /// air).
    ///
    /// # Errors
    ///
    /// Rejects a zero-window or zero-epoch configuration and propagates
    /// simulator construction failures.
    pub fn new(config: FleetConfig) -> Result<Self, FleetError> {
        if config.window.get() <= 0.0 {
            return Err(FleetError::Config("control window must be positive".into()));
        }
        if config.windows_per_epoch == 0 {
            return Err(FleetError::Config("an epoch needs at least one window".into()));
        }
        let n = config.airflow.len();

        // Idle preheat decides the starting thermal state of every bay.
        let rpm = config.spec.rpm();
        let idle = OperatingPoint::idle_vcm(rpm);
        let idle_heat = drive_heat_estimate(&config.thermal, idle).get();
        let ambients = config.airflow.local_ambients(&vec![idle_heat; n]);

        let mut enclosures = Vec::with_capacity(n);
        for ambient in ambients {
            let system = StorageSystem::new(SystemConfig::single_disk(config.spec.clone()))?;
            let capacity = system.logical_sectors();
            let model = ThermalModel::with_params(
                config.thermal.with_ambient(ambient),
                ThermalParams::default(),
            );
            let start = model.steady_state(idle);
            let drive = WindowedDrive::new(system, model).with_initial_temps(start);
            enclosures.push(Enclosure::fresh(drive, capacity, ambient));
        }

        Ok(Self {
            enclosures,
            router: Router::new(config.routing),
            coordinator: Coordinator::new(config.dtm, config.envelope, n),
            airflow: config.airflow,
            envelope: config.envelope,
            window: config.window,
            windows_per_epoch: config.windows_per_epoch,
            threads: config.threads.max(1),
            incoming: VecDeque::new(),
            stats: ResponseStats::new(),
            epochs: 0,
            now: Seconds::ZERO,
            primed: false,
            batch: Vec::new(),
            snaps: Vec::with_capacity(n),
            heats: Vec::with_capacity(n),
            airs: Vec::with_capacity(n),
        })
    }

    /// Number of enclosures.
    pub fn len(&self) -> usize {
        self.enclosures.len()
    }

    /// Whether the fleet is empty (never true for a validated config).
    pub fn is_empty(&self) -> bool {
        self.enclosures.is_empty()
    }

    /// Runs a logical trace through the fleet. Requests target the fleet
    /// as a whole; the router picks a drive and the request's LBA is
    /// remapped into that drive's range (`device` and `lba` act as a
    /// placement hint, not an address).
    ///
    /// # Errors
    ///
    /// Currently infallible after construction (remapping keeps every
    /// submission in range); the `Result` reserves room for trace
    /// validation.
    pub fn run(self, trace: Vec<Request>) -> Result<FleetReport, FleetError> {
        let mut sink = diskobs::Sink::null();
        self.run_with_sink(trace, &mut sink)
    }

    /// Runs a logical trace, streaming trace events into `sink`: every
    /// routing decision, each enclosure's request and RPM events (tagged
    /// with its bay index through the sink scope), one `Snapshot` per
    /// enclosure per sync epoch, and the coordinator's actions.
    ///
    /// All timestamps are sim time and every cross-enclosure merge
    /// happens in the serial phases (buffered per-enclosure streams are
    /// drained in enclosure order and stably sorted by time), so the
    /// emitted byte stream is identical at any shard count.
    ///
    /// # Errors
    ///
    /// As [`Self::run`].
    pub fn run_with_sink(
        self,
        trace: Vec<Request>,
        sink: &mut diskobs::Sink,
    ) -> Result<FleetReport, FleetError> {
        let mut profile = FleetPhaseProfile::default();
        self.run_inner(trace, sink, &mut profile)
    }

    /// Like [`Self::run_with_sink`], but also reports where the
    /// wall-clock went: parallel window sweeps versus serial
    /// epoch-boundary synchronization.
    ///
    /// # Errors
    ///
    /// As [`Self::run`].
    pub fn run_profiled(
        self,
        trace: Vec<Request>,
        sink: &mut diskobs::Sink,
    ) -> Result<(FleetReport, FleetPhaseProfile), FleetError> {
        let mut profile = FleetPhaseProfile::default();
        let report = self.run_inner(trace, sink, &mut profile)?;
        Ok((report, profile))
    }

    fn run_inner(
        mut self,
        mut trace: Vec<Request>,
        sink: &mut diskobs::Sink,
        profile: &mut FleetPhaseProfile,
    ) -> Result<FleetReport, FleetError> {
        if sink.is_enabled() {
            for (i, e) in self.enclosures.iter_mut().enumerate() {
                e.drive.set_sink(diskobs::Sink::buffer().with_scope(i));
            }
        }
        // Deterministic arrival order whatever the caller produced.
        trace.sort_by(|a, b| {
            a.arrival
                .get()
                .partial_cmp(&b.arrival.get())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.id.cmp(&b.id))
        });
        self.incoming = trace.into();

        loop {
            self.step_epoch(sink, profile);
            if self.is_drained() {
                break;
            }
            // Safety cap: a fleet gated forever still terminates.
            if self.now.get() > 24.0 * 3600.0 {
                break;
            }
        }

        Ok(self.report())
    }

    /// Queues logical requests for routing at the next epoch boundary.
    ///
    /// Requests are appended as-is: the stepwise caller must offer them
    /// in non-decreasing arrival order (the batch `run` entry points
    /// sort instead).
    pub fn offer(&mut self, requests: impl IntoIterator<Item = Request>) {
        self.incoming.extend(requests);
    }

    /// Whether no work remains anywhere: nothing queued for routing,
    /// nothing pending admission, nothing in flight.
    pub fn is_drained(&self) -> bool {
        self.incoming.is_empty()
            && self
                .enclosures
                .iter()
                .all(|e| e.pending.is_empty() && e.drive.in_flight() == 0)
    }

    /// Advances the fleet through exactly one sync epoch: routes the
    /// epoch's arrivals, sweeps every enclosure's windows in parallel,
    /// folds completions, re-couples the airflow, and lets the
    /// coordinator act. [`Self::run`] is a loop over this method; the
    /// digital twin calls it directly to keep a fleet warm while it
    /// serves queries.
    pub fn step_epoch(&mut self, sink: &mut diskobs::Sink, profile: &mut FleetPhaseProfile) {
        if !self.primed {
            self.coordinator
                .prime(|i, rpm| self.enclosures[i].drive.set_all_rpm(rpm));
            self.primed = true;
        }

        let n = self.enclosures.len();
        let epoch_len = self.window * self.windows_per_epoch as f64;
        // The scratch lives on `self` so repeated calls reuse one set
        // of buffers; it moves into locals for the epoch to keep the
        // borrows disjoint.
        let mut batch = std::mem::take(&mut self.batch);
        let mut snaps = std::mem::take(&mut self.snaps);
        let mut heats = std::mem::take(&mut self.heats);
        let mut airs = std::mem::take(&mut self.airs);

        {
            let epoch_start = std::time::Instant::now();
            let epoch_end = self.now + epoch_len;

            // Events from this epoch (routing decisions stamped at
            // arrival, plus each enclosure's drained stream) collect
            // in `batch` and are merged by time before reaching the
            // sink, so the emitted stream is a single non-decreasing
            // timeline.

            // Serial phase 1 — routing. Placement uses the epoch-start
            // snapshot plus a running count of this epoch's placements,
            // so the decision sequence is independent of sharding.
            snaps.clear();
            snaps.extend(self.enclosures.iter().enumerate().map(|(i, e)| {
                DriveSnapshot {
                    air: e.drive.air(),
                    queue: e.drive.in_flight() + e.pending.len() as u64,
                    gated: self.coordinator.gated(i),
                }
            }));
            while let Some(front) = self.incoming.front() {
                if front.arrival > epoch_end {
                    break;
                }
                let r = *front;
                self.incoming.pop_front();
                let i = self.router.pick(&snaps);
                if sink.is_enabled() {
                    batch.push(diskobs::TimedEvent {
                        t: r.arrival.get(),
                        event: diskobs::Event::RoutingDecision {
                            request: r.id,
                            drive: i,
                        },
                    });
                }
                snaps[i].queue += 1;
                let e = &mut self.enclosures[i];
                e.pending.push_back(remap(r, e.capacity));
                e.routed += 1;
            }

            // Parallel phase — advance every enclosure through the
            // epoch's windows, in place. Enclosures only touch their
            // own state and never move, so any shard count produces
            // the same bytes.
            let first_window = self.epochs * self.windows_per_epoch as u64;
            let (windows_per_epoch, window, envelope) =
                (self.windows_per_epoch, self.window, self.envelope);
            for (i, e) in self.enclosures.iter_mut().enumerate() {
                e.epoch_gated = self.coordinator.gated(i);
            }
            let parallel_start = std::time::Instant::now();
            parallel_for_each(&mut self.enclosures, self.threads, |e| {
                e.advance_epoch(first_window, windows_per_epoch, window, envelope);
            });
            let parallel_elapsed = parallel_start.elapsed();
            profile.parallel_ms += parallel_elapsed.as_secs_f64() * 1e3;

            // Serial phase 2 — fold completions (enclosure order),
            // re-couple the airflow, and let the coordinator act.
            heats.clear();
            airs.clear();
            for e in self.enclosures.iter_mut() {
                for c in &e.completions {
                    self.stats.record(c.response_time());
                }
                e.completed += e.completions.len() as u64;
                if sink.is_enabled() {
                    e.drive.drain_events_into(&mut batch);
                }
                let op = OperatingPoint::new(e.drive.rpm(), e.epoch_duty);
                heats.push(drive_heat_estimate(e.drive.model().spec(), op).get());
                airs.push(e.drive.air());
            }
            if sink.is_enabled() {
                // Merge routing decisions and the per-enclosure streams
                // into one time-ordered stream; the sort is stable, so
                // equal timestamps keep insertion (enclosure) order and
                // the bytes stay shard-independent.
                batch.sort_by(|a, b| a.t.total_cmp(&b.t));
                sink.extend(batch.drain(..));
            }
            for (e, ambient) in self.enclosures.iter_mut().zip(self.airflow.local_ambients(&heats))
            {
                e.drive.set_ambient(ambient);
                e.max_local_ambient = e.max_local_ambient.max(ambient);
            }
            if sink.is_enabled() {
                for (i, e) in self.enclosures.iter().enumerate() {
                    let queue = e.drive.in_flight() + e.pending.len() as u64;
                    let coordinator = &self.coordinator;
                    sink.emit(epoch_end, || diskobs::Event::Snapshot {
                        drive: i,
                        air_c: e.drive.air().get(),
                        ambient_c: e.drive.model().spec().ambient().get(),
                        queue,
                        util: e.epoch_util,
                        duty: e.epoch_duty,
                        rpm: e.drive.rpm().get(),
                        gated: coordinator.gated(i),
                    });
                }
            }
            let ctl_before: Option<Vec<(bool, bool)>> = sink.is_enabled().then(|| {
                (0..n)
                    .map(|i| (self.coordinator.gated(i), self.coordinator.scaled_down(i)))
                    .collect()
            });
            self.coordinator
                .apply(&airs, |i, rpm| self.enclosures[i].drive.set_all_rpm(rpm));
            if let Some(before) = ctl_before {
                for (i, (was_gated, was_scaled)) in before.into_iter().enumerate() {
                    if self.coordinator.gated(i) != was_gated {
                        sink.emit(epoch_end, || diskobs::Event::CoordinatorAction {
                            drive: i,
                            action: if was_gated { "ungate" } else { "gate" },
                        });
                    }
                    if self.coordinator.scaled_down(i) != was_scaled {
                        sink.emit(epoch_end, || diskobs::Event::CoordinatorAction {
                            drive: i,
                            action: if was_scaled { "upshift" } else { "downshift" },
                        });
                    }
                }
                // The apply above lands RPM transitions (stamped at the
                // epoch end) in the enclosure buffers; fold them in now
                // so the stream stays time-ordered.
                for e in self.enclosures.iter_mut() {
                    e.drive.drain_events_into(&mut batch);
                }
                sink.extend(batch.drain(..));
            }
            for (i, e) in self.enclosures.iter_mut().enumerate() {
                if self.coordinator.gated(i) {
                    e.time_gated += epoch_len;
                }
                if self.coordinator.scaled_down(i) {
                    e.time_scaled += epoch_len;
                }
            }

            self.epochs += 1;
            self.now = epoch_end;
            profile.serial_ms += epoch_start
                .elapsed()
                .saturating_sub(parallel_elapsed)
                .as_secs_f64()
                * 1e3;
            profile.epochs = self.epochs;
        }

        self.batch = batch;
        self.snaps = snaps;
        self.heats = heats;
        self.airs = airs;
    }

    /// Assembles a [`FleetReport`] from the fleet's current state
    /// without consuming it, so the stepwise caller can keep advancing
    /// afterwards.
    pub fn report(&self) -> FleetReport {
        let n = self.enclosures.len();
        let now = self.now;
        let per_enclosure: Vec<EnclosureReport> = self
            .enclosures
            .iter()
            .map(|e| EnclosureReport {
                routed: e.routed,
                completed: e.completed,
                max_air: e.max_air,
                max_local_ambient: e.max_local_ambient,
                mean_air: if now.get() > 0.0 {
                    Celsius::new(e.air_integral / now.get())
                } else {
                    e.drive.air()
                },
                mean_duty: if e.windows == 0 {
                    0.0
                } else {
                    e.duty_sum / e.windows as f64
                },
                final_rpm: e.drive.rpm(),
                time_over_envelope: e.time_over,
                time_gated: e.time_gated,
                time_scaled: e.time_scaled,
            })
            .collect();

        let max_air = per_enclosure
            .iter()
            .map(|e| e.max_air)
            .fold(self.airflow.inlet(), Celsius::max);
        let peak_local_ambient = per_enclosure
            .iter()
            .map(|e| e.max_local_ambient)
            .fold(self.airflow.inlet(), Celsius::max);
        let mean_air = Celsius::new(
            per_enclosure.iter().map(|e| e.mean_air.get()).sum::<f64>() / n.max(1) as f64,
        );
        let time_over_envelope = per_enclosure
            .iter()
            .fold(Seconds::ZERO, |acc, e| acc + e.time_over_envelope);

        FleetReport {
            enclosures: n,
            stats: self.stats.clone(),
            max_air,
            peak_local_ambient,
            mean_air,
            total_time: now,
            time_over_envelope,
            epochs: self.epochs,
            per_enclosure,
        }
    }

    /// Response-time statistics accumulated so far.
    pub fn stats(&self) -> &ResponseStats {
        &self.stats
    }

    /// Discards the accumulated response-time statistics. What-if forks
    /// call this on both the baseline and the perturbed copy at the
    /// fork point so the comparison covers only the forked horizon.
    pub fn reset_stats(&mut self) {
        self.stats = ResponseStats::new();
    }

    /// Current simulated time (epoch boundary).
    pub fn now(&self) -> Seconds {
        self.now
    }

    /// Simulated length of one sync epoch.
    pub fn epoch_len(&self) -> Seconds {
        self.window * self.windows_per_epoch as f64
    }

    /// The rack inlet temperature before preheat.
    pub fn inlet(&self) -> Celsius {
        self.airflow.inlet()
    }

    /// Sync epochs executed so far.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// The hottest internal-air temperature across the fleet right now.
    pub fn peak_air(&self) -> Celsius {
        self.enclosures
            .iter()
            .map(|e| e.drive.air())
            .fold(self.airflow.inlet(), Celsius::max)
    }

    /// The hottest preheated local ambient across the fleet right now.
    pub fn peak_local_ambient(&self) -> Celsius {
        self.enclosures
            .iter()
            .map(|e| e.drive.model().spec().ambient())
            .fold(self.airflow.inlet(), Celsius::max)
    }

    /// Number of drives currently under coordinator control action.
    pub fn engaged_count(&self) -> usize {
        self.coordinator.engaged()
    }

    /// Moves the rack inlet temperature (the CRAC-setpoint what-if).
    /// Takes effect at the next epoch's airflow coupling.
    pub fn set_inlet(&mut self, inlet: Celsius) {
        self.airflow.set_inlet(inlet);
    }

    /// Grows the fleet in place: `airflow` replaces the coupling graph
    /// and must contain every existing bay (same indices) plus the new
    /// ones at the tail. New bays are assembled exactly as
    /// [`Self::new`] would — idle-preheated against the new graph —
    /// and the coordinator primes them through its policy.
    ///
    /// # Errors
    ///
    /// Rejects a graph that does not grow the fleet and propagates
    /// simulator construction failures.
    pub fn add_enclosures(
        &mut self,
        spec: &DiskSpec,
        thermal: &DriveThermalSpec,
        airflow: AirflowGraph,
    ) -> Result<(), FleetError> {
        let old = self.enclosures.len();
        let n = airflow.len();
        if n <= old {
            return Err(FleetError::Config(format!(
                "replacement airflow graph must grow the fleet: {n} nodes for {old} existing bays"
            )));
        }
        let rpm = spec.rpm();
        let idle = OperatingPoint::idle_vcm(rpm);
        let idle_heat = drive_heat_estimate(thermal, idle).get();
        let ambients = airflow.local_ambients(&vec![idle_heat; n]);
        for ambient in ambients.into_iter().skip(old) {
            let system = StorageSystem::new(SystemConfig::single_disk(spec.clone()))?;
            let capacity = system.logical_sectors();
            let model =
                ThermalModel::with_params(thermal.with_ambient(ambient), ThermalParams::default());
            let start = model.steady_state(idle);
            let drive = WindowedDrive::new(system, model).with_initial_temps(start);
            self.enclosures.push(Enclosure::fresh(drive, capacity, ambient));
        }
        self.airflow = airflow;
        self.coordinator
            .grow(n - old, |i, rpm| self.enclosures[i].drive.set_all_rpm(rpm));
        Ok(())
    }

    /// Captures the fleet's complete dynamic state between sync epochs.
    pub fn capture_state(&self) -> FleetState {
        FleetState {
            enclosures: self.enclosures.iter().map(Enclosure::capture_state).collect(),
            routing: self.router.policy(),
            router_cursor: self.router.cursor(),
            coordinator: self.coordinator.capture_state(),
            airflow: self.airflow.clone(),
            envelope: self.envelope,
            window: self.window,
            windows_per_epoch: self.windows_per_epoch,
            threads: self.threads,
            incoming: self.incoming.iter().copied().collect(),
            stats: self.stats.clone(),
            epochs: self.epochs,
            now: self.now,
            primed: self.primed,
        }
    }

    /// Rebuilds a fleet mid-flight from a captured state. Advancing the
    /// restored fleet produces byte-identical results to advancing the
    /// original.
    ///
    /// # Errors
    ///
    /// Rejects inconsistent states (mismatched enclosure / airflow /
    /// coordinator sizes, degenerate windows) and propagates simulator
    /// restore failures — the checks that catch a corrupted checkpoint
    /// body whose JSON still parses.
    pub fn restore_state(state: FleetState) -> Result<Self, FleetError> {
        if state.enclosures.is_empty() {
            return Err(FleetError::Config("fleet state has no enclosures".into()));
        }
        let n = state.enclosures.len();
        if state.airflow.len() != n {
            return Err(FleetError::Config(format!(
                "airflow graph covers {} drives but the state carries {n} enclosures",
                state.airflow.len()
            )));
        }
        if state.coordinator.drives() != n {
            return Err(FleetError::Config(format!(
                "coordinator state covers {} drives but the state carries {n} enclosures",
                state.coordinator.drives()
            )));
        }
        if state.window.get() <= 0.0 {
            return Err(FleetError::Config("control window must be positive".into()));
        }
        if state.windows_per_epoch == 0 {
            return Err(FleetError::Config("an epoch needs at least one window".into()));
        }
        let enclosures = state
            .enclosures
            .into_iter()
            .map(Enclosure::restore_state)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            enclosures,
            router: Router::new(state.routing).with_cursor(state.router_cursor),
            coordinator: Coordinator::restore_state(state.coordinator),
            airflow: state.airflow,
            envelope: state.envelope,
            window: state.window,
            windows_per_epoch: state.windows_per_epoch,
            threads: state.threads.max(1),
            incoming: state.incoming.into(),
            stats: state.stats,
            epochs: state.epochs,
            now: state.now,
            primed: state.primed,
            batch: Vec::new(),
            snaps: Vec::with_capacity(n),
            heats: Vec::with_capacity(n),
            airs: Vec::with_capacity(n),
        })
    }
}

/// Remaps a fleet-logical request onto one drive: device 0 and an LBA
/// folded into the drive's addressable range (minus the transfer
/// length), preserving arrival time, size, and kind.
fn remap(r: Request, capacity: u64) -> Request {
    let span = capacity.saturating_sub(r.sectors as u64 + 1).max(1);
    Request::new(r.id, r.arrival, 0, r.lba % span, r.sectors, r.kind)
}

#[cfg(test)]
mod tests {
    use super::*;
    use disksim::RequestKind;
    use units::{Inches, TempDelta};

    fn config(enclosures: usize, rpm: f64, stream: f64) -> FleetConfig {
        FleetConfig::serial(
            enclosures,
            DiskSpec::era(2002, 1, Rpm::new(rpm)),
            DriveThermalSpec::new(Inches::new(2.6), 1),
            stream,
        )
        .unwrap()
    }

    fn trace(n: u64, rate: f64) -> Vec<Request> {
        (0..n)
            .map(|i| {
                Request::new(
                    i,
                    Seconds::new(i as f64 / rate),
                    0,
                    i.wrapping_mul(7_777_777),
                    8,
                    if i % 4 == 0 { RequestKind::Write } else { RequestKind::Read },
                )
            })
            .collect()
    }

    #[test]
    fn every_request_completes_once() {
        let fleet = Fleet::new(config(4, 15_020.0, 12.0)).unwrap();
        let report = fleet.run(trace(1_000, 300.0)).unwrap();
        assert_eq!(report.stats.count(), 1_000);
        assert_eq!(report.per_enclosure.iter().map(|e| e.completed).sum::<u64>(), 1_000);
        assert_eq!(report.per_enclosure.iter().map(|e| e.routed).sum::<u64>(), 1_000);
        assert!(report.total_time.get() > 0.0);
    }

    #[test]
    fn downstream_bays_start_hotter_and_peak_hotter_under_uniform_load() {
        let fleet = Fleet::new(config(6, 15_020.0, 8.0)).unwrap();
        let report = fleet.run(trace(1_800, 300.0)).unwrap();
        let first = &report.per_enclosure[0];
        let last = &report.per_enclosure[5];
        assert!(
            last.max_local_ambient > first.max_local_ambient,
            "serial preheat must build downstream"
        );
        assert!(last.max_air > first.max_air);
        assert_eq!(report.peak_local_ambient, last.max_local_ambient);
    }

    #[test]
    fn shard_count_does_not_change_the_bytes() {
        let run = |threads: usize| {
            let mut cfg = config(6, 15_020.0, 10.0);
            cfg.threads = threads;
            cfg.routing = RoutingPolicy::ThermalAware {
                envelope: THERMAL_ENVELOPE,
            };
            cfg.dtm = FleetDtmPolicy::SpeedScale {
                high: Rpm::new(15_020.0),
                low: Rpm::new(12_000.0),
                guard: TempDelta::new(0.3),
                resume_margin: TempDelta::new(0.3),
            };
            serde_json::to_string(&Fleet::new(cfg).unwrap().run(trace(1_200, 350.0)).unwrap())
                .unwrap()
        };
        let serial = run(1);
        assert_eq!(serial, run(4));
        assert_eq!(serial, run(8));
    }

    #[test]
    fn thermal_aware_routing_runs_cooler_than_round_robin() {
        let run = |routing: RoutingPolicy| {
            let mut cfg = config(6, 15_020.0, 6.0);
            cfg.routing = routing;
            Fleet::new(cfg).unwrap().run(trace(2_400, 400.0)).unwrap()
        };
        let rr = run(RoutingPolicy::RoundRobin);
        let ta = run(RoutingPolicy::ThermalAware {
            envelope: THERMAL_ENVELOPE,
        });
        assert_eq!(rr.stats.count(), ta.stats.count());
        assert!(
            ta.max_air < rr.max_air,
            "slack-weighted placement must cool the hottest bay: {} vs {}",
            ta.max_air,
            rr.max_air
        );
    }

    #[test]
    fn coordinator_throttle_caps_the_fleet() {
        // An over-envelope design speed: uncontrolled the hot bays
        // exceed the envelope, gated they hold near it.
        let run = |dtm: FleetDtmPolicy| {
            let mut cfg = config(4, 24_534.0, 10.0);
            cfg.dtm = dtm;
            Fleet::new(cfg).unwrap().run(trace(1_600, 260.0)).unwrap()
        };
        let base = run(FleetDtmPolicy::None);
        assert!(
            base.max_air > THERMAL_ENVELOPE,
            "uncontrolled hot fleet must violate the envelope, peaked {}",
            base.max_air
        );
        let gated = run(FleetDtmPolicy::Throttle {
            guard: TempDelta::new(0.1),
            resume_margin: TempDelta::new(0.2),
        });
        assert_eq!(gated.stats.count(), 1_600, "gating delays, never drops");
        assert!(gated.max_air < base.max_air);
        assert!(
            gated.per_enclosure.iter().any(|e| e.time_gated.get() > 0.0),
            "the gate must actually engage"
        );
    }

    #[test]
    fn speed_scale_trims_heat_without_gating() {
        let run = |dtm: FleetDtmPolicy| {
            let mut cfg = config(4, 24_534.0, 10.0);
            cfg.dtm = dtm;
            Fleet::new(cfg).unwrap().run(trace(1_600, 260.0)).unwrap()
        };
        let base = run(FleetDtmPolicy::None);
        let scaled = run(FleetDtmPolicy::SpeedScale {
            high: Rpm::new(24_534.0),
            low: Rpm::new(15_020.0),
            guard: TempDelta::new(0.3),
            resume_margin: TempDelta::new(0.3),
        });
        assert_eq!(scaled.stats.count(), 1_600);
        assert!(scaled.max_air < base.max_air);
        assert!(scaled.per_enclosure.iter().any(|e| e.time_scaled.get() > 0.0));
        assert!(scaled.per_enclosure.iter().all(|e| e.time_gated == Seconds::ZERO));
    }

    #[test]
    fn bad_configs_are_rejected() {
        let mut cfg = config(2, 15_020.0, 12.0);
        cfg.window = Seconds::ZERO;
        assert!(matches!(Fleet::new(cfg), Err(FleetError::Config(_))));
        let mut cfg = config(2, 15_020.0, 12.0);
        cfg.windows_per_epoch = 0;
        assert!(matches!(Fleet::new(cfg), Err(FleetError::Config(_))));
        assert!(FleetConfig::serial(
            0,
            DiskSpec::era(2002, 1, Rpm::new(15_020.0)),
            DriveThermalSpec::new(Inches::new(2.6), 1),
            12.0,
        )
        .is_err());
    }

    #[test]
    fn report_round_trips_through_serde() {
        let fleet = Fleet::new(config(2, 15_020.0, 12.0)).unwrap();
        let report = fleet.run(trace(200, 200.0)).unwrap();
        let json = serde_json::to_string(&report).unwrap();
        let back: FleetReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
    }
}
