//! The fleet itself: N enclosures, an airflow graph, a router, and a
//! coordinator, advanced by a sharded deterministic event loop.
//!
//! Each enclosure wraps one [`dtm::WindowedDrive`] (a `StorageSystem`
//! coupled to a `TransientSim`). Between *sync epochs* the enclosures
//! are fully independent, so the loop advances them in parallel. The
//! epoch boundary itself is parallel too: shards *propose* against the
//! epoch-start snapshot (statistics folds, heat estimates, per-rack
//! airflow prefixes, coordinator transitions, pre-sorted per-enclosure
//! event runs) and only two cheap deterministic reduces run serially —
//! the O(log n)-per-request routing commit and the per-level airflow /
//! coordinator commit in enclosure order. The per-enclosure event runs
//! merge through `disksim::par::parallel_merge_by`, which equals the
//! old global stable time-sort byte for byte. Every cross-enclosure
//! interaction reads epoch-start state and commits in enclosure order,
//! which is why the run is byte-identical at any shard count.

use crate::airflow::{rack_heats, AirflowGraph};
use crate::coordinator::{Coordinator, CoordinatorState, CtlProposal, FleetDtmPolicy};
use crate::error::FleetError;
use crate::routing::{Router, RoutingPolicy, RoutingScratch};
use disksim::{Completion, DiskSpec, Request, ResponseStats, StorageSystem, SystemConfig};
use dtm::{DriveState, WindowSample, WindowedDrive};
use diskthermal::{
    drive_heat_estimate, DriveThermalSpec, OperatingPoint, ThermalModel, ThermalParams,
    THERMAL_ENVELOPE,
};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use units::{Celsius, Rpm, Seconds};

/// RAID-5 geometry for every enclosure: instead of one bare drive, each
/// bay holds an `disks`-member array presented as one logical volume.
/// Failure injection ([`Fleet::fail_drive`]) needs this redundancy to
/// have something to rebuild.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnclosureArray {
    /// Member disks per enclosure (min 3 for RAID-5).
    pub disks: u32,
    /// Stripe unit in sectors.
    pub stripe_sectors: u32,
}

/// Knobs for the background rebuild a [`Fleet::fail_drive`] injection
/// starts: a sequential scan over the degraded volume whose reads
/// reconstruct from the survivors — the classic rebuild storm.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RebuildSpec {
    /// Scan rate in logical sectors per second. Non-positive disables
    /// the rebuild: the array stays degraded.
    pub rate_sectors_per_sec: f64,
    /// Sectors per rebuild read.
    pub chunk_sectors: u32,
}

impl Default for RebuildSpec {
    /// ~48 MiB/s scan in 512 KiB reads.
    fn default() -> Self {
        Self { rate_sectors_per_sec: 98_304.0, chunk_sectors: 1_024 }
    }
}

/// Requests the rebuild scan injects carry ids at or above this base so
/// the statistics folds can keep background reconstruction I/O out of
/// the foreground response-time numbers.
pub const REBUILD_ID_BASE: u64 = 1 << 62;

/// One in-flight rebuild: a sequential scan over a degraded enclosure's
/// logical volume, budgeted per epoch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rebuild {
    enclosure: usize,
    disk: u32,
    next_lba: u64,
    total: u64,
    done: u64,
    rate: f64,
    chunk: u32,
    carry: f64,
}

impl Rebuild {
    /// The enclosure being rebuilt.
    pub fn enclosure(&self) -> usize {
        self.enclosure
    }

    /// The failed member under reconstruction.
    pub fn disk(&self) -> u32 {
        self.disk
    }

    /// Sectors scanned so far.
    pub fn done(&self) -> u64 {
        self.done
    }

    /// Sectors in the full scan.
    pub fn total(&self) -> u64 {
        self.total
    }
}

/// How a fleet is assembled.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Per-enclosure disk specification (every enclosure is one drive).
    pub spec: DiskSpec,
    /// When set, every enclosure is a RAID-5 array of `spec` drives
    /// instead of a single disk (enables failure injection).
    pub array: Option<EnclosureArray>,
    /// Per-drive thermal geometry; its ambient is the rack inlet before
    /// preheat.
    pub thermal: DriveThermalSpec,
    /// The rack-scale thermal coupling; its length is the fleet size.
    pub airflow: AirflowGraph,
    /// Request-placement policy.
    pub routing: RoutingPolicy,
    /// Fleet-level DTM actuation.
    pub dtm: FleetDtmPolicy,
    /// The shared thermal envelope.
    pub envelope: Celsius,
    /// Control-window length (default 250 ms, matching
    /// `dtm::DtmController`).
    pub window: Seconds,
    /// Control windows between thermal-coupling sync epochs (default 4,
    /// i.e. 1 s epochs).
    pub windows_per_epoch: usize,
    /// Shards for the parallel event loop. Results are byte-identical
    /// at any value; this only trades wall-clock time.
    pub threads: usize,
}

impl FleetConfig {
    /// A serial-airflow fleet of `enclosures` drives with the defaults
    /// the experiments use: round-robin routing, no DTM, the paper's
    /// envelope, 250 ms windows, 1 s epochs, single-shard.
    ///
    /// # Errors
    ///
    /// Rejects `enclosures == 0` or a non-positive stream capacity rate
    /// (via [`AirflowGraph::serial`]).
    pub fn serial(
        enclosures: usize,
        spec: DiskSpec,
        thermal: DriveThermalSpec,
        stream_w_per_k: f64,
    ) -> Result<Self, FleetError> {
        let airflow = AirflowGraph::serial(enclosures, thermal.ambient(), stream_w_per_k)?;
        Ok(Self {
            spec,
            array: None,
            thermal,
            airflow,
            routing: RoutingPolicy::RoundRobin,
            dtm: FleetDtmPolicy::None,
            envelope: THERMAL_ENVELOPE,
            window: Seconds::from_millis(250.0),
            windows_per_epoch: 4,
            threads: 1,
        })
    }
}

/// One drive bay: the windowed drive plus its admission queue,
/// accumulated statistics, and the epoch scratch its shard reuses.
struct Enclosure {
    drive: WindowedDrive,
    pending: VecDeque<Request>,
    capacity: u64,
    routed: u64,
    completed: u64,
    max_air: Celsius,
    max_local_ambient: Celsius,
    air_integral: f64,
    duty_sum: f64,
    windows: u64,
    time_over: Seconds,
    time_gated: Seconds,
    time_scaled: Seconds,
    /// Whether the coordinator gates this bay for the current epoch
    /// (written serially at the epoch boundary, read by the shard).
    epoch_gated: bool,
    /// This epoch's completions; cleared and refilled each epoch so the
    /// shard never allocates in steady state.
    completions: Vec<Completion>,
    /// Per-window sample scratch, reused across epochs.
    samples: Vec<WindowSample>,
    /// Mean actuator duty / utilization over the last epoch.
    epoch_duty: f64,
    epoch_util: f64,
    /// Response-time statistics over this bay's completions, folded by
    /// the shard so the epoch boundary only merges per-bay summaries.
    stats: ResponseStats,
    /// This epoch's pre-sorted event run (the drained drive stream plus
    /// the bay's boundary events), consumed by the k-way merge.
    run: Vec<diskobs::TimedEvent>,
}

/// Complete dynamic state of one [`Enclosure`], captured for
/// checkpointing. Epoch scratch (`epoch_gated`, `completions`,
/// `samples`, `run`) is rebuilt empty on restore: every field of it is
/// overwritten before its next read, so the scratch never carries
/// state across an epoch boundary. The bay's response-time statistics
/// live here (not fleet-wide) since the shards fold them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct EnclosureState {
    drive: DriveState,
    pending: Vec<Request>,
    capacity: u64,
    routed: u64,
    completed: u64,
    max_air: Celsius,
    max_local_ambient: Celsius,
    air_integral: f64,
    duty_sum: f64,
    windows: u64,
    time_over: Seconds,
    time_gated: Seconds,
    time_scaled: Seconds,
    epoch_duty: f64,
    epoch_util: f64,
    stats: ResponseStats,
}

impl Enclosure {
    /// A freshly assembled bay with zeroed statistics.
    fn fresh(drive: WindowedDrive, capacity: u64, ambient: Celsius) -> Self {
        Self {
            max_air: drive.air(),
            drive,
            pending: VecDeque::new(),
            capacity,
            routed: 0,
            completed: 0,
            max_local_ambient: ambient,
            air_integral: 0.0,
            duty_sum: 0.0,
            windows: 0,
            time_over: Seconds::ZERO,
            time_gated: Seconds::ZERO,
            time_scaled: Seconds::ZERO,
            epoch_gated: false,
            completions: Vec::new(),
            samples: Vec::new(),
            epoch_duty: 0.0,
            epoch_util: 0.0,
            stats: ResponseStats::new(),
            run: Vec::new(),
        }
    }

    /// Captures the bay's complete dynamic state.
    fn capture_state(&self) -> EnclosureState {
        EnclosureState {
            drive: self.drive.capture_state(),
            pending: self.pending.iter().copied().collect(),
            capacity: self.capacity,
            routed: self.routed,
            completed: self.completed,
            max_air: self.max_air,
            max_local_ambient: self.max_local_ambient,
            air_integral: self.air_integral,
            duty_sum: self.duty_sum,
            windows: self.windows,
            time_over: self.time_over,
            time_gated: self.time_gated,
            time_scaled: self.time_scaled,
            epoch_duty: self.epoch_duty,
            epoch_util: self.epoch_util,
            stats: self.stats.clone(),
        }
    }

    /// Rebuilds a bay mid-flight from a captured state.
    fn restore_state(state: EnclosureState) -> Result<Self, FleetError> {
        Ok(Self {
            drive: WindowedDrive::restore_state(state.drive)?,
            pending: state.pending.into(),
            capacity: state.capacity,
            routed: state.routed,
            completed: state.completed,
            max_air: state.max_air,
            max_local_ambient: state.max_local_ambient,
            air_integral: state.air_integral,
            duty_sum: state.duty_sum,
            windows: state.windows,
            time_over: state.time_over,
            time_gated: state.time_gated,
            time_scaled: state.time_scaled,
            epoch_gated: false,
            completions: Vec::new(),
            samples: Vec::new(),
            epoch_duty: state.epoch_duty,
            epoch_util: state.epoch_util,
            stats: state.stats,
            run: Vec::new(),
        })
    }

    /// Advances one sync epoch through
    /// [`WindowedDrive::serve_epoch`], folding the window samples into
    /// the bay's accumulated statistics. Everything lands in the bay's
    /// own scratch (`completions`, `samples`, `epoch_duty`,
    /// `epoch_util`), so the parallel phase allocates nothing and
    /// returns nothing.
    fn advance_epoch(
        &mut self,
        first_window: u64,
        windows: usize,
        window: Seconds,
        envelope: Celsius,
    ) {
        self.completions.clear();
        let mut samples = std::mem::take(&mut self.samples);
        self.drive
            .serve_epoch(
                &mut self.pending,
                self.epoch_gated,
                first_window,
                windows,
                window,
                &mut self.completions,
                &mut samples,
            )
            .expect("routed requests are remapped into the drive's range");
        let mut duty_sum = 0.0;
        let mut util_sum = 0.0;
        for sample in &samples {
            duty_sum += sample.duty;
            util_sum += sample.util;
            self.duty_sum += sample.duty;
            self.windows += 1;
            let air = sample.air();
            self.max_air = self.max_air.max(air);
            self.air_integral += air.get() * window.get();
            if air > envelope {
                self.time_over += window;
            }
        }
        self.samples = samples;
        self.epoch_duty = duty_sum / windows as f64;
        self.epoch_util = util_sum / windows as f64;
    }
}

/// Per-epoch constants threaded through the parallel passes.
#[derive(Clone, Copy)]
struct EpochCtx {
    first_window: u64,
    windows_per_epoch: usize,
    window: Seconds,
    envelope: Celsius,
    epoch_end: f64,
    epoch_len: Seconds,
    sink_enabled: bool,
}

/// Hot per-drive state in structure-of-arrays layout. The serial
/// reduces — the routing commit over `air`/`queue`/`gated`, the
/// airflow roll-up over `heat`, the coordinator commit over
/// `proposals` — each walk one dense array instead of hopping across
/// enclosure structs. The parallel passes refresh the arrays through
/// disjoint contiguous chunk splits, which keeps everything in safe
/// code and byte-identical at any worker count.
#[derive(Default)]
struct FleetHotState {
    /// Internal-air temperature per drive at the epoch boundary.
    air: Vec<Celsius>,
    /// Requests held against each drive (in flight + pending).
    queue: Vec<u64>,
    /// Coordinator gating per drive (mirrors the committed state).
    gated: Vec<bool>,
    /// Rejected heat per drive over the last epoch, watts.
    heat: Vec<f64>,
    /// Coordinator proposals staged by pass B, committed serially.
    proposals: Vec<CtlProposal>,
    /// Per-rack heat totals (hierarchical airflow only).
    rack_heat: Vec<f64>,
    /// Per-rack preheat from the rack/row levels (hierarchical only).
    rack_base: Vec<f64>,
    /// Dense per-drive ambients (flat-topology fallback).
    flat_ambients: Vec<Celsius>,
}

impl FleetHotState {
    /// (Re)builds the arrays from authoritative state. A cheap length
    /// check while the fleet size is stable; after construction,
    /// restore, or growth the arrays rebuild from the enclosures and
    /// coordinator, after which the epoch passes keep them current.
    fn ensure(&mut self, enclosures: &[Enclosure], coordinator: &Coordinator) {
        let n = enclosures.len();
        if self.air.len() == n {
            return;
        }
        self.air.clear();
        self.queue.clear();
        self.gated.clear();
        for (i, e) in enclosures.iter().enumerate() {
            self.air.push(e.drive.air());
            self.queue.push(e.drive.in_flight() + e.pending.len() as u64);
            self.gated.push(coordinator.gated(i));
        }
        self.heat.clear();
        self.heat.resize(n, 0.0);
        self.proposals.clear();
        self.proposals.resize(n, CtlProposal::noop());
    }

    /// Parallel pass A: advances every enclosure through the epoch's
    /// windows and folds the per-bay outputs — response statistics, the
    /// drained (pre-sorted) event run, the heat estimate, the boundary
    /// air reading — without touching any shared state. Chunks are
    /// contiguous and enclosures never move, so any worker count
    /// produces the same bytes.
    fn pass_a(&mut self, enclosures: &mut [Enclosure], threads: usize, ctx: &EpochCtx) {
        let Self { air, gated, heat, .. } = self;
        let one = |e: &mut Enclosure, heat: &mut f64, air: &mut Celsius, gate: bool| {
            e.epoch_gated = gate;
            e.advance_epoch(ctx.first_window, ctx.windows_per_epoch, ctx.window, ctx.envelope);
            for c in &e.completions {
                // Background rebuild reads heat the drives and contend
                // for the queue but stay out of the foreground numbers.
                if c.request.id < REBUILD_ID_BASE {
                    e.stats.record(c.response_time());
                    e.completed += 1;
                }
            }
            if ctx.sink_enabled {
                e.run.clear();
                e.drive.drain_events_into(&mut e.run);
                debug_assert!(diskobs::is_time_sorted(&e.run), "drive streams are time-sorted");
            }
            let op = OperatingPoint::new(e.drive.rpm(), e.epoch_duty);
            *heat = drive_heat_estimate(e.drive.model().spec(), op).get();
            *air = e.drive.air();
        };

        let n = enclosures.len();
        let workers = threads.clamp(1, n.max(1));
        let chunk = n.div_ceil(workers);
        if workers <= 1 || chunk >= n {
            for ((e, h), (a, &g)) in enclosures
                .iter_mut()
                .zip(heat.iter_mut())
                .zip(air.iter_mut().zip(gated.iter()))
            {
                one(e, h, a, g);
            }
            return;
        }
        std::thread::scope(|scope| {
            let one = &one;
            let mut rest = (enclosures, &mut heat[..], &mut air[..], &gated[..]);
            while !rest.0.is_empty() {
                let take = chunk.min(rest.0.len());
                let (e_c, e_r) = rest.0.split_at_mut(take);
                let (h_c, h_r) = rest.1.split_at_mut(take);
                let (a_c, a_r) = rest.2.split_at_mut(take);
                let (g_c, g_r) = rest.3.split_at(take);
                rest = (e_r, h_r, a_r, g_r);
                scope.spawn(move || {
                    for ((e, h), (a, &g)) in
                        e_c.iter_mut().zip(h_c.iter_mut()).zip(a_c.iter_mut().zip(g_c.iter()))
                    {
                        one(e, h, a, g);
                    }
                });
            }
        });
    }

    /// Parallel pass B: pushes the preheated ambients back into the
    /// thermal models (per-rack prefix sums for the hierarchy, the
    /// precomputed dense ambients for flat graphs), emits each bay's
    /// boundary events into its run, and stages the coordinator's
    /// proposal for the serial commit. Hierarchy chunks align to rack
    /// boundaries so every intra-rack prefix stays on one worker and
    /// the arithmetic matches [`AirflowGraph::local_ambients`] bit for
    /// bit.
    fn pass_b(
        &mut self,
        enclosures: &mut [Enclosure],
        coordinator: &Coordinator,
        airflow: &AirflowGraph,
        threads: usize,
        ctx: &EpochCtx,
        bias: &[f64],
    ) {
        let n = enclosures.len();
        let inlet = airflow.inlet();
        let shape = airflow.hall_shape();
        // Cooling-excursion bias: an absent or zero entry is exactly a
        // no-op, so unbiased runs stay byte-identical to the pre-bias
        // code path.
        let biased = move |i: usize, a: Celsius| match bias.get(i) {
            Some(&b) if b != 0.0 => a + units::TempDelta::new(b),
            _ => a,
        };
        let Self {
            air,
            queue,
            gated,
            heat,
            proposals,
            rack_base,
            flat_ambients,
            ..
        } = self;
        let (air, heat) = (&air[..], &heat[..]);
        let (rack_base, flat_ambients) = (&rack_base[..], &flat_ambients[..]);

        // One bay: couple, snapshot, propose, actuate, account.
        let one = |i: usize,
                   e: &mut Enclosure,
                   ambient: Celsius,
                   depth_out: &mut u64,
                   gate_out: &mut bool,
                   proposal_out: &mut CtlProposal| {
            e.drive.set_ambient(ambient);
            e.max_local_ambient = e.max_local_ambient.max(ambient);
            let depth = e.drive.in_flight() + e.pending.len() as u64;
            if ctx.sink_enabled {
                e.run.push(diskobs::TimedEvent {
                    t: ctx.epoch_end,
                    event: diskobs::Event::Snapshot {
                        drive: i,
                        air_c: e.drive.air().get(),
                        ambient_c: e.drive.model().spec().ambient().get(),
                        queue: depth,
                        util: e.epoch_util,
                        duty: e.epoch_duty,
                        rpm: e.drive.rpm().get(),
                        gated: coordinator.gated(i),
                    },
                });
            }
            let p = coordinator.propose(i, air[i]);
            if let Some(rpm) = p.rpm {
                e.drive.set_all_rpm(rpm);
            }
            if ctx.sink_enabled {
                if let Some(action) = p.action {
                    e.run.push(diskobs::TimedEvent {
                        t: ctx.epoch_end,
                        event: diskobs::Event::CoordinatorAction { drive: i, action },
                    });
                }
                e.drive.drain_events_into(&mut e.run);
            }
            if p.gates() {
                e.time_gated += ctx.epoch_len;
            }
            if p.scales() {
                e.time_scaled += ctx.epoch_len;
            }
            *depth_out = depth;
            *gate_out = p.gates();
            *proposal_out = p;
        };

        // One contiguous chunk of bays starting at global index `start`.
        let run_chunk = |start: usize,
                         e_c: &mut [Enclosure],
                         q_c: &mut [u64],
                         g_c: &mut [bool],
                         p_c: &mut [CtlProposal]| {
            match &shape {
                Some(s) => {
                    for (rk, rack) in e_c.chunks_mut(s.per_rack).enumerate() {
                        let rack_start = start + rk * s.per_rack;
                        let base = rack_base[rack_start / s.per_rack];
                        let mut prefix = 0.0;
                        for (off, e) in rack.iter_mut().enumerate() {
                            let i = rack_start + off;
                            let ambient =
                                biased(i, inlet + units::TempDelta::new(base + s.k_drive * prefix));
                            prefix += heat[i];
                            let l = i - start;
                            one(i, e, ambient, &mut q_c[l], &mut g_c[l], &mut p_c[l]);
                        }
                    }
                }
                None => {
                    for (off, e) in e_c.iter_mut().enumerate() {
                        let i = start + off;
                        one(i, e, biased(i, flat_ambients[i]), &mut q_c[off], &mut g_c[off], &mut p_c[off]);
                    }
                }
            }
        };

        let workers = threads.clamp(1, n.max(1));
        // Hierarchy chunks round up to whole racks so each intra-rack
        // prefix is computed by exactly one worker.
        let chunk = match &shape {
            Some(s) => s.per_rack * n.div_ceil(s.per_rack).div_ceil(workers),
            None => n.div_ceil(workers),
        };
        if workers <= 1 || chunk >= n {
            run_chunk(0, enclosures, &mut queue[..], &mut gated[..], &mut proposals[..]);
            return;
        }
        std::thread::scope(|scope| {
            let run_chunk = &run_chunk;
            let mut start = 0usize;
            let mut rest = (enclosures, &mut queue[..], &mut gated[..], &mut proposals[..]);
            while !rest.0.is_empty() {
                let take = chunk.min(rest.0.len());
                let (e_c, e_r) = rest.0.split_at_mut(take);
                let (q_c, q_r) = rest.1.split_at_mut(take);
                let (g_c, g_r) = rest.2.split_at_mut(take);
                let (p_c, p_r) = rest.3.split_at_mut(take);
                rest = (e_r, q_r, g_r, p_r);
                let s = start;
                scope.spawn(move || run_chunk(s, e_c, q_c, g_c, p_c));
                start += take;
            }
        });
    }
}

/// Per-enclosure slice of a [`FleetReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnclosureReport {
    /// Requests the router placed on this drive.
    pub routed: u64,
    /// Requests this drive completed.
    pub completed: u64,
    /// Hottest internal-air temperature reached.
    pub max_air: Celsius,
    /// Hottest preheated inlet this bay saw.
    pub max_local_ambient: Celsius,
    /// Time-weighted mean internal-air temperature.
    pub mean_air: Celsius,
    /// Mean actuator duty over the run.
    pub mean_duty: f64,
    /// Spindle speed at the end of the run.
    pub final_rpm: Rpm,
    /// Time this drive spent above the envelope.
    pub time_over_envelope: Seconds,
    /// Time admission was gated by the coordinator.
    pub time_gated: Seconds,
    /// Time spent downshifted by the coordinator.
    pub time_scaled: Seconds,
}

/// Outcome of a fleet run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetReport {
    /// Fleet size.
    pub enclosures: usize,
    /// Response-time statistics over every completed request: each
    /// bay's shard folds its own completions and the report merges the
    /// per-bay summaries in enclosure order (deterministic).
    pub stats: ResponseStats,
    /// Hottest internal-air temperature any drive reached.
    pub max_air: Celsius,
    /// Hottest preheated inlet any bay saw.
    pub peak_local_ambient: Celsius,
    /// Mean over drives of each drive's time-weighted mean air.
    pub mean_air: Celsius,
    /// Total simulated time.
    pub total_time: Seconds,
    /// Sum over drives of time spent above the envelope.
    pub time_over_envelope: Seconds,
    /// Sync epochs executed.
    pub epochs: u64,
    /// Per-enclosure detail, in airflow order.
    pub per_enclosure: Vec<EnclosureReport>,
}

/// Wall-clock spent in each phase of a fleet run: the parallel
/// per-enclosure window sweeps versus the serial epoch-boundary work
/// (routing, completion folding, airflow coupling, coordination). The
/// serial fraction bounds shard speedup by Amdahl's law, which is why
/// `BENCH_fleet.json` reports it alongside the shard numbers.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FleetPhaseProfile {
    /// Total wall-clock in the parallel window sweeps, milliseconds.
    pub parallel_ms: f64,
    /// Total wall-clock in the serial epoch-boundary phases,
    /// milliseconds.
    pub serial_ms: f64,
    /// Sync epochs executed.
    pub epochs: u64,
}

impl FleetPhaseProfile {
    /// Fraction of the run's wall-clock spent in the serial phases.
    pub fn serial_fraction(&self) -> f64 {
        let total = self.parallel_ms + self.serial_ms;
        if total > 0.0 {
            self.serial_ms / total
        } else {
            0.0
        }
    }
}

/// A thermally-coupled fleet of enclosures.
///
/// [`Fleet::run`] drives a whole trace to completion; the stepwise API
/// ([`Fleet::offer`] / [`Fleet::step_epoch`] / [`Fleet::is_drained`] /
/// [`Fleet::report`]) exposes the same loop one sync epoch at a time so
/// a caller — the digital-twin server — can keep a fleet warm
/// indefinitely, feed it arrivals incrementally, and checkpoint it
/// between epochs with [`Fleet::capture_state`].
pub struct Fleet {
    enclosures: Vec<Enclosure>,
    router: Router,
    coordinator: Coordinator,
    airflow: AirflowGraph,
    envelope: Celsius,
    window: Seconds,
    windows_per_epoch: usize,
    threads: usize,
    /// Requests accepted but not yet routed, in arrival order.
    incoming: VecDeque<Request>,
    epochs: u64,
    now: Seconds,
    /// Whether the coordinator has announced its starting speeds.
    primed: bool,
    /// Per-enclosure array geometry (None: single-disk bays).
    array: Option<EnclosureArray>,
    /// Active rebuild scans, in injection order.
    rebuilds: Vec<Rebuild>,
    /// Per-enclosure inlet bias in Celsius (cooling excursions); empty
    /// means no bias anywhere. A zero entry is exactly a no-op, so an
    /// all-zero vector leaves the run byte-identical to no bias.
    ambient_bias: Vec<f64>,
    /// Events injected between epochs (failures, excursions, traffic
    /// phases), stamped with the boundary time and drained into the
    /// next epoch's merged stream.
    boundary_events: Vec<diskobs::Event>,
    // Per-epoch scratch, reused across the whole run so the untraced
    // epoch loop allocates nothing in steady state (the traced path
    // hands its event runs to the merge, which consumes them).
    hot: FleetHotState,
    route: RoutingScratch,
    routing_run: Vec<diskobs::TimedEvent>,
}

/// Complete dynamic state of a [`Fleet`], captured between sync epochs
/// for checkpointing. Restoring and advancing is byte-identical to
/// never having checkpointed: every mid-epoch scratch buffer is
/// rebuilt empty because it is overwritten before its next read, and
/// everything that survives an epoch boundary — drive state, queues,
/// hysteresis trips, the router cursor, accumulated statistics — is
/// captured exactly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetState {
    enclosures: Vec<EnclosureState>,
    routing: RoutingPolicy,
    router_cursor: usize,
    coordinator: CoordinatorState,
    airflow: AirflowGraph,
    envelope: Celsius,
    window: Seconds,
    windows_per_epoch: usize,
    threads: usize,
    incoming: Vec<Request>,
    epochs: u64,
    now: Seconds,
    primed: bool,
    array: Option<EnclosureArray>,
    rebuilds: Vec<Rebuild>,
    ambient_bias: Vec<f64>,
}

impl FleetState {
    /// The sync epoch this state was captured at.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// Simulated time at capture.
    pub fn now(&self) -> Seconds {
        self.now
    }

    /// Number of enclosures the state carries.
    pub fn enclosures(&self) -> usize {
        self.enclosures.len()
    }
}

impl Fleet {
    /// Assembles the fleet: one single-disk `StorageSystem` per airflow
    /// node, each thermally hot-started at its *preheated* idle steady
    /// state (the rack has been idling, not sitting in pristine inlet
    /// air).
    ///
    /// # Errors
    ///
    /// Rejects a zero-window or zero-epoch configuration and propagates
    /// simulator construction failures.
    pub fn new(config: FleetConfig) -> Result<Self, FleetError> {
        if config.window.get() <= 0.0 {
            return Err(FleetError::Config("control window must be positive".into()));
        }
        if config.windows_per_epoch == 0 {
            return Err(FleetError::Config("an epoch needs at least one window".into()));
        }
        let n = config.airflow.len();

        // Idle preheat decides the starting thermal state of every bay.
        let rpm = config.spec.rpm();
        let idle = OperatingPoint::idle_vcm(rpm);
        let idle_heat = drive_heat_estimate(&config.thermal, idle).get();
        let ambients = config.airflow.local_ambients(&vec![idle_heat; n]);

        let mut enclosures = Vec::with_capacity(n);
        for ambient in ambients {
            let system = StorageSystem::new(bay_config(&config.spec, config.array)?)?;
            let capacity = system.logical_sectors();
            let model = ThermalModel::with_params(
                config.thermal.with_ambient(ambient),
                ThermalParams::default(),
            );
            let start = model.steady_state(idle);
            let drive = WindowedDrive::new(system, model).with_initial_temps(start);
            enclosures.push(Enclosure::fresh(drive, capacity, ambient));
        }

        Ok(Self {
            enclosures,
            router: Router::new(config.routing),
            coordinator: Coordinator::new(config.dtm, config.envelope, n),
            airflow: config.airflow,
            envelope: config.envelope,
            window: config.window,
            windows_per_epoch: config.windows_per_epoch,
            threads: config.threads.max(1),
            incoming: VecDeque::new(),
            epochs: 0,
            now: Seconds::ZERO,
            primed: false,
            array: config.array,
            rebuilds: Vec::new(),
            ambient_bias: Vec::new(),
            boundary_events: Vec::new(),
            hot: FleetHotState::default(),
            route: RoutingScratch::default(),
            routing_run: Vec::new(),
        })
    }

    /// Number of enclosures.
    pub fn len(&self) -> usize {
        self.enclosures.len()
    }

    /// Whether the fleet is empty (never true for a validated config).
    pub fn is_empty(&self) -> bool {
        self.enclosures.is_empty()
    }

    /// Runs a logical trace through the fleet. Requests target the fleet
    /// as a whole; the router picks a drive and the request's LBA is
    /// remapped into that drive's range (`device` and `lba` act as a
    /// placement hint, not an address).
    ///
    /// # Errors
    ///
    /// Currently infallible after construction (remapping keeps every
    /// submission in range); the `Result` reserves room for trace
    /// validation.
    pub fn run(self, trace: Vec<Request>) -> Result<FleetReport, FleetError> {
        let mut sink = diskobs::Sink::null();
        self.run_with_sink(trace, &mut sink)
    }

    /// Runs a logical trace, streaming trace events into `sink`: every
    /// routing decision, each enclosure's request and RPM events (tagged
    /// with its bay index through the sink scope), one `Snapshot` per
    /// enclosure per sync epoch, and the coordinator's actions.
    ///
    /// All timestamps are sim time and the buffered per-enclosure
    /// streams merge through a stable k-way merge (routing decisions
    /// first, then bay order on ties), so the emitted byte stream is
    /// identical at any shard count.
    ///
    /// # Errors
    ///
    /// As [`Self::run`].
    pub fn run_with_sink(
        self,
        trace: Vec<Request>,
        sink: &mut diskobs::Sink,
    ) -> Result<FleetReport, FleetError> {
        let mut profile = FleetPhaseProfile::default();
        self.run_inner(trace, sink, &mut profile)
    }

    /// Like [`Self::run_with_sink`], but also reports where the
    /// wall-clock went: parallel window sweeps versus serial
    /// epoch-boundary synchronization.
    ///
    /// # Errors
    ///
    /// As [`Self::run`].
    pub fn run_profiled(
        self,
        trace: Vec<Request>,
        sink: &mut diskobs::Sink,
    ) -> Result<(FleetReport, FleetPhaseProfile), FleetError> {
        let mut profile = FleetPhaseProfile::default();
        let report = self.run_inner(trace, sink, &mut profile)?;
        Ok((report, profile))
    }

    fn run_inner(
        mut self,
        mut trace: Vec<Request>,
        sink: &mut diskobs::Sink,
        profile: &mut FleetPhaseProfile,
    ) -> Result<FleetReport, FleetError> {
        if sink.is_enabled() {
            self.enable_drive_sinks();
        }
        // Deterministic arrival order whatever the caller produced.
        trace.sort_by(|a, b| {
            a.arrival
                .get()
                .partial_cmp(&b.arrival.get())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.id.cmp(&b.id))
        });
        self.incoming = trace.into();

        loop {
            self.step_epoch(sink, profile);
            if self.is_drained() {
                break;
            }
            // Safety cap: a fleet gated forever still terminates.
            if self.now.get() > 24.0 * 3600.0 {
                break;
            }
        }

        Ok(self.report())
    }

    /// Queues logical requests for routing at the next epoch boundary.
    ///
    /// Requests are appended as-is: the stepwise caller must offer them
    /// in non-decreasing arrival order (the batch `run` entry points
    /// sort instead).
    pub fn offer(&mut self, requests: impl IntoIterator<Item = Request>) {
        self.incoming.extend(requests);
    }

    /// Turns on per-enclosure event emission for stepwise callers (the
    /// batch `run` entry points do this themselves): each drive gets a
    /// buffer sink tagged with its bay index, and [`Self::step_epoch`]
    /// drains them through its deterministic k-way merge into the sink
    /// it is handed. Call once before the first `step_epoch`; pair with
    /// [`Self::disable_drive_sinks`] when switching back to untraced
    /// stepping, or buffered events accumulate undrained.
    pub fn enable_drive_sinks(&mut self) {
        for (i, e) in self.enclosures.iter_mut().enumerate() {
            e.drive.set_sink(diskobs::Sink::buffer().with_scope(i));
        }
    }

    /// Reverts every drive to the no-op sink (no per-request events).
    pub fn disable_drive_sinks(&mut self) {
        for e in &mut self.enclosures {
            e.drive.set_sink(diskobs::Sink::null());
        }
    }

    /// Whether no work remains anywhere: nothing queued for routing,
    /// nothing pending admission, nothing in flight.
    pub fn is_drained(&self) -> bool {
        self.incoming.is_empty()
            && self
                .enclosures
                .iter()
                .all(|e| e.pending.is_empty() && e.drive.in_flight() == 0)
    }

    /// Advances the fleet through exactly one sync epoch: commits the
    /// epoch's routing, sweeps every enclosure's windows in parallel,
    /// rolls the airflow hierarchy up and back down, stages and commits
    /// the coordinator's decisions, and merges the per-enclosure event
    /// runs. [`Self::run`] is a loop over this method; the digital twin
    /// calls it directly to keep a fleet warm while it serves queries.
    ///
    /// The boundary itself is split-phase: the shards *propose* in two
    /// parallel passes (window sweeps and statistics folds in pass A,
    /// ambient push-back and coordinator proposals in pass B) and only
    /// three cheap reduces run serially — the O(log n)-per-request
    /// routing commit, the O(racks) airflow roll-up, and the in-order
    /// coordinator commit. Every proposal reads epoch-start state and
    /// every commit happens in enclosure order, so the results are
    /// byte-identical at any shard count.
    pub fn step_epoch(&mut self, sink: &mut diskobs::Sink, profile: &mut FleetPhaseProfile) {
        if !self.primed {
            self.coordinator
                .prime(|i, rpm| self.enclosures[i].drive.set_all_rpm(rpm));
            self.primed = true;
        }

        let n = self.enclosures.len();
        let epoch_len = self.window * self.windows_per_epoch as f64;
        let epoch_start = std::time::Instant::now();
        let epoch_end = self.now + epoch_len;
        let ctx = EpochCtx {
            first_window: self.epochs * self.windows_per_epoch as u64,
            windows_per_epoch: self.windows_per_epoch,
            window: self.window,
            envelope: self.envelope,
            epoch_end: epoch_end.get(),
            epoch_len,
            sink_enabled: sink.is_enabled(),
        };

        // Serial reduce 1 — the routing commit. Placements score the
        // epoch-start snapshot (the hot arrays, refreshed by the last
        // epoch's parallel passes) plus a running count of this epoch's
        // placements, so the decision sequence is independent of
        // sharding; the tournament tree makes each commit O(log n)
        // instead of the old O(n) scan.
        self.hot.ensure(&self.enclosures, &self.coordinator);
        let mut routing_run = std::mem::take(&mut self.routing_run);
        routing_run.clear();

        // Boundary injections (failures, excursions, traffic phases)
        // land at exactly `now`, ahead of this epoch's arrivals, so the
        // merged stream stays time-sorted. They were queued between
        // epochs by `fail_drive` / the scenario engine, serially, so
        // they are identical at any shard count.
        if ctx.sink_enabled {
            for event in self.boundary_events.drain(..) {
                routing_run.push(diskobs::TimedEvent { t: self.now.get(), event });
            }
        } else {
            self.boundary_events.clear();
        }

        // Rebuild scans: budget each active rebuild `rate × epoch` of
        // sequential logical reads, queued ahead of the epoch's routed
        // arrivals. On a degraded array every read reconstructs from
        // the survivors — the storm. This is serial per-epoch work of
        // O(active rebuilds) bookkeeping, so it cannot perturb shard
        // byte-identity.
        let mut k = 0;
        while k < self.rebuilds.len() {
            let rb = &mut self.rebuilds[k];
            let e = &mut self.enclosures[rb.enclosure];
            let mut budget = rb.rate * epoch_len.get() + rb.carry;
            while budget >= rb.chunk as f64 && rb.done < rb.total {
                let sectors = (rb.chunk as u64).min(rb.total - rb.next_lba) as u32;
                e.pending.push_back(Request::new(
                    REBUILD_ID_BASE + rb.next_lba,
                    self.now,
                    0,
                    rb.next_lba,
                    sectors,
                    disksim::RequestKind::Read,
                ));
                budget -= sectors as f64;
                rb.done += sectors as u64;
                rb.next_lba = if rb.next_lba + sectors as u64 >= rb.total {
                    0
                } else {
                    rb.next_lba + sectors as u64
                };
            }
            rb.carry = budget.min(rb.rate * epoch_len.get());
            if ctx.sink_enabled {
                routing_run.push(diskobs::TimedEvent {
                    t: self.now.get(),
                    event: diskobs::Event::RebuildProgress {
                        enclosure: rb.enclosure,
                        done: rb.done,
                        total: rb.total,
                    },
                });
            }
            if rb.done >= rb.total {
                e.drive.system_mut().repair_disk();
                self.rebuilds.remove(k);
            } else {
                k += 1;
            }
        }

        self.route
            .begin(self.router.policy(), &self.hot.air, &self.hot.queue, &self.hot.gated);
        while let Some(front) = self.incoming.front() {
            if front.arrival > epoch_end {
                break;
            }
            let r = *front;
            self.incoming.pop_front();
            let i = self
                .route
                .place(&mut self.router, &self.hot.gated, &mut self.hot.queue);
            if ctx.sink_enabled {
                routing_run.push(diskobs::TimedEvent {
                    t: r.arrival.get(),
                    event: diskobs::Event::RoutingDecision {
                        request: r.id,
                        drive: i,
                    },
                });
            }
            let e = &mut self.enclosures[i];
            e.pending.push_back(remap(r, e.capacity));
            e.routed += 1;
        }

        // Parallel pass A — window sweeps plus per-bay folds.
        let stamp = std::time::Instant::now();
        self.hot.pass_a(&mut self.enclosures, self.threads, &ctx);
        let mut parallel = stamp.elapsed();

        // Serial reduce 2 — the only cross-rack thermal coupling:
        // per-rack heat totals roll up into per-level preheat prefixes,
        // O(racks). Flat graphs keep the dense evaluation.
        if let Some(shape) = self.airflow.hall_shape() {
            self.hot.rack_heat = rack_heats(&shape, &self.hot.heat);
            self.hot.rack_base = self.airflow.rack_preheats(&shape, &self.hot.rack_heat);
        } else {
            self.hot.flat_ambients = self.airflow.local_ambients(&self.hot.heat);
        }

        // Parallel pass B — ambient push-back, boundary events, and
        // coordinator proposals.
        let stamp = std::time::Instant::now();
        self.hot.pass_b(
            &mut self.enclosures,
            &self.coordinator,
            &self.airflow,
            self.threads,
            &ctx,
            &self.ambient_bias,
        );
        parallel += stamp.elapsed();

        // Serial reduce 3 — install the proposals in enclosure order.
        self.coordinator.commit_all(&self.hot.proposals);

        if ctx.sink_enabled {
            // Parallel k-way merge of the pre-sorted runs (routing
            // decisions first, then each bay's stream): equal
            // timestamps keep run order, exactly as the old global
            // stable time-sort did, so the bytes are shard-independent.
            let stamp = std::time::Instant::now();
            let mut runs = Vec::with_capacity(n + 1);
            runs.push(routing_run);
            runs.extend(self.enclosures.iter_mut().map(|e| std::mem::take(&mut e.run)));
            let merged =
                disksim::par::parallel_merge_by(runs, self.threads, |a, b| a.t.total_cmp(&b.t));
            sink.extend(merged);
            parallel += stamp.elapsed();
        } else {
            self.routing_run = routing_run;
        }

        self.epochs += 1;
        self.now = epoch_end;
        profile.parallel_ms += parallel.as_secs_f64() * 1e3;
        profile.serial_ms += epoch_start
            .elapsed()
            .saturating_sub(parallel)
            .as_secs_f64()
            * 1e3;
        profile.epochs = self.epochs;
    }

    /// Assembles a [`FleetReport`] from the fleet's current state
    /// without consuming it, so the stepwise caller can keep advancing
    /// afterwards.
    pub fn report(&self) -> FleetReport {
        let n = self.enclosures.len();
        let now = self.now;
        let per_enclosure: Vec<EnclosureReport> = self
            .enclosures
            .iter()
            .map(|e| EnclosureReport {
                routed: e.routed,
                completed: e.completed,
                max_air: e.max_air,
                max_local_ambient: e.max_local_ambient,
                mean_air: if now.get() > 0.0 {
                    Celsius::new(e.air_integral / now.get())
                } else {
                    e.drive.air()
                },
                mean_duty: if e.windows == 0 {
                    0.0
                } else {
                    e.duty_sum / e.windows as f64
                },
                final_rpm: e.drive.rpm(),
                time_over_envelope: e.time_over,
                time_gated: e.time_gated,
                time_scaled: e.time_scaled,
            })
            .collect();

        let max_air = per_enclosure
            .iter()
            .map(|e| e.max_air)
            .fold(self.airflow.inlet(), Celsius::max);
        let peak_local_ambient = per_enclosure
            .iter()
            .map(|e| e.max_local_ambient)
            .fold(self.airflow.inlet(), Celsius::max);
        let mean_air = Celsius::new(
            per_enclosure.iter().map(|e| e.mean_air.get()).sum::<f64>() / n.max(1) as f64,
        );
        let time_over_envelope = per_enclosure
            .iter()
            .fold(Seconds::ZERO, |acc, e| acc + e.time_over_envelope);

        FleetReport {
            enclosures: n,
            stats: self.stats(),
            max_air,
            peak_local_ambient,
            mean_air,
            total_time: now,
            time_over_envelope,
            epochs: self.epochs,
            per_enclosure,
        }
    }

    /// Response-time statistics accumulated so far: the per-enclosure
    /// folds merged in enclosure order, which is deterministic at any
    /// shard count.
    pub fn stats(&self) -> ResponseStats {
        let mut total = ResponseStats::new();
        for e in &self.enclosures {
            total.merge(&e.stats);
        }
        total
    }

    /// Discards the accumulated response-time statistics. What-if forks
    /// call this on both the baseline and the perturbed copy at the
    /// fork point so the comparison covers only the forked horizon.
    pub fn reset_stats(&mut self) {
        for e in &mut self.enclosures {
            e.stats = ResponseStats::new();
        }
    }

    /// Current simulated time (epoch boundary).
    pub fn now(&self) -> Seconds {
        self.now
    }

    /// Simulated length of one sync epoch.
    pub fn epoch_len(&self) -> Seconds {
        self.window * self.windows_per_epoch as f64
    }

    /// The rack inlet temperature before preheat.
    pub fn inlet(&self) -> Celsius {
        self.airflow.inlet()
    }

    /// Sync epochs executed so far.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// The hottest internal-air temperature across the fleet right now.
    pub fn peak_air(&self) -> Celsius {
        self.enclosures
            .iter()
            .map(|e| e.drive.air())
            .fold(self.airflow.inlet(), Celsius::max)
    }

    /// The hottest preheated local ambient across the fleet right now.
    pub fn peak_local_ambient(&self) -> Celsius {
        self.enclosures
            .iter()
            .map(|e| e.drive.model().spec().ambient())
            .fold(self.airflow.inlet(), Celsius::max)
    }

    /// Number of drives currently under coordinator control action.
    pub fn engaged_count(&self) -> usize {
        self.coordinator.engaged()
    }

    /// Moves the rack inlet temperature (the CRAC-setpoint what-if).
    /// Takes effect at the next epoch's airflow coupling.
    pub fn set_inlet(&mut self, inlet: Celsius) {
        self.airflow.set_inlet(inlet);
    }

    /// Fails one RAID-5 member of an enclosure and starts the rebuild
    /// scan `rebuild` describes (a non-positive rate leaves the array
    /// degraded with no rebuild). Subsequent requests map through
    /// degraded-mode reconstruction; the scan completes at the epoch
    /// granularity and repairs the array when it covers the volume.
    ///
    /// Call between epochs (it queues a `DriveFailed` boundary event
    /// for the next epoch's stream, stamped at the boundary time).
    ///
    /// # Errors
    ///
    /// [`FleetError::NoSuchEnclosure`] for an out-of-range enclosure;
    /// [`disksim::SimError::NoSuchDevice`] for an out-of-range member,
    /// [`disksim::SimError::AlreadyDegraded`] for a double failure, and
    /// [`disksim::SimError::BadConfig`] on a non-RAID fleet (all via
    /// [`FleetError::Sim`]).
    pub fn fail_drive(
        &mut self,
        enclosure: usize,
        disk: u32,
        rebuild: RebuildSpec,
    ) -> Result<(), FleetError> {
        let fleet = self.enclosures.len();
        let Some(e) = self.enclosures.get_mut(enclosure) else {
            return Err(FleetError::NoSuchEnclosure { enclosure, fleet });
        };
        e.drive.system_mut().fail_disk(disk)?;
        if rebuild.rate_sectors_per_sec > 0.0 && rebuild.chunk_sectors > 0 {
            self.rebuilds.push(Rebuild {
                enclosure,
                disk,
                next_lba: 0,
                total: e.drive.system().logical_sectors(),
                done: 0,
                rate: rebuild.rate_sectors_per_sec,
                chunk: rebuild.chunk_sectors,
                carry: 0.0,
            });
        }
        self.boundary_events.push(diskobs::Event::DriveFailed { enclosure, disk });
        Ok(())
    }

    /// Active rebuild scans, in injection order.
    pub fn rebuilds(&self) -> &[Rebuild] {
        &self.rebuilds
    }

    /// Installs a per-enclosure inlet-temperature bias in Celsius
    /// (cooling excursions). An empty slice clears every bias; a zero
    /// entry is exactly a no-op for that bay. Takes effect at the next
    /// epoch's airflow coupling.
    ///
    /// # Errors
    ///
    /// Rejects a non-empty slice whose length differs from the fleet's.
    pub fn set_ambient_bias(&mut self, bias: &[f64]) -> Result<(), FleetError> {
        if !bias.is_empty() && bias.len() != self.enclosures.len() {
            return Err(FleetError::Config(format!(
                "ambient bias covers {} drives but the fleet has {}",
                bias.len(),
                self.enclosures.len()
            )));
        }
        self.ambient_bias.clear();
        self.ambient_bias.extend_from_slice(bias);
        Ok(())
    }

    /// Queues an observability event for the next epoch boundary
    /// (stamped at the boundary time, ahead of the epoch's arrivals).
    /// The scenario engine announces excursions and traffic phases
    /// through this.
    pub fn push_boundary_event(&mut self, event: diskobs::Event) {
        self.boundary_events.push(event);
    }

    /// Grows the fleet in place: `airflow` replaces the coupling graph
    /// and must contain every existing bay (same indices) plus the new
    /// ones at the tail. New bays are assembled exactly as
    /// [`Self::new`] would — idle-preheated against the new graph —
    /// and the coordinator primes them through its policy.
    ///
    /// # Errors
    ///
    /// Rejects a graph that does not grow the fleet and propagates
    /// simulator construction failures.
    pub fn add_enclosures(
        &mut self,
        spec: &DiskSpec,
        thermal: &DriveThermalSpec,
        airflow: AirflowGraph,
    ) -> Result<(), FleetError> {
        let old = self.enclosures.len();
        let n = airflow.len();
        if n <= old {
            return Err(FleetError::Config(format!(
                "replacement airflow graph must grow the fleet: {n} nodes for {old} existing bays"
            )));
        }
        let rpm = spec.rpm();
        let idle = OperatingPoint::idle_vcm(rpm);
        let idle_heat = drive_heat_estimate(thermal, idle).get();
        let ambients = airflow.local_ambients(&vec![idle_heat; n]);
        for ambient in ambients.into_iter().skip(old) {
            let system = StorageSystem::new(bay_config(spec, self.array)?)?;
            let capacity = system.logical_sectors();
            let model =
                ThermalModel::with_params(thermal.with_ambient(ambient), ThermalParams::default());
            let start = model.steady_state(idle);
            let drive = WindowedDrive::new(system, model).with_initial_temps(start);
            self.enclosures.push(Enclosure::fresh(drive, capacity, ambient));
        }
        self.airflow = airflow;
        self.coordinator
            .grow(n - old, |i, rpm| self.enclosures[i].drive.set_all_rpm(rpm));
        Ok(())
    }

    /// Captures the fleet's complete dynamic state between sync epochs.
    pub fn capture_state(&self) -> FleetState {
        FleetState {
            enclosures: self.enclosures.iter().map(Enclosure::capture_state).collect(),
            routing: self.router.policy(),
            router_cursor: self.router.cursor(),
            coordinator: self.coordinator.capture_state(),
            airflow: self.airflow.clone(),
            envelope: self.envelope,
            window: self.window,
            windows_per_epoch: self.windows_per_epoch,
            threads: self.threads,
            incoming: self.incoming.iter().copied().collect(),
            epochs: self.epochs,
            now: self.now,
            primed: self.primed,
            array: self.array,
            rebuilds: self.rebuilds.clone(),
            ambient_bias: self.ambient_bias.clone(),
        }
    }

    /// Rebuilds a fleet mid-flight from a captured state. Advancing the
    /// restored fleet produces byte-identical results to advancing the
    /// original.
    ///
    /// # Errors
    ///
    /// Rejects inconsistent states (mismatched enclosure / airflow /
    /// coordinator sizes, degenerate windows) and propagates simulator
    /// restore failures — the checks that catch a corrupted checkpoint
    /// body whose JSON still parses.
    pub fn restore_state(state: FleetState) -> Result<Self, FleetError> {
        if state.enclosures.is_empty() {
            return Err(FleetError::Config("fleet state has no enclosures".into()));
        }
        let n = state.enclosures.len();
        if state.airflow.len() != n {
            return Err(FleetError::Config(format!(
                "airflow graph covers {} drives but the state carries {n} enclosures",
                state.airflow.len()
            )));
        }
        if state.coordinator.drives() != n {
            return Err(FleetError::Config(format!(
                "coordinator state covers {} drives but the state carries {n} enclosures",
                state.coordinator.drives()
            )));
        }
        if state.window.get() <= 0.0 {
            return Err(FleetError::Config("control window must be positive".into()));
        }
        if state.windows_per_epoch == 0 {
            return Err(FleetError::Config("an epoch needs at least one window".into()));
        }
        if let Some(rb) = state.rebuilds.iter().find(|rb| rb.enclosure >= n) {
            return Err(FleetError::Config(format!(
                "rebuild targets enclosure {} but the state carries {n}",
                rb.enclosure
            )));
        }
        if !state.ambient_bias.is_empty() && state.ambient_bias.len() != n {
            return Err(FleetError::Config(format!(
                "ambient bias covers {} drives but the state carries {n} enclosures",
                state.ambient_bias.len()
            )));
        }
        let enclosures = state
            .enclosures
            .into_iter()
            .map(Enclosure::restore_state)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            enclosures,
            router: Router::new(state.routing).with_cursor(state.router_cursor),
            coordinator: Coordinator::restore_state(state.coordinator),
            airflow: state.airflow,
            envelope: state.envelope,
            window: state.window,
            windows_per_epoch: state.windows_per_epoch,
            threads: state.threads.max(1),
            incoming: state.incoming.into(),
            epochs: state.epochs,
            now: state.now,
            primed: state.primed,
            array: state.array,
            rebuilds: state.rebuilds,
            ambient_bias: state.ambient_bias,
            boundary_events: Vec::new(),
            hot: FleetHotState::default(),
            route: RoutingScratch::default(),
            routing_run: Vec::new(),
        })
    }
}

/// The per-bay storage configuration: one drive, or a RAID-5 array
/// presented as one logical volume.
fn bay_config(spec: &DiskSpec, array: Option<EnclosureArray>) -> Result<SystemConfig, FleetError> {
    Ok(match array {
        Some(a) => SystemConfig::raid5(spec.clone(), a.disks, a.stripe_sectors)?,
        None => SystemConfig::single_disk(spec.clone()),
    })
}

/// Remaps a fleet-logical request onto one drive: device 0 and an LBA
/// folded into the drive's addressable range (minus the transfer
/// length), preserving arrival time, size, and kind.
fn remap(r: Request, capacity: u64) -> Request {
    let span = capacity.saturating_sub(r.sectors as u64 + 1).max(1);
    Request::new(r.id, r.arrival, 0, r.lba % span, r.sectors, r.kind)
}

#[cfg(test)]
mod tests {
    use super::*;
    use disksim::RequestKind;
    use units::{Inches, TempDelta};

    fn config(enclosures: usize, rpm: f64, stream: f64) -> FleetConfig {
        FleetConfig::serial(
            enclosures,
            DiskSpec::era(2002, 1, Rpm::new(rpm)),
            DriveThermalSpec::new(Inches::new(2.6), 1),
            stream,
        )
        .unwrap()
    }

    fn trace(n: u64, rate: f64) -> Vec<Request> {
        (0..n)
            .map(|i| {
                Request::new(
                    i,
                    Seconds::new(i as f64 / rate),
                    0,
                    i.wrapping_mul(7_777_777),
                    8,
                    if i % 4 == 0 { RequestKind::Write } else { RequestKind::Read },
                )
            })
            .collect()
    }

    #[test]
    fn every_request_completes_once() {
        let fleet = Fleet::new(config(4, 15_020.0, 12.0)).unwrap();
        let report = fleet.run(trace(1_000, 300.0)).unwrap();
        assert_eq!(report.stats.count(), 1_000);
        assert_eq!(report.per_enclosure.iter().map(|e| e.completed).sum::<u64>(), 1_000);
        assert_eq!(report.per_enclosure.iter().map(|e| e.routed).sum::<u64>(), 1_000);
        assert!(report.total_time.get() > 0.0);
    }

    #[test]
    fn downstream_bays_start_hotter_and_peak_hotter_under_uniform_load() {
        let fleet = Fleet::new(config(6, 15_020.0, 8.0)).unwrap();
        let report = fleet.run(trace(1_800, 300.0)).unwrap();
        let first = &report.per_enclosure[0];
        let last = &report.per_enclosure[5];
        assert!(
            last.max_local_ambient > first.max_local_ambient,
            "serial preheat must build downstream"
        );
        assert!(last.max_air > first.max_air);
        assert_eq!(report.peak_local_ambient, last.max_local_ambient);
    }

    #[test]
    fn shard_count_does_not_change_the_bytes() {
        let run = |threads: usize| {
            let mut cfg = config(6, 15_020.0, 10.0);
            cfg.threads = threads;
            cfg.routing = RoutingPolicy::ThermalAware {
                envelope: THERMAL_ENVELOPE,
            };
            cfg.dtm = FleetDtmPolicy::SpeedScale {
                high: Rpm::new(15_020.0),
                low: Rpm::new(12_000.0),
                guard: TempDelta::new(0.3),
                resume_margin: TempDelta::new(0.3),
            };
            serde_json::to_string(&Fleet::new(cfg).unwrap().run(trace(1_200, 350.0)).unwrap())
                .unwrap()
        };
        let serial = run(1);
        assert_eq!(serial, run(4));
        assert_eq!(serial, run(8));
    }

    #[test]
    fn hall_topology_is_byte_identical_at_any_shard_count() {
        // 24 drives as 2 rows of 3 racks × 4 bays, with DTM engaged so
        // the two-phase commit actually has transitions to order.
        let run = |threads: usize| {
            let airflow = AirflowGraph::hall(
                24,
                4,
                3,
                Celsius::new(28.0),
                0.05,
                0.01,
                0.004,
            )
            .unwrap();
            let mut cfg = config(24, 15_020.0, 10.0);
            cfg.airflow = airflow;
            cfg.threads = threads;
            cfg.routing = RoutingPolicy::ThermalAware {
                envelope: THERMAL_ENVELOPE,
            };
            cfg.dtm = FleetDtmPolicy::Throttle {
                guard: TempDelta::new(0.3),
                resume_margin: TempDelta::new(0.3),
            };
            serde_json::to_string(&Fleet::new(cfg).unwrap().run(trace(2_000, 500.0)).unwrap())
                .unwrap()
        };
        let serial = run(1);
        assert_eq!(serial, run(3), "3 shards split racks unevenly");
        assert_eq!(serial, run(8));
    }

    #[test]
    fn thermal_aware_routing_runs_cooler_than_round_robin() {
        let run = |routing: RoutingPolicy| {
            let mut cfg = config(6, 15_020.0, 6.0);
            cfg.routing = routing;
            Fleet::new(cfg).unwrap().run(trace(2_400, 400.0)).unwrap()
        };
        let rr = run(RoutingPolicy::RoundRobin);
        let ta = run(RoutingPolicy::ThermalAware {
            envelope: THERMAL_ENVELOPE,
        });
        assert_eq!(rr.stats.count(), ta.stats.count());
        assert!(
            ta.max_air < rr.max_air,
            "slack-weighted placement must cool the hottest bay: {} vs {}",
            ta.max_air,
            rr.max_air
        );
    }

    #[test]
    fn coordinator_throttle_caps_the_fleet() {
        // An over-envelope design speed: uncontrolled the hot bays
        // exceed the envelope, gated they hold near it.
        let run = |dtm: FleetDtmPolicy| {
            let mut cfg = config(4, 24_534.0, 10.0);
            cfg.dtm = dtm;
            Fleet::new(cfg).unwrap().run(trace(1_600, 260.0)).unwrap()
        };
        let base = run(FleetDtmPolicy::None);
        assert!(
            base.max_air > THERMAL_ENVELOPE,
            "uncontrolled hot fleet must violate the envelope, peaked {}",
            base.max_air
        );
        let gated = run(FleetDtmPolicy::Throttle {
            guard: TempDelta::new(0.1),
            resume_margin: TempDelta::new(0.2),
        });
        assert_eq!(gated.stats.count(), 1_600, "gating delays, never drops");
        assert!(gated.max_air < base.max_air);
        assert!(
            gated.per_enclosure.iter().any(|e| e.time_gated.get() > 0.0),
            "the gate must actually engage"
        );
    }

    #[test]
    fn speed_scale_trims_heat_without_gating() {
        let run = |dtm: FleetDtmPolicy| {
            let mut cfg = config(4, 24_534.0, 10.0);
            cfg.dtm = dtm;
            Fleet::new(cfg).unwrap().run(trace(1_600, 260.0)).unwrap()
        };
        let base = run(FleetDtmPolicy::None);
        let scaled = run(FleetDtmPolicy::SpeedScale {
            high: Rpm::new(24_534.0),
            low: Rpm::new(15_020.0),
            guard: TempDelta::new(0.3),
            resume_margin: TempDelta::new(0.3),
        });
        assert_eq!(scaled.stats.count(), 1_600);
        assert!(scaled.max_air < base.max_air);
        assert!(scaled.per_enclosure.iter().any(|e| e.time_scaled.get() > 0.0));
        assert!(scaled.per_enclosure.iter().all(|e| e.time_gated == Seconds::ZERO));
    }

    #[test]
    fn bad_configs_are_rejected() {
        let mut cfg = config(2, 15_020.0, 12.0);
        cfg.window = Seconds::ZERO;
        assert!(matches!(Fleet::new(cfg), Err(FleetError::Config(_))));
        let mut cfg = config(2, 15_020.0, 12.0);
        cfg.windows_per_epoch = 0;
        assert!(matches!(Fleet::new(cfg), Err(FleetError::Config(_))));
        assert!(FleetConfig::serial(
            0,
            DiskSpec::era(2002, 1, Rpm::new(15_020.0)),
            DriveThermalSpec::new(Inches::new(2.6), 1),
            12.0,
        )
        .is_err());
    }

    #[test]
    fn fail_drive_errors_are_typed_and_rebuild_repairs() {
        // Large stripes keep the degraded reconstruct fan-out (ops per
        // stripe touched) small enough for a whole-volume scan in-test.
        let mut cfg = config(3, 15_020.0, 12.0);
        cfg.array = Some(EnclosureArray { disks: 4, stripe_sectors: 65_536 });
        let mut fleet = Fleet::new(cfg).unwrap();
        assert!(matches!(
            fleet.fail_drive(9, 0, RebuildSpec::default()),
            Err(FleetError::NoSuchEnclosure { enclosure: 9, fleet: 3 })
        ));
        assert!(matches!(
            fleet.fail_drive(1, 9, RebuildSpec::default()),
            Err(FleetError::Sim(disksim::SimError::NoSuchDevice { .. }))
        ));
        // A rate that covers the whole volume in one epoch's budget.
        let flood = RebuildSpec { rate_sectors_per_sec: 1e12, chunk_sectors: 1_000_000 };
        fleet.fail_drive(1, 2, flood).unwrap();
        assert!(matches!(
            fleet.fail_drive(1, 0, RebuildSpec::default()),
            Err(FleetError::Sim(disksim::SimError::AlreadyDegraded { device: 2 }))
        ));
        assert_eq!(fleet.rebuilds().len(), 1);
        assert_eq!(fleet.rebuilds()[0].enclosure(), 1);
        let mut sink = diskobs::Sink::null();
        let mut profile = FleetPhaseProfile::default();
        fleet.step_epoch(&mut sink, &mut profile);
        assert!(fleet.rebuilds().is_empty(), "one-epoch budget must finish the scan");
        // Repaired: the same member can fail again.
        assert!(fleet.fail_drive(1, 2, RebuildSpec::default()).is_ok());
    }

    #[test]
    fn fail_drive_on_a_single_disk_fleet_is_an_error() {
        let mut fleet = Fleet::new(config(2, 15_020.0, 12.0)).unwrap();
        assert!(matches!(
            fleet.fail_drive(0, 0, RebuildSpec::default()),
            Err(FleetError::Sim(disksim::SimError::BadConfig(_)))
        ));
    }

    #[test]
    fn ambient_bias_must_match_the_fleet() {
        let mut fleet = Fleet::new(config(4, 15_020.0, 12.0)).unwrap();
        assert!(fleet.set_ambient_bias(&[1.0; 4]).is_ok());
        assert!(fleet.set_ambient_bias(&[]).is_ok());
        assert!(matches!(
            fleet.set_ambient_bias(&[1.0; 3]),
            Err(FleetError::Config(_))
        ));
    }

    #[test]
    fn zero_bias_is_byte_identical_to_no_bias() {
        let run = |biased: bool| {
            let mut cfg = config(4, 15_020.0, 10.0);
            cfg.dtm = FleetDtmPolicy::SpeedScale {
                high: Rpm::new(15_020.0),
                low: Rpm::new(12_000.0),
                guard: TempDelta::new(0.3),
                resume_margin: TempDelta::new(0.3),
            };
            let mut fleet = Fleet::new(cfg).unwrap();
            if biased {
                fleet.set_ambient_bias(&[0.0; 4]).unwrap();
            }
            fleet.offer(trace(800, 300.0));
            let mut sink = diskobs::Sink::null();
            let mut profile = FleetPhaseProfile::default();
            for _ in 0..12 {
                fleet.step_epoch(&mut sink, &mut profile);
            }
            serde_json::to_string(&fleet.report()).unwrap()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn report_round_trips_through_serde() {
        let fleet = Fleet::new(config(2, 15_020.0, 12.0)).unwrap();
        let report = fleet.run(trace(200, 200.0)).unwrap();
        let json = serde_json::to_string(&report).unwrap();
        let back: FleetReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
    }
}
