//! Thermally-coupled multi-drive fleet simulation (`diskfleet`).
//!
//! The paper designs and manages one drive against its thermal envelope;
//! racks hold dozens, and they share their cooling air. This crate
//! scales the single-drive machinery up:
//!
//! - an **airflow graph** ([`AirflowGraph`]) couples the drives
//!   thermally — each drive's inlet ambient is the rack inlet plus the
//!   preheat of upstream drives' exhaust, the §4.2.2 ambient boundary
//!   condition generalized to rack scale;
//! - pluggable **request routing** ([`RoutingPolicy`]): round-robin,
//!   least-queue, and thermal-aware placement weighted by thermal slack
//!   — `dtm::mirror`'s two-drive read steering generalized to N drives;
//! - a fleet-level **DTM coordinator** ([`Coordinator`]) applying
//!   per-drive RPM ramp (§5.2) or admission-throttle (§5.3) decisions
//!   under one shared envelope;
//! - a **sharded deterministic event loop** ([`Fleet::run`]) advancing
//!   enclosures in parallel between thermal-coupling sync epochs,
//!   byte-identical at any thread count.
//!
//! # Examples
//!
//! ```
//! use diskfleet::{Fleet, FleetConfig, RoutingPolicy};
//! use disksim::{DiskSpec, Request, RequestKind};
//! use diskthermal::{DriveThermalSpec, THERMAL_ENVELOPE};
//! use units::{Inches, Rpm, Seconds};
//!
//! let mut config = FleetConfig::serial(
//!     4,
//!     DiskSpec::era(2002, 1, Rpm::new(15_020.0)),
//!     DriveThermalSpec::new(Inches::new(2.6), 1),
//!     12.0, // cooling-stream capacity rate, W/K
//! )?;
//! config.routing = RoutingPolicy::ThermalAware { envelope: THERMAL_ENVELOPE };
//! let trace: Vec<Request> = (0..100)
//!     .map(|i| Request::new(i, Seconds::new(i as f64 / 200.0), 0, i * 100_003, 8, RequestKind::Read))
//!     .collect();
//! let report = Fleet::new(config)?.run(trace)?;
//! assert_eq!(report.stats.count(), 100);
//! assert!(report.max_air > report.per_enclosure[0].max_local_ambient);
//! # Ok::<(), diskfleet::FleetError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod airflow;
mod coordinator;
mod error;
mod fleet;
mod hall;
mod routing;

pub use airflow::AirflowGraph;
pub use coordinator::{Coordinator, CoordinatorState, FleetDtmPolicy};
pub use error::FleetError;
pub use hall::HallSpec;
pub use fleet::{
    EnclosureArray, EnclosureReport, Fleet, FleetConfig, FleetPhaseProfile, FleetReport,
    FleetState, Rebuild, RebuildSpec, REBUILD_ID_BASE,
};
pub use routing::{DriveSnapshot, Router, RoutingPolicy};
