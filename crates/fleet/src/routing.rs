//! Request-routing policies over the fleet.
//!
//! `dtm::mirror` steers a *read stream* between two drives by switching
//! the active member when it nears the envelope; these policies
//! generalize that to per-request placement across N drives. Routing
//! runs serially at sync-epoch boundaries from an epoch-start snapshot,
//! so the choice is deterministic regardless of how many threads advance
//! the enclosures afterwards.

use serde::{Deserialize, Serialize};
use units::Celsius;

/// How the fleet places each incoming request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RoutingPolicy {
    /// Cycle through the drives in index order.
    RoundRobin,
    /// Send each request to the shortest queue (ties to the lowest
    /// index).
    LeastQueue,
    /// Weight placement by thermal slack per queued request:
    /// `max(envelope − air, 0) / (1 + queue)`. Cool, idle drives absorb
    /// load; drives near the envelope shed it. When every drive's slack
    /// is exhausted, falls back to [`RoutingPolicy::LeastQueue`].
    ThermalAware {
        /// The temperature the slack is measured against.
        envelope: Celsius,
    },
}

/// What the router sees of one drive when it places a request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriveSnapshot {
    /// Internal-air temperature at the epoch boundary.
    pub air: Celsius,
    /// Requests queued against the drive: in flight, pending admission,
    /// and already routed this epoch.
    pub queue: u64,
    /// Whether the fleet coordinator currently gates this drive's
    /// admission.
    pub gated: bool,
}

/// A routing policy plus the mutable cursor round-robin needs.
#[derive(Debug, Clone)]
pub struct Router {
    policy: RoutingPolicy,
    next_rr: usize,
}

impl Router {
    /// A fresh router (round-robin starts at drive 0).
    pub fn new(policy: RoutingPolicy) -> Self {
        Self { policy, next_rr: 0 }
    }

    /// The policy this router applies.
    pub fn policy(&self) -> RoutingPolicy {
        self.policy
    }

    /// The round-robin cursor (always zero for stateless policies),
    /// captured for checkpointing.
    pub fn cursor(&self) -> usize {
        self.next_rr
    }

    /// Restores a previously captured round-robin cursor.
    #[must_use]
    pub fn with_cursor(mut self, cursor: usize) -> Self {
        self.next_rr = cursor;
        self
    }

    /// Picks the drive for the next request. Gated drives are skipped
    /// unless every drive is gated, in which case the request queues at
    /// the policy's normal choice and waits for the coordinator to
    /// reopen admission.
    ///
    /// # Panics
    ///
    /// Panics if `drives` is empty.
    pub fn pick(&mut self, drives: &[DriveSnapshot]) -> usize {
        assert!(!drives.is_empty(), "routing needs at least one drive");
        let all_gated = drives.iter().all(|d| d.gated);
        let usable = |i: usize| all_gated || !drives[i].gated;
        match self.policy {
            RoutingPolicy::RoundRobin => {
                let n = drives.len();
                for step in 0..n {
                    let i = (self.next_rr + step) % n;
                    if usable(i) {
                        self.next_rr = (i + 1) % n;
                        return i;
                    }
                }
                unreachable!("usable() admits every drive when all are gated");
            }
            RoutingPolicy::LeastQueue => Self::least_queue(drives, usable),
            RoutingPolicy::ThermalAware { envelope } => {
                let mut best: Option<(usize, f64)> = None;
                for (i, d) in drives.iter().enumerate() {
                    if !usable(i) {
                        continue;
                    }
                    let slack = (envelope - d.air).get().max(0.0);
                    let score = slack / (1.0 + d.queue as f64);
                    let better = match best {
                        None => true,
                        Some((_, s)) => score > s,
                    };
                    if better {
                        best = Some((i, score));
                    }
                }
                match best {
                    // No thermal headroom anywhere: shortest queue is
                    // all that is left to optimize.
                    Some((_, score)) if score <= 0.0 => Self::least_queue(drives, usable),
                    Some((i, _)) => i,
                    None => unreachable!("usable() admits every drive when all are gated"),
                }
            }
        }
    }

    fn least_queue(drives: &[DriveSnapshot], usable: impl Fn(usize) -> bool) -> usize {
        drives
            .iter()
            .enumerate()
            .filter(|(i, _)| usable(*i))
            .min_by_key(|(_, d)| d.queue)
            .map(|(i, _)| i)
            .expect("usable() admits every drive when all are gated")
    }
}

/// An argmax tournament tree over per-drive scores: `best()` is O(1)
/// and a one-score `update()` is O(log n). Equal scores resolve to the
/// smaller index — the same winner [`Router::pick`]'s linear scan
/// chooses — because the left child wins every tie on the way up.
#[derive(Debug, Clone, Default)]
pub(crate) struct ArgBest {
    cap: usize,
    /// 1-based segment tree; leaf `i` lives at `cap + i`.
    tree: Vec<(f64, usize)>,
}

impl ArgBest {
    /// Reloads every score (O(n)), growing the tree as needed. Indices
    /// beyond `vals` pad with `-inf` on the right, so they never beat a
    /// real drive (ties go left).
    fn reset(&mut self, vals: &[f64]) {
        assert!(!vals.is_empty(), "routing needs at least one drive");
        let cap = vals.len().next_power_of_two();
        if self.cap != cap {
            self.cap = cap;
            self.tree.clear();
            self.tree.resize(2 * cap, (f64::NEG_INFINITY, usize::MAX));
        }
        for (slot, filler) in self.tree[cap..].iter_mut().zip(
            vals.iter()
                .copied()
                .enumerate()
                .map(|(i, v)| (v, i))
                .chain(std::iter::repeat((f64::NEG_INFINITY, usize::MAX))),
        ) {
            *slot = filler;
        }
        for node in (1..cap).rev() {
            self.tree[node] = Self::wins(self.tree[2 * node], self.tree[2 * node + 1]);
        }
    }

    /// Replaces drive `i`'s score and rebalances its path to the root.
    fn update(&mut self, i: usize, val: f64) {
        let mut node = self.cap + i;
        self.tree[node] = (val, i);
        while node > 1 {
            node /= 2;
            self.tree[node] = Self::wins(self.tree[2 * node], self.tree[2 * node + 1]);
        }
    }

    /// The winning drive and its score.
    fn best(&self) -> (usize, f64) {
        let (val, i) = self.tree[1];
        (i, val)
    }

    fn wins(left: (f64, usize), right: (f64, usize)) -> (f64, usize) {
        if right.0 > left.0 {
            right
        } else {
            left
        }
    }
}

/// Which scoring the epoch's placements run under.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
enum CommitMode {
    /// Cursor walk — O(1) amortized, no tree.
    #[default]
    RoundRobin,
    /// Tree over `-(queue)`: argmax is the shortest usable queue.
    LeastQueue,
    /// Tree over `slack / (1 + queue)` with epoch-constant slack.
    ThermalAware,
}

/// The routing half of the two-phase epoch commit: per-drive scores are
/// *proposed* from the epoch-start snapshot (air, gating, and — for
/// thermal slack — the envelope are all frozen for the epoch), then
/// each placement is an O(log n) tree query + update instead of
/// [`Router::pick`]'s O(n) rescan. The placement sequence is proven
/// identical to repeated `pick` calls by the equivalence test below:
/// within an epoch only queue depths move, and they move exactly as the
/// rescan would see them.
#[derive(Debug, Clone, Default)]
pub(crate) struct RoutingScratch {
    tree: ArgBest,
    /// Per-drive thermal slack, fixed across the epoch.
    slack: Vec<f64>,
    /// Score staging buffer for `reset`.
    vals: Vec<f64>,
    mode: CommitMode,
    all_gated: bool,
}

impl RoutingScratch {
    /// Stages an epoch: scores every drive against the epoch-start
    /// snapshot. `queues[i]` counts requests held against drive `i`
    /// (in flight + pending); `place` keeps it current as it routes.
    ///
    /// # Panics
    ///
    /// Panics if the slices are empty or disagree in length.
    pub fn begin(
        &mut self,
        policy: RoutingPolicy,
        air: &[Celsius],
        queues: &[u64],
        gated: &[bool],
    ) {
        assert!(!gated.is_empty(), "routing needs at least one drive");
        assert!(air.len() == gated.len() && queues.len() == gated.len());
        self.all_gated = gated.iter().all(|&g| g);
        let usable = |i: usize| self.all_gated || !gated[i];
        self.vals.clear();
        match policy {
            RoutingPolicy::RoundRobin => {
                self.mode = CommitMode::RoundRobin;
                return;
            }
            RoutingPolicy::LeastQueue => {
                self.mode = CommitMode::LeastQueue;
            }
            RoutingPolicy::ThermalAware { envelope } => {
                self.slack.clear();
                self.slack
                    .extend(air.iter().map(|&a| (envelope - a).get().max(0.0)));
                // `pick` falls back to least-queue when the best score
                // is ≤ 0, i.e. when no usable drive has slack. Slack
                // and gating are epoch-start facts, so the fallback
                // decision holds for the whole epoch.
                let any_slack = (0..gated.len()).any(|i| usable(i) && self.slack[i] > 0.0);
                self.mode = if any_slack {
                    CommitMode::ThermalAware
                } else {
                    CommitMode::LeastQueue
                };
            }
        }
        match self.mode {
            CommitMode::LeastQueue => self.vals.extend(
                queues
                    .iter()
                    .enumerate()
                    .map(|(i, &q)| if usable(i) { -(q as f64) } else { f64::NEG_INFINITY }),
            ),
            CommitMode::ThermalAware => self.vals.extend(queues.iter().enumerate().map(
                |(i, &q)| {
                    if usable(i) {
                        self.slack[i] / (1.0 + q as f64)
                    } else {
                        f64::NEG_INFINITY
                    }
                },
            )),
            CommitMode::RoundRobin => unreachable!("returned above"),
        }
        self.tree.reset(&self.vals);
    }

    /// Places one request: returns the chosen drive and charges it one
    /// queued request. O(log n) (amortized O(1) for round-robin).
    pub fn place(&mut self, router: &mut Router, gated: &[bool], queues: &mut [u64]) -> usize {
        match self.mode {
            CommitMode::RoundRobin => {
                let n = gated.len();
                for step in 0..n {
                    let i = (router.next_rr + step) % n;
                    if self.all_gated || !gated[i] {
                        router.next_rr = (i + 1) % n;
                        queues[i] += 1;
                        return i;
                    }
                }
                unreachable!("all_gated admits every drive")
            }
            CommitMode::LeastQueue => {
                let (i, _) = self.tree.best();
                queues[i] += 1;
                self.tree.update(i, -(queues[i] as f64));
                i
            }
            CommitMode::ThermalAware => {
                let (i, _) = self.tree.best();
                queues[i] += 1;
                self.tree.update(i, self.slack[i] / (1.0 + queues[i] as f64));
                i
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(air: f64, queue: u64, gated: bool) -> DriveSnapshot {
        DriveSnapshot {
            air: Celsius::new(air),
            queue,
            gated,
        }
    }

    #[test]
    fn round_robin_cycles_and_skips_gated() {
        let mut r = Router::new(RoutingPolicy::RoundRobin);
        let drives = vec![snap(30.0, 0, false), snap(30.0, 0, true), snap(30.0, 0, false)];
        assert_eq!(r.pick(&drives), 0);
        assert_eq!(r.pick(&drives), 2, "gated drive 1 is skipped");
        assert_eq!(r.pick(&drives), 0);
    }

    #[test]
    fn least_queue_breaks_ties_toward_the_lowest_index() {
        let mut r = Router::new(RoutingPolicy::LeastQueue);
        let drives = vec![snap(30.0, 4, false), snap(30.0, 2, false), snap(30.0, 2, false)];
        assert_eq!(r.pick(&drives), 1);
    }

    #[test]
    fn thermal_aware_prefers_cool_idle_drives() {
        let mut r = Router::new(RoutingPolicy::ThermalAware {
            envelope: Celsius::new(45.0),
        });
        // Drive 2 is the coolest but loaded; drive 0 is warm but idle.
        let drives = vec![snap(40.0, 0, false), snap(44.5, 0, false), snap(35.0, 9, false)];
        // Scores: 5/1 = 5.0, 0.5/1 = 0.5, 10/10 = 1.0.
        assert_eq!(r.pick(&drives), 0);
    }

    #[test]
    fn thermal_aware_falls_back_to_least_queue_without_slack() {
        let mut r = Router::new(RoutingPolicy::ThermalAware {
            envelope: Celsius::new(45.0),
        });
        let drives = vec![snap(46.0, 3, false), snap(47.0, 1, false), snap(45.0, 2, false)];
        assert_eq!(r.pick(&drives), 1, "all slack exhausted → shortest queue");
    }

    #[test]
    fn commit_places_exactly_like_repeated_picks() {
        // For every policy, over many random epoch-start snapshots, the
        // O(log n) commit path and the O(n) rescan must emit the same
        // placement sequence — including ties, gating, zero slack, the
        // all-gated degenerate case, and the least-queue fallback.
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        let mut rand = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let policies = [
            RoutingPolicy::RoundRobin,
            RoutingPolicy::LeastQueue,
            RoutingPolicy::ThermalAware {
                envelope: Celsius::new(45.0),
            },
        ];
        for trial in 0..200 {
            let n = 1 + (rand() % 9) as usize;
            let all_gated = trial % 17 == 0;
            let drives: Vec<DriveSnapshot> = (0..n)
                .map(|_| DriveSnapshot {
                    // A coarse grid (0.5 C steps around the envelope)
                    // forces exact score ties and zero-slack drives.
                    air: Celsius::new(40.0 + (rand() % 14) as f64 * 0.5),
                    queue: rand() % 4,
                    gated: all_gated || rand() % 4 == 0,
                })
                .collect();
            for policy in policies {
                let mut reference = Router::new(policy).with_cursor((rand() % n as u64) as usize);
                let mut fast = reference.clone();
                let mut snaps = drives.clone();
                let air: Vec<Celsius> = snaps.iter().map(|d| d.air).collect();
                let mut queues: Vec<u64> = snaps.iter().map(|d| d.queue).collect();
                let gated: Vec<bool> = snaps.iter().map(|d| d.gated).collect();
                let mut scratch = RoutingScratch::default();
                scratch.begin(policy, &air, &queues, &gated);
                for step in 0..24 {
                    let want = reference.pick(&snaps);
                    snaps[want].queue += 1;
                    let got = scratch.place(&mut fast, &gated, &mut queues);
                    assert_eq!(
                        got, want,
                        "trial {trial} step {step} policy {policy:?} diverged"
                    );
                    assert_eq!(queues[got], snaps[got].queue, "queue accounting diverged");
                }
                assert_eq!(fast.cursor(), reference.cursor(), "cursors must track");
            }
        }
    }

    #[test]
    fn fully_gated_fleet_still_places_requests() {
        let mut rr = Router::new(RoutingPolicy::RoundRobin);
        let mut ta = Router::new(RoutingPolicy::ThermalAware {
            envelope: Celsius::new(45.0),
        });
        let drives = vec![snap(46.0, 2, true), snap(40.0, 1, true)];
        assert_eq!(rr.pick(&drives), 0);
        assert_eq!(ta.pick(&drives), 1, "gates ignored when universal");
    }
}
