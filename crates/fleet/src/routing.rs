//! Request-routing policies over the fleet.
//!
//! `dtm::mirror` steers a *read stream* between two drives by switching
//! the active member when it nears the envelope; these policies
//! generalize that to per-request placement across N drives. Routing
//! runs serially at sync-epoch boundaries from an epoch-start snapshot,
//! so the choice is deterministic regardless of how many threads advance
//! the enclosures afterwards.

use serde::{Deserialize, Serialize};
use units::Celsius;

/// How the fleet places each incoming request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RoutingPolicy {
    /// Cycle through the drives in index order.
    RoundRobin,
    /// Send each request to the shortest queue (ties to the lowest
    /// index).
    LeastQueue,
    /// Weight placement by thermal slack per queued request:
    /// `max(envelope − air, 0) / (1 + queue)`. Cool, idle drives absorb
    /// load; drives near the envelope shed it. When every drive's slack
    /// is exhausted, falls back to [`RoutingPolicy::LeastQueue`].
    ThermalAware {
        /// The temperature the slack is measured against.
        envelope: Celsius,
    },
}

/// What the router sees of one drive when it places a request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriveSnapshot {
    /// Internal-air temperature at the epoch boundary.
    pub air: Celsius,
    /// Requests queued against the drive: in flight, pending admission,
    /// and already routed this epoch.
    pub queue: u64,
    /// Whether the fleet coordinator currently gates this drive's
    /// admission.
    pub gated: bool,
}

/// A routing policy plus the mutable cursor round-robin needs.
#[derive(Debug, Clone)]
pub struct Router {
    policy: RoutingPolicy,
    next_rr: usize,
}

impl Router {
    /// A fresh router (round-robin starts at drive 0).
    pub fn new(policy: RoutingPolicy) -> Self {
        Self { policy, next_rr: 0 }
    }

    /// The policy this router applies.
    pub fn policy(&self) -> RoutingPolicy {
        self.policy
    }

    /// The round-robin cursor (always zero for stateless policies),
    /// captured for checkpointing.
    pub fn cursor(&self) -> usize {
        self.next_rr
    }

    /// Restores a previously captured round-robin cursor.
    #[must_use]
    pub fn with_cursor(mut self, cursor: usize) -> Self {
        self.next_rr = cursor;
        self
    }

    /// Picks the drive for the next request. Gated drives are skipped
    /// unless every drive is gated, in which case the request queues at
    /// the policy's normal choice and waits for the coordinator to
    /// reopen admission.
    ///
    /// # Panics
    ///
    /// Panics if `drives` is empty.
    pub fn pick(&mut self, drives: &[DriveSnapshot]) -> usize {
        assert!(!drives.is_empty(), "routing needs at least one drive");
        let all_gated = drives.iter().all(|d| d.gated);
        let usable = |i: usize| all_gated || !drives[i].gated;
        match self.policy {
            RoutingPolicy::RoundRobin => {
                let n = drives.len();
                for step in 0..n {
                    let i = (self.next_rr + step) % n;
                    if usable(i) {
                        self.next_rr = (i + 1) % n;
                        return i;
                    }
                }
                unreachable!("usable() admits every drive when all are gated");
            }
            RoutingPolicy::LeastQueue => Self::least_queue(drives, usable),
            RoutingPolicy::ThermalAware { envelope } => {
                let mut best: Option<(usize, f64)> = None;
                for (i, d) in drives.iter().enumerate() {
                    if !usable(i) {
                        continue;
                    }
                    let slack = (envelope - d.air).get().max(0.0);
                    let score = slack / (1.0 + d.queue as f64);
                    let better = match best {
                        None => true,
                        Some((_, s)) => score > s,
                    };
                    if better {
                        best = Some((i, score));
                    }
                }
                match best {
                    // No thermal headroom anywhere: shortest queue is
                    // all that is left to optimize.
                    Some((_, score)) if score <= 0.0 => Self::least_queue(drives, usable),
                    Some((i, _)) => i,
                    None => unreachable!("usable() admits every drive when all are gated"),
                }
            }
        }
    }

    fn least_queue(drives: &[DriveSnapshot], usable: impl Fn(usize) -> bool) -> usize {
        drives
            .iter()
            .enumerate()
            .filter(|(i, _)| usable(*i))
            .min_by_key(|(_, d)| d.queue)
            .map(|(i, _)| i)
            .expect("usable() admits every drive when all are gated")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(air: f64, queue: u64, gated: bool) -> DriveSnapshot {
        DriveSnapshot {
            air: Celsius::new(air),
            queue,
            gated,
        }
    }

    #[test]
    fn round_robin_cycles_and_skips_gated() {
        let mut r = Router::new(RoutingPolicy::RoundRobin);
        let drives = vec![snap(30.0, 0, false), snap(30.0, 0, true), snap(30.0, 0, false)];
        assert_eq!(r.pick(&drives), 0);
        assert_eq!(r.pick(&drives), 2, "gated drive 1 is skipped");
        assert_eq!(r.pick(&drives), 0);
    }

    #[test]
    fn least_queue_breaks_ties_toward_the_lowest_index() {
        let mut r = Router::new(RoutingPolicy::LeastQueue);
        let drives = vec![snap(30.0, 4, false), snap(30.0, 2, false), snap(30.0, 2, false)];
        assert_eq!(r.pick(&drives), 1);
    }

    #[test]
    fn thermal_aware_prefers_cool_idle_drives() {
        let mut r = Router::new(RoutingPolicy::ThermalAware {
            envelope: Celsius::new(45.0),
        });
        // Drive 2 is the coolest but loaded; drive 0 is warm but idle.
        let drives = vec![snap(40.0, 0, false), snap(44.5, 0, false), snap(35.0, 9, false)];
        // Scores: 5/1 = 5.0, 0.5/1 = 0.5, 10/10 = 1.0.
        assert_eq!(r.pick(&drives), 0);
    }

    #[test]
    fn thermal_aware_falls_back_to_least_queue_without_slack() {
        let mut r = Router::new(RoutingPolicy::ThermalAware {
            envelope: Celsius::new(45.0),
        });
        let drives = vec![snap(46.0, 3, false), snap(47.0, 1, false), snap(45.0, 2, false)];
        assert_eq!(r.pick(&drives), 1, "all slack exhausted → shortest queue");
    }

    #[test]
    fn fully_gated_fleet_still_places_requests() {
        let mut rr = Router::new(RoutingPolicy::RoundRobin);
        let mut ta = Router::new(RoutingPolicy::ThermalAware {
            envelope: Celsius::new(45.0),
        });
        let drives = vec![snap(46.0, 2, true), snap(40.0, 1, true)];
        assert_eq!(rr.pick(&drives), 0);
        assert_eq!(ta.pick(&drives), 1, "gates ignored when universal");
    }
}
