//! Fleet-level error type.

use disksim::SimError;
use std::fmt;

/// Everything that can go wrong assembling or running a fleet.
#[derive(Debug)]
#[non_exhaustive]
pub enum FleetError {
    /// The underlying event simulator rejected a configuration or
    /// request.
    Sim(SimError),
    /// The fleet configuration itself is inconsistent (mismatched
    /// airflow graph, zero enclosures, bad coupling coefficients, ...).
    Config(String),
    /// An injection addressed an enclosure index the fleet does not
    /// have.
    NoSuchEnclosure {
        /// Enclosure index requested.
        enclosure: usize,
        /// Enclosures in the fleet.
        fleet: usize,
    },
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::Sim(e) => write!(f, "simulator error: {e}"),
            FleetError::Config(msg) => write!(f, "fleet configuration error: {msg}"),
            FleetError::NoSuchEnclosure { enclosure, fleet } => {
                write!(f, "enclosure {enclosure} requested but the fleet has {fleet}")
            }
        }
    }
}

impl std::error::Error for FleetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FleetError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for FleetError {
    fn from(e: SimError) -> Self {
        FleetError::Sim(e)
    }
}
