//! Parameterized machine-room halls: the knob set a capacity-planning
//! sweep turns.
//!
//! The §4.2.2 hall experiments hard-code one geometry (20-drive racks,
//! 25-rack rows); capacity planning asks the opposite question — how do
//! peak temperature, DTM engagement, and tail latency move as rack
//! density, row width, and inlet temperature vary? [`HallSpec`] names
//! those knobs once so every caller (the `fleet_hall` experiment, the
//! surrogate training sweep, ad-hoc what-ifs) builds the identical
//! [`FleetConfig`] from the identical parameters.

use crate::airflow::AirflowGraph;
use crate::error::FleetError;
use crate::fleet::FleetConfig;
use disksim::DiskSpec;
use diskthermal::DriveThermalSpec;
use serde::Serialize;
use units::Celsius;

/// The geometry and coupling knobs of a hierarchical hall
/// ([`AirflowGraph::hall`]): rows of racks of drive bays, preheated
/// within the rack, along the row, and row-to-row.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct HallSpec {
    /// Drive bays per rack.
    pub per_rack: usize,
    /// Racks per row.
    pub racks_per_row: usize,
    /// Rows in the hall.
    pub rows: usize,
    /// Cold-aisle inlet temperature before any preheat.
    pub inlet: Celsius,
    /// Intra-rack preheat, K/W per upstream drive.
    pub k_drive: f64,
    /// Within-row preheat, K/W of each earlier rack's total heat.
    pub k_rack: f64,
    /// Row-to-row recirculation, K/W of each earlier row's total heat.
    pub k_row: f64,
}

impl HallSpec {
    /// The paper-shaped defaults of the `fleet_hall` experiment: the
    /// hall's coupling constants with a caller-chosen geometry and
    /// inlet.
    pub fn new(per_rack: usize, racks_per_row: usize, rows: usize, inlet: Celsius) -> Self {
        HallSpec {
            per_rack,
            racks_per_row,
            rows,
            inlet,
            k_drive: 4.0e-3,
            k_rack: 1.2e-4,
            k_row: 7.0e-5,
        }
    }

    /// Total drive count: every row full.
    pub fn drives(&self) -> usize {
        self.per_rack * self.racks_per_row * self.rows
    }

    /// The hierarchical airflow graph this hall induces.
    ///
    /// # Errors
    ///
    /// As [`AirflowGraph::hall`]: zero-size geometry or bad coupling
    /// coefficients.
    pub fn airflow(&self) -> Result<AirflowGraph, FleetError> {
        AirflowGraph::hall(
            self.drives(),
            self.per_rack,
            self.racks_per_row,
            self.inlet,
            self.k_drive,
            self.k_rack,
            self.k_row,
        )
    }

    /// A fleet configuration for this hall: serial defaults (routing,
    /// DTM, envelope, windows) with the hall's airflow swapped in.
    /// Callers adjust routing/DTM/threads on the returned config.
    ///
    /// # Errors
    ///
    /// Propagates config validation from [`FleetConfig::serial`] and
    /// [`Self::airflow`].
    pub fn config(&self, spec: DiskSpec, thermal: DriveThermalSpec) -> Result<FleetConfig, FleetError> {
        let mut config = FleetConfig::serial(self.drives(), spec, thermal, 1.0)?;
        config.airflow = self.airflow()?;
        Ok(config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::Fleet;
    use units::{Inches, Rpm};

    fn spec() -> HallSpec {
        HallSpec::new(4, 3, 2, Celsius::new(28.0))
    }

    #[test]
    fn drive_count_is_the_product_of_the_geometry() {
        assert_eq!(spec().drives(), 24);
    }

    #[test]
    fn config_builds_a_runnable_fleet_with_the_hall_inlet() {
        let hall = spec();
        let config = hall
            .config(
                DiskSpec::era(2002, 1, Rpm::new(15_020.0)),
                DriveThermalSpec::new(Inches::new(2.6), 1),
            )
            .unwrap();
        assert_eq!(config.airflow.len(), 24);
        let fleet = Fleet::new(config).unwrap();
        assert_eq!(fleet.inlet(), Celsius::new(28.0));
    }

    #[test]
    fn zero_geometry_is_rejected() {
        let mut hall = spec();
        hall.rows = 0;
        assert!(hall.airflow().is_err());
    }
}
