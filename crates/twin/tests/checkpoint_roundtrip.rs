//! The checkpoint contract: `restore(checkpoint(s))` then `advance(k)`
//! is byte-identical to `advance(k)` on the original — across every
//! workload preset and with a RAID-5 array mid-rebuild — and corrupted
//! or truncated checkpoint files are rejected with typed errors.

use disksim::{DiskSpec, Request, RequestKind, StorageSystem, SystemConfig};
use disktwin::{
    decode, encode, read_checkpoint, write_checkpoint, CheckpointError, Twin, TwinConfig,
    STATE_VERSION,
};
use proptest::prelude::*;
use units::{Rpm, Seconds};

fn twin_for(preset_idx: usize) -> Twin {
    let presets = workloads::presets();
    let preset = presets[preset_idx % presets.len()].clone();
    Twin::new(TwinConfig::preset(preset, 3)).expect("twin builds")
}

fn state_json(twin: &Twin) -> String {
    serde_json::to_string(&twin.capture_state()).expect("state serializes")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    // The tentpole invariant, across all five workload presets:
    // checkpointing is invisible. Encode → decode → restore, then
    // advance both twins in lockstep — every captured state byte
    // matches.
    #[test]
    fn restore_then_advance_matches_never_checkpointing(
        preset in 0usize..5,
        warmup in 0u64..3,
        k in 1u64..4,
    ) {
        let mut original = twin_for(preset);
        for _ in 0..warmup {
            original.advance_epoch().expect("advance");
        }
        let bytes = encode(&original.capture_state()).expect("encode");
        let mut restored =
            Twin::restore_state(decode(&bytes).expect("decode")).expect("restore");
        prop_assert_eq!(state_json(&original), state_json(&restored));
        for _ in 0..k {
            original.advance_epoch().expect("advance original");
            restored.advance_epoch().expect("advance restored");
            prop_assert_eq!(state_json(&original), state_json(&restored));
        }
    }
}

/// The scenario contract: a checkpoint taken mid-rebuild, with a
/// cooling excursion still pending in the schedule, restores and keeps
/// advancing byte-identically — the pending injection fires in both
/// twins at the same boundary.
#[test]
fn mid_rebuild_checkpoint_restores_with_its_pending_schedule() {
    use diskfleet::{EnclosureArray, RebuildSpec};
    use diskscenario::{CoolingScope, Injection, Scenario};

    let presets = workloads::presets();
    let mut config = TwinConfig::preset(presets[1].clone(), 3);
    config.array = Some(EnclosureArray {
        disks: 3,
        stripe_sectors: 65_536,
    });
    let mut original = Twin::new(config).expect("twin builds");
    original.set_scenario(
        Scenario::new()
            .with(Injection::DriveFailure {
                at_epoch: 1,
                enclosure: 2,
                disk: 0,
                rebuild: RebuildSpec {
                    rate_sectors_per_sec: 200_000.0,
                    chunk_sectors: 4_096,
                },
            })
            .with(Injection::CoolingEvent {
                at_epoch: 6,
                duration_epochs: 3,
                ramp_epochs: 0,
                delta_c: 5.0,
                scope: CoolingScope::All,
            }),
    );

    // Advance past the failure but short of the excursion: the rebuild
    // is in flight and the cooling injection is still pending.
    for _ in 0..3 {
        original.advance_epoch().expect("advance");
    }
    assert!(
        !original.fleet().rebuilds().is_empty(),
        "the checkpoint must land mid-rebuild"
    );

    let bytes = encode(&original.capture_state()).expect("encode");
    let mut restored = Twin::restore_state(decode(&bytes).expect("decode")).expect("restore");
    assert_eq!(state_json(&original), state_json(&restored));

    // Cross the pending excursion and keep going: every boundary
    // matches, so the restored schedule fired identically.
    for epoch in 0..7 {
        original.advance_epoch().expect("advance original");
        restored.advance_epoch().expect("advance restored");
        assert_eq!(
            state_json(&original),
            state_json(&restored),
            "states diverge {epoch} epochs after restore"
        );
    }
}

/// A RAID-5 array serving degraded (one member failed, reconstruction
/// reads in flight) round-trips through the same serialization layer
/// and keeps advancing byte-identically.
#[test]
fn mid_raid_rebuild_state_round_trips() {
    let cfg = SystemConfig::raid5(DiskSpec::era_2001(Rpm::new(10_000.0)), 5, 16)
        .expect("raid5 config");
    let mut sys = StorageSystem::new(cfg).expect("system builds");
    let span = sys.logical_sectors() - 256;
    for i in 0..200u64 {
        let kind = if i % 3 == 0 { RequestKind::Write } else { RequestKind::Read };
        let r = Request::new(
            i,
            Seconds::from_millis(i as f64 * 0.7),
            0,
            (i * 7_919) % span,
            8,
            kind,
        );
        sys.submit(r).expect("submit");
    }
    let _ = sys.advance_to(Seconds::from_millis(40.0));
    sys.fail_disk(2).expect("raid5 member fails");
    // Serve degraded for a while so reconstruction work is in flight.
    let _ = sys.advance_to(Seconds::from_millis(60.0));

    let json = serde_json::to_string(&sys.capture_state()).expect("state serializes");
    let mut restored =
        StorageSystem::restore_state(serde_json::from_str(&json).expect("state parses"))
            .expect("restore");
    assert_eq!(restored.failed_disk(), Some(2), "degraded mode survives restore");

    let a = sys.drain();
    let b = restored.drain();
    assert_eq!(a.len(), b.len(), "both drains complete the same requests");
    assert_eq!(
        serde_json::to_string(&sys.capture_state()).unwrap(),
        serde_json::to_string(&restored.capture_state()).unwrap(),
        "drained states are byte-identical"
    );
}

fn sample_bytes() -> Vec<u8> {
    let twin = twin_for(1);
    encode(&twin.capture_state()).expect("encode")
}

#[test]
fn corrupted_checkpoints_are_rejected_before_parsing() {
    let good = sample_bytes();
    assert!(decode(&good).is_ok(), "the uncorrupted bytes decode");

    // A flipped bit deep in the body fails the checksum.
    let mut flipped = good.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x01;
    assert!(
        matches!(decode(&flipped), Err(CheckpointError::ChecksumMismatch)),
        "bit flip must fail the checksum"
    );

    // A truncated file fails the length check.
    let truncated = &good[..good.len() - good.len() / 3];
    assert!(
        matches!(
            decode(truncated),
            Err(CheckpointError::Truncated { .. })
        ),
        "truncation must be detected"
    );

    // The wrong magic is not a checkpoint at all.
    let mut wrong_magic = good.clone();
    wrong_magic[0] = b'X';
    assert!(matches!(
        decode(&wrong_magic),
        Err(CheckpointError::BadHeader(_))
    ));

    // Any other version — future or past — is refused with a typed
    // error before the JSON parser ever runs. The v2 case is the real
    // migration hazard: a pre-v3 checkpoint carries a bare stream state
    // where `source` now lives and no scenario schedule, so it must
    // fail loudly, not half-deserialize.
    let header_end = good.iter().position(|&b| b == b'\n').unwrap();
    let header = String::from_utf8(good[..header_end].to_vec()).unwrap();
    let current = format!(" {STATE_VERSION} ");
    for old in [1u32, 2, 999] {
        let bumped = header.replacen(&current, &format!(" {old} "), 1);
        assert_ne!(bumped, header, "the version field must be rewritten");
        let mut wrong_version = bumped.into_bytes();
        wrong_version.extend_from_slice(&good[header_end..]);
        match decode(&wrong_version) {
            Err(CheckpointError::VersionMismatch { found }) => assert_eq!(found, old),
            other => panic!("version {old} must be refused as VersionMismatch, got {other:?}"),
        }
    }

    // No header line at all.
    assert!(matches!(
        decode(b"not a checkpoint"),
        Err(CheckpointError::BadHeader(_))
    ));
    assert!(matches!(decode(b""), Err(CheckpointError::BadHeader(_))));
}

#[test]
fn checkpoint_files_write_atomically_and_read_back() {
    let dir = std::env::temp_dir().join(format!("disktwin-ckpt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("twin.ckpt");

    let mut twin = twin_for(0);
    twin.advance_epoch().expect("advance");
    let state = twin.capture_state();
    let bytes = write_checkpoint(&path, &state).expect("write");
    assert_eq!(bytes, std::fs::metadata(&path).expect("file exists").len());
    assert!(
        !dir.join("twin.ckpt.tmp").exists(),
        "the staging file must not survive a successful commit"
    );

    let back = read_checkpoint(&path).expect("read back");
    assert_eq!(
        serde_json::to_string(&back).unwrap(),
        serde_json::to_string(&state).unwrap(),
        "the file round-trips byte-identically"
    );
    std::fs::remove_dir_all(&dir).ok();
}
