//! Trace-replay parity: an MSR-Cambridge trace written out, read back,
//! and replayed must drive a batch fleet (through the scenario driver)
//! and a live twin identically — the two event streams are
//! byte-identical NDJSON.

use diskfleet::{Fleet, FleetConfig};
use diskscenario::{run_scenario, ArrivalSource, Scenario, ScenarioEngine};
use disksim::{DiskSpec, Request, RequestKind};
use diskthermal::DriveThermalSpec;
use disktwin::{Twin, TwinConfig};
use units::{Inches, Rpm, Seconds};
use workloads::{read_msr_trace, write_msr_trace};

const ENCLOSURES: usize = 4;
const EPOCHS: u64 = 6;

/// A small synthetic recording, round-tripped through the MSR CSV
/// format so the parity run exercises the real parser.
fn msr_trace() -> Vec<Request> {
    // Arrivals sit exactly on 100-ns MSR ticks so the CSV round-trip
    // is bit-exact (the format quantizes to FILETIME ticks).
    let recorded: Vec<Request> = (0..400u64)
        .map(|i| {
            Request::new(
                i,
                Seconds::new((i * 110_000) as f64 * 1e-7),
                0,
                (i * 37_199) % (1 << 22),
                if i % 5 == 0 { 64 } else { 8 },
                if i % 3 == 0 { RequestKind::Write } else { RequestKind::Read },
            )
        })
        .collect();
    let mut csv = Vec::new();
    write_msr_trace(&mut csv, &recorded, "src1").expect("write msr");
    let replayed = read_msr_trace(csv.as_slice()).expect("read msr");
    assert_eq!(recorded, replayed, "the CSV round-trip is exact");
    replayed
}

fn ndjson(sink: &mut diskobs::Sink) -> String {
    sink.drain().iter().map(|e| e.to_ndjson_line() + "\n").collect()
}

#[test]
fn msr_replay_drives_fleet_and_twin_identically() {
    let trace = msr_trace();
    let spec = DiskSpec::era(2002, 1, Rpm::new(15_020.0));
    let thermal = DriveThermalSpec::new(Inches::new(3.3), 1);

    // Batch path: a fleet stepped by the scenario driver.
    let mut config = FleetConfig::serial(ENCLOSURES, spec.clone(), thermal, 10.0)
        .expect("fleet config");
    config.routing = diskfleet::RoutingPolicy::ThermalAware {
        envelope: diskthermal::THERMAL_ENVELOPE,
    };
    let mut fleet = Fleet::new(config).expect("fleet builds");
    let mut source = ArrivalSource::replay(trace.clone()).expect("replay source");
    let mut engine = ScenarioEngine::new(Scenario::new());
    let mut fleet_sink = diskobs::Sink::buffer();
    let mut samples = Vec::new();
    run_scenario(
        &mut fleet,
        &mut source,
        &mut engine,
        EPOCHS,
        &mut fleet_sink,
        &mut samples,
    )
    .expect("fleet run");

    // Twin path: the same recording through Twin::with_source. The
    // preset only shapes the fleet; spec/thermal/stream are overridden
    // to match the batch fleet exactly.
    let mut twin_cfg = TwinConfig::preset(workloads::oltp(), ENCLOSURES);
    twin_cfg.spec = spec;
    twin_cfg.thermal = thermal;
    twin_cfg.stream_w_per_k = 10.0;
    let twin_source = ArrivalSource::replay(trace).expect("replay source");
    let mut twin = Twin::with_source(twin_cfg, twin_source).expect("twin builds");
    let mut twin_sink = diskobs::Sink::buffer();
    for _ in 0..EPOCHS {
        twin.advance_epoch_with_sink(&mut twin_sink).expect("advance");
    }

    let fleet_events = ndjson(&mut fleet_sink);
    let twin_events = ndjson(&mut twin_sink);
    assert!(
        fleet_events.contains("RequestComplete"),
        "the replay actually produced traffic"
    );
    assert_eq!(
        fleet_events, twin_events,
        "fleet and twin event streams must be byte-identical"
    );
}
