//! The server contract under concurrency: pinned queries are
//! deterministic however many clients race, misbehaving clients
//! (mid-query disconnects, slow readers) never stall the live twin,
//! fork resources do not leak, and the bounded queue answers
//! `overloaded` instead of queueing unboundedly.

use disktwin::{query_line, ServerConfig, Twin, TwinConfig, TwinServer};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn test_twin() -> Twin {
    let preset = workloads::oltp();
    Twin::new(TwinConfig::preset(preset, 2)).expect("twin builds")
}

fn start_server(cfg: ServerConfig) -> TwinServer {
    TwinServer::start(test_twin(), cfg).expect("server starts")
}

fn wait_for_epoch(server: &TwinServer, epoch: u64) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while server.epoch() < epoch {
        assert!(Instant::now() < deadline, "twin never reached epoch {epoch}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

const QUERY_TIMEOUT: Duration = Duration::from_secs(60);

#[test]
fn pinned_queries_return_byte_identical_answers_across_racing_clients() {
    let server = start_server(ServerConfig {
        epoch_interval_ms: 1,
        ..ServerConfig::default()
    });
    wait_for_epoch(&server, 2);
    let addr = server.addr().to_string();
    let line = r#"{"cmd":"whatif","inlet_delta_c":5.0,"horizon_epochs":2,"at_epoch":2}"#;

    let answers: Vec<String> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let addr = addr.clone();
                s.spawn(move || query_line(&addr, line, QUERY_TIMEOUT).expect("query answers"))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("no panic")).collect()
    });

    assert!(
        answers[0].contains("\"from_epoch\":2"),
        "the answer is pinned to the requested epoch: {}",
        &answers[0][..answers[0].len().min(200)]
    );
    assert_eq!(answers[0], answers[1], "racing clients agree byte-for-byte");
    assert_eq!(answers[1], answers[2], "racing clients agree byte-for-byte");

    // The same pinned query later — after the live twin has moved on —
    // still returns the same bytes.
    wait_for_epoch(&server, 6);
    let again = query_line(&addr, line, QUERY_TIMEOUT).expect("late query answers");
    assert_eq!(answers[0], again, "pinned answers are stable over time");
    server.stop();
}

#[test]
fn disconnects_and_slow_readers_do_not_stall_the_twin_or_leak() {
    let server = start_server(ServerConfig {
        epoch_interval_ms: 1,
        ..ServerConfig::default()
    });
    let addr = server.addr();
    wait_for_epoch(&server, 1);

    // A client that fires a long query and vanishes mid-flight.
    {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.write_all(b"{\"cmd\":\"whatif\",\"traffic_scale\":1.3,\"horizon_epochs\":40}\n")
            .expect("send");
        // Drop without reading the response.
    }

    // A slow reader: sends a query, then sits on the open socket
    // without reading for a while.
    let mut slow = TcpStream::connect(addr).expect("connect");
    slow.write_all(b"{\"cmd\":\"whatif\",\"inlet_delta_c\":2.0,\"horizon_epochs\":2}\n")
        .expect("send");

    // Meanwhile the live twin must keep advancing.
    let before = server.epoch();
    wait_for_epoch(&server, before + 5);

    // The slow reader eventually reads its complete answer.
    let mut reader = BufReader::new(slow.try_clone().expect("clone"));
    let mut line = String::new();
    slow.set_read_timeout(Some(QUERY_TIMEOUT)).expect("timeout");
    reader.read_line(&mut line).expect("slow reader still gets its answer");
    assert!(line.contains("\"perturbed\""), "got a real report: {line}");
    drop(reader);
    drop(slow);

    // Handler threads drain back to zero: no leaked connections.
    let deadline = Instant::now() + Duration::from_secs(30);
    while server.connection_threads() > 0 {
        assert!(
            Instant::now() < deadline,
            "connection handlers leaked: {} still alive",
            server.connection_threads()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    // Forks come in baseline+perturbed pairs; an abandoned query leaks
    // nothing (its forks are plain values dropped with the handler).
    assert_eq!(server.forks() % 2, 0, "forks are created in pairs");
    server.stop();
}

#[test]
fn bounded_queue_answers_overloaded_instead_of_queueing() {
    let server = start_server(ServerConfig {
        epoch_interval_ms: 1,
        max_inflight: 1,
        ..ServerConfig::default()
    });
    wait_for_epoch(&server, 1);
    let addr = server.addr().to_string();
    // Long-horizon queries so the one admitted query occupies the slot
    // while the rest arrive.
    let line = r#"{"cmd":"whatif","traffic_scale":1.1,"horizon_epochs":60}"#;

    let answers: Vec<String> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..6)
            .map(|_| {
                let addr = addr.clone();
                s.spawn(move || query_line(&addr, line, QUERY_TIMEOUT).expect("query answers"))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("no panic")).collect()
    });

    let ok = answers.iter().filter(|a| a.contains("\"perturbed\"")).count();
    let overloaded = answers.iter().filter(|a| a.contains("\"overloaded\"")).count();
    assert_eq!(ok + overloaded, answers.len(), "every answer is typed: {answers:?}");
    assert!(ok >= 1, "at least one query is admitted");
    assert!(overloaded >= 1, "back-pressure must reject past the bound");
    server.stop();
}

#[test]
fn malformed_requests_get_typed_errors_and_shutdown_checkpoints() {
    let dir = std::env::temp_dir().join(format!("disktwin-srv-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let ckpt = dir.join("final.ckpt");
    let server = start_server(ServerConfig {
        epoch_interval_ms: 1,
        checkpoint_path: Some(ckpt.clone()),
        ..ServerConfig::default()
    });
    wait_for_epoch(&server, 1);
    let addr = server.addr().to_string();

    let bad = query_line(&addr, r#"{"cmd":"frobnicate"}"#, QUERY_TIMEOUT).expect("answers");
    assert!(bad.contains("\"bad_query\""), "unknown command is typed: {bad}");
    let garbled = query_line(&addr, "this is not json", QUERY_TIMEOUT).expect("answers");
    assert!(garbled.contains("\"bad_query\""), "parse failure is typed: {garbled}");
    let status = query_line(&addr, r#"{"cmd":"status"}"#, QUERY_TIMEOUT).expect("answers");
    assert!(status.contains("\"enclosures\":2"), "status reports the fleet: {status}");
    let metrics = query_line(&addr, r#"{"cmd":"metrics"}"#, QUERY_TIMEOUT).expect("answers");
    assert!(metrics.contains("\"counters\""), "metrics export the registry: {metrics}");

    // An on-demand checkpoint, then a client-driven shutdown that
    // flushes a final one.
    let ck = query_line(&addr, r#"{"cmd":"checkpoint"}"#, QUERY_TIMEOUT).expect("answers");
    assert!(ck.contains("\"bytes\""), "checkpoint reports its size: {ck}");
    let bye = query_line(&addr, r#"{"cmd":"shutdown"}"#, QUERY_TIMEOUT).expect("answers");
    assert!(bye.contains("\"ok\":true"), "shutdown acknowledges: {bye}");
    server.join();

    let final_state = disktwin::read_checkpoint(&ckpt).expect("final checkpoint readable");
    assert!(final_state.epoch() >= 1, "the final checkpoint is warm");
    std::fs::remove_dir_all(&dir).ok();
}
