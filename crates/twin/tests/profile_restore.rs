//! Temporary profiling harness for the checkpoint restore path.

use disktwin::{encode, Twin, TwinConfig};
use std::time::Instant;

#[test]
#[ignore]
fn profile_restore_breakdown() {
    let mut twin = Twin::new(TwinConfig::preset(workloads::oltp(), 4)).unwrap();
    for _ in 0..2 {
        twin.advance_epoch().unwrap();
    }
    let state = twin.capture_state();
    let encoded = encode(&state).unwrap();
    println!("encoded bytes: {}", encoded.len());

    let reps = 30u32;

    let start = Instant::now();
    for _ in 0..reps {
        let s = disktwin::decode(&encoded).unwrap();
        std::hint::black_box(&s);
    }
    let decode_s = start.elapsed().as_secs_f64();
    println!(
        "decode only: {:.2} ms/op ({:.1}/s)",
        decode_s * 1e3 / f64::from(reps),
        f64::from(reps) / decode_s
    );

    let start = Instant::now();
    for _ in 0..reps {
        let t = Twin::restore_state(state.clone()).unwrap();
        std::hint::black_box(t.epoch());
    }
    let restore_s = start.elapsed().as_secs_f64();
    println!(
        "restore_state only (incl clone): {:.2} ms/op ({:.1}/s)",
        restore_s * 1e3 / f64::from(reps),
        f64::from(reps) / restore_s
    );

    let start = Instant::now();
    for _ in 0..reps {
        let s = state.clone();
        std::hint::black_box(&s);
    }
    let clone_s = start.elapsed().as_secs_f64();
    println!("state clone only: {:.3} ms/op", clone_s * 1e3 / f64::from(reps));

    // JSON parse vs typed deserialize: parse to Value first.
    let body_start = encoded.iter().position(|&b| b == b'\n').unwrap() + 1;
    let body = std::str::from_utf8(&encoded[body_start..encoded.len() - 1]).unwrap();
    let start = Instant::now();
    for _ in 0..reps {
        let v: serde_json::Value = serde_json::from_str(body).unwrap();
        std::hint::black_box(&v);
    }
    let value_s = start.elapsed().as_secs_f64();
    println!("json -> Value: {:.2} ms/op", value_s * 1e3 / f64::from(reps));

    let start = Instant::now();
    for _ in 0..reps {
        let s: disktwin::TwinState = serde_json::from_str(body).unwrap();
        std::hint::black_box(&s);
    }
    let typed_s = start.elapsed().as_secs_f64();
    println!("json -> TwinState: {:.2} ms/op", typed_s * 1e3 / f64::from(reps));
}
