//! The checkpoint file format: a versioned, checksummed, atomically
//! written snapshot of a [`TwinState`](crate::TwinState).
//!
//! Layout (all ASCII header, then the body):
//!
//! ```text
//! DISKTWIN <version> <body-len> <fnv1a-64-hex>\n
//! <body-len bytes of compact JSON>\n
//! ```
//!
//! The header carries the body length and an FNV-1a checksum, so a
//! truncated or bit-flipped file is rejected *before* the JSON parser
//! ever runs — and the parser plus the twin's restore validation guard
//! the rest. Files are written through [`diskobs::AtomicFile`]: bytes
//! land in a `.tmp` sibling, are fsynced, and rename into place, so a
//! crash mid-checkpoint leaves the previous checkpoint intact.

use crate::twin::TwinState;
use std::io::Write;
use std::path::Path;

/// The file-format magic.
pub const CHECKPOINT_MAGIC: &str = "DISKTWIN";

/// The current checkpoint format version. Bump on any incompatible
/// change to [`TwinState`]'s serialized shape.
///
/// History:
/// - 1: initial format.
/// - 2: response statistics moved from one fleet-wide accumulator into
///   per-enclosure folds (the fleet's parallel epoch boundary), so the
///   enclosure states gained a `stats` object and the fleet state lost
///   its own.
/// - 3: the scenario subsystem. The fleet state gained `array`,
///   `rebuilds`, and `ambient_bias`; the twin's `trace` field (a bare
///   synthetic-stream state) became `source` (synthetic stream *or*
///   trace replay) and a pending scenario schedule — injections, fired
///   flags, the traffic factor in force — rides along so a checkpoint
///   taken mid-rebuild or mid-excursion resumes it exactly. Version-2
///   bodies place the stream where `source` now lives, so they cannot
///   be read as version 3; old files fail fast with a typed
///   [`CheckpointError::VersionMismatch`] instead of a JSON parse
///   error.
pub const STATE_VERSION: u32 = 3;

/// Why a checkpoint could not be written or read back.
#[derive(Debug)]
pub enum CheckpointError {
    /// The file could not be read or written.
    Io(String),
    /// The header line is missing or malformed.
    BadHeader(String),
    /// The file is a checkpoint, but of an incompatible version.
    VersionMismatch {
        /// Version found in the header.
        found: u32,
    },
    /// The body is shorter than the header promised.
    Truncated {
        /// Bytes the header promised.
        expected: u64,
        /// Bytes actually present.
        found: u64,
    },
    /// The body's checksum does not match the header.
    ChecksumMismatch,
    /// The body parsed as JSON but not as a twin state.
    BadBody(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(msg) => write!(f, "checkpoint i/o: {msg}"),
            Self::BadHeader(msg) => write!(f, "bad checkpoint header: {msg}"),
            Self::VersionMismatch { found } => write!(
                f,
                "checkpoint version {found} is not the supported version {STATE_VERSION}"
            ),
            Self::Truncated { expected, found } => {
                write!(f, "checkpoint truncated: header promised {expected} body bytes, found {found}")
            }
            Self::ChecksumMismatch => write!(f, "checkpoint body fails its checksum"),
            Self::BadBody(msg) => write!(f, "bad checkpoint body: {msg}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e.to_string())
    }
}

/// FNV-1a over the body bytes: tiny, dependency-free, and plenty to
/// catch truncation and bit rot (this is an integrity check, not an
/// authenticity one).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Serializes a twin state into the checkpoint byte format.
///
/// # Errors
///
/// Returns [`CheckpointError::BadBody`] if serialization itself fails
/// (it does not for any reachable state).
pub fn encode(state: &TwinState) -> Result<Vec<u8>, CheckpointError> {
    let body = serde_json::to_string(state).map_err(|e| CheckpointError::BadBody(e.to_string()))?;
    let mut out = format!(
        "{CHECKPOINT_MAGIC} {STATE_VERSION} {} {:016x}\n",
        body.len(),
        fnv1a(body.as_bytes())
    )
    .into_bytes();
    out.extend_from_slice(body.as_bytes());
    out.push(b'\n');
    Ok(out)
}

/// Parses checkpoint bytes back into a twin state, validating the
/// header, length, and checksum before touching the JSON.
///
/// # Errors
///
/// Every way a corrupted file can fail: [`CheckpointError::BadHeader`],
/// [`CheckpointError::VersionMismatch`], [`CheckpointError::Truncated`],
/// [`CheckpointError::ChecksumMismatch`], [`CheckpointError::BadBody`].
pub fn decode(bytes: &[u8]) -> Result<TwinState, CheckpointError> {
    let newline = bytes
        .iter()
        .position(|&b| b == b'\n')
        .ok_or_else(|| CheckpointError::BadHeader("no header line".into()))?;
    let header = std::str::from_utf8(&bytes[..newline])
        .map_err(|_| CheckpointError::BadHeader("header is not UTF-8".into()))?;
    let mut fields = header.split(' ');
    let magic = fields.next().unwrap_or("");
    if magic != CHECKPOINT_MAGIC {
        return Err(CheckpointError::BadHeader(format!(
            "magic {magic:?} is not {CHECKPOINT_MAGIC:?}"
        )));
    }
    let version: u32 = fields
        .next()
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| CheckpointError::BadHeader("unparsable version".into()))?;
    if version != STATE_VERSION {
        return Err(CheckpointError::VersionMismatch { found: version });
    }
    let body_len: u64 = fields
        .next()
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| CheckpointError::BadHeader("unparsable body length".into()))?;
    let checksum = fields
        .next()
        .and_then(|v| u64::from_str_radix(v, 16).ok())
        .ok_or_else(|| CheckpointError::BadHeader("unparsable checksum".into()))?;
    if fields.next().is_some() {
        return Err(CheckpointError::BadHeader("trailing header fields".into()));
    }

    let body_start = newline + 1;
    let available = (bytes.len() - body_start) as u64;
    // The trailing newline is optional on read; the length field rules.
    let have = available.saturating_sub(u64::from(bytes.last() == Some(&b'\n')));
    if have < body_len {
        return Err(CheckpointError::Truncated {
            expected: body_len,
            found: have,
        });
    }
    let body = &bytes[body_start..body_start + body_len as usize];
    if fnv1a(body) != checksum {
        return Err(CheckpointError::ChecksumMismatch);
    }
    let text =
        std::str::from_utf8(body).map_err(|_| CheckpointError::BadBody("body is not UTF-8".into()))?;
    serde_json::from_str(text).map_err(|e| CheckpointError::BadBody(e.to_string()))
}

/// Writes a checkpoint crash-safely (`.tmp`, fsync, rename) and returns
/// the number of bytes written.
///
/// # Errors
///
/// Propagates encoding and I/O failures; on failure the destination
/// file is untouched.
pub fn write_checkpoint(path: impl AsRef<Path>, state: &TwinState) -> Result<u64, CheckpointError> {
    let bytes = encode(state)?;
    let mut file = diskobs::AtomicFile::create(path)?;
    file.write_all(&bytes)?;
    file.commit()?;
    Ok(bytes.len() as u64)
}

/// Reads a checkpoint file back into a twin state.
///
/// # Errors
///
/// As [`decode`], plus [`CheckpointError::Io`] for unreadable files.
pub fn read_checkpoint(path: impl AsRef<Path>) -> Result<TwinState, CheckpointError> {
    decode(&std::fs::read(path)?)
}
