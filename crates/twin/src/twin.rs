//! The twin itself: a warm fleet plus its arrival stream, advanced one
//! sync epoch at a time, checkpointable between epochs, and forkable
//! for speculative what-if queries.

use crate::checkpoint::STATE_VERSION;
use crate::error::TwinError;
use diskfleet::{
    AirflowGraph, Fleet, FleetConfig, FleetDtmPolicy, FleetState, RebuildSpec, RoutingPolicy,
};
use diskscenario::{
    ArrivalSource, ArrivalSourceState, CoolingScope, Injection, Scenario, ScenarioEngine,
};
use disksim::{DiskSpec, Request};
use diskthermal::DriveThermalSpec;
use serde::{Deserialize, Serialize};
use std::time::Instant;
use units::{Celsius, TempDelta};
use workloads::WorkloadPreset;

/// How a twin is assembled.
#[derive(Debug, Clone)]
pub struct TwinConfig {
    /// Fleet size (serial airflow).
    pub enclosures: usize,
    /// Per-enclosure disk specification.
    pub spec: DiskSpec,
    /// Per-drive thermal geometry.
    pub thermal: DriveThermalSpec,
    /// Cooling-stream capacity rate for the serial airflow graph, W/K.
    pub stream_w_per_k: f64,
    /// Request-placement policy.
    pub routing: RoutingPolicy,
    /// Fleet-level DTM actuation.
    pub dtm: FleetDtmPolicy,
    /// Shards for the fleet's parallel epoch loop.
    pub threads: usize,
    /// Per-enclosure RAID-5 arrays (`None` = one disk per bay). Arrays
    /// are what make the `fail_drive` what-if meaningful: a failed
    /// member degrades its bay and a rebuild storm follows.
    pub array: Option<diskfleet::EnclosureArray>,
    /// The workload whose arrival stream feeds the twin.
    pub workload: WorkloadPreset,
    /// Arrival-stream seed.
    pub seed: u64,
}

impl TwinConfig {
    /// A default twin: the workload's era disks in a serial-airflow
    /// rack, thermal-aware routing, no DTM.
    pub fn preset(workload: WorkloadPreset, enclosures: usize) -> Self {
        let spec = DiskSpec::era(workload.year, workload.platters_per_disk, workload.base_rpm);
        Self {
            enclosures,
            spec,
            thermal: DriveThermalSpec::new(units::Inches::new(3.3), 1),
            stream_w_per_k: 10.0,
            routing: RoutingPolicy::ThermalAware {
                envelope: diskthermal::THERMAL_ENVELOPE,
            },
            dtm: FleetDtmPolicy::None,
            threads: 1,
            array: None,
            workload,
            seed: 42,
        }
    }
}

/// Complete dynamic state of a [`Twin`]: everything needed to continue
/// the simulation byte-identically — the fleet (drives, queues, RNG-free
/// event state, thermal state, coordinator hysteresis, rebuilds and
/// ambient biases), the arrival source (synthetic stream or trace
/// replay), the pending scenario schedule with its fired flags, and the
/// one request drawn ahead of the current epoch boundary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TwinState {
    /// Format version ([`STATE_VERSION`]); checked on restore.
    pub version: u32,
    spec: DiskSpec,
    thermal: DriveThermalSpec,
    stream_w_per_k: f64,
    fleet: FleetState,
    source: ArrivalSourceState,
    scenario: Option<ScenarioEngine>,
    lookahead: Option<Request>,
}

impl TwinState {
    /// The sync epoch this state was captured at — the snapshot's
    /// identity in the server's history ring.
    pub fn epoch(&self) -> u64 {
        self.fleet.epochs()
    }

    /// Simulated time at capture, seconds.
    pub fn time_s(&self) -> f64 {
        self.fleet.now().get()
    }

    /// Number of enclosures the captured fleet carries.
    pub fn enclosures(&self) -> usize {
        self.fleet.enclosures()
    }
}

/// The live digital twin: a fleet kept warm by an endless workload
/// stream, advanced one sync epoch per [`Twin::advance_epoch`] call.
pub struct Twin {
    fleet: Fleet,
    source: ArrivalSource,
    /// Pending injection schedule, applied at each epoch boundary.
    scenario: Option<ScenarioEngine>,
    /// The first request drawn past the current epoch's end; offered at
    /// the start of the next epoch so the stream is consumed exactly
    /// once regardless of where checkpoints land.
    lookahead: Option<Request>,
    spec: DiskSpec,
    thermal: DriveThermalSpec,
    stream_w_per_k: f64,
    profile: diskfleet::FleetPhaseProfile,
}

impl Twin {
    /// Assembles a fresh twin from a configuration, fed by the
    /// configured workload's synthetic stream.
    ///
    /// # Errors
    ///
    /// Propagates fleet and workload construction failures.
    pub fn new(config: TwinConfig) -> Result<Self, TwinError> {
        let source = ArrivalSource::Synthetic(config.workload.stream(config.seed)?);
        Self::with_source(config, source)
    }

    /// Assembles a twin fed by an explicit arrival source — the replay
    /// entry point: the same recorded trace that drives a batch fleet
    /// run drives the twin identically. The config's `workload` and
    /// `seed` only shape the fleet, not the arrivals.
    ///
    /// # Errors
    ///
    /// Propagates fleet construction failures.
    pub fn with_source(config: TwinConfig, source: ArrivalSource) -> Result<Self, TwinError> {
        if !(config.stream_w_per_k.is_finite() && config.stream_w_per_k > 0.0) {
            return Err(TwinError::Config(format!(
                "stream capacity rate must be positive and finite, got {}",
                config.stream_w_per_k
            )));
        }
        let mut fleet_cfg = FleetConfig::serial(
            config.enclosures,
            config.spec.clone(),
            config.thermal,
            config.stream_w_per_k,
        )?;
        fleet_cfg.routing = config.routing;
        fleet_cfg.dtm = config.dtm;
        fleet_cfg.threads = config.threads;
        fleet_cfg.array = config.array;
        let fleet = Fleet::new(fleet_cfg)?;
        Ok(Self {
            fleet,
            source,
            scenario: None,
            lookahead: None,
            spec: config.spec,
            thermal: config.thermal,
            stream_w_per_k: config.stream_w_per_k,
            profile: diskfleet::FleetPhaseProfile::default(),
        })
    }

    /// Installs (or replaces) an injection schedule. Epochs already due
    /// fire at the next [`Self::advance_epoch`]; the schedule's state
    /// — fired flags and the traffic factor in force — rides along in
    /// every checkpoint.
    pub fn set_scenario(&mut self, scenario: Scenario) {
        self.scenario = Some(ScenarioEngine::new(scenario));
    }

    /// The pending schedule's engine, if one is installed.
    pub fn scenario(&self) -> Option<&ScenarioEngine> {
        self.scenario.as_ref()
    }

    /// Advances the twin exactly one sync epoch: applies any scenario
    /// injections due at this boundary, draws every arrival up to the
    /// next epoch boundary from the arrival source, offers them to the
    /// fleet, and steps the fleet's epoch loop (routing, the parallel
    /// window sweep, airflow coupling, coordination).
    ///
    /// # Errors
    ///
    /// Propagates a scenario injection naming a nonexistent enclosure
    /// or disk, or double-failing an array.
    pub fn advance_epoch(&mut self) -> Result<(), TwinError> {
        self.advance_epoch_with_sink(&mut diskobs::Sink::null())
    }

    /// [`Self::advance_epoch`] with an observability sink: the fleet's
    /// event stream (snapshots, boundary events, request lifecycles)
    /// lands in `sink`, byte-identical to a batch fleet run driven from
    /// the same source.
    ///
    /// # Errors
    ///
    /// As [`Self::advance_epoch`].
    pub fn advance_epoch_with_sink(&mut self, sink: &mut diskobs::Sink) -> Result<(), TwinError> {
        if sink.is_enabled() {
            self.fleet.enable_drive_sinks();
        } else {
            self.fleet.disable_drive_sinks();
        }
        if let Some(engine) = &mut self.scenario {
            engine.apply_epoch(&mut self.fleet, &mut self.source)?;
        }
        let epoch_end = self.fleet.now() + self.fleet.epoch_len();
        loop {
            let r = match self.lookahead.take() {
                Some(r) => r,
                None => self.source.next_request(),
            };
            if r.arrival > epoch_end {
                self.lookahead = Some(r);
                break;
            }
            self.fleet.offer(std::iter::once(r));
        }
        self.fleet.step_epoch(sink, &mut self.profile);
        Ok(())
    }

    /// Sync epochs executed so far.
    pub fn epoch(&self) -> u64 {
        self.fleet.epochs()
    }

    /// Current simulated time.
    pub fn now(&self) -> units::Seconds {
        self.fleet.now()
    }

    /// The warm fleet, read-only.
    pub fn fleet(&self) -> &Fleet {
        &self.fleet
    }

    /// Wall-clock profile of the epochs advanced so far.
    pub fn profile(&self) -> diskfleet::FleetPhaseProfile {
        self.profile
    }

    /// Captures the twin's complete dynamic state (an epoch-boundary
    /// snapshot).
    pub fn capture_state(&self) -> TwinState {
        TwinState {
            version: STATE_VERSION,
            spec: self.spec.clone(),
            thermal: self.thermal,
            stream_w_per_k: self.stream_w_per_k,
            fleet: self.fleet.capture_state(),
            source: self.source.capture_state(),
            scenario: self.scenario.clone(),
            lookahead: self.lookahead,
        }
    }

    /// Rebuilds a twin mid-flight from a captured state. Advancing the
    /// restored twin is byte-identical to advancing the original.
    ///
    /// # Errors
    ///
    /// Rejects wrong-version and inconsistent states (the checks that
    /// catch a corrupted checkpoint whose envelope still validates).
    pub fn restore_state(state: TwinState) -> Result<Self, TwinError> {
        if state.version != STATE_VERSION {
            return Err(TwinError::Config(format!(
                "state version {} is not the supported version {STATE_VERSION}",
                state.version
            )));
        }
        if !(state.stream_w_per_k.is_finite() && state.stream_w_per_k > 0.0) {
            return Err(TwinError::Config(format!(
                "stream capacity rate must be positive and finite, got {}",
                state.stream_w_per_k
            )));
        }
        let fleet = Fleet::restore_state(state.fleet)?;
        let source = ArrivalSource::restore_state(state.source).map_err(TwinError::Config)?;
        Ok(Self {
            fleet,
            source,
            scenario: state.scenario,
            lookahead: state.lookahead,
            spec: state.spec,
            thermal: state.thermal,
            stream_w_per_k: state.stream_w_per_k,
            profile: diskfleet::FleetPhaseProfile::default(),
        })
    }

    /// Forks an independent copy: same state, separate future. The
    /// live twin is untouched.
    ///
    /// # Errors
    ///
    /// As [`Self::restore_state`] (never fails for a state captured
    /// from a live twin).
    pub fn fork(&self) -> Result<Self, TwinError> {
        Self::restore_state(self.capture_state())
    }

    // --- Perturbations (applied to forks) ---

    /// Grows the rack by `extra` drives on the same serial airflow.
    ///
    /// # Errors
    ///
    /// Rejects `extra == 0` and absurd growth, and propagates simulator
    /// construction failures.
    pub fn add_drives(&mut self, extra: u64) -> Result<(), TwinError> {
        if extra == 0 {
            return Err(TwinError::BadQuery("add_drives must be positive".into()));
        }
        if extra > 4_096 {
            return Err(TwinError::BadQuery(format!(
                "add_drives {extra} exceeds the 4096-drive cap"
            )));
        }
        let n = self.fleet.len() + extra as usize;
        let graph = AirflowGraph::serial(n, self.fleet.inlet(), self.stream_w_per_k)?;
        self.fleet.add_enclosures(&self.spec, &self.thermal, graph)?;
        Ok(())
    }

    /// Shifts the rack inlet temperature by `delta_c` degrees (the CRAC
    /// setpoint what-if).
    ///
    /// # Errors
    ///
    /// Rejects a non-finite delta.
    pub fn shift_inlet(&mut self, delta_c: f64) -> Result<(), TwinError> {
        if !delta_c.is_finite() {
            return Err(TwinError::BadQuery(format!(
                "inlet_delta_c must be finite, got {delta_c}"
            )));
        }
        let inlet: Celsius = self.fleet.inlet() + TempDelta::new(delta_c);
        self.fleet.set_inlet(inlet);
        Ok(())
    }

    /// Rescales the workload's long-run arrival rate by `factor`,
    /// keeping the stream's clock and burst phase.
    ///
    /// # Errors
    ///
    /// Rejects a non-positive or non-finite factor.
    pub fn scale_traffic(&mut self, factor: f64) -> Result<(), TwinError> {
        if !(factor.is_finite() && factor > 0.0) {
            return Err(TwinError::BadQuery(format!(
                "traffic_scale must be positive and finite, got {factor}"
            )));
        }
        self.source.scale_traffic(factor);
        Ok(())
    }

    /// Fails one RAID-5 member now and starts its rebuild storm (the
    /// degraded-array what-if). The fleet must have been assembled with
    /// per-enclosure arrays.
    ///
    /// # Errors
    ///
    /// Rejects a nonexistent enclosure or disk, a double failure, and
    /// single-disk (non-array) fleets — all typed through the fleet.
    pub fn fail_drive(
        &mut self,
        enclosure: usize,
        disk: u32,
        rebuild: RebuildSpec,
    ) -> Result<(), TwinError> {
        self.fleet.fail_drive(enclosure, disk, rebuild)?;
        Ok(())
    }

    /// Starts a fleet-wide inlet-temperature excursion of `delta_c`
    /// degrees at the next epoch boundary, recovering after
    /// `duration_epochs` (0 = never). Scheduled through the scenario
    /// engine — appended to any installed schedule without disturbing
    /// its fired flags — so it survives checkpoints.
    ///
    /// # Errors
    ///
    /// Rejects a non-finite delta.
    pub fn cooling_event(&mut self, delta_c: f64, duration_epochs: u64) -> Result<(), TwinError> {
        if !delta_c.is_finite() {
            return Err(TwinError::BadQuery(format!(
                "cooling_delta_c must be finite, got {delta_c}"
            )));
        }
        let injection = Injection::CoolingEvent {
            at_epoch: self.fleet.epochs(),
            duration_epochs,
            ramp_epochs: 0,
            delta_c,
            scope: CoolingScope::All,
        };
        self.scenario
            .get_or_insert_with(|| ScenarioEngine::new(Scenario::new()))
            .push(injection);
        Ok(())
    }
}

/// One speculative perturbation, applied to a fork of the live twin.
/// Any combination of the three knobs may be set; none at all is a
/// valid (pure-baseline) query.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct WhatIf {
    /// Extra drives appended to the serial rack.
    pub add_drives: Option<u64>,
    /// Rack-inlet shift in degrees Celsius.
    pub inlet_delta_c: Option<f64>,
    /// Arrival-rate multiplier.
    pub traffic_scale: Option<f64>,
    /// Fail one RAID-5 member: the enclosure holding it (requires an
    /// array fleet; pairs with [`Self::fail_disk`]).
    pub fail_enclosure: Option<usize>,
    /// Member index of the failed disk (defaults to 0 when only
    /// `fail_enclosure` is set).
    pub fail_disk: Option<u32>,
    /// Fleet-wide inlet excursion in degrees Celsius, scheduled at the
    /// fork epoch through the scenario engine.
    pub cooling_delta_c: Option<f64>,
    /// Excursion length in epochs (0 or omitted = the whole horizon).
    pub cooling_epochs: Option<u64>,
}

/// What one fork saw over the query horizon.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ForkOutcome {
    /// Requests completed inside the horizon.
    pub completed: u64,
    /// Mean response time, ms.
    pub mean_ms: f64,
    /// 95th-percentile response time, ms.
    pub p95_ms: f64,
    /// 99th-percentile response time, ms.
    pub p99_ms: f64,
    /// Largest response time, ms.
    pub max_ms: f64,
    /// Response-time CDF at the paper's Figure 4 bucket edges:
    /// `(edge_ms, fraction_at_or_below)`, finite edges only.
    pub cdf: Vec<(f64, f64)>,
    /// Hottest internal air any drive reached during the horizon, °C.
    pub peak_air_c: f64,
    /// Hottest preheated local ambient during the horizon, °C.
    pub peak_local_ambient_c: f64,
    /// Most drives simultaneously under DTM control action.
    pub max_engaged: u64,
    /// Drive-seconds of admission gating accumulated over the horizon.
    pub gated_s: f64,
    /// Drive-seconds spent downshifted over the horizon.
    pub scaled_s: f64,
}

/// Answer to a what-if query: the baseline fork and the perturbed fork
/// advanced over the same horizon from the same snapshot, plus the
/// headline deltas.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WhatIfReport {
    /// The snapshot epoch both forks started from.
    pub from_epoch: u64,
    /// Simulated time at the fork point, seconds.
    pub from_time_s: f64,
    /// Sync epochs each fork advanced.
    pub horizon_epochs: u64,
    /// The perturbation that was applied.
    pub query: WhatIf,
    /// The unperturbed fork.
    pub baseline: ForkOutcome,
    /// The perturbed fork.
    pub perturbed: ForkOutcome,
    /// `perturbed.peak_air_c − baseline.peak_air_c`.
    pub peak_air_delta_c: f64,
    /// `perturbed.mean_ms − baseline.mean_ms`.
    pub mean_response_delta_ms: f64,
    /// `perturbed.p99_ms − baseline.p99_ms`.
    pub p99_response_delta_ms: f64,
    /// `perturbed.max_engaged − baseline.max_engaged`.
    pub engaged_delta: i64,
    /// `perturbed.gated_s − baseline.gated_s`.
    pub gated_delta_s: f64,
}

/// Advances one fork over the horizon, tracking peaks epoch by epoch.
fn run_fork(
    twin: &mut Twin,
    horizon: u64,
    deadline: Option<Instant>,
) -> Result<ForkOutcome, TwinError> {
    twin.fleet.reset_stats();
    let before = twin.fleet.report();
    let mut peak_air = twin.fleet.peak_air();
    let mut peak_ambient = twin.fleet.peak_local_ambient();
    let mut max_engaged = twin.fleet.engaged_count();
    for _ in 0..horizon {
        if let Some(d) = deadline {
            if Instant::now() >= d {
                return Err(TwinError::Timeout);
            }
        }
        twin.advance_epoch()?;
        peak_air = peak_air.max(twin.fleet.peak_air());
        peak_ambient = peak_ambient.max(twin.fleet.peak_local_ambient());
        max_engaged = max_engaged.max(twin.fleet.engaged_count());
    }
    let after = twin.fleet.report();
    let sum_gated = |r: &diskfleet::FleetReport| {
        r.per_enclosure.iter().map(|e| e.time_gated.get()).sum::<f64>()
    };
    let sum_scaled = |r: &diskfleet::FleetReport| {
        r.per_enclosure.iter().map(|e| e.time_scaled.get()).sum::<f64>()
    };
    let stats = twin.fleet.stats();
    Ok(ForkOutcome {
        completed: stats.count(),
        mean_ms: stats.mean().to_millis(),
        p95_ms: stats.percentile(95.0).to_millis(),
        p99_ms: stats.percentile(99.0).to_millis(),
        max_ms: stats.max().to_millis(),
        cdf: stats.cdf().into_iter().filter(|(edge, _)| edge.is_finite()).collect(),
        peak_air_c: peak_air.get(),
        peak_local_ambient_c: peak_ambient.get(),
        max_engaged: max_engaged as u64,
        gated_s: sum_gated(&after) - sum_gated(&before),
        scaled_s: sum_scaled(&after) - sum_scaled(&before),
    })
}

/// Answers a what-if query against a snapshot: forks it twice, applies
/// the perturbation to one fork, advances both `horizon_epochs`, and
/// reports both outcomes plus the deltas. The snapshot is never
/// mutated, so any number of queries can run concurrently against the
/// same (or different) snapshots while the live twin keeps advancing.
///
/// # Errors
///
/// Rejects malformed perturbations, propagates restore failures, and
/// returns [`TwinError::Timeout`] when `deadline` passes mid-horizon.
pub fn whatif(
    state: &TwinState,
    query: &WhatIf,
    horizon_epochs: u64,
    deadline: Option<Instant>,
) -> Result<WhatIfReport, TwinError> {
    if horizon_epochs == 0 {
        return Err(TwinError::BadQuery("horizon_epochs must be positive".into()));
    }
    if horizon_epochs > 100_000 {
        return Err(TwinError::BadQuery(format!(
            "horizon_epochs {horizon_epochs} exceeds the 100000-epoch cap"
        )));
    }
    let mut baseline = Twin::restore_state(state.clone())?;
    let mut perturbed = Twin::restore_state(state.clone())?;
    if let Some(extra) = query.add_drives {
        perturbed.add_drives(extra)?;
    }
    if let Some(delta) = query.inlet_delta_c {
        perturbed.shift_inlet(delta)?;
    }
    if let Some(factor) = query.traffic_scale {
        perturbed.scale_traffic(factor)?;
    }
    if query.fail_enclosure.is_some() || query.fail_disk.is_some() {
        let enclosure = query.fail_enclosure.ok_or_else(|| {
            TwinError::BadQuery("fail_disk needs fail_enclosure".into())
        })?;
        perturbed.fail_drive(enclosure, query.fail_disk.unwrap_or(0), RebuildSpec::default())?;
    }
    if let Some(delta) = query.cooling_delta_c {
        perturbed.cooling_event(delta, query.cooling_epochs.unwrap_or(0))?;
    }
    let from_epoch = baseline.epoch();
    let from_time_s = baseline.now().get();
    let base = run_fork(&mut baseline, horizon_epochs, deadline)?;
    let pert = run_fork(&mut perturbed, horizon_epochs, deadline)?;
    Ok(WhatIfReport {
        from_epoch,
        from_time_s,
        horizon_epochs,
        query: *query,
        peak_air_delta_c: pert.peak_air_c - base.peak_air_c,
        mean_response_delta_ms: pert.mean_ms - base.mean_ms,
        p99_response_delta_ms: pert.p99_ms - base.p99_ms,
        engaged_delta: pert.max_engaged as i64 - base.max_engaged as i64,
        gated_delta_s: pert.gated_s - base.gated_s,
        baseline: base,
        perturbed: pert,
    })
}
