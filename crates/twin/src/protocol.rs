//! The wire protocol: line-delimited JSON over TCP.
//!
//! Each request is one compact JSON object on one line; each response
//! is one JSON object on one line. Commands:
//!
//! | `cmd`        | fields                                                        | response |
//! |--------------|---------------------------------------------------------------|----------|
//! | `status`     | —                                                             | [`StatusMsg`] |
//! | `whatif`     | `add_drives`, `inlet_delta_c`, `traffic_scale`, `fail_enclosure`, `fail_disk`, `cooling_delta_c`, `cooling_epochs`, `horizon_epochs`, `at_epoch` | [`WhatIfReport`](crate::WhatIfReport) |
//! | `checkpoint` | —                                                             | [`CheckpointMsg`] |
//! | `metrics`    | —                                                             | the server's metrics registry |
//! | `shutdown`   | —                                                             | [`OkMsg`] |
//!
//! Errors come back as `{"error":{"kind":...,"message":...}}` — see
//! [`ErrorMsg`]. Pinning `at_epoch` makes a what-if answer a pure
//! function of the server's configuration: the same query against the
//! same epoch returns byte-identical JSON, however many clients race.

use crate::error::TwinError;
use serde::{Deserialize, Serialize};

/// One parsed request line.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct QueryMsg {
    /// The command: `status`, `whatif`, `checkpoint`, `metrics`, or
    /// `shutdown`.
    pub cmd: String,
    /// `whatif`: extra drives appended to the serial rack.
    pub add_drives: Option<u64>,
    /// `whatif`: rack-inlet shift, °C.
    pub inlet_delta_c: Option<f64>,
    /// `whatif`: arrival-rate multiplier.
    pub traffic_scale: Option<f64>,
    /// `whatif`: fail a RAID-5 member in this enclosure (array fleets
    /// only).
    pub fail_enclosure: Option<usize>,
    /// `whatif`: member index of the failed disk (default 0).
    pub fail_disk: Option<u32>,
    /// `whatif`: fleet-wide inlet excursion, °C, starting at the fork
    /// epoch.
    pub cooling_delta_c: Option<f64>,
    /// `whatif`: excursion length in epochs (0/omitted = whole
    /// horizon).
    pub cooling_epochs: Option<u64>,
    /// `whatif`: fork horizon in sync epochs (server default when
    /// omitted).
    pub horizon_epochs: Option<u64>,
    /// `whatif`: pin the query to this snapshot epoch. Omitted: the
    /// freshest snapshot. Pinned queries are deterministic across runs.
    pub at_epoch: Option<u64>,
}

/// The body of an error response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErrorBody {
    /// Stable machine-readable kind (`overloaded`, `timeout`, …).
    pub kind: String,
    /// Human-readable detail.
    pub message: String,
}

/// An error response line: `{"error":{...}}`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErrorMsg {
    /// The error.
    pub error: ErrorBody,
}

impl ErrorMsg {
    /// Wraps a twin error for the wire.
    pub fn from_error(e: &TwinError) -> Self {
        Self {
            error: ErrorBody {
                kind: e.kind().to_string(),
                message: e.to_string(),
            },
        }
    }
}

/// Response to `status`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatusMsg {
    /// Freshest snapshot epoch.
    pub epoch: u64,
    /// Simulated time at that epoch, seconds.
    pub sim_time_s: f64,
    /// Hottest internal air across the fleet, °C.
    pub peak_air_c: f64,
    /// Drives currently under DTM control action.
    pub engaged: u64,
    /// Fleet size.
    pub enclosures: u64,
    /// What-if queries currently executing.
    pub inflight: u64,
    /// Oldest snapshot epoch still in the history ring.
    pub oldest_epoch: u64,
}

/// Response to `checkpoint`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckpointMsg {
    /// Where the checkpoint landed.
    pub path: String,
    /// Checkpoint size in bytes.
    pub bytes: u64,
    /// Serialization plus write time, ms.
    pub duration_ms: f64,
    /// The epoch that was checkpointed.
    pub epoch: u64,
}

/// Response to `shutdown`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OkMsg {
    /// Always true.
    pub ok: bool,
}
