//! Twin-level errors.

use crate::checkpoint::CheckpointError;

/// Everything that can go wrong running or querying a twin.
#[derive(Debug)]
pub enum TwinError {
    /// A bad twin or server configuration.
    Config(String),
    /// A malformed or out-of-range query.
    BadQuery(String),
    /// The bounded query queue is full; retry later.
    Overloaded,
    /// The query exceeded its deadline.
    Timeout,
    /// The requested snapshot epoch has already left the history ring.
    Evicted(u64),
    /// A simulator failure surfaced through the fleet.
    Sim(String),
    /// A checkpoint could not be written or read.
    Checkpoint(CheckpointError),
    /// A socket or file failure.
    Io(String),
}

impl std::fmt::Display for TwinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Config(msg) => write!(f, "bad twin configuration: {msg}"),
            Self::BadQuery(msg) => write!(f, "bad query: {msg}"),
            Self::Overloaded => write!(f, "query queue full; retry later"),
            Self::Timeout => write!(f, "query exceeded its deadline"),
            Self::Evicted(epoch) => {
                write!(f, "snapshot for epoch {epoch} has left the history ring")
            }
            Self::Sim(msg) => write!(f, "simulation failure: {msg}"),
            Self::Checkpoint(e) => write!(f, "checkpoint failure: {e}"),
            Self::Io(msg) => write!(f, "i/o failure: {msg}"),
        }
    }
}

impl std::error::Error for TwinError {}

impl TwinError {
    /// The stable machine-readable kind tag the wire protocol reports.
    pub fn kind(&self) -> &'static str {
        match self {
            Self::Config(_) => "config",
            Self::BadQuery(_) => "bad_query",
            Self::Overloaded => "overloaded",
            Self::Timeout => "timeout",
            Self::Evicted(_) => "evicted",
            Self::Sim(_) => "sim",
            Self::Checkpoint(_) => "checkpoint",
            Self::Io(_) => "io",
        }
    }
}

impl From<disksim::SimError> for TwinError {
    fn from(e: disksim::SimError) -> Self {
        Self::Sim(e.to_string())
    }
}

impl From<diskfleet::FleetError> for TwinError {
    fn from(e: diskfleet::FleetError) -> Self {
        Self::Sim(e.to_string())
    }
}

impl From<CheckpointError> for TwinError {
    fn from(e: CheckpointError) -> Self {
        Self::Checkpoint(e)
    }
}

impl From<std::io::Error> for TwinError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e.to_string())
    }
}
