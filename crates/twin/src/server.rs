//! The what-if server: a thread that keeps the twin warm, an acceptor,
//! and one handler thread per client connection.
//!
//! Concurrency model: the epoch thread owns the live [`Twin`] outright
//! and publishes an immutable `Arc<TwinState>` snapshot into a bounded
//! history ring after every epoch. Queries never touch the live twin —
//! they clone an `Arc` out of the ring and fork from it — so a slow,
//! stalled, or disconnecting client can never stall the epoch loop.
//! Back-pressure is a bounded in-flight query count: past the limit,
//! `whatif` requests get an immediate typed `overloaded` error instead
//! of queueing unboundedly.

use crate::checkpoint::write_checkpoint;
use crate::error::TwinError;
use crate::protocol::{CheckpointMsg, ErrorMsg, OkMsg, QueryMsg, StatusMsg};
use crate::twin::{whatif, Twin, TwinState, WhatIf};
use diskobs::{LogHistogram, Registry};
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How the server runs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// What-if queries allowed to execute at once; further queries get
    /// a typed `overloaded` error (bounded queue back-pressure).
    pub max_inflight: usize,
    /// Per-query deadline, ms. Checked between fork epochs, so a
    /// runaway query stops at the next epoch boundary.
    pub query_timeout_ms: u64,
    /// Epoch-boundary snapshots retained for `at_epoch` pinning.
    pub snapshot_history: usize,
    /// Wall-clock pacing between live epochs, ms (0 = flat out).
    pub epoch_interval_ms: u64,
    /// Fork horizon when a query does not name one.
    pub default_horizon: u64,
    /// Where `checkpoint` requests and the final shutdown checkpoint
    /// land; `None` disables both.
    pub checkpoint_path: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            max_inflight: 4,
            query_timeout_ms: 30_000,
            snapshot_history: 128,
            epoch_interval_ms: 5,
            default_horizon: 8,
            checkpoint_path: None,
        }
    }
}

/// State shared between the epoch thread, the acceptor, and handlers.
struct Shared {
    cfg: ServerConfig,
    addr: SocketAddr,
    /// Epoch-boundary snapshots, oldest first.
    ring: Mutex<VecDeque<(u64, Arc<TwinState>)>>,
    /// Signalled whenever a fresh snapshot lands (and on stop).
    fresh: Condvar,
    stop: AtomicBool,
    /// What-if queries currently executing (the bounded queue).
    inflight: AtomicUsize,
    /// Live connection-handler threads (leak check for tests).
    conn_threads: AtomicUsize,
    /// Twin forks created so far (2 per answered what-if).
    forks: AtomicU64,
    metrics: Mutex<Registry>,
}

impl Shared {
    fn ring_lock(&self) -> MutexGuard<'_, VecDeque<(u64, Arc<TwinState>)>> {
        self.ring.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn metrics_lock(&self) -> MutexGuard<'_, Registry> {
        self.metrics.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Decrements the in-flight count however the query exits.
struct InflightGuard<'a>(&'a AtomicUsize);

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// A running what-if server. Dropping it (or calling
/// [`TwinServer::stop`]) shuts the server down gracefully, flushing a
/// final checkpoint when one is configured.
pub struct TwinServer {
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    epoch: Option<JoinHandle<()>>,
}

impl TwinServer {
    /// Binds, publishes the twin's initial snapshot, and starts the
    /// epoch and acceptor threads.
    ///
    /// # Errors
    ///
    /// Propagates bind failures and configuration mistakes.
    pub fn start(twin: Twin, cfg: ServerConfig) -> Result<Self, TwinError> {
        if cfg.max_inflight == 0 {
            return Err(TwinError::Config("max_inflight must be positive".into()));
        }
        if cfg.snapshot_history == 0 {
            return Err(TwinError::Config("snapshot_history must be positive".into()));
        }
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            cfg,
            addr,
            ring: Mutex::new(VecDeque::new()),
            fresh: Condvar::new(),
            stop: AtomicBool::new(false),
            inflight: AtomicUsize::new(0),
            conn_threads: AtomicUsize::new(0),
            forks: AtomicU64::new(0),
            metrics: Mutex::new(Registry::new()),
        });

        // The warm twin is queryable from epoch zero.
        publish(&shared, Arc::new(twin.capture_state()));

        let epoch = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("twin-epoch".into())
                .spawn(move || epoch_loop(twin, &shared))
                .map_err(|e| TwinError::Io(e.to_string()))?
        };
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("twin-accept".into())
                .spawn(move || accept_loop(&listener, &shared))
                .map_err(|e| TwinError::Io(e.to_string()))?
        };
        Ok(Self {
            shared,
            accept: Some(accept),
            epoch: Some(epoch),
        })
    }

    /// The bound address (read the ephemeral port from here).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Freshest published snapshot epoch.
    pub fn epoch(&self) -> u64 {
        self.shared.ring_lock().back().map_or(0, |(e, _)| *e)
    }

    /// Live connection-handler threads (returns to zero once every
    /// client has disconnected — the leak check tests pin).
    pub fn connection_threads(&self) -> usize {
        self.shared.conn_threads.load(Ordering::SeqCst)
    }

    /// Twin forks created so far (two per answered what-if query).
    pub fn forks(&self) -> u64 {
        self.shared.forks.load(Ordering::SeqCst)
    }

    /// The server's metrics registry as compact JSON.
    pub fn metrics_json(&self) -> String {
        serde_json::to_string(&*self.shared.metrics_lock()).unwrap_or_default()
    }

    /// Blocks until the server stops (a client sends `shutdown`), then
    /// completes the graceful teardown.
    pub fn join(mut self) {
        self.teardown(false);
    }

    /// Requests shutdown and completes the graceful teardown: the epoch
    /// thread flushes a final checkpoint (when configured), the
    /// acceptor exits, and handler threads drain.
    pub fn stop(mut self) {
        self.teardown(true);
    }

    fn teardown(&mut self, request_stop: bool) {
        if request_stop {
            request_shutdown(&self.shared);
        }
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.epoch.take() {
            let _ = h.join();
        }
        // Handlers hold only an Arc<Shared>; give stragglers a moment
        // to notice the closed sockets and unwind.
        let deadline = Instant::now() + Duration::from_secs(2);
        while self.shared.conn_threads.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
    }
}

impl Drop for TwinServer {
    fn drop(&mut self) {
        if self.accept.is_some() || self.epoch.is_some() {
            self.teardown(true);
        }
    }
}

/// Flags the stop and unblocks everything that might be waiting: the
/// condvar waiters and the blocking `accept`.
fn request_shutdown(shared: &Shared) {
    shared.stop.store(true, Ordering::SeqCst);
    shared.fresh.notify_all();
    // Poke the acceptor out of its blocking accept().
    let _ = TcpStream::connect(shared.addr);
}

/// Publishes one snapshot into the history ring.
fn publish(shared: &Shared, state: Arc<TwinState>) {
    let mut ring = shared.ring_lock();
    ring.push_back((state.epoch(), state));
    while ring.len() > shared.cfg.snapshot_history {
        ring.pop_front();
    }
    drop(ring);
    shared.fresh.notify_all();
}

/// The epoch thread: advances the live twin, publishes snapshots, and
/// flushes the final checkpoint on the way out.
fn epoch_loop(mut twin: Twin, shared: &Shared) {
    let interval = Duration::from_millis(shared.cfg.epoch_interval_ms);
    while !shared.stop.load(Ordering::SeqCst) {
        if let Err(e) = twin.advance_epoch() {
            // A bad injection schedule cannot be recovered mid-flight;
            // stop advancing and let the final checkpoint capture the
            // last good boundary.
            diskobs::logger::info(&format!("epoch loop stopped: {e}"));
            break;
        }
        let state = Arc::new(twin.capture_state());
        {
            let mut m = shared.metrics_lock();
            m.gauge_set("twin_epoch", state.epoch() as f64);
            m.gauge_set("twin_sim_time_s", state.time_s());
            m.gauge_set("twin_peak_air_c", twin.fleet().peak_air().get());
            m.gauge_set("twin_engaged", twin.fleet().engaged_count() as f64);
        }
        publish(shared, state);
        if !interval.is_zero() {
            std::thread::sleep(interval);
        }
    }
    if let Some(path) = shared.cfg.checkpoint_path.clone() {
        let started = Instant::now();
        match write_checkpoint(&path, &twin.capture_state()) {
            Ok(bytes) => {
                let mut m = shared.metrics_lock();
                m.gauge_set("twin_checkpoint_bytes", bytes as f64);
                m.gauge_set("twin_checkpoint_ms", started.elapsed().as_secs_f64() * 1e3);
                m.count("twin_checkpoints", 1);
            }
            Err(e) => diskobs::logger::info(&format!(
                "final checkpoint to {} failed: {e}",
                path.display()
            )),
        }
    }
}

/// The acceptor: one handler thread per connection.
fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        shared.conn_threads.fetch_add(1, Ordering::SeqCst);
        let worker = Arc::clone(shared);
        let result = std::thread::Builder::new().name("twin-conn".into()).spawn(move || {
            handle_conn(stream, &worker);
            worker.conn_threads.fetch_sub(1, Ordering::SeqCst);
        });
        if result.is_err() {
            shared.conn_threads.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

/// Serializes any response type onto one line. A failed write just ends
/// the connection — the client went away.
fn reply<T: serde::Serialize>(stream: &mut TcpStream, msg: &T) -> bool {
    let line = serde_json::to_string(msg).unwrap_or_default();
    stream
        .write_all(line.as_bytes())
        .and_then(|()| stream.write_all(b"\n"))
        .is_ok()
}

fn reply_err(stream: &mut TcpStream, e: &TwinError) -> bool {
    reply(stream, &ErrorMsg::from_error(e))
}

/// One client connection: read a line, answer a line, until EOF,
/// error, timeout, or shutdown.
fn handle_conn(stream: TcpStream, shared: &Arc<Shared>) {
    let io_timeout = Duration::from_millis(shared.cfg.query_timeout_ms.max(100));
    // A silent or stalled peer times the socket out; the handler exits
    // instead of holding a thread (and the epoch loop never notices).
    let _ = stream.set_read_timeout(Some(io_timeout));
    let _ = stream.set_write_timeout(Some(io_timeout));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return,          // client closed
            Ok(_) => {}
            Err(_) => return,         // timeout or reset
        }
        if line.trim().is_empty() {
            continue;
        }
        let msg: QueryMsg = match serde_json::from_str(line.trim()) {
            Ok(m) => m,
            Err(e) => {
                if !reply_err(&mut writer, &TwinError::BadQuery(e.to_string())) {
                    return;
                }
                continue;
            }
        };
        let keep_going = match msg.cmd.as_str() {
            "status" => handle_status(&mut writer, shared),
            "whatif" => handle_whatif(&mut writer, shared, &msg),
            "checkpoint" => handle_checkpoint(&mut writer, shared),
            "metrics" => {
                let json = serde_json::to_string(&*shared.metrics_lock()).unwrap_or_default();
                writer
                    .write_all(json.as_bytes())
                    .and_then(|()| writer.write_all(b"\n"))
                    .is_ok()
            }
            "shutdown" => {
                // Acknowledge first, then stop taking input on this
                // connection regardless of whether the ack landed.
                reply(&mut writer, &OkMsg { ok: true });
                request_shutdown(shared);
                false
            }
            other => reply_err(
                &mut writer,
                &TwinError::BadQuery(format!("unknown command {other:?}")),
            ),
        };
        if !keep_going || shared.stop.load(Ordering::SeqCst) {
            return;
        }
    }
}

fn handle_status(writer: &mut TcpStream, shared: &Shared) -> bool {
    let (epoch, oldest, state) = {
        let ring = shared.ring_lock();
        let newest = ring.back().map(|(e, s)| (*e, Arc::clone(s)));
        let oldest = ring.front().map_or(0, |(e, _)| *e);
        match newest {
            Some((e, s)) => (e, oldest, s),
            None => return reply_err(writer, &TwinError::Io("no snapshot yet".into())),
        }
    };
    let (peak_air_c, engaged) = {
        let m = shared.metrics_lock();
        (
            m.gauge("twin_peak_air_c").unwrap_or(0.0),
            m.gauge("twin_engaged").unwrap_or(0.0) as u64,
        )
    };
    let msg = StatusMsg {
        epoch,
        sim_time_s: state.time_s(),
        peak_air_c,
        engaged,
        enclosures: state.enclosures() as u64,
        inflight: shared.inflight.load(Ordering::SeqCst) as u64,
        oldest_epoch: oldest,
    };
    reply(writer, &msg)
}

fn handle_checkpoint(writer: &mut TcpStream, shared: &Shared) -> bool {
    let Some(path) = shared.cfg.checkpoint_path.clone() else {
        return reply_err(
            writer,
            &TwinError::Config("no checkpoint path configured".into()),
        );
    };
    let state = match shared.ring_lock().back().map(|(_, s)| Arc::clone(s)) {
        Some(s) => s,
        None => return reply_err(writer, &TwinError::Io("no snapshot yet".into())),
    };
    let started = Instant::now();
    match write_checkpoint(&path, &state) {
        Ok(bytes) => {
            let duration_ms = started.elapsed().as_secs_f64() * 1e3;
            let mut m = shared.metrics_lock();
            m.gauge_set("twin_checkpoint_bytes", bytes as f64);
            m.gauge_set("twin_checkpoint_ms", duration_ms);
            m.count("twin_checkpoints", 1);
            drop(m);
            reply(
                writer,
                &CheckpointMsg {
                    path: path.display().to_string(),
                    bytes,
                    duration_ms,
                    epoch: state.epoch(),
                },
            )
        }
        Err(e) => reply_err(writer, &TwinError::Checkpoint(e)),
    }
}

fn handle_whatif(writer: &mut TcpStream, shared: &Shared, msg: &QueryMsg) -> bool {
    // Bounded queue: admission first, so an overloaded server answers
    // instantly instead of queueing the fork work.
    if shared.inflight.fetch_add(1, Ordering::SeqCst) >= shared.cfg.max_inflight {
        shared.inflight.fetch_sub(1, Ordering::SeqCst);
        shared.metrics_lock().count("twin_overloaded", 1);
        return reply_err(writer, &TwinError::Overloaded);
    }
    let _guard = InflightGuard(&shared.inflight);
    let started = Instant::now();
    let deadline = started + Duration::from_millis(shared.cfg.query_timeout_ms);
    let result = select_snapshot(shared, msg.at_epoch, deadline).and_then(|state| {
        let query = WhatIf {
            add_drives: msg.add_drives,
            inlet_delta_c: msg.inlet_delta_c,
            traffic_scale: msg.traffic_scale,
            fail_enclosure: msg.fail_enclosure,
            fail_disk: msg.fail_disk,
            cooling_delta_c: msg.cooling_delta_c,
            cooling_epochs: msg.cooling_epochs,
        };
        let horizon = msg.horizon_epochs.unwrap_or(shared.cfg.default_horizon);
        whatif(&state, &query, horizon, Some(deadline))
    });
    match result {
        Ok(report) => {
            shared.forks.fetch_add(2, Ordering::SeqCst);
            let mut m = shared.metrics_lock();
            m.count("twin_queries", 1);
            m.count("twin_forks", 2);
            m.observe(
                "twin_query_ms",
                started.elapsed().as_secs_f64() * 1e3,
                LogHistogram::response_ms,
            );
            drop(m);
            reply(writer, &report)
        }
        Err(e) => {
            shared.metrics_lock().count("twin_query_errors", 1);
            reply_err(writer, &e)
        }
    }
}

/// Picks the snapshot a query runs against: the freshest one, or — when
/// pinned with `at_epoch` — exactly that epoch, waiting (up to the
/// deadline) for the live twin to reach it and failing typed when the
/// ring has already evicted it.
fn select_snapshot(
    shared: &Shared,
    at_epoch: Option<u64>,
    deadline: Instant,
) -> Result<Arc<TwinState>, TwinError> {
    let mut ring = shared.ring_lock();
    loop {
        match at_epoch {
            None => {
                if let Some((_, s)) = ring.back() {
                    return Ok(Arc::clone(s));
                }
            }
            Some(epoch) => {
                if let Some((_, s)) = ring.iter().find(|(e, _)| *e == epoch) {
                    return Ok(Arc::clone(s));
                }
                if ring.front().is_some_and(|(oldest, _)| *oldest > epoch) {
                    return Err(TwinError::Evicted(epoch));
                }
            }
        }
        if shared.stop.load(Ordering::SeqCst) {
            return Err(TwinError::Io("server stopping".into()));
        }
        let left = deadline.saturating_duration_since(Instant::now());
        if left.is_zero() {
            return Err(TwinError::Timeout);
        }
        let (guard, _) = shared
            .fresh
            .wait_timeout(ring, left.min(Duration::from_millis(50)))
            .unwrap_or_else(|e| e.into_inner());
        ring = guard;
    }
}

/// A tiny blocking client for the protocol — `lab twin query`, the
/// smoke tests, and doctests all speak through this.
///
/// # Errors
///
/// Propagates connection and I/O failures; a response line is returned
/// verbatim (errors from the server are JSON on that line).
pub fn query_line(addr: &str, line: &str, timeout: Duration) -> Result<String, TwinError> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    stream.write_all(line.trim().as_bytes())?;
    stream.write_all(b"\n")?;
    let mut reader = BufReader::new(stream);
    let mut response = String::new();
    reader.read_line(&mut response)?;
    Ok(response.trim_end().to_string())
}
