//! `disktwin`: a digital-twin what-if service for the thermal fleet
//! simulator.
//!
//! The twin keeps a warm simulated fleet advancing in the background —
//! the same deterministic disksim/thermal/DTM/fleet stack the batch
//! experiments run — and answers speculative *what-if* queries from
//! concurrent clients without ever pausing the live simulation:
//!
//! - *"What if we added 200 drives to this rack?"* (`add_drives`)
//! - *"What if the CRAC inlet rose 5 °C?"* (`inlet_delta_c`)
//! - *"What if traffic grew 30%?"* (`traffic_scale`)
//!
//! Each query forks the live twin's latest epoch-boundary snapshot
//! twice — one baseline fork, one perturbed fork — advances both over
//! the same horizon on an isolated copy of the state, and reports peak
//! temperatures, the response-time CDF, and DTM engagement, plus the
//! deltas between the forks.
//!
//! Three properties make this sound:
//!
//! 1. **Complete state capture.** [`TwinState`] serializes everything
//!    that survives an epoch boundary — drive thermal state, event
//!    queues and slabs, coordinator hysteresis, router cursor, the
//!    arrival stream's RNG and clock, response statistics, and the one
//!    lookahead request drawn past the boundary. Restoring a checkpoint
//!    and advancing is byte-identical to never having checkpointed
//!    (pinned by proptests across every workload preset).
//! 2. **Fork isolation.** Forks restore from an immutable snapshot
//!    (`Arc<TwinState>`); the live twin is owned by a single thread and
//!    never blocks on queries.
//! 3. **Deterministic answers.** A query pinned to a snapshot epoch is
//!    a pure function of the server configuration: the same query at
//!    the same epoch returns byte-identical JSON across runs and across
//!    racing clients.
//!
//! Checkpoints are versioned, checksummed, and written atomically
//! ([`checkpoint`]); the TCP server ([`server`]) speaks line-delimited
//! JSON ([`protocol`]) with bounded-queue back-pressure, per-query
//! deadlines, and a graceful shutdown that flushes a final checkpoint.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod error;
pub mod protocol;
pub mod server;
pub mod twin;

pub use checkpoint::{
    decode, encode, read_checkpoint, write_checkpoint, CheckpointError, CHECKPOINT_MAGIC,
    STATE_VERSION,
};
pub use error::TwinError;
pub use protocol::{CheckpointMsg, ErrorBody, ErrorMsg, OkMsg, QueryMsg, StatusMsg};
pub use server::{query_line, ServerConfig, TwinServer};
pub use twin::{whatif, ForkOutcome, Twin, TwinConfig, TwinState, WhatIf, WhatIfReport};
