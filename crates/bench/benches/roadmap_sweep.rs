//! Criterion benchmarks of the roadmap generators (§4 machinery): the
//! Table 3 sweep and the full Figure 2 envelope roadmap.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dtm::{slack_table, SlackConfig};
use roadmap::{envelope_roadmap, required_rpm_table, RoadmapConfig};

fn bench_table3(c: &mut Criterion) {
    let cfg = RoadmapConfig::default();
    c.bench_function("table3_required_rpm_sweep", |b| {
        b.iter(|| required_rpm_table(black_box(&cfg)).len())
    });
}

fn bench_figure2(c: &mut Criterion) {
    let cfg = RoadmapConfig::default();
    c.bench_function("figure2_envelope_roadmap", |b| {
        b.iter(|| envelope_roadmap(black_box(&cfg)).len())
    });
}

fn bench_slack(c: &mut Criterion) {
    let cfg = SlackConfig::default();
    c.bench_function("figure5_slack_table", |b| {
        b.iter(|| slack_table(black_box(&cfg)).len())
    });
}

criterion_group!(benches, bench_table3, bench_figure2, bench_slack);
criterion_main!(benches);
