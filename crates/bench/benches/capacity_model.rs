//! Criterion benchmarks of the capacity model (§3.1 machinery): zone
//! table construction, full-drive capacity accounting and LBA mapping.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use diskgeom::{DriveGeometry, Platter, RecordingTech, ZoneTable};
use units::{BitsPerInch, Inches, TracksPerInch};

fn tech_2002() -> RecordingTech {
    RecordingTech::new(
        BitsPerInch::from_kbpi(593.19),
        TracksPerInch::from_ktpi(67.5),
    )
}

fn bench_zone_table(c: &mut Criterion) {
    let platter = Platter::new(Inches::new(2.6));
    let tech = tech_2002();
    let mut group = c.benchmark_group("zone_table");
    for zones in [10u32, 30, 50, 100] {
        group.bench_function(format!("build_{zones}_zones"), |b| {
            b.iter(|| ZoneTable::new(black_box(platter), black_box(tech), zones).unwrap())
        });
    }
    group.finish();
}

fn bench_capacity(c: &mut Criterion) {
    let drive = DriveGeometry::new(Platter::new(Inches::new(2.6)), tech_2002(), 4, 50).unwrap();
    c.bench_function("capacity_breakdown", |b| {
        b.iter(|| black_box(&drive).capacity_breakdown())
    });
    c.bench_function("table1_validation_sweep", |b| {
        b.iter(|| {
            for row in &thermodisk::drives::TABLE1 {
                black_box(row.model_capacity().unwrap());
                black_box(row.model_idr().unwrap());
            }
        })
    });
}

fn bench_lba_mapping(c: &mut Criterion) {
    let drive = DriveGeometry::new(Platter::new(Inches::new(2.6)), tech_2002(), 4, 50).unwrap();
    let total = drive.total_sectors().get();
    let mut group = c.benchmark_group("lba_mapping");
    group.throughput(Throughput::Elements(1024));
    group.bench_function("locate_1024_random", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..1024u64 {
                let lba = i.wrapping_mul(0x9E3779B97F4A7C15) % total;
                acc += drive.locate(black_box(lba)).unwrap().cylinder as u64;
            }
            acc
        })
    });
    group.bench_function("round_trip_1024", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..1024u64 {
                let lba = i.wrapping_mul(0x2545F4914F6CDD1D) % total;
                let loc = drive.locate(lba).unwrap();
                acc += drive.lba_of(loc).unwrap();
            }
            acc
        })
    });
    group.finish();
}

criterion_group!(benches, bench_zone_table, bench_capacity, bench_lba_mapping);
criterion_main!(benches);
