//! Ablation studies of the design choices DESIGN.md calls out. These are
//! *model* ablations (what changes in the outputs), wrapped as Criterion
//! benchmarks so they run under `cargo bench` and print their findings
//! once per run.
//!
//! - ZBR aggressiveness: capacity and IDR vs zone count (§4.2).
//! - FD time-step sensitivity: accuracy of the explicit scheme vs the
//!   step size, against the implicit reference (§3.3's 600 steps/min).
//! - Scheduler choice: mean response under backlog per policy.
//! - Cache size: hit rate and mean response across cache sizes.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use diskgeom::{DriveGeometry, Platter, RecordingTech};
use diskperf::idr;
use disksim::{
    CacheConfig, DiskSpec, Request, RequestKind, Scheduler, StorageSystem, SystemConfig,
};
use diskthermal::{
    DriveThermalSpec, Integrator, OperatingPoint, ThermalModel, TransientSim,
};
use std::sync::Once;
use units::{BitsPerInch, Inches, Rpm, Seconds, TracksPerInch};

static PRINT_ONCE: Once = Once::new();

fn print_findings() {
    PRINT_ONCE.call_once(|| {
        println!("\n=== Ablation findings ===");

        // 1. ZBR zone count vs capacity/IDR.
        let tech = RecordingTech::new(
            BitsPerInch::from_kbpi(593.19),
            TracksPerInch::from_ktpi(67.5),
        );
        println!("zone count -> capacity / peak IDR (2.6\", 2002 densities):");
        for zones in [5u32, 10, 30, 50, 100, 200] {
            let d = DriveGeometry::new(Platter::new(Inches::new(2.6)), tech, 1, zones)
                .expect("valid");
            println!(
                "  {zones:>4} zones: {:>7.2} GB, {:>6.1} MB/s",
                d.capacity().gigabytes(),
                idr(d.zones(), Rpm::new(15_000.0)).get()
            );
        }

        // 2. FD time-step sensitivity (paper: 600 steps/min suffices).
        let model = ThermalModel::new(DriveThermalSpec::cheetah_15k3());
        let op = OperatingPoint::seeking(Rpm::new(15_000.0));
        let reference = {
            let mut sim = TransientSim::from_ambient(&model)
                .with_step(Seconds::new(0.01))
                .expect("positive step");
            sim.advance(&model, op, Seconds::new(600.0));
            sim.temps().air.get()
        };
        println!("explicit-Euler error at t=10 min vs 10 ms implicit reference:");
        for dt in [0.05, 0.1, 0.5, 1.0] {
            let mut sim = TransientSim::from_ambient(&model)
                .with_step(Seconds::new(dt))
                .expect("positive step")
                .with_integrator(Integrator::ForwardEuler);
            sim.advance(&model, op, Seconds::new(600.0));
            let err = (sim.temps().air.get() - reference).abs();
            println!("  dt = {dt:>5.2} s: |error| = {err:.4} C");
        }

        // 3. Scheduler ablation under backlog.
        let spec = DiskSpec::era_2001(Rpm::new(10_000.0));
        let capacity = StorageSystem::new(SystemConfig::single_disk(spec.clone()))
            .unwrap()
            .logical_sectors();
        println!("scheduler -> mean response (500 simultaneous random reads):");
        for sched in [Scheduler::Fcfs, Scheduler::Sstf, Scheduler::Elevator] {
            let mut sys = StorageSystem::new(
                SystemConfig::single_disk(spec.clone()).with_scheduler(sched),
            )
            .unwrap();
            for i in 0..500u64 {
                sys.submit(Request::new(
                    i,
                    Seconds::ZERO,
                    0,
                    i.wrapping_mul(0x9E3779B97F4A7C15) % (capacity - 8),
                    8,
                    RequestKind::Read,
                ))
                .unwrap();
            }
            let done = sys.drain();
            let mean = done
                .iter()
                .map(|c| c.response_time().to_millis())
                .sum::<f64>()
                / done.len() as f64;
            println!("  {sched:?}: {mean:.1} ms");
        }

        // 4. Cache size sweep on a sequential-leaning workload.
        println!("cache size -> hit rate / mean response (TPC-H-like stream):");
        let preset = workloads::tpch();
        for mb in [1u64, 2, 4, 16] {
            let cache = CacheConfig {
                bytes: mb << 20,
                segments: 16,
            };
            let spec = DiskSpec::era(2002, 1, Rpm::new(7_200.0)).with_cache(cache);
            let mut sys = StorageSystem::new(SystemConfig::jbod(spec, 15)).unwrap();
            for r in preset.generate(5_000, 3).unwrap() {
                sys.submit(r).unwrap();
            }
            let done = sys.drain();
            let mean = done
                .iter()
                .map(|c| c.response_time().to_millis())
                .sum::<f64>()
                / done.len() as f64;
            let hits: u64 = sys.disks().iter().map(|d| d.cache().hits()).sum();
            let misses: u64 = sys.disks().iter().map(|d| d.cache().misses()).sum();
            let rate = hits as f64 / (hits + misses).max(1) as f64;
            println!("  {mb:>3} MB: hit rate {rate:.2}, mean {mean:.2} ms");
        }
        println!("=== end ablation findings ===\n");
    });
}

fn bench_ablations(c: &mut Criterion) {
    print_findings();
    // Keep a small timed kernel so the harness reports something
    // meaningful: the zone-count sensitivity sweep itself.
    let tech = RecordingTech::new(
        BitsPerInch::from_kbpi(593.19),
        TracksPerInch::from_ktpi(67.5),
    );
    c.bench_function("zone_count_sweep", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for zones in [10u32, 30, 50, 100] {
                let d = DriveGeometry::new(
                    Platter::new(Inches::new(2.6)),
                    black_box(tech),
                    1,
                    zones,
                )
                .unwrap();
                acc += d.total_sectors().get();
            }
            acc
        })
    });
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
