//! Criterion benchmarks of the thermal model (§3.3 machinery):
//! steady-state solves, transient stepping and envelope inversion.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use diskthermal::{
    max_rpm_within_envelope, DriveThermalSpec, EnvelopeSearch, Integrator, OperatingPoint,
    ThermalModel, TransientSim, THERMAL_ENVELOPE,
};
use units::{Inches, Rpm, Seconds};

fn model() -> ThermalModel {
    ThermalModel::new(DriveThermalSpec::new(Inches::new(2.6), 1))
}

fn bench_steady_state(c: &mut Criterion) {
    let m = model();
    let op = OperatingPoint::seeking(Rpm::new(24_534.0));
    c.bench_function("steady_state_solve", |b| {
        b.iter(|| black_box(&m).steady_state(black_box(op)))
    });
}

fn bench_transient(c: &mut Criterion) {
    let m = model();
    let op = OperatingPoint::seeking(Rpm::new(15_000.0));
    let mut group = c.benchmark_group("transient_minute");
    // One simulated minute at the paper's 600 steps/min.
    group.throughput(Throughput::Elements(600));
    for (label, integrator) in [
        ("backward_euler", Integrator::BackwardEuler),
        ("forward_euler", Integrator::ForwardEuler),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut sim = TransientSim::from_ambient(&m).with_integrator(integrator);
                sim.advance(&m, op, Seconds::new(60.0));
                sim.temps()
            })
        });
    }
    group.finish();
}

fn bench_envelope_search(c: &mut Criterion) {
    let m = model();
    c.bench_function("max_rpm_within_envelope", |b| {
        b.iter(|| {
            max_rpm_within_envelope(
                black_box(&m),
                1.0,
                THERMAL_ENVELOPE,
                EnvelopeSearch::default(),
            )
        })
    });
}

fn bench_warmup_to_steady(c: &mut Criterion) {
    // The Figure 1 experiment end to end.
    let m = model();
    let op = OperatingPoint::seeking(Rpm::new(15_000.0));
    c.bench_function("figure1_warmup_to_steady", |b| {
        b.iter(|| {
            let mut sim = TransientSim::from_ambient(&m)
                .with_step(Seconds::new(0.5))
                .expect("positive step");
            sim.run_to_steady(&m, op, 0.01)
        })
    });
}

criterion_group!(
    benches,
    bench_steady_state,
    bench_transient,
    bench_envelope_search,
    bench_warmup_to_steady
);
criterion_main!(benches);
