//! Criterion benchmarks of the storage simulator (§5.1 machinery):
//! request throughput through single disks and RAID-5 arrays, and the
//! cost of each queue scheduler.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use disksim::{DiskSpec, Request, RequestKind, Scheduler, StorageSystem, SystemConfig};
use units::{Rpm, Seconds};

const BATCH: u64 = 2_000;

fn make_trace(capacity: u64) -> Vec<Request> {
    (0..BATCH)
        .map(|i| {
            Request::new(
                i,
                Seconds::from_millis(i as f64 * 1.5),
                0,
                i.wrapping_mul(6_364_136_223_846_793_005) % (capacity - 64),
                16,
                if i % 3 == 0 { RequestKind::Write } else { RequestKind::Read },
            )
        })
        .collect()
}

fn run(cfg: SystemConfig, trace: &[Request]) -> usize {
    let mut sys = StorageSystem::new(cfg).unwrap();
    for r in trace {
        sys.submit(*r).unwrap();
    }
    sys.drain().len()
}

fn bench_single_disk(c: &mut Criterion) {
    let spec = DiskSpec::era_2001(Rpm::new(10_000.0));
    let capacity = StorageSystem::new(SystemConfig::single_disk(spec.clone()))
        .unwrap()
        .logical_sectors();
    let trace = make_trace(capacity);
    let mut group = c.benchmark_group("single_disk");
    group.throughput(Throughput::Elements(BATCH));
    group.bench_function("2000_requests", |b| {
        b.iter(|| run(SystemConfig::single_disk(spec.clone()), black_box(&trace)))
    });
    group.finish();
}

fn bench_raid5(c: &mut Criterion) {
    let spec = DiskSpec::era_2001(Rpm::new(10_000.0));
    let cfg = SystemConfig::raid5(spec, 8, 16).unwrap();
    let capacity = StorageSystem::new(cfg.clone()).unwrap().logical_sectors();
    let trace = make_trace(capacity);
    let mut group = c.benchmark_group("raid5_8_disks");
    group.throughput(Throughput::Elements(BATCH));
    group.bench_function("2000_requests", |b| {
        b.iter(|| run(cfg.clone(), black_box(&trace)))
    });
    group.finish();
}

fn bench_schedulers(c: &mut Criterion) {
    let spec = DiskSpec::era_2001(Rpm::new(10_000.0));
    let capacity = StorageSystem::new(SystemConfig::single_disk(spec.clone()))
        .unwrap()
        .logical_sectors();
    // All-at-once arrivals build deep queues, stressing the pick logic.
    let trace: Vec<Request> = (0..BATCH)
        .map(|i| {
            Request::new(
                i,
                Seconds::ZERO,
                0,
                i.wrapping_mul(0x9E3779B97F4A7C15) % (capacity - 64),
                8,
                RequestKind::Read,
            )
        })
        .collect();
    let mut group = c.benchmark_group("scheduler_under_backlog");
    group.throughput(Throughput::Elements(BATCH));
    for sched in [Scheduler::Fcfs, Scheduler::Sstf, Scheduler::Elevator] {
        group.bench_function(format!("{sched:?}"), |b| {
            b.iter(|| {
                run(
                    SystemConfig::single_disk(spec.clone()).with_scheduler(sched),
                    black_box(&trace),
                )
            })
        });
    }
    group.finish();
}

fn bench_workload_generation(c: &mut Criterion) {
    let preset = workloads::tpcc();
    let mut group = c.benchmark_group("trace_generation");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("tpcc_10k_requests", |b| {
        b.iter(|| preset.generate(10_000, black_box(1)).unwrap().len())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_single_disk,
    bench_raid5,
    bench_schedulers,
    bench_workload_generation
);
criterion_main!(benches);
