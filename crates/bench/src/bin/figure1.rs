//! Figure 1: warm-up transient of the modeled Seagate Cheetah 15K.3.
//!
//! Thin wrapper over the registered `figure1` experiment in `disklab`;
//! prints the report and records results + manifest under `results/`.

fn main() {
    std::process::exit(disklab::cli::run_wrapper("figure1"));
}
