//! Figure 1: warm-up transient of the modeled Seagate Cheetah 15K.3.
//!
//! Starts every node at the 28 °C external temperature with SPM and VCM
//! always on, and records the internal-air temperature minute by minute
//! until steady state — the curve the paper used to set the 45.22 °C
//! thermal envelope.

use bench::{ascii_plot, rule, save_json};
use serde::Serialize;
use thermodisk::prelude::*;
use units::Seconds;

#[derive(Serialize)]
struct Sample {
    minute: f64,
    air: f64,
    spindle: f64,
    base: f64,
    vcm: f64,
}

fn main() {
    let model = ThermalModel::new(DriveThermalSpec::cheetah_15k3());
    let op = OperatingPoint::seeking(Rpm::new(15_000.0));
    let steady = model.steady_air_temp(op);

    println!("Figure 1: Cheetah 15K.3 warm-up (ambient 28 C, SPM+VCM on)");
    println!("{}", rule(64));
    println!("{:>7} {:>9} {:>9} {:>9} {:>9}", "min", "air C", "spindle", "base", "vcm");

    let mut sim = TransientSim::from_ambient(&model);
    let mut samples = Vec::new();
    let mut reached_steady_at = None;
    for minute in 0..=150 {
        let t = sim.temps();
        if minute % 5 == 0 || minute <= 3 {
            println!(
                "{:>7} {:>9.2} {:>9.2} {:>9.2} {:>9.2}",
                minute,
                t.air.get(),
                t.spindle.get(),
                t.base.get(),
                t.vcm.get()
            );
        }
        samples.push(Sample {
            minute: minute as f64,
            air: t.air.get(),
            spindle: t.spindle.get(),
            base: t.base.get(),
            vcm: t.vcm.get(),
        });
        if reached_steady_at.is_none() && (steady - t.air).get() < 0.1 {
            reached_steady_at = Some(minute);
        }
        sim.advance(&model, op, Seconds::new(60.0));
    }
    println!("{}", rule(64));
    println!(
        "steady state {:.2} C (paper: 45.22 C) reached after ~{} min (paper: ~48 min)",
        steady.get(),
        reached_steady_at.unwrap_or(150)
    );
    println!(
        "with the ~10 C electronics adder the paper cites: {:.1} C vs the drive's rated 55 C",
        steady.get() + 10.0
    );

    let curve: Vec<(f64, f64)> = samples.iter().map(|s| (s.minute, s.air)).collect();
    println!("\ninternal air temperature vs minutes:");
    println!("{}", ascii_plot(&[("air C", &curve)], 60, 12));

    save_json("figure1", &samples);
}
