//! Figure 2: the envelope-constrained roadmap against the 40 % CGR
//! target.
//!
//! Thin wrapper over the registered `figure2` experiment in `disklab`.

fn main() {
    std::process::exit(disklab::cli::run_wrapper("figure2"));
}
