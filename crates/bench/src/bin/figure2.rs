//! Figure 2: the envelope-constrained roadmap — maximum attainable IDR
//! (top) and the corresponding capacity (bottom) for every platter size
//! and count, 2002–2012, against the 40 % CGR target.

use bench::{rule, save_json};
use roadmap::{envelope_roadmap, falloff_year, RoadmapConfig, RoadmapPoint};

fn main() {
    let cfg = RoadmapConfig::default();
    let points = envelope_roadmap(&cfg);

    for &platters in &cfg.platter_counts {
        println!("\n{}-Platter roadmap (envelope 45.22 C)", platters);
        println!("{}", rule(96));
        println!(
            "{:>5} | {:>10} | {:>9} {:>9} {:>9} | {:>9} {:>9} {:>9}",
            "Year", "Target", "2.6\" IDR", "2.1\" IDR", "1.6\" IDR", "2.6\" GB", "2.1\" GB", "1.6\" GB"
        );
        println!("{}", rule(96));
        for year in cfg.years() {
            let get = |dia: f64| -> &RoadmapPoint {
                points
                    .iter()
                    .find(|p| {
                        p.year == year
                            && p.platters == platters
                            && (p.diameter.get() - dia).abs() < 1e-9
                    })
                    .expect("point exists")
            };
            let (p26, p21, p16) = (get(2.6), get(2.1), get(1.6));
            let mark = |p: &RoadmapPoint| if p.meets_target() { ' ' } else { '*' };
            println!(
                "{:>5} | {:>10.1} | {:>8.1}{} {:>8.1}{} {:>8.1}{} | {:>9.1} {:>9.1} {:>9.1}",
                year,
                p26.idr_target.get(),
                p26.max_idr.get(),
                mark(p26),
                p21.max_idr.get(),
                mark(p21),
                p16.max_idr.get(),
                mark(p16),
                p26.capacity.gigabytes(),
                p21.capacity.gigabytes(),
                p16.capacity.gigabytes(),
            );
        }
        println!("{}", rule(96));
        for dia in [2.6, 2.1, 1.6] {
            let series: Vec<RoadmapPoint> = points
                .iter()
                .filter(|p| p.platters == platters && (p.diameter.get() - dia).abs() < 1e-9)
                .copied()
                .collect();
            let max_rpm = series[0].max_rpm.get();
            match falloff_year(&series) {
                Some(y) => println!(
                    "  {dia}\": max {max_rpm:.0} RPM within envelope; falls off the 40% CGR at {y}"
                ),
                None => println!("  {dia}\": max {max_rpm:.0} RPM; holds the target throughout"),
            }
        }
        println!("  (* = misses the year's target; paper: 2.6\" falls off ~2003, 2.1\" ~2004-05, 1.6\" ~2006-07)");
    }

    save_json("figure2", &points);
}
