//! Figure 5: exploiting thermal slack — slack table and revised
//! roadmap.
//!
//! Thin wrapper over the registered `figure5` experiment in `disklab`.

fn main() {
    std::process::exit(disklab::cli::run_wrapper("figure5"));
}
