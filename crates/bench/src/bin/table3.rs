//! Table 3: the spindle speed each platter size needs, year by year.
//!
//! Thin wrapper over the registered `table3` experiment in `disklab`.

fn main() {
    std::process::exit(disklab::cli::run_wrapper("table3"));
}
