//! §5.4 extension: disk shuffling as a DTM enhancer.
//!
//! Thin wrapper over the registered `shuffle` experiment in `disklab`.

fn main() {
    std::process::exit(disklab::cli::run_wrapper("shuffle"));
}
