//! Figure 4: response-time CDFs of five server workloads as spindle
//! speed increases in +5,000 RPM steps (thermal effects deliberately
//! ignored, as in the paper).
//!
//! Usage: `figure4 [requests-per-workload]` — defaults to 200,000
//! requests per workload (the paper replays 3–6 million; pass e.g.
//! `3000000` to approach trace scale; run with `--release`).

use bench::{rule, save_json};
use serde::Serialize;
use units::Rpm;
use workloads::presets;

#[derive(Serialize)]
struct WorkloadResult {
    name: String,
    rpm: f64,
    requests: u64,
    mean_ms: f64,
    p95_ms: f64,
    cdf: Vec<(f64, f64)>,
}

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("request count"))
        .unwrap_or(200_000);
    let seed = 42;

    println!("Figure 4: response times vs spindle speed ({n} requests per workload)");
    let mut results = Vec::new();
    for preset in presets() {
        let base = preset.base_rpm.get();
        let steps: Vec<f64> = (0..4).map(|i| base + i as f64 * 5_000.0).collect();

        println!("\n{} ({} disks{}, base {:.0} RPM; paper mean at base: {:.2} ms)",
            preset.name,
            preset.disks,
            if preset.raid.is_some() { ", RAID-5" } else { "" },
            base,
            preset.paper_mean_response_ms,
        );
        println!("{}", rule(100));
        print!("{:>10} |", "RPM");
        for edge in disksim::CDF_BUCKETS_MS {
            print!(" {:>6.0}", edge);
        }
        println!(" {:>6} | {:>9}", "200+", "mean ms");
        println!("{}", rule(100));

        let mut means = Vec::new();
        for &rpm in &steps {
            let stats = preset
                .run(Rpm::new(rpm), n, seed)
                .unwrap_or_else(|e| panic!("{}: {e}", preset.name));
            let cdf = stats.cdf();
            print!("{:>10.0} |", rpm);
            for &(_, frac) in &cdf[..cdf.len() - 1] {
                print!(" {:>6.3}", frac);
            }
            println!(" {:>6.3} | {:>9.2}", 1.0, stats.mean().to_millis());
            means.push(stats.mean().to_millis());
            results.push(WorkloadResult {
                name: preset.name.to_string(),
                rpm,
                requests: stats.count(),
                mean_ms: stats.mean().to_millis(),
                p95_ms: stats.percentile(95.0).to_millis(),
                cdf,
            });
        }
        println!("{}", rule(100));
        let improv_5k = (means[0] - means[1]) / means[0] * 100.0;
        let improv_10k = (means[0] - means[2]) / means[0] * 100.0;
        println!(
            "  mean response: {:.2} -> {:.2} -> {:.2} -> {:.2} ms; +5K RPM buys {:.1}%, +10K {:.1}%",
            means[0], means[1], means[2], means[3], improv_5k, improv_10k
        );
    }
    println!("\nPaper: +5K RPM improves means by 20.8% (OLTP) to 52.5% (OpenMail);");
    println!("+10K RPM lands in the 30-60% band across workloads.");

    save_json("figure4", &results);
}
