//! Figure 4: response-time CDFs of five server workloads as spindle
//! speed increases.
//!
//! Usage: `figure4 [requests-per-workload]` — defaults to 200,000
//! requests per workload (the paper replays 3–6 million; pass e.g.
//! `3000000` to approach trace scale; run with `--release`).
//!
//! Thin wrapper over the `figure4` experiment in `disklab`; a custom
//! request count changes the config digest, so scaled runs get their
//! own cache entries.

use disklab::experiments::figure4::Figure4;
use disklab::Scale;

fn main() {
    let exp = match std::env::args().nth(1) {
        Some(raw) => {
            let requests = raw.parse().expect("request count");
            Figure4 { requests, seed: 42 }
        }
        None => Figure4::at_scale(Scale::Full),
    };
    std::process::exit(disklab::cli::run_wrapper_experiment(Box::new(exp)));
}
