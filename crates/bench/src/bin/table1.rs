//! Table 1 (and Table 2): model validation against thirteen real SCSI
//! drives.
//!
//! Thin wrapper over the registered `table1` experiment in `disklab`.

fn main() {
    std::process::exit(disklab::cli::run_wrapper("table1"));
}
