//! The §4 methodology, automated: which design the paper's four-step
//! procedure picks each year, and when it runs out of options.

use bench::{rule, save_json};
use roadmap::{plan_roadmap, RoadmapConfig};

fn main() {
    let cfg = RoadmapConfig::default();
    let plan = plan_roadmap(&cfg);

    println!("Automated §4 methodology walk (envelope 45.22 C)");
    println!("{}", rule(100));
    println!(
        "{:>5} | {:>14} | {:>6} {:>9} {:>9} | {:>9} {:>9} | {:>9}",
        "Year", "Step", "Size", "Platters", "RPM", "IDR", "Target", "Capacity"
    );
    println!("{}", rule(100));
    for y in &plan {
        println!(
            "{:>5} | {:>14} | {:>5.1}\" {:>9} {:>9.0} | {:>9.1} {:>9.1} | {:>7.1} GB{}",
            y.year,
            format!("{:?}", y.step),
            y.diameter.get(),
            y.platters,
            y.rpm.get(),
            y.idr.get(),
            y.idr_target.get(),
            y.capacity.gigabytes(),
            if y.meets_target() { "" } else { "  *" }
        );
    }
    println!("{}", rule(100));
    println!("(* = target missed; the methodology reports its best-IDR fallback)");
    let last_met = plan.iter().filter(|y| y.meets_target()).map(|y| y.year).max();
    println!(
        "the design space sustains the 40% CGR through {:?}; paper: ~2006 with 25%/14% growth after",
        last_met
    );

    save_json("plan", &plan);
}
