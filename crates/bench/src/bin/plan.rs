//! The §4 methodology, automated.
//!
//! Thin wrapper over the registered `plan` experiment in `disklab`.

fn main() {
    std::process::exit(disklab::cli::run_wrapper("plan"));
}
