//! Figures 6 and 7: dynamic throttling ratio vs cooling interval.
//!
//! Thin wrapper over the registered `figure7` experiment in `disklab`.

fn main() {
    std::process::exit(disklab::cli::run_wrapper("figure7"));
}
