//! Figure 3: cooling-system sensitivity of the single-platter roadmap.
//!
//! Thin wrapper over the registered `figure3` experiment in `disklab`.

fn main() {
    std::process::exit(disklab::cli::run_wrapper("figure3"));
}
