//! Figure 3: cooling-system sensitivity — how 5 °C and 10 °C cooler
//! external air stretch the single-platter roadmap.

use bench::{rule, save_json};
use roadmap::{falloff_year, roadmap_for, RoadmapConfig};
use serde::Serialize;
use units::{Celsius, Inches};

#[derive(Serialize)]
struct Series {
    diameter: f64,
    ambient: f64,
    falloff_year: Option<i32>,
    idr_by_year: Vec<(i32, f64, f64)>,
}

fn main() {
    let base = RoadmapConfig::default();
    println!("Figure 3: cooling the external air (baseline 28 C wet-bulb)");

    let mut all = Vec::new();
    for dia in [2.6, 2.1, 1.6] {
        println!("\n1-Platter {dia}\" IDR roadmap under improved cooling");
        println!("{}", rule(74));
        println!(
            "{:>5} | {:>10} | {:>12} {:>12} {:>12}",
            "Year", "Target", "Baseline", "5 C cooler", "10 C cooler"
        );
        println!("{}", rule(74));
        let series: Vec<(f64, Vec<roadmap::RoadmapPoint>)> = [28.0, 23.0, 18.0]
            .iter()
            .map(|&amb| {
                (
                    amb,
                    roadmap_for(&base, Inches::new(dia), 1, Celsius::new(amb)),
                )
            })
            .collect();
        for (i, year) in base.years().enumerate() {
            println!(
                "{:>5} | {:>10.1} | {:>12.1} {:>12.1} {:>12.1}",
                year,
                series[0].1[i].idr_target.get(),
                series[0].1[i].max_idr.get(),
                series[1].1[i].max_idr.get(),
                series[2].1[i].max_idr.get(),
            );
        }
        println!("{}", rule(74));
        for (amb, pts) in &series {
            let fy = falloff_year(pts);
            println!(
                "  ambient {amb:>4.1} C: max {:.0} RPM, falls off at {:?}",
                pts[0].max_rpm.get(),
                fy
            );
            all.push(Series {
                diameter: dia,
                ambient: *amb,
                falloff_year: fy,
                idr_by_year: pts
                    .iter()
                    .map(|p| (p.year, p.max_idr.get(), p.idr_target.get()))
                    .collect(),
            });
        }
    }
    println!("\nPaper: 5 C / 10 C of cooling lengthen the 1.6\" roadmap by one / two years;");
    println!("the terabit transition (2010) cannot be sustained by cooling alone.");

    save_json("figure3", &all);
}
