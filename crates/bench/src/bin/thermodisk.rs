//! `thermodisk` — command-line front end to the integrated drive model.
//!
//! ```text
//! thermodisk capacity --diameter 2.6 --platters 1 --kbpi 593.19 --ktpi 67.5 [--zones 30]
//! thermodisk thermal  --diameter 2.6 --platters 1 --rpm 15000 [--duty 1.0] [--ambient 28]
//! thermodisk design   --year 2005 --diameter 1.6 --platters 2 [--zones 50]
//! thermodisk roadmap  [--ambient 28]
//! thermodisk analyze  <trace.jsonl | trace.ascii>
//! thermodisk workloads
//! ```
//!
//! Argument parsing is hand-rolled (`--key value` pairs) to keep the
//! dependency tree at zero.

use std::collections::HashMap;
use std::process::ExitCode;
use thermodisk::prelude::*;

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(key) = it.next() {
        let Some(name) = key.strip_prefix("--") else {
            return Err(format!("expected --flag, got `{key}`"));
        };
        let Some(value) = it.next() else {
            return Err(format!("flag --{name} needs a value"));
        };
        flags.insert(name.to_string(), value.clone());
    }
    Ok(flags)
}

fn get_f64(flags: &HashMap<String, String>, name: &str, default: Option<f64>) -> Result<f64, String> {
    match flags.get(name) {
        Some(v) => v.parse().map_err(|_| format!("--{name}: bad number `{v}`")),
        None => default.ok_or(format!("missing required flag --{name}")),
    }
}

fn get_u32(flags: &HashMap<String, String>, name: &str, default: Option<u32>) -> Result<u32, String> {
    match flags.get(name) {
        Some(v) => v.parse().map_err(|_| format!("--{name}: bad integer `{v}`")),
        None => default.ok_or(format!("missing required flag --{name}")),
    }
}

fn cmd_capacity(flags: &HashMap<String, String>) -> Result<(), String> {
    let dia = get_f64(flags, "diameter", None)?;
    let platters = get_u32(flags, "platters", None)?;
    let kbpi = get_f64(flags, "kbpi", None)?;
    let ktpi = get_f64(flags, "ktpi", None)?;
    let zones = get_u32(flags, "zones", Some(30))?;
    let rpm = get_f64(flags, "rpm", Some(10_000.0))?;

    let tech = RecordingTech::new(
        units::BitsPerInch::from_kbpi(kbpi),
        units::TracksPerInch::from_ktpi(ktpi),
    );
    let geom = DriveGeometry::new(Platter::new(Inches::new(dia)), tech, platters, zones)
        .map_err(|e| e.to_string())?;
    let b = geom.capacity_breakdown();
    println!("geometry : {geom}");
    println!("capacity : {b}");
    println!(
        "zones    : {} of {} tracks, {} sectors/track outer vs {} inner",
        geom.zones().zone_count(),
        geom.zones().zones()[0].cylinders(),
        geom.zones().outermost().sectors_per_track().get(),
        geom.zones().innermost().sectors_per_track().get(),
    );
    println!(
        "peak IDR : {:.1} MB/s at {:.0} RPM (sustained {:.1})",
        idr(geom.zones(), Rpm::new(rpm)).get(),
        rpm,
        thermodisk::perf::sustained_idr(geom.zones(), Rpm::new(rpm)).get(),
    );
    Ok(())
}

fn cmd_thermal(flags: &HashMap<String, String>) -> Result<(), String> {
    let dia = get_f64(flags, "diameter", None)?;
    let platters = get_u32(flags, "platters", None)?;
    let rpm = get_f64(flags, "rpm", None)?;
    let duty = get_f64(flags, "duty", Some(1.0))?;
    let ambient = get_f64(flags, "ambient", Some(28.0))?;

    let spec = DriveThermalSpec::new(Inches::new(dia), platters)
        .with_ambient(Celsius::new(ambient));
    let model = ThermalModel::new(spec);
    let op = OperatingPoint::new(Rpm::new(rpm), duty);
    let t = model.steady_state(op);
    let p = model.power_breakdown(op);
    println!("operating point  : {op}");
    println!("steady state     : {t}");
    println!(
        "viscous windage  : {:.2} W ({:.1}\" x{platters})",
        p.viscous.get(),
        dia
    );
    println!(
        "within envelope  : {} (envelope {THERMAL_ENVELOPE})",
        t.air <= THERMAL_ENVELOPE
    );
    if let Some(max) = thermodisk::thermal::max_rpm_within_envelope(
        &model,
        duty,
        THERMAL_ENVELOPE,
        thermodisk::thermal::EnvelopeSearch::default(),
    ) {
        println!("max in-envelope  : {:.0} RPM at this duty", max.get());
    } else {
        println!("max in-envelope  : infeasible at any speed");
    }
    let rel = thermodisk::thermal::reliability::assess(&model, op);
    println!(
        "reliability      : {:.2}x failure rate vs ambient (2x per {:.0} C)",
        rel.acceleration_vs_ambient,
        thermodisk::thermal::reliability::DOUBLING_RISE.get()
    );
    Ok(())
}

fn cmd_design(flags: &HashMap<String, String>) -> Result<(), String> {
    let year = get_u32(flags, "year", None)? as i32;
    let dia = get_f64(flags, "diameter", None)?;
    let platters = get_u32(flags, "platters", None)?;
    let zones = get_u32(flags, "zones", Some(50))?;

    let mut builder = DriveDesign::builder()
        .platter_diameter(Inches::new(dia))
        .platters(platters)
        .zones(zones)
        .densities_of_year(year);
    builder = match flags.get("rpm") {
        Some(v) => builder.rpm(Rpm::new(
            v.parse().map_err(|_| format!("--rpm: bad number `{v}`"))?,
        )),
        None => {
            // Default to the fastest envelope-respecting speed.
            let probe = DriveDesign::builder()
                .platter_diameter(Inches::new(dia))
                .platters(platters)
                .zones(zones)
                .densities_of_year(year)
                .rpm(Rpm::new(10_000.0))
                .build()
                .map_err(|e| e.to_string())?;
            let max = probe
                .max_rpm_within(THERMAL_ENVELOPE)
                .ok_or("no envelope-respecting speed exists")?;
            builder.rpm(max)
        }
    };
    let design = builder.build().map_err(|e| e.to_string())?;
    println!("{design}");
    println!(
        "target for {year}: {:.1} MB/s -> {}",
        TechnologyTrend::default().idr_target(year).get(),
        if design.max_idr().get()
            >= 0.985 * TechnologyTrend::default().idr_target(year).get()
        {
            "MET"
        } else {
            "missed"
        }
    );
    Ok(())
}

fn cmd_roadmap(flags: &HashMap<String, String>) -> Result<(), String> {
    let ambient = get_f64(flags, "ambient", Some(28.0))?;
    let cfg = RoadmapConfig::default().with_ambient(Celsius::new(ambient));
    for y in roadmap::plan_roadmap(&cfg) {
        println!(
            "{} {:<13} {:>4.1}\" x{} {:>8.0} RPM  {:>8.1}/{:>8.1} MB/s  {:>7.1} GB{}",
            y.year,
            format!("{:?}", y.step),
            y.diameter.get(),
            y.platters,
            y.rpm.get(),
            y.idr.get(),
            y.idr_target.get(),
            y.capacity.gigabytes(),
            if y.meets_target() { "" } else { "  <- off the 40% curve" }
        );
    }
    Ok(())
}

fn cmd_analyze(path: &str) -> Result<(), String> {
    let file = std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
    let reader = std::io::BufReader::new(file);
    let trace = if path.ends_with(".ascii") || path.ends_with(".txt") {
        workloads::read_ascii_trace(reader).map_err(|e| e.to_string())?
    } else {
        workloads::read_trace(reader).map_err(|e| e.to_string())?
    };
    match workloads::analyze(&trace) {
        Some(profile) => println!("{profile}"),
        None => println!("empty trace"),
    }
    Ok(())
}

fn cmd_workloads() -> Result<(), String> {
    for p in presets() {
        println!(
            "{:<18} {:>2} disks{}  base {:>6.0} RPM  ~{:>4.0} req/s  paper mean {:>5.2} ms  ({} trace requests)",
            p.name,
            p.disks,
            if p.raid.is_some() { " RAID-5" } else { "       " },
            p.base_rpm.get(),
            p.arrivals.mean_rate(),
            p.paper_mean_response_ms,
            p.paper_requests,
        );
    }
    Ok(())
}

const USAGE: &str = "\
usage: thermodisk <command> [flags]
  capacity  --diameter D --platters N --kbpi K --ktpi K [--zones 30] [--rpm 10000]
  thermal   --diameter D --platters N --rpm R [--duty 1.0] [--ambient 28]
  design    --year Y --diameter D --platters N [--zones 50] [--rpm R]
  roadmap   [--ambient 28]
  analyze   <trace.jsonl | trace.ascii>
  workloads";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("capacity") => parse_flags(&args[1..]).and_then(|f| cmd_capacity(&f)),
        Some("thermal") => parse_flags(&args[1..]).and_then(|f| cmd_thermal(&f)),
        Some("design") => parse_flags(&args[1..]).and_then(|f| cmd_design(&f)),
        Some("roadmap") => parse_flags(&args[1..]).and_then(|f| cmd_roadmap(&f)),
        Some("analyze") => match args.get(1) {
            Some(path) => cmd_analyze(path),
            None => Err("analyze needs a trace path".into()),
        },
        Some("workloads") => cmd_workloads(),
        _ => {
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}
