//! §4.2.2: the enclosure form-factor study — a 2.6″ platter moved into a
//! 2.5″-class case loses heat-rejection area and falls off the roadmap
//! immediately; quantifies the extra cooling needed to recover.

use bench::{rule, save_json};
use roadmap::{form_factor_study, RoadmapConfig};

fn main() {
    let cfg = RoadmapConfig::default();
    let study = form_factor_study(&cfg);

    println!("Form-factor study: 2.6\" platter in a 2.5\" enclosure (3.96\" x 2.75\")");
    println!("{}", rule(70));
    println!(
        "{:>5} | {:>10} | {:>14} {:>6}",
        "Year", "Target", "Small-FF IDR", "meets"
    );
    println!("{}", rule(70));
    for p in &study.small_points {
        println!(
            "{:>5} | {:>10.1} | {:>14.1} {:>6}",
            p.year,
            p.idr_target.get(),
            p.max_idr.get(),
            if p.meets_target() { "yes" } else { "NO" }
        );
    }
    println!("{}", rule(70));
    println!(
        "small enclosure falls off at {:?} (paper: already at 2002); 3.5\" baseline at {:?}",
        study.small_falloff, study.baseline_falloff
    );
    println!(
        "extra ambient cooling needed to become comparable: {:.0} C (paper: ~15 C)",
        study.cooling_needed
    );

    save_json("formfactor", &study);
}
