//! §4.2.2: the enclosure form-factor study.
//!
//! Thin wrapper over the registered `formfactor` experiment in
//! `disklab`.

fn main() {
    std::process::exit(disklab::cli::run_wrapper("formfactor"));
}
