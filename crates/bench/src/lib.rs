//! Shared plumbing for the experiment regenerators.
//!
//! The implementation moved into the `disklab` crate, which owns the
//! experiment registry, the parallel engine, and the result cache; this
//! crate re-exports the helpers so existing callers and the Criterion
//! benchmarks keep working, and its binaries are thin wrappers over
//! `disklab::cli`.

pub use disklab::{ascii_plot, results_dir, rule, save_json};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexports_reach_disklab() {
        assert_eq!(rule(4), "----");
        let dir = results_dir().unwrap();
        assert!(dir.is_dir());
    }
}
