//! Dense-grid surrogates queried by multilinear interpolation.
//!
//! The training sweep evaluates the full simulator on a Cartesian grid
//! of knob values; the surrogate stores those outputs as per-output
//! tensors and answers arbitrary points by interpolating the 2^d
//! surrounding grid corners. Two properties fall out of that choice and
//! the planner leans on both:
//!
//! - **Determinism**: the model is exactly its training data plus a
//!   closed-form query — fitting the same sweep twice yields
//!   byte-identical serialized models.
//! - **Monotonicity transfer**: along any single axis, multilinear
//!   interpolation is monotone wherever the grid node values are, so if
//!   the simulator's peak temperature rises with arrival rate, so does
//!   the surrogate's prediction.

use crate::SurrogateError;
use serde::Serialize;

/// One sweep knob: a name and its strictly increasing grid values.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Axis {
    /// Knob name, e.g. `"rate"` or `"per_rack"`.
    pub name: String,
    /// Grid node coordinates, strictly increasing.
    pub values: Vec<f64>,
}

impl Axis {
    /// A validated axis.
    ///
    /// # Errors
    ///
    /// Empty or non-strictly-increasing (or non-finite) `values`.
    pub fn new(name: impl Into<String>, values: Vec<f64>) -> Result<Self, SurrogateError> {
        let name = name.into();
        if values.is_empty() {
            return Err(SurrogateError::Fit(format!("axis {name:?} has no values")));
        }
        if values.iter().any(|v| !v.is_finite()) {
            return Err(SurrogateError::Fit(format!(
                "axis {name:?} has a non-finite value"
            )));
        }
        for pair in values.windows(2) {
            if pair[0] >= pair[1] {
                return Err(SurrogateError::Fit(format!(
                    "axis {name:?} values must be strictly increasing, got {} then {}",
                    pair[0], pair[1]
                )));
            }
        }
        Ok(Axis { name, values })
    }

    /// Bracketing node indices and interpolation fraction for `x`,
    /// clamped to the grid: queries outside the swept range hold the
    /// edge value rather than extrapolating a trend the simulator never
    /// confirmed.
    fn locate(&self, x: f64) -> (usize, usize, f64) {
        let v = &self.values;
        if x <= v[0] {
            return (0, 0, 0.0);
        }
        let last = v.len() - 1;
        if x >= v[last] {
            return (last, last, 0.0);
        }
        // First node strictly above x; x < v[last] guarantees one.
        let hi = v.partition_point(|&n| n <= x);
        let lo = hi - 1;
        (lo, hi, (x - v[lo]) / (v[hi] - v[lo]))
    }
}

/// One simulated sweep point: knob coordinates and the named outputs
/// the simulator produced there.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingSample {
    /// Knob values, one per axis in axis order.
    pub coords: Vec<f64>,
    /// Named simulator outputs at this point.
    pub outputs: Vec<(String, f64)>,
}

impl TrainingSample {
    /// A sweep point.
    pub fn new(coords: Vec<f64>, outputs: Vec<(String, f64)>) -> Self {
        TrainingSample { coords, outputs }
    }
}

/// A fitted grid surrogate: per-output value tensors over the axes'
/// Cartesian grid, plus each output's training scale (max absolute
/// value) used as the denominator of relative errors.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct GridSurrogate {
    /// The sweep axes, in coordinate order.
    pub axes: Vec<Axis>,
    /// Output names, in the order every training sample listed them.
    pub outputs: Vec<String>,
    /// Row-major value tensor per output (last axis fastest).
    pub values: Vec<Vec<f64>>,
    /// Max |value| seen in training per output, floored at 1.0 so
    /// relative errors stay meaningful for near-zero outputs.
    pub scales: Vec<f64>,
}

impl GridSurrogate {
    /// Fit a surrogate: place every training sample at its exact grid
    /// cell and require the grid to be covered exactly once.
    ///
    /// # Errors
    ///
    /// No axes or no samples; a sample whose coordinate count or output
    /// names disagree with the first sample; a coordinate that is not
    /// exactly a grid node; a cell covered twice or never.
    pub fn fit(axes: Vec<Axis>, samples: &[TrainingSample]) -> Result<Self, SurrogateError> {
        if axes.is_empty() {
            return Err(SurrogateError::Fit("no axes".into()));
        }
        if axes.len() > 16 {
            return Err(SurrogateError::Fit(format!(
                "{} axes; interpolation visits 2^d corners, refusing d > 16",
                axes.len()
            )));
        }
        let cells: usize = axes.iter().map(|a| a.values.len()).product();
        let first = samples
            .first()
            .ok_or_else(|| SurrogateError::Fit("no training samples".into()))?;
        if first.outputs.is_empty() {
            return Err(SurrogateError::Fit("samples carry no outputs".into()));
        }
        let outputs: Vec<String> = first.outputs.iter().map(|(n, _)| n.clone()).collect();
        let mut values = vec![vec![f64::NAN; cells]; outputs.len()];
        let mut seen = vec![false; cells];
        for sample in samples {
            let cell = cell_index(&axes, &sample.coords)?;
            if std::mem::replace(&mut seen[cell], true) {
                return Err(SurrogateError::Fit(format!(
                    "grid cell at {:?} covered twice",
                    sample.coords
                )));
            }
            if sample.outputs.len() != outputs.len()
                || sample
                    .outputs
                    .iter()
                    .zip(&outputs)
                    .any(|((name, _), expect)| name != expect)
            {
                return Err(SurrogateError::Fit(format!(
                    "sample at {:?} lists outputs {:?}, expected {outputs:?}",
                    sample.coords,
                    sample.outputs.iter().map(|(n, _)| n).collect::<Vec<_>>()
                )));
            }
            for (k, (_, value)) in sample.outputs.iter().enumerate() {
                if !value.is_finite() {
                    return Err(SurrogateError::Fit(format!(
                        "non-finite output {:?} at {:?}",
                        outputs[k], sample.coords
                    )));
                }
                values[k][cell] = *value;
            }
        }
        if let Some(missing) = seen.iter().position(|covered| !covered) {
            return Err(SurrogateError::Fit(format!(
                "sweep covers {}/{cells} grid cells; first missing cell index {missing}",
                samples.len()
            )));
        }
        let scales = values
            .iter()
            .map(|tensor| tensor.iter().fold(1.0_f64, |acc, v| acc.max(v.abs())))
            .collect();
        Ok(GridSurrogate {
            axes,
            outputs,
            values,
            scales,
        })
    }

    /// Position of `name` in [`Self::outputs`], if fitted.
    pub fn output_index(&self, name: &str) -> Option<usize> {
        self.outputs.iter().position(|n| n == name)
    }

    /// Predict one output at `coords` by clamped multilinear
    /// interpolation over the 2^d surrounding grid corners.
    ///
    /// # Errors
    ///
    /// Wrong coordinate count, a non-finite coordinate, or an output
    /// index the fit does not have.
    pub fn predict_one(&self, output: usize, coords: &[f64]) -> Result<f64, SurrogateError> {
        if output >= self.outputs.len() {
            return Err(SurrogateError::Predict(format!(
                "output index {output} out of range ({} fitted)",
                self.outputs.len()
            )));
        }
        if coords.len() != self.axes.len() {
            return Err(SurrogateError::Predict(format!(
                "{} coordinates for {} axes",
                coords.len(),
                self.axes.len()
            )));
        }
        if let Some(bad) = coords.iter().find(|c| !c.is_finite()) {
            return Err(SurrogateError::Predict(format!(
                "non-finite coordinate {bad}"
            )));
        }
        let d = self.axes.len();
        let mut locs = [(0usize, 0usize, 0.0f64); 16];
        for (slot, (axis, &x)) in locs.iter_mut().zip(self.axes.iter().zip(coords)) {
            *slot = axis.locate(x);
        }
        // Row-major strides, last axis fastest.
        let mut strides = [0usize; 16];
        let mut stride = 1;
        for i in (0..d).rev() {
            strides[i] = stride;
            stride *= self.axes[i].values.len();
        }
        let tensor = &self.values[output];
        let mut acc = 0.0;
        for corner in 0u32..(1 << d) {
            let mut weight = 1.0;
            let mut index = 0;
            for (i, &(lo, hi, t)) in locs[..d].iter().enumerate() {
                let high = corner >> i & 1 == 1;
                weight *= if high { t } else { 1.0 - t };
                index += strides[i] * if high { hi } else { lo };
            }
            if weight != 0.0 {
                acc += weight * tensor[index];
            }
        }
        Ok(acc)
    }

    /// Predict every output at `coords`, paired with its name.
    ///
    /// # Errors
    ///
    /// As [`Self::predict_one`].
    pub fn predict(&self, coords: &[f64]) -> Result<Vec<(String, f64)>, SurrogateError> {
        (0..self.outputs.len())
            .map(|k| {
                self.predict_one(k, coords)
                    .map(|v| (self.outputs[k].clone(), v))
            })
            .collect()
    }

    /// The stored training scale of output `k` (relative-error
    /// denominator).
    pub fn scale(&self, k: usize) -> f64 {
        self.scales[k]
    }
}

/// Row-major cell index of exact grid coordinates.
fn cell_index(axes: &[Axis], coords: &[f64]) -> Result<usize, SurrogateError> {
    if coords.len() != axes.len() {
        return Err(SurrogateError::Fit(format!(
            "sample has {} coordinates for {} axes",
            coords.len(),
            axes.len()
        )));
    }
    let mut index = 0;
    for (axis, &x) in axes.iter().zip(coords) {
        let node = axis
            .values
            .iter()
            .position(|&v| v == x)
            .ok_or_else(|| {
                SurrogateError::Fit(format!(
                    "coordinate {x} is not a node of axis {:?} (training samples must \
                     sit exactly on the grid)",
                    axis.name
                ))
            })?;
        index = index * axis.values.len() + node;
    }
    Ok(index)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_2d() -> GridSurrogate {
        let axes = vec![
            Axis::new("rate", vec![100.0, 200.0]).unwrap(),
            Axis::new("per_rack", vec![10.0, 20.0, 30.0]).unwrap(),
        ];
        let mut samples = Vec::new();
        for &r in &[100.0, 200.0] {
            for &p in &[10.0, 20.0, 30.0] {
                samples.push(TrainingSample::new(
                    vec![r, p],
                    vec![
                        ("peak_air_c".into(), 20.0 + r / 100.0 + p / 10.0),
                        ("engaged".into(), 0.0),
                    ],
                ));
            }
        }
        GridSurrogate::fit(axes, &samples).unwrap()
    }

    #[test]
    fn nodes_reproduce_exactly_and_midpoints_interpolate() {
        let model = grid_2d();
        let at_node = model.predict(&[200.0, 30.0]).unwrap();
        assert_eq!(at_node[0], ("peak_air_c".to_string(), 25.0));
        let mid = model.predict_one(0, &[150.0, 15.0]).unwrap();
        assert!((mid - (20.0 + 1.5 + 1.5)).abs() < 1e-12);
    }

    #[test]
    fn queries_outside_the_grid_clamp_to_the_edge() {
        let model = grid_2d();
        let low = model.predict_one(0, &[0.0, 0.0]).unwrap();
        let corner = model.predict_one(0, &[100.0, 10.0]).unwrap();
        assert_eq!(low, corner);
        let high = model.predict_one(0, &[1e9, 1e9]).unwrap();
        assert_eq!(high, model.predict_one(0, &[200.0, 30.0]).unwrap());
    }

    #[test]
    fn missing_and_duplicate_cells_are_rejected() {
        let axes = vec![Axis::new("rate", vec![1.0, 2.0]).unwrap()];
        let one = TrainingSample::new(vec![1.0], vec![("out".into(), 5.0)]);
        let err = GridSurrogate::fit(axes.clone(), std::slice::from_ref(&one)).unwrap_err();
        assert!(matches!(err, SurrogateError::Fit(_)));
        let err = GridSurrogate::fit(axes, &[one.clone(), one]).unwrap_err();
        assert!(matches!(err, SurrogateError::Fit(_)));
    }

    #[test]
    fn off_grid_training_coordinates_are_rejected() {
        let axes = vec![Axis::new("rate", vec![1.0, 2.0]).unwrap()];
        let sample = TrainingSample::new(vec![1.5], vec![("out".into(), 5.0)]);
        assert!(GridSurrogate::fit(axes, &[sample]).is_err());
    }

    #[test]
    fn axis_rejects_unsorted_values() {
        assert!(Axis::new("rate", vec![2.0, 1.0]).is_err());
        assert!(Axis::new("rate", vec![1.0, 1.0]).is_err());
        assert!(Axis::new("rate", vec![]).is_err());
    }

    #[test]
    fn scales_floor_at_one() {
        let model = grid_2d();
        let engaged = model.output_index("engaged").unwrap();
        assert_eq!(model.scale(engaged), 1.0);
        assert!(model.scale(0) > 1.0);
    }

    #[test]
    fn fit_is_independent_of_sample_order() {
        let axes = vec![Axis::new("rate", vec![1.0, 2.0]).unwrap()];
        let a = TrainingSample::new(vec![1.0], vec![("out".into(), 5.0)]);
        let b = TrainingSample::new(vec![2.0], vec![("out".into(), 7.0)]);
        let forward = GridSurrogate::fit(axes.clone(), &[a.clone(), b.clone()]).unwrap();
        let reverse = GridSurrogate::fit(axes, &[b, a]).unwrap();
        assert_eq!(forward, reverse);
        assert_eq!(
            serde_json::to_string(&forward).unwrap(),
            serde_json::to_string(&reverse).unwrap()
        );
    }

    #[test]
    fn interpolation_is_monotone_when_node_values_are() {
        let axes = vec![Axis::new("rate", vec![0.0, 1.0, 2.0]).unwrap()];
        let samples: Vec<TrainingSample> = [0.0, 1.0, 2.0]
            .iter()
            .map(|&r| TrainingSample::new(vec![r], vec![("out".into(), r * r)]))
            .collect();
        let model = GridSurrogate::fit(axes, &samples).unwrap();
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=40 {
            let x = i as f64 * 0.05;
            let y = model.predict_one(0, &[x]).unwrap();
            assert!(y >= prev, "non-monotone at {x}: {y} < {prev}");
            prev = y;
        }
    }
}
