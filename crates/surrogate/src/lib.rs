//! Surrogate-accelerated capacity planning (`disksurrogate`).
//!
//! The paper's roadmap argument turns every design question into a
//! search under a thermal envelope, and the honest way to evaluate one
//! candidate configuration is a full event simulation — milliseconds to
//! minutes per point depending on hall size. This crate makes that
//! search cheap without giving up the simulator's authority, in two
//! stages:
//!
//! 1. **Screen.** A compact deterministic surrogate — a dense grid of
//!    simulator outputs over the sweep axes, queried by multilinear
//!    interpolation ([`GridSurrogate`]) — predicts peak exit-air
//!    temperature, DTM engagement, and response-time quantiles for
//!    thousands of candidates at sub-microsecond cost each.
//! 2. **Verify.** Only the candidates the screen puts on the
//!    feasibility boundary ([`screen`], [`frontier`]) are re-run
//!    through the full fleet simulation, which has the final word.
//!
//! Between the stages sits the error gate: held-out sweep points that
//! never entered the fit are predicted and compared against their
//! simulated truth ([`cross_validate`]), and a plan whose surrogate
//! misses by more than the stated tolerance fails loudly
//! ([`CrossValidation::gate`]) instead of shipping optimistic numbers.
//!
//! The fit is a pure function of its inputs: fitting the same sweep
//! twice yields byte-identical serialized models, which the lab's
//! determinism suite pins.
//!
//! # Examples
//!
//! ```
//! use disksurrogate::{Axis, GridSurrogate, TrainingSample};
//!
//! // A 1-D "simulator": peak air rises linearly with load.
//! let axis = Axis::new("rate", vec![100.0, 200.0, 300.0])?;
//! let samples: Vec<TrainingSample> = [100.0, 200.0, 300.0]
//!     .iter()
//!     .map(|&r| TrainingSample::new(vec![r], vec![("peak_air_c".into(), 30.0 + r / 10.0)]))
//!     .collect();
//! let model = GridSurrogate::fit(vec![axis], &samples)?;
//! let at_250 = model.predict(&[250.0])?;
//! assert!((at_250[0].1 - 55.0).abs() < 1e-12);
//! # Ok::<(), disksurrogate::SurrogateError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod grid;
mod planner;

pub use grid::{Axis, GridSurrogate, TrainingSample};
pub use planner::{cross_validate, frontier, screen, Constraint, CrossValidation, Screened};

/// Why a surrogate could not be fitted, queried, or trusted.
#[derive(Debug, Clone, PartialEq)]
pub enum SurrogateError {
    /// The training sweep does not form the declared grid.
    Fit(String),
    /// A prediction was asked of a point the model cannot answer.
    Predict(String),
    /// Cross-validation error exceeded the stated tolerance — the
    /// surrogate's screening answers cannot be trusted and the plan
    /// must not be used.
    Validation {
        /// The worst-predicted output.
        output: String,
        /// Its relative error on the held-out points.
        rel_err: f64,
        /// The tolerance the fit was required to meet.
        tolerance: f64,
    },
}

impl std::fmt::Display for SurrogateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Fit(msg) => write!(f, "surrogate fit: {msg}"),
            Self::Predict(msg) => write!(f, "surrogate predict: {msg}"),
            Self::Validation {
                output,
                rel_err,
                tolerance,
            } => write!(
                f,
                "surrogate failed cross-validation: output {output:?} misses held-out \
                 sweep points by {rel_err:.4} relative error (tolerance {tolerance})"
            ),
        }
    }
}

impl std::error::Error for SurrogateError {}
