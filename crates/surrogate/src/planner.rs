//! The two-stage search itself: screen a dense candidate set against
//! envelope constraints with the surrogate, pick the feasibility
//! frontier for full-sim verification, and gate the whole plan on
//! held-out cross-validation error.

use crate::grid::{GridSurrogate, TrainingSample};
use crate::SurrogateError;
use serde::Serialize;

/// An upper bound an acceptable configuration must satisfy, e.g.
/// "peak_air_c ≤ 45.0" or "p95_ms ≤ 18.0".
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Constraint {
    /// The surrogate output the bound applies to.
    pub output: String,
    /// The inclusive upper bound.
    pub max: f64,
}

/// One screened candidate: its knob coordinates, the surrogate's
/// predictions, and whether every constraint passed.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Screened {
    /// Knob values, one per model axis.
    pub coords: Vec<f64>,
    /// Predicted outputs, in model output order.
    pub predictions: Vec<(String, f64)>,
    /// All constraints satisfied at the predictions.
    pub feasible: bool,
}

/// Stage 1: predict every candidate and mark feasibility.
///
/// Candidates are evaluated in order; output order matches input order,
/// so the screen is deterministic for a deterministic candidate list.
///
/// # Errors
///
/// A constraint naming an output the model was not fitted on, or a
/// candidate with the wrong coordinate count.
pub fn screen(
    model: &GridSurrogate,
    candidates: &[Vec<f64>],
    constraints: &[Constraint],
) -> Result<Vec<Screened>, SurrogateError> {
    let bound_indices: Vec<(usize, f64)> = constraints
        .iter()
        .map(|c| {
            model
                .output_index(&c.output)
                .map(|k| (k, c.max))
                .ok_or_else(|| {
                    SurrogateError::Predict(format!(
                        "constraint on unknown output {:?} (fitted: {:?})",
                        c.output, model.outputs
                    ))
                })
        })
        .collect::<Result<_, _>>()?;
    candidates
        .iter()
        .map(|coords| {
            let predictions = model.predict(coords)?;
            let feasible = bound_indices
                .iter()
                .all(|&(k, max)| predictions[k].1 <= max);
            Ok(Screened {
                coords: coords.clone(),
                predictions,
                feasible,
            })
        })
        .collect()
}

/// Stage-2 candidate selection: for each combination of the non-objective
/// knobs, the feasible candidate with the largest objective-axis value —
/// the capacity answer the screen proposes — plus the first infeasible
/// candidate just above it, so the full sim confirms both sides of the
/// boundary. Returns indices into `screened`, in input order.
pub fn frontier(screened: &[Screened], objective_axis: usize) -> Vec<usize> {
    // Group by the other coordinates, bit-exact; candidate lists are
    // generated, not computed, so equal knobs are equal bits.
    let key = |coords: &[f64]| -> Vec<u64> {
        coords
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != objective_axis)
            .map(|(_, v)| v.to_bits())
            .collect()
    };
    let mut groups: Vec<(Vec<u64>, Option<usize>, Option<usize>)> = Vec::new();
    for (i, cand) in screened.iter().enumerate() {
        let k = key(&cand.coords);
        let slot = match groups.iter().position(|(gk, _, _)| *gk == k) {
            Some(p) => &mut groups[p],
            None => {
                groups.push((k, None, None));
                groups.last_mut().expect("just pushed")
            }
        };
        let objective = cand.coords[objective_axis];
        if cand.feasible {
            let better = slot
                .1
                .is_none_or(|best| objective > screened[best].coords[objective_axis]);
            if better {
                slot.1 = Some(i);
            }
        } else {
            let tighter = slot
                .2
                .is_none_or(|best| objective < screened[best].coords[objective_axis]);
            if tighter {
                slot.2 = Some(i);
            }
        }
    }
    let mut picks: Vec<usize> = Vec::new();
    for (_, best_feasible, first_infeasible) in groups {
        if let Some(i) = best_feasible {
            picks.push(i);
        }
        match (best_feasible, first_infeasible) {
            // Keep the infeasible witness only when it is the next step
            // past the feasible pick (or nothing was feasible at all).
            (Some(f), Some(i))
                if screened[i].coords[objective_axis] > screened[f].coords[objective_axis] =>
            {
                picks.push(i);
            }
            (None, Some(i)) => picks.push(i),
            _ => {}
        }
    }
    picks.sort_unstable();
    picks.dedup();
    picks
}

/// The held-out error report committed alongside every capacity plan.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CrossValidation {
    /// Held-out points compared.
    pub points: usize,
    /// Worst relative error over all points and outputs.
    pub max_rel_err: f64,
    /// The output that produced [`Self::max_rel_err`].
    pub worst_output: String,
    /// Max relative error per output, in model output order.
    pub per_output: Vec<(String, f64)>,
}

/// Predict every held-out point and report the worst relative error,
/// per output and overall. Errors are |predicted − simulated| divided
/// by the output's training scale (max |value| seen in the fit, floored
/// at 1), so outputs of different magnitudes gate on the same footing.
///
/// # Errors
///
/// No held-out points, or a point whose coordinate count or output
/// names disagree with the model.
pub fn cross_validate(
    model: &GridSurrogate,
    holdout: &[TrainingSample],
) -> Result<CrossValidation, SurrogateError> {
    if holdout.is_empty() {
        return Err(SurrogateError::Predict(
            "cross-validation needs at least one held-out point".into(),
        ));
    }
    let mut per_output: Vec<(String, f64)> = model
        .outputs
        .iter()
        .map(|name| (name.clone(), 0.0))
        .collect();
    for point in holdout {
        if point.outputs.len() != model.outputs.len()
            || point
                .outputs
                .iter()
                .zip(&model.outputs)
                .any(|((name, _), expect)| name != expect)
        {
            return Err(SurrogateError::Predict(format!(
                "held-out point at {:?} lists outputs {:?}, model has {:?}",
                point.coords,
                point.outputs.iter().map(|(n, _)| n).collect::<Vec<_>>(),
                model.outputs
            )));
        }
        for (k, (_, truth)) in point.outputs.iter().enumerate() {
            let predicted = model.predict_one(k, &point.coords)?;
            let rel = (predicted - truth).abs() / model.scale(k);
            if rel > per_output[k].1 {
                per_output[k].1 = rel;
            }
        }
    }
    let (worst_output, max_rel_err) = per_output
        .iter()
        .cloned()
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .expect("model has at least one output");
    Ok(CrossValidation {
        points: holdout.len(),
        max_rel_err,
        worst_output,
        per_output,
    })
}

impl CrossValidation {
    /// Fail loudly if the surrogate missed the held-out points by more
    /// than `tolerance` relative error — the plan's screening answers
    /// are not trustworthy and must not be committed.
    ///
    /// # Errors
    ///
    /// [`SurrogateError::Validation`] naming the worst output.
    pub fn gate(&self, tolerance: f64) -> Result<(), SurrogateError> {
        if self.max_rel_err > tolerance {
            return Err(SurrogateError::Validation {
                output: self.worst_output.clone(),
                rel_err: self.max_rel_err,
                tolerance,
            });
        }
        Ok(())
    }

    /// [`Self::gate`] restricted to the named outputs — the ones a
    /// screening decision actually reads. Outputs with threshold
    /// nonlinearities the grid cannot capture (a DTM engagement knee,
    /// say) still have their errors *reported*, but only the outputs
    /// feeding constraints gate the plan.
    ///
    /// # Errors
    ///
    /// [`SurrogateError::Validation`] naming the worst gated output, or
    /// [`SurrogateError::Predict`] for a name the validation never
    /// measured.
    pub fn gate_outputs(&self, names: &[&str], tolerance: f64) -> Result<(), SurrogateError> {
        let mut worst: Option<(&str, f64)> = None;
        for name in names {
            let (_, err) = self
                .per_output
                .iter()
                .find(|(n, _)| n == name)
                .ok_or_else(|| {
                    SurrogateError::Predict(format!(
                        "gate on unmeasured output {name:?} (validated: {:?})",
                        self.per_output.iter().map(|(n, _)| n).collect::<Vec<_>>()
                    ))
                })?;
            if worst.is_none_or(|(_, w)| *err > w) {
                worst = Some((name, *err));
            }
        }
        if let Some((output, rel_err)) = worst {
            if rel_err > tolerance {
                return Err(SurrogateError::Validation {
                    output: output.to_string(),
                    rel_err,
                    tolerance,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Axis;

    /// Linear "simulator": peak = 20 + rate/100 + per_rack/10.
    fn model() -> GridSurrogate {
        let axes = vec![
            Axis::new("rate", vec![100.0, 200.0]).unwrap(),
            Axis::new("per_rack", vec![10.0, 20.0, 30.0]).unwrap(),
        ];
        let mut samples = Vec::new();
        for &r in &[100.0, 200.0] {
            for &p in &[10.0, 20.0, 30.0] {
                samples.push(TrainingSample::new(
                    vec![r, p],
                    vec![("peak_air_c".into(), 20.0 + r / 100.0 + p / 10.0)],
                ));
            }
        }
        GridSurrogate::fit(axes, &samples).unwrap()
    }

    fn envelope(max: f64) -> Vec<Constraint> {
        vec![Constraint {
            output: "peak_air_c".into(),
            max,
        }]
    }

    #[test]
    fn screen_marks_feasibility_against_every_constraint() {
        let model = model();
        // peak at (200, 30) = 25.0; at (100, 10) = 22.0.
        let screened = screen(
            &model,
            &[vec![100.0, 10.0], vec![200.0, 30.0]],
            &envelope(24.0),
        )
        .unwrap();
        assert!(screened[0].feasible);
        assert!(!screened[1].feasible);
    }

    #[test]
    fn screen_rejects_unknown_constraint_outputs() {
        let err = screen(&model(), &[vec![100.0, 10.0]], &envelope(24.0).iter()
            .map(|c| Constraint { output: "p95_ms".into(), max: c.max })
            .collect::<Vec<_>>())
            .unwrap_err();
        assert!(matches!(err, SurrogateError::Predict(_)));
    }

    #[test]
    fn frontier_picks_the_densest_feasible_rack_and_its_witness() {
        let model = model();
        // Sweep per_rack at fixed rate 100: peaks 22.0, 23.0, 24.0.
        let candidates: Vec<Vec<f64>> = [10.0, 20.0, 30.0]
            .iter()
            .map(|&p| vec![100.0, p])
            .collect();
        let screened = screen(&model, &candidates, &envelope(23.5)).unwrap();
        let picks = frontier(&screened, 1);
        // per_rack = 20 is the densest feasible; 30 is the witness above.
        assert_eq!(picks, vec![1, 2]);
    }

    #[test]
    fn frontier_keeps_only_the_witness_when_nothing_is_feasible() {
        let model = model();
        let candidates: Vec<Vec<f64>> = [10.0, 20.0, 30.0]
            .iter()
            .map(|&p| vec![100.0, p])
            .collect();
        let screened = screen(&model, &candidates, &envelope(10.0)).unwrap();
        assert_eq!(frontier(&screened, 1), vec![0]);
    }

    #[test]
    fn frontier_groups_by_the_other_knobs() {
        let model = model();
        let mut candidates = Vec::new();
        for &r in &[100.0, 200.0] {
            for &p in &[10.0, 20.0, 30.0] {
                candidates.push(vec![r, p]);
            }
        }
        // Envelope 24.0: at rate 100 feasible up to per_rack 30 (24.0);
        // at rate 200 feasible up to per_rack 20 (24.0), witness 30.
        let screened = screen(&model, &candidates, &envelope(24.0)).unwrap();
        let picks = frontier(&screened, 1);
        assert_eq!(picks, vec![2, 4, 5]);
    }

    #[test]
    fn cross_validation_is_zero_for_a_linear_truth_and_gates_cleanly() {
        let model = model();
        let holdout = vec![TrainingSample::new(
            vec![150.0, 15.0],
            vec![("peak_air_c".into(), 20.0 + 1.5 + 1.5)],
        )];
        let cv = cross_validate(&model, &holdout).unwrap();
        assert!(cv.max_rel_err < 1e-12);
        assert_eq!(cv.worst_output, "peak_air_c");
        cv.gate(0.05).unwrap();
    }

    #[test]
    fn the_gate_fails_loudly_past_tolerance() {
        let model = model();
        let holdout = vec![TrainingSample::new(
            vec![150.0, 15.0],
            vec![("peak_air_c".into(), 40.0)], // truth far from prediction
        )];
        let cv = cross_validate(&model, &holdout).unwrap();
        let err = cv.gate(0.05).unwrap_err();
        match err {
            SurrogateError::Validation { output, rel_err, tolerance } => {
                assert_eq!(output, "peak_air_c");
                assert!(rel_err > tolerance);
            }
            other => panic!("expected Validation, got {other:?}"),
        }
    }

    #[test]
    fn gate_outputs_ignores_errors_outside_the_named_set() {
        let cv = CrossValidation {
            points: 2,
            max_rel_err: 0.4,
            worst_output: "dtm_engaged".into(),
            per_output: vec![
                ("dtm_engaged".into(), 0.4),
                ("peak_air_c".into(), 0.01),
            ],
        };
        assert!(cv.gate(0.05).is_err());
        cv.gate_outputs(&["peak_air_c"], 0.05).unwrap();
        assert!(cv.gate_outputs(&["dtm_engaged"], 0.05).is_err());
        assert!(cv.gate_outputs(&["p95_ms"], 0.05).is_err());
    }

    #[test]
    fn mismatched_holdout_outputs_are_rejected() {
        let model = model();
        let holdout = vec![TrainingSample::new(
            vec![150.0, 15.0],
            vec![("p95_ms".into(), 1.0)],
        )];
        assert!(cross_validate(&model, &holdout).is_err());
    }
}
