//! The five workload presets of Figure 4.
//!
//! Device populations, RAID organization, spindle speeds and request
//! counts come straight from the paper's workload table; arrival
//! intensity and access mix are synthesized to land the baseline mean
//! response times in the regime the paper reports (OpenMail heavily
//! queued at ~55 ms, OLTP nearly unqueued at ~5.7 ms, and so on).

use crate::access::{AccessProfile, SizeModel};
use crate::arrival::ArrivalModel;
use crate::generator::TraceGenerator;
use disksim::{
    DiskSpec, RaidLevel, Request, ResponseStats, SimError, StorageSystem, SystemConfig,
};
use units::Rpm;

/// One Figure 4 workload.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadPreset {
    /// Workload name as the paper labels it.
    pub name: &'static str,
    /// Approximate year the trace was collected (sets disk technology).
    pub year: i32,
    /// Baseline spindle speed from the paper's table.
    pub base_rpm: Rpm,
    /// Number of member disks.
    pub disks: u32,
    /// Platters per member disk (chosen so the era geometry lands near
    /// the paper's per-disk capacity).
    pub platters_per_disk: u32,
    /// RAID organization, if any (the paper's RAID systems are RAID-5
    /// with a 16-block stripe).
    pub raid: Option<(RaidLevel, u32)>,
    /// Whether the array controller write-back caches (battery-backed
    /// NVRAM acks writes immediately; physical work destages in the
    /// background).
    pub write_back: bool,
    /// Request count of the original trace.
    pub paper_requests: u64,
    /// Mean response time the paper reports at the baseline RPM, ms.
    pub paper_mean_response_ms: f64,
    /// Arrival process.
    pub arrivals: ArrivalModel,
    /// Access mix.
    pub profile: AccessProfile,
}

impl WorkloadPreset {
    /// Builds the storage system at a given spindle speed (the Figure 4
    /// sweep rebuilds the same system at +5 kRPM steps).
    ///
    /// # Errors
    ///
    /// Propagates configuration errors from the simulator.
    pub fn system_config(&self, rpm: Rpm) -> Result<SystemConfig, SimError> {
        let spec = DiskSpec::era(self.year, self.platters_per_disk, rpm);
        let cfg = match self.raid {
            Some((RaidLevel::Raid5, stripe)) => {
                SystemConfig::raid5(spec, self.disks, stripe)?
            }
            Some((RaidLevel::Raid0, stripe)) => {
                SystemConfig::raid0(spec, self.disks, stripe)?
            }
            None => SystemConfig::jbod(spec, self.disks),
        };
        Ok(cfg.with_write_back(self.write_back))
    }

    /// Number of logical devices the trace addresses (1 for RAID, one
    /// per member for the JBOD workloads).
    pub fn logical_devices(&self) -> u32 {
        if self.raid.is_some() {
            1
        } else {
            self.disks
        }
    }

    /// Generates `n` requests of this workload, deterministically from
    /// `seed`.
    ///
    /// # Errors
    ///
    /// Propagates simulator configuration errors (the preset itself is
    /// always internally consistent).
    pub fn generate(&self, n: usize, seed: u64) -> Result<Vec<Request>, SimError> {
        let system = StorageSystem::new(self.system_config(self.base_rpm)?)?;
        let generator = TraceGenerator::new(
            self.profile.clone(),
            self.arrivals,
            self.logical_devices(),
            system.logical_sectors(),
        )
        .map_err(SimError::BadConfig)?;
        Ok(generator.generate(n, seed))
    }

    /// Opens an endless request stream of this workload — the digital
    /// twin's arrival feed. Draws exactly the requests
    /// [`Self::generate`] would, one at a time, and its state can be
    /// captured mid-flight for checkpointing.
    ///
    /// # Errors
    ///
    /// Propagates simulator configuration errors (the preset itself is
    /// always internally consistent).
    pub fn stream(&self, seed: u64) -> Result<crate::TraceStream, SimError> {
        let system = StorageSystem::new(self.system_config(self.base_rpm)?)?;
        let generator = TraceGenerator::new(
            self.profile.clone(),
            self.arrivals,
            self.logical_devices(),
            system.logical_sectors(),
        )
        .map_err(SimError::BadConfig)?;
        Ok(generator.stream(seed))
    }

    /// Generates, simulates and summarizes `n` requests at the given
    /// spindle speed.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn run(&self, rpm: Rpm, n: usize, seed: u64) -> Result<ResponseStats, SimError> {
        let trace = self.generate(n, seed)?;
        let mut system = StorageSystem::new(self.system_config(rpm)?)?;
        for r in trace {
            system.submit(r)?;
        }
        let done = system.drain();
        Ok(ResponseStats::from_completions(&done))
    }
}

/// HPL OpenMail: a mail server on an 8-disk RAID-5 — bursty,
/// seek-dominated, 40 % writes, large multi-block messages. The paper
/// notes 86 % of its requests move the arm with a mean seek distance of
/// ~1952 cylinders, and reports the largest RPM benefit (54.5 → 25.9 ms
/// for +5 kRPM).
pub fn openmail() -> WorkloadPreset {
    WorkloadPreset {
        name: "HPL Openmail",
        year: 2000,
        base_rpm: Rpm::new(10_000.0),
        disks: 8,
        platters_per_disk: 1,
        raid: Some((RaidLevel::Raid5, 16)),
        write_back: false,
        paper_requests: 3_053_745,
        paper_mean_response_ms: 54.54,
        arrivals: ArrivalModel::Bursty {
            base_rate: 100.0,
            burst_factor: 2.6,
            burst_len: 2.0,
            quiet_len: 6.0,
        },
        profile: AccessProfile {
            read_fraction: 0.6,
            sequential_fraction: 0.2,
            size: SizeModel::Choice(vec![(8, 0.3), (16, 0.3), (32, 0.25), (64, 0.15)]),
            hot_regions: 400,
            zipf_theta: 0.6,
        },
    }
}

/// OLTP Application: 24 independent disks, small page-sized requests,
/// strong hot-spot skew, light per-disk load (5.66 ms baseline mean).
pub fn oltp() -> WorkloadPreset {
    WorkloadPreset {
        name: "OLTP Application",
        year: 1999,
        base_rpm: Rpm::new(10_000.0),
        disks: 24,
        platters_per_disk: 4,
        raid: None,
        write_back: false,
        paper_requests: 5_334_945,
        paper_mean_response_ms: 5.66,
        arrivals: ArrivalModel::Poisson { rate: 250.0 },
        profile: AccessProfile {
            read_fraction: 0.65,
            sequential_fraction: 0.2,
            size: SizeModel::Fixed(8),
            hot_regions: 1_000,
            zipf_theta: 1.05,
        },
    }
}

/// Search engine: read-almost-only queries over 6 disks with popular
/// index regions and some sequential posting-list scans (16.22 ms
/// baseline mean — moderately queued).
pub fn search_engine() -> WorkloadPreset {
    WorkloadPreset {
        name: "Search-Engine",
        year: 1999,
        base_rpm: Rpm::new(10_000.0),
        disks: 6,
        platters_per_disk: 4,
        raid: None,
        write_back: false,
        paper_requests: 4_579_809,
        paper_mean_response_ms: 16.22,
        arrivals: ArrivalModel::Poisson { rate: 830.0 },
        profile: AccessProfile {
            read_fraction: 0.98,
            sequential_fraction: 0.3,
            size: SizeModel::Choice(vec![(16, 0.5), (64, 0.35), (128, 0.15)]),
            hot_regions: 500,
            zipf_theta: 0.9,
        },
    }
}

/// TPC-C: transaction processing over a 4-disk RAID-5, small skewed
/// requests, 35 % writes paying the read-modify-write penalty (6.50 ms
/// baseline mean).
pub fn tpcc() -> WorkloadPreset {
    WorkloadPreset {
        name: "TPC-C",
        year: 2002,
        base_rpm: Rpm::new(10_000.0),
        disks: 4,
        platters_per_disk: 1,
        raid: Some((RaidLevel::Raid5, 16)),
        write_back: true,
        paper_requests: 6_155_547,
        paper_mean_response_ms: 6.50,
        arrivals: ArrivalModel::Poisson { rate: 60.0 },
        profile: AccessProfile {
            read_fraction: 0.65,
            sequential_fraction: 0.05,
            size: SizeModel::Choice(vec![(8, 0.6), (16, 0.4)]),
            hot_regions: 5_000,
            zipf_theta: 1.15,
        },
    }
}

/// TPC-H: decision support over 15 disks at 7,200 RPM — long sequential
/// scan runs of large requests, read-almost-only (4.91 ms baseline mean,
/// dominated by streaming).
pub fn tpch() -> WorkloadPreset {
    WorkloadPreset {
        name: "TPC-H",
        year: 2002,
        base_rpm: Rpm::new(7_200.0),
        disks: 15,
        platters_per_disk: 1,
        raid: None,
        write_back: false,
        paper_requests: 4_228_725,
        paper_mean_response_ms: 4.91,
        arrivals: ArrivalModel::Poisson { rate: 850.0 },
        profile: AccessProfile {
            read_fraction: 0.95,
            sequential_fraction: 0.75,
            size: SizeModel::Choice(vec![(64, 0.5), (128, 0.5)]),
            hot_regions: 100,
            zipf_theta: 0.5,
        },
    }
}

/// All five Figure 4 workloads, in the paper's order.
pub fn presets() -> Vec<WorkloadPreset> {
    vec![openmail(), oltp(), search_engine(), tpcc(), tpch()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_table_matches_paper() {
        let all = presets();
        let names: Vec<&str> = all.iter().map(|p| p.name).collect();
        assert_eq!(
            names,
            ["HPL Openmail", "OLTP Application", "Search-Engine", "TPC-C", "TPC-H"]
        );
        let disks: Vec<u32> = all.iter().map(|p| p.disks).collect();
        assert_eq!(disks, [8, 24, 6, 4, 15]);
        let raided: Vec<bool> = all.iter().map(|p| p.raid.is_some()).collect();
        assert_eq!(raided, [true, false, false, true, false]);
        assert_eq!(all[4].base_rpm, Rpm::new(7_200.0));
        let reqs: Vec<u64> = all.iter().map(|p| p.paper_requests).collect();
        assert_eq!(
            reqs,
            [3_053_745, 5_334_945, 4_579_809, 6_155_547, 4_228_725]
        );
    }

    #[test]
    fn per_disk_capacities_near_paper() {
        // Paper: 9.29 / 19.07 / 19.07 / 37.17 / 35.96 GB.
        for (preset, target) in presets().iter().zip([9.29, 19.07, 19.07, 37.17, 35.96]) {
            let spec = DiskSpec::era(preset.year, preset.platters_per_disk, preset.base_rpm);
            let gb = spec.geometry().capacity().gigabytes();
            let err = (gb - target).abs() / target;
            assert!(
                err < 0.35,
                "{}: {gb:.1} GB vs paper {target} GB",
                preset.name
            );
        }
    }

    #[test]
    fn all_presets_generate_and_run_small() -> Result<(), String> {
        for preset in presets() {
            let stats = preset
                .run(preset.base_rpm, 400, 11)
                .map_err(|e| format!("{}: {e}", preset.name))?;
            assert_eq!(stats.count(), 400, "{}", preset.name);
            assert!(stats.mean().to_millis() > 0.0);
        }
        Ok(())
    }

    #[test]
    fn openmail_is_seek_heavy() {
        let preset = openmail();
        let trace = preset.generate(4_000, 1).unwrap();
        let mut system = StorageSystem::new(preset.system_config(preset.base_rpm).unwrap())
            .unwrap();
        for r in trace {
            system.submit(r).unwrap();
        }
        let _ = system.drain();
        let rates: Vec<f64> = system.disks().iter().map(|d| d.arm_movement_rate()).collect();
        let mean_rate = rates.iter().sum::<f64>() / rates.len() as f64;
        // Paper: 86% of *logical* requests move the arm. Our counter is
        // per physical sub-operation, and RAID-5 read-modify-write pairs
        // revisit the same cylinder (zero distance) for the write half,
        // diluting the physical rate well below the logical one.
        assert!(mean_rate > 0.4, "OpenMail should be seek-heavy, got {mean_rate:.2}");
    }

    #[test]
    fn tpch_is_sequential() {
        let preset = tpch();
        let trace = preset.generate(4_000, 2).unwrap();
        let mut system = StorageSystem::new(preset.system_config(preset.base_rpm).unwrap())
            .unwrap();
        for r in trace {
            system.submit(r).unwrap();
        }
        let _ = system.drain();
        let rates: Vec<f64> = system.disks().iter().map(|d| d.arm_movement_rate()).collect();
        let mean_rate = rates.iter().sum::<f64>() / rates.len() as f64;
        assert!(mean_rate < 0.6, "TPC-H should stream, got {mean_rate:.2}");
    }

    #[test]
    fn faster_spindle_helps_every_workload() {
        // The Figure 4 headline, at reduced scale.
        for preset in presets() {
            let base = preset.run(preset.base_rpm, 1_500, 3).unwrap();
            let fast = preset
                .run(preset.base_rpm + Rpm::new(10_000.0), 1_500, 3)
                .unwrap();
            assert!(
                fast.mean() < base.mean(),
                "{}: {:.2} -> {:.2} ms",
                preset.name,
                base.mean().to_millis(),
                fast.mean().to_millis()
            );
        }
    }
}
