//! Synthetic I/O workload generators.
//!
//! Stand-ins for the five commercial traces of the paper's §5.1 (Figure
//! 4): HPL OpenMail, an OLTP application, a search engine, TPC-C and
//! TPC-H. The real traces are not redistributable, so each preset
//! reproduces the *statistics that drive the response-time experiment*:
//! request counts and device populations from the paper's table, arrival
//! intensity tuned to the reported baseline response times, read/write
//! mix, request-size distributions, sequential-run behaviour and skewed
//! (Zipf) spatial locality.
//!
//! # Examples
//!
//! ```
//! use workloads::{presets, WorkloadPreset};
//!
//! let all = presets();
//! assert_eq!(all.len(), 5);
//! let openmail = &all[0];
//! let trace = openmail.generate(1_000, 42)?;
//! assert_eq!(trace.len(), 1_000);
//! # Ok::<(), disksim::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod access;
mod analyze;
mod arrival;
pub mod ascii;
mod generator;
pub mod msr;
mod presets;
mod trace;

pub use access::{AccessProfile, SizeModel, ZipfSampler};
pub use analyze::{analyze, TraceProfile};
pub use ascii::{read_ascii_trace, write_ascii_trace};
pub use msr::{read_msr_trace, write_msr_trace};
pub use arrival::{ArrivalModel, ArrivalStream, ArrivalStreamState};
pub use generator::{TraceGenerator, TraceStream, TraceStreamState};
pub use presets::{openmail, oltp, presets, search_engine, tpcc, tpch, WorkloadPreset};
pub use trace::{read_trace, write_trace};
