//! MSR-Cambridge block-trace format.
//!
//! The public MSR-Cambridge production traces (SNIA IOTTA) are CSV with
//! seven columns:
//!
//! ```text
//! timestamp,hostname,diskno,type,offset,size,latency
//! ```
//!
//! where `timestamp` and `latency` are Windows FILETIME values (100 ns
//! ticks), `type` is `Read` or `Write` (case-insensitive), and `offset`
//! / `size` are bytes. Supporting the format lets real production block
//! traces replay through the fleet and the twin exactly like synthetic
//! streams.
//!
//! Absolute FILETIME stamps (ticks since 1601) are rebased to the first
//! record so replays start at sim time zero; already-relative traces
//! (small tick counts, e.g. ones written by [`write_msr_trace`]) are
//! taken as-is. The recorded `latency` column is validated as numeric
//! but otherwise ignored — response times are what the simulator
//! produces, not what it consumes.

use disksim::{Request, RequestKind};
use std::io::{self, BufRead, Write};
use units::Seconds;

/// Seconds per FILETIME tick.
const TICK_S: f64 = 1e-7;

/// Bytes per logical sector.
const SECTOR_BYTES: u64 = 512;

/// Tick counts at or above this are treated as absolute FILETIME stamps
/// (ticks since 1601) and rebased to the trace's first record. The
/// threshold sits around year 1633 — vastly above any relative trace
/// (1e15 ticks is ~3 years of sim time) and below any real capture date.
const ABSOLUTE_TICKS: u64 = 1_000_000_000_000_000_000 / 100;

/// Writes requests as MSR-Cambridge CSV rows with relative timestamps.
///
/// The `hostname` column is cosmetic in this simulator; every row gets
/// the same label. The `latency` column is written as `0` — it records
/// a measurement, not an input.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_msr_trace<W: Write>(mut writer: W, trace: &[Request], hostname: &str) -> io::Result<()> {
    for r in trace {
        let ticks = (r.arrival.get() / TICK_S).round() as u64;
        writeln!(
            writer,
            "{ticks},{hostname},{},{},{},{},0",
            r.device,
            if r.kind.is_read() { "Read" } else { "Write" },
            r.lba * SECTOR_BYTES,
            r.sectors as u64 * SECTOR_BYTES,
        )?;
    }
    Ok(())
}

/// Reads an MSR-Cambridge CSV trace. Blank lines and `#` comments are
/// skipped; request ids are assigned in file order; `diskno` becomes the
/// request's device.
///
/// # Errors
///
/// Returns `InvalidData` naming the 1-based line number for malformed
/// rows (wrong column count, non-numeric fields, unknown request type,
/// zero-length requests).
pub fn read_msr_trace<R: BufRead>(reader: R) -> io::Result<Vec<Request>> {
    let mut out = Vec::new();
    let mut base_ticks: Option<u64> = None;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = trimmed.split(',').map(str::trim).collect();
        if fields.len() != 7 {
            return Err(bad_line(lineno, "expected 7 comma-separated columns"));
        }
        let ticks: u64 = fields[0]
            .parse()
            .map_err(|_| bad_line(lineno, "bad timestamp"))?;
        // fields[1] is the hostname: free-form, kept only in the file.
        let device: u32 = fields[2]
            .parse()
            .map_err(|_| bad_line(lineno, "bad disk number"))?;
        let kind = match fields[3].to_ascii_lowercase().as_str() {
            "read" => RequestKind::Read,
            "write" => RequestKind::Write,
            _ => return Err(bad_line(lineno, "request type must be Read or Write")),
        };
        let offset: u64 = fields[4]
            .parse()
            .map_err(|_| bad_line(lineno, "bad byte offset"))?;
        let size: u64 = fields[5]
            .parse()
            .map_err(|_| bad_line(lineno, "bad byte size"))?;
        let _latency: f64 = fields[6]
            .parse()
            .map_err(|_| bad_line(lineno, "bad latency"))?;
        if size == 0 {
            return Err(bad_line(lineno, "zero-length request"));
        }
        let sectors = size.div_ceil(SECTOR_BYTES);
        let sectors = u32::try_from(sectors)
            .map_err(|_| bad_line(lineno, "request size exceeds u32 sectors"))?;
        // Rebase absolute captures to their first record; the decision is
        // made once so a trace is interpreted consistently throughout.
        let base = *base_ticks
            .get_or_insert(if ticks >= ABSOLUTE_TICKS { ticks } else { 0 });
        let rel = ticks.checked_sub(base).ok_or_else(|| {
            bad_line(lineno, "timestamp earlier than the trace's first record")
        })?;
        out.push(Request::new(
            out.len() as u64,
            Seconds::new(rel as f64 * TICK_S),
            device,
            offset / SECTOR_BYTES,
            sectors,
            kind,
        ));
    }
    Ok(out)
}

fn bad_line(lineno: usize, what: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("trace line {}: {what}", lineno + 1),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_absolute_filetime_rows_rebased_to_first() {
        let text = "# MSR-Cambridge style\n\
                    128166372003061629,src1,0,Read,8192,4096,415\n\
                    128166372013061629,src1,1,write,512,512,210\n";
        let trace = read_msr_trace(text.as_bytes()).unwrap();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace[0].arrival, Seconds::ZERO);
        assert_eq!(trace[0].lba, 16);
        assert_eq!(trace[0].sectors, 8);
        assert!(trace[0].kind.is_read());
        assert_eq!(trace[1].device, 1);
        assert_eq!(trace[1].kind, RequestKind::Write);
        // One second between the two FILETIME stamps.
        assert!((trace[1].arrival.get() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn relative_timestamps_are_taken_as_is() {
        let text = "5000000,h,0,Read,0,512,0\n";
        let trace = read_msr_trace(text.as_bytes()).unwrap();
        assert!((trace[0].arrival.get() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sub_sector_sizes_round_up() {
        let text = "0,h,0,Write,512,100,0\n";
        let trace = read_msr_trace(text.as_bytes()).unwrap();
        assert_eq!(trace[0].sectors, 1);
        assert_eq!(trace[0].lba, 1);
    }

    #[test]
    fn malformed_rows_are_rejected_with_line_numbers() {
        for (bad, why) in [
            ("1,h,0,Read,0,512", "6 columns"),
            ("1,h,0,Read,0,512,0,9", "8 columns"),
            ("x,h,0,Read,0,512,0", "bad timestamp"),
            ("1,h,x,Read,0,512,0", "bad diskno"),
            ("1,h,0,Erase,0,512,0", "unknown type"),
            ("1,h,0,Read,x,512,0", "bad offset"),
            ("1,h,0,Read,0,x,0", "bad size"),
            ("1,h,0,Read,0,0,0", "zero size"),
            ("1,h,0,Read,0,512,x", "bad latency"),
        ] {
            let text = format!("# header\n\n1000,h,0,Read,0,512,0\n{bad}\n");
            let err = read_msr_trace(text.as_bytes()).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{why}");
            assert!(
                err.to_string().contains("line 4"),
                "{why}: error should name line 4: {err}"
            );
        }
    }

    #[test]
    fn ids_follow_file_order() {
        let text = "100,h,0,Read,0,512,0\n200,h,0,Read,512,512,0\n";
        let trace = read_msr_trace(text.as_bytes()).unwrap();
        assert_eq!(trace.iter().map(|r| r.id).collect::<Vec<_>>(), vec![0, 1]);
    }

    mod round_trip_props {
        use super::*;
        use proptest::prelude::*;

        /// Rows whose arrivals sit on exact FILETIME ticks, as any trace
        /// read from MSR CSV does. Ids are assigned by file position.
        fn arb_row() -> impl Strategy<Value = (u64, u32, u64, u32, RequestKind)> {
            (
                0u64..10_000_000_000,
                0u32..64,
                0u64..(1u64 << 50),
                1u32..4_096,
                prop_oneof![Just(RequestKind::Read), Just(RequestKind::Write)],
            )
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            #[test]
            fn write_then_read_is_identity(rows in prop::collection::vec(arb_row(), 0..48)) {
                let trace: Vec<Request> = rows
                    .iter()
                    .enumerate()
                    .map(|(i, &(ticks, device, lba, sectors, kind))| Request::new(
                        i as u64,
                        Seconds::new(ticks as f64 * TICK_S),
                        device,
                        lba,
                        sectors,
                        kind,
                    ))
                    .collect();
                let mut buf = Vec::new();
                write_msr_trace(&mut buf, &trace, "host").unwrap();
                let back = read_msr_trace(buf.as_slice()).unwrap();
                prop_assert_eq!(back, trace);
            }

            #[test]
            fn comment_and_blank_padding_never_changes_the_result(
                ticks in prop::collection::vec(0u64..1_000_000_000, 1..24),
                pad in prop::collection::vec(0usize..3, 1..24),
            ) {
                let trace: Vec<Request> = ticks
                    .iter()
                    .enumerate()
                    .map(|(i, &t)| Request::new(
                        i as u64,
                        Seconds::new(t as f64 * TICK_S),
                        0,
                        i as u64 * 8,
                        8,
                        RequestKind::Read,
                    ))
                    .collect();
                let mut buf = Vec::new();
                for (i, r) in trace.iter().enumerate() {
                    write_msr_trace(&mut buf, std::slice::from_ref(r), "host").unwrap();
                    for _ in 0..pad[i % pad.len()] {
                        buf.extend_from_slice(if i % 2 == 0 { b"\n" } else { b"# pad\n" });
                    }
                }
                let back = read_msr_trace(buf.as_slice()).unwrap();
                prop_assert_eq!(back, trace);
            }
        }
    }
}
